package efind_test

import (
	"fmt"
	"sort"

	"efind"
)

// Example shows the minimal EFind flow: index a side table, declare an
// IndexOperator, and let the runtime access it during a MapReduce job.
func Example() {
	cfg := efind.DefaultConfig()
	cfg.TaskStartup = 0.001
	cluster := efind.NewCluster(cfg)

	users := cluster.NewKVStore("users", 8, 3, 0.0005)
	users.Put("u1", "Berlin")
	users.Put("u2", "Osaka")

	input, err := cluster.CreateFile("events", []efind.Record{
		{Key: "e1", Value: "u1"},
		{Key: "e2", Value: "u2"},
		{Key: "e3", Value: "u1"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	op := efind.NewOperator("user-city",
		func(in efind.Pair) efind.PreResult {
			return efind.PreResult{Pair: in, Keys: [][]string{{in.Value}}}
		},
		func(p efind.Pair, results [][]efind.KeyResult, emit efind.Emit) {
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				emit(efind.Pair{Key: results[0][0].Values[0], Value: p.Key})
			}
		})
	op.AddIndex(users)

	conf := &efind.IndexJobConf{
		Name:      "events-by-city",
		Input:     input,
		Mode:      efind.ModeCache,
		NumReduce: 2,
		Reducer: func(_ *efind.TaskContext, city string, events []string, emit efind.Emit) {
			emit(efind.Pair{Key: city, Value: fmt.Sprintf("%d events", len(events))})
		},
	}
	conf.AddHeadIndexOperator(op)

	res, err := cluster.Submit(conf)
	if err != nil {
		fmt.Println(err)
		return
	}
	var lines []string
	for _, r := range res.Output.All() {
		lines = append(lines, r.Key+": "+r.Value)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// Berlin: 2 events
	// Osaka: 1 events
}
