// Package efind is the public API of this EFind reproduction: an
// Efficient and Flexible index access layer for MapReduce (Ma, Cao, Feng,
// Chen, Wang — EDBT 2014), together with every substrate the paper's
// evaluation needs, implemented from scratch on a simulated cluster.
//
// # What EFind is
//
// MapReduce scans one main input; many big-data jobs additionally need
// selective access to other data sources — database-like indices,
// key-value stores, knowledge bases, spatial indices, external cloud
// services. EFind is the connection layer between MapReduce and such
// "indices": developers describe index accesses declaratively
// (IndexOperator + IndexAccessor), place them anywhere in the data flow
// (before Map, between Map and Reduce, after Reduce), and the runtime
// chooses and adapts the access strategy — baseline chained lookups, a
// per-machine lookup cache, a re-partitioning shuffle that removes global
// redundancy, or index-locality scheduling that moves computation to the
// index partitions.
//
// # Quick start
//
//	cluster := efind.NewCluster(efind.DefaultConfig())
//	input, _ := cluster.CreateFile("events", records)
//	store := cluster.NewKVStore("users", 32, 3, 0.001)
//	store.Put("alice", "…profile…")
//
//	op := efind.NewOperator("profiles",
//	    func(in efind.Pair) efind.PreResult { … },
//	    func(p efind.Pair, results [][]efind.KeyResult, emit efind.Emit) { … })
//	op.AddIndex(store)
//
//	conf := &efind.IndexJobConf{Name: "enrich", Input: input, Mode: efind.ModeDynamic,
//	    Mapper: myMap, Reducer: myReduce}
//	conf.AddHeadIndexOperator(op)
//	res, _ := cluster.Submit(conf)
//
// See examples/ for complete programs and internal/experiments for the
// harness that regenerates every figure of the paper's evaluation.
package efind

import (
	"efind/internal/cloudsvc"
	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/index"
	"efind/internal/ixclient"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// Re-exported record and function types of the MapReduce substrate.
type (
	// Pair is a key/value record.
	Pair = mapreduce.Pair
	// Emit passes a record downstream.
	Emit = mapreduce.Emit
	// MapFunc is a user Map function.
	MapFunc = mapreduce.MapFunc
	// ReduceFunc is a user Reduce function.
	ReduceFunc = mapreduce.ReduceFunc
	// TaskContext identifies the running task and carries its counters.
	TaskContext = mapreduce.TaskContext
	// Record is a stored file record.
	Record = dfs.Record
	// File is a chunked replicated input/output file.
	File = dfs.File
	// NodeID identifies a simulated machine.
	NodeID = sim.NodeID
	// Config holds the simulated cluster's physical parameters.
	Config = sim.Config
)

// Re-exported EFind core types.
type (
	// Operator is the paper's IndexOperator.
	Operator = core.Operator
	// PreResult is preProcess's output.
	PreResult = core.PreResult
	// KeyResult is one index lookup outcome.
	KeyResult = core.KeyResult
	// PreFunc and PostFunc are the operator customization points.
	PreFunc  = core.PreFunc
	PostFunc = core.PostFunc
	// IndexJobConf configures an EFind-enhanced MapReduce job.
	IndexJobConf = core.IndexJobConf
	// JobResult reports a finished job.
	JobResult = core.JobResult
	// JobPlan is a complete strategy assignment.
	JobPlan = core.JobPlan
	// Mode selects the strategy policy.
	Mode = core.Mode
	// Strategy is one of the paper's four access strategies.
	Strategy = core.Strategy
	// Accessor is the index-side contract (the paper's IndexAccessor).
	Accessor = index.Accessor
	// BatchAccessor is an Accessor with a multi-get fast path.
	BatchAccessor = index.BatchAccessor
	// PartitionScheme describes a distributed index's partitioning.
	PartitionScheme = index.Scheme
	// IndexClient wraps an Accessor with the runtime's access pipeline
	// (cache, error policy, retry, cost accounting, batching).
	IndexClient = ixclient.Client
	// IndexClientOptions configures an IndexClient.
	IndexClientOptions = ixclient.Options
	// ErrorPolicy decides what an index error does to a running job.
	ErrorPolicy = ixclient.ErrorPolicy
	// RetryPolicy configures transient-error retries and the lookup
	// deadline of the access pipeline.
	RetryPolicy = ixclient.RetryPolicy
	// IndexError reports a failed index access under ErrorFailJob, naming
	// the operator, index, and lookup key.
	IndexError = ixclient.IndexError
	// KVStore is the bundled distributed key-value index service.
	KVStore = kvstore.Store
	// CloudService is the bundled single-node dynamic index service.
	CloudService = cloudsvc.Service
	// Catalog stores collected index statistics across jobs.
	Catalog = core.Catalog
)

// Execution modes (see core.Mode).
const (
	ModeBaseline  = core.ModeBaseline
	ModeCache     = core.ModeCache
	ModeCustom    = core.ModeCustom
	ModeOptimized = core.ModeOptimized
	ModeDynamic   = core.ModeDynamic
)

// Index access strategies (§3 of the paper).
const (
	Baseline      = core.Baseline
	LookupCache   = core.LookupCache
	Repartition   = core.Repartition
	IndexLocality = core.IndexLocality
)

// Index error policies (IndexJobConf.ErrorPolicy).
const (
	// ErrorCount counts index errors and continues with empty results
	// (the paper's behaviour, and the default).
	ErrorCount = core.ErrorCount
	// ErrorFailJob fails the job on the first index error.
	ErrorFailJob = core.ErrorFailJob
)

// ErrTransient marks an index error as retryable; accessors wrap it to
// opt into the pipeline's retry middleware.
var ErrTransient = index.ErrTransient

// NewIndexClient wraps an Accessor with the runtime's index access
// pipeline, for use outside of jobs (tools, generators, tests). Inside a
// job the runtime builds the clients itself from IndexJobConf.
func NewIndexClient(acc Accessor, opts IndexClientOptions) *IndexClient {
	return ixclient.New(acc, opts)
}

// NewOperator builds an IndexOperator from pre/post functions (nil picks
// defaults: key-as-lookup-key pre, append-results post).
func NewOperator(name string, pre PreFunc, post PostFunc) *Operator {
	return core.NewOperator(name, pre, post)
}

// ValidateOperator dry-runs an operator against sample records and checks
// the contracts EFind's strategy equivalence depends on: deterministic
// preProcess, key lists matching the attached indices, and a postProcess
// that tolerates empty lookup results. Use it in application tests.
func ValidateOperator(op *Operator, samples []Pair) error {
	return core.ValidateOperator(op, samples)
}

// DefaultConfig returns the paper's testbed configuration: 12 nodes, 8
// map and 4 reduce slots each, 1 Gbps network.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Cluster bundles a simulated cluster, its DFS, the MapReduce engine, and
// the EFind runtime — everything a job needs.
type Cluster struct {
	Sim     *sim.Cluster
	FS      *dfs.FS
	Engine  *mapreduce.Engine
	Runtime *core.Runtime
}

// NewCluster stands up a complete environment.
func NewCluster(cfg Config) *Cluster {
	c := sim.NewCluster(cfg)
	fs := dfs.New(c)
	engine := mapreduce.New(c, fs)
	return &Cluster{Sim: c, FS: fs, Engine: engine, Runtime: core.NewRuntime(engine)}
}

// CreateFile stores records as a replicated DFS file usable as job input.
func (c *Cluster) CreateFile(name string, records []Record) (*File, error) {
	return c.FS.Create(name, records)
}

// NewKVStore creates a hash-partitioned distributed KV index on the
// cluster (partitions × replicas, serveTime seconds per lookup).
func (c *Cluster) NewKVStore(name string, partitions, replicas int, serveTime float64) *KVStore {
	return kvstore.NewHash(c.Sim, name, partitions, replicas, serveTime)
}

// NewRangeKVStore creates a range-partitioned KV index with the given
// split points.
func (c *Cluster) NewRangeKVStore(name string, splits []string, replicas int, serveTime float64) *KVStore {
	return kvstore.NewRange(c.Sim, name, splits, replicas, serveTime)
}

// NewCloudService registers a single-node dynamic index service computing
// fn per key with the given per-lookup delay.
func (c *Cluster) NewCloudService(name string, host NodeID, delay float64, fn func(key string) []string) *CloudService {
	return cloudsvc.New(name, host, delay, fn)
}

// Submit runs an EFind-enhanced job under its configured mode.
func (c *Cluster) Submit(conf *IndexJobConf) (*JobResult, error) {
	return c.Runtime.Submit(conf)
}

// CollectStats runs a statistics-gathering baseline pass so a later
// ModeOptimized submission can plan from the catalog.
func (c *Cluster) CollectStats(conf *IndexJobConf) error {
	return c.Runtime.CollectStats(conf)
}
