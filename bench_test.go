package efind_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs one experiment at quick scale per
// iteration and reports the key virtual-time series as custom metrics
// (vs_<column> in virtual seconds), so `go test -bench=.` reproduces the
// paper's comparisons alongside the harness's own wall-time cost.
//
// For the full-scale tables, run `go run ./cmd/efind-bench`.

import (
	"fmt"
	"strings"
	"testing"

	"efind/internal/experiments"
)

// benchFigure runs one experiment per iteration and reports the cells of
// the designated row as metrics.
func benchFigure(b *testing.B, id, row string) {
	e := experiments.Find(id)
	if e == nil {
		b.Fatalf("experiment %s not registered", id)
	}
	scale := experiments.QuickScale()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(scale)
		if err != nil {
			b.Fatal(err)
		}
		last = tbl
	}
	if last == nil {
		return
	}
	for _, col := range last.Columns {
		if v, ok := last.Cell(row, col); ok {
			b.ReportMetric(v, "vs_"+sanitize(col))
		}
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '-' {
			return '_'
		}
		return r
	}, s)
}

// BenchmarkFig11aLOG regenerates Figure 11(a): the LOG application under
// extra lookup delays, across strategies (metrics report the 5ms row).
func BenchmarkFig11aLOG(b *testing.B) { benchFigure(b, "11a", "delay=5ms") }

// BenchmarkFig11bTPCHQ3 regenerates Figure 11(b): TPC-H Q3.
func BenchmarkFig11bTPCHQ3(b *testing.B) { benchFigure(b, "11b", "runtime") }

// BenchmarkFig11cTPCHQ9 regenerates Figure 11(c): TPC-H Q9.
func BenchmarkFig11cTPCHQ9(b *testing.B) { benchFigure(b, "11c", "runtime") }

// BenchmarkFig11dDup10Q3 regenerates Figure 11(d): TPC-H DUP10 Q3.
func BenchmarkFig11dDup10Q3(b *testing.B) { benchFigure(b, "11d", "runtime") }

// BenchmarkFig11eDup10Q9 regenerates Figure 11(e): TPC-H DUP10 Q9.
func BenchmarkFig11eDup10Q9(b *testing.B) { benchFigure(b, "11e", "runtime") }

// BenchmarkFig11fSynthetic regenerates Figure 11(f): the synthetic join
// over index value sizes (metrics report the 30KB row, where index
// locality wins).
func BenchmarkFig11fSynthetic(b *testing.B) { benchFigure(b, "11f", "l=30720B") }

// BenchmarkFig12LookupLatency regenerates Figure 12: local vs remote
// lookup latency (metrics report the 30KB row, in virtual ms).
func BenchmarkFig12LookupLatency(b *testing.B) { benchFigure(b, "12", "30720B") }

// BenchmarkFig13KNNJoin regenerates Figure 13: the kNN join comparison
// against the hand-tuned H-zkNNJ.
func BenchmarkFig13KNNJoin(b *testing.B) { benchFigure(b, "13", "knnj") }

// BenchmarkAblationCacheCapacity sweeps the lookup-cache capacity.
func BenchmarkAblationCacheCapacity(b *testing.B) { benchFigure(b, "ablation-cache", "cap=1024") }

// BenchmarkAblationVarianceThreshold sweeps Algorithm 1's variance gate.
func BenchmarkAblationVarianceThreshold(b *testing.B) {
	benchFigure(b, "ablation-variance", "threshold=0.05")
}

// BenchmarkAblationReplan compares at-most-once replanning vs disabled.
func BenchmarkAblationReplan(b *testing.B) { benchFigure(b, "ablation-replan", "replan=once") }

// BenchmarkAblationPlanner compares FullEnumerate against k-Repart.
func BenchmarkAblationPlanner(b *testing.B) { benchFigure(b, "ablation-planner", "full-enumerate") }

// BenchmarkAblationBoundary sweeps the re-partitioning job boundary.
func BenchmarkAblationBoundary(b *testing.B) { benchFigure(b, "ablation-boundary", "boundary=pre") }

// BenchmarkFig12Rows asserts Figure 12's monotone remote penalty while
// benchmarking (a guard against silent model regressions in -bench runs).
func BenchmarkFig12Rows(b *testing.B) {
	e := experiments.Find("12")
	scale := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(scale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tbl.Rows {
			if r.Cells[1] < r.Cells[0] {
				b.Fatalf("remote below local in row %s", r.Label)
			}
		}
	}
}

// TestTableCellAccess reads one cell programmatically, keeping the Table
// API covered from outside the experiments package.
func TestTableCellAccess(t *testing.T) {
	tbl := &experiments.Table{Title: "demo", Columns: []string{"a", "b"}}
	tbl.Add("row", 1.5, 2.5)
	v, ok := tbl.Cell("row", "b")
	if got := fmt.Sprint(v, ok); got != "2.5 true" {
		t.Fatalf("cell = %s", got)
	}
	if _, ok := tbl.Cell("row", "missing"); ok {
		t.Fatal("missing column should not resolve")
	}
	if _, ok := tbl.Cell("missing", "a"); ok {
		t.Fatal("missing row should not resolve")
	}
}
