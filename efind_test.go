package efind_test

import (
	"fmt"
	"strings"
	"testing"

	"efind"
)

// TestPublicAPIEndToEnd drives the whole stack through the facade only:
// build a cluster, load an index, run a job in every mode, and check the
// outputs agree.
func TestPublicAPIEndToEnd(t *testing.T) {
	outputs := map[efind.Mode][]string{}
	for _, mode := range []efind.Mode{efind.ModeBaseline, efind.ModeCache, efind.ModeDynamic} {
		cfg := efind.DefaultConfig()
		cfg.Nodes = 4
		cfg.TaskStartup = 0.01
		cluster := efind.NewCluster(cfg)
		cluster.FS.ChunkTarget = 2 << 10

		store := cluster.NewKVStore("colors", 8, 3, 0.0005)
		for i := 0; i < 50; i++ {
			store.Put(fmt.Sprintf("item%02d", i), fmt.Sprintf("color-%d", i%7))
		}
		recs := make([]efind.Record, 800)
		for i := range recs {
			recs[i] = efind.Record{Key: fmt.Sprintf("r%04d", i), Value: fmt.Sprintf("item%02d", i%50)}
		}
		input, err := cluster.CreateFile("orders", recs)
		if err != nil {
			t.Fatal(err)
		}

		op := efind.NewOperator("color-lookup",
			func(in efind.Pair) efind.PreResult {
				return efind.PreResult{Pair: in, Keys: [][]string{{in.Value}}}
			},
			func(pair efind.Pair, results [][]efind.KeyResult, emit efind.Emit) {
				if len(results[0]) == 0 || len(results[0][0].Values) == 0 {
					return
				}
				emit(efind.Pair{Key: results[0][0].Values[0], Value: pair.Key})
			})
		op.AddIndex(store)

		conf := &efind.IndexJobConf{
			Name:      "by-color",
			Input:     input,
			Mode:      mode,
			NumReduce: 4,
			Reducer: func(_ *efind.TaskContext, key string, values []string, emit efind.Emit) {
				emit(efind.Pair{Key: key, Value: fmt.Sprintf("%d", len(values))})
			},
		}
		conf.AddHeadIndexOperator(op)

		res, err := cluster.Submit(conf)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		var lines []string
		for _, r := range res.Output.All() {
			lines = append(lines, r.Key+"="+r.Value)
		}
		outputs[mode] = lines
		// 7 colors, evenly hit.
		if len(lines) != 7 {
			t.Fatalf("mode %v: %d color groups, want 7 (%v)", mode, len(lines), lines)
		}
		for _, l := range lines {
			if !strings.Contains(l, "=") {
				t.Fatalf("mode %v: bad line %q", mode, l)
			}
		}
	}
}

func TestCloudServiceThroughFacade(t *testing.T) {
	cluster := efind.NewCluster(efind.DefaultConfig())
	svc := cluster.NewCloudService("upper", 2, 0.001, func(k string) []string {
		return []string{strings.ToUpper(k)}
	})
	got, err := svc.Lookup("hello")
	if err != nil || len(got) != 1 || got[0] != "HELLO" {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if svc.Calls() != 1 {
		t.Fatalf("calls = %d", svc.Calls())
	}
}

func TestValidateOperatorThroughFacade(t *testing.T) {
	op := efind.NewOperator("v",
		func(in efind.Pair) efind.PreResult {
			return efind.PreResult{Pair: in, Keys: [][]string{{in.Key}}}
		}, nil)
	cluster := efind.NewCluster(efind.DefaultConfig())
	op.AddIndex(cluster.NewKVStore("s", 4, 2, 0))
	if err := efind.ValidateOperator(op, []efind.Pair{{Key: "a", Value: "1"}}); err != nil {
		t.Fatalf("valid operator rejected: %v", err)
	}
}

func TestRangeStoreThroughFacade(t *testing.T) {
	cluster := efind.NewCluster(efind.DefaultConfig())
	store := cluster.NewRangeKVStore("ranged", []string{"m"}, 3, 0)
	store.Put("apple", "1")
	store.Put("zebra", "2")
	if got, _ := store.Lookup("apple"); len(got) != 1 {
		t.Fatalf("range store lookup failed: %v", got)
	}
	if store.Scheme().Partitions != 2 {
		t.Fatalf("partitions = %d", store.Scheme().Partitions)
	}
}
