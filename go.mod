module efind

go 1.22
