package experiments

import (
	"testing"

	"efind/internal/obs"
)

// TestFStoreSweepIdentity runs the backend comparison at a trimmed quick
// scale and pins the acceptance contract: the file-backed leg must
// produce exactly the in-memory answer (virtual time, output
// fingerprint, and lookup/miss counters) for every value size, and the
// deterministic makespan gauges must be emitted for both legs.
func TestFStoreSweepIdentity(t *testing.T) {
	tr := obs.NewTrace()
	SetTrace(tr)
	defer SetTrace(nil)

	s := QuickScale()
	s.SynRecords = 2000
	s.SynKeyDomain = 1000
	s.SynSizes = []int{1024}
	tbl, err := FStoreSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(tbl.Rows))
	}
	ident, ok := tbl.Cell("l=1024B", "identical")
	if !ok {
		t.Fatal("identical column missing")
	}
	if ident != 1 {
		t.Fatalf("file-backed leg diverged from in-memory: identical = %v", ident)
	}
	mem, okM := tbl.Cell("l=1024B", "mem")
	file, okF := tbl.Cell("l=1024B", "file")
	if !okM || !okF || mem <= 0 || file <= 0 {
		t.Fatalf("runtime cells missing or non-positive: mem=%v file=%v", mem, file)
	}
	if mem != file {
		t.Fatalf("virtual runtimes differ: mem=%v file=%v", mem, file)
	}

	gauges := map[string]float64{}
	for _, g := range tr.Metrics.Gauges() {
		gauges[g.Name] = g.Value
	}
	for _, name := range []string{"fstore.l1024.mem.vms", "fstore.l1024.file.vms"} {
		if gauges[name] <= 0 {
			t.Errorf("gauge %q missing or non-positive: %v", name, gauges[name])
		}
	}
}
