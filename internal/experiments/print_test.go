package experiments

import (
	"os"
	"testing"
)

// TestPrintAll is an inspection helper: run with -run TestPrintAll -v
// -print-tables to dump every experiment's table at quick scale.
func TestPrintAll(t *testing.T) {
	if os.Getenv("EFIND_PRINT_TABLES") == "" {
		t.Skip("set EFIND_PRINT_TABLES=1 to dump all tables")
	}
	for _, e := range All() {
		tbl, err := e.Run(QuickScale())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		tbl.Print(os.Stdout)
	}
}
