package experiments

import (
	"fmt"
	"strings"

	"efind/internal/chaos"
	"efind/internal/core"
	"efind/internal/ixclient"
	"efind/internal/jobsvc"
	"efind/internal/sim"
)

// mtPerTenant is the number of Fig. 11(f) family jobs each tenant
// submits per service run.
const mtPerTenant = 4

// mtRun is one admission trace executed through the job service.
type mtRun struct {
	statuses []jobsvc.JobStatus
	pool     *ixclient.Pool
}

// span returns the tenant's workload makespan: all its jobs arrive near
// t=0, so the last finish time is the time to drain the tenant's queue.
func (r *mtRun) span(tenant string) float64 {
	max := 0.0
	for _, st := range r.statuses {
		if st.Tenant == tenant && st.Finished > max {
			max = st.Finished
		}
	}
	return max
}

// lookups sums the index lookups every job actually issued (counter
// suffix ".lookups"); pooled runs issue fewer because warm pool entries
// serve repeats without touching the index.
func (r *mtRun) lookups() int64 {
	var n int64
	for _, st := range r.statuses {
		if st.Result == nil {
			continue
		}
		for k, v := range st.Result.Counters {
			if strings.HasSuffix(k, ".lookups") {
				n += v
			}
		}
	}
	return n
}

// indexErrors sums per-job index access failures — non-zero only when a
// fault schedule put the index inside an outage window.
func (r *mtRun) indexErrors() int64 {
	var n int64
	for _, st := range r.statuses {
		if st.Result != nil {
			for _, v := range st.Result.IndexErrors {
				n += v
			}
		}
	}
	return n
}

// runMultiTenant executes one 2-tenant admission trace — alpha at weight
// 2, beta at weight 1, each submitting mtPerTenant ModeCache synthetic
// joins at staggered arrivals — in a fresh lab. usePool attaches the
// cross-job shared cache; outageUntil > 0 additionally runs the whole
// trace under a service-wide index outage window [0, outageUntil).
func runMultiTenant(scale Scale, label string, usePool bool, outageUntil float64) (*mtRun, error) {
	section("multi-tenant/" + label)
	l := newLab()
	cfg := synScaleConfig(scale, 1024)
	l.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))
	input, store, err := generateSyn(l, cfg)
	if err != nil {
		return nil, err
	}

	tenants := []jobsvc.TenantConfig{
		{Name: "alpha", Weight: 2, MaxInFlight: 2, QueueCap: 2 * mtPerTenant},
		{Name: "beta", Weight: 1, MaxInFlight: 2, QueueCap: 2 * mtPerTenant},
	}
	var subs []jobsvc.Submission
	for i := 0; i < mtPerTenant; i++ {
		for _, tn := range []string{"alpha", "beta"} {
			conf := buildSynConf(fmt.Sprintf("mt-%s-%s-%d", label, tn, i), input, store, core.ModeCache)
			conf.VarianceThreshold = experimentVarianceThreshold
			if outageUntil > 0 {
				// Default ErrorCount policy: in-window lookups burn the
				// retry ladder, get charged, and are counted per index —
				// the jobs complete, slower, with IndexErrors > 0.
				conf.Retry = core.RetryPolicy{Max: 2, Backoff: 0.001, Factor: 2}
			}
			subs = append(subs, jobsvc.Submission{Tenant: tn, At: 0.05 * float64(i), Conf: conf})
		}
	}

	var opts jobsvc.Options
	if usePool {
		opts.SharedCache = ixclient.NewPool(0)
	}
	if outageUntil > 0 {
		opts.Chaos = chaos.MustNew(chaos.Config{
			Seed:    ChaosSeed,
			Outages: []chaos.Outage{{Index: synIndexName, Partition: -1, From: 0, Until: outageUntil}},
		}, sim.DefaultConfig().Nodes)
	}

	svc, err := jobsvc.New(l.rt, tenants, opts)
	if err != nil {
		return nil, err
	}
	run := &mtRun{statuses: svc.Run(subs), pool: opts.SharedCache}
	for _, st := range run.statuses {
		if st.State != jobsvc.JobCompleted {
			return nil, fmt.Errorf("multi-tenant/%s: job %s/%s %s: %s%v",
				label, st.Tenant, st.Name, st.State, st.Reason, st.Err)
		}
	}
	return run, nil
}

// MultiTenant drives the job service end to end: two tenants push the
// Fig. 11(f) synthetic query family through one shared cluster, cold,
// then with the cross-job cache pool, then with the pool under a
// cross-tenant index outage. The pooled row must issue fewer index
// lookups than the cold row (the warm-cache uplift); the outage row
// shows one shared fault window inflating both tenants' makespans.
func MultiTenant(scale Scale) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Multi-tenant service: 2 tenants x %d jobs — makespan (virtual s), lookups, pool hit ratio", mtPerTenant),
		Columns: []string{"alpha_span", "beta_span", "lookups", "hit_ratio", "ixerrs"},
	}
	addRow := func(label string, r *mtRun) {
		ratio := 0.0
		if r.pool != nil {
			ratio = r.pool.HitRatio()
		}
		t.Add(label, r.span("alpha"), r.span("beta"),
			float64(r.lookups()), ratio, float64(r.indexErrors()))
	}

	cold, err := runMultiTenant(scale, "cold", false, 0)
	if err != nil {
		return nil, err
	}
	addRow("cold", cold)

	pooled, err := runMultiTenant(scale, "pooled", true, 0)
	if err != nil {
		return nil, err
	}
	addRow("pooled", pooled)
	if pooled.lookups() >= cold.lookups() {
		return nil, fmt.Errorf("multi-tenant: shared cache gave no lookup uplift: pooled %d vs cold %d",
			pooled.lookups(), cold.lookups())
	}
	gauge("multitenant.alpha.makespan.vms", pooled.span("alpha")*1000)
	gauge("multitenant.beta.makespan.vms", pooled.span("beta")*1000)
	gauge("multitenant.pool.hit_ratio", pooled.pool.HitRatio())

	// The outage covers the early fraction of the trace: jobs whose first
	// index access lands inside the window fail that attempt and re-run
	// demoted to baseline; late arrivals clear it untouched.
	outage, err := runMultiTenant(scale, "outage", true, 0.4*cold.span("alpha"))
	if err != nil {
		return nil, err
	}
	addRow("pooled+outage", outage)
	if outage.indexErrors() == 0 {
		return nil, fmt.Errorf("multi-tenant: outage window hit no lookups; the cross-tenant row is vacuous")
	}

	t.Note("pooled lookup uplift: %d -> %d index lookups (%.0f%% served by the cross-job pool)",
		cold.lookups(), pooled.lookups(), 100*pooled.pool.HitRatio())
	t.Note("per-job shadow caches keep each optimizer's miss ratio R at its isolated value")
	return t, nil
}
