package experiments

import (
	"fmt"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// AblationStraggler reproduces the design decision of the paper's
// footnote 3: index-locality placement must be a soft scheduling
// *preference*, never a hard pin, because "the unavailability of the
// machine can slow down the entire MapReduce job" in a dynamic cloud.
// The synthetic join runs under the index-locality strategy on a uniform
// cluster and on one where a node runs at quarter speed; with soft
// placement the slowdown stays bounded (stragglers simply win fewer
// tasks), far below the 4x a pinned design would suffer.
func AblationStraggler(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: index locality under a straggler node (soft placement, footnote 3)",
		Columns: []string{"runtime"},
	}
	uniform, err := runSynIdxlocOn(scale, nil)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	speeds := make([]float64, cfg.Nodes)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[0] = 0.25
	slowed, err := runSynIdxlocOn(scale, speeds)
	if err != nil {
		return nil, err
	}
	t.Add("uniform-cluster", uniform)
	t.Add("one-node-at-25%", slowed)
	t.Note("slowdown %.2fx — bounded well below the 4x a hard-pinned placement would suffer", slowed/uniform)
	return t, nil
}

// runSynIdxlocOn runs the synthetic join with forced index locality on a
// cluster with the given node speeds (nil = uniform).
func runSynIdxlocOn(scale Scale, speeds []float64) (float64, error) {
	cfg := sim.DefaultConfig()
	cfg.TaskStartup = 0.005
	cfg.NodeSpeed = speeds
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	rt := core.NewRuntime(mapreduce.New(cluster, fs))
	l := &lab{cluster: cluster, fs: fs, engine: rt.Engine, rt: rt}

	sc := synScaleConfig(scale, 1024)
	l.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (sc.ValueSize + 30))
	input, store, err := generateSyn(l, sc)
	if err != nil {
		return 0, err
	}
	conf := buildSynConf(fmt.Sprintf("syn-straggler-%v", speeds == nil), input, store, core.ModeCustom)
	conf.ForceStrategy("syn", store.Name(), core.IndexLocality)
	res, err := l.rt.Submit(conf)
	if err != nil {
		return 0, err
	}
	return res.VTime, nil
}
