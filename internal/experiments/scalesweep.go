package experiments

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"time"

	"efind/internal/chaos"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// ScaleSweep is the cluster-scale throughput experiment: it drives the
// wave scheduler and the MapReduce engine at node counts far beyond the
// paper's 12-node testbed (up to 10k nodes / 1M tasks at full scale) and
// reports REAL wall-clock scheduler throughput, unlike every other
// experiment in this package, which reports virtual time. Each node
// count runs three legs:
//
//   - sched: a raw scheduling phase (varied durations, mixed locality
//     preferences) under the serial executor, timed for tasks/sec and
//     allocations/task, then repeated under the parallel executor and
//     compared — any divergence from bit-identical schedules fails the
//     experiment, extending the determinism suite to cluster scale.
//   - engine: a map-only MapReduce job with one record per split, timed
//     end to end (scheduling + task bodies + accounting) for tasks/sec.
//   - chaos: the same job under a node crash plus capped speculation;
//     output must stay identical to the clean run, and the leg is timed
//     so recovery splicing's cost is tracked too.
//
// Virtual makespans (".vms", identical across machines) are gated at
// every node count. Wall-clock throughput and allocation gauges feed
// the CI gate only for the LARGEST node count — those legs run long
// enough to time stably (and each timed leg is best-of-sweepRepeats) —
// while the
// smaller rows' throughputs are recorded under ungated names: a
// 200-task leg finishes in a couple of milliseconds, where run-to-run
// scheduler-noise swamps any 10% budget.
func ScaleSweep(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Scale sweep: scheduler and engine throughput vs cluster size (wall-clock)",
		Columns: []string{"tasks", "sched_ktps", "allocs_task", "engine_tasks", "engine_ktps", "chaos_ktps", "makespan"},
	}
	if len(scale.SweepNodes) == 0 {
		return nil, fmt.Errorf("scale-sweep: no node counts configured")
	}
	maxNodes := 0
	for _, n := range scale.SweepNodes {
		if n > maxNodes {
			maxNodes = n
		}
	}
	for _, nodes := range scale.SweepNodes {
		// Task counts scale with the cluster so every row runs the same
		// number of waves — the 10k-node row carries the full task load.
		simTasks := scale.SweepTasks * nodes / maxNodes
		engTasks := scale.SweepEngineTasks * nodes / maxNodes

		schedTPS, allocsPerTask, makespan, err := sweepSched(nodes, simTasks)
		if err != nil {
			return nil, err
		}
		engineTPS, chaosTPS, err := sweepEngine(nodes, engTasks)
		if err != nil {
			return nil, err
		}

		prefix := fmt.Sprintf("sweep.n%d", nodes)
		gauge(prefix+".makespan.vms", makespan)
		if nodes == maxNodes {
			gauge(prefix+".sched.tps", schedTPS)
			gauge(prefix+".sched.allocs", allocsPerTask)
			gauge(prefix+".engine.tps", engineTPS)
			gauge(prefix+".chaos.tps", chaosTPS)
		} else {
			gauge(prefix+".sched.tasks_per_sec", schedTPS)
			gauge(prefix+".engine.tasks_per_sec", engineTPS)
		}

		t.Add(fmt.Sprintf("%d nodes", nodes),
			float64(simTasks), schedTPS/1000, allocsPerTask,
			float64(engTasks), engineTPS/1000, chaosTPS/1000, makespan)
	}
	t.Note("sched_ktps: serial wave-scheduler throughput (wall clock, thousands of tasks/sec)")
	t.Note("serial and parallel executors produced bit-identical schedules at every size")
	t.Note("chaos leg (node crash + speculation) produced output identical to the clean run")
	return t, nil
}

// sweepCluster builds a scale-sweep cluster: mixed node speeds so
// schedules are sensitive to placement, startup small so waves overlap.
func sweepCluster(nodes, parallelism int) *sim.Cluster {
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Parallelism = parallelism
	cfg.TaskStartup = 0.005
	speeds := make([]float64, nodes)
	for i := range speeds {
		speeds[i] = []float64{1, 1, 0.5, 2}[i%4]
	}
	cfg.NodeSpeed = speeds
	return sim.NewCluster(cfg)
}

// sweepTasks builds a task bag whose durations are pure in (task, node)
// with mixed locality preferences, like the sim determinism suite's.
func sweepTasks(n, nodes int) []sim.Task {
	tasks := make([]sim.Task, n)
	for i := range tasks {
		i := i
		var pref []sim.NodeID
		switch i % 3 {
		case 0:
			pref = []sim.NodeID{sim.NodeID(i % nodes), sim.NodeID((i + 1) % nodes)}
		case 1:
			pref = []sim.NodeID{sim.NodeID((i * 7) % nodes)}
		}
		tasks[i] = sim.Task{
			Preferred: pref,
			Run: func(node sim.NodeID, _ float64) float64 {
				return 0.5 + math.Mod(float64(i)*1.37+float64(node)*0.61, 2.0)
			},
		}
	}
	return tasks
}

// sweepRepeats is the best-of count for every timed leg: wall-clock
// throughput keeps the fastest run, squeezing out scheduler noise, GC
// pauses, and cold caches so the CI gate compares steady-state numbers.
const sweepRepeats = 5

// sweepSched times the raw scheduler at the given size and checks
// serial/parallel bit-identity. Returns wall-clock tasks/sec (best of
// sweepRepeats) and heap allocations/task for the serial run, and the
// (virtual) makespan.
func sweepSched(nodes, nTasks int) (tps, allocsPerTask, makespan float64, err error) {
	tasks := sweepTasks(nTasks, nodes)

	var serial sim.PhaseResult
	best := math.Inf(1)
	var before, after runtime.MemStats
	for r := 0; r < sweepRepeats; r++ {
		runtime.ReadMemStats(&before)
		start := time.Now()
		serial = sweepCluster(nodes, 1).SchedulePhase(tasks, 2)
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		if elapsed < best {
			best = elapsed
		}
	}

	par := sweepCluster(nodes, 8).SchedulePhase(tasks, 2)
	if !reflect.DeepEqual(serial, par) {
		return 0, 0, 0, fmt.Errorf("scale-sweep: %d nodes / %d tasks: parallel schedule diverged from serial (makespan %g vs %g, waves %d vs %d)",
			nodes, nTasks, par.Makespan, serial.Makespan, par.Waves, serial.Waves)
	}
	tps = float64(nTasks) / best
	allocsPerTask = float64(after.Mallocs-before.Mallocs) / float64(nTasks)
	return tps, allocsPerTask, serial.Makespan, nil
}

// sweepEngine times a map-only engine job with one record per split at
// the given size — clean, then under a node crash plus capped
// speculation — and verifies chaos never changes the output.
func sweepEngine(nodes, nTasks int) (engineTPS, chaosTPS float64, err error) {
	runOnce := func(name string, plan *chaos.Plan) (*mapreduce.MapPhaseResult, float64, error) {
		cluster := sweepCluster(nodes, 1)
		fs := dfs.New(cluster)
		fs.ChunkTarget = 1 // one record per chunk = one task per record
		records := make([]dfs.Record, nTasks)
		for i := range records {
			records[i] = dfs.Record{Key: fmt.Sprintf("k%07d", i), Value: "v"}
		}
		input, err := fs.Create("sweep-in", records)
		if err != nil {
			return nil, 0, err
		}
		e := mapreduce.New(cluster, fs)
		job := &mapreduce.Job{Name: name, Input: input, Chaos: plan}
		start := time.Now()
		res, err := e.NewRun().RunMapPhase(job, nil)
		if err != nil {
			return nil, 0, err
		}
		return res, float64(nTasks) / time.Since(start).Seconds(), nil
	}
	// Each repeat runs on a fresh engine so the virtual clock restarts at
	// zero and chaos windows land identically; best-of keeps the fastest.
	runLeg := func(name string, plan *chaos.Plan) (*mapreduce.MapPhaseResult, float64, error) {
		var res *mapreduce.MapPhaseResult
		best := 0.0
		for r := 0; r < sweepRepeats; r++ {
			got, tps, err := runOnce(name, plan)
			if err != nil {
				return nil, 0, err
			}
			res = got
			if tps > best {
				best = tps
			}
		}
		return res, best, nil
	}

	clean, cleanTPS, err := runLeg("sweep-clean", nil)
	if err != nil {
		return 0, 0, fmt.Errorf("scale-sweep: clean engine leg: %w", err)
	}

	// Crash the node holding the first assignment mid-phase, and race
	// capped speculative backups against seeded stragglers.
	victim := clean.Phase.Assignments[0].Node
	at := 0.5 * clean.Phase.Makespan
	plan := chaos.MustNew(chaos.Config{
		Seed:            1,
		Crashes:         []chaos.Crash{{Node: victim, At: at, Recover: at + 1e6}},
		Spec:            chaos.Speculation{Enabled: true, MaxPerPhase: 64},
		StragglerRate:   0.01,
		StragglerFactor: 8,
	}, nodes)
	chaotic, chaosLegTPS, err := runLeg("sweep-chaos", plan)
	if err != nil {
		return 0, 0, fmt.Errorf("scale-sweep: chaos engine leg: %w", err)
	}
	for i := range clean.Outputs {
		if !reflect.DeepEqual(clean.Outputs[i].Buckets, chaotic.Outputs[i].Buckets) {
			return 0, 0, fmt.Errorf("scale-sweep: chaos changed map output of task %d", i)
		}
	}
	return cleanTPS, chaosLegTPS, nil
}
