package experiments

import (
	"fmt"
	"strings"

	"efind/internal/kvstore"
)

// Fig12 reproduces Figure 12: the elapsed time of a local vs remote index
// lookup as the result size grows from 10 B to 30 KB. The latencies are
// exactly what the runtime charges per lookup: the index serve time T_j,
// plus the network transfer of key and result when the task node does not
// host the key's partition.
func Fig12(scale Scale) (*Table, error) {
	l := newLab()
	cfg := l.cluster.Config()
	sizes := scale.SynSizes
	t := &Table{
		Title:   "Figure 12: index lookup latency (virtual ms) vs result size",
		Columns: []string{"local", "remote"},
	}
	for _, size := range sizes {
		store := kvstore.NewHash(l.cluster, fmt.Sprintf("lat-%d", size), 32, 3, 0.0002)
		key := "probe-key"
		store.Put(key, strings.Repeat("v", size))
		vals, err := store.Lookup(key)
		if err != nil {
			return nil, err
		}
		bytes := float64(len(key) + 4)
		for _, v := range vals {
			bytes += float64(len(v) + 4)
		}
		local := store.ServeTime()
		remote := store.ServeTime() + bytes/cfg.NetBandwidth
		t.Add(fmt.Sprintf("%dB", size), local*1000, remote*1000)
	}
	return t, nil
}
