package experiments

import (
	"fmt"
	"strings"

	"efind/internal/ixclient"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// Fig12 reproduces Figure 12: the elapsed time of a local vs remote index
// lookup as the result size grows from 10 B to 30 KB. The lookups go
// through the same index client pipeline the runtime uses, so the
// latencies are exactly what the runtime charges per lookup: the index
// serve time T_j, plus the network transfer of key and result when the
// task node does not host the key's partition.
func Fig12(scale Scale) (*Table, error) {
	l := newLab()
	sizes := scale.SynSizes
	t := &Table{
		Title:   "Figure 12: index lookup latency (virtual ms) vs result size",
		Columns: []string{"local", "remote"},
	}
	for _, size := range sizes {
		store := kvstore.NewHash(l.cluster, fmt.Sprintf("lat-%d", size), 32, 3, 0.0002)
		key := "probe-key"
		store.Put(key, strings.Repeat("v", size))
		client := ixclient.New(store, ixclient.Options{Op: "fig12"})

		hosts := store.HostsFor(key)
		localNode := hosts[0]
		remoteNode := sim.NodeID(-1)
		for n := 0; n < l.cluster.Nodes(); n++ {
			if !sim.ContainsNode(hosts, sim.NodeID(n)) {
				remoteNode = sim.NodeID(n)
				break
			}
		}
		if remoteNode < 0 {
			return nil, fmt.Errorf("fig12: every node hosts the probe key's partition")
		}

		probe := func(node sim.NodeID) float64 {
			ctx := mapreduce.NewTaskContext(l.cluster, node, 0, mapreduce.MapTask)
			client.Access(ctx, key)
			return ctx.Extra()
		}
		local, remote := probe(localNode)*1000, probe(remoteNode)*1000
		gauge(fmt.Sprintf("fig12.local.%dB.vms", size), local)
		gauge(fmt.Sprintf("fig12.remote.%dB.vms", size), remote)
		t.Add(fmt.Sprintf("%dB", size), local, remote)
	}
	return t, nil
}
