package experiments

import (
	"fmt"

	"efind/internal/core"
	"efind/internal/tpch"
)

// tpchQuery selects Q3 or Q9.
type tpchQuery int

const (
	queryQ3 tpchQuery = iota
	queryQ9
)

// runTPCHOnce executes one TPC-H query under one strategy in a fresh lab.
func runTPCHOnce(scale Scale, q tpchQuery, dup int, column string) (float64, *core.JobResult, int64, error) {
	l := newLab()
	cfg := tpch.DefaultConfig()
	cfg.ScaleFactor = scale.TPCHSF
	cfg.SupplierScale = scale.TPCHSupplierScale
	cfg.DupFactor = dup
	l.fs.ChunkTarget = chunkTargetFor(int(6000*scale.TPCHSF) * dup * 60)
	w, err := tpch.Setup(l.fs, "lineitem", cfg)
	if err != nil {
		return 0, nil, 0, err
	}

	build := func(name string) (*core.IndexJobConf, string, string) {
		if q == queryQ3 {
			conf := w.Q3Conf(name, core.ModeBaseline)
			op, ix := w.Q3RepartTarget()
			return conf, op, ix
		}
		conf := w.Q9Conf(name, core.ModeBaseline)
		op, ix := w.Q9RepartTarget()
		return conf, op, ix
	}

	// The paper's cache holds 1024 entries against SF10 dictionaries of
	// 10^5–10^7 distinct keys; at simulation scale the capacity is scaled
	// with the data so the capacity:distinct-keys ratios (the drivers of
	// the miss ratio R) are preserved.
	const cacheCapacity = 64

	if column == "optimized" {
		statsConf, _, _ := build("tpch-stats")
		statsConf.CacheCapacity = cacheCapacity
		if err := l.rt.CollectStats(statsConf); err != nil {
			return 0, nil, 0, err
		}
	}
	w.ResetIndexStats()
	conf, op, ix := build("tpch-" + column)
	conf.CacheCapacity = cacheCapacity
	res, err := submitMode(l.rt, conf, column, op, ix)
	if err != nil {
		return 0, nil, 0, err
	}
	return res.VTime, res, w.TotalLookups(), nil
}

// fig11TPCH runs one query's full strategy row.
func fig11TPCH(title string, scale Scale, q tpchQuery, dup int) (*Table, error) {
	t := &Table{Title: title, Columns: strategyColumns}
	row := make([]float64, 0, len(strategyColumns))
	for _, c := range strategyColumns {
		vt, res, lookups, err := runTPCHOnce(scale, q, dup, c)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", title, c, err)
		}
		row = append(row, vt)
		t.Note("%s: %d jobs, %d index lookups%s", c, res.JobsRun, lookups, replanNote(res))
		if c == "optimized" {
			t.Note("optimized plan: %v", res.Plan)
		}
	}
	t.Add("runtime", row...)
	return t, nil
}

func replanNote(res *core.JobResult) string {
	if !res.Replanned {
		return ""
	}
	return fmt.Sprintf(", replanned at %s phase", res.ReplanPhase)
}

// Fig11b reproduces Figure 11(b): TPC-H Q3 across strategies.
func Fig11b(scale Scale) (*Table, error) {
	return fig11TPCH("Figure 11(b): TPC-H Q3 — runtime (virtual s)", scale, queryQ3, 1)
}

// Fig11c reproduces Figure 11(c): TPC-H Q9 across strategies.
func Fig11c(scale Scale) (*Table, error) {
	return fig11TPCH("Figure 11(c): TPC-H Q9 — runtime (virtual s)", scale, queryQ9, 1)
}

// Fig11d reproduces Figure 11(d): TPC-H DUP10 Q3.
func Fig11d(scale Scale) (*Table, error) {
	return fig11TPCH("Figure 11(d): TPC-H DUP10 Q3 — runtime (virtual s)", scale, queryQ3, 10)
}

// Fig11e reproduces Figure 11(e): TPC-H DUP10 Q9.
func Fig11e(scale Scale) (*Table, error) {
	return fig11TPCH("Figure 11(e): TPC-H DUP10 Q9 — runtime (virtual s)", scale, queryQ9, 10)
}
