package experiments

import (
	"fmt"
	"sort"

	"efind/internal/chaos"
	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/obs"
	"efind/internal/sim"
)

// synIndexName is the store GenerateSynthetic derives from the "syn"
// workload name; the outage schedules target it.
const synIndexName = "syn-index"

// ChaosSeed seeds the ablation's fault schedules; efind-bench -chaos
// overrides it so CI can soak several schedules with one binary.
var ChaosSeed int64 = 42

// AblationChaos runs the synthetic join under seeded fault schedules —
// a node crash mid-map, injected stragglers with speculative backups, a
// whole-index outage that forces a failure-triggered re-optimization,
// and all three at once — and verifies the answer never changes. Each
// row reports the virtual runtime, its overhead over the fault-free
// run, and the chaos events that fired. Any output divergence fails the
// experiment (and with it the CI chaos gate).
func AblationChaos(scale Scale) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: chaos schedules (seed %d) — fault tolerance never changes the answer", ChaosSeed),
		Columns: []string{"runtime", "overhead", "crashes", "spec", "reopt"},
	}

	clean, err := runSynChaos(scale, "chaos-clean", nil)
	if err != nil {
		return nil, err
	}
	cleanMap := clean.mapSpan
	want := chaosSorted(clean.res.Output)
	addRow := func(label string, r *chaosRun) error {
		if got := chaosSorted(r.res.Output); !equalStrings(want, got) {
			return fmt.Errorf("chaos ablation: %s output diverged from fault-free run (%d vs %d records)",
				label, len(got), len(want))
		}
		m := r.trace.Metrics
		t.Add(label, r.res.VTime, r.res.VTime/clean.res.VTime,
			float64(m.Counter(chaos.CtrNodeCrashes)),
			float64(m.Counter(chaos.CtrSpecLaunched)),
			float64(m.Counter(chaos.CtrReoptFailure)))
		return nil
	}
	if err := addRow("fault-free", clean); err != nil {
		return nil, err
	}

	// One node dies halfway through the map phase and never comes back:
	// survivors re-run the lost tasks.
	crashCfg := chaos.Config{
		Seed:    ChaosSeed,
		Crashes: []chaos.Crash{{Node: 2, At: 0.5 * cleanMap, Recover: 0.5*cleanMap + 1e6}},
	}
	crashed, err := runSynChaos(scale, "chaos-crash", &crashCfg)
	if err != nil {
		return nil, err
	}
	if err := addRow("node-crash", crashed); err != nil {
		return nil, err
	}

	// Seeded stragglers with Hadoop-style speculative backups.
	specCfg := chaos.Config{
		Seed:            ChaosSeed,
		Spec:            chaos.Speculation{Enabled: true},
		StragglerRate:   0.25,
		StragglerFactor: 6,
	}
	spec, err := runSynChaos(scale, "chaos-spec", &specCfg)
	if err != nil {
		return nil, err
	}
	if err := addRow("stragglers+spec", spec); err != nil {
		return nil, err
	}

	// A whole-index outage that outlasts the retry ladder: the first
	// attempt fails, the runtime demotes the operator to the baseline
	// strategy, and the re-run's later virtual start clears the window
	// (the fault-free map makespan sizes it, as in the chaos tests).
	outCfg := chaos.Config{
		Seed:    ChaosSeed,
		Outages: []chaos.Outage{{Index: synIndexName, Partition: -1, From: 0, Until: 2 * cleanMap}},
	}
	outage, err := runSynChaos(scale, "chaos-outage", &outCfg)
	if err != nil {
		return nil, err
	}
	if err := addRow("index-outage", outage); err != nil {
		return nil, err
	}

	// Everything at once. Stragglers stretch the map phase and the crash
	// stretches it further, so two calibration runs learn the real map
	// makespan before the outage window is cut to cover exactly the
	// first reduce attempt and end before the degraded re-run's reduce.
	comboCal := specCfg
	cal1, err := runSynChaos(scale, "chaos-combo-cal1", &comboCal)
	if err != nil {
		return nil, err
	}
	comboCal.Crashes = []chaos.Crash{{Node: 2, At: 0.5 * cal1.mapSpan, Recover: 0.5*cal1.mapSpan + 1e6}}
	cal2, err := runSynChaos(scale, "chaos-combo-cal2", &comboCal)
	if err != nil {
		return nil, err
	}
	comboCfg := comboCal
	comboCfg.Outages = []chaos.Outage{{Index: synIndexName, Partition: -1, From: 0, Until: cal2.mapSpan + cleanMap}}
	combo, err := runSynChaos(scale, "chaos-combo", &comboCfg)
	if err != nil {
		return nil, err
	}
	if err := addRow("combined", combo); err != nil {
		return nil, err
	}

	t.Note("all rows produced output identical to the fault-free run")
	t.Note("combined overhead %.2fx: crash re-execution + straggler tail + full baseline re-run after the outage",
		combo.res.VTime/clean.res.VTime)
	return t, nil
}

// chaosRun is one synthetic-join execution with its private trace (the
// chaos counters of a failed first attempt survive only there) and the
// first map phase's makespan, which sizes downstream fault schedules.
type chaosRun struct {
	res     *core.JobResult
	mapSpan float64
	trace   *obs.Trace
}

// runSynChaos executes the synthetic join with the operator at the tail
// — lookups run in the reduce phase, so the map phase advances the
// virtual clock before the first index access and an outage window can
// end between a failed attempt and its degraded re-run.
func runSynChaos(scale Scale, name string, cfg *chaos.Config) (*chaosRun, error) {
	l := newLab()
	tr := obs.NewTrace()
	l.engine.Trace = tr

	sc := synScaleConfig(scale, 1024)
	l.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (sc.ValueSize + 30))
	input, store, err := generateSyn(l, sc)
	if err != nil {
		return nil, err
	}

	op := synOperator(store)
	conf := &core.IndexJobConf{
		Name:  name,
		Input: input,
		Mode:  core.ModeCache,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			emit(in)
		},
		Reducer:     mapreduce.IdentityReduce,
		ErrorPolicy: core.ErrorFailJob,
		Retry:       core.RetryPolicy{Max: 2, Backoff: 0.001, Factor: 2},
	}
	conf.AddTailIndexOperator(op)
	if cfg != nil {
		conf.Chaos = chaos.MustNew(*cfg, sim.DefaultConfig().Nodes)
	}

	res, err := l.rt.Submit(conf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	run := &chaosRun{res: res, trace: tr}
	for _, s := range tr.Stages() {
		if s.Kind == "map" {
			run.mapSpan = s.VTime
			break
		}
	}
	return run, nil
}

// chaosSorted flattens an output file to sorted key\x00value strings.
func chaosSorted(f *dfs.File) []string {
	out := make([]string, 0, f.Records())
	for _, r := range f.All() {
		out = append(out, r.Key+"\x00"+r.Value)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
