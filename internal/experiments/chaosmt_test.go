package experiments

import (
	"testing"

	"efind/internal/obs"
)

// TestChaosMultiTenantShape runs a miniature cross-job chaos experiment
// end to end: all five legs must succeed — including the crash+spec
// output-identity check and the coordinator crash/Recover leg's
// bit-identity check buried inside — and the gated per-tenant makespan
// gauges must be emitted.
func TestChaosMultiTenantShape(t *testing.T) {
	tr := obs.NewTrace()
	SetTrace(tr)
	defer SetTrace(nil)

	s := QuickScale()
	s.SynRecords = 3000
	s.SynKeyDomain = 1500
	s.ChaosMTNodes = 48
	s.ChaosMTTenants = 2
	s.ChaosMTJobs = 3
	tbl, err := ChaosMultiTenant(s)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{"clean", "crash+spec", "+outage", "durable", "recovered"}
	if len(tbl.Rows) != len(wantRows) {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), len(wantRows))
	}
	for i, want := range wantRows {
		if tbl.Rows[i].Label != want {
			t.Fatalf("row %d = %q, want %q", i, tbl.Rows[i].Label, want)
		}
	}
	if v, ok := tbl.Cell("crash+spec", "crashes"); !ok || v <= 0 {
		t.Fatalf("crash+spec crashes = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := tbl.Cell("+outage", "ixerrs"); !ok || v <= 0 {
		t.Fatalf("+outage ixerrs = %v (ok=%v), want > 0", v, ok)
	}

	gauges := map[string]float64{}
	for _, g := range tr.Metrics.Gauges() {
		gauges[g.Name] = g.Value
	}
	for _, name := range []string{
		"chaosmt.t00.makespan.vms",
		"chaosmt.t01.makespan.vms",
		"chaosmt.total.makespan.vms",
	} {
		if gauges[name] <= 0 {
			t.Errorf("gauge %q missing or non-positive: %v", name, gauges[name])
		}
	}
}

// TestChaosMultiTenantRejectsEmptyConfig pins the configuration guard.
func TestChaosMultiTenantRejectsEmptyConfig(t *testing.T) {
	if _, err := ChaosMultiTenant(Scale{}); err == nil {
		t.Fatal("ChaosMultiTenant with no sizes must error")
	}
}
