package experiments

import (
	"fmt"

	"efind/internal/core"
)

// AblationDynamicConvergence reproduces the scaling claim of §5.3: the
// adaptive runtime's overhead (the baseline-plan statistics collection
// phase) is a fixed first wave, so as the input grows the dynamic
// runtime's performance converges to the statically optimized one ("this
// effect will be reduced when many Map tasks are used to process a large
// amount of data").
func AblationDynamicConvergence(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: dynamic converges to optimized as input grows (LOG, +3ms)",
		Columns: []string{"optimized", "dynamic", "ratio"},
	}
	base := scale.LogEvents
	prevRatio := 0.0
	for _, factor := range []int{1, 3, 9} {
		s := scale
		s.LogEvents = base * factor
		// Fixed chunk size: larger inputs run more task waves, so the
		// first-wave statistics phase becomes a shrinking fraction.
		s.FixedLogChunk = chunkTargetFor(base * 90)
		run := func(column string) (float64, error) {
			vt, _, _, err := runLogOnce(s, 3, column)
			return vt, err
		}
		opt, err := run("optimized")
		if err != nil {
			return nil, err
		}
		dyn, err := run("dynamic")
		if err != nil {
			return nil, err
		}
		ratio := dyn / opt
		t.Add(fmt.Sprintf("events=%d", s.LogEvents), opt, dyn, ratio)
		prevRatio = ratio
	}
	_ = prevRatio
	return t, nil
}

// init-time registration happens in suite.go; this file only adds the
// experiment body. (Kept separate because the convergence sweep is the
// longest-running ablation.)
var _ = core.ModeDynamic
