package experiments

import (
	"testing"

	"efind/internal/obs"
)

// TestScaleSweepShape runs a miniature sweep end to end: every leg must
// succeed (including the serial/parallel identity check and the
// chaos-output check inside), and the gauges must follow the gating
// conventions — wall-clock ".tps"/".allocs" only at the largest node
// count, deterministic ".vms" makespans at every count.
func TestScaleSweepShape(t *testing.T) {
	tr := obs.NewTrace()
	SetTrace(tr)
	defer SetTrace(nil)

	s := QuickScale()
	s.SweepNodes = []int{50, 200}
	s.SweepTasks = 4000
	s.SweepEngineTasks = 800
	tbl, err := ScaleSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tbl.Rows))
	}
	if v, ok := tbl.Cell("200 nodes", "tasks"); !ok || v != 4000 {
		t.Fatalf("largest row tasks = %v (ok=%v), want 4000", v, ok)
	}

	gauges := map[string]float64{}
	for _, g := range tr.Metrics.Gauges() {
		gauges[g.Name] = g.Value
	}
	for _, name := range []string{
		"sweep.n50.makespan.vms",
		"sweep.n200.makespan.vms",
		"sweep.n200.sched.tps",
		"sweep.n200.sched.allocs",
		"sweep.n200.engine.tps",
		"sweep.n200.chaos.tps",
		"sweep.n50.sched.tasks_per_sec",
	} {
		if gauges[name] <= 0 {
			t.Errorf("gauge %q missing or non-positive: %v", name, gauges[name])
		}
	}
	for _, name := range []string{"sweep.n50.sched.tps", "sweep.n50.sched.allocs", "sweep.n50.chaos.tps"} {
		if _, ok := gauges[name]; ok {
			t.Errorf("gauge %q present: small rows must not emit gated wall-clock gauges", name)
		}
	}
}

// TestScaleSweepRejectsEmptyConfig pins the configuration guard.
func TestScaleSweepRejectsEmptyConfig(t *testing.T) {
	if _, err := ScaleSweep(Scale{}); err == nil {
		t.Fatal("ScaleSweep with no node counts must error")
	}
}
