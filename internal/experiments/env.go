package experiments

import (
	"fmt"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/fstore"
	"efind/internal/mapreduce"
	"efind/internal/obs"
	"efind/internal/sim"
)

// obsTrace, when set, is attached to the engine of every lab created
// afterwards, so one benchmark invocation accumulates a single
// virtual-time trace and profile across its experiments (each strategy
// run still gets a fresh lab — only the observability record is shared).
var obsTrace *obs.Trace

// SetTrace attaches (or, with nil, detaches) the trace future labs
// record into. Call it once before running experiments.
func SetTrace(t *obs.Trace) { obsTrace = t }

// calibration, when set, replaces the cost model's stipulated storage
// constants with values measured on this machine (efind-bench
// -calibrate): the paper's f term (DFS store-and-retrieve cost per byte)
// becomes the measured snapshot write + cold-read cost, and the
// synthetic index's serve time T_j becomes the measured warm lookup
// latency of the mmap-backed store.
var calibration *fstore.Calibration

// SetCalibration installs (or, with nil, removes) measured storage costs
// for every lab created afterwards.
func SetCalibration(c *fstore.Calibration) { calibration = c }

// section labels subsequent trace stages, instants, and index-profile
// rows with a run context (e.g. "11f/l=10/base"); no-op without a trace.
func section(s string) {
	if obsTrace != nil {
		obsTrace.SetSection(s)
	}
}

// gauge records one figure measurement into the trace's registry; names
// ending in ".vms" (virtual milliseconds) are latency budgets the CI
// regression gate guards. No-op without a trace.
func gauge(name string, v float64) {
	if obsTrace != nil {
		obsTrace.Metrics.SetGauge(name, v)
	}
}

// lab is one fresh simulated environment. Every strategy run gets its own
// lab so caches, catalogs, and index statistics cannot leak between runs.
type lab struct {
	cluster *sim.Cluster
	fs      *dfs.FS
	engine  *mapreduce.Engine
	rt      *core.Runtime
}

// newLab builds the paper's 12-node environment with chunk sizes small
// enough that jobs run multiple task waves at simulation scale.
func newLab() *lab {
	cfg := sim.DefaultConfig()
	// Task startup scaled like everything else: the paper's jobs run for
	// hundreds to thousands of seconds against ~1 s task launches; the
	// simulated jobs run for ~1 s, so startup scales to milliseconds.
	cfg.TaskStartup = 0.005
	if calibration != nil && calibration.F > 0 {
		cfg.DFSWriteCost = calibration.F
	}
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 32 << 10
	engine := mapreduce.New(cluster, fs)
	engine.Trace = obsTrace
	return &lab{cluster: cluster, fs: fs, engine: engine, rt: core.NewRuntime(engine)}
}

// strategyColumns is the experiment matrix of §5.1: the four fixed
// strategies plus the two optimizer modes.
var strategyColumns = []string{"base", "cache", "repart", "idxloc", "optimized", "dynamic"}

// experimentVarianceThreshold loosens Algorithm 1's variance gate for
// simulation scale: the paper's 0.05 was calibrated for 64 MB splits
// holding ~10^6 rows, where per-task sampling noise is negligible; our
// splits hold ~10^3 rows, so the per-task relative standard deviation is
// inherently ~√1000 larger for the same underlying distribution.
const experimentVarianceThreshold = 0.35

// submitMode runs one job configuration under a named strategy column.
// For "repart"/"idxloc" the forced target operator/index is required; for
// "optimized" the runtime must already hold statistics.
func submitMode(rt *core.Runtime, conf *core.IndexJobConf, column, forceOp, forceIx string) (*core.JobResult, error) {
	if conf.VarianceThreshold == 0 {
		conf.VarianceThreshold = experimentVarianceThreshold
	}
	switch column {
	case "base":
		conf.Mode = core.ModeBaseline
	case "cache":
		conf.Mode = core.ModeCache
	case "repart":
		conf.Mode = core.ModeCustom
		conf.ForceStrategy(forceOp, forceIx, core.Repartition)
	case "idxloc":
		conf.Mode = core.ModeCustom
		conf.ForceStrategy(forceOp, forceIx, core.IndexLocality)
	case "optimized":
		conf.Mode = core.ModeOptimized
	case "dynamic":
		conf.Mode = core.ModeDynamic
	default:
		return nil, fmt.Errorf("experiments: unknown strategy column %q", column)
	}
	return rt.Submit(conf)
}
