package experiments

import (
	"strings"
	"testing"
)

func TestTablePrintLayout(t *testing.T) {
	tbl := &Table{Title: "demo table", Columns: []string{"colA", "colB"}}
	tbl.Add("row-one", 1.25, 2.5)
	tbl.Add("row-two", 3, 4)
	tbl.Note("something %d", 42)
	var b strings.Builder
	tbl.Print(&b)
	out := b.String()
	for _, want := range []string{"demo table", "colA", "colB", "row-one", "1.250", "note: something 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed table missing %q:\n%s", want, out)
		}
	}
	// Every row line has the same column alignment width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTableCellLookup(t *testing.T) {
	tbl := &Table{Columns: []string{"x"}}
	tbl.Add("r", 7)
	if v, ok := tbl.Cell("r", "x"); !ok || v != 7 {
		t.Fatalf("cell = %v %v", v, ok)
	}
	if _, ok := tbl.Cell("r", "y"); ok {
		t.Fatal("unknown column resolved")
	}
	if _, ok := tbl.Cell("z", "x"); ok {
		t.Fatal("unknown row resolved")
	}
}

func TestScalesDistinct(t *testing.T) {
	q, f := QuickScale(), FullScale()
	if q.LogEvents >= f.LogEvents || q.SynRecords >= f.SynRecords {
		t.Fatal("full scale should exceed quick scale")
	}
	if len(f.SynSizes) < len(q.SynSizes) {
		t.Fatal("full scale should sweep at least as many sizes")
	}
}
