// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated cluster: Figure 11(a)–(f) strategy
// comparisons over LOG, TPC-H Q3/Q9 (±DUP10) and the synthetic l-sweep,
// Figure 12's lookup latency curves, Figure 13's kNN join comparison
// against H-zkNNJ, and the ablations DESIGN.md calls out. Results are
// virtual times from the calibrated cost model; the claims under test are
// the relative shapes (who wins, by what factor, where the crossovers
// fall), not absolute seconds.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: labeled rows of named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	// Notes records per-run observations (chosen plans, recall, replans).
	Notes []string
}

// Row is one parameter setting's measurements.
type Row struct {
	Label string
	Cells []float64
}

// Add appends a row.
func (t *Table) Add(label string, cells ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Note appends an observation.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Cell returns the value at (rowLabel, column), or NaN-free -1 when absent.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Cells) {
			return r.Cells[ci], true
		}
	}
	return 0, false
}

// Print renders the table in aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	width := 14
	fmt.Fprintf(w, "%-22s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%*s", width, c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-22s", r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(w, "%*.3f", width, v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w, strings.Repeat("-", 22+width*len(t.Columns)))
}

// Scale sizes an experiment run. Quick keeps unit tests and -bench runs
// fast; Full is the cmd/efind-bench default and stresses multiple task
// waves per phase.
type Scale struct {
	LogEvents   int
	LogDelaysMs []float64
	// FixedLogChunk, when non-zero, pins the LOG input's chunk size
	// instead of scaling it with the event count — so larger inputs run
	// more task waves, as with HDFS's fixed 64 MB blocks. Used by the
	// dynamic-convergence ablation.
	FixedLogChunk     int
	TPCHSF            float64
	TPCHSupplierScale int
	SynRecords        int
	SynKeyDomain      int
	SynSizes          []int
	SpatialA          int
	SpatialB          int
	KNNK              int
	// Scale-sweep sizes: node counts to sweep, raw-scheduler tasks at the
	// largest node count (smaller counts scale down proportionally), and
	// engine-job tasks likewise (engine tasks run real record pipelines,
	// so they are fewer).
	SweepNodes       []int
	SweepTasks       int
	SweepEngineTasks int
	// Chaos multi-tenant sizes: the shared cluster's node count, the
	// tenant count, and the jobs each tenant submits (full scale: 64
	// concurrent jobs on a 10k-node cluster). ChaosMTRecords,
	// when non-zero, sizes the shared synthetic input the tenants' jobs
	// query instead of SynRecords — at full scale the experiment's claim
	// is jobs × nodes, so the per-job input stays moderate to keep the
	// five-leg run (which re-executes every job up to five times)
	// bench-budget sized.
	ChaosMTNodes   int
	ChaosMTTenants int
	ChaosMTJobs    int
	ChaosMTRecords int
}

// QuickScale is used by tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		LogEvents:         20000,
		LogDelaysMs:       []float64{0, 1, 3, 5},
		TPCHSF:            1,
		TPCHSupplierScale: 75,
		SynRecords:        8000,
		SynKeyDomain:      4000,
		SynSizes:          []int{10, 1024, 30720},
		SpatialA:          1500,
		SpatialB:          6000,
		KNNK:              10,
		SweepNodes:        []int{100, 1000, 10000},
		SweepTasks:        100_000,
		SweepEngineTasks:  20_000,
		ChaosMTNodes:      96,
		ChaosMTTenants:    3,
		ChaosMTJobs:       4,
	}
}

// FullScale mirrors the paper's relative sizes at simulation scale.
func FullScale() Scale {
	return Scale{
		LogEvents:         150000,
		LogDelaysMs:       []float64{0, 1, 2, 3, 4, 5},
		TPCHSF:            4,
		TPCHSupplierScale: 75,
		SynRecords:        50000,
		SynKeyDomain:      25000,
		SynSizes:          []int{10, 100, 1024, 10240, 30720},
		SpatialA:          6000,
		SpatialB:          20000,
		KNNK:              10,
		SweepNodes:        []int{100, 1000, 10000},
		SweepTasks:        1_000_000,
		SweepEngineTasks:  100_000,
		ChaosMTNodes:      10_000,
		ChaosMTTenants:    4,
		ChaosMTJobs:       16,
		ChaosMTRecords:    12_000,
	}
}
