package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"

	"efind/internal/adaptix"
	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/index"
	"efind/internal/jobsvc"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/workloads"
)

// The adaptive-build experiment runs the Fig. 11(f) synthetic query
// family repeatedly through the job service against an index that does
// not exist yet: an adaptix.Buildable whose store starts empty and whose
// scan fallback prices every lookup at scan cost. Each run's planner
// weighs "build now, win later" (the fifth strategy) against the four
// classic strategies; chosen builds piggyback on the map scan, commit
// between jobs, and shrink the next run's serve time, so the per-run
// makespan converges from scan-cost to the indexed plan's cost. The
// cost model's predicted break-even run is checked against the observed
// crossover versus a leg that never builds.

// abRuns is how many times each leg repeats the query. The offer rate
// covers the input in ceil(1/abOfferRate) runs, so the tail of the
// sequence shows the converged steady state.
const abRuns = 8

// abOfferRate is the fraction of input splits one run offers to build
// (LIAH's rho): 0.25 converges in four runs.
const abOfferRate = 0.25

// abIndexName names the buildable index; distinct from the generator's
// pre-built "syn-index", which this experiment deliberately ignores.
const abIndexName = "syn-adx"

// Fixed build geometry, independent of calibration so the CI-gated
// per-run gauges stay stable: the store's fully-built serve time, the
// per-lookup penalty of one uncovered split, and the per-record charge
// of the piggyback build stage.
const (
	abStoreServe = 0.0008
	abScanTime   = 5e-5
	abBuildTime  = 2e-5
)

// abExtract derives the index entry of one scanned synthetic record.
// The value depends only on the key, so lookups return identical values
// whether a key's records were served from the store or the scan
// fallback — outputs are comparable at every coverage.
func abExtract(_, value string) []index.BuildEntry {
	k := workloads.SyntheticKey(value)
	return []index.BuildEntry{{Key: k, Value: "ix(" + k + ")"}}
}

// abOperator is synOperator with the buildable accessor in place of the
// pre-built store.
func abOperator(bix *adaptix.Buildable) *core.Operator {
	op := core.NewOperator("syn",
		func(in core.Pair) core.PreResult {
			return core.PreResult{Pair: in, Keys: [][]string{{workloads.SyntheticKey(in.Value)}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			joined := ""
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				joined = results[0][0].Values[0]
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "\x00" + joined})
		})
	op.AddIndex(bix)
	return op
}

// abConf composes one run of the query family over the buildable index.
func abConf(name string, input *dfs.File, bix *adaptix.Buildable, mode core.Mode) *core.IndexJobConf {
	conf := &core.IndexJobConf{
		Name:  name,
		Input: input,
		Mode:  mode,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			emit(in)
		},
		Reducer:           mapreduce.IdentityReduce,
		VarianceThreshold: experimentVarianceThreshold,
	}
	conf.AddHeadIndexOperator(abOperator(bix))
	return conf
}

// abLeg is one leg's measurements: per-run makespans and committed
// splits, the plans chosen, the final registry coverage, and — for the
// building leg — the cost model's break-even prediction.
type abLeg struct {
	makespans  []float64
	committed  []int64
	plans      []string
	outputs    []uint64
	covered    int
	total      int
	predicted  int
	altCost    float64
	firstPlan  string
	steadyPlan string
}

// abOutputHash fingerprints a run's output records order-insensitively
// (sorted), so legs whose optimizers chose different plan shapes can
// still be compared on content.
func abOutputHash(out *dfs.File) uint64 {
	recs := append([]dfs.Record(nil), out.All()...)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Value < recs[j].Value
	})
	h := fnv.New64a()
	for _, r := range recs {
		h.Write([]byte(r.Key))
		h.Write([]byte{0})
		h.Write([]byte(r.Value))
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// runAdaptiveLeg runs one leg in a fresh lab: `runs` identical
// ModeOptimized submissions of the query family through a single-tenant
// job service (MaxInFlight 1, so coverage grows strictly between runs).
// offerRate 0 never builds; prebuilt additionally bulk-builds the index
// before the first run (the convergence target).
func runAdaptiveLeg(scale Scale, label string, offerRate float64, prebuilt bool, runs int) (*abLeg, error) {
	section("adaptive-build/" + label)
	l := newLab()
	cfg := synScaleConfig(scale, 1024)
	l.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))
	input, _, err := generateSyn(l, cfg)
	if err != nil {
		return nil, err
	}

	reg := adaptix.NewRegistry()
	store := kvstore.NewHash(l.cluster, abIndexName, 16, 3, abStoreServe)
	bix, err := adaptix.New(adaptix.Config{
		Name:      abIndexName,
		Source:    input,
		Extract:   abExtract,
		Store:     store,
		Registry:  reg,
		ScanTime:  abScanTime,
		BuildTime: abBuildTime,
		OfferRate: offerRate,
	})
	if err != nil {
		return nil, err
	}
	if prebuilt {
		if err := bix.BuildAll(); err != nil {
			return nil, err
		}
	}

	if err := l.rt.CollectStats(abConf("ab-"+label+"-stats", input, bix, core.ModeBaseline)); err != nil {
		return nil, err
	}

	leg := &abLeg{predicted: -1}
	// The break-even prediction is made once, up front, from the same
	// inputs the first run's planner will see: the collected statistics,
	// the registry's (empty) coverage, and the best non-build plan as the
	// alternative.
	if offerRate > 0 && !prebuilt {
		st := l.rt.Catalog.Get("syn")
		if st == nil {
			return nil, fmt.Errorf("adaptive-build/%s: no statistics for operator syn", label)
		}
		is := st.Index[abIndexName]
		covered, total := bix.BuildProgress()
		offer := len(bix.OfferSplits())
		if offer > total-covered {
			offer = total - covered
		}
		m := core.BuildModel{
			Covered: covered, Total: total,
			ScanTime: abScanTime, BuildTime: abBuildTime,
			Offer: offer, TjIdx: store.ServeTime(),
		}
		is.Tj = m.TjAt(covered)
		alt := core.OptimizeOperator(abOperator(bix), core.HeadOp, st, l.rt.Env, core.PlannerOptions{BuildHorizon: -1})
		leg.altCost = alt.Cost
		leg.predicted = core.PredictBuildRuns(st, is, l.rt.Env, m, alt.Cost, runs)
	}

	tenants := []jobsvc.TenantConfig{{Name: "ab", MaxInFlight: 1}}
	var subs []jobsvc.Submission
	for i := 0; i < runs; i++ {
		subs = append(subs, jobsvc.Submission{
			Tenant: "ab",
			At:     0.05 * float64(i),
			Conf:   abConf(fmt.Sprintf("ab-%s-%d", label, i), input, bix, core.ModeOptimized),
		})
	}
	svc, err := jobsvc.New(l.rt, tenants, jobsvc.Options{})
	if err != nil {
		return nil, err
	}
	for _, st := range svc.Run(subs) {
		if st.State != jobsvc.JobCompleted {
			return nil, fmt.Errorf("adaptive-build/%s: job %s %s: %s%v", label, st.Name, st.State, st.Reason, st.Err)
		}
		leg.makespans = append(leg.makespans, st.Makespan())
		leg.committed = append(leg.committed, st.Result.Counters[core.CtrBuildCommitted])
		leg.plans = append(leg.plans, st.Result.Plan.String())
		leg.outputs = append(leg.outputs, abOutputHash(st.Result.Output))
	}
	leg.covered, leg.total = bix.BuildProgress()
	leg.firstPlan = leg.plans[0]
	leg.steadyPlan = leg.plans[len(leg.plans)-1]
	return leg, nil
}

// AdaptiveBuild runs the adaptive index creation experiment: the same
// synthetic query abRuns times under three legs — adaptive (builds as a
// side-effect), scan-only (never builds; the honest alternative), and
// prebuilt (the index bulk-built up front; the convergence target). The
// experiment itself enforces the reproduction claims: full coverage,
// monotone per-run makespans, convergence to within 10% of the prebuilt
// leg, identical outputs everywhere, and a predicted break-even within
// ±1 run of the observed crossover.
func AdaptiveBuild(scale Scale) (*Table, error) {
	adaptive, err := runAdaptiveLeg(scale, "adaptive", abOfferRate, false, abRuns)
	if err != nil {
		return nil, err
	}
	scanonly, err := runAdaptiveLeg(scale, "scan-only", 0, false, abRuns)
	if err != nil {
		return nil, err
	}
	prebuilt, err := runAdaptiveLeg(scale, "prebuilt", 0, true, abRuns)
	if err != nil {
		return nil, err
	}

	// Every run of every leg computes the same join.
	want := prebuilt.outputs[0]
	for _, leg := range []*abLeg{adaptive, scanonly, prebuilt} {
		for k, h := range leg.outputs {
			if h != want {
				return nil, fmt.Errorf("adaptive-build: output diverged (run %d, hash %x vs %x)", k+1, h, want)
			}
		}
	}

	if adaptive.covered != adaptive.total || adaptive.total == 0 {
		return nil, fmt.Errorf("adaptive-build: coverage %d/%d after %d runs; build never completed",
			adaptive.covered, adaptive.total, abRuns)
	}
	if scanonly.covered != 0 {
		return nil, fmt.Errorf("adaptive-build: scan-only leg built %d splits; offer rate 0 must never build", scanonly.covered)
	}

	// Convergence: monotone (small tolerance for plan-shape switches at
	// full coverage) down to within 10% of the prebuilt plan's makespan.
	for k := 1; k < len(adaptive.makespans); k++ {
		if adaptive.makespans[k] > adaptive.makespans[k-1]*1.01 {
			return nil, fmt.Errorf("adaptive-build: makespan rose at run %d: %.4f -> %.4f",
				k+1, adaptive.makespans[k-1], adaptive.makespans[k])
		}
	}
	final := adaptive.makespans[abRuns-1]
	target := prebuilt.makespans[abRuns-1]
	if final > target*1.10 {
		return nil, fmt.Errorf("adaptive-build: converged makespan %.4f not within 10%% of prebuilt %.4f", final, target)
	}

	// Break-even: the first run where the building leg's cumulative cost
	// dips under the never-building leg's, versus the model's prediction.
	observed := -1
	cumA, cumS := 0.0, 0.0
	for k := 0; k < abRuns; k++ {
		cumA += adaptive.makespans[k]
		cumS += scanonly.makespans[k]
		if observed < 0 && cumA <= cumS {
			observed = k + 1
		}
	}
	if observed < 0 {
		return nil, fmt.Errorf("adaptive-build: no observed break-even within %d runs (cum %.4f vs %.4f)", abRuns, cumA, cumS)
	}
	if adaptive.predicted < 0 {
		return nil, fmt.Errorf("adaptive-build: model predicts no break-even within %d runs (observed %d)", abRuns, observed)
	}
	if d := observed - adaptive.predicted; d < -1 || d > 1 {
		return nil, fmt.Errorf("adaptive-build: predicted break-even run %d vs observed %d (tolerance ±1)",
			adaptive.predicted, observed)
	}

	t := &Table{
		Title:   fmt.Sprintf("Adaptive build: %d runs of the Fig. 11(f) query — makespan (virtual s) and committed splits per run", abRuns),
		Columns: []string{"adaptive", "scanonly", "prebuilt", "committed"},
	}
	for k := 0; k < abRuns; k++ {
		t.Add(fmt.Sprintf("run%d", k+1),
			adaptive.makespans[k], scanonly.makespans[k], prebuilt.makespans[k],
			float64(adaptive.committed[k]))
		gauge(fmt.Sprintf("adaptivebuild.run%d.makespan.vms", k+1), adaptive.makespans[k]*1000)
	}
	gauge("adaptivebuild.prebuilt.makespan.vms", target*1000)
	gauge("adaptivebuild.breakeven.runs", float64(observed))

	t.Note("coverage %d/%d splits after %d runs; first plan %s; steady plan %s",
		adaptive.covered, adaptive.total, abRuns, adaptive.firstPlan, adaptive.steadyPlan)
	t.Note("break-even: model predicts run %d (alternative %.4f s/run), observed run %d",
		adaptive.predicted, adaptive.altCost, observed)
	t.Note("convergence: run1 %.4f -> run%d %.4f (%.2fx), prebuilt plan %.4f",
		adaptive.makespans[0], abRuns, final, adaptive.makespans[0]/final, target)
	return t, nil
}
