package experiments

import "testing"

// TestAdaptiveBuildConvergence pins the adaptive index creation claims
// at quick scale. AdaptiveBuild itself enforces the hard acceptance
// criteria (full coverage, monotone makespans, ±1-run break-even,
// within-10%-of-prebuilt convergence, identical outputs) and returns an
// error when any fails; the test adds the relative-shape assertions.
func TestAdaptiveBuildConvergence(t *testing.T) {
	tbl, err := AdaptiveBuild(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != abRuns {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), abRuns)
	}

	first := mustCell(t, tbl, "run1", "adaptive")
	last := mustCell(t, tbl, "run"+itoa(abRuns), "adaptive")
	prebuilt := mustCell(t, tbl, "run"+itoa(abRuns), "prebuilt")
	scan := mustCell(t, tbl, "run"+itoa(abRuns), "scanonly")

	// The first run pays for building on top of scan-cost serving; the
	// converged run must be dramatically cheaper, and cheaper than the
	// never-building alternative.
	if first/last < 2 {
		t.Fatalf("convergence too shallow: run1 %.4f vs run%d %.4f", first, abRuns, last)
	}
	if last >= scan {
		t.Fatalf("converged run (%.4f) should beat the scan-only leg (%.4f)", last, scan)
	}
	if last > prebuilt*1.10 {
		t.Fatalf("converged run (%.4f) not within 10%% of prebuilt (%.4f)", last, prebuilt)
	}

	// The building leg commits its offered splits every run until the
	// registry is complete, then stops.
	total := 0.0
	for k := 1; k <= abRuns; k++ {
		total += mustCell(t, tbl, "run"+itoa(k), "committed")
	}
	if total == 0 {
		t.Fatal("no splits were ever committed")
	}
	if c := mustCell(t, tbl, "run"+itoa(abRuns), "committed"); c != 0 {
		t.Fatalf("final run still committed %v splits; build should have completed", c)
	}

	// The scan-only leg is steady: identical plans at identical coverage
	// (tolerance for float rounding at different virtual admission times).
	scanFirst := mustCell(t, tbl, "run1", "scanonly")
	if d := scanFirst - scan; d < -1e-6*scan || d > 1e-6*scan {
		t.Fatalf("scan-only leg drifted: run1 %.9f vs run%d %.9f", scanFirst, abRuns, scan)
	}
}
