package experiments

import (
	"fmt"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/workloads"
)

// synScaleConfig derives the synthetic generator config from a scale and
// an index value size l.
func synScaleConfig(scale Scale, l int) workloads.SyntheticConfig {
	cfg := workloads.DefaultSyntheticConfig()
	cfg.Records = scale.SynRecords
	cfg.KeyDomain = scale.SynKeyDomain
	cfg.IndexValueSize = l
	cfg.ValueSize = 256
	if calibration != nil && calibration.TjWarm > 0 {
		cfg.ServeTime = calibration.TjWarm
	}
	return cfg
}

// generateSyn writes the synthetic input and index into the lab.
func generateSyn(l *lab, cfg workloads.SyntheticConfig) (*dfs.File, *kvstore.Store, error) {
	return workloads.GenerateSynthetic(l.fs, "syn", cfg)
}

// synOperator builds the synthetic join's index operator: look up each
// record's key, attach the l-sized index value.
func synOperator(store *kvstore.Store) *core.Operator {
	op := core.NewOperator("syn",
		func(in core.Pair) core.PreResult {
			return core.PreResult{Pair: in, Keys: [][]string{{workloads.SyntheticKey(in.Value)}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			joined := ""
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				joined = results[0][0].Values[0]
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "\x00" + joined})
		})
	op.AddIndex(store)
	return op
}

// buildSynConf composes the synthetic join of §5.1 as an EFind job: look
// up every record's key in the index, attach the l-sized value, group by
// record key.
func buildSynConf(name string, input *dfs.File, store *kvstore.Store, mode core.Mode) *core.IndexJobConf {
	op := synOperator(store)
	conf := &core.IndexJobConf{
		Name:  name,
		Input: input,
		Mode:  mode,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			emit(in)
		},
		Reducer: mapreduce.IdentityReduce,
	}
	conf.AddHeadIndexOperator(op)
	return conf
}

// runSynOnce executes the synthetic join for one index value size l under
// one strategy in a fresh lab.
func runSynOnce(scale Scale, l int, column string) (float64, *core.JobResult, error) {
	section(fmt.Sprintf("11f/l=%d/%s", l, column))
	env := newLab()
	cfg := synScaleConfig(scale, l)
	env.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))
	input, store, err := generateSyn(env, cfg)
	if err != nil {
		return 0, nil, err
	}
	if column == "optimized" {
		if err := env.rt.CollectStats(buildSynConf("syn-stats", input, store, core.ModeBaseline)); err != nil {
			return 0, nil, err
		}
	}
	conf := buildSynConf("syn-"+column, input, store, core.ModeBaseline)
	res, err := submitMode(env.rt, conf, column, "syn", store.Name())
	if err != nil {
		return 0, nil, err
	}
	return res.VTime, res, nil
}

// Fig11f reproduces Figure 11(f): the synthetic join across strategies
// while the index lookup result size l sweeps from 10 B to 30 KB.
func Fig11f(scale Scale) (*Table, error) {
	t := &Table{Title: "Figure 11(f): Synthetic — runtime (virtual s) vs index value size l", Columns: strategyColumns}
	for _, l := range scale.SynSizes {
		row := make([]float64, 0, len(strategyColumns))
		for _, c := range strategyColumns {
			vt, res, err := runSynOnce(scale, l, c)
			if err != nil {
				return nil, fmt.Errorf("fig11f l=%d %s: %w", l, c, err)
			}
			row = append(row, vt)
			if c == "optimized" {
				t.Note("l=%dB optimized plan: %v", l, res.Plan)
			}
		}
		t.Add(fmt.Sprintf("l=%dB", l), row...)
	}
	return t, nil
}
