package experiments

// Experiment is one named, runnable experiment.
type Experiment struct {
	// ID matches the paper's figure number or the ablation name.
	ID string
	// Description says what the experiment reproduces.
	Description string
	// Run executes the experiment at the given scale.
	Run func(Scale) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "11a", Description: "LOG strategy comparison vs extra lookup delay", Run: Fig11a},
		{ID: "11b", Description: "TPC-H Q3 strategy comparison", Run: Fig11b},
		{ID: "11c", Description: "TPC-H Q9 strategy comparison", Run: Fig11c},
		{ID: "11d", Description: "TPC-H DUP10 Q3 strategy comparison", Run: Fig11d},
		{ID: "11e", Description: "TPC-H DUP10 Q9 strategy comparison", Run: Fig11e},
		{ID: "11f", Description: "Synthetic strategy comparison vs index value size", Run: Fig11f},
		{ID: "12", Description: "Local vs remote index lookup latency", Run: Fig12},
		{ID: "13", Description: "kNN join: EFind vs hand-tuned H-zkNNJ", Run: Fig13},
		{ID: "ablation-cache", Description: "Lookup-cache capacity sweep", Run: AblationCacheCapacity},
		{ID: "ablation-variance", Description: "Variance threshold for re-optimization", Run: AblationVarianceThreshold},
		{ID: "ablation-replan", Description: "Plan change at most once vs disabled", Run: AblationReplanDisabled},
		{ID: "ablation-planner", Description: "FullEnumerate vs k-Repart", Run: AblationPlanner},
		{ID: "ablation-fm", Description: "FM sketch accuracy", Run: AblationFMAccuracy},
		{ID: "ablation-boundary", Description: "Re-partitioning job boundary choice", Run: AblationBoundary},
		{ID: "ablation-convergence", Description: "Dynamic converges to optimized as input grows (§5.3)", Run: AblationDynamicConvergence},
		{ID: "ablation-straggler", Description: "Index locality under a straggler node (footnote 3)", Run: AblationStraggler},
		{ID: "ablation-chaos", Description: "Seeded fault schedules: crash, speculation, index outage — same answer", Run: AblationChaos},
		{ID: "batchcmp", Description: "Batched multi-get vs per-key lookups on the synthetic sweep", Run: BatchCompare},
		{ID: "multi-tenant", Description: "Job service: 2 tenants sharing the cluster — fair makespans, pooled-cache uplift, cross-tenant outage", Run: MultiTenant},
		{ID: "adaptive-build", Description: "Adaptive index creation: repeated query converges from scan cost to the indexed plan; break-even matches the cost model", Run: AdaptiveBuild},
		{ID: "scale-sweep", Description: "Scheduler and engine wall-clock throughput at 100–10k nodes, clean and under chaos", Run: ScaleSweep},
		{ID: "fstore-sweep", Description: "In-memory vs mmap-snapshot storage backend on the synthetic sweep — same answer required", Run: FStoreSweep},
		{ID: "chaos-multitenant", Description: "Cross-job chaos at scale: crashes, speculation, and outages across tenants' concurrent jobs, plus coordinator crash recovery — same decisions required", Run: ChaosMultiTenant},
	}
}

// Find returns the experiment with the given ID, or nil.
func Find(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			exp := e
			return &exp
		}
	}
	return nil
}
