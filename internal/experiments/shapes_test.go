package experiments

import (
	"testing"
)

// These tests pin the reproduction claims: the relative shapes of every
// figure (who wins, roughly by how much, where crossovers fall) at quick
// scale. Absolute virtual times are not asserted.

func mustCell(t *testing.T, tbl *Table, row, col string) float64 {
	t.Helper()
	v, ok := tbl.Cell(row, col)
	if !ok {
		t.Fatalf("missing cell (%s, %s) in %s", row, col, tbl.Title)
	}
	return v
}

func TestFig11aShape(t *testing.T) {
	tbl, err := Fig11a(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	prevGain := 0.0
	for _, d := range QuickScale().LogDelaysMs {
		row := tbl.Rows[0].Label
		_ = row
		label := "delay=" + trimFloat(d) + "ms"
		base := mustCell(t, tbl, label, "base")
		cache := mustCell(t, tbl, label, "cache")
		repart := mustCell(t, tbl, label, "repart")
		opt := mustCell(t, tbl, label, "optimized")
		dyn := mustCell(t, tbl, label, "dynamic")

		// Paper: cache 1.2–2.8x over base; repart additional gain; both
		// grow with delay.
		if cache >= base {
			t.Fatalf("%s: cache (%g) should beat base (%g)", label, cache, base)
		}
		if repart >= cache*1.05 {
			t.Fatalf("%s: repart (%g) should be at least on par with cache (%g)", label, repart, cache)
		}
		gain := base / cache
		if gain < prevGain*0.95 {
			t.Fatalf("%s: cache gain %.2f should not shrink with delay (prev %.2f)", label, gain, prevGain)
		}
		prevGain = gain
		// Optimized must track the best fixed strategy closely.
		best := minOf(base, cache, repart)
		if opt > best*1.15 {
			t.Fatalf("%s: optimized (%g) strays from best fixed (%g)", label, opt, best)
		}
		// Dynamic sits between baseline and optimal.
		if dyn >= base || dyn < opt*0.95 {
			t.Fatalf("%s: dynamic (%g) should be between optimized (%g) and base (%g)", label, dyn, opt, base)
		}
	}
	// Improvements at 5ms are substantial (paper: 2–8x overall).
	base5 := mustCell(t, tbl, "delay=5ms", "base")
	opt5 := mustCell(t, tbl, "delay=5ms", "optimized")
	if base5/opt5 < 2 {
		t.Fatalf("optimized should win ≥2x at 5ms, got %.2fx", base5/opt5)
	}
}

func trimFloat(f float64) string {
	if f == float64(int(f)) {
		return itoa(int(f))
	}
	return "?"
}

func itoa(i int) string {
	return string(rune('0' + i)) // delays are single digits in the scales
}

func minOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func TestFig11bShapeQ3(t *testing.T) {
	tbl, err := Fig11b(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	base := mustCell(t, tbl, "runtime", "base")
	cache := mustCell(t, tbl, "runtime", "cache")
	repart := mustCell(t, tbl, "runtime", "repart")
	opt := mustCell(t, tbl, "runtime", "optimized")
	// Paper Q3: cache 1.7–1.9x over base; repart WORSE than cache (local
	// redundancy already absorbed); optimized ≈ cache.
	if base/cache < 1.3 {
		t.Fatalf("Q3 cache gain %.2fx too small (locality of lineitems per order)", base/cache)
	}
	if repart <= cache {
		t.Fatalf("Q3 repart (%g) should lose to cache (%g): shuffle not worth it", repart, cache)
	}
	if opt > cache*1.1 {
		t.Fatalf("Q3 optimized (%g) should match cache (%g)", opt, cache)
	}
}

func TestFig11cShapeQ9(t *testing.T) {
	tbl, err := Fig11c(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	base := mustCell(t, tbl, "runtime", "base")
	cache := mustCell(t, tbl, "runtime", "cache")
	repart := mustCell(t, tbl, "runtime", "repart")
	idxloc := mustCell(t, tbl, "runtime", "idxloc")
	opt := mustCell(t, tbl, "runtime", "optimized")
	// Paper Q9: cache has little benefit (no locality in supplier keys);
	// repart wins clearly; idxloc shows no clear benefit over repart.
	if base/cache > 1.5 {
		t.Fatalf("Q9 cache gain %.2fx too large; paper expects little benefit", base/cache)
	}
	if repart >= cache {
		t.Fatalf("Q9 repart (%g) should beat cache (%g)", repart, cache)
	}
	if repart >= base {
		t.Fatalf("Q9 repart (%g) should beat base (%g)", repart, base)
	}
	if idxloc < repart*0.7 || idxloc > repart*1.4 {
		t.Fatalf("Q9 idxloc (%g) should be close to repart (%g)", idxloc, repart)
	}
	if opt > repart*1.3 {
		t.Fatalf("Q9 optimized (%g) strays from repart (%g)", opt, repart)
	}
}

func TestFig11dShapeDup10Q3(t *testing.T) {
	tbl, err := Fig11d(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	base := mustCell(t, tbl, "runtime", "base")
	cache := mustCell(t, tbl, "runtime", "cache")
	repart := mustCell(t, tbl, "runtime", "repart")
	// Paper DUP10 Q3: cross-machine redundancy flips the Q3 verdict —
	// repart now beats cache (paper: 2.1x).
	if repart >= cache {
		t.Fatalf("DUP10 Q3 repart (%g) should beat cache (%g)", repart, cache)
	}
	if base/repart < 3 {
		t.Fatalf("DUP10 Q3 repart gain %.2fx too small", base/repart)
	}
}

func TestFig11eShapeDup10Q9(t *testing.T) {
	tbl, err := Fig11e(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	base := mustCell(t, tbl, "runtime", "base")
	repart := mustCell(t, tbl, "runtime", "repart")
	opt := mustCell(t, tbl, "runtime", "optimized")
	dyn := mustCell(t, tbl, "runtime", "dynamic")
	// Paper DUP10 Q9: repart 7.9x over base (the headline 2–8x range).
	if base/repart < 5 {
		t.Fatalf("DUP10 Q9 repart gain %.2fx, want ≥5x", base/repart)
	}
	if opt > repart*1.3 {
		t.Fatalf("DUP10 Q9 optimized (%g) strays from repart (%g)", opt, repart)
	}
	// Dynamic replans mid-job: pays the statistics phase but beats base.
	if dyn >= base {
		t.Fatalf("DUP10 Q9 dynamic (%g) should beat base (%g)", dyn, base)
	}
	if dyn <= opt {
		t.Fatalf("DUP10 Q9 dynamic (%g) cannot beat fully informed optimized (%g)", dyn, opt)
	}
}

func TestFig11fShapeSynthetic(t *testing.T) {
	scale := QuickScale()
	tbl, err := Fig11f(scale)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: repart 2.0–2.8x over base at all l; idxloc loses (slightly)
	// to repart for small results and wins for large ones (crossover
	// above 1KB).
	for _, l := range []string{"l=10B", "l=1024B", "l=30720B"} {
		base := mustCell(t, tbl, l, "base")
		repart := mustCell(t, tbl, l, "repart")
		if repart >= base {
			t.Fatalf("%s: repart (%g) should beat base (%g)", l, repart, base)
		}
	}
	repartSmall := mustCell(t, tbl, "l=10B", "repart")
	idxlocSmall := mustCell(t, tbl, "l=10B", "idxloc")
	repartBig := mustCell(t, tbl, "l=30720B", "repart")
	idxlocBig := mustCell(t, tbl, "l=30720B", "idxloc")
	if idxlocSmall < repartSmall*0.98 {
		t.Fatalf("l=10B: idxloc (%g) should not clearly beat repart (%g)", idxlocSmall, repartSmall)
	}
	if idxlocBig >= repartBig {
		t.Fatalf("l=30720B: idxloc (%g) should beat repart (%g)", idxlocBig, repartBig)
	}
}

func TestFig12Shape(t *testing.T) {
	tbl, err := Fig12(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Remote ≥ local everywhere; the gap grows with result size.
	prevGap := -1.0
	for _, r := range tbl.Rows {
		local, remote := r.Cells[0], r.Cells[1]
		if remote < local {
			t.Fatalf("%s: remote (%g) below local (%g)", r.Label, remote, local)
		}
		gap := remote - local
		if gap < prevGap {
			t.Fatalf("%s: gap %g shrank (prev %g)", r.Label, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap <= 0 {
		t.Fatal("largest result size should show a clear remote penalty")
	}
}

func TestFig13Shape(t *testing.T) {
	tbl, err := Fig13(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	hz := mustCell(t, tbl, "knnj", "h-zknnj")
	opt := mustCell(t, tbl, "knnj", "optimized")
	base := mustCell(t, tbl, "knnj", "base")
	// Paper: the EFind solution performs like the hand-tuned one. In this
	// simulation EFind is at least competitive (within 3x either way; it
	// is usually faster because index-server contention is not modeled).
	if opt > hz*3 || hz > opt*10 {
		t.Fatalf("EFind optimized (%g) and H-zkNNJ (%g) should be comparable", opt, hz)
	}
	if base > hz*3 {
		t.Fatalf("EFind base (%g) should stay within a small factor of H-zkNNJ (%g)", base, hz)
	}
}

func TestAblationTablesRun(t *testing.T) {
	scale := QuickScale()
	cache, err := AblationCacheCapacity(scale)
	if err != nil {
		t.Fatal(err)
	}
	// Miss ratio must not increase with capacity.
	prev := 1.1
	for _, r := range cache.Rows {
		if r.Cells[1] > prev+1e-9 {
			t.Fatalf("miss ratio rose with capacity: %v", cache.Rows)
		}
		prev = r.Cells[1]
	}

	vt, err := AblationVarianceThreshold(scale)
	if err != nil {
		t.Fatal(err)
	}
	// The tightest threshold must block replanning; a sane one must not.
	if vt.Rows[0].Cells[1] != 0 {
		t.Fatalf("threshold=0.001 should block replanning: %v", vt.Rows)
	}
	replannedSomewhere := false
	for _, r := range vt.Rows[1:] {
		if r.Cells[1] == 1 {
			replannedSomewhere = true
		}
	}
	if !replannedSomewhere {
		t.Fatal("no threshold allowed a replan")
	}

	rp, err := AblationReplanDisabled(scale)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Rows[0].Cells[0] >= rp.Rows[1].Cells[0] {
		t.Fatalf("replanning should pay off: %v", rp.Rows)
	}

	pl, err := AblationPlanner(scale)
	if err != nil {
		t.Fatal(err)
	}
	full, k1, k2 := pl.Rows[0], pl.Rows[1], pl.Rows[2]
	if full.Cells[0] > k1.Cells[0] || full.Cells[0] > k2.Cells[0] {
		t.Fatalf("FullEnumerate must find the cheapest plan: %v", pl.Rows)
	}
	if k2.Cells[0] > k1.Cells[0] {
		t.Fatalf("2-Repart should be at least as good as 1-Repart: %v", pl.Rows)
	}

	fm, err := AblationFMAccuracy(scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fm.Rows {
		if r.Cells[2] < 0.5 || r.Cells[2] > 2 {
			t.Fatalf("FM estimate off by more than 2x: %v", r)
		}
	}

	bd, err := AblationBoundary(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Rows) != 3 {
		t.Fatalf("boundary ablation rows: %v", bd.Rows)
	}
}

// TestDynamicConvergence pins §5.3's scaling claim: the dynamic/optimized
// ratio shrinks monotonically as the input grows (the statistics phase is
// a fixed first wave).
func TestDynamicConvergence(t *testing.T) {
	tbl, err := AblationDynamicConvergence(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	prev := tbl.Rows[0].Cells[2]
	for _, r := range tbl.Rows[1:] {
		ratio := r.Cells[2]
		if ratio >= prev {
			t.Fatalf("dynamic/optimized ratio did not shrink: %v", tbl.Rows)
		}
		prev = ratio
	}
}

// TestStragglerBounded pins footnote 3's design point: with soft
// placement, a quarter-speed node slows the index-locality job by less
// than the 4x a hard pin would cost.
func TestStragglerBounded(t *testing.T) {
	tbl, err := AblationStraggler(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	uniform := tbl.Rows[0].Cells[0]
	slowed := tbl.Rows[1].Cells[0]
	if slowed <= uniform {
		t.Fatalf("straggler should cost something: %g vs %g", slowed, uniform)
	}
	if slowed/uniform >= 3.5 {
		t.Fatalf("soft placement should bound the slowdown below the pin-equivalent 4x, got %.2fx", slowed/uniform)
	}
}

func TestSuiteRegistryComplete(t *testing.T) {
	want := []string{"11a", "11b", "11c", "11d", "11e", "11f", "12", "13"}
	for _, id := range want {
		if Find(id) == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if Find("nope") != nil {
		t.Fatal("unknown id should return nil")
	}
	if len(All()) < 12 {
		t.Fatalf("registry has %d experiments; ablations missing?", len(All()))
	}
}
