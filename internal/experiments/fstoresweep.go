package experiments

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"efind/internal/core"
	"efind/internal/fstore"
)

// synRunSignature fingerprints everything a backend change must not
// alter: the output records (in deterministic chunk order), the task
// counters, and the index's lookup/miss totals. Virtual time is compared
// separately so a divergence report can say which of the two moved.
type synRunSignature struct {
	vtime   float64
	fp      uint64
	lookups int64
	misses  int64
}

// runSynBackend executes the Fig. 11(f) synthetic join under the
// baseline strategy with the chosen storage backend. File-backed runs
// put both the DFS (input and every intermediate file) and the index
// store onto fstore snapshots, then release every mapping and verify
// none leaked.
func runSynBackend(scale Scale, l int, fileBacked bool) (synRunSignature, error) {
	backend := "mem"
	if fileBacked {
		backend = "file"
	}
	section(fmt.Sprintf("fstore-sweep/l=%d/%s", l, backend))
	handles0 := fstore.OpenHandles()
	env := newLab()
	cfg := synScaleConfig(scale, l)
	env.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))

	var dir string
	if fileBacked {
		var err error
		dir, err = os.MkdirTemp("", "efind-fstore-sweep")
		if err != nil {
			return synRunSignature{}, err
		}
		defer os.RemoveAll(dir)
		if err := env.fs.SetBacking(filepath.Join(dir, "dfs")); err != nil {
			return synRunSignature{}, err
		}
	}
	input, store, err := generateSyn(env, cfg)
	if err != nil {
		return synRunSignature{}, err
	}
	if fileBacked {
		if err := store.Freeze(filepath.Join(dir, "kv")); err != nil {
			return synRunSignature{}, err
		}
	}
	conf := buildSynConf("syn-"+backend, input, store, core.ModeBaseline)
	res, err := submitMode(env.rt, conf, "base", "syn", store.Name())
	if err != nil {
		return synRunSignature{}, err
	}

	h := fnv.New64a()
	for _, r := range res.Output.All() {
		h.Write([]byte(r.Key))
		h.Write([]byte{0})
		h.Write([]byte(r.Value))
		h.Write([]byte{0xff})
	}
	names := make([]string, 0, len(res.Counters))
	for n := range res.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s=%d;", n, res.Counters[n])
	}
	sig := synRunSignature{
		vtime:   res.VTime,
		fp:      h.Sum64(),
		lookups: store.Lookups(),
		misses:  store.Misses(),
	}

	if err := env.engine.Close(); err != nil {
		return synRunSignature{}, err
	}
	if err := store.Close(); err != nil {
		return synRunSignature{}, err
	}
	if leaked := fstore.OpenHandles() - handles0; leaked != 0 {
		return synRunSignature{}, fmt.Errorf("fstore-sweep l=%d %s: %d snapshot handle(s) leaked after shutdown", l, backend, leaked)
	}
	return sig, nil
}

// FStoreSweep compares the in-memory and file-backed (mmap snapshot)
// storage backends on the Fig. 11(f) synthetic family. The backends must
// agree bit-for-bit — same output records, same counters, same index
// traffic, same virtual time — because file-backing changes only where
// bytes live, never what the simulation computes; the "identical" column
// is 1 exactly when they do. The virtual times also feed the CI
// regression gate per backend.
func FStoreSweep(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "fstore sweep: in-memory vs mmap-snapshot backend — runtime (virtual s) vs index value size l",
		Columns: []string{"mem", "file", "identical"},
	}
	if cal := calibration; cal != nil {
		t.Note("calibrated: %s", cal)
	}
	if !fstore.MmapAvailable() {
		t.Note("mmap unavailable on this platform; file-backed runs use the read fallback")
	}
	for _, l := range scale.SynSizes {
		mem, err := runSynBackend(scale, l, false)
		if err != nil {
			return nil, err
		}
		file, err := runSynBackend(scale, l, true)
		if err != nil {
			return nil, err
		}
		identical := 0.0
		if mem == file {
			identical = 1.0
		} else {
			t.Note("l=%dB DIVERGED: mem={vt=%.6f fp=%016x lk=%d ms=%d} file={vt=%.6f fp=%016x lk=%d ms=%d}",
				l, mem.vtime, mem.fp, mem.lookups, mem.misses, file.vtime, file.fp, file.lookups, file.misses)
		}
		gauge(fmt.Sprintf("fstore.l%d.mem.vms", l), mem.vtime*1000)
		gauge(fmt.Sprintf("fstore.l%d.file.vms", l), file.vtime*1000)
		t.Add(fmt.Sprintf("l=%dB", l), mem.vtime, file.vtime, identical)
	}
	return t, nil
}
