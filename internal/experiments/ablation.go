package experiments

import (
	"fmt"
	"time"

	"efind/internal/core"
	"efind/internal/sketch"
)

// AblationCacheCapacity sweeps the lookup-cache capacity (the paper fixes
// 1024 entries and leaves the sweep to future work): the synthetic join,
// whose uniform-random keys make the miss ratio a direct function of
// capacity vs key-domain size.
func AblationCacheCapacity(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: lookup-cache capacity (synthetic join, cache strategy)",
		Columns: []string{"runtime", "missRatio"},
	}
	for _, capacity := range []int{64, 256, 1024, 4096, 16384} {
		vt, miss, err := runSynWithCache(scale, capacity)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("cap=%d", capacity), vt, miss)
	}
	return t, nil
}

func runSynWithCache(scale Scale, capacity int) (float64, float64, error) {
	l := newLab()
	cfg := synScaleConfig(scale, 1024)
	l.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))
	input, store, err := generateSyn(l, cfg)
	if err != nil {
		return 0, 0, err
	}
	conf := buildSynConf(fmt.Sprintf("syn-cap%d", capacity), input, store, core.ModeCache)
	conf.CacheCapacity = capacity
	res, err := l.rt.Submit(conf)
	if err != nil {
		return 0, 0, err
	}
	probes := res.Counters["efind.syn.ix."+store.Name()+".cache.probes"]
	misses := res.Counters["efind.syn.ix."+store.Name()+".cache.misses"]
	miss := 1.0
	if probes > 0 {
		miss = float64(misses) / float64(probes)
	}
	return res.VTime, miss, nil
}

// AblationVarianceThreshold sweeps Algorithm 1's variance gate on the LOG
// application: tight thresholds refuse to replan, loose ones replan from
// shaky statistics.
func AblationVarianceThreshold(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: variance threshold for re-optimization (LOG, dynamic)",
		Columns: []string{"runtime", "replanned"},
	}
	for _, th := range []float64{0.001, 0.05, 0.2, 1.0} {
		l := newLab()
		l.fs.ChunkTarget = chunkTargetFor(scale.LogEvents * 90)
		input, geo, err := setupLog(l, logScaleConfig(scale), 2)
		if err != nil {
			return nil, err
		}
		conf := logJobConf(fmt.Sprintf("log-th%g", th), input, geo, core.ModeDynamic)
		conf.VarianceThreshold = th
		res, err := l.rt.Submit(conf)
		if err != nil {
			return nil, err
		}
		replanned := 0.0
		if res.Replanned {
			replanned = 1
		}
		t.Add(fmt.Sprintf("threshold=%g", th), res.VTime, replanned)
	}
	return t, nil
}

// AblationReplanDisabled compares the dynamic runtime with replanning
// allowed (the paper's at-most-once) against the same runtime with the
// plan change disabled — isolating the value of the mid-job switch.
func AblationReplanDisabled(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: plan change at most once vs disabled (LOG, dynamic, +2ms)",
		Columns: []string{"runtime", "replanned"},
	}
	for _, disable := range []bool{false, true} {
		l := newLab()
		l.fs.ChunkTarget = chunkTargetFor(scale.LogEvents * 90)
		input, geo, err := setupLog(l, logScaleConfig(scale), 2)
		if err != nil {
			return nil, err
		}
		conf := logJobConf("log-replan", input, geo, core.ModeDynamic)
		label := "replan=once"
		if disable {
			conf.MaxPlanChanges = -1
			label = "replan=never"
		}
		res, err := l.rt.Submit(conf)
		if err != nil {
			return nil, err
		}
		replanned := 0.0
		if res.Replanned {
			replanned = 1
		}
		t.Add(label, res.VTime, replanned)
	}
	return t, nil
}

// AblationPlanner compares FullEnumerate with k-Repart on synthetic
// operator statistics over m independent indices: plan cost achieved and
// planning time (§3.5's tradeoff).
func AblationPlanner(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: FullEnumerate vs k-Repart (m=6 indices, modeled cost and plan time)",
		Columns: []string{"planCost", "planMicros"},
	}
	env := core.Env{BW: 125e6, F: 2.5e-8, Tcache: 1e-6, Nodes: 12}
	op := core.NewOperator("m6", nil, nil)
	st := &core.OperatorStats{
		N1: 1e5, Records: 12e5, S1: 120, Spre: 80, Sidx: 400, Spost: 150, Smap: 150,
		Index: map[string]core.IndexStats{},
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("ix%d", i)
		op.AddIndex(fakeIdx{name: name})
		st.Index[name] = core.IndexStats{
			Nik: 1, Sik: 16, Siv: float64(50 * (i + 1)),
			Tj: 0.0002 * float64(i+1), Theta: float64(1 + i*i), R: 0.9,
		}
	}
	cases := []struct {
		label string
		opts  core.PlannerOptions
	}{
		{"full-enumerate", core.PlannerOptions{FullEnumerateLimit: 6, KRepart: 2}},
		{"1-repart", core.PlannerOptions{FullEnumerateLimit: 1, KRepart: 1}},
		{"2-repart", core.PlannerOptions{FullEnumerateLimit: 1, KRepart: 2}},
	}
	for _, cse := range cases {
		start := time.Now()
		p := core.OptimizeOperator(op, core.BodyOp, st, env, cse.opts)
		elapsed := time.Since(start)
		t.Add(cse.label, p.Cost, float64(elapsed.Microseconds()))
		t.Note("%s picked: %v", cse.label, p)
	}
	return t, nil
}

// AblationFMAccuracy measures the Flajolet–Martin Θ-estimation error
// against exact distinct counts across cardinalities.
func AblationFMAccuracy(Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: FM sketch distinct-count estimate vs exact",
		Columns: []string{"exact", "estimated", "ratio"},
	}
	for _, n := range []int{100, 1000, 10000, 100000} {
		fm := sketch.New(64)
		for i := 0; i < n; i++ {
			fm.Add(fmt.Sprintf("key-%d", i))
		}
		est := fm.Estimate()
		t.Add(fmt.Sprintf("n=%d", n), float64(n), est, est/float64(n))
	}
	return t, nil
}

// AblationBoundary forces each re-partitioning boundary on TPC-H Q3's
// Orders index (the S_min choice of §3.3).
func AblationBoundary(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: re-partitioning job boundary (TPC-H Q3, Orders index)",
		Columns: []string{"runtime"},
	}
	for _, b := range []core.Boundary{core.BoundaryPre, core.BoundaryIdx, core.BoundaryLate} {
		vt, err := runQ3Boundary(scale, b)
		if err != nil {
			return nil, err
		}
		t.Add("boundary="+b.String(), vt)
	}
	return t, nil
}

func runQ3Boundary(scale Scale, b core.Boundary) (float64, error) {
	l := newLab()
	cfg := tpchScaleConfig(scale, 1)
	l.fs.ChunkTarget = chunkTargetFor(int(6000*scale.TPCHSF) * 60)
	w, err := tpchSetup(l, cfg)
	if err != nil {
		return 0, err
	}
	conf := w.Q3Conf("q3-boundary-"+b.String(), core.ModeCustom)
	op, ix := w.Q3RepartTarget()
	conf.ForceStrategy(op, ix, core.Repartition)
	conf.ForceBoundary(op, ix, b)
	res, err := l.rt.Submit(conf)
	if err != nil {
		return 0, err
	}
	return res.VTime, nil
}
