package experiments

import (
	"fmt"

	"efind/internal/core"
	"efind/internal/ixclient"
)

// runSynBatch executes the Figure 11(f) synthetic join for one index value
// size l in a fresh lab, with record batching toggled, and returns the job
// result plus the number of charged network round trips per lookup lane
// (every map slot issues lookups concurrently, so per-lane round trips are
// what the batching amortizes).
func runSynBatch(scale Scale, l int, batch bool) (*core.JobResult, float64, error) {
	env := newLab()
	cfg := synScaleConfig(scale, l)
	env.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))
	input, store, err := generateSyn(env, cfg)
	if err != nil {
		return nil, 0, err
	}
	name := "syn-batch-off"
	if batch {
		name = "syn-batch-on"
	}
	conf := buildSynConf(name, input, store, core.ModeBaseline)
	conf.Batch = batch
	res, err := env.rt.Submit(conf)
	if err != nil {
		return nil, 0, err
	}
	rts := res.Counters[ixclient.CtrNetRoundTrips("syn", store.Name())]
	lanes := env.cluster.MapSlots()
	return res, float64(rts) / float64(lanes), nil
}

// BatchCompare contrasts the index client pipeline's per-key costing
// (paper-faithful, the default) against the batched multi-get fast path on
// the Figure 11(f) synthetic sweep: same baseline plan, same output
// records, but cache-missed keys travel as one multi-get per index
// partition, so the charged network round trips per lookup lane drop by
// roughly the batch size over the partition fan-out.
func BatchCompare(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Batching: kvstore multi-get vs per-key lookups (Fig. 11(f) sweep, baseline plan)",
		Columns: []string{"rt/lane off", "rt/lane on", "vtime off", "vtime on"},
	}
	for _, l := range scale.SynSizes {
		off, rtOff, err := runSynBatch(scale, l, false)
		if err != nil {
			return nil, fmt.Errorf("batchcmp l=%d off: %w", l, err)
		}
		on, rtOn, err := runSynBatch(scale, l, true)
		if err != nil {
			return nil, fmt.Errorf("batchcmp l=%d on: %w", l, err)
		}
		if rtOn >= rtOff {
			t.Note("l=%dB: batching did NOT reduce round trips (%.1f -> %.1f)", l, rtOff, rtOn)
		}
		t.Add(fmt.Sprintf("l=%dB", l), rtOff, rtOn, off.VTime, on.VTime)
	}
	return t, nil
}
