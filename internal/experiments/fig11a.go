package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"efind/internal/cloudsvc"
	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/workloads"
)

// geoBaseDelay is the paper's measured cloud-service latency (0.8 ms per
// IP-to-region lookup).
const geoBaseDelay = 0.0008

// logTopK is the k of the LOG application's top-k frequent URLs.
const logTopK = 10

// logJobConf builds the LOG application of §5.1: look up each event's
// source IP in the cloud geo service (head operator), then count URL
// visits per (region, URL) pair.
func logJobConf(name string, input *dfs.File, geo *cloudsvc.Service, mode core.Mode) *core.IndexJobConf {
	geoOp := core.NewOperator("geo",
		func(in core.Pair) core.PreResult {
			ip, _, _, ok := workloads.ParseLogValue(in.Value)
			if !ok {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{ip}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			region := "unknown"
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				region = results[0][0].Values[0]
			}
			emit(core.Pair{Key: pair.Key, Value: region + "\x00" + pair.Value})
		})
	geoOp.AddIndex(geo)

	conf := &core.IndexJobConf{
		Name:  name,
		Input: input,
		Mode:  mode,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			parts := strings.SplitN(in.Value, "\x00", 2)
			if len(parts) != 2 {
				return
			}
			_, url, _, ok := workloads.ParseLogValue(parts[1])
			if !ok {
				return
			}
			emit(core.Pair{Key: parts[0] + "|" + url, Value: "1"})
		},
		Reducer:  sumCounts,
		Combiner: sumCounts, // pre-aggregate visit counts before the shuffle
	}
	conf.AddHeadIndexOperator(geoOp)
	return conf
}

// sumCounts aggregates integer visit counts; associative and commutative,
// so it serves as both the reducer and the combiner.
func sumCounts(_ *mapreduce.TaskContext, key string, values []string, emit core.Emit) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		total += n
	}
	emit(core.Pair{Key: key, Value: strconv.Itoa(total)})
}

// topKJob is the follow-on plain MapReduce job of the LOG application:
// per-region top-k URLs. Identical across strategies; included so the
// reported times cover the whole application.
func topKJob(engine *mapreduce.Engine, input *dfs.File) (*mapreduce.Result, error) {
	return engine.Run(&mapreduce.Job{
		Name:  "log-topk",
		Input: input,
		Map: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			f := strings.SplitN(in.Key, "|", 2)
			if len(f) != 2 {
				return
			}
			emit(core.Pair{Key: f[0], Value: f[1] + "=" + in.Value})
		},
		NumReduce: 8,
		Reduce: func(_ *mapreduce.TaskContext, region string, values []string, emit core.Emit) {
			type uc struct {
				url   string
				count int
			}
			list := make([]uc, 0, len(values))
			for _, v := range values {
				i := strings.LastIndexByte(v, '=')
				if i < 0 {
					continue
				}
				n, err := strconv.Atoi(v[i+1:])
				if err != nil {
					continue
				}
				list = append(list, uc{url: v[:i], count: n})
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].count != list[j].count {
					return list[i].count > list[j].count
				}
				return list[i].url < list[j].url
			})
			if len(list) > logTopK {
				list = list[:logTopK]
			}
			out := make([]string, 0, len(list))
			for _, e := range list {
				out = append(out, fmt.Sprintf("%s:%d", e.url, e.count))
			}
			emit(core.Pair{Key: region, Value: strings.Join(out, ",")})
		},
	})
}

// runLogOnce executes the LOG application end to end in a fresh lab and
// returns its total virtual time and the final top-k output.
func runLogOnce(scale Scale, extraDelayMs float64, column string) (float64, *dfs.File, *core.JobResult, error) {
	l := newLab()
	if scale.FixedLogChunk > 0 {
		l.fs.ChunkTarget = scale.FixedLogChunk
	} else {
		l.fs.ChunkTarget = chunkTargetFor(scale.LogEvents * 90)
	}
	input, geo, err := setupLog(l, logScaleConfig(scale), extraDelayMs)
	if err != nil {
		return 0, nil, nil, err
	}

	if column == "optimized" {
		statsConf := logJobConf("log-stats", input, geo, core.ModeBaseline)
		if err := l.rt.CollectStats(statsConf); err != nil {
			return 0, nil, nil, err
		}
	}
	conf := logJobConf("log-"+column, input, geo, core.ModeBaseline)
	res, err := submitMode(l.rt, conf, column, "geo", geo.Name())
	if err != nil {
		return 0, nil, nil, err
	}
	topk, err := topKJob(l.engine, res.Output)
	if err != nil {
		return 0, nil, nil, err
	}
	return res.VTime + topk.VTime, topk.Output, res, nil
}

// chunkTargetFor sizes chunks so a workload of roughly totalBytes spans
// ~2.5 waves of map tasks on the 12×8-slot cluster.
func chunkTargetFor(totalBytes int) int {
	const targetChunks = 240
	t := totalBytes / targetChunks
	if t < 2048 {
		t = 2048
	}
	return t
}

// Fig11a reproduces Figure 11(a): the LOG application under extra lookup
// delays of 0–5 ms, for every applicable strategy. Index locality does
// not apply (the cloud service is a single external node), mirroring the
// paper.
func Fig11a(scale Scale) (*Table, error) {
	cols := []string{"base", "cache", "repart", "optimized", "dynamic"}
	t := &Table{Title: "Figure 11(a): LOG — runtime (virtual s) vs extra lookup delay", Columns: cols}
	for _, d := range scale.LogDelaysMs {
		row := make([]float64, 0, len(cols))
		for _, c := range cols {
			vt, _, res, err := runLogOnce(scale, d, c)
			if err != nil {
				return nil, fmt.Errorf("fig11a %s delay %gms: %w", c, d, err)
			}
			row = append(row, vt)
			if c == "dynamic" && res.Replanned {
				t.Note("delay %gms: dynamic replanned at %s phase to %v", d, res.ReplanPhase, res.Plan)
			}
			if c == "optimized" {
				t.Note("delay %gms: optimized plan %v", d, res.Plan)
			}
		}
		t.Add(fmt.Sprintf("delay=%gms", d), row...)
	}
	return t, nil
}
