package experiments

import (
	"efind/internal/cloudsvc"
	"efind/internal/dfs"
	"efind/internal/sim"
	"efind/internal/tpch"
	"efind/internal/workloads"
)

// logScaleConfig derives the LOG generator config from a scale.
func logScaleConfig(scale Scale) workloads.LogConfig {
	cfg := workloads.DefaultLogConfig()
	cfg.Events = scale.LogEvents
	return cfg
}

// setupLog generates the LOG input in the lab and stands up the cloud geo
// service with the given extra delay (milliseconds).
func setupLog(l *lab, cfg workloads.LogConfig, extraDelayMs float64) (*dfs.File, *cloudsvc.Service, error) {
	input, err := workloads.GenerateLog(l.fs, "log", cfg)
	if err != nil {
		return nil, nil, err
	}
	geo := cloudsvc.NewGeoService(0, geoBaseDelay+extraDelayMs/1000, 50)
	return input, geo, nil
}

// tpchScaleConfig derives the TPC-H generator config from a scale.
func tpchScaleConfig(scale Scale, dup int) tpch.Config {
	cfg := tpch.DefaultConfig()
	cfg.ScaleFactor = scale.TPCHSF
	cfg.SupplierScale = scale.TPCHSupplierScale
	cfg.DupFactor = dup
	return cfg
}

// tpchSetup generates the TPC-H workload in the lab.
func tpchSetup(l *lab, cfg tpch.Config) (*tpch.Workload, error) {
	return tpch.Setup(l.fs, "lineitem", cfg)
}

// fakeIdx is a stats-only accessor used by planner ablations (never
// actually looked up).
type fakeIdx struct{ name string }

func (f fakeIdx) Name() string                      { return f.name }
func (f fakeIdx) Lookup(k string) ([]string, error) { return nil, nil }
func (f fakeIdx) ServeTime() float64                { return 0 }
func (f fakeIdx) HostsFor(string) []sim.NodeID      { return nil }
