package experiments

import (
	"fmt"

	"efind/internal/core"
	"efind/internal/knnj"
	"efind/internal/workloads"
)

// Fig13 reproduces Figure 13: k-nearest-neighbour join between two point
// sets, comparing the hand-tuned H-zkNNJ implementation against the
// EFind-based index nested-loop join under every strategy. The paper's
// claim: the effortless EFind version with the optimal strategy (index
// locality) performs like the hand-tuned two-phase join.
func Fig13(scale Scale) (*Table, error) {
	cols := append([]string{"h-zknnj"}, strategyColumns...)
	t := &Table{Title: "Figure 13: kNN join (k=10) — runtime (virtual s)", Columns: cols}

	genA := workloads.SpatialConfig{Points: scale.SpatialA, Extent: 1000, Clusters: 16, Seed: 21}
	genB := workloads.SpatialConfig{Points: scale.SpatialB, Extent: 1000, Clusters: 16, Seed: 22}
	a := workloads.GenerateSpatialPoints(genA)
	b := relabel(workloads.GenerateSpatialPoints(genB), "b")
	exact := knnj.BruteForceKNN(a, b, scale.KNNK)

	row := make([]float64, 0, len(cols))

	// Hand-tuned comparator.
	{
		l := newLab()
		l.fs.ChunkTarget = chunkTargetFor((scale.SpatialA + scale.SpatialB) * 40)
		hzCfg := knnj.DefaultHZConfig(scale.KNNK)
		hzCfg.Epsilon = 0.02
		res, err := knnj.RunHZKNNJ(l.engine, a, b, 1000, hzCfg)
		if err != nil {
			return nil, fmt.Errorf("fig13 h-zknnj: %w", err)
		}
		row = append(row, res.VTime)
		t.Note("h-zknnj: %d jobs, recall %.3f", res.Jobs, knnj.Recall(res.Join, exact))
	}

	// EFind strategies.
	for _, c := range strategyColumns {
		l := newLab()
		l.fs.ChunkTarget = chunkTargetFor(scale.SpatialA * 40)
		idxCfg := knnj.DefaultSpatialIndexConfig(1000)
		idxCfg.K = scale.KNNK
		idx, err := knnj.BuildSpatialIndex(l.cluster, "spatial", b, idxCfg)
		if err != nil {
			return nil, err
		}
		input, err := workloads.WriteSpatial(l.fs, "a-points", a)
		if err != nil {
			return nil, err
		}
		if c == "optimized" {
			if err := l.rt.CollectStats(knnj.EFindConf("knn-stats", input, idx, core.ModeBaseline)); err != nil {
				return nil, err
			}
		}
		conf := knnj.EFindConf("knn-"+c, input, idx, core.ModeBaseline)
		res, err := submitMode(l.rt, conf, c, "knn", idx.Name())
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", c, err)
		}
		row = append(row, res.VTime)
		join := knnj.CollectJoin(res.Output)
		t.Note("%s: recall %.3f%s", c, knnj.Recall(join, exact), replanNote(res))
		if c == "optimized" {
			t.Note("optimized plan: %v", res.Plan)
		}
	}
	t.Add("knnj", row...)
	return t, nil
}

// relabel gives a generated point set a distinct ID prefix.
func relabel(pts []workloads.SpatialPoint, prefix string) []workloads.SpatialPoint {
	for i := range pts {
		pts[i].ID = fmt.Sprintf("%s%07d", prefix, i)
	}
	return pts
}
