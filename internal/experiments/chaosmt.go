package experiments

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"efind/internal/chaos"
	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/ixclient"
	"efind/internal/jobsvc"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/obs"
	"efind/internal/sim"
	"efind/internal/vfs"
	"efind/internal/wal"
)

// cmWorld is one rebuilt deterministic environment for a chaos
// multi-tenant leg: every leg (and the recovered coordinator) gets a
// fresh cluster, input, and store so nothing leaks between runs and the
// recovery contract — "rebuild the same world, Recover replays the
// decisions" — is exercised exactly as documented.
type cmWorld struct {
	l     *lab
	trace *obs.Trace
	input *dfs.File
	store *kvstore.Store
}

// cmLab is newLab at an arbitrary cluster size: the chaos multi-tenant
// experiment runs far beyond the paper's 12 nodes (10k at full scale).
func cmLab(nodes int) *lab {
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	cfg.TaskStartup = 0.005
	if calibration != nil && calibration.F > 0 {
		cfg.DFSWriteCost = calibration.F
	}
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	engine := mapreduce.New(cluster, fs)
	return &lab{cluster: cluster, fs: fs, engine: engine, rt: core.NewRuntime(engine)}
}

// cmBuildWorld rebuilds the leg environment from scratch. The engine
// records into a private trace so each leg's chaos counters (crashes,
// speculative launches) are observable in isolation.
func cmBuildWorld(scale Scale) (*cmWorld, error) {
	if scale.ChaosMTRecords > 0 {
		scale.SynRecords = scale.ChaosMTRecords
		scale.SynKeyDomain = scale.ChaosMTRecords / 2
	}
	l := cmLab(scale.ChaosMTNodes)
	tr := obs.NewTrace()
	l.engine.Trace = tr
	cfg := synScaleConfig(scale, 1024)
	l.fs.ChunkTarget = chunkTargetFor(scale.SynRecords * (cfg.ValueSize + 30))
	input, store, err := generateSyn(l, cfg)
	if err != nil {
		return nil, err
	}
	return &cmWorld{l: l, trace: tr, input: input, store: store}, nil
}

// cmCheckpointEvery sets the durable legs' checkpoint cadence so the
// trace checkpoints roughly twice: at the inter-wave quiescent point
// (half the jobs newly decided comfortably clears a quarter-trace
// threshold) and at the final drain. At cluster scale every checkpoint
// serializes the whole shared cache pool, so checkpointing after every
// decided job would dominate the experiment's wall clock.
func cmCheckpointEvery(scale Scale) int {
	every := scale.ChaosMTTenants * scale.ChaosMTJobs / 4
	if every < 1 {
		every = 1
	}
	return every
}

// cmTenantNames returns the tenant names in configuration order.
func cmTenantNames(scale Scale) []string {
	names := make([]string, scale.ChaosMTTenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	return names
}

// cmTenants configures the tenants: alternating fair-share weights and
// an in-flight cap small enough that the arrival burst builds real
// admission queues on every tenant.
func cmTenants(scale Scale) []jobsvc.TenantConfig {
	tcs := make([]jobsvc.TenantConfig, scale.ChaosMTTenants)
	for i, name := range cmTenantNames(scale) {
		tcs[i] = jobsvc.TenantConfig{
			Name:        name,
			Weight:      1 + i%2,
			MaxInFlight: 4,
			QueueCap:    2 * scale.ChaosMTJobs,
		}
	}
	return tcs
}

// cmSubs builds the submission trace against one world: every tenant
// submits ChaosMTJobs ModeCache synthetic joins in a staggered burst, so
// the service holds many concurrent jobs while later arrivals queue.
// wave2At > 0 delays the second half of each tenant's jobs to that
// arrival time: the service drains the first wave, passes a quiescent
// point — where the durable legs fold decided state into a checkpoint —
// and then absorbs the second burst.
func cmSubs(w *cmWorld, scale Scale, wave2At float64) []jobsvc.Submission {
	var subs []jobsvc.Submission
	for i := 0; i < scale.ChaosMTJobs; i++ {
		at := 0.02 * float64(i)
		if wave2At > 0 && i >= (scale.ChaosMTJobs+1)/2 {
			at += wave2At
		}
		for _, tn := range cmTenantNames(scale) {
			conf := buildSynConf(fmt.Sprintf("cm-%s-%d", tn, i), w.input, w.store, core.ModeCache)
			conf.VarianceThreshold = experimentVarianceThreshold
			conf.Retry = core.RetryPolicy{Max: 2, Backoff: 0.001, Factor: 2}
			subs = append(subs, jobsvc.Submission{Tenant: tn, At: at, Conf: conf})
		}
	}
	return subs
}

// cmSpecLaunched sums the speculative backups launched across all jobs.
// In service mode per-task counters land in each job's namespaced
// result, not the bare trace counter, so this reads the statuses.
func cmSpecLaunched(r *mtRun) int64 {
	var n int64
	for _, st := range r.statuses {
		if st.Result == nil {
			continue
		}
		for k, v := range st.Result.Counters {
			if strings.HasSuffix(k, chaos.CtrSpecLaunched) {
				n += v
			}
		}
	}
	return n
}

// cmChaosConfig sizes the combined fault schedule from the clean run's
// makespan: three node crashes (two recover, one stays dead), seeded
// stragglers raced by capped speculative backups, and a cross-tenant
// index outage window that hits whichever jobs' lookups overlap it.
func cmChaosConfig(span float64) chaos.Config {
	return chaos.Config{
		Seed: ChaosSeed,
		Crashes: []chaos.Crash{
			{Node: 2, At: 0.15 * span, Recover: 0.55 * span},
			{Node: 5, At: 0.35 * span, Recover: 0.75 * span},
			{Node: 7, At: 0.60 * span, Recover: 1e6},
		},
		Spec:            chaos.Speculation{Enabled: true, MaxPerPhase: 64},
		StragglerRate:   0.05,
		StragglerFactor: 6,
	}
}

// cmRun executes the trace through the job service in a fresh world.
// cfg, when non-nil, becomes the service-wide chaos plan (windows are
// absolute on the service clock, so faults race across tenants); durable,
// when non-nil, journals the run. Every job must complete.
func cmRun(scale Scale, label string, cfg *chaos.Config, durable *jobsvc.Durability, wave2At float64) (*cmWorld, *mtRun, *jobsvc.Service, error) {
	section("chaos-mt/" + label)
	w, err := cmBuildWorld(scale)
	if err != nil {
		return nil, nil, nil, err
	}
	opts := jobsvc.Options{SharedCache: ixclient.NewPool(0), Durable: durable}
	if cfg != nil {
		opts.Chaos = chaos.MustNew(*cfg, scale.ChaosMTNodes)
	}
	svc, err := jobsvc.New(w.l.rt, cmTenants(scale), opts)
	if err != nil {
		return nil, nil, nil, err
	}
	run := &mtRun{statuses: svc.Run(cmSubs(w, scale, wave2At)), pool: opts.SharedCache}
	for _, st := range run.statuses {
		if st.State != jobsvc.JobCompleted {
			return nil, nil, nil, fmt.Errorf("chaos-mt/%s: job %s/%s %s: %s%v",
				label, st.Tenant, st.Name, st.State, st.Reason, st.Err)
		}
	}
	if err := svc.DurableErr(); err != nil {
		return nil, nil, nil, fmt.Errorf("chaos-mt/%s: durability degraded: %w", label, err)
	}
	return w, run, svc, nil
}

// cmMakespan is the whole trace's makespan: the last finish time across
// every tenant.
func cmMakespan(r *mtRun) float64 {
	max := 0.0
	for _, st := range r.statuses {
		if st.Finished > max {
			max = st.Finished
		}
	}
	return max
}

// cmOutputHashes fingerprints each job's sorted output, in submission
// order, so cross-leg identity checks hold hashes instead of the record
// sets themselves (full scale runs hundreds of jobs).
func cmOutputHashes(r *mtRun) []uint64 {
	hashes := make([]uint64, len(r.statuses))
	for i, st := range r.statuses {
		if st.Result == nil || st.Result.Output == nil {
			continue
		}
		h := fnv.New64a()
		for _, rec := range chaosSorted(st.Result.Output) {
			h.Write([]byte(rec))
			h.Write([]byte{0xff})
		}
		hashes[i] = h.Sum64()
	}
	return hashes
}

// cmCompareStatuses enforces the recovery identity: every scheduling
// outcome of the recovered run — state, identity, admission and finish
// times, charged serve time, output fingerprint — must byte-match the
// uninterrupted reference run's.
func cmCompareStatuses(ref, got []jobsvc.JobStatus) error {
	if len(ref) != len(got) {
		return fmt.Errorf("chaos-mt: recovered run returned %d statuses, reference %d", len(got), len(ref))
	}
	for i := range ref {
		r, g := ref[i], got[i]
		switch {
		case r.State != g.State, r.ID != g.ID, r.Tenant != g.Tenant, r.Name != g.Name:
			return fmt.Errorf("chaos-mt: job %d identity diverged: %s/%s %s (%s) vs %s/%s %s (%s)",
				i, g.Tenant, g.Name, g.State, g.ID, r.Tenant, r.Name, r.State, r.ID)
		case r.Submitted != g.Submitted, r.Admitted != g.Admitted, r.Finished != g.Finished:
			return fmt.Errorf("chaos-mt: job %d (%s) times diverged: sub %v/%v adm %v/%v fin %v/%v",
				i, r.ID, g.Submitted, r.Submitted, g.Admitted, r.Admitted, g.Finished, r.Finished)
		case r.ServeSeconds != g.ServeSeconds:
			return fmt.Errorf("chaos-mt: job %d (%s) serve charge diverged: %v vs %v", i, r.ID, g.ServeSeconds, r.ServeSeconds)
		case r.OutputFP != g.OutputFP:
			return fmt.Errorf("chaos-mt: job %d (%s) output fingerprint diverged: %#x vs %#x", i, r.ID, g.OutputFP, r.OutputFP)
		}
	}
	return nil
}

// ChaosMultiTenant is the cross-job chaos experiment: many concurrent
// ModeCache synthetic joins from several tenants share one large cluster
// (10k nodes at full scale) while node crashes, seeded stragglers with
// speculative backups, and a cross-tenant index outage race across their
// phases. Five legs:
//
//   - clean: the fault-free reference; its per-job sorted outputs are
//     the identity baseline and its makespan sizes the fault windows.
//   - crash+spec: crashes and speculation only — every job's output must
//     be identical to the clean run's (fault tolerance never changes the
//     answer), and both crash and speculation events must actually fire.
//   - +outage: the full schedule with the index outage window — jobs
//     complete degraded (IndexErrors > 0); this leg's makespans are the
//     gated chaosmt gauges.
//   - durable: the full schedule journaled through the write-ahead log;
//     virtual-time behaviour must be unchanged by durability.
//   - recovered: a crash image is cut from the durable journal (torn
//     tail included), a fresh world Recovers from it and re-runs; every
//     status must byte-match the uninterrupted durable run.
func ChaosMultiTenant(scale Scale) (*Table, error) {
	if scale.ChaosMTNodes <= 8 || scale.ChaosMTTenants <= 0 || scale.ChaosMTJobs <= 0 {
		return nil, fmt.Errorf("chaos-mt: scale not configured (nodes %d, tenants %d, jobs %d)",
			scale.ChaosMTNodes, scale.ChaosMTTenants, scale.ChaosMTJobs)
	}
	totalJobs := scale.ChaosMTTenants * scale.ChaosMTJobs
	t := &Table{
		Title: fmt.Sprintf("Cross-job chaos: %d tenants x %d jobs on %d nodes — crashes, speculation, outages, coordinator recovery",
			scale.ChaosMTTenants, scale.ChaosMTJobs, scale.ChaosMTNodes),
		Columns: []string{"jobs", "makespan", "lookups", "ixerrs", "crashes", "spec"},
	}
	addRow := func(label string, r *mtRun, tr *obs.Trace) {
		t.Add(label, float64(totalJobs), cmMakespan(r),
			float64(r.lookups()), float64(r.indexErrors()),
			float64(tr.Metrics.Counter(chaos.CtrNodeCrashes)),
			float64(cmSpecLaunched(r)))
	}

	cleanW, clean, _, err := cmRun(scale, "clean", nil, nil, 0)
	if err != nil {
		return nil, err
	}
	addRow("clean", clean, cleanW.trace)
	cleanHashes := cmOutputHashes(clean)
	span := cmMakespan(clean)
	// The second wave arrives well after chaos (~2x slower than clean)
	// can have drained the first, so every leg below passes a quiescent
	// point mid-trace — where the durable legs write a checkpoint.
	waveGap := 4 * span

	// Crashes and speculation only: the answer must not change.
	crashCfg := cmChaosConfig(span)
	crashW, crashed, _, err := cmRun(scale, "crash+spec", &crashCfg, nil, waveGap)
	if err != nil {
		return nil, err
	}
	addRow("crash+spec", crashed, crashW.trace)
	if got := crashW.trace.Metrics.Counter(chaos.CtrNodeCrashes); got == 0 {
		return nil, fmt.Errorf("chaos-mt: no crash event fired; the crash+spec row is vacuous")
	}
	if cmSpecLaunched(crashed) == 0 {
		return nil, fmt.Errorf("chaos-mt: no speculative backup launched; the crash+spec row is vacuous")
	}
	for i, h := range cmOutputHashes(crashed) {
		if h != cleanHashes[i] {
			return nil, fmt.Errorf("chaos-mt: job %d (%s/%s) output diverged from the fault-free run under crash+spec",
				i, crashed.statuses[i].Tenant, crashed.statuses[i].Name)
		}
	}

	// The full schedule adds a cross-tenant index outage window early in
	// the trace: in-window lookups burn the retry ladder and are counted
	// per index; jobs complete degraded.
	comboCfg := cmChaosConfig(span)
	comboCfg.Outages = []chaos.Outage{{Index: synIndexName, Partition: -1, From: 0.1 * span, Until: 0.3 * span}}
	comboW, combo, _, err := cmRun(scale, "combo", &comboCfg, nil, waveGap)
	if err != nil {
		return nil, err
	}
	addRow("+outage", combo, comboW.trace)
	if combo.indexErrors() == 0 {
		return nil, fmt.Errorf("chaos-mt: outage window hit no lookups; the cross-tenant outage row is vacuous")
	}
	for _, tn := range cmTenantNames(scale) {
		gauge(fmt.Sprintf("chaosmt.%s.makespan.vms", tn), combo.span(tn)*1000)
	}
	gauge("chaosmt.total.makespan.vms", cmMakespan(combo)*1000)
	gauge("chaosmt.pool.hit_ratio", combo.pool.HitRatio())

	// Durable leg: same full schedule, journaled. Journal appends cost no
	// virtual time, so the trace's virtual behaviour must be unchanged.
	dir, err := os.MkdirTemp("", "efind-chaosmt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	refDir := filepath.Join(dir, "ref")
	durableCfg := cmChaosConfig(span)
	durableCfg.Outages = comboCfg.Outages
	durableW, ref, refSvc, err := cmRun(scale, "durable", &durableCfg,
		&jobsvc.Durability{Dir: refDir, CheckpointEvery: cmCheckpointEvery(scale)}, waveGap)
	if err != nil {
		return nil, err
	}
	addRow("durable", ref, durableW.trace)
	if got, want := cmMakespan(ref), cmMakespan(combo); got != want {
		return nil, fmt.Errorf("chaos-mt: journaling changed the virtual makespan: %v vs %v", got, want)
	}

	// Coordinator crash: cut a byte-accurate crash image midway between
	// the inter-wave checkpoint and the journal's end — so recovery both
	// restores decided first-wave jobs from the checkpoint AND replays a
	// journal tail — with a torn frame appended, then Recover in a
	// rebuilt world and run the same trace to completion.
	nrec := refSvc.JournalRecords()
	lines, err := jobsvc.DescribeJournal(refDir)
	if err != nil {
		return nil, err
	}
	firstCkpt := -1
	for i, line := range lines {
		if strings.Contains(line, "ckpt    file=") {
			firstCkpt = i
			break
		}
	}
	if firstCkpt < 0 {
		return nil, fmt.Errorf("chaos-mt: durable run wrote no checkpoint; the inter-wave quiescent point never folded the first wave")
	}
	keep := firstCkpt + 1 + (nrec-firstCkpt-1)/2
	crashDir := filepath.Join(dir, "crash")
	if err := wal.CrashImage(vfs.OS{}, refDir, crashDir, keep, []byte{0x1f, 0xaa, 0x03}); err != nil {
		return nil, err
	}
	section("chaos-mt/recovered")
	recW, err := cmBuildWorld(scale)
	if err != nil {
		return nil, err
	}
	recCfg := cmChaosConfig(span)
	recCfg.Outages = comboCfg.Outages
	recOpts := jobsvc.Options{
		SharedCache: ixclient.NewPool(0),
		Chaos:       chaos.MustNew(recCfg, scale.ChaosMTNodes),
		Durable:     &jobsvc.Durability{Dir: crashDir, CheckpointEvery: cmCheckpointEvery(scale)},
	}
	svc2, rep, err := jobsvc.Recover(recW.l.rt, cmTenants(scale), recOpts)
	if err != nil {
		return nil, err
	}
	if !rep.TornTail {
		return nil, fmt.Errorf("chaos-mt: crash image carried a torn frame the recovery did not see")
	}
	if rep.Checkpoint == "" || rep.DecidedJobs == 0 {
		return nil, fmt.Errorf("chaos-mt: no checkpoint before the coordinator crash (checkpoint %q, %d decided); the first wave should have been folded at the inter-wave quiescent point",
			rep.Checkpoint, rep.DecidedJobs)
	}
	recovered := &mtRun{statuses: svc2.Run(cmSubs(recW, scale, waveGap)), pool: recOpts.SharedCache}
	if err := svc2.DurableErr(); err != nil {
		return nil, fmt.Errorf("chaos-mt/recovered: durability degraded: %w", err)
	}
	if len(rep.Divergences) != 0 {
		return nil, fmt.Errorf("chaos-mt: recovery diverged from the journal: %v", rep.Divergences)
	}
	if err := cmCompareStatuses(ref.statuses, recovered.statuses); err != nil {
		return nil, err
	}
	addRow("recovered", recovered, recW.trace)

	t.Note("crash+spec outputs identical to the fault-free run for all %d jobs", totalJobs)
	t.Note("recovered coordinator (crash at record %d/%d, torn tail, checkpoint %q, %d decided) matched the uninterrupted run bit for bit",
		keep, nrec, rep.Checkpoint, rep.DecidedJobs)
	return t, nil
}
