// Package zorder implements the Z-order (Morton) space-filling curve used
// by the hand-tuned H-zkNNJ comparator (Zhang, Li, Jestes — EDBT 2012):
// 2-D points are interleaved into a single 64-bit key whose ordering
// approximately preserves spatial proximity, letting a kNN join run as
// sorted range scans over shifted copies of the data.
package zorder

// Encode interleaves the bits of x and y (each using their low 32 bits)
// into a 64-bit Morton code: bit i of x lands at position 2i, bit i of y
// at position 2i+1.
func Encode(x, y uint32) uint64 {
	return spread(uint64(x)) | spread(uint64(y))<<1
}

// Decode splits a Morton code back into its x and y components.
func Decode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread inserts a zero bit between each of the low 32 bits of v.
func spread(v uint64) uint64 {
	v &= 0xFFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact is the inverse of spread: it extracts every other bit.
func compact(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return uint32(v)
}

// Grid quantizes continuous coordinates in [minX,maxX]×[minY,maxY] onto a
// 2^bits × 2^bits grid for Morton encoding.
type Grid struct {
	MinX, MinY float64
	MaxX, MaxY float64
	Bits       uint // grid resolution per dimension, at most 32
}

// NewGrid builds a quantization grid; bits is clamped to [1, 32] and a
// degenerate extent is widened so division is safe.
func NewGrid(minX, minY, maxX, maxY float64, bits uint) Grid {
	if bits < 1 {
		bits = 1
	}
	if bits > 32 {
		bits = 32
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	return Grid{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY, Bits: bits}
}

// Cells returns the number of cells per dimension.
func (g Grid) Cells() uint32 {
	if g.Bits >= 32 {
		return 0xFFFFFFFF
	}
	return uint32(1)<<g.Bits - 1
}

// Quantize maps continuous coordinates to grid cell indices, clamping
// out-of-range points to the boundary cells.
func (g Grid) Quantize(x, y float64) (uint32, uint32) {
	n := float64(g.Cells())
	qx := (x - g.MinX) / (g.MaxX - g.MinX) * n
	qy := (y - g.MinY) / (g.MaxY - g.MinY) * n
	return clamp(qx, n), clamp(qy, n)
}

func clamp(v, max float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > max {
		return uint32(max)
	}
	return uint32(v)
}

// ZValue quantizes and Morton-encodes a point in one step.
func (g Grid) ZValue(x, y float64) uint64 {
	qx, qy := g.Quantize(x, y)
	return Encode(qx, qy)
}

// ShiftedZValue computes the z-value of a point after adding the random
// shift (dx, dy) used by H-zkNNJ's α shifted copies; shifts wrap within
// the grid extent so every shifted point stays encodable.
func (g Grid) ShiftedZValue(x, y, dx, dy float64) uint64 {
	sx := g.MinX + wrap(x+dx-g.MinX, g.MaxX-g.MinX)
	sy := g.MinY + wrap(y+dy-g.MinY, g.MaxY-g.MinY)
	return g.ZValue(sx, sy)
}

func wrap(v, extent float64) float64 {
	for v < 0 {
		v += extent
	}
	for v >= extent {
		v -= extent
	}
	return v
}
