package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y); got != c.z {
			t.Fatalf("Encode(%d,%d) = %d, want %d", c.x, c.y, got, c.z)
		}
	}
}

func TestZOrderMonotoneAlongAxes(t *testing.T) {
	// Along either axis with the other fixed at 0, z-values must increase.
	prev := uint64(0)
	for x := uint32(1); x < 1000; x++ {
		z := Encode(x, 0)
		if z <= prev {
			t.Fatalf("z not increasing along x at %d", x)
		}
		prev = z
	}
}

func TestGridQuantizeBounds(t *testing.T) {
	g := NewGrid(0, 0, 100, 100, 10)
	x, y := g.Quantize(0, 0)
	if x != 0 || y != 0 {
		t.Fatalf("min corner should quantize to (0,0), got (%d,%d)", x, y)
	}
	x, y = g.Quantize(100, 100)
	if x != g.Cells() || y != g.Cells() {
		t.Fatalf("max corner should quantize to max cell, got (%d,%d)", x, y)
	}
	// Out of range clamps.
	x, y = g.Quantize(-50, 150)
	if x != 0 || y != g.Cells() {
		t.Fatalf("clamp failed: (%d,%d)", x, y)
	}
}

func TestGridDegenerateExtent(t *testing.T) {
	g := NewGrid(5, 5, 5, 5, 8)
	// Must not divide by zero.
	_ = g.ZValue(5, 5)
}

func TestGridBitsClamped(t *testing.T) {
	if g := NewGrid(0, 0, 1, 1, 0); g.Bits != 1 {
		t.Fatalf("bits should clamp up to 1, got %d", g.Bits)
	}
	if g := NewGrid(0, 0, 1, 1, 40); g.Bits != 32 {
		t.Fatalf("bits should clamp down to 32, got %d", g.Bits)
	}
}

func TestNearbyPointsNearbyZ(t *testing.T) {
	// Statistical sanity: for a fine grid, points within the same small
	// cell neighbourhood have closer z-values than far-apart points, on
	// average. Check one concrete quadrant property: points in the lower
	// left quadrant always sort before the top right corner point.
	g := NewGrid(0, 0, 1, 1, 16)
	corner := g.ZValue(1, 1)
	for i := 0; i < 100; i++ {
		x := float64(i) / 250.0
		y := float64(i%10) / 25.0
		if g.ZValue(x, y) >= corner {
			t.Fatalf("point (%g,%g) in lower-left quadrant sorted after top-right corner", x, y)
		}
	}
}

func TestShiftedZValueStaysEncodable(t *testing.T) {
	g := NewGrid(0, 0, 10, 10, 12)
	f := func(x, y, dx, dy float64) bool {
		if x < 0 || x > 10 || y < 0 || y > 10 {
			return true
		}
		if dx < -100 || dx > 100 || dy < -100 || dy > 100 {
			return true
		}
		z := g.ShiftedZValue(x, y, dx, dy)
		zx, zy := Decode(z)
		return zx <= g.Cells() && zy <= g.Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftZeroEqualsPlain(t *testing.T) {
	g := NewGrid(0, 0, 10, 10, 12)
	for _, p := range [][2]float64{{0, 0}, {3.3, 7.7}, {9.99, 0.01}} {
		if g.ShiftedZValue(p[0], p[1], 0, 0) != g.ZValue(p[0], p[1]) {
			t.Fatalf("zero shift changed z-value for %v", p)
		}
	}
}
