package zorder

import "testing"

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint32(i), uint32(i*7))
	}
}

func BenchmarkDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Decode(uint64(i) * 2654435761)
	}
}

func BenchmarkGridZValue(b *testing.B) {
	g := NewGrid(0, 0, 1000, 1000, 16)
	for i := 0; i < b.N; i++ {
		g.ZValue(float64(i%1000), float64((i*7)%1000))
	}
}
