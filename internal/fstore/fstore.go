// Package fstore is a persistent, mmap-backed snapshot store — the
// file-backed substrate behind kvstore partitions and dfs chunk payloads.
// It implements the FMC1 format: a throwaway, rebuildable cache layout
// optimized for fast mapped reads and index-only filtering, NOT a durable
// primary store (writes are whole-snapshot rewrites; corruption is
// detected by checksums and answered by rebuilding from the source of
// truth).
//
// On-disk layout (all integers little-endian):
//
//	header (48 bytes)
//	  [0:4]    magic "FMC1"
//	  [4:8]    version (1)
//	  [8:12]   key size K (bytes per slot key, NUL-padded)
//	  [12:16]  entry count N
//	  [16:20]  data section length D
//	  [20:24]  CRC32 (IEEE) of the slot section
//	  [24:28]  CRC32 (IEEE) of the data section
//	  [28:44]  reserved (zero)
//	  [44:48]  CRC32 (IEEE) of header bytes [0:44]
//	slot section (N × (K+20) bytes), sorted strictly ascending by key
//	  key      [K]byte, NUL-padded
//	  revision int64 (caller-supplied staleness marker)
//	  dataOff  uint32 (offset of the entry's values in the data section)
//	  dataLen  uint32 (byte length of the entry's values)
//	  valCount uint32 (number of values)
//	data section (D bytes)
//	  per entry: valCount × (uvarint length + raw value bytes)
//
// The fixed-size slot section answers key-presence and result-size
// questions (index-only filtering) without touching the variable-length
// data section; value materialization walks only the entry's data range.
// uint32 offsets cap a snapshot below 4 GiB — shard into more snapshots
// (kvstore writes one per partition) rather than growing one file.
package fstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"efind/internal/vfs"
)

// Format constants.
const (
	Magic      = "FMC1"
	Version    = 1
	headerSize = 48
	slotExtra  = 20 // revision + dataOff + dataLen + valCount
	// MaxKeySize bounds the fixed slot key width; wider keys would turn
	// the "fixed-size" slot section into a data section of its own.
	MaxKeySize = 1024
	// maxSnapshotBytes is the uint32-offset file size cap (< 4 GiB).
	maxSnapshotBytes = 1<<32 - 1
)

// ErrCorrupt marks a snapshot whose bytes fail validation: bad magic or
// version, checksum mismatch, out-of-bounds sections, unsorted keys, or
// an undecodable data range. Callers treat it as "the cache is gone" and
// rebuild the snapshot from the source of truth.
var ErrCorrupt = errors.New("fstore: snapshot corrupt")

// Builder accumulates entries and writes one snapshot file. Not safe for
// concurrent use; build, write, discard.
type Builder struct {
	entries []entry
	keyLen  int
	err     error
}

type entry struct {
	key    string
	rev    int64
	values []string
}

// NewBuilder returns an empty builder. The slot key width is derived
// from the longest key added.
func NewBuilder() *Builder { return &Builder{} }

// Add appends one entry. Keys must be unique, NUL-free, and at most
// MaxKeySize bytes; violations surface from WriteFile (uniqueness) or
// immediately poison the builder (shape), so loading loops need no
// per-call error handling.
func (b *Builder) Add(key string, revision int64, values ...string) {
	if b.err != nil {
		return
	}
	if len(key) == 0 || len(key) > MaxKeySize {
		b.err = fmt.Errorf("fstore: key length %d outside [1,%d]", len(key), MaxKeySize)
		return
	}
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			b.err = fmt.Errorf("fstore: key %q contains NUL (keys are NUL-padded on disk)", key)
			return
		}
	}
	if len(key) > b.keyLen {
		b.keyLen = len(key)
	}
	vals := make([]string, len(values))
	copy(vals, values)
	b.entries = append(b.entries, entry{key: key, rev: revision, values: vals})
}

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// WriteFile encodes the snapshot and writes it atomically (temp file in
// the same directory, then rename), so readers never observe a partially
// written snapshot.
func (b *Builder) WriteFile(path string) error {
	return b.WriteFileFS(vfs.OS{}, path)
}

// WriteFileFS is WriteFile through an explicit filesystem — the seam the
// durability layer threads fault injection through. Before the rename
// commits the snapshot, the temp file is read back and compared against
// the encoded bytes: a write that lied about success (a short write
// acknowledged in full) is caught here, while the last durable snapshot
// at path is still intact.
func (b *Builder) WriteFileFS(fs vfs.FS, path string) error {
	data, err := b.encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, ".fstore-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		fs.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	got, err := fs.ReadFile(tmpName)
	if err != nil {
		return fail(err)
	}
	if !bytes.Equal(got, data) {
		return fail(corruptf("write verification failed: %d bytes on disk, %d encoded (torn or short write)", len(got), len(data)))
	}
	if err := fs.Rename(tmpName, path); err != nil {
		return fail(err)
	}
	return nil
}

// uvarintLen is the encoded size of v, without encoding it.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// encode renders the snapshot bytes: sorted slots, packed data section,
// checksummed header.
func (b *Builder) encode() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	entries := make([]entry, len(b.entries))
	copy(entries, b.entries)
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for i := 1; i < len(entries); i++ {
		if entries[i].key == entries[i-1].key {
			return nil, fmt.Errorf("fstore: duplicate key %q", entries[i].key)
		}
	}
	keySize := b.keyLen
	if keySize == 0 {
		keySize = 1 // empty snapshots still declare a valid key width
	}
	slotSize := keySize + slotExtra

	// Size the data section up front: append-grown snapshots measured as
	// the dominant allocation cost of large checkpoints before this.
	dataSize := 0
	for _, e := range entries {
		for _, v := range e.values {
			dataSize += uvarintLen(uint64(len(v))) + len(v)
		}
	}
	data := make([]byte, 0, dataSize)
	var varintBuf [binary.MaxVarintLen64]byte
	slots := make([]byte, len(entries)*slotSize)
	for i, e := range entries {
		off := len(data)
		for _, v := range e.values {
			n := binary.PutUvarint(varintBuf[:], uint64(len(v)))
			data = append(data, varintBuf[:n]...)
			data = append(data, v...)
		}
		s := slots[i*slotSize:]
		copy(s[:keySize], e.key) // remainder stays NUL
		binary.LittleEndian.PutUint64(s[keySize:], uint64(e.rev))
		binary.LittleEndian.PutUint32(s[keySize+8:], uint32(off))
		binary.LittleEndian.PutUint32(s[keySize+12:], uint32(len(data)-off))
		binary.LittleEndian.PutUint32(s[keySize+16:], uint32(len(e.values)))
	}
	total := headerSize + len(slots) + len(data)
	if total > maxSnapshotBytes {
		return nil, fmt.Errorf("fstore: snapshot would be %d bytes, above the 4 GiB format limit — shard into more snapshots", total)
	}

	out := make([]byte, headerSize, total)
	copy(out[0:4], Magic)
	binary.LittleEndian.PutUint32(out[4:], Version)
	binary.LittleEndian.PutUint32(out[8:], uint32(keySize))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(out[16:], uint32(len(data)))
	binary.LittleEndian.PutUint32(out[20:], crc32.ChecksumIEEE(slots))
	binary.LittleEndian.PutUint32(out[24:], crc32.ChecksumIEEE(data))
	binary.LittleEndian.PutUint32(out[44:], crc32.ChecksumIEEE(out[0:44]))
	out = append(out, slots...)
	out = append(out, data...)
	return out, nil
}
