//go:build unix

package fstore

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether this platform serves snapshots via mmap.
const mmapAvailable = true

// mapping is one opened snapshot's byte source: an mmap on Unix, a heap
// buffer elsewhere (or when NoMmap forces the fallback).
type mapping interface {
	bytes() []byte
	close() error
}

// mapFile maps size bytes of f read-only, or reads them into a heap
// buffer when noMmap is set (or the file is empty — mmap of length 0 is
// invalid). The returned bool reports whether a real mapping serves the
// bytes.
func mapFile(f *os.File, size int, noMmap bool) (mapping, bool, error) {
	if noMmap || size == 0 {
		m, err := readFallback(f, size)
		return m, false, err
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return &mmapMapping{b: b}, true, nil
}

// mmapMapping is a live memory map; close unmaps it.
type mmapMapping struct {
	b []byte
}

func (m *mmapMapping) bytes() []byte { return m.b }

func (m *mmapMapping) close() error {
	if m.b == nil {
		return nil
	}
	b := m.b
	m.b = nil
	return syscall.Munmap(b)
}
