package fstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"
)

// CalibrateConfig shapes the calibration workload: Entries keys of
// KeyBytes bytes, each holding one ValueBytes-byte value, looked up
// Lookups times per measured pass.
type CalibrateConfig struct {
	Entries    int
	KeyBytes   int
	ValueBytes int
	Lookups    int
	Seed       int64
}

// DefaultCalibrateConfig sizes the calibration near the paper's synthetic
// workload: tens of thousands of keys with 1 KB values.
func DefaultCalibrateConfig() CalibrateConfig {
	return CalibrateConfig{Entries: 20000, KeyBytes: 8, ValueBytes: 1024, Lookups: 50000, Seed: 42}
}

// Calibration is the measured cost of the store, in the units the cost
// model consumes: F in seconds per byte (the paper's f — store one byte
// and retrieve it once through the snapshot), T-terms in seconds per
// lookup (the paper's T_j — index-local serve time).
type Calibration struct {
	// F is seconds per byte to write the snapshot and read every byte
	// back once through a fresh mapping.
	F float64
	// TjCold is seconds per lookup against a freshly opened mapping
	// (first touch of each page; page-cache warm in-process, so this is
	// mapping/fault overhead, not device latency).
	TjCold float64
	// TjWarm is seconds per lookup once the mapping is hot — the steady
	// state T_j the cost model uses.
	TjWarm float64
	// TjProbe is seconds per index-only probe (slot section binary
	// search, no value materialization).
	TjProbe float64
	// WriteBytesPerSec and ReadBytesPerSec are the raw throughputs
	// behind F, for reporting.
	WriteBytesPerSec float64
	ReadBytesPerSec  float64
	// Entries and Bytes describe the measured snapshot.
	Entries int
	Bytes   int
}

func (c Calibration) String() string {
	return fmt.Sprintf("f=%.3gs/B (write %.0f MB/s, read %.0f MB/s)  Tj cold=%.3gs warm=%.3gs probe=%.3gs  (%d entries, %d bytes)",
		c.F, c.WriteBytesPerSec/1e6, c.ReadBytesPerSec/1e6, c.TjCold, c.TjWarm, c.TjProbe, c.Entries, c.Bytes)
}

// Calibrate builds a snapshot in dir, measures real store behaviour, and
// returns the measured terms. The measurement is wall-clock and machine-
// dependent by design: it replaces the cost model's constant f and T_j
// with numbers from the hardware the simulation runs on.
func Calibrate(dir string, cfg CalibrateConfig) (Calibration, error) {
	if cfg.Entries <= 0 || cfg.Lookups <= 0 {
		return Calibration{}, fmt.Errorf("fstore: calibration needs entries and lookups > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	keys := make([]string, cfg.Entries)
	b := NewBuilder()
	for i := range keys {
		keys[i] = fmt.Sprintf("k%0*d", cfg.KeyBytes-1, i)
		b.Add(keys[i], int64(i), string(value))
	}
	path := filepath.Join(dir, "calibration.fmc1")
	defer os.Remove(path)

	writeStart := time.Now()
	if err := b.WriteFile(path); err != nil {
		return Calibration{}, err
	}
	writeDur := time.Since(writeStart)

	// Cold pass: a fresh mapping, every key once in random order. Each
	// lookup materializes its values so the data pages are really read.
	perm := rng.Perm(cfg.Entries)
	s, err := Open(path, Options{})
	if err != nil {
		return Calibration{}, err
	}
	defer s.Close()
	bytesRead := 0
	coldStart := time.Now()
	for _, i := range perm {
		vals, ok, err := s.Lookup(keys[i])
		if err != nil {
			return Calibration{}, err
		}
		if !ok {
			return Calibration{}, fmt.Errorf("fstore: calibration key %q missing", keys[i])
		}
		for _, v := range vals {
			bytesRead += len(v)
		}
	}
	coldDur := time.Since(coldStart)

	// Warm pass: random lookups against the hot mapping.
	warmStart := time.Now()
	for j := 0; j < cfg.Lookups; j++ {
		if _, ok, err := s.Lookup(keys[rng.Intn(cfg.Entries)]); err != nil || !ok {
			return Calibration{}, fmt.Errorf("fstore: warm lookup failed: %v", err)
		}
	}
	warmDur := time.Since(warmStart)

	// Probe pass: index-only, same key stream shape.
	probeStart := time.Now()
	for j := 0; j < cfg.Lookups; j++ {
		if ok, _ := s.Probe(keys[rng.Intn(cfg.Entries)]); !ok {
			return Calibration{}, fmt.Errorf("fstore: probe missed a present key")
		}
	}
	probeDur := time.Since(probeStart)

	total := s.Bytes()
	cal := Calibration{
		TjCold:           coldDur.Seconds() / float64(cfg.Entries),
		TjWarm:           warmDur.Seconds() / float64(cfg.Lookups),
		TjProbe:          probeDur.Seconds() / float64(cfg.Lookups),
		WriteBytesPerSec: float64(total) / writeDur.Seconds(),
		ReadBytesPerSec:  float64(bytesRead) / coldDur.Seconds(),
		Entries:          cfg.Entries,
		Bytes:            total,
	}
	// f is store-plus-retrieve per byte: one write of the snapshot and
	// one cold read of every data byte.
	cal.F = writeDur.Seconds()/float64(total) + coldDur.Seconds()/float64(bytesRead)
	return cal, nil
}
