package fstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// randKey draws a NUL-free key of 1..24 bytes.
func randKey(rng *rand.Rand) string {
	n := 1 + rng.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(1 + rng.Intn(255))
	}
	return string(b)
}

func randValues(rng *rand.Rand) []string {
	vals := make([]string, rng.Intn(5))
	for i := range vals {
		v := make([]byte, rng.Intn(120))
		rng.Read(v)
		vals[i] = string(v)
	}
	return vals
}

// TestModelAgainstMapOracle drives randomized build/query sequences and
// checks every snapshot answer against a plain map holding the same
// entries: same presence, same values, same probe sizes, under both the
// mmap and the fallback read path. Each seed also exercises a rebuild
// (second generation written over the first) — the fstore lifecycle.
func TestModelAgainstMapOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			path := filepath.Join(t.TempDir(), "model.fmc1")
			for gen := int64(1); gen <= 2; gen++ {
				oracle := make(map[string][]string)
				b := NewBuilder()
				for i := 0; i < 50+rng.Intn(200); i++ {
					k := randKey(rng)
					if _, dup := oracle[k]; dup {
						continue
					}
					vs := randValues(rng)
					oracle[k] = vs
					b.Add(k, gen, vs...)
				}
				if err := b.WriteFile(path); err != nil {
					t.Fatal(err)
				}
				s, err := Open(path, Options{NoMmap: rng.Intn(2) == 0})
				if err != nil {
					t.Fatal(err)
				}
				if s.Len() != len(oracle) {
					t.Fatalf("gen %d: Len = %d, oracle holds %d", gen, s.Len(), len(oracle))
				}
				// Full scan: every slot reconstructs its oracle entry.
				seen := 0
				for i := 0; i < s.Len(); i++ {
					k := s.Key(i)
					want, ok := oracle[k]
					if !ok {
						t.Fatalf("slot %d key %q not in oracle", i, k)
					}
					if s.Revision(i) != gen {
						t.Fatalf("slot %d revision %d, want %d", i, s.Revision(i), gen)
					}
					got, err := s.Values(i)
					if err != nil {
						t.Fatal(err)
					}
					assertSameValues(t, k, got, want)
					seen++
				}
				if seen != len(oracle) {
					t.Fatalf("scanned %d slots, oracle holds %d", seen, len(oracle))
				}
				// Random queries: present and absent keys, Lookup and Probe.
				keys := make([]string, 0, len(oracle))
				for k := range oracle {
					keys = append(keys, k)
				}
				for q := 0; q < 400; q++ {
					var k string
					if rng.Intn(2) == 0 && len(keys) > 0 {
						k = keys[rng.Intn(len(keys))]
					} else {
						k = randKey(rng)
					}
					want, inOracle := oracle[k]
					got, ok, err := s.Lookup(k)
					if err != nil {
						t.Fatal(err)
					}
					if ok != inOracle {
						t.Fatalf("Lookup(%q) presence %v, oracle %v", k, ok, inOracle)
					}
					if ok {
						assertSameValues(t, k, got, want)
					}
					found, n := s.Probe(k)
					if found != inOracle {
						t.Fatalf("Probe(%q) presence %v, oracle %v", k, found, inOracle)
					}
					if wantN := encodedSize(want); found && n != wantN {
						t.Fatalf("Probe(%q) = %d bytes, oracle encodes to %d", k, n, wantN)
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func assertSameValues(t *testing.T, key string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("key %q: %d values, want %d", key, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %q value %d: %q, want %q", key, i, got[i], want[i])
		}
	}
}

// encodedSize mirrors the builder's data-section framing.
func encodedSize(values []string) int {
	n := 0
	for _, v := range values {
		l := len(v)
		n++ // one uvarint byte covers lengths < 128; values are < 120 bytes
		n += l
	}
	return n
}
