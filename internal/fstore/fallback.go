package fstore

import (
	"io"
	"os"
)

// readFallback loads the whole file into a heap buffer — the read path
// for platforms without mmap and for Options.NoMmap. Same bytes, same
// validation, no page-cache-backed lazy loading.
func readFallback(f *os.File, size int) (mapping, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, err
	}
	return &heapMapping{b: b}, nil
}

// heapMapping serves snapshot bytes from an ordinary allocation.
type heapMapping struct {
	b []byte
}

func (m *heapMapping) bytes() []byte { return m.b }

func (m *heapMapping) close() error {
	m.b = nil
	return nil
}
