//go:build !unix

package fstore

import "os"

// mmapAvailable reports whether this platform serves snapshots via mmap.
const mmapAvailable = false

// mapping is one opened snapshot's byte source; without mmap support it
// is always a heap buffer read through plain file I/O.
type mapping interface {
	bytes() []byte
	close() error
}

// mapFile falls back to plain file reads on platforms without mmap, so
// the store works (slower, RAM-bound) everywhere the CI matrix runs.
func mapFile(f *os.File, size int, noMmap bool) (mapping, bool, error) {
	m, err := readFallback(f, size)
	return m, false, err
}
