//go:build unix

package fstore

import (
	"path/filepath"
	"testing"
)

// TestMmapIsTheDefaultOnUnix pins the platform contract: on unix builds
// mmap is available and is what Open uses unless NoMmap is set. The
// !unix build compiles the plain-read fallback instead, so this test
// (guarded by the build tag) is exactly the CI-matrix check that the
// mmap path is exercised where it exists.
func TestMmapIsTheDefaultOnUnix(t *testing.T) {
	if !MmapAvailable() {
		t.Fatal("MmapAvailable() = false on a unix build")
	}
	path := filepath.Join(t.TempDir(), "m.fmc1")
	b := NewBuilder()
	b.Add("k", 1, "v")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Mapped() {
		t.Fatal("unix Open without NoMmap should memory-map the snapshot")
	}
	f, err := Open(path, Options{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("NoMmap snapshot reports a live mapping")
	}
}
