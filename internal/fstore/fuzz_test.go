package fstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// canonicalSnapshot returns the deterministic snapshot bytes the fuzz
// target mutates: a handful of entries spanning empty values, multiple
// values, and a value large enough that slot offsets are non-trivial.
func canonicalSnapshot() []byte {
	b := NewBuilder()
	b.Add("alpha", 1, "one", "two")
	b.Add("beta", 2)
	b.Add("gamma", 3, string(bytes.Repeat([]byte{'g'}, 300)))
	b.Add("delta", 4, "", "x")
	data, err := b.encode()
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzFStoreSnapshot feeds mutated snapshot bytes to Open and asserts the
// store's core safety property: corruption is always detected, never
// served. Two oracles run per input:
//
//  1. The raw bytes are opened as a snapshot. If Open accepts them, every
//     read accessor must behave sanely (no panics, keys ascending, every
//     slot's values decodable) — acceptance of bytes that then misbehave
//     would be wrong data served from a corrupt file.
//  2. The canonical snapshot is corrupted with a byte flip derived from
//     (pos, x). Open must reject it with ErrCorrupt — and the caller-side
//     story is then completed by rebuilding: rewriting the snapshot makes
//     Open succeed again with exactly the original content.
func FuzzFStoreSnapshot(f *testing.F) {
	good := canonicalSnapshot()
	f.Add([]byte{}, uint32(0), byte(0x01))
	f.Add(good, uint32(0), byte(0x5a))
	f.Add(good, uint32(4), byte(0xff))
	f.Add(good, uint32(headerSize+3), byte(0x80))
	f.Add(good[:headerSize], uint32(20), byte(0x10))
	f.Add([]byte("FMC1 but not really a snapshot file"), uint32(8), byte(0x02))

	f.Fuzz(func(t *testing.T, raw []byte, pos uint32, x byte) {
		dir := t.TempDir()

		// Oracle 1: arbitrary bytes never panic and never half-work.
		rawPath := filepath.Join(dir, "raw.fmc1")
		if err := os.WriteFile(rawPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{{}, {NoMmap: true}} {
			s, err := Open(rawPath, opts)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open of raw bytes failed outside the corruption contract: %v", err)
				}
				continue
			}
			exerciseSnapshot(t, s)
			s.Close()
		}

		// Oracle 2: a byte flip in a valid snapshot is always detected,
		// and rebuilding recovers the exact original.
		if x == 0 {
			return // zero xor is the identity, nothing to detect
		}
		mut := append([]byte(nil), good...)
		mut[int(pos)%len(mut)] ^= x
		mutPath := filepath.Join(dir, "mut.fmc1")
		if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(mutPath, Options{}); err == nil {
			s.Close()
			t.Fatalf("byte flip at %d (xor %#x) not detected", int(pos)%len(good), x)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte flip error does not wrap ErrCorrupt: %v", err)
		}
		if err := os.WriteFile(mutPath, good, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(mutPath, Options{})
		if err != nil {
			t.Fatalf("rebuild after corruption must reopen cleanly: %v", err)
		}
		defer s.Close()
		if vals, ok, err := s.Lookup("alpha"); err != nil || !ok || len(vals) != 2 || vals[0] != "one" {
			t.Fatalf("rebuilt snapshot serves wrong data: %v %v %v", vals, ok, err)
		}
	})
}

// exerciseSnapshot walks every accessor of an accepted snapshot; any
// inconsistency between what validate accepted and what reads decode is
// a bug (wrong data would be served).
func exerciseSnapshot(t *testing.T, s *Snapshot) {
	prev := ""
	for i := 0; i < s.Len(); i++ {
		k := s.Key(i)
		if i > 0 && k <= prev && !(len(k) < len(prev) && prev[:len(k)] == k) {
			// Stripped keys can only collide in order via NUL padding,
			// which the builder forbids but raw bytes may contain; the
			// padded slot keys themselves are checked at open.
			t.Fatalf("slot %d: stripped key %q <= %q", i, k, prev)
		}
		prev = k
		s.Revision(i)
		if n := s.ValueBytes(i); n < 0 {
			t.Fatalf("slot %d: negative value bytes %d", i, n)
		}
		vals, err := s.Values(i)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("slot %d: decode error outside the corruption contract: %v", i, err)
		}
		if err == nil {
			got, ok, lerr := s.Lookup(s.Key(i))
			// A NUL-padded raw key may strip to a key that finds a
			// different (shorter) slot; presence is only guaranteed when
			// the stripped key round-trips to this slot.
			if j, found := s.Find(s.Key(i)); found && j == i {
				if lerr != nil || !ok || len(got) != len(vals) {
					t.Fatalf("slot %d: Lookup disagrees with Values: %v %v", i, ok, lerr)
				}
			}
			_ = fmt.Sprintf("%v", vals)
		}
	}
	s.Probe("alpha")
	s.Probe("")
}
