package fstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"efind/internal/chaos"
	"efind/internal/vfs"
)

// tempLeft reports any leftover temp files in dir — an atomic write that
// failed must clean up after itself.
func tempLeft(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".fstore-") {
			left = append(left, e.Name())
		}
	}
	return left
}

func TestWriteFileFSUnderInjectedFaults(t *testing.T) {
	mkBuilder := func(tag string) *Builder {
		b := NewBuilder()
		b.Add("alpha", 1, "first-"+tag)
		b.Add("beta", 2, "second-"+tag)
		return b
	}

	for _, kind := range []chaos.FaultKind{chaos.TornWrite, chaos.ShortWrite, chaos.NoSpace, chaos.RenameFail} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "snap.fmc1")

			// A durable generation-1 snapshot the fault must not destroy.
			if err := mkBuilder("old").WriteFile(path); err != nil {
				t.Fatal(err)
			}
			oldBytes, _ := os.ReadFile(path)

			match := ".fstore-"
			if kind == chaos.RenameFail {
				match = "snap.fmc1"
			}
			ffs := chaos.NewFaultFS(vfs.OS{}, chaos.FileFault{Kind: kind, Match: match})
			err := mkBuilder("new").WriteFileFS(ffs, path)
			if err == nil {
				t.Fatalf("%v must surface as an error (even the lying short write, via read-back verification)", kind)
			}
			if kind == chaos.ShortWrite && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("short write error = %v, want write-verification ErrCorrupt", err)
			}

			// The previous durable snapshot is byte-identical and loadable.
			got, _ := os.ReadFile(path)
			if string(got) != string(oldBytes) {
				t.Fatalf("%v damaged the durable snapshot", kind)
			}
			s, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("durable snapshot unreadable after %v: %v", kind, err)
			}
			if _, ok := s.Find("alpha"); !ok {
				t.Fatalf("durable snapshot lost its entries after %v", kind)
			}
			s.Close()

			if left := tempLeft(t, dir); len(left) != 0 {
				t.Fatalf("%v left temp files behind: %v", kind, left)
			}
		})
	}
}

func TestWriteFileFSRetrySucceedsAfterFault(t *testing.T) {
	// One-shot faults model transient storage trouble: the very next
	// write of the same snapshot must commit cleanly.
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.fmc1")
	b := NewBuilder()
	b.Add("k", 7, "v")
	ffs := chaos.NewFaultFS(vfs.OS{}, chaos.FileFault{Kind: chaos.TornWrite, Match: ".fstore-"})
	if err := b.WriteFileFS(ffs, path); err == nil {
		t.Fatal("first write should hit the injected fault")
	}
	if err := b.WriteFileFS(ffs, path); err != nil {
		t.Fatalf("retry after one-shot fault: %v", err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if i, ok := s.Find("k"); !ok || s.Revision(i) != 7 {
		t.Fatalf("retried snapshot contents wrong: i=%d ok=%v", i, ok)
	}
}

func TestOpenFailuresLeakNoHandles(t *testing.T) {
	// Every corruption profile that makes Open fail must release the fd
	// and mapping: OpenHandles is the process-global leak meter.
	valid, err := os.ReadFile(writeSnapshot(t, map[string][]string{"a": {"1"}, "b": {"2"}}))
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"truncated-header":  func(d []byte) []byte { return d[:20] },
		"bad-magic":         func(d []byte) []byte { c := append([]byte{}, d...); c[0] ^= 0xff; return c },
		"flipped-header":    func(d []byte) []byte { c := append([]byte{}, d...); c[12] ^= 0x01; return c },
		"flipped-tail":      func(d []byte) []byte { c := append([]byte{}, d...); c[len(c)-1] ^= 0xff; return c },
		"truncated-data":    func(d []byte) []byte { return d[:len(d)-3] },
		"empty":             func([]byte) []byte { return nil },
		"grown":             func(d []byte) []byte { return append(append([]byte{}, d...), 0xde, 0xad) },
		"mid-section-zeros": func(d []byte) []byte { c := append([]byte{}, d...); copy(c[len(c)/2:], make([]byte, 8)); return c },
	}
	for name, mutate := range damage {
		for _, noMmap := range []bool{false, true} {
			base := OpenHandles()
			path := filepath.Join(t.TempDir(), name+".fmc1")
			if err := os.WriteFile(path, mutate(append([]byte{}, valid...)), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(path, Options{NoMmap: noMmap})
			if err == nil {
				// Some single-bit damage may land in slack the checksums do
				// not cover; if Open accepted it, the handle must still
				// balance on Close.
				s.Close()
			}
			if got := OpenHandles(); got != base {
				t.Fatalf("%s (noMmap=%v): OpenHandles = %d, want %d — Open leaked on its error path", name, noMmap, got, base)
			}
		}
	}
}

func TestOpenMissingFileLeaksNoHandles(t *testing.T) {
	base := OpenHandles()
	if _, err := Open(filepath.Join(t.TempDir(), "absent.fmc1"), Options{}); err == nil {
		t.Fatal("want error for a missing file")
	}
	if got := OpenHandles(); got != base {
		t.Fatalf("OpenHandles = %d, want %d", got, base)
	}
}
