package fstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"
)

// Options configures how a snapshot is opened.
type Options struct {
	// NoMmap forces the plain file-read fallback even where mmap is
	// available, so both read paths are testable on any platform.
	NoMmap bool
}

// openHandles counts snapshots opened and not yet closed, across the
// process. Leak tests assert it returns to its starting value after
// engine/store shutdown.
var openHandles atomic.Int64

// OpenHandles returns the number of currently open snapshots (mapped or
// fallback-loaded).
func OpenHandles() int64 { return openHandles.Load() }

// MmapAvailable reports whether this platform serves snapshots via mmap
// (false means every snapshot uses the plain file-read fallback).
func MmapAvailable() bool { return mmapAvailable }

// Snapshot is one opened, validated FMC1 file. All reads go through the
// mapping (or the fallback buffer); the snapshot is immutable and safe
// for concurrent readers. Close releases the mapping.
type Snapshot struct {
	path    string
	m       mapping
	data    []byte // full file bytes, backed by m
	keySize int
	n       int
	slots   []byte // slot section view
	vals    []byte // data section view
	mapped  bool   // true when served by a real mmap
	closed  atomic.Bool
}

// Open maps the snapshot at path and validates it end to end: magic,
// version, header checksum, section bounds, slot- and data-section
// checksums, and slot key ordering. Any failure returns an error
// wrapping ErrCorrupt (except I/O errors opening the file itself), so
// callers can distinguish "rebuild the cache" from "the disk is gone".
func Open(path string, opts Options) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() > maxSnapshotBytes {
		f.Close()
		return nil, corruptf("file is %d bytes, above the 4 GiB format limit", fi.Size())
	}
	m, mapped, err := mapFile(f, int(fi.Size()), opts.NoMmap)
	// The file descriptor is only needed to establish the mapping (or
	// read the fallback buffer); the mapping outlives it either way.
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		if m != nil {
			_ = m.close()
		}
		return nil, err
	}
	s := &Snapshot{path: path, m: m, data: m.bytes(), mapped: mapped}
	if err := s.validate(); err != nil {
		_ = m.close()
		return nil, err
	}
	openHandles.Add(1)
	return s, nil
}

// corruptf builds an ErrCorrupt-wrapping error.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// validate checks the whole snapshot once at open time. After it passes,
// read paths still bounds-check every decode (a defense against the file
// being rewritten underneath a live mapping), but never re-hash.
func (s *Snapshot) validate() error {
	d := s.data
	if len(d) < headerSize {
		return corruptf("file is %d bytes, smaller than the %d-byte header", len(d), headerSize)
	}
	if string(d[0:4]) != Magic {
		return corruptf("bad magic %q", d[0:4])
	}
	if v := binary.LittleEndian.Uint32(d[4:]); v != Version {
		return corruptf("unsupported version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(d[0:44]), binary.LittleEndian.Uint32(d[44:]); got != want {
		return corruptf("header checksum mismatch (got %08x, stored %08x)", got, want)
	}
	keySize := int(binary.LittleEndian.Uint32(d[8:]))
	n := int(binary.LittleEndian.Uint32(d[12:]))
	dataLen := int(binary.LittleEndian.Uint32(d[16:]))
	if keySize < 1 || keySize > MaxKeySize {
		return corruptf("key size %d outside [1,%d]", keySize, MaxKeySize)
	}
	slotSize := keySize + slotExtra
	slotBytes := uint64(n) * uint64(slotSize)
	if uint64(headerSize)+slotBytes+uint64(dataLen) != uint64(len(d)) {
		return corruptf("sections (%d slots × %d + %d data) do not fill the %d-byte file", n, slotSize, dataLen, len(d))
	}
	slots := d[headerSize : headerSize+int(slotBytes)]
	vals := d[headerSize+int(slotBytes):]
	if got, want := crc32.ChecksumIEEE(slots), binary.LittleEndian.Uint32(d[20:]); got != want {
		return corruptf("slot section checksum mismatch (got %08x, stored %08x)", got, want)
	}
	if got, want := crc32.ChecksumIEEE(vals), binary.LittleEndian.Uint32(d[24:]); got != want {
		return corruptf("data section checksum mismatch (got %08x, stored %08x)", got, want)
	}
	s.keySize, s.n, s.slots, s.vals = keySize, n, slots, vals
	for i := 1; i < n; i++ {
		if bytes.Compare(s.slotKey(i-1), s.slotKey(i)) >= 0 {
			return corruptf("slot keys not strictly ascending at slot %d", i)
		}
	}
	for i := 0; i < n; i++ {
		off, length, _ := s.slotData(i)
		if uint64(off)+uint64(length) > uint64(len(vals)) {
			return corruptf("slot %d data range [%d:%d) outside the %d-byte data section", i, off, off+length, len(vals))
		}
	}
	return nil
}

// Path returns the file the snapshot was opened from.
func (s *Snapshot) Path() string { return s.path }

// Len returns the entry count.
func (s *Snapshot) Len() int { return s.n }

// KeySize returns the fixed slot key width in bytes.
func (s *Snapshot) KeySize() int { return s.keySize }

// Mapped reports whether the snapshot is served by a real memory map
// (false on platforms without mmap or with Options.NoMmap).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Bytes returns the total file size.
func (s *Snapshot) Bytes() int { return len(s.data) }

// slotKey returns the padded key bytes of slot i.
func (s *Snapshot) slotKey(i int) []byte {
	return s.slots[i*(s.keySize+slotExtra) : i*(s.keySize+slotExtra)+s.keySize]
}

// slotData returns slot i's data offset, length, and value count.
func (s *Snapshot) slotData(i int) (off, length uint32, count uint32) {
	b := s.slots[i*(s.keySize+slotExtra)+s.keySize:]
	return binary.LittleEndian.Uint32(b[8:]), binary.LittleEndian.Uint32(b[12:]), binary.LittleEndian.Uint32(b[16:])
}

// Key returns slot i's key with the NUL padding stripped.
func (s *Snapshot) Key(i int) string {
	k := s.slotKey(i)
	end := len(k)
	for end > 0 && k[end-1] == 0 {
		end--
	}
	return string(k[:end])
}

// Revision returns slot i's caller-supplied revision.
func (s *Snapshot) Revision(i int) int64 {
	b := s.slots[i*(s.keySize+slotExtra)+s.keySize:]
	return int64(binary.LittleEndian.Uint64(b[:8]))
}

// ValueBytes returns the byte length of slot i's values — an index-only
// read: it touches the fixed-size slot section and never the data pages.
func (s *Snapshot) ValueBytes(i int) int {
	_, length, _ := s.slotData(i)
	return int(length)
}

// Find binary-searches the slot section for key and returns its slot
// index. Index-only: a miss (or a hit where only presence matters) never
// touches the data section.
func (s *Snapshot) Find(key string) (int, bool) {
	if len(key) > s.keySize || len(key) == 0 {
		return -1, false
	}
	var padded [MaxKeySize]byte
	copy(padded[:], key)
	want := padded[:s.keySize]
	i := sort.Search(s.n, func(i int) bool {
		return bytes.Compare(s.slotKey(i), want) >= 0
	})
	if i < s.n && bytes.Equal(s.slotKey(i), want) {
		return i, true
	}
	return -1, false
}

// Probe answers "is key present, and how many value bytes would a lookup
// materialize?" from the slot section alone.
func (s *Snapshot) Probe(key string) (found bool, valueBytes int) {
	i, ok := s.Find(key)
	if !ok {
		return false, 0
	}
	return true, s.ValueBytes(i)
}

// Values decodes slot i's value list from the data section. Bounds and
// varint shape are checked even though the section checksum was verified
// at open, so a file rewritten underneath a live mapping surfaces
// ErrCorrupt instead of garbage.
func (s *Snapshot) Values(i int) ([]string, error) {
	off, length, count := s.slotData(i)
	if uint64(off)+uint64(length) > uint64(len(s.vals)) {
		return nil, corruptf("slot %d data range [%d:%d) outside the %d-byte data section", i, off, off+length, len(s.vals))
	}
	b := s.vals[off : off+length]
	out := make([]string, 0, count)
	for j := uint32(0); j < count; j++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(l) > uint64(len(b)-n) {
			return nil, corruptf("slot %d value %d has an undecodable length", i, j)
		}
		out = append(out, string(b[n:n+int(l)]))
		b = b[n+int(l):]
	}
	if len(b) != 0 {
		return nil, corruptf("slot %d has %d trailing bytes after its %d values", i, len(b), count)
	}
	return out, nil
}

// Lookup resolves key to its value list. A missing key returns
// (nil, false, nil) after touching only the slot section.
func (s *Snapshot) Lookup(key string) ([]string, bool, error) {
	i, ok := s.Find(key)
	if !ok {
		return nil, false, nil
	}
	vals, err := s.Values(i)
	return vals, err == nil, err
}

// Close releases the mapping. Closing twice is a no-op; reads after
// Close are invalid.
func (s *Snapshot) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	openHandles.Add(-1)
	return s.m.close()
}
