package fstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapshot builds a snapshot from pairs and returns its path.
func writeSnapshot(t *testing.T, entries map[string][]string) string {
	t.Helper()
	b := NewBuilder()
	i := int64(0)
	for k, vs := range entries {
		i++
		b.Add(k, i, vs...)
	}
	path := filepath.Join(t.TempDir(), "snap.fmc1")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func openBoth(t *testing.T, path string) []*Snapshot {
	t.Helper()
	out := make([]*Snapshot, 0, 2)
	for _, opts := range []Options{{}, {NoMmap: true}} {
		s, err := Open(path, opts)
		if err != nil {
			t.Fatalf("Open(%+v): %v", opts, err)
		}
		t.Cleanup(func() { s.Close() })
		out = append(out, s)
	}
	return out
}

func TestRoundtrip(t *testing.T) {
	entries := map[string][]string{
		"apple":  {"1", "22", "333"},
		"banana": {""},
		"cherry": nil,
		"date":   {strings.Repeat("x", 4096)},
	}
	path := writeSnapshot(t, entries)
	for _, s := range openBoth(t, path) {
		if s.Len() != len(entries) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(entries))
		}
		for k, want := range entries {
			vals, ok, err := s.Lookup(k)
			if err != nil || !ok {
				t.Fatalf("Lookup(%q) = %v, %v", k, ok, err)
			}
			if len(vals) != len(want) {
				t.Fatalf("Lookup(%q) = %d values, want %d", k, len(vals), len(want))
			}
			for i := range want {
				if vals[i] != want[i] {
					t.Fatalf("Lookup(%q)[%d] = %q, want %q", k, i, vals[i], want[i])
				}
			}
		}
		if _, ok, err := s.Lookup("missing"); ok || err != nil {
			t.Fatalf("missing key: ok=%v err=%v", ok, err)
		}
		if _, ok, err := s.Lookup(""); ok || err != nil {
			t.Fatalf("empty key: ok=%v err=%v", ok, err)
		}
		// Keys come back sorted and NUL-stripped.
		for i := 1; i < s.Len(); i++ {
			if s.Key(i-1) >= s.Key(i) {
				t.Fatalf("keys not ascending: %q >= %q", s.Key(i-1), s.Key(i))
			}
		}
	}
}

func TestMmapVsFallbackParity(t *testing.T) {
	path := writeSnapshot(t, map[string][]string{"k1": {"a"}, "k2": {"bb", "cc"}})
	snaps := openBoth(t, path)
	if MmapAvailable() && !snaps[0].Mapped() {
		t.Fatal("default open should mmap where available")
	}
	if snaps[1].Mapped() {
		t.Fatal("NoMmap open must not be mapped")
	}
	for i := 0; i < snaps[0].Len(); i++ {
		if snaps[0].Key(i) != snaps[1].Key(i) || snaps[0].Revision(i) != snaps[1].Revision(i) ||
			snaps[0].ValueBytes(i) != snaps[1].ValueBytes(i) {
			t.Fatalf("slot %d differs between mmap and fallback", i)
		}
	}
}

func TestProbeIsIndexOnly(t *testing.T) {
	path := writeSnapshot(t, map[string][]string{"hit": {"abc", "de"}})
	for _, s := range openBoth(t, path) {
		found, n := s.Probe("hit")
		if !found || n != 7 { // uvarint(3)+abc + uvarint(2)+de = 1+3+1+2
			t.Fatalf("Probe(hit) = %v, %d", found, n)
		}
		if found, n := s.Probe("miss"); found || n != 0 {
			t.Fatalf("Probe(miss) = %v, %d", found, n)
		}
		if found, _ := s.Probe(strings.Repeat("k", MaxKeySize+1)); found {
			t.Fatal("oversized key probed as present")
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	path := writeSnapshot(t, nil)
	for _, s := range openBoth(t, path) {
		if s.Len() != 0 {
			t.Fatalf("Len = %d", s.Len())
		}
		if _, ok, err := s.Lookup("anything"); ok || err != nil {
			t.Fatalf("lookup on empty: ok=%v err=%v", ok, err)
		}
	}
}

func TestBuilderRejectsBadKeys(t *testing.T) {
	for name, add := range map[string]func(*Builder){
		"empty":     func(b *Builder) { b.Add("", 0, "v") },
		"oversized": func(b *Builder) { b.Add(strings.Repeat("k", MaxKeySize+1), 0, "v") },
		"nul":       func(b *Builder) { b.Add("a\x00b", 0, "v") },
	} {
		b := NewBuilder()
		b.Add("fine", 0, "v")
		add(b)
		b.Add("also-fine", 0, "v")
		if err := b.WriteFile(filepath.Join(t.TempDir(), "x.fmc1")); err == nil {
			t.Fatalf("%s key: WriteFile should fail", name)
		}
	}
	b := NewBuilder()
	b.Add("dup", 0, "v1")
	b.Add("dup", 1, "v2")
	if err := b.WriteFile(filepath.Join(t.TempDir(), "x.fmc1")); err == nil {
		t.Fatal("duplicate key: WriteFile should fail")
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder()
	b.Add("k", 1, "v")
	if err := b.WriteFile(filepath.Join(dir, "ok.fmc1")); err != nil {
		t.Fatal(err)
	}
	// A failing write (builder poisoned) must not leave temp files either.
	bad := NewBuilder()
	bad.Add("", 0)
	bad.WriteFile(filepath.Join(dir, "bad.fmc1"))
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if e.Name() != "ok.fmc1" {
			t.Fatalf("unexpected file %q left behind", e.Name())
		}
	}
}

// TestCorruptionDetectedAtOpen flips one byte in each region of a valid
// snapshot and asserts Open reports ErrCorrupt — never a silent success.
func TestCorruptionDetectedAtOpen(t *testing.T) {
	path := writeSnapshot(t, map[string][]string{
		"alpha": {"one", "two"},
		"beta":  {"three"},
		"gamma": {strings.Repeat("z", 100)},
	})
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	regions := map[string]int{
		"magic":    0,
		"version":  4,
		"keysize":  8,
		"count":    13,
		"datalen":  16,
		"slot-crc": 20,
		"data-crc": 24,
		"head-crc": 44,
		"slot":     headerSize + 2,
		"data":     len(good) - 3,
	}
	for name, off := range regions {
		for _, opts := range []Options{{}, {NoMmap: true}} {
			mut := append([]byte(nil), good...)
			mut[off] ^= 0x5a
			p := filepath.Join(t.TempDir(), "bad.fmc1")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(p, opts)
			if err == nil {
				s.Close()
				t.Fatalf("%s corruption (offset %d, opts %+v) not detected", name, off, opts)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s corruption: error %v does not wrap ErrCorrupt", name, err)
			}
		}
	}
	// Truncations, including mid-header and empty files.
	for _, cut := range []int{0, 1, headerSize - 1, headerSize, len(good) - 1} {
		p := filepath.Join(t.TempDir(), "cut.fmc1")
		if err := os.WriteFile(p, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(p, Options{}); err == nil {
			s.Close()
			t.Fatalf("truncation to %d bytes not detected", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

func TestOpenMissingFileIsNotCorrupt(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope.fmc1"), Options{})
	if err == nil {
		t.Fatal("want error")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("a missing file is an I/O condition, not corruption")
	}
}

func TestOpenHandlesAndDoubleClose(t *testing.T) {
	base := OpenHandles()
	path := writeSnapshot(t, map[string][]string{"k": {"v"}})
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := OpenHandles(); got != base+1 {
		t.Fatalf("OpenHandles = %d, want %d", got, base+1)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if got := OpenHandles(); got != base {
		t.Fatalf("OpenHandles after close = %d, want %d", got, base)
	}
}

func TestCalibrate(t *testing.T) {
	cfg := CalibrateConfig{Entries: 500, KeyBytes: 8, ValueBytes: 64, Lookups: 2000, Seed: 1}
	cal, err := Calibrate(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cal.F <= 0 || cal.TjCold <= 0 || cal.TjWarm <= 0 || cal.TjProbe <= 0 {
		t.Fatalf("non-positive measurement: %+v", cal)
	}
	if cal.Entries != cfg.Entries || cal.Bytes <= 0 {
		t.Fatalf("bad shape: %+v", cal)
	}
	if s := cal.String(); !strings.Contains(s, "f=") {
		t.Fatalf("String() = %q", s)
	}
	if _, err := Calibrate(t.TempDir(), CalibrateConfig{}); err == nil {
		t.Fatal("zero config should be rejected")
	}
}
