package ixclient

import (
	"fmt"
	"testing"

	"efind/internal/sim"
)

// newPooledPair returns two clients (standing in for two jobs) attached
// to one pool over independent accessor instances of the same index.
func newPooledPair(p *Pool) (a, b *Client, fa, fb *fakeIndex) {
	fa, fb = newFake("kv"), newFake("kv")
	a = New(fa, Options{Op: "op", CacheMode: CacheReal, SharedCache: p})
	b = New(fb, Options{Op: "op", CacheMode: CacheReal, SharedCache: p})
	return a, b, fa, fb
}

func TestPoolSharesHitsAcrossClients(t *testing.T) {
	p := NewPool(0)
	a, b, fa, fb := newPooledPair(p)

	// Job A misses and warms the pool.
	if got := a.Lookup(testCtx(0), "a"); got[0] != "va" {
		t.Fatalf("job A lookup = %v", got)
	}
	if fa.calls != 1 {
		t.Fatalf("job A index calls = %d, want 1", fa.calls)
	}
	// Job B on the same node hits the pooled cache: its index is never
	// consulted, but its own shadow still records a (cold) miss so the
	// R it reports matches an isolated run.
	ctxB := testCtx(0)
	if got := b.Lookup(ctxB, "a"); got[0] != "va" {
		t.Fatalf("job B lookup = %v", got)
	}
	if fb.calls != 0 {
		t.Fatalf("job B index calls = %d, want 0 (pool hit)", fb.calls)
	}
	if m := ctxB.Counter(CtrMisses("op", "kv")); m != 1 {
		t.Fatalf("job B shadow misses = %d, want 1 (per-job R stays isolated)", m)
	}
	if hits, misses := p.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("pool stats = %d/%d, want 1 hit, 1 miss", hits, misses)
	}
	// A different node starts cold even with the pool warm elsewhere.
	if got := b.Lookup(testCtx(1), "a"); got[0] != "va" {
		t.Fatalf("job B node-1 lookup = %v", got)
	}
	if fb.calls != 1 {
		t.Fatalf("pooled caches must stay per-node; calls = %d, want 1", fb.calls)
	}
}

func TestPoolShadowRMatchesIsolated(t *testing.T) {
	// The same key stream through (a) an isolated CacheReal client and
	// (b) a pooled client whose pool another job pre-warmed must report
	// identical probe/miss counters: the pool accelerates serving, the
	// shadow keeps the measured R per-job.
	stream := []string{"a", "b", "a", "c", "b", "a", "c", "c", "b"}

	iso := New(newFake("kv"), Options{Op: "op", CacheMode: CacheReal})
	isoCtx := testCtx(0)
	for _, k := range stream {
		iso.Lookup(isoCtx, k)
	}

	p := NewPool(0)
	warm, pooled, _, _ := newPooledPair(p)
	for _, k := range []string{"a", "b", "c"} {
		warm.Lookup(testCtx(0), k)
	}
	pooledCtx := testCtx(0)
	for _, k := range stream {
		pooled.Lookup(pooledCtx, k)
	}

	probes, misses := CtrProbes("op", "kv"), CtrMisses("op", "kv")
	if isoCtx.Counter(probes) != pooledCtx.Counter(probes) {
		t.Fatalf("probes diverge: isolated %d, pooled %d", isoCtx.Counter(probes), pooledCtx.Counter(probes))
	}
	if isoCtx.Counter(misses) != pooledCtx.Counter(misses) {
		t.Fatalf("misses diverge: isolated %d, pooled %d — per-job R must match the isolated value",
			isoCtx.Counter(misses), pooledCtx.Counter(misses))
	}
	// And the pool did accelerate: the pooled job's index saw no calls
	// beyond what the shadow model predicts for a warm cache.
	if hits, _ := p.Stats(); hits == 0 {
		t.Fatal("pooled run should have hit the pre-warmed pool")
	}
}

func TestPoolSnapshotRollback(t *testing.T) {
	p := NewPool(0)
	a, b, _, _ := newPooledPair(p)
	a.Lookup(testCtx(0), "a")
	b.Lookup(testCtx(0), "b")
	wantHits, wantMisses := p.Stats()

	rollback := p.SnapshotNode(0)
	a.Lookup(testCtx(0), "c")
	b.Lookup(testCtx(0), "c")
	rollback()

	if hits, misses := p.Stats(); hits != wantHits || misses != wantMisses {
		t.Fatalf("pool stats after rollback = %d/%d, want %d/%d", hits, misses, wantHits, wantMisses)
	}
	cc := p.cacheFor("kv", 0)
	if _, ok := cc.Get("c"); ok {
		t.Fatal("rolled-back entry survived in the pool")
	}
	if _, ok := cc.Get("a"); !ok {
		t.Fatal("pre-snapshot entry lost by rollback")
	}
}

func TestPoolSnapshotResetsLateCaches(t *testing.T) {
	p := NewPool(0)
	a, _, _, _ := newPooledPair(p)
	rollback := p.SnapshotNode(0)
	a.Lookup(testCtx(0), "a") // creates the (kv, 0) cache after the guard
	rollback()
	if got := p.cacheFor("kv", 0).Len(); got != 0 {
		t.Fatalf("cache created after the snapshot must reset on rollback, has %d entries", got)
	}
}

func TestPoolResetNode(t *testing.T) {
	p := NewPool(0)
	a, _, _, _ := newPooledPair(p)
	a.Lookup(testCtx(0), "a")
	a.Lookup(testCtx(1), "a")
	p.ResetNode(0)
	if p.cacheFor("kv", 0).Len() != 0 {
		t.Fatal("node 0 pool cache should be cold after reset")
	}
	if p.cacheFor("kv", 1).Len() != 1 {
		t.Fatal("node 1 pool cache must survive node 0's reset")
	}
}

// BenchmarkSnapshotNode10kNodes shows the satellite win: the per-attempt
// cache guard at 10k warmed nodes. "journal" is the shipping
// Client.SnapshotNode (O(1) begin + O(ops) rollback); "eager" reproduces
// the replaced implementation, which copied every cache entry per guard.
func BenchmarkSnapshotNode10kNodes(b *testing.B) {
	const nodes = 10000
	const warm = 128

	build := func() *Client {
		c := New(newFake("kv"), Options{Op: "op", CacheMode: CacheReal})
		for n := 0; n < nodes; n++ {
			cc := c.cacheFor(sim.NodeID(n), false)
			for i := 0; i < warm; i++ {
				cc.Put(fmt.Sprintf("k%06d", i), nil)
			}
		}
		return c
	}

	b.Run("journal", func(b *testing.B) {
		c := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			node := sim.NodeID(i % nodes)
			rollback := c.SnapshotNode(node)
			c.cacheFor(node, false).Put("hot", nil)
			rollback()
		}
	})
	b.Run("eager", func(b *testing.B) {
		c := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cc := c.cacheFor(sim.NodeID(i%nodes), false)
			snap := cc.Snapshot()
			cc.Put("hot", nil)
			cc.Restore(snap)
		}
	})
}
