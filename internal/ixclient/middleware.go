package ixclient

import (
	"errors"

	"efind/internal/chaos"
	"efind/internal/index"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// spans wraps the whole access in an index-lookup span so traces show
// where a task waits on index serving (cache probes, backoff waits, and
// serve time all land inside it). The span name is built once per
// client; with tracing off, StartSpan returns the zero region and the
// stage costs one branch and no allocation.
func (c *Client) spans(next Handler) Handler {
	name := "lookup " + c.opts.Op + "/" + c.acc.Name()
	return func(r *Request) ([][]string, error) {
		sp := r.Task.StartSpan(name, "index")
		vals, err := next(r)
		sp.End()
		return vals, err
	}
}

// cache is the outermost charging stage of the inline chain. CacheReal serves hits
// locally and forwards only misses; CacheShadow records probe/miss
// statistics on a key-only cache and forwards everything. Results that
// come back without error are cached — including the empty results the
// policy stage substitutes for counted errors, exactly as the
// pre-middleware executor cached the nil result of a failed lookup.
func (c *Client) cache(next Handler) Handler {
	op, ix := c.opts.Op, c.acc.Name()
	probes, misses := CtrProbes(op, ix), CtrMisses(op, ix)
	if c.opts.CacheMode == CacheShadow {
		return func(r *Request) ([][]string, error) {
			shadow := c.cacheFor(r.Task.Node, true)
			for _, k := range r.Keys {
				r.Task.Inc(probes, 1)
				if _, ok := shadow.Get(k); !ok {
					r.Task.Inc(misses, 1)
					shadow.Put(k, nil)
				}
			}
			return next(r)
		}
	}
	if pool := c.opts.SharedCache; pool != nil {
		// Pooled real cache: hits come from the cross-job shared cache,
		// but the probe/miss counters the optimizer turns into R come
		// from a private per-job key-only shadow replaying the same
		// stream — an LRU over keys promotes and evicts identically
		// whether or not values are attached, so the shadow's miss
		// sequence is exactly what a private real cache would measure.
		return func(r *Request) ([][]string, error) {
			t := r.Task
			cache := pool.cacheFor(ix, t.Node)
			shadow := c.cacheFor(t.Node, true)
			probeTime := t.Cluster().Config().CacheProbeTime
			out := make([][]string, len(r.Keys))
			var missIdx []int
			for i, k := range r.Keys {
				t.Charge(probeTime)
				t.Inc(probes, 1)
				if _, ok := shadow.Get(k); !ok {
					t.Inc(misses, 1)
					shadow.Put(k, nil)
				}
				if hit, ok := cache.Get(k); ok {
					out[i] = hit
				} else {
					missIdx = append(missIdx, i)
				}
			}
			if len(missIdx) == 0 {
				return out, nil
			}
			missKeys := make([]string, len(missIdx))
			for j, i := range missIdx {
				missKeys[j] = r.Keys[i]
			}
			vals, err := next(&Request{Task: t, Keys: missKeys, Batched: r.Batched})
			if err != nil {
				return out, err
			}
			for j, i := range missIdx {
				out[i] = vals[j]
				cache.Put(r.Keys[i], vals[j])
			}
			return out, nil
		}
	}
	return func(r *Request) ([][]string, error) {
		t := r.Task
		cache := c.cacheFor(t.Node, false)
		probeTime := t.Cluster().Config().CacheProbeTime
		out := make([][]string, len(r.Keys))
		var missIdx []int
		for i, k := range r.Keys {
			t.Charge(probeTime)
			t.Inc(probes, 1)
			if hit, ok := cache.Get(k); ok {
				out[i] = hit
			} else {
				t.Inc(misses, 1)
				missIdx = append(missIdx, i)
			}
		}
		if len(missIdx) == 0 {
			return out, nil
		}
		missKeys := make([]string, len(missIdx))
		for j, i := range missIdx {
			missKeys[j] = r.Keys[i]
		}
		vals, err := next(&Request{Task: t, Keys: missKeys, Batched: r.Batched})
		if err != nil {
			return out, err
		}
		for j, i := range missIdx {
			out[i] = vals[j]
			cache.Put(r.Keys[i], vals[j])
		}
		return out, nil
	}
}

// policy applies the error policy to an access whose retries (if any) are
// exhausted: the error counter ticks once per failed access, not per
// attempt. ErrorCount then swallows the error, substituting empty results
// so downstream (the cache stage, postProcess) sees a normal lookup that
// found nothing — the paper-faithful behaviour. ErrorFailJob lets the
// error climb to the Client entry points, which abort the task.
func (c *Client) policy(next Handler) Handler {
	errs := CtrErrors(c.opts.Op, c.acc.Name())
	return func(r *Request) ([][]string, error) {
		vals, err := next(r)
		if err != nil {
			r.Task.Inc(errs, 1)
			if c.opts.ErrorPolicy == ErrorCount {
				if vals == nil {
					vals = make([][]string, len(r.Keys))
				}
				return vals, nil
			}
		}
		return vals, err
	}
}

// retry re-attempts transient failures with capped exponential backoff
// and deterministic seeded jitter, charged as virtual time. Only errors
// marked transient (index.ErrTransient: the client-side deadline, an
// outage window) are retried; a deterministic logic error would fail
// identically every attempt. The backoff charge advances Task.Now, so an
// outage whose window ends inside the retry budget is survived: the
// re-attempt after the window sees the partition back up.
func (c *Client) retry(next Handler) Handler {
	p := c.opts.Retry
	if p.Max <= 0 {
		return next
	}
	b := chaos.Backoff{Base: p.Backoff, Factor: p.Factor, Cap: p.Cap, Jitter: p.Jitter, Seed: p.Seed}
	retries := CtrRetries(c.opts.Op, c.acc.Name())
	return func(r *Request) ([][]string, error) {
		vals, err := next(r)
		for attempt := 0; attempt < p.Max && err != nil && errors.Is(err, index.ErrTransient); attempt++ {
			if w := b.Wait(r.Keys[0], attempt); w > 0 {
				r.Task.Charge(w)
			}
			r.Task.Inc(retries, 1)
			vals, err = next(r)
		}
		return vals, err
	}
}

// availability enforces the chaos plan's index partition outages: an
// access whose key falls in a partition that is down at the task's
// current virtual time fails with chaos.ErrUnavailable before any serve
// or network charge — a dead partition answers nothing, so nothing is
// billed. The error is transient, so the retry stage above polls for the
// window's end; once retries are exhausted it climbs to the core runtime,
// which degrades the operator's strategy (failure-triggered
// re-optimization) before failing the job. The stage vanishes entirely on
// plans without outages.
func (c *Client) availability(next Handler) Handler {
	plan := c.opts.Chaos
	if plan == nil || !plan.HasOutages() {
		return next
	}
	ix := c.acc.Name()
	return func(r *Request) ([][]string, error) {
		now := r.Task.Now()
		for _, k := range r.Keys {
			part := 0
			if c.scheme != nil {
				part = c.scheme.Fn(k)
			}
			if plan.PartitionDown(ix, part, now) {
				r.Task.Inc(chaos.CtrUnavailable, 1)
				return make([][]string, len(r.Keys)), &lookupError{key: k, err: chaos.ErrUnavailable}
			}
		}
		return next(r)
	}
}

// accounting charges every access the way the cost model expects: the
// serve time T_j, the network transfer of key and result when no replica
// of the key's partition lives on the task node, and the per-index
// lookup/serve/error counters. Batched multi-key requests are charged one
// serve round and one network round trip per partition group — the
// deliberate batching cost deviation (DESIGN.md).
func (c *Client) accounting(next Handler) Handler {
	op, ix := c.opts.Op, c.acc.Name()
	return func(r *Request) ([][]string, error) {
		t := r.Task
		serve := c.acc.ServeTime()
		if d := c.opts.Retry.Timeout; d > 0 && serve > d {
			// The index cannot answer inside the deadline: the client
			// abandons the access after charging the wait.
			t.Charge(float64(len(r.Keys)) * d)
			t.Inc(CtrTimeouts(op, ix), int64(len(r.Keys)))
			return make([][]string, len(r.Keys)), &lookupError{key: r.Keys[0], err: ErrTimeout}
		}
		vals, err := next(r)
		if vals == nil {
			vals = make([][]string, len(r.Keys))
		}
		if r.Batched && len(r.Keys) > 1 {
			c.chargeBatched(t, r.Keys, vals, serve)
		} else {
			c.chargePerKey(t, r.Keys, vals, serve)
		}
		return vals, err
	}
}

// chargePerKey is the paper-faithful costing: every key is its own
// request — serve time per key, and a network round trip per key whose
// partition has no replica on the task node.
func (c *Client) chargePerKey(t *mapreduce.TaskContext, keys []string, vals [][]string, serve float64) {
	op, ix := c.opts.Op, c.acc.Name()
	for i, k := range keys {
		t.Charge(serve)
		t.Inc(CtrServeNS(op, ix), int64(serve*1e9))
		t.Inc(CtrLookups(op, ix), 1)
		hosts := c.acc.HostsFor(k)
		if hosts == nil || !sim.ContainsNode(hosts, t.Node) {
			t.ChargeNet(float64(len(k) + 4 + valueBytes(vals[i])))
			t.Inc(CtrNetRoundTrips(op, ix), 1)
		}
	}
}

// chargeBatched groups the request's keys by index partition (single
// group for unpartitioned indices) and charges one multi-get per group:
// the serve time amortizes over the group, and remote groups cost one
// network round trip carrying every key and result of the group.
func (c *Client) chargeBatched(t *mapreduce.TaskContext, keys []string, vals [][]string, serve float64) {
	op, ix := c.opts.Op, c.acc.Name()
	order, groups := c.groupByPartition(keys)
	for _, g := range order {
		members := groups[g]
		t.Charge(serve)
		t.Inc(CtrServeNS(op, ix), int64(serve*1e9))
		t.Inc(CtrLookups(op, ix), int64(len(members)))
		hosts := c.acc.HostsFor(keys[members[0]])
		if hosts == nil || !sim.ContainsNode(hosts, t.Node) {
			bytes := 0
			for _, i := range members {
				bytes += len(keys[i]) + 4 + valueBytes(vals[i])
			}
			t.ChargeNet(float64(bytes))
			t.Inc(CtrNetRoundTrips(op, ix), 1)
		}
	}
}

// groupByPartition splits key indices into per-partition groups in
// first-seen order (deterministic). Unpartitioned indices form one group.
func (c *Client) groupByPartition(keys []string) ([]int, map[int][]int) {
	groups := make(map[int][]int)
	var order []int
	for i, k := range keys {
		p := 0
		if c.scheme != nil {
			p = c.scheme.Fn(k)
		}
		if _, seen := groups[p]; !seen {
			order = append(order, p)
		}
		groups[p] = append(groups[p], i)
	}
	return order, groups
}

// terminal invokes the wrapped accessor: the multi-get fast path for
// batched multi-key requests, a per-key loop otherwise.
func (c *Client) terminal(r *Request) ([][]string, error) {
	if r.Batched && len(r.Keys) > 1 && c.batcher != nil {
		vals, err := c.batcher.BatchLookup(r.Keys)
		if err != nil {
			return vals, &lookupError{key: r.Keys[0], err: err}
		}
		return vals, nil
	}
	out := make([][]string, len(r.Keys))
	for i, k := range r.Keys {
		v, err := c.acc.Lookup(k)
		if err != nil {
			return out, &lookupError{key: k, err: err}
		}
		out[i] = v
	}
	return out, nil
}
