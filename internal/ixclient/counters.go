package ixclient

// Counter name helpers: EFind statistics ride on MapReduce counters
// (§4.2), namespaced per operator and per index. The client's accounting
// middleware is the single writer of these counters; the planner's
// statistics collector (core/stats.go) reads them back by the same names.
func prefix(op, ix string) string { return "efind." + op + ".ix." + ix + "." }

// CtrKeys counts extracted lookup keys (the numerator of Nik).
func CtrKeys(op, ix string) string { return prefix(op, ix) + "keys" }

// CtrKeyBytes accumulates lookup key sizes (Sik).
func CtrKeyBytes(op, ix string) string { return prefix(op, ix) + "key.bytes" }

// CtrValBytes accumulates lookup result sizes (Siv).
func CtrValBytes(op, ix string) string { return prefix(op, ix) + "val.bytes" }

// CtrLookups counts real index accesses performed.
func CtrLookups(op, ix string) string { return prefix(op, ix) + "lookups" }

// CtrServeNS accumulates charged index serve time in nanoseconds (Tj).
func CtrServeNS(op, ix string) string { return prefix(op, ix) + "serve.ns" }

// CtrProbes counts lookup-cache probes (real or shadow).
func CtrProbes(op, ix string) string { return prefix(op, ix) + "cache.probes" }

// CtrMisses counts lookup-cache misses (the numerator of R).
func CtrMisses(op, ix string) string { return prefix(op, ix) + "cache.misses" }

// CtrMulti counts records with more than one key for the index
// (re-partitioning feasibility).
func CtrMulti(op, ix string) string { return prefix(op, ix) + "multikey" }

// CtrErrors counts index accesses that returned an error.
func CtrErrors(op, ix string) string { return prefix(op, ix) + "errors" }

// CtrRetries counts index-level retry attempts after transient errors.
func CtrRetries(op, ix string) string { return prefix(op, ix) + "retries" }

// CtrTimeouts counts lookups abandoned at the client-side deadline.
func CtrTimeouts(op, ix string) string { return prefix(op, ix) + "timeouts" }

// CtrNetRoundTrips counts charged network round trips to the index — one
// per remote key without batching, one per remote partition group with it.
func CtrNetRoundTrips(op, ix string) string { return prefix(op, ix) + "net.roundtrips" }

// CtrIndexProbes counts index-only probes: presence/size answered from
// the index's slot section without materializing values (index.Prober).
func CtrIndexProbes(op, ix string) string { return prefix(op, ix) + "iprobes" }

// SkKeys names the FM sketch of distinct lookup keys (Theta).
func SkKeys(op, ix string) string { return prefix(op, ix) + "fm" }

// FMWidth is the per-task FM sketch width used for the Theta estimate.
const FMWidth = 64
