package ixclient

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"efind/internal/chaos"
	"efind/internal/index"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// fakeIndex is a scriptable in-memory accessor: the first failFirst
// Lookup/BatchLookup calls fail transiently, failKeys fail permanently.
type fakeIndex struct {
	name       string
	serve      float64
	data       map[string][]string
	hosts      []sim.NodeID
	scheme     *index.Scheme
	failFirst  int
	failKeys   map[string]error
	calls      int
	batchCalls int
}

func (f *fakeIndex) Name() string       { return f.name }
func (f *fakeIndex) ServeTime() float64 { return f.serve }
func (f *fakeIndex) Scheme() *index.Scheme {
	return f.scheme
}
func (f *fakeIndex) HostsFor(key string) []sim.NodeID { return f.hosts }

func (f *fakeIndex) Lookup(key string) ([]string, error) {
	f.calls++
	if f.failFirst > 0 {
		f.failFirst--
		return nil, fmt.Errorf("blip: %w", index.ErrTransient)
	}
	if err := f.failKeys[key]; err != nil {
		return nil, err
	}
	return f.data[key], nil
}

func (f *fakeIndex) BatchLookup(keys []string) ([][]string, error) {
	f.batchCalls++
	if f.failFirst > 0 {
		f.failFirst--
		return nil, fmt.Errorf("blip: %w", index.ErrTransient)
	}
	out := make([][]string, len(keys))
	for i, k := range keys {
		if err := f.failKeys[k]; err != nil {
			return nil, err
		}
		out[i] = f.data[k]
	}
	return out, nil
}

func newFake(name string) *fakeIndex {
	return &fakeIndex{
		name:  name,
		serve: 0.001,
		data: map[string][]string{
			"a": {"va"},
			"b": {"vb1", "vb2"},
			"c": {"vc"},
		},
	}
}

func testCtx(node sim.NodeID) *mapreduce.TaskContext {
	return mapreduce.NewTaskContext(sim.NewCluster(sim.DefaultConfig()), node, 0, mapreduce.MapTask)
}

func TestRealCacheServesHits(t *testing.T) {
	f := newFake("kv")
	c := New(f, Options{Op: "op", CacheMode: CacheReal})
	ctx := testCtx(0)

	if got := c.Lookup(ctx, "a"); !reflect.DeepEqual(got, []string{"va"}) {
		t.Fatalf("first lookup = %v", got)
	}
	if got := c.Lookup(ctx, "a"); !reflect.DeepEqual(got, []string{"va"}) {
		t.Fatalf("second lookup = %v", got)
	}
	if f.calls != 1 {
		t.Fatalf("index saw %d calls, want 1 (second from cache)", f.calls)
	}
	if p := ctx.Counter(CtrProbes("op", "kv")); p != 2 {
		t.Fatalf("probes = %d, want 2", p)
	}
	if m := ctx.Counter(CtrMisses("op", "kv")); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
	if l := ctx.Counter(CtrLookups("op", "kv")); l != 1 {
		t.Fatalf("lookups = %d, want 1", l)
	}
}

func TestShadowCacheForwardsEverything(t *testing.T) {
	f := newFake("kv")
	c := New(f, Options{Op: "op", CacheMode: CacheShadow})
	ctx := testCtx(0)

	c.Lookup(ctx, "a")
	c.Lookup(ctx, "a")
	if f.calls != 2 {
		t.Fatalf("shadow mode must always hit the index, saw %d calls", f.calls)
	}
	if p, m := ctx.Counter(CtrProbes("op", "kv")), ctx.Counter(CtrMisses("op", "kv")); p != 2 || m != 1 {
		t.Fatalf("probes/misses = %d/%d, want 2/1", p, m)
	}
}

func TestPerNodeCachesAreIndependent(t *testing.T) {
	f := newFake("kv")
	c := New(f, Options{Op: "op", CacheMode: CacheReal})
	c.Lookup(testCtx(0), "a")
	c.Lookup(testCtx(1), "a")
	if f.calls != 2 {
		t.Fatalf("each node must miss independently, saw %d calls", f.calls)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	f := newFake("kv")
	f.failFirst = 2
	c := New(f, Options{Op: "op", Retry: RetryPolicy{Max: 3, Backoff: 0.1}})
	ctx := testCtx(0)

	if got := c.Access(ctx, "a"); !reflect.DeepEqual(got, []string{"va"}) {
		t.Fatalf("lookup after retries = %v", got)
	}
	if f.calls != 3 {
		t.Fatalf("index saw %d calls, want 3", f.calls)
	}
	if r := ctx.Counter(CtrRetries("op", "kv")); r != 2 {
		t.Fatalf("retries = %d, want 2", r)
	}
	// Backoff is deterministic virtual time: 0.1 + 0.2.
	wantBackoff := 0.1 + 0.2
	if extra := ctx.Extra(); extra < wantBackoff {
		t.Fatalf("charged %.4f, want at least backoff %.4f", extra, wantBackoff)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	f := newFake("kv")
	f.failKeys = map[string]error{"a": errors.New("corrupt page")}
	c := New(f, Options{Op: "op", Retry: RetryPolicy{Max: 3, Backoff: 0.1}})
	ctx := testCtx(0)

	if got := c.Access(ctx, "a"); len(got) != 0 {
		t.Fatalf("failed lookup = %v, want empty", got)
	}
	if f.calls != 1 {
		t.Fatalf("permanent error retried: %d calls", f.calls)
	}
	if e := ctx.Counter(CtrErrors("op", "kv")); e != 1 {
		t.Fatalf("errors = %d, want 1", e)
	}
}

func TestErrorCountCachesEmptyResult(t *testing.T) {
	f := newFake("kv")
	f.failKeys = map[string]error{"a": errors.New("corrupt page")}
	c := New(f, Options{Op: "op", CacheMode: CacheReal})
	ctx := testCtx(0)

	c.Lookup(ctx, "a")
	c.Lookup(ctx, "a")
	if f.calls != 1 {
		t.Fatalf("counted error must cache its empty result, saw %d calls", f.calls)
	}
	if e := ctx.Counter(CtrErrors("op", "kv")); e != 1 {
		t.Fatalf("errors = %d, want 1", e)
	}
}

func TestTimeoutAbandonsLookup(t *testing.T) {
	f := newFake("kv")
	f.serve = 0.5
	c := New(f, Options{Op: "op", Retry: RetryPolicy{Timeout: 0.01}})
	ctx := testCtx(0)

	if got := c.Access(ctx, "a"); len(got) != 0 {
		t.Fatalf("timed-out lookup = %v, want empty", got)
	}
	if f.calls != 0 {
		t.Fatalf("abandoned lookup still reached the index (%d calls)", f.calls)
	}
	if to := ctx.Counter(CtrTimeouts("op", "kv")); to != 1 {
		t.Fatalf("timeouts = %d, want 1", to)
	}
	if math.Abs(ctx.Extra()-0.01) > 1e-12 {
		t.Fatalf("charged %.4f, want the 0.01 deadline wait", ctx.Extra())
	}
}

// TestSnapshotRollbackWithRetry is the fault-tolerance composition the
// engine depends on: a task attempt that performed (possibly retried)
// lookups is rolled back, and the re-executed attempt re-measures its
// cache misses from the pre-attempt state — retries never double-count in
// the miss ratio R, and rolled-back insertions do not survive as hits.
func TestSnapshotRollbackWithRetry(t *testing.T) {
	f := newFake("kv")
	c := New(f, Options{Op: "op", CacheMode: CacheReal, Retry: RetryPolicy{Max: 3, Backoff: 0.05}})

	// Warm the node cache with "a" before the guarded attempt.
	warm := testCtx(0)
	c.Lookup(warm, "a")

	rollback := c.SnapshotNode(0)

	// The failed attempt: "b" fails transiently once, then succeeds and is
	// cached. The retry must not double-count the miss.
	attempt := testCtx(0)
	f.failFirst = 1
	if got := c.Lookup(attempt, "b"); !reflect.DeepEqual(got, []string{"vb1", "vb2"}) {
		t.Fatalf("attempt lookup = %v", got)
	}
	if m := attempt.Counter(CtrMisses("op", "kv")); m != 1 {
		t.Fatalf("retried lookup counted %d misses, want 1", m)
	}
	if r := attempt.Counter(CtrRetries("op", "kv")); r != 1 {
		t.Fatalf("retries = %d, want 1", r)
	}

	rollback()

	// Re-executed attempt: "a" must still hit (pre-snapshot state kept),
	// "b" must miss again (the failed attempt's insertion rolled back).
	redo := testCtx(0)
	callsBefore := f.calls
	c.Lookup(redo, "a")
	if f.calls != callsBefore {
		t.Fatalf("pre-snapshot entry lost on rollback")
	}
	c.Lookup(redo, "b")
	if f.calls != callsBefore+1 {
		t.Fatalf("rolled-back entry survived as a cache hit")
	}
	if m := redo.Counter(CtrMisses("op", "kv")); m != 1 {
		t.Fatalf("re-executed attempt counted %d misses, want 1", m)
	}
}

func TestSnapshotRollbackResetsCachesCreatedAfter(t *testing.T) {
	f := newFake("kv")
	c := New(f, Options{Op: "op", CacheMode: CacheReal})
	rollback := c.SnapshotNode(0)
	c.Lookup(testCtx(0), "a") // cache created after the snapshot
	rollback()
	calls := f.calls
	c.Lookup(testCtx(0), "a")
	if f.calls != calls+1 {
		t.Fatalf("cache created during the attempt must be reset by rollback")
	}
}

func TestBatchOffDegeneratesToPerKey(t *testing.T) {
	keys := []string{"a", "b", "a", "c"}

	fa := newFake("kv")
	ca := New(fa, Options{Op: "op", CacheMode: CacheReal})
	ctxA := testCtx(0)
	want := ca.LookupBatch(ctxA, keys)

	fb := newFake("kv")
	cb := New(fb, Options{Op: "op", CacheMode: CacheReal})
	ctxB := testCtx(0)
	var got [][]string
	for _, k := range keys {
		got = append(got, cb.Lookup(ctxB, k))
	}

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("batch-off LookupBatch = %v, per-key = %v", want, got)
	}
	if ctxA.Extra() != ctxB.Extra() {
		t.Fatalf("batch-off charge %.9f != per-key charge %.9f", ctxA.Extra(), ctxB.Extra())
	}
	for _, ctr := range []string{CtrProbes("op", "kv"), CtrMisses("op", "kv"), CtrLookups("op", "kv"), CtrServeNS("op", "kv")} {
		if ctxA.Counter(ctr) != ctxB.Counter(ctr) {
			t.Fatalf("%s: batch-off %d != per-key %d", ctr, ctxA.Counter(ctr), ctxB.Counter(ctr))
		}
	}
}

func TestBatchGroupsRoundTripsByPartition(t *testing.T) {
	f := newFake("kv")
	f.scheme = &index.Scheme{
		Partitions: 2,
		Fn:         func(key string) int { return int(key[0]) % 2 },
	}
	// All partitions are remote from node 0 (hosts nil → always remote).
	c := New(f, Options{Op: "op", Batch: true})
	ctx := testCtx(0)

	keys := []string{"a", "b", "c"} // 'a','c' → one partition, 'b' → the other
	vals := c.LookupBatch(ctx, keys)
	if len(vals) != 3 || !reflect.DeepEqual(vals[1], []string{"vb1", "vb2"}) {
		t.Fatalf("batched results misaligned: %v", vals)
	}
	if f.batchCalls != 1 {
		t.Fatalf("multi-get calls = %d, want 1", f.batchCalls)
	}
	if rt := ctx.Counter(CtrNetRoundTrips("op", "kv")); rt != 2 {
		t.Fatalf("round trips = %d, want 2 (one per partition)", rt)
	}
	if l := ctx.Counter(CtrLookups("op", "kv")); l != 3 {
		t.Fatalf("lookups = %d, want 3", l)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next Handler) Handler {
			return func(r *Request) ([][]string, error) {
				order = append(order, name)
				return next(r)
			}
		}
	}
	h := Chain(func(*Request) ([][]string, error) { return nil, nil }, mk("inner"), mk("outer"))
	if _, err := h(&Request{Keys: []string{"k"}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"outer", "inner"}) {
		t.Fatalf("chain order = %v", order)
	}
}

func TestIndexErrorMessage(t *testing.T) {
	e := &IndexError{Op: "join", Index: "orders", Key: "o42", Err: errors.New("boom")}
	msg := e.Error()
	for _, want := range []string{"join", "orders", "o42", "boom"} {
		if !containsStr(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRetryBackoffCappedAndJitterDeterministic(t *testing.T) {
	run := func() float64 {
		f := newFake("kv")
		f.serve = 0
		f.failFirst = 3
		c := New(f, Options{Op: "op", Retry: RetryPolicy{
			Max: 3, Backoff: 0.1, Factor: 2, Cap: 0.15, Jitter: 0.5, Seed: 42,
		}})
		ctx := testCtx(0)
		c.Access(ctx, "a")
		return ctx.Extra()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("jittered backoff not deterministic: %.9f vs %.9f", first, second)
	}
	// Uncapped, unjittered waits would be 0.1+0.2+0.4 = 0.7; the cap bounds
	// attempts 1 and 2 at 0.15, and jitter 0.5 scales each wait by at most
	// 1.5, so the total must sit inside (0, (0.1+0.15+0.15)*1.5].
	if max := (0.1 + 0.15 + 0.15) * 1.5; first <= 0 || first > max {
		t.Fatalf("capped jittered backoff charged %.4f, want in (0, %.4f]", first, max)
	}
}

func TestRetryWithoutCapMatchesGeometricSeries(t *testing.T) {
	f := newFake("kv")
	f.serve = 0
	f.failFirst = 2
	c := New(f, Options{Op: "op", Retry: RetryPolicy{Max: 3, Backoff: 0.1, Factor: 2}})
	ctx := testCtx(0)
	c.Access(ctx, "a")
	// Extra = backoff plus tiny per-attempt network charges; the backoff
	// component must be exactly the plain geometric series 0.1 + 0.2.
	if want := 0.1 + 0.2; ctx.Extra() < want || ctx.Extra() > want+1e-3 {
		t.Fatalf("zero Cap/Jitter must keep the plain geometric backoff: charged %.9f, want %.9f+net", ctx.Extra(), want)
	}
}

func TestOutageShortCircuitsBeforeCharges(t *testing.T) {
	f := newFake("kv")
	plan := chaos.MustNew(chaos.Config{Outages: []chaos.Outage{
		{Index: "kv", Partition: -1, From: 0, Until: math.Inf(1)},
	}}, 4)
	c := New(f, Options{Op: "op", Chaos: plan})
	ctx := testCtx(0)

	if got := c.Access(ctx, "a"); len(got) != 0 {
		t.Fatalf("lookup during outage = %v, want empty", got)
	}
	if f.calls != 0 {
		t.Fatalf("down partition still reached the index: %d calls", f.calls)
	}
	if ctx.Extra() != 0 {
		t.Fatalf("down partition charged %.6f virtual seconds, want 0", ctx.Extra())
	}
	if l := ctx.Counter(CtrLookups("op", "kv")); l != 0 {
		t.Fatalf("lookups = %d, want 0 (nothing served)", l)
	}
	if u := ctx.Counter(chaos.CtrUnavailable); u != 1 {
		t.Fatalf("%s = %d, want 1", chaos.CtrUnavailable, u)
	}
	if e := ctx.Counter(CtrErrors("op", "kv")); e != 1 {
		t.Fatalf("errors = %d, want 1", e)
	}
}

func TestOutageEndsInsideRetryBudget(t *testing.T) {
	f := newFake("kv")
	plan := chaos.MustNew(chaos.Config{Outages: []chaos.Outage{
		{Index: "kv", Partition: -1, From: 0, Until: 0.5},
	}}, 4)
	c := New(f, Options{Op: "op", Chaos: plan, Retry: RetryPolicy{Max: 4, Backoff: 0.2, Factor: 2}})
	ctx := testCtx(0)

	// Backoff charges advance Task.Now past the window's end at 0.5:
	// attempts at Now = 0, 0.2, then 0.6 — the third one is served.
	if got := c.Access(ctx, "a"); !reflect.DeepEqual(got, []string{"va"}) {
		t.Fatalf("lookup after outage end = %v, want [va]", got)
	}
	if u := ctx.Counter(chaos.CtrUnavailable); u != 2 {
		t.Fatalf("%s = %d, want 2 attempts inside the window", chaos.CtrUnavailable, u)
	}
	if r := ctx.Counter(CtrRetries("op", "kv")); r != 2 {
		t.Fatalf("retries = %d, want 2", r)
	}
	if e := ctx.Counter(CtrErrors("op", "kv")); e != 0 {
		t.Fatalf("errors = %d, want 0 (the access eventually succeeded)", e)
	}
}

func TestOutageRespectsPartitionScoping(t *testing.T) {
	f := newFake("kv")
	f.scheme = &index.Scheme{Partitions: 2, Fn: func(k string) int {
		if k == "a" {
			return 0
		}
		return 1
	}}
	plan := chaos.MustNew(chaos.Config{Outages: []chaos.Outage{
		{Index: "kv", Partition: 0, From: 0, Until: math.Inf(1)},
	}}, 4)
	c := New(f, Options{Op: "op", Chaos: plan})
	ctx := testCtx(0)

	if got := c.Access(ctx, "a"); len(got) != 0 {
		t.Fatalf("lookup on down partition = %v, want empty", got)
	}
	if got := c.Access(ctx, "b"); !reflect.DeepEqual(got, []string{"vb1", "vb2"}) {
		t.Fatalf("lookup on healthy partition = %v, want [vb1 vb2]", got)
	}
	if u := ctx.Counter(chaos.CtrUnavailable); u != 1 {
		t.Fatalf("%s = %d, want 1", chaos.CtrUnavailable, u)
	}
}

func TestResetNodeColdCaches(t *testing.T) {
	f := newFake("kv")
	c := New(f, Options{Op: "op", CacheMode: CacheReal})
	ctx := testCtx(0)

	c.Lookup(ctx, "a")
	c.Lookup(ctx, "a")
	if f.calls != 1 {
		t.Fatalf("warm-up saw %d calls, want 1", f.calls)
	}
	c.ResetNode(0)
	c.Lookup(ctx, "a")
	if f.calls != 2 {
		t.Fatalf("post-reset lookup must miss: %d calls, want 2", f.calls)
	}
}
