// Package ixclient is the index access path of the EFind runtime: a
// Client wraps any index.Accessor with a stack of composable middleware
// so the executor's strategy logic only ever asks "values for this key,
// please" and every cross-cutting concern lives in exactly one place:
//
//   - cache: the paper's per-node LRU lookup cache (§3.2), real for the
//     lookup-cache strategy and key-only shadow for the baseline's
//     R-measurement, including the per-attempt snapshot/rollback the
//     engine's fault tolerance needs;
//   - policy: the error policy — count-and-continue (paper-faithful) or
//     fail the job with the index name and lookup key;
//   - retry: capped exponential backoff with deterministic seeded jitter
//     for transient index errors, plus an optional client-side deadline;
//   - availability: the chaos plan's index partition outages — a down
//     partition fails the access with a transient error before anything
//     is charged (absent when the plan has no outages);
//   - accounting: the serve-time charge T_j, network transfer charges,
//     lookup/probe/miss/error counters, and the Nik/Sik/FM-sketch
//     statistics the optimizer consumes;
//   - terminal: the accessor itself, with a multi-get fast path for
//     BatchAccessor indices when batching is enabled.
//
// An outermost spans stage additionally records an index-lookup trace
// span per access when the task is traced (internal/obs); it is free
// when tracing is off.
//
// The stack is assembled once per (operator decision, index) pair. With
// batching off, the chain charges and counts bit-identically to the
// pre-refactor executor; batching is the one deliberate cost deviation
// (see DESIGN.md, "Index client pipeline").
package ixclient

import (
	"errors"
	"fmt"
	"sync"

	"efind/internal/chaos"
	"efind/internal/index"
	"efind/internal/lru"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// CacheMode selects how the client's Lookup path uses the per-node cache.
type CacheMode int

// Cache modes.
const (
	// CacheOff bypasses the cache entirely (shuffle-strategy group
	// lookups are already deduplicated by the shuffle).
	CacheOff CacheMode = iota
	// CacheShadow probes a key-only shadow cache to measure the miss
	// ratio R without the cache being active (§4.2's "simple version of
	// the lookup cache"), then always performs the real lookup.
	CacheShadow
	// CacheReal serves hits from the per-node LRU cache and performs the
	// real lookup only on misses (the lookup-cache strategy, §3.2).
	CacheReal
)

// ErrorPolicy decides what an index error does to the running job.
type ErrorPolicy int

// Error policies.
const (
	// ErrorCount charges the failed access, bumps the per-index error
	// counter, and yields an empty result — the paper's behaviour:
	// indices are black boxes and EFind cannot retry more sensibly.
	ErrorCount ErrorPolicy = iota
	// ErrorFailJob aborts the running task — and with it the job — on
	// the first index error, reporting the index name and lookup key.
	ErrorFailJob
)

// RetryPolicy configures the retry middleware. The zero value disables
// retries and the deadline, which keeps the chain bit-identical to the
// pre-middleware executor.
type RetryPolicy struct {
	// Max is the number of re-attempts after the first failed access.
	Max int
	// Backoff is the virtual time charged before the first re-attempt.
	Backoff float64
	// Factor multiplies the backoff between attempts (0 = 2).
	Factor float64
	// Cap bounds a single backoff wait (0 = uncapped). Without a cap,
	// long retry ladders against a dead partition grow exponentially past
	// any outage window instead of polling it at a steady cadence.
	Cap float64
	// Jitter spreads each wait by a deterministic seeded factor in
	// [1-Jitter, 1+Jitter], keyed by lookup key and attempt. Fixed-delay
	// retries make synchronized retry storms against a recovering
	// partition; jittered ones desynchronize while staying bit-identical
	// run to run (0 = no jitter).
	Jitter float64
	// Seed drives the jitter draws.
	Seed int64
	// Timeout is a client-side deadline: an index whose serve time
	// exceeds it has the access abandoned after Timeout virtual seconds
	// and surfaces a transient error (0 = no deadline).
	Timeout float64
}

// Options configures a Client.
type Options struct {
	// Op is the operator name for counter namespacing.
	Op string
	// CacheMode selects the Lookup path's cache behaviour.
	CacheMode CacheMode
	// CacheCapacity bounds each per-node cache (0 = 1024, the paper's).
	CacheCapacity int
	// ErrorPolicy decides what index errors do to the job.
	ErrorPolicy ErrorPolicy
	// Retry configures transient-error retries and the deadline.
	Retry RetryPolicy
	// Batch enables the multi-get fast path: LookupBatch forwards cache
	// misses as one request, resolved via BatchAccessor when the index
	// implements it, charged one network round trip per remote partition
	// group instead of one per remote key.
	Batch bool
	// Chaos, when set and carrying outages, inserts the availability
	// middleware: an access whose key falls in a partition inside an
	// outage window fails with chaos.ErrUnavailable (transient, so the
	// retry ladder polls for recovery) before any serve or network charge.
	Chaos *chaos.Plan
	// SharedCache attaches the client to a cross-job cache pool: with
	// CacheReal, real hits are served from the pool's per-(index, node)
	// caches — shared with every other pooled client, warm across jobs —
	// while the probe/miss counters feeding the optimizer's R come from a
	// private per-job shadow cache, so each job still measures the miss
	// ratio it would see running alone. Nil keeps the caches private to
	// the client (the one-shot path).
	SharedCache *Pool
}

// DefaultCacheCapacity is the paper's lookup cache size (1024 entries).
const DefaultCacheCapacity = 1024

// Request is one index access travelling through the middleware chain.
type Request struct {
	// Task is the executing task's context; charges and counters land on
	// it, and Task.Node keys the per-node caches.
	Task *mapreduce.TaskContext
	// Keys are the lookup keys. Single lookups are 1-element requests.
	Keys []string
	// Batched marks the request as eligible for the multi-get fast path.
	Batched bool
}

// Handler resolves a request to one value list per key.
type Handler func(*Request) ([][]string, error)

// Middleware wraps a handler with one orthogonal concern.
type Middleware func(Handler) Handler

// Chain wraps h in the given middleware, first element innermost.
func Chain(h Handler, mw ...Middleware) Handler {
	for _, m := range mw {
		h = m(h)
	}
	return h
}

// IndexError reports a failed index access under ErrorFailJob.
type IndexError struct {
	Op, Index, Key string
	Err            error
}

func (e *IndexError) Error() string {
	return fmt.Sprintf("efind: operator %q index %q: lookup key %q: %v", e.Op, e.Index, e.Key, e.Err)
}

func (e *IndexError) Unwrap() error { return e.Err }

// ErrTimeout marks a lookup abandoned at the client-side deadline. It is
// transient: retrying against a replica or a recovered index could
// succeed, so the retry middleware re-attempts it.
var ErrTimeout = fmt.Errorf("lookup deadline exceeded: %w", index.ErrTransient)

// lookupError carries the failing key up the chain so the job-failure
// report can name it.
type lookupError struct {
	key string
	err error
}

func (e *lookupError) Error() string { return fmt.Sprintf("key %q: %v", e.key, e.err) }
func (e *lookupError) Unwrap() error { return e.err }

// Client is the batched, cached, retrying, accounted view of one index
// from one operator decision. It is safe for concurrent use: tasks of
// different nodes run on real goroutines, and all mutable state (the
// per-node caches) is guarded.
type Client struct {
	acc     index.Accessor
	batcher index.BatchAccessor // nil when the accessor has no multi-get
	prober  index.Prober        // nil when the accessor has no index-only probe
	scheme  *index.Scheme       // nil when the accessor is not partitioned
	opts    Options

	inline Handler // cache → policy → retry → accounting → terminal
	direct Handler // the same chain without the cache stage

	mu     sync.Mutex
	real   map[sim.NodeID]*lru.Cache
	shadow map[sim.NodeID]*lru.Cache
}

// New wraps an accessor with the middleware stack configured by opts.
func New(acc index.Accessor, opts Options) *Client {
	if opts.CacheCapacity <= 0 {
		opts.CacheCapacity = DefaultCacheCapacity
	}
	c := &Client{
		acc:    acc,
		opts:   opts,
		real:   make(map[sim.NodeID]*lru.Cache),
		shadow: make(map[sim.NodeID]*lru.Cache),
	}
	if b, ok := acc.(index.BatchAccessor); ok {
		c.batcher = b
	}
	if p, ok := acc.(index.Prober); ok {
		c.prober = p
	}
	if p, ok := acc.(index.Partitioned); ok {
		c.scheme = p.Scheme()
	}
	inner := Chain(c.terminal, c.accounting, c.availability, c.retry, c.policy)
	c.direct = Chain(inner, c.spans)
	c.inline = c.direct
	if opts.CacheMode != CacheOff {
		c.inline = Chain(inner, c.cache, c.spans)
	}
	return c
}

// Accessor returns the wrapped index.
func (c *Client) Accessor() index.Accessor { return c.acc }

// Lookup resolves one key through the full stack (cache per the client's
// CacheMode, then retry, accounting, and the index itself).
func (c *Client) Lookup(t *mapreduce.TaskContext, key string) []string {
	vals, err := c.inline(&Request{Task: t, Keys: []string{key}})
	if err != nil {
		c.abort(t, err, key)
	}
	return vals[0]
}

// Access resolves one key bypassing the cache stage — the shuffle
// strategies' group lookups are already deduplicated, so caching them
// would double-count the redundancy the shuffle removed.
func (c *Client) Access(t *mapreduce.TaskContext, key string) []string {
	vals, err := c.direct(&Request{Task: t, Keys: []string{key}})
	if err != nil {
		c.abort(t, err, key)
	}
	return vals[0]
}

// LookupBatch resolves many keys. With batching off (or an index without
// a multi-get) it degenerates to per-key Lookup calls and is charged
// identically to them; with batching on, cache misses travel as one
// request and remote partitions are charged one round trip each.
func (c *Client) LookupBatch(t *mapreduce.TaskContext, keys []string) [][]string {
	if len(keys) == 0 {
		return nil
	}
	if !c.opts.Batch || c.batcher == nil {
		out := make([][]string, len(keys))
		for i, k := range keys {
			out[i] = c.Lookup(t, k)
		}
		return out
	}
	vals, err := c.inline(&Request{Task: t, Keys: keys, Batched: true})
	if err != nil {
		c.abort(t, err, keys[0])
	}
	return vals
}

// CanProbe reports whether the wrapped index answers index-only probes
// (a file-backed kvstore does: presence and result size come from the
// mapped slot section, no value pages are touched).
func (c *Client) CanProbe() bool { return c.prober != nil }

// Probe answers "is key present, and how many value bytes would a
// lookup materialize?" without materializing values. It is charged like
// a lookup — serve time T_j and, for remote keys, one round trip whose
// payload is the key plus a fixed presence+size answer — but the result
// transfer (and result decode) never happens, which is what makes
// index-only filtering cheaper than lookup-then-discard. Indices without
// an index-only path fall back to a full direct access.
func (c *Client) Probe(t *mapreduce.TaskContext, key string) (found bool, valueBytes int) {
	if c.prober == nil {
		vals := c.Access(t, key)
		n := 0
		for _, v := range vals {
			n += len(v)
		}
		return len(vals) > 0, n
	}
	op, ix := c.opts.Op, c.acc.Name()
	serve := c.acc.ServeTime()
	t.Charge(serve)
	t.Inc(CtrServeNS(op, ix), int64(serve*1e9))
	t.Inc(CtrIndexProbes(op, ix), 1)
	found, bytes, err := c.prober.Probe(key)
	if err != nil {
		t.Inc(CtrErrors(op, ix), 1)
		if c.opts.ErrorPolicy == ErrorFailJob {
			c.abort(t, err, key)
		}
		return false, 0
	}
	hosts := c.acc.HostsFor(key)
	if hosts == nil || !sim.ContainsNode(hosts, t.Node) {
		// The answer is presence plus a size — a fixed 8-byte reply.
		t.ChargeNet(float64(len(key) + 4 + 8))
		t.Inc(CtrNetRoundTrips(op, ix), 1)
	}
	return found, bytes
}

// CountKey records the per-key statistics (Nik, Sik, the FM sketch) for
// one extracted lookup key occurrence.
func (c *Client) CountKey(t *mapreduce.TaskContext, key string) {
	op, ix := c.opts.Op, c.acc.Name()
	t.Inc(CtrKeys(op, ix), 1)
	t.Inc(CtrKeyBytes(op, ix), int64(len(key)))
	t.Sketch(SkKeys(op, ix), FMWidth).Add(key)
}

// CountValues records Siv for one key occurrence once its values are
// known (from the index, the cache, or a shuffle-attached result).
func (c *Client) CountValues(t *mapreduce.TaskContext, values []string) {
	t.Inc(CtrValBytes(c.opts.Op, c.acc.Name()), int64(valueBytes(values)))
}

// abort fails the running task under ErrorFailJob. ErrorCount errors
// never reach here — the policy stage swallows them.
func (c *Client) abort(t *mapreduce.TaskContext, err error, fallbackKey string) {
	key := fallbackKey
	var le *lookupError
	if errors.As(err, &le) {
		key = le.key
		err = le.err
	}
	t.Abort(&IndexError{Op: c.opts.Op, Index: c.acc.Name(), Key: key, Err: err})
}

// cacheFor returns the node's cache (real or shadow), creating it lazily.
// The cache is shared by all tasks on the node, matching the paper's
// per-machine lookup cache.
func (c *Client) cacheFor(node sim.NodeID, shadow bool) *lru.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.real
	if shadow {
		m = c.shadow
	}
	cc, ok := m[node]
	if !ok {
		cc = lru.New(c.opts.CacheCapacity)
		m[node] = cc
	}
	return cc
}

// SnapshotNode guards the client's cache state on one node and returns a
// rollback that rewinds it, resetting any cache the node created after
// the snapshot. The engine's fault tolerance uses it so a failed task
// attempt does not leave the node's shared caches warmed — which would
// skew the measured miss ratio R the cost model consumes.
//
// The guard is journal-based (lru.Cache.Begin): O(1) at snapshot time
// plus O(cache operations during the attempt) at rollback, instead of
// copying every cache entry eagerly — the difference between guarding
// 1024-entry caches across 10k nodes and not affording it (see
// BenchmarkSnapshotNode10kNodes). A guard that is never rolled back costs
// nothing further: the next attempt's Begin on the same cache supersedes
// its journal. Pooled caches (Options.SharedCache) are NOT guarded here —
// they are shared across clients, so the plan-level guard journals them
// exactly once via Pool.SnapshotNode.
func (c *Client) SnapshotNode(node sim.NodeID) func() {
	c.mu.Lock()
	var caches []*lru.Cache
	var undos []*lru.Undo
	for _, m := range []map[sim.NodeID]*lru.Cache{c.real, c.shadow} {
		if cc, ok := m[node]; ok {
			caches = append(caches, cc)
			undos = append(undos, cc.Begin())
		}
	}
	c.mu.Unlock()
	return func() {
		for _, u := range undos {
			u.Rollback()
		}
		known := make(map[*lru.Cache]bool, len(caches))
		for _, cc := range caches {
			known[cc] = true
		}
		c.mu.Lock()
		for _, m := range []map[sim.NodeID]*lru.Cache{c.real, c.shadow} {
			if cc, ok := m[node]; ok && !known[cc] {
				cc.Reset()
			}
		}
		c.mu.Unlock()
	}
}

// ResetNode drops the client's caches on one node. The engine's chaos
// machinery calls it when the node crashes: a rebooted TaskTracker
// restarts with cold per-machine lookup caches, real and shadow alike.
func (c *Client) ResetNode(node sim.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.real, node)
	delete(c.shadow, node)
}

// valueBytes sizes a lookup result the way the wire format would.
func valueBytes(values []string) int {
	n := 0
	for _, v := range values {
		n += len(v) + 4
	}
	return n
}
