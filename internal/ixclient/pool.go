package ixclient

import (
	"sort"
	"sync"

	"efind/internal/lru"
	"efind/internal/sim"
)

// Pool is the cross-job shared lookup cache of the multi-tenant job
// service: real per-(index, node) LRU caches that outlive any single job,
// so a tenant's repeated query family finds the per-machine caches
// already warm (the paper's per-machine lookup cache of §3.2 promoted to
// service soft state). Clients attach via Options.SharedCache; a pooled
// client serves real hits from the pool but keeps its own per-job shadow
// cache, so the miss ratio R each job's optimizer observes is the value
// the job would measure running alone (per-job shadow accounting).
//
// Concurrency and determinism: the pool and its caches are individually
// locked, so access is memory-safe under any schedule. Determinism of
// pooled contents relies on the job service's execution discipline — the
// service runs one job's phase at a time in deterministic grant order, so
// the pool state a phase observes is a pure function of the admission
// trace and seed. Visibility is therefore phase-granular: a phase sees
// the pool as of the phases that completed before it in grant order, not
// the fine-grained virtual-time interleaving of individual lookups.
type Pool struct {
	capacity int

	mu     sync.Mutex
	caches map[poolKey]*lru.Cache
}

type poolKey struct {
	index string
	node  sim.NodeID
}

// NewPool returns an empty pool whose per-(index, node) caches hold up to
// capacity entries each (0 = the paper's 1024).
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Pool{capacity: capacity, caches: make(map[poolKey]*lru.Cache)}
}

// Capacity returns the per-cache entry bound.
func (p *Pool) Capacity() int { return p.capacity }

// cacheFor returns the pooled cache for one index on one node, creating
// it lazily. All clients attached to the pool share it.
func (p *Pool) cacheFor(index string, node sim.NodeID) *lru.Cache {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := poolKey{index: index, node: node}
	cc, ok := p.caches[k]
	if !ok {
		cc = lru.New(p.capacity)
		p.caches[k] = cc
	}
	return cc
}

// SnapshotNode begins an undo journal on every pooled cache of one node
// and returns a rollback that rewinds them, resetting any cache the node
// acquired after the snapshot. The compiled plan's attempt guard calls it
// once per task attempt — alongside, not through, the per-client guards,
// because pooled caches are shared across clients and a second Begin on
// the same cache would supersede the first journal.
func (p *Pool) SnapshotNode(node sim.NodeID) func() {
	p.mu.Lock()
	var caches []*lru.Cache
	var undos []*lru.Undo
	for k, cc := range p.caches {
		if k.node == node {
			caches = append(caches, cc)
			undos = append(undos, cc.Begin())
		}
	}
	p.mu.Unlock()
	return func() {
		for _, u := range undos {
			u.Rollback()
		}
		known := make(map[*lru.Cache]bool, len(caches))
		for _, cc := range caches {
			known[cc] = true
		}
		p.mu.Lock()
		for k, cc := range p.caches {
			if k.node == node && !known[cc] {
				cc.Reset()
			}
		}
		p.mu.Unlock()
	}
}

// ResetNode drops every pooled cache on one node: a crashed machine
// reboots with its service soft state cold, for every index and every
// job alike.
func (p *Pool) ResetNode(node sim.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.caches {
		if k.node == node {
			delete(p.caches, k)
		}
	}
}

// PoolEntry is the serializable state of one pooled cache, produced by
// Dump and consumed by Restore — the job service checkpoints these so a
// recovered coordinator re-warms the cross-job caches to their exact
// pre-crash contents (entries in recency order, statistics included).
type PoolEntry struct {
	Index        string
	Node         sim.NodeID
	Keys         []string // oldest → newest
	Values       [][]string
	Hits, Misses int64
}

// Dump returns every pooled cache's state in deterministic (index, node)
// order. Empty caches with history (hits/misses) are included; a Dump of
// a fresh pool is empty.
func (p *Pool) Dump() []PoolEntry {
	p.mu.Lock()
	keys := make([]poolKey, 0, len(p.caches))
	for k := range p.caches {
		keys = append(keys, k)
	}
	p.mu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].index != keys[b].index {
			return keys[a].index < keys[b].index
		}
		return keys[a].node < keys[b].node
	})
	out := make([]PoolEntry, 0, len(keys))
	for _, k := range keys {
		cc := p.cacheFor(k.index, k.node)
		e := PoolEntry{Index: k.index, Node: k.node}
		e.Keys, e.Values, e.Hits, e.Misses = cc.Dump()
		out = append(out, e)
	}
	return out
}

// Restore replaces the pool's contents with a dumped state. Caches not
// named in entries are dropped.
func (p *Pool) Restore(entries []PoolEntry) {
	p.mu.Lock()
	p.caches = make(map[poolKey]*lru.Cache, len(entries))
	p.mu.Unlock()
	for _, e := range entries {
		cc := p.cacheFor(e.Index, e.Node)
		cc.Load(e.Keys, e.Values, e.Hits, e.Misses)
	}
}

// Stats sums probe hits and misses over every pooled cache — the
// service-level view of how much cross-job reuse the pool delivers.
func (p *Pool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cc := range p.caches {
		h, m := cc.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// HitRatio returns hits/(hits+misses) across the pool, or 0 when the
// pool has never been probed.
func (p *Pool) HitRatio() float64 {
	hits, misses := p.Stats()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
