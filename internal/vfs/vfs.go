// Package vfs is the narrow filesystem seam shared by the durability
// layer: the write-ahead log (internal/wal) and the snapshot store's
// atomic writer (fstore.WriteFileFS) perform every mutation through an
// FS value, so chaos.FaultFS can interpose deterministic storage faults
// — torn writes, lying short writes, ENOSPC, rename failures — without
// either package knowing it is under test. The interface is deliberately
// minimal: just the operations the temp+rename atomic-write idiom and an
// append-only journal need.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is one writable file handle.
type File interface {
	io.Writer
	// Sync flushes the file's buffered writes to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the mutation surface of a directory tree. Reads go through
// ReadFile/ReadDir so crash-image tooling can copy state; writes go
// through CreateTemp/OpenAppend so fault injection sees every byte
// before it becomes durable.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// CreateTemp creates a new temporary file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenAppend implements FS.
func (OS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// WriteFileAtomic writes data to path via the temp+rename idiom: readers
// of path never observe a partial file, and a crash leaves either the
// old contents or the new. The temp file is fsynced before the rename
// when sync is true.
func WriteFileAtomic(fs FS, path string, data []byte, sync bool) error {
	tmp, err := fs.CreateTemp(filepath.Dir(path), ".vfs-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fs.Remove(name)
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			fs.Remove(name)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(name)
		return err
	}
	if err := fs.Rename(name, path); err != nil {
		fs.Remove(name)
		return err
	}
	return nil
}
