// Package index defines the contract between EFind and the data sources it
// connects to. The paper uses "index" broadly: database-like indices,
// inverted indices, key-value stores, knowledge bases, and cloud services
// all qualify, as long as a lookup with the same key returns the same
// result for the duration of a job. EFind itself implements no index; it
// consumes this interface.
package index

import (
	"errors"

	"efind/internal/sim"
)

// Accessor is the paper's IndexAccessor: one implementation per index
// type, reusable across jobs. Lookup takes an index key ik and returns the
// result list {iv}.
type Accessor interface {
	// Name identifies the index in plans, statistics, and counters.
	Name() string
	// Lookup returns the values for key. Lookups must be idempotent for
	// the duration of a job (EFind's only assumption about indices).
	Lookup(key string) ([]string, error)
	// ServeTime is the index-local computation time per lookup in virtual
	// seconds (the paper's T_j term).
	ServeTime() float64
	// HostsFor returns the nodes that can serve the key locally, or nil
	// when unknown (e.g. an external service outside the cluster).
	HostsFor(key string) []sim.NodeID
}

// Scheme describes how a distributed index partitions its keys, as exposed
// by e.g. the root of a distributed B-tree or a Cassandra ring. EFind
// applies it in the shuffling job of the re-partitioning strategy so that
// lookup keys are co-partitioned with the index (§3.4).
type Scheme struct {
	// Partitions is the number of index partitions.
	Partitions int
	// Fn maps a key to its partition.
	Fn func(key string) int
	// Hosts lists the replica nodes of each partition.
	Hosts [][]sim.NodeID
}

// Partitioned is implemented by indices that can communicate their
// partition scheme to EFind (the paper's partition method + flag on the
// IndexAccessor class).
type Partitioned interface {
	Accessor
	Scheme() *Scheme
}

// BatchAccessor is implemented by indices that offer a multi-get fast
// path: one request resolves many keys, letting the client charge one
// network round trip per index partition instead of one per key. Results
// align positionally with the requested keys.
type BatchAccessor interface {
	Accessor
	BatchLookup(keys []string) ([][]string, error)
}

// Prober is implemented by indices that can answer "is this key present,
// and how large is its result?" without materializing values — on a
// file-backed index this reads only the fixed-size slot section of the
// snapshot (index-only filtering), never the value pages. Filters that
// only need presence use it to skip the data-section read entirely.
type Prober interface {
	Accessor
	Probe(key string) (found bool, valueBytes int, err error)
}

// BuildEntry is one index entry extracted from a scanned record by a
// buildable index (key → value, like a Put).
type BuildEntry struct {
	Key, Value string
}

// Buildable is implemented by indices that can be built incrementally as
// a side-effect of map scans (HAIL/LIAH-style adaptive indexing,
// internal/adaptix). A buildable index is usable at any build coverage:
// Lookup serves covered splits from the built structure and falls back
// to scanning the uncovered remainder, so results are always exact —
// only ServeTime changes as coverage grows.
//
// The engine-facing protocol: the plan compiler asks OfferSplits for the
// splits this run should build, the piggyback map stage extracts entries
// from the records it scans anyway and Stages them per (node, split),
// and the runtime Commits the staged splits at one serial point after
// the job (or Abandons them on failure). SnapshotBuild/ResetBuild mirror
// the lookup caches' attempt-guard and node-crash hooks so failed or
// speculative attempts never leak half-scanned splits into the index.
type Buildable interface {
	Accessor
	// BuildProgress returns how many of the total build units (input
	// splits) have been committed.
	BuildProgress() (covered, total int)
	// IsBuilt reports whether one build unit is committed (the plan
	// compiler uses it to re-freeze offer sets for subset phases).
	IsBuilt(split int) bool
	// ScanServeTime is the extra serve time per lookup per uncovered
	// split (the scan fallback's share of Tj).
	ScanServeTime() float64
	// BuildCharge is the virtual time the piggyback build stage charges
	// per scanned record of an offered split.
	BuildCharge() float64
	// OfferSplits returns the splits one run offers to build: the
	// lowest-numbered uncovered splits, capped by the index's offer rate.
	OfferSplits() []int
	// Extract derives the index entries of one scanned record.
	Extract(key, value string) []BuildEntry
	// Stage records the entries of one fully scanned split, pre-commit.
	Stage(node sim.NodeID, split int, entries []BuildEntry)
	// SnapshotBuild marks the node's staging state ahead of a task
	// attempt; the returned rollback discards entries staged since.
	SnapshotBuild(node sim.NodeID) func()
	// ResetBuild discards everything the node has staged (node crash).
	ResetBuild(node sim.NodeID)
	// Commit installs the staged splits into the index and its registry,
	// returning how many splits became covered. Must be called at a
	// serial point (between jobs).
	Commit() int
	// Abandon discards all staged state without committing (job failure).
	Abandon()
}

// ErrTransient marks an index error as retryable: accessors wrap it
// (fmt.Errorf("...: %w", index.ErrTransient)) to tell the client's retry
// middleware that re-attempting the lookup could succeed. Errors not
// marked transient fail fast — a deterministic logic error would fail
// identically on every attempt.
var ErrTransient = errors.New("transient index error")
