// Package kvstore is a simulated distributed key-value index service in
// the image of the paper's Cassandra deployment: keys are spread over a
// fixed number of partitions (hash- or range-partitioned), each partition
// is replicated across nodes and stored in an ordered B+tree, the
// partition scheme is queryable (the paper controls Cassandra placement
// via PropertyFileSnitch precisely so EFind can know it), and every lookup
// costs a configurable serve time T_j.
package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"efind/internal/btree"
	"efind/internal/fstore"
	"efind/internal/index"
	"efind/internal/sim"
)

// Store is a distributed KV index. Create with NewHash or NewRange, load
// with Put/Load, then serve Lookup traffic. Lookups are safe to issue
// from concurrently executing tasks (the parallel engine does); loads
// take a write lock, mirroring a store that is bulk-loaded before the
// job's read-only query traffic.
type Store struct {
	name      string
	scheme    index.Scheme
	mu        sync.RWMutex
	parts     []*btree.Tree
	serveTime float64
	lookups   atomic.Int64
	misses    atomic.Int64

	// File-backed backend (see filebacked.go): when snaps is non-nil,
	// lookups are served from per-partition fstore snapshots under dir;
	// the trees remain the source of truth for rebuilds. stale marks
	// partitions mutated since their snapshot was written.
	dir        string
	snaps      []*fstore.Snapshot
	stale      []bool
	openOpts   fstore.Options
	generation int64
	rebuilds   atomic.Int64
}

var (
	_ index.Partitioned   = (*Store)(nil)
	_ index.BatchAccessor = (*Store)(nil)
)

// NewHash creates a hash-partitioned store (the paper's setup: 32
// partitions via HashPartitioner, each replicated to 3 nodes).
func NewHash(cluster *sim.Cluster, name string, partitions, replicas int, serveTime float64) *Store {
	if partitions < 1 {
		partitions = 1
	}
	s := &Store{
		name: name,
		scheme: index.Scheme{
			Partitions: partitions,
			Fn:         func(key string) int { return hashPartition(key, partitions) },
		},
		serveTime: serveTime,
	}
	s.initParts(cluster, replicas)
	return s
}

// NewRange creates a range-partitioned store with the given split points:
// partition i holds keys in [splits[i-1], splits[i]), with open ends. A
// store with len(splits)+1 partitions results.
func NewRange(cluster *sim.Cluster, name string, splits []string, replicas int, serveTime float64) *Store {
	bounds := append([]string(nil), splits...)
	sort.Strings(bounds)
	partitions := len(bounds) + 1
	s := &Store{
		name: name,
		scheme: index.Scheme{
			Partitions: partitions,
			Fn: func(key string) int {
				return sort.SearchStrings(bounds, key+"\x00") // first bound > key
			},
		},
		serveTime: serveTime,
	}
	s.initParts(cluster, replicas)
	return s
}

func (s *Store) initParts(cluster *sim.Cluster, replicas int) {
	if replicas < 1 {
		replicas = 1
	}
	s.parts = make([]*btree.Tree, s.scheme.Partitions)
	s.scheme.Hosts = make([][]sim.NodeID, s.scheme.Partitions)
	for i := range s.parts {
		s.parts[i] = btree.New()
		s.scheme.Hosts[i] = cluster.PlaceReplicas(replicas)
	}
}

// Name implements index.Accessor.
func (s *Store) Name() string { return s.name }

// Put appends a value under key (a key can hold several values, like a
// non-unique secondary index). On a file-backed store, the key's
// partition snapshot is marked stale and rebuilt on its next lookup.
func (s *Store) Put(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pi := s.scheme.Fn(key)
	p := s.parts[pi]
	if s.stale != nil {
		s.stale[pi] = true
	}
	if cur, ok := p.Get(key); ok {
		p.Put(key, append(cur.([]string), value))
		return
	}
	p.Put(key, []string{value})
}

// Load bulk-inserts pairs.
func (s *Store) Load(pairs map[string][]string) {
	for k, vs := range pairs {
		for _, v := range vs {
			s.Put(k, v)
		}
	}
}

// Lookup implements index.Accessor. A missing key returns an empty result,
// not an error (the paper's lookups return a possibly empty list {iv}).
// File-backed stores serve it from the mapped snapshot: misses stop at
// the fixed-size slot section and never touch value pages.
func (s *Store) Lookup(key string) ([]string, error) {
	s.lookups.Add(1)
	v, ok, err := s.get(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		s.misses.Add(1)
		return nil, nil
	}
	return v, nil
}

// BatchLookup implements index.BatchAccessor: one request resolves many
// keys, grouped by partition under a single read lock — the multi-get a
// real store (Cassandra, HBase) answers with one round trip per involved
// partition. Results align positionally with keys; missing keys yield nil
// entries and count as misses, exactly as per-key Lookup calls would.
func (s *Store) BatchLookup(keys []string) ([][]string, error) {
	s.lookups.Add(int64(len(keys)))
	out := make([][]string, len(keys))
	for i, k := range keys {
		v, ok, err := s.get(k)
		if err != nil {
			return nil, err
		}
		if ok {
			out[i] = v
		} else {
			s.misses.Add(1)
		}
	}
	return out, nil
}

// ServeTime implements index.Accessor (the T_j term).
func (s *Store) ServeTime() float64 { return s.serveTime }

// HostsFor implements index.Accessor.
func (s *Store) HostsFor(key string) []sim.NodeID {
	return s.scheme.Hosts[s.scheme.Fn(key)]
}

// Scheme implements index.Partitioned.
func (s *Store) Scheme() *index.Scheme { return &s.scheme }

// Lookups returns how many lookups the store has served — the observable
// the redundancy-reducing strategies shrink.
func (s *Store) Lookups() int64 { return s.lookups.Load() }

// Misses returns how many lookups found no value.
func (s *Store) Misses() int64 { return s.misses.Load() }

// ResetStats clears the lookup counters (between experiment runs).
func (s *Store) ResetStats() {
	s.lookups.Store(0)
	s.misses.Store(0)
}

// Len returns the total number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, p := range s.parts {
		n += p.Len()
	}
	return n
}

// PartitionSizes returns the distinct-key count per partition, for tests
// of partition balance.
func (s *Store) PartitionSizes() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.Len()
	}
	return out
}

// String describes the store.
func (s *Store) String() string {
	return fmt.Sprintf("kvstore(%s, %d partitions, %d keys)", s.name, s.scheme.Partitions, s.Len())
}

// hashPartition matches the paper's use of Hadoop's HashPartitioner for
// the index partitions.
func hashPartition(key string, n int) int {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}
