package kvstore

import (
	"fmt"
	"testing"

	"efind/internal/sim"
)

func BenchmarkPut(b *testing.B) {
	s := NewHash(sim.NewCluster(sim.DefaultConfig()), "b", 32, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%09d", i), "value")
	}
}

func BenchmarkLookup(b *testing.B) {
	s := NewHash(sim.NewCluster(sim.DefaultConfig()), "b", 32, 3, 0)
	for i := 0; i < 100000; i++ {
		s.Put(fmt.Sprintf("key-%09d", i), "value")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(fmt.Sprintf("key-%09d", i%100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostsFor(b *testing.B) {
	s := NewHash(sim.NewCluster(sim.DefaultConfig()), "b", 32, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HostsFor("some-key")
	}
}
