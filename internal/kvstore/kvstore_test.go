package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"efind/internal/sim"
)

func cluster() *sim.Cluster { return sim.NewCluster(sim.DefaultConfig()) }

func TestPutLookup(t *testing.T) {
	s := NewHash(cluster(), "t", 8, 3, 1e-3)
	s.Put("a", "1")
	s.Put("a", "2")
	s.Put("b", "3")
	got, err := s.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("Lookup(a) = %v", got)
	}
	if got, _ := s.Lookup("b"); len(got) != 1 || got[0] != "3" {
		t.Fatalf("Lookup(b) = %v", got)
	}
}

func TestLookupMissingReturnsEmpty(t *testing.T) {
	s := NewHash(cluster(), "t", 8, 3, 0)
	got, err := s.Lookup("missing")
	if err != nil || len(got) != 0 {
		t.Fatalf("missing key should yield empty result, got %v, %v", got, err)
	}
	if s.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses())
	}
}

func TestLookupCounting(t *testing.T) {
	s := NewHash(cluster(), "t", 4, 3, 0)
	s.Put("a", "1")
	for i := 0; i < 5; i++ {
		s.Lookup("a")
	}
	if s.Lookups() != 5 {
		t.Fatalf("lookups = %d, want 5", s.Lookups())
	}
	s.ResetStats()
	if s.Lookups() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSchemeConsistentWithHosts(t *testing.T) {
	s := NewHash(cluster(), "t", 32, 3, 0)
	sch := s.Scheme()
	if sch.Partitions != 32 || len(sch.Hosts) != 32 {
		t.Fatalf("scheme partitions = %d hosts = %d", sch.Partitions, len(sch.Hosts))
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		p := sch.Fn(key)
		if p < 0 || p >= 32 {
			t.Fatalf("partition %d out of range", p)
		}
		hosts := s.HostsFor(key)
		if len(hosts) != 3 {
			t.Fatalf("HostsFor returned %d hosts", len(hosts))
		}
		for j := range hosts {
			if hosts[j] != sch.Hosts[p][j] {
				t.Fatalf("HostsFor disagrees with scheme for key %q", key)
			}
		}
	}
}

func TestHashPartitionBalance(t *testing.T) {
	s := NewHash(cluster(), "t", 16, 3, 0)
	for i := 0; i < 16000; i++ {
		s.Put(fmt.Sprintf("key-%06d", i), "v")
	}
	sizes := s.PartitionSizes()
	for p, n := range sizes {
		if n < 500 || n > 1500 {
			t.Fatalf("partition %d badly skewed: %d keys (expect ~1000)", p, n)
		}
	}
	if s.Len() != 16000 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestRangePartitioning(t *testing.T) {
	s := NewRange(cluster(), "t", []string{"g", "p"}, 3, 0)
	sch := s.Scheme()
	if sch.Partitions != 3 {
		t.Fatalf("partitions = %d, want 3", sch.Partitions)
	}
	cases := map[string]int{
		"a": 0, "f": 0,
		"g": 1, "m": 1, "ozzz": 1,
		"p": 2, "z": 2,
	}
	for key, want := range cases {
		if got := sch.Fn(key); got != want {
			t.Fatalf("range Fn(%q) = %d, want %d", key, got, want)
		}
	}
	s.Put("apple", "1")
	s.Put("zebra", "2")
	if got, _ := s.Lookup("apple"); len(got) != 1 {
		t.Fatalf("range lookup apple = %v", got)
	}
	if got, _ := s.Lookup("zebra"); len(got) != 1 {
		t.Fatalf("range lookup zebra = %v", got)
	}
}

func TestServeTime(t *testing.T) {
	s := NewHash(cluster(), "t", 4, 3, 0.0008)
	if s.ServeTime() != 0.0008 {
		t.Fatalf("serve time = %g", s.ServeTime())
	}
}

func TestLoad(t *testing.T) {
	s := NewHash(cluster(), "t", 4, 3, 0)
	s.Load(map[string][]string{"a": {"1", "2"}, "b": {"3"}})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if got, _ := s.Lookup("a"); len(got) != 2 {
		t.Fatalf("loaded values = %v", got)
	}
}

func TestDegenerateParams(t *testing.T) {
	s := NewHash(cluster(), "t", 0, 0, 0)
	s.Put("a", "1")
	if got, _ := s.Lookup("a"); len(got) != 1 {
		t.Fatal("single-partition fallback store broken")
	}
	if len(s.HostsFor("a")) != 1 {
		t.Fatal("replica clamp failed")
	}
}

// Property: every Put value is returned by Lookup in insertion order,
// regardless of partitioning mode.
func TestLookupReturnsAllPuts(t *testing.T) {
	f := func(keys []string, useRange bool) bool {
		if len(keys) > 200 {
			return true
		}
		var s *Store
		if useRange {
			s = NewRange(cluster(), "t", []string{"m"}, 2, 0)
		} else {
			s = NewHash(cluster(), "t", 7, 2, 0)
		}
		want := map[string][]string{}
		for i, k := range keys {
			if len(k) > 40 {
				k = k[:40]
			}
			v := fmt.Sprintf("v%d", i)
			s.Put(k, v)
			want[k] = append(want[k], v)
		}
		for k, vs := range want {
			got, err := s.Lookup(k)
			if err != nil || len(got) != len(vs) {
				return false
			}
			for i := range vs {
				if got[i] != vs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLookupMatchesPerKey(t *testing.T) {
	s := NewHash(cluster(), "t", 8, 3, 0)
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	keys := []string{"k03", "missing", "k03", "k17", "also-missing", "k00"}

	want := make([][]string, len(keys))
	for i, k := range keys {
		v, err := s.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	perKeyLookups, perKeyMisses := s.Lookups(), s.Misses()

	s.ResetStats()
	got, err := s.BatchLookup(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("BatchLookup returned %d results for %d keys", len(got), len(keys))
	}
	for i := range keys {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("key %q: batch %v != per-key %v", keys[i], got[i], want[i])
		}
	}
	if s.Lookups() != perKeyLookups || s.Misses() != perKeyMisses {
		t.Fatalf("batch counted lookups=%d misses=%d, per-key counted %d/%d",
			s.Lookups(), s.Misses(), perKeyLookups, perKeyMisses)
	}
}
