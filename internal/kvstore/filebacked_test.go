package kvstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"efind/internal/fstore"
)

func loadStore(t *testing.T, parts int) (*Store, map[string][]string) {
	t.Helper()
	s := NewHash(cluster(), "fb", parts, 3, 1e-3)
	oracle := make(map[string][]string)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%04d", i%200)
		v := fmt.Sprintf("val-%d", i)
		s.Put(k, v)
		oracle[k] = append(oracle[k], v)
	}
	return s, oracle
}

func assertOracle(t *testing.T, s *Store, oracle map[string][]string) {
	t.Helper()
	for k, want := range oracle {
		got, err := s.Lookup(k)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", k, err)
		}
		if len(got) != len(want) {
			t.Fatalf("Lookup(%q) = %d values, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Lookup(%q)[%d] = %q, want %q", k, i, got[i], want[i])
			}
		}
	}
	if got, err := s.Lookup("absent-key"); err != nil || len(got) != 0 {
		t.Fatalf("absent key: %v, %v", got, err)
	}
}

func TestFreezeServesIdentically(t *testing.T) {
	for _, opts := range []fstore.Options{{}, {NoMmap: true}} {
		s, oracle := loadStore(t, 8)
		assertOracle(t, s, oracle)
		memLookups, memMisses := s.Lookups(), s.Misses()
		s.ResetStats()

		if err := s.FreezeOpts(t.TempDir(), opts); err != nil {
			t.Fatal(err)
		}
		if !s.FileBacked() {
			t.Fatal("store should be file-backed after Freeze")
		}
		assertOracle(t, s, oracle)
		if s.Lookups() != memLookups || s.Misses() != memMisses {
			t.Fatalf("counters diverge: file-backed %d/%d vs in-memory %d/%d",
				s.Lookups(), s.Misses(), memLookups, memMisses)
		}
		if s.Rebuilds() != 0 {
			t.Fatalf("clean freeze should not rebuild, got %d", s.Rebuilds())
		}

		// Batch path resolves through the same backend.
		keys := []string{"key-0000", "absent", "key-0199"}
		vals, err := s.BatchLookup(keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals[0]) == 0 || vals[1] != nil || len(vals[2]) == 0 {
			t.Fatalf("BatchLookup = %v", vals)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFreezeTwiceFails(t *testing.T) {
	s, _ := loadStore(t, 4)
	dir := t.TempDir()
	if err := s.Freeze(dir); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Freeze(dir); err == nil {
		t.Fatal("second Freeze should fail")
	}
}

func TestPutAfterFreezeRebuildsPartition(t *testing.T) {
	s, oracle := loadStore(t, 4)
	if err := s.Freeze(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("fresh-key", "fresh-val")
	oracle["fresh-key"] = []string{"fresh-val"}
	assertOracle(t, s, oracle)
	if s.Rebuilds() == 0 {
		t.Fatal("stale partition should have been rebuilt")
	}
	// Probe sees the new key too (and rebuilds at most once more).
	found, n, err := s.Probe("fresh-key")
	if err != nil || !found || n == 0 {
		t.Fatalf("Probe(fresh-key) = %v, %d, %v", found, n, err)
	}
}

func TestCorruptSnapshotRebuiltOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, oracle := loadStore(t, 4)
	if err := s.Freeze(dir); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	names, err := filepath.Glob(filepath.Join(dir, "*.fmc1"))
	if err != nil || len(names) != 4 {
		t.Fatalf("partition files: %v, %v", names, err)
	}
	// Corrupt one partition and delete another: both are cache loss, both
	// must come back from the resident trees with no wrong answers.
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(names[1]); err != nil {
		t.Fatal(err)
	}

	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if got := s.Rebuilds(); got != 2 {
		t.Fatalf("rebuilds = %d, want 2", got)
	}
	assertOracle(t, s, oracle)
}

func TestCloseReleasesMappingsAndFallsBackToMemory(t *testing.T) {
	base := fstore.OpenHandles()
	s, oracle := loadStore(t, 8)
	if err := s.Freeze(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if fstore.OpenHandles() != base+8 {
		t.Fatalf("open handles = %d, want %d", fstore.OpenHandles(), base+8)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fstore.OpenHandles() != base {
		t.Fatalf("handles leaked: %d vs %d", fstore.OpenHandles(), base)
	}
	if s.FileBacked() {
		t.Fatal("store should be back to in-memory serving")
	}
	assertOracle(t, s, oracle)
	if err := s.Close(); err != nil {
		t.Fatal("closing an unfrozen store must be a no-op, got", err)
	}
}

func TestProbeIndexOnly(t *testing.T) {
	s, _ := loadStore(t, 4)
	memFound, memBytes, err := s.Probe("key-0001")
	if err != nil || !memFound {
		t.Fatalf("in-memory Probe: %v, %v", memFound, err)
	}
	if err := s.Freeze(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	found, bytes, err := s.Probe("key-0001")
	if err != nil || !found {
		t.Fatalf("file-backed Probe: %v, %v", found, err)
	}
	if bytes == 0 || memBytes == 0 {
		t.Fatal("probe should report value bytes")
	}
	if found, bytes, err := s.Probe("absent"); err != nil || found || bytes != 0 {
		t.Fatalf("absent Probe = %v, %d, %v", found, bytes, err)
	}
}

// TestModelRandomOpSequences drives random Put/Lookup/Freeze/Reopen/Close
// sequences against a plain map oracle: at every step the store answers
// exactly what the oracle holds, whichever backend is live.
func TestModelRandomOpSequences(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := NewHash(cluster(), fmt.Sprintf("model-%d", seed), 1+rng.Intn(8), 3, 0)
			oracle := make(map[string][]string)
			frozen := false
			dir := t.TempDir()
			key := func() string { return fmt.Sprintf("k%03d", rng.Intn(100)) }
			for op := 0; op < 600; op++ {
				switch r := rng.Intn(10); {
				case r < 4: // Put
					k, v := key(), fmt.Sprintf("v%d", op)
					s.Put(k, v)
					oracle[k] = append(oracle[k], v)
				case r < 8: // Lookup
					k := key()
					got, err := s.Lookup(k)
					if err != nil {
						t.Fatalf("op %d Lookup(%q): %v", op, k, err)
					}
					want := oracle[k]
					if len(got) != len(want) {
						t.Fatalf("op %d Lookup(%q) = %d values, want %d", op, k, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("op %d Lookup(%q)[%d] = %q, want %q", op, k, i, got[i], want[i])
						}
					}
				case r < 9: // flip the backend
					if frozen {
						if err := s.Close(); err != nil {
							t.Fatalf("op %d Close: %v", op, err)
						}
						frozen = false
					} else {
						if err := s.Freeze(dir); err != nil {
							t.Fatalf("op %d Freeze: %v", op, err)
						}
						frozen = true
					}
				default: // Reopen (restart) when frozen
					if frozen {
						if err := s.Reopen(); err != nil {
							t.Fatalf("op %d Reopen: %v", op, err)
						}
					}
				}
			}
			if frozen {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
