package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"efind/internal/fstore"
	"efind/internal/index"
)

// Freeze snapshots every partition's B+tree into an fstore file under
// dir and flips the store to file-backed serving: lookups binary-search
// the mapped slot section and materialize values from the data section,
// so misses never touch value pages. The B+trees stay resident as the
// source of truth — the snapshots are rebuildable caches in the FMC1
// sense, and a corrupt snapshot (detected by checksum or decode) is
// rebuilt transparently instead of ever answering wrong data.
//
// Freeze after bulk loading; a Put after Freeze marks the key's
// partition stale, and the next lookup on it rebuilds the snapshot.
func (s *Store) Freeze(dir string) error {
	return s.FreezeOpts(dir, fstore.Options{})
}

// FreezeOpts is Freeze with explicit snapshot open options (tests force
// the NoMmap fallback through it).
func (s *Store) FreezeOpts(dir string, opts fstore.Options) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.openOpts = opts
	if s.snaps != nil {
		return fmt.Errorf("kvstore: %s is already file-backed", s.name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	snaps := make([]*fstore.Snapshot, len(s.parts))
	for p := range s.parts {
		snap, err := s.writePartition(dir, p)
		if err != nil {
			for _, sn := range snaps[:p] {
				if sn != nil {
					_ = sn.Close()
				}
			}
			return err
		}
		snaps[p] = snap
	}
	s.dir = dir
	s.snaps = snaps
	s.stale = make([]bool, len(s.parts))
	return nil
}

// writePartition renders partition p's tree into its snapshot file and
// opens it. Caller holds the write lock.
func (s *Store) writePartition(dir string, p int) (*fstore.Snapshot, error) {
	b := fstore.NewBuilder()
	s.generation++
	gen := s.generation
	s.parts[p].Ascend(func(k string, v interface{}) bool {
		b.Add(k, gen, v.([]string)...)
		return true
	})
	path := s.partitionPath(dir, p)
	if err := b.WriteFile(path); err != nil {
		return nil, err
	}
	snap, err := fstore.Open(path, s.openOpts)
	if err != nil {
		return nil, fmt.Errorf("kvstore: reopening just-written partition %d of %s: %w", p, s.name, err)
	}
	return snap, nil
}

// partitionPath names partition p's snapshot file. Store names flow from
// user-facing job and index names, so they are sanitized for the
// filesystem and disambiguated by a name hash.
func (s *Store) partitionPath(dir string, p int) string {
	clean := make([]byte, 0, len(s.name))
	for i := 0; i < len(s.name); i++ {
		c := s.name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%08x-p%04d.fmc1", clean, hashPartition(s.name, 1<<31), p))
}

// FileBacked reports whether lookups are served from fstore snapshots.
func (s *Store) FileBacked() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snaps != nil
}

// Rebuilds returns how many partition snapshots were rebuilt after
// corruption was detected or a post-freeze Put staled them.
func (s *Store) Rebuilds() int64 { return s.rebuilds.Load() }

// Reopen drops and re-establishes every partition mapping, as a process
// restart would. Partitions whose snapshot files fail validation are
// rebuilt from the in-memory trees; only I/O errors (the directory
// itself is gone) surface.
func (s *Store) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snaps == nil {
		return fmt.Errorf("kvstore: %s is not file-backed", s.name)
	}
	// On any error, fall back to in-memory serving and release every
	// mapping: a half-reopened snaps slice would mix live, closed, and
	// stale handles — lookups would touch a closed mapping and the rest
	// would leak against OpenHandles(). The trees are the source of
	// truth, so dropping file-backed mode loses nothing.
	fail := func(err error) error {
		for _, snap := range s.snaps {
			_ = snap.Close() // idempotent; the failed partition is already closed
		}
		s.snaps = nil
		s.stale = nil
		return err
	}
	for p, snap := range s.snaps {
		if err := snap.Close(); err != nil {
			return fail(err)
		}
		reopened, err := fstore.Open(snap.Path(), s.openOpts)
		if err == nil {
			s.snaps[p] = reopened
			continue
		}
		if !errors.Is(err, fstore.ErrCorrupt) && !os.IsNotExist(err) {
			return fail(err)
		}
		rebuilt, err := s.writePartition(s.dir, p)
		if err != nil {
			return fail(err)
		}
		s.rebuilds.Add(1)
		s.snaps[p] = rebuilt
		s.stale[p] = false
	}
	return nil
}

// Close releases every partition mapping and returns the store to
// in-memory serving (the trees were the source of truth all along).
// Closing a store that was never frozen is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snaps == nil {
		return nil
	}
	var firstErr error
	for _, snap := range s.snaps {
		if err := snap.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.snaps = nil
	s.stale = nil
	return firstErr
}

// get resolves one key against the active backend. File-backed misses
// touch only the slot section; a corrupt or stale snapshot is rebuilt
// under the write lock and the lookup retried against the fresh file.
func (s *Store) get(key string) ([]string, bool, error) {
	p := s.scheme.Fn(key)
	s.mu.RLock()
	if s.snaps == nil {
		v, ok := s.parts[p].Get(key)
		s.mu.RUnlock()
		if !ok {
			return nil, false, nil
		}
		return v.([]string), true, nil
	}
	snap, stale := s.snaps[p], s.stale[p]
	s.mu.RUnlock()
	if !stale {
		vals, ok, err := snap.Lookup(key)
		if err == nil {
			return vals, ok, nil
		}
		if !errors.Is(err, fstore.ErrCorrupt) {
			return nil, false, err
		}
	}
	snap, err := s.rebuildPartition(p, snap)
	if err != nil {
		return nil, false, err
	}
	vals, ok, err := snap.Lookup(key)
	return vals, ok, err
}

// rebuildPartition replaces partition p's snapshot with a fresh one
// built from its tree. old identifies the snapshot the caller found
// wanting, so concurrent detectors rebuild once.
func (s *Store) rebuildPartition(p int, old *fstore.Snapshot) (*fstore.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snaps == nil {
		return nil, fmt.Errorf("kvstore: %s closed during rebuild", s.name)
	}
	if s.snaps[p] != old {
		return s.snaps[p], nil // somebody else already rebuilt it
	}
	if err := old.Close(); err != nil {
		return nil, err
	}
	rebuilt, err := s.writePartition(s.dir, p)
	if err != nil {
		return nil, err
	}
	s.rebuilds.Add(1)
	s.snaps[p] = rebuilt
	s.stale[p] = false
	return rebuilt, nil
}

// Probe implements index.Prober: key presence and result size without
// materializing values. File-backed, it reads only the mapped slot
// section (index-only filtering — the point of the FMC1 layout);
// in-memory it consults the tree.
func (s *Store) Probe(key string) (bool, int, error) {
	p := s.scheme.Fn(key)
	s.mu.RLock()
	if s.snaps == nil {
		v, ok := s.parts[p].Get(key)
		s.mu.RUnlock()
		if !ok {
			return false, 0, nil
		}
		n := 0
		for _, val := range v.([]string) {
			n += len(val)
		}
		return true, n, nil
	}
	snap, stale := s.snaps[p], s.stale[p]
	s.mu.RUnlock()
	if stale {
		var err error
		if snap, err = s.rebuildPartition(p, snap); err != nil {
			return false, 0, err
		}
	}
	found, bytes := snap.Probe(key)
	return found, bytes, nil
}

var _ index.Prober = (*Store)(nil)
