package jobsvc

import (
	"fmt"
	"path/filepath"

	"efind/internal/core"
	"efind/internal/wal"
)

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	// Checkpoint is the snapshot file the recovered state came from
	// ("" when no checkpoint had been written before the crash).
	Checkpoint string
	// CheckpointsSkipped lists checkpoints named in the journal that
	// failed to load (corrupt, torn, missing), newest first; recovery
	// fell back past them.
	CheckpointsSkipped []string
	// RecordsReplayed counts the journal records read.
	RecordsReplayed int
	// TornTail reports whether the final segment ended mid-frame — the
	// signature of a crash during an append.
	TornTail bool
	// TornBytesDiscarded is how many trailing bytes the repair dropped.
	TornBytesDiscarded int
	// DecidedJobs is how many submissions the checkpoint already
	// decided; they report cached results without re-running.
	DecidedJobs int
	// Divergences lists re-derived decisions that failed to byte-match
	// their journaled record. Empty on a faithful recovery; non-empty
	// means the environment or trace handed to Recover differs from the
	// original run's.
	Divergences []string
}

// Recover rebuilds a Service from a durability directory: it replays
// the write-ahead journal, restores the newest loadable checkpoint
// (decided job statuses, tenant accounting, slot ledgers, the shared
// cache pool's contents, and adaptive-registry coverage), repairs any
// torn journal tail, and returns a Service ready to Run the same
// submission trace. Checkpoint-decided submissions report their cached
// status (Recovered = true, Result synthesized from the journal — the
// output file itself is not reproduced); the rest re-execute
// deterministically, and every re-derived decision is verified against
// the journaled one, with mismatches collected in the report.
//
// The caller must rebuild the same deterministic environment the
// original run used (cluster, DFS inputs, stores, job confs): the
// service journals scheduling state, not the simulated world. Adaptive
// indexes should be re-attached to Options.Durable.Registry and
// re-materialized (adaptix.Buildable.Materialize) after Recover returns.
func Recover(rt *core.Runtime, tenants []TenantConfig, opts Options) (*Service, *RecoveryReport, error) {
	d := opts.Durable
	if d == nil {
		return nil, nil, fmt.Errorf("jobsvc: Recover requires Options.Durable")
	}
	fs := d.fsOrOS()
	rep := &RecoveryReport{}

	raw, torn, err := wal.Replay(fs, d.Dir)
	if err != nil {
		return nil, nil, err
	}
	rep.TornTail = torn
	rep.RecordsReplayed = len(raw)
	recs := make([]svcRec, 0, len(raw))
	for i, r := range raw {
		dr, err := decodeRec(r.Payload)
		if err != nil {
			return nil, nil, fmt.Errorf("jobsvc: journal record %d (%s): %w", i, r.Segment, err)
		}
		recs = append(recs, dr)
	}

	// Newest loadable checkpoint wins; corrupt or missing ones are
	// skipped (their records were durable, their files were not — e.g.
	// an injected rename failure after the journal append).
	var ck *checkpoint
	maxCkptSeq := 0
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].kind != recCkpt {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(recs[i].file, "ckpt-%d.fst", &seq); err == nil && seq > maxCkptSeq {
			maxCkptSeq = seq
		}
		if ck != nil {
			continue
		}
		c, err := loadCheckpoint(filepath.Join(d.Dir, recs[i].file), d.Registry)
		if err != nil {
			rep.CheckpointsSkipped = append(rep.CheckpointsSkipped, fmt.Sprintf("%s: %v", recs[i].file, err))
			continue
		}
		ck = c
	}

	// Truncate the torn tail before the new segment opens, so the next
	// replay sees a clean record stream.
	discarded, err := wal.Repair(fs, d.Dir)
	if err != nil {
		return nil, nil, err
	}
	rep.TornBytesDiscarded = discarded

	s, err := newService(rt, tenants, opts)
	if err != nil {
		return nil, nil, err
	}
	jl, err := openJournal(d)
	if err != nil {
		return nil, nil, err
	}
	jl.report = rep
	jl.ckptSeq = maxCkptSeq
	jl.installExpectations(recs)

	if ck != nil {
		rep.Checkpoint = filepath.Base(ck.path)
		for idx, st := range ck.decided {
			st.Recovered = true
			jl.decided[idx] = st
		}
		rep.DecidedJobs = len(jl.decided)
		for name, tc := range ck.tenants {
			t, ok := s.tenants[name]
			if !ok {
				return nil, nil, fmt.Errorf("jobsvc: checkpoint %s names tenant %q the service does not configure", ck.path, name)
			}
			t.seq = tc.seq
			t.spent = tc.spent
		}
		restoreLedger := func(key string, led *slotLedger) error {
			l, ok := ck.ledgers[key]
			if !ok {
				return fmt.Errorf("jobsvc: checkpoint %s is missing ledger %q", ck.path, key)
			}
			if l.perNode != led.perNode || len(l.freeAt) != len(led.freeAt) {
				return fmt.Errorf("jobsvc: checkpoint %s ledger %q shaped %dx%d, cluster has %dx%d — recover against the same cluster config",
					ck.path, key, len(l.freeAt)/maxInt(l.perNode, 1), l.perNode, len(led.freeAt)/maxInt(led.perNode, 1), led.perNode)
			}
			copy(led.freeAt, l.freeAt)
			return nil
		}
		if err := restoreLedger(ckptLedMap, s.mapLedger); err != nil {
			return nil, nil, err
		}
		if err := restoreLedger(ckptLedReduce, s.reduceLedger); err != nil {
			return nil, nil, err
		}
		if len(ck.pool) > 0 {
			if opts.SharedCache == nil {
				return nil, nil, fmt.Errorf("jobsvc: checkpoint %s holds shared-pool state but Options.SharedCache is nil", ck.path)
			}
			opts.SharedCache.Restore(ck.pool)
		}
	}

	s.jl = jl
	jl.appendHello(tenantHash(tenants))
	return s, rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
