package jobsvc

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/ixclient"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// env is a small deterministic world: a 6-node cluster, a loaded KV
// index, and an input whose lookup keys repeat within and across chunks.
// Building two envs with the same parameters yields bit-identical
// worlds, which the identity tests rely on.
type env struct {
	cluster *sim.Cluster
	fs      *dfs.FS
	rt      *core.Runtime
	store   *kvstore.Store
	input   *dfs.File
}

func newEnv(tb testing.TB, parallelism int) *env {
	tb.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 6
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 2
	cfg.TaskStartup = 0.01
	cfg.Parallelism = parallelism
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 2 << 10
	engine := mapreduce.New(cluster, fs)
	rt := core.NewRuntime(engine)

	store := kvstore.NewHash(cluster, "kv", 16, 3, 0.0008)
	for i := 0; i < 40; i++ {
		store.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("value-for-%04d", i))
	}
	recs := make([]dfs.Record, 600)
	for i := range recs {
		ik := fmt.Sprintf("ik%04d", i%40)
		recs[i] = dfs.Record{Key: fmt.Sprintf("r%05d", i), Value: "payload " + ik}
	}
	input, err := fs.Create("input", recs)
	if err != nil {
		tb.Fatal(err)
	}
	return &env{cluster: cluster, fs: fs, rt: rt, store: store, input: input}
}

func (e *env) lookupOp(name string) *core.Operator {
	op := core.NewOperator(name,
		func(in core.Pair) core.PreResult {
			fields := strings.Fields(in.Value)
			return core.PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			vals := "none"
			if len(results) > 0 && len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				vals = strings.Join(results[0][0].Values, ",")
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + " => " + vals})
		})
	op.AddIndex(e.store)
	return op
}

func (e *env) conf(name string, mode core.Mode) *core.IndexJobConf {
	conf := &core.IndexJobConf{
		Name:      name,
		Input:     e.input,
		Mode:      mode,
		NumReduce: 4,
		Mapper:    func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) { emit(in) },
		Reducer:   mapreduce.IdentityReduce,
	}
	conf.AddBodyIndexOperator(e.lookupOp("op-" + name))
	return conf
}

func sortedOutput(f *dfs.File) []string {
	var out []string
	for _, r := range f.All() {
		out = append(out, r.Key+" :: "+r.Value)
	}
	sort.Strings(out)
	return out
}

func TestSingleJobThroughServiceMatchesOneShot(t *testing.T) {
	// A job running alone under the service must match the one-shot
	// Submit path bit for bit: same placement (full-cluster lease), same
	// counters, same output, same virtual time.
	oneShot := newEnv(t, 1)
	res, err := oneShot.rt.Submit(oneShot.conf("ident", core.ModeCache))
	if err != nil {
		t.Fatal(err)
	}

	svcEnv := newEnv(t, 1)
	svc, err := New(svcEnv.rt, []TenantConfig{{Name: "solo"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run([]Submission{{Tenant: "solo", At: 0, Conf: svcEnv.conf("ident", core.ModeCache)}})
	st := statuses[0]
	if st.State != JobCompleted {
		t.Fatalf("service job state = %v (err %v)", st.State, st.Err)
	}
	if st.Result.VTime != res.VTime {
		t.Fatalf("VTime diverges: one-shot %g, service %g", res.VTime, st.Result.VTime)
	}
	if !reflect.DeepEqual(st.Result.Counters, res.Counters) {
		t.Fatalf("counters diverge between one-shot and lone service job:\none-shot: %v\nservice:  %v",
			res.Counters, st.Result.Counters)
	}
	if !reflect.DeepEqual(sortedOutput(st.Result.Output), sortedOutput(res.Output)) {
		t.Fatal("outputs diverge between one-shot and lone service job")
	}
	if st.Finished != st.Result.VTime {
		t.Fatalf("lone job should finish at its own VTime: finished %g, vtime %g", st.Finished, st.Result.VTime)
	}
}

// smokeTrace is the 2-tenant × 4-concurrent-job admission trace the CI
// smoke runs under both executors.
func smokeTrace(e *env) ([]TenantConfig, []Submission) {
	tenants := []TenantConfig{
		{Name: "alpha", Weight: 2, MaxInFlight: 2, QueueCap: 4},
		{Name: "beta", Weight: 1, MaxInFlight: 2, QueueCap: 4},
	}
	subs := []Submission{
		{Tenant: "alpha", At: 0, Conf: e.conf("a1", core.ModeCache)},
		{Tenant: "beta", At: 0, Conf: e.conf("b1", core.ModeBaseline)},
		{Tenant: "alpha", At: 0.5, Conf: e.conf("a2", core.ModeBaseline)},
		{Tenant: "beta", At: 0.5, Conf: e.conf("b2", core.ModeCache)},
		{Tenant: "alpha", At: 1.0, Conf: e.conf("a3", core.ModeDynamic)},
		{Tenant: "beta", At: 1.5, Conf: e.conf("b3", core.ModeCache)},
		{Tenant: "alpha", At: 2.0, Conf: e.conf("a4", core.ModeCache)},
		{Tenant: "beta", At: 2.5, Conf: e.conf("b4", core.ModeBaseline)},
	}
	return tenants, subs
}

func runSmoke(t *testing.T, parallelism int) []JobStatus {
	t.Helper()
	e := newEnv(t, parallelism)
	tenants, subs := smokeTrace(e)
	svc, err := New(e.rt, tenants, Options{SharedCache: ixclient.NewPool(0)})
	if err != nil {
		t.Fatal(err)
	}
	return svc.Run(subs)
}

func TestMultiTenantSmokeSerialParallelIdentity(t *testing.T) {
	serial := runSmoke(t, 1)
	parallel := runSmoke(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("status counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.State != p.State || s.ID != p.ID {
			t.Fatalf("job %d state/id diverge: %v/%q vs %v/%q", i, s.State, s.ID, p.State, p.ID)
		}
		if s.State != JobCompleted {
			t.Fatalf("smoke job %d (%s) not completed: %v (err %v)", i, s.ID, s.State, s.Err)
		}
		if s.Admitted != p.Admitted || s.Finished != p.Finished {
			t.Fatalf("job %d (%s) virtual times diverge: [%g,%g] vs [%g,%g]",
				i, s.ID, s.Admitted, s.Finished, p.Admitted, p.Finished)
		}
		if s.Result.VTime != p.Result.VTime {
			t.Fatalf("job %d (%s) VTime diverges: %g vs %g", i, s.ID, s.Result.VTime, p.Result.VTime)
		}
		if !reflect.DeepEqual(s.Result.Counters, p.Result.Counters) {
			t.Fatalf("job %d (%s) counters diverge between serial and parallel executors", i, s.ID)
		}
		if !reflect.DeepEqual(sortedOutput(s.Result.Output), sortedOutput(p.Result.Output)) {
			t.Fatalf("job %d (%s) outputs diverge between serial and parallel executors", i, s.ID)
		}
	}
}

func TestAdmissionQueueAndCap(t *testing.T) {
	e := newEnv(t, 0)
	svc, err := New(e.rt, []TenantConfig{{Name: "t", MaxInFlight: 1, QueueCap: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run([]Submission{
		{Tenant: "t", At: 0, Conf: e.conf("j1", core.ModeBaseline)},
		{Tenant: "t", At: 0, Conf: e.conf("j2", core.ModeBaseline)},
		{Tenant: "t", At: 0, Conf: e.conf("j3", core.ModeBaseline)},
	})
	if statuses[0].State != JobCompleted {
		t.Fatalf("j1 = %v (err %v)", statuses[0].State, statuses[0].Err)
	}
	if statuses[1].State != JobCompleted {
		t.Fatalf("j2 should queue then complete, got %v (reason %q)", statuses[1].State, statuses[1].Reason)
	}
	if statuses[1].Admitted != statuses[0].Finished {
		t.Fatalf("queued j2 should admit when j1 finishes: admitted %g, j1 finished %g",
			statuses[1].Admitted, statuses[0].Finished)
	}
	if statuses[2].State != JobRejected || !strings.Contains(statuses[2].Reason, "queue full") {
		t.Fatalf("j3 should be rejected for a full queue, got %v (reason %q)", statuses[2].State, statuses[2].Reason)
	}
}

func TestAdmissionBudget(t *testing.T) {
	e := newEnv(t, 0)
	// Any completed lookup job charges well over a nanosecond of serve
	// time, so the second and third submissions find the budget spent.
	svc, err := New(e.rt, []TenantConfig{{Name: "t", MaxInFlight: 1, Budget: 1e-9}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run([]Submission{
		{Tenant: "t", At: 0, Conf: e.conf("j1", core.ModeBaseline)},
		{Tenant: "t", At: 0, Conf: e.conf("j2", core.ModeBaseline)},
		{Tenant: "t", At: 1e6, Conf: e.conf("j3", core.ModeBaseline)},
	})
	if statuses[0].State != JobCompleted || statuses[0].ServeSeconds <= 1e-9 {
		t.Fatalf("j1 = %v, serve %g", statuses[0].State, statuses[0].ServeSeconds)
	}
	for _, i := range []int{1, 2} {
		if statuses[i].State != JobRejected || !strings.Contains(statuses[i].Reason, "budget") {
			t.Fatalf("j%d should be rejected over budget, got %v (reason %q)",
				i+1, statuses[i].State, statuses[i].Reason)
		}
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	e := newEnv(t, 0)
	svc, err := New(e.rt, []TenantConfig{{Name: "t"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run([]Submission{{Tenant: "nobody", At: 0, Conf: e.conf("j", core.ModeBaseline)}})
	if statuses[0].State != JobRejected || !strings.Contains(statuses[0].Reason, "unknown tenant") {
		t.Fatalf("got %v (reason %q)", statuses[0].State, statuses[0].Reason)
	}
}

func TestFairSharingOverlapsJobs(t *testing.T) {
	// Two tenants submitting at the same instant must run overlapped on
	// partial leases — each strictly slower than running alone, but
	// both finishing before two back-to-back lone runs would.
	lone := newEnv(t, 0)
	loneRes, err := lone.rt.Submit(lone.conf("solo", core.ModeBaseline))
	if err != nil {
		t.Fatal(err)
	}

	e := newEnv(t, 0)
	svc, err := New(e.rt, []TenantConfig{
		{Name: "a", MaxInFlight: 1},
		{Name: "b", MaxInFlight: 1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run([]Submission{
		{Tenant: "a", At: 0, Conf: e.conf("solo", core.ModeBaseline)},
		{Tenant: "b", At: 0, Conf: e.conf("solo", core.ModeBaseline)},
	})
	for i, st := range statuses {
		if st.State != JobCompleted {
			t.Fatalf("job %d = %v (err %v)", i, st.State, st.Err)
		}
		if st.Makespan() <= loneRes.VTime {
			t.Fatalf("job %d shares the cluster, so its makespan %g should exceed the lone %g",
				i, st.Makespan(), loneRes.VTime)
		}
	}
	latest := statuses[0].Finished
	if statuses[1].Finished > latest {
		latest = statuses[1].Finished
	}
	if latest >= 2*loneRes.VTime {
		t.Fatalf("fair sharing should beat serial execution: both done at %g, serial pair needs %g",
			latest, 2*loneRes.VTime)
	}
}

func TestSharedCacheUpliftWithIsolatedShadowR(t *testing.T) {
	// Three identical cache-strategy jobs in sequence. With the pool,
	// later jobs serve lookups from caches the first job warmed; every
	// job's shadow probe/miss counters (the optimizer's R) still match
	// the first job's — i.e. the value each would measure in isolation.
	opName := func(st JobStatus) string { return "op-" + st.Name }
	run := func(pool *ixclient.Pool) []JobStatus {
		e := newEnv(t, 0)
		svc, err := New(e.rt, []TenantConfig{{Name: "t", MaxInFlight: 1}}, Options{SharedCache: pool})
		if err != nil {
			t.Fatal(err)
		}
		return svc.Run([]Submission{
			{Tenant: "t", At: 0, Conf: e.conf("q", core.ModeCache)},
			{Tenant: "t", At: 0, Conf: e.conf("q", core.ModeCache)},
			{Tenant: "t", At: 0, Conf: e.conf("q", core.ModeCache)},
		})
	}

	pool := ixclient.NewPool(0)
	pooled := run(pool)
	cold := run(nil)

	for i := 1; i < 3; i++ {
		pl := pooled[i].Result.Counters[ixclient.CtrLookups(opName(pooled[i]), "kv")]
		cl := cold[i].Result.Counters[ixclient.CtrLookups(opName(cold[i]), "kv")]
		if pl >= cl {
			t.Fatalf("job %d: pooled run should need fewer real lookups than cold (%d vs %d)", i, pl, cl)
		}
		for _, ctr := range []string{
			ixclient.CtrProbes(opName(pooled[i]), "kv"),
			ixclient.CtrMisses(opName(pooled[i]), "kv"),
		} {
			if got, want := pooled[i].Result.Counters[ctr], pooled[0].Result.Counters[ctr]; got != want {
				t.Fatalf("job %d counter %s = %d, want %d — per-job shadow R must match the isolated value",
					i, ctr, got, want)
			}
		}
	}
	if pool.HitRatio() <= 0 {
		t.Fatal("pool should have served cross-job hits")
	}
	if hits, _ := pool.Stats(); hits == 0 {
		t.Fatal("pool hits = 0")
	}
	// The uplift should also show in virtual time: warm-cache jobs avoid
	// serve charges, so later pooled jobs finish faster than cold ones.
	if pooled[2].Makespan() >= cold[2].Makespan() {
		t.Fatalf("pooled third job should be faster: %g vs cold %g", pooled[2].Makespan(), cold[2].Makespan())
	}
}

func TestServiceDeterministicAcrossRuns(t *testing.T) {
	a := runSmoke(t, 0)
	b := runSmoke(t, 0)
	for i := range a {
		if a[i].Finished != b[i].Finished || a[i].ServeSeconds != b[i].ServeSeconds {
			t.Fatalf("job %d diverges across identical service runs: finished %g/%g serve %g/%g",
				i, a[i].Finished, b[i].Finished, a[i].ServeSeconds, b[i].ServeSeconds)
		}
	}
}
