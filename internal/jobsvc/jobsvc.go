// Package jobsvc turns the one-shot EFind runtime into a long-running,
// multi-tenant index-access service: a deterministic scheduler that
// admits streams of concurrent jobs from multiple tenants onto one
// shared simulated cluster. It layers three service concerns on top of
// the per-job engine:
//
//   - admission control — per-tenant in-flight limits, bounded waiting
//     queues, and cost budgets charged from the jobs' index serve time;
//   - weighted fair slot sharing — concurrently running jobs receive
//     phase-granular slot leases (sim.Lease) sized by tenant weight, so
//     one tenant's scan cannot starve another's lookups; a job running
//     alone is granted the full cluster and places tasks exactly like
//     the one-shot path;
//   - cache persistence — an optional cross-job ixclient.Pool carries
//     warm per-machine lookup caches from job to job while each job's
//     optimizer still observes its own isolated miss ratio R.
//
// Determinism contract: given an admission trace (tenants, submission
// times, job configs) and the seeds inside those configs, the service
// produces bit-identical per-job results and counters whether the
// engine's serial or parallel executor runs underneath, and across
// repeated runs. The scheduler achieves this by ordering every decision
// on virtual time: job goroutines are unblocked strictly one at a time,
// and the next decision is always the minimum-virtual-time event among
// pending admissions and grantable phase requests (ties broken by
// submission order). Phase leases are non-preemptive — a granted phase
// holds its slots for its whole makespan — so sharing is phase-granular,
// like a Hadoop FairScheduler operating at wave boundaries.
package jobsvc

import (
	"fmt"
	"sort"
	"strings"

	"efind/internal/chaos"
	"efind/internal/core"
	"efind/internal/ixclient"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// TenantConfig declares one tenant of the service.
type TenantConfig struct {
	// Name identifies the tenant; it prefixes the trace namespace of
	// every job the tenant runs.
	Name string
	// Weight is the tenant's fair-share weight (0 = 1): with tenants A
	// and B active at weights 2 and 1, A's jobs share 2/3 of the slots.
	Weight int
	// MaxInFlight bounds the tenant's concurrently admitted jobs
	// (0 = 1); submissions beyond it wait in the tenant's queue.
	MaxInFlight int
	// QueueCap bounds the tenant's waiting queue (0 = unbounded);
	// submissions that find the queue full are rejected.
	QueueCap int
	// Budget is the tenant's total allowance of charged index serve
	// time, in virtual seconds (0 = unlimited). A submission arriving
	// or dequeuing after the budget is spent is rejected.
	Budget float64
}

func (t TenantConfig) weight() int {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

func (t TenantConfig) maxInFlight() int {
	if t.MaxInFlight <= 0 {
		return 1
	}
	return t.MaxInFlight
}

// Submission is one job arriving at the service.
type Submission struct {
	// Tenant names the submitting tenant (must be configured).
	Tenant string
	// At is the arrival time on the service's virtual clock.
	At float64
	// Conf is the job to run. The service shallow-copies it to attach
	// the shared cache pool and service-wide chaos plan, so one conf
	// value may be reused across submissions.
	Conf *core.IndexJobConf
}

// JobState is the terminal state of one submission.
type JobState int

// Job states.
const (
	// JobRejected: admission control refused the job (see Reason).
	JobRejected JobState = iota
	// JobCompleted: the job ran and produced a result.
	JobCompleted
	// JobFailed: the job ran and returned an error.
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobRejected:
		return "rejected"
	case JobCompleted:
		return "completed"
	case JobFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// JobStatus is the service's record of one submission, returned in
// submission order.
type JobStatus struct {
	// Tenant and Name identify the submission; ID is the trace
	// namespace "tenant/name#k" assigned at admission ("" if rejected).
	Tenant, Name, ID string
	// State is the terminal state.
	State JobState
	// Reason explains a rejection.
	Reason string
	// Submitted, Admitted, and Finished are virtual times; Admitted -
	// Submitted is the admission queue wait.
	Submitted, Admitted, Finished float64
	// Result and Err are the job's outcome (nil/nil when rejected).
	Result *core.JobResult
	Err    error
	// ServeSeconds is the index serve time the job charged, in virtual
	// seconds — the quantity deducted from the tenant's budget.
	ServeSeconds float64
	// OutputFP fingerprints the job's sorted output records (0 when the
	// job produced no output or the service is not durable). It is what
	// a recovered coordinator compares instead of the output file.
	OutputFP uint64
	// Recovered marks a status restored from a durable checkpoint: the
	// job did not re-run; Result carries the journaled scalars and
	// counters but no Output file.
	Recovered bool
}

// Makespan returns the job's admitted-to-finished virtual time.
func (st *JobStatus) Makespan() float64 { return st.Finished - st.Admitted }

// Options configures service-wide behaviour.
type Options struct {
	// SharedCache, when set, attaches every job to the cross-job cache
	// pool: per-(index, node) lookup caches persist across jobs, so a
	// tenant's repeated query family finds them warm.
	SharedCache *ixclient.Pool
	// Chaos, when set, is attached to every submission that carries no
	// plan of its own. Its windows are absolute on the service clock,
	// which is what makes cross-tenant experiments meaningful: an index
	// outage window hits whichever tenants' phases overlap it.
	Chaos *chaos.Plan
	// Durable, when set, journals every scheduling decision to a
	// write-ahead log and folds decided state into checkpoint snapshots
	// at quiescent points, so a crashed coordinator can Recover.
	Durable *Durability
}

// Service is the multi-tenant job service over one runtime. Build it
// with New, then drive it with Run; a Service is single-use.
type Service struct {
	rt      *core.Runtime
	opts    Options
	tenants map[string]*tenant
	order   []*tenant // deterministic iteration order

	mapLedger    *slotLedger
	reduceLedger *slotLedger

	events  chan event
	pending []event // parked phase requests (evReq events)
	admits  []admit // queued-admission events released by job completions
	active  int     // admitted, unfinished jobs across all tenants

	jobs []*jobState // the Run trace's jobs, in submission order
	jl   *journal    // durability state (nil without Options.Durable)
}

type tenant struct {
	cfg      TenantConfig
	inflight int
	active   int
	queue    []*jobState
	spent    float64
	seq      int
}

type jobState struct {
	idx     int // submission index; statuses are returned in this order
	tenant  *tenant
	sub     Submission
	status  JobStatus
	decided bool // terminal status reached (or restored from a checkpoint)
}

// admit is a deferred admission: a queued job released at virtual time at.
type admit struct {
	at  float64
	job *jobState
}

type evKind int

const (
	evReq evKind = iota
	evEnd
	evDone
)

// event is one message from a job goroutine to the scheduler loop.
type event struct {
	kind evKind
	job  *jobState

	// evReq
	taskKind mapreduce.TaskKind
	tasks    int
	ready    float64
	reply    chan mapreduce.PhaseGrant

	// evEnd
	lease      *sim.Lease
	start, end float64

	// evDone
	res    *core.JobResult
	err    error
	finish float64
}

// New builds a service over the runtime for the given tenants. The
// runtime's catalog (registered statistics) is shared by every job, and
// its engine's cluster provides the slots the service arbitrates. With
// Options.Durable set, the journal directory is created and a fresh
// journal segment opened.
func New(rt *core.Runtime, tenants []TenantConfig, opts Options) (*Service, error) {
	s, err := newService(rt, tenants, opts)
	if err != nil {
		return nil, err
	}
	if opts.Durable != nil {
		jl, err := openJournal(opts.Durable)
		if err != nil {
			return nil, err
		}
		s.jl = jl
		jl.appendHello(tenantHash(tenants))
	}
	return s, nil
}

// newService builds the service without touching durable state; New and
// Recover wrap it.
func newService(rt *core.Runtime, tenants []TenantConfig, opts Options) (*Service, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("jobsvc: at least one tenant required")
	}
	cfg := rt.Engine.Cluster.Config()
	s := &Service{
		rt:           rt,
		opts:         opts,
		tenants:      make(map[string]*tenant, len(tenants)),
		mapLedger:    newSlotLedger(cfg.Nodes, cfg.MapSlotsPerNode),
		reduceLedger: newSlotLedger(cfg.Nodes, cfg.ReduceSlotsPerNode),
		events:       make(chan event),
	}
	for _, tc := range tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("jobsvc: tenant with empty name")
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("jobsvc: duplicate tenant %q", tc.Name)
		}
		t := &tenant{cfg: tc}
		s.tenants[tc.Name] = t
		s.order = append(s.order, t)
	}
	return s, nil
}

// Run executes an admission trace to completion and returns one status
// per submission, in submission order. Submissions may be given in any
// order; the service processes them by (At, position).
func (s *Service) Run(subs []Submission) []JobStatus {
	jobs := make([]*jobState, len(subs))
	for i, sub := range subs {
		jobs[i] = &jobState{idx: i, sub: sub}
		jobs[i].status = JobStatus{Tenant: sub.Tenant, Name: sub.Conf.Name, Submitted: sub.At}
	}
	s.jobs = jobs
	if s.jl != nil {
		s.jl.appendTrace(subsHash(subs), len(subs))
		// Checkpoint-decided submissions report their cached status and
		// never arrive: their effect on tenants, ledgers, pool, and
		// registry was restored wholesale from the checkpoint.
		for idx, st := range s.jl.decided {
			if idx < len(jobs) {
				jobs[idx].status = st
				jobs[idx].decided = true
			}
		}
	}
	arrivals := make([]*jobState, 0, len(jobs))
	for _, j := range jobs {
		if !j.decided {
			arrivals = append(arrivals, j)
		}
	}
	sort.SliceStable(arrivals, func(a, b int) bool { return arrivals[a].sub.At < arrivals[b].sub.At })

	next := 0
	for {
		// Checkpoints happen only at quiescent points: no admitted job
		// in flight, no parked phase, no deferred admission. At such a
		// point every tenant queue is provably empty and all shared soft
		// state (cache pool, registry, ledgers) sits exactly at a serial
		// boundary, so the snapshot is a prefix any deterministic re-run
		// extends bit-identically.
		if s.jl != nil && s.quiescent() && s.jl.newlyDecided >= s.jl.d.every() {
			s.writeCheckpoint()
		}
		// Candidate events, least virtual time first; admissions beat
		// grants on ties (an arriving job changes the active set the
		// grant's fair share is computed from), submission order breaks
		// the rest.
		const (
			pickNone = iota
			pickArrival
			pickAdmit
			pickGrant
		)
		pick, pickAt, pickIdx, pickPos := pickNone, 0.0, 0, 0
		better := func(at float64, class, idx int) bool {
			if pick == pickNone {
				return true
			}
			if at != pickAt {
				return at < pickAt
			}
			admissionA, admissionB := class != pickGrant, pick != pickGrant
			if admissionA != admissionB {
				return admissionA
			}
			return idx < pickIdx
		}
		if next < len(arrivals) {
			j := arrivals[next]
			if better(j.sub.At, pickArrival, j.idx) {
				pick, pickAt, pickIdx = pickArrival, j.sub.At, j.idx
			}
		}
		for i, a := range s.admits {
			if better(a.at, pickAdmit, a.job.idx) {
				pick, pickAt, pickIdx, pickPos = pickAdmit, a.at, a.job.idx, i
			}
		}
		for i, req := range s.pending {
			led := s.ledger(req.taskKind)
			g := led.grantTime(req.ready, s.wantSlots(req.job, led, req.tasks))
			if better(g, pickGrant, req.job.idx) {
				pick, pickAt, pickIdx, pickPos = pickGrant, g, req.job.idx, i
			}
		}

		switch pick {
		case pickNone:
			if s.jl != nil {
				if s.jl.newlyDecided > 0 {
					s.writeCheckpoint()
				}
				s.jl.close()
			}
			return s.statuses(jobs)
		case pickArrival:
			j := arrivals[next]
			next++
			s.arrive(j)
		case pickAdmit:
			a := s.admits[pickPos]
			s.admits = append(s.admits[:pickPos], s.admits[pickPos+1:]...)
			s.start(a.job, a.at)
		case pickGrant:
			req := s.pending[pickPos]
			s.pending = append(s.pending[:pickPos], s.pending[pickPos+1:]...)
			led := s.ledger(req.taskKind)
			want := s.wantSlots(req.job, led, req.tasks)
			start := led.grantTime(req.ready, want)
			if s.jl != nil {
				s.jl.appendGrant(req.job.idx, int(req.taskKind), want, req.ready, start)
			}
			lease := led.take(want)
			req.reply <- mapreduce.PhaseGrant{Lease: lease, Start: start}
			s.drain()
		}
	}
}

// quiescent reports whether the service sits at a global serial point:
// nothing admitted and unfinished, nothing parked, nothing deferred.
func (s *Service) quiescent() bool {
	return s.active == 0 && len(s.pending) == 0 && len(s.admits) == 0
}

// DurableErr returns the first durability failure (journal append or
// checkpoint write), or nil. Durability failures never fail the run —
// the scheduler's decisions stand, they just stop being durable — so
// callers that care must check this after Run.
func (s *Service) DurableErr() error {
	if s.jl == nil {
		return nil
	}
	return s.jl.err
}

// JournalRecords returns how many records this service appended to its
// journal (0 without durability).
func (s *Service) JournalRecords() int {
	if s.jl == nil || s.jl.log == nil {
		return 0
	}
	return s.jl.log.Records()
}

func (s *Service) statuses(jobs []*jobState) []JobStatus {
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status
	}
	return out
}

func (s *Service) ledger(kind mapreduce.TaskKind) *slotLedger {
	if kind == mapreduce.ReduceTask {
		return s.reduceLedger
	}
	return s.mapLedger
}

// wantSlots sizes a phase's lease: the full cluster when the job runs
// alone (preserving one-shot placement identity), otherwise the job's
// weighted fair share — the tenant's weighted fraction of the slots,
// split across the tenant's active jobs, floored at one slot and capped
// by the phase's task count so unusable slots stay grantable to others.
func (s *Service) wantSlots(j *jobState, led *slotLedger, tasks int) int {
	if s.active <= 1 {
		return led.total()
	}
	sumW := 0
	for _, t := range s.order {
		if t.active > 0 {
			sumW += t.cfg.weight()
		}
	}
	t := j.tenant
	share := led.total() * t.cfg.weight() / (sumW * t.active)
	if share < 1 {
		share = 1
	}
	if tasks >= 0 && tasks < share {
		share = tasks
	}
	return share
}

// arrive applies admission control to a freshly arrived submission.
func (s *Service) arrive(j *jobState) {
	t, ok := s.tenants[j.sub.Tenant]
	if !ok {
		s.reject(j, fmt.Sprintf("unknown tenant %q", j.sub.Tenant))
		return
	}
	j.tenant = t
	if s.overBudget(t) {
		s.reject(j, fmt.Sprintf("tenant budget exhausted (%.3fs of %.3fs spent)", t.spent, t.cfg.Budget))
		return
	}
	if t.inflight+s.pendingAdmits(t) < t.cfg.maxInFlight() && len(t.queue) == 0 {
		s.start(j, j.sub.At)
		return
	}
	if qcap := t.cfg.QueueCap; qcap > 0 && len(t.queue) >= qcap {
		s.reject(j, fmt.Sprintf("queue full (%d waiting, cap %d)", len(t.queue), qcap))
		return
	}
	t.queue = append(t.queue, j)
}

func (s *Service) overBudget(t *tenant) bool {
	return t.cfg.Budget > 0 && t.spent >= t.cfg.Budget
}

// pendingAdmits counts the tenant's deferred admissions not yet started.
func (s *Service) pendingAdmits(t *tenant) int {
	n := 0
	for _, a := range s.admits {
		if a.job.tenant == t {
			n++
		}
	}
	return n
}

func (s *Service) reject(j *jobState, reason string) {
	j.status.State = JobRejected
	j.status.Reason = reason
	j.decided = true
	if s.jl != nil {
		s.jl.appendReject(j.idx, reason)
		s.jl.newlyDecided++
	}
}

// start admits a job at virtual time at: it runs the submission on a
// service-mode engine run in its own goroutine, then blocks until that
// goroutine parks in its first phase request (or finishes), preserving
// the one-unblocked-goroutine discipline.
func (s *Service) start(j *jobState, at float64) {
	t := j.tenant
	t.inflight++
	t.active++
	s.active++
	t.seq++
	ns := fmt.Sprintf("%s/%s#%d", t.cfg.Name, j.sub.Conf.Name, t.seq)
	j.status.ID = ns
	j.status.Admitted = at

	// Always run on a shallow copy: one conf value may back many
	// submissions, and validation writes defaults into it.
	cc := *j.sub.Conf
	if cc.SharedCache == nil {
		cc.SharedCache = s.opts.SharedCache
	}
	if cc.Chaos == nil {
		cc.Chaos = s.opts.Chaos
	}
	if s.jl != nil {
		// Durable runs pin the retry-jitter ladder: a conf without its
		// own seed gets one derived from (BackoffSalt, submission
		// index), journaled at admission. A recovered run replays the
		// journaled seed — even under a different salt — so its backoff
		// waits are bit-identical to the original's.
		seed := cc.Retry.Seed
		if seed == 0 {
			if js, ok := s.jl.seeds[j.idx]; ok {
				seed = js
			} else {
				seed = chaos.Mix(s.jl.d.BackoffSalt, int64(j.idx)+1)
			}
		}
		cc.Retry.Seed = seed
		s.jl.appendAdmit(j.idx, t.seq, ns, at, seed)
	}
	conf := &cc

	run := s.rt.Engine.NewServiceRun(mapreduce.RunConfig{
		Start:     at,
		Arbiter:   &jobArbiter{s: s, j: j},
		Namespace: ns,
	})
	go func() {
		res, err := s.rt.SubmitOn(run, conf)
		s.events <- event{kind: evDone, job: j, res: res, err: err, finish: run.Now()}
	}()
	s.drain()
}

// drain consumes events from the single unparked job goroutine until it
// parks in a phase request or finishes. Phase-end events release leases
// along the way, so by the time the loop selects again every slot has a
// finite free time.
func (s *Service) drain() {
	for {
		ev := <-s.events
		switch ev.kind {
		case evEnd:
			if s.jl != nil {
				s.jl.appendEnd(ev.job.idx, int(ev.taskKind), ev.start, ev.end)
			}
			s.ledger(ev.taskKind).release(ev.lease, ev.end)
		case evReq:
			s.pending = append(s.pending, ev)
			return
		case evDone:
			s.finish(ev)
			return
		}
	}
}

// finish records a completed or failed job, charges its serve time to
// the tenant's budget, and releases the tenant's next queued job (or
// rejects it, if the budget is now spent).
func (s *Service) finish(ev event) {
	j := ev.job
	t := j.tenant
	t.inflight--
	t.active--
	s.active--
	j.status.Finished = ev.finish
	j.status.Result = ev.res
	j.status.Err = ev.err
	if ev.err != nil {
		j.status.State = JobFailed
	} else {
		j.status.State = JobCompleted
	}
	if ev.res != nil {
		j.status.ServeSeconds = serveSeconds(ev.res.Counters)
		t.spent += j.status.ServeSeconds
	}
	if s.jl != nil {
		j.status.OutputFP = outputFingerprint(ev.res)
		j.decided = true
		s.jl.appendDone(j.idx, s.jl.regFingerprint(), &j.status)
		s.jl.newlyDecided++
	}
	for len(t.queue) > 0 && s.overBudget(t) {
		queued := t.queue[0]
		t.queue = t.queue[1:]
		s.reject(queued, fmt.Sprintf("tenant budget exhausted (%.3fs of %.3fs spent)", t.spent, t.cfg.Budget))
	}
	if len(t.queue) > 0 && t.inflight+s.pendingAdmits(t) < t.cfg.maxInFlight() {
		queued := t.queue[0]
		t.queue = t.queue[1:]
		at := ev.finish
		if queued.sub.At > at {
			at = queued.sub.At
		}
		s.admits = append(s.admits, admit{at: at, job: queued})
	}
}

// serveSeconds sums the job's charged index serve time across every
// (operator, index) pair — the budget currency.
func serveSeconds(counters map[string]int64) float64 {
	var ns int64
	for name, v := range counters {
		if strings.HasSuffix(name, ".serve.ns") {
			ns += v
		}
	}
	return float64(ns) / 1e9
}

// jobArbiter adapts one job's phase lifecycle to the scheduler loop: the
// engine's JobRun calls BeginPhase before scheduling each phase (parking
// the job's goroutine until the loop grants slots) and EndPhase when the
// phase's makespan is known.
type jobArbiter struct {
	s *Service
	j *jobState
}

func (a *jobArbiter) BeginPhase(kind mapreduce.TaskKind, tasks int, ready float64) mapreduce.PhaseGrant {
	reply := make(chan mapreduce.PhaseGrant)
	a.s.events <- event{kind: evReq, job: a.j, taskKind: kind, tasks: tasks, ready: ready, reply: reply}
	return <-reply
}

func (a *jobArbiter) EndPhase(kind mapreduce.TaskKind, lease *sim.Lease, start, end float64) {
	a.s.events <- event{kind: evEnd, job: a.j, taskKind: kind, lease: lease, start: start, end: end}
}
