package jobsvc

import (
	"reflect"
	"strings"
	"testing"

	"efind/internal/adaptix"
	"efind/internal/core"
	"efind/internal/index"
	"efind/internal/ixclient"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
)

// Adaptive builds running through the service must not leak into the
// tenants sharing the cluster: a query job running concurrently with a
// builder job still observes its isolated miss ratio R (the per-job
// shadow caches of ixclient.Pool), and the build itself stays
// bit-identical across executors.

// buildEnv extends the service test world with a buildable index over
// the same input: an empty store plus scan fallback whose coverage
// grows as builder jobs commit splits.
type buildEnv struct {
	*env
	reg *adaptix.Registry
	bix *adaptix.Buildable
}

func newBuildEnv(tb testing.TB, parallelism int) *buildEnv {
	tb.Helper()
	e := newEnv(tb, parallelism)
	reg := adaptix.NewRegistry()
	store := kvstore.NewHash(e.cluster, "adx", 8, 3, 0.0002)
	bix, err := adaptix.New(adaptix.Config{
		Name:   "adx",
		Source: e.input,
		Extract: func(_, value string) []index.BuildEntry {
			fields := strings.Fields(value)
			ik := fields[len(fields)-1]
			return []index.BuildEntry{{Key: ik, Value: "v(" + ik + ")"}}
		},
		Store:     store,
		Registry:  reg,
		ScanTime:  0.002,
		BuildTime: 1e-5,
		OfferRate: 0.5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return &buildEnv{env: e, reg: reg, bix: bix}
}

// buildConf is one builder job: a head lookup over the buildable index
// with the build strategy forced, so every run offers half the input's
// splits to the piggyback build stage.
func (e *buildEnv) buildConf(name string) *core.IndexJobConf {
	op := core.NewOperator("op-"+name,
		func(in core.Pair) core.PreResult {
			fields := strings.Fields(in.Value)
			return core.PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			vals := "none"
			if len(results) > 0 && len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				vals = results[0][0].Values[0]
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + " => " + vals})
		})
	op.AddIndex(e.bix)
	conf := &core.IndexJobConf{
		Name:      name,
		Input:     e.input,
		Mode:      core.ModeCustom,
		NumReduce: 4,
		Mapper:    func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) { emit(in) },
		Reducer:   mapreduce.IdentityReduce,
	}
	conf.AddHeadIndexOperator(op)
	conf.ForceStrategy("op-"+name, "adx", core.Build)
	return conf
}

// buildShareTrace interleaves a builder tenant (two forced-build jobs —
// at offer rate 0.5 the second completes coverage) with a query tenant
// running three identical cache-strategy jobs against the pre-built kv
// store. Both tenants arrive at t=0, so query jobs overlap in-flight
// builder jobs on fair-share leases.
func buildShareTrace(e *buildEnv) ([]TenantConfig, []Submission) {
	tenants := []TenantConfig{
		{Name: "bld", MaxInFlight: 1, QueueCap: 4},
		{Name: "qry", MaxInFlight: 1, QueueCap: 4},
	}
	subs := []Submission{
		{Tenant: "bld", At: 0, Conf: e.buildConf("b1")},
		{Tenant: "qry", At: 0, Conf: e.conf("q", core.ModeCache)},
		{Tenant: "bld", At: 0, Conf: e.buildConf("b2")},
		{Tenant: "qry", At: 0, Conf: e.conf("q", core.ModeCache)},
		{Tenant: "qry", At: 0, Conf: e.conf("q", core.ModeCache)},
	}
	return tenants, subs
}

func runBuildShare(t *testing.T, parallelism int, pool *ixclient.Pool) ([]JobStatus, *buildEnv) {
	t.Helper()
	e := newBuildEnv(t, parallelism)
	tenants, subs := buildShareTrace(e)
	svc, err := New(e.rt, tenants, Options{SharedCache: pool})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run(subs)
	for i, st := range statuses {
		if st.State != JobCompleted {
			t.Fatalf("job %d (%s/%s) = %v (reason %q, err %v)", i, st.Tenant, st.Name, st.State, st.Reason, st.Err)
		}
	}
	return statuses, e
}

// TestBuildShareIsolatedMissRatio: the satellite regression — a query
// job running concurrently with builder jobs still observes its
// isolated miss ratio R: attaching the shared cache pool (which the
// builder tenant also churns) changes which lookups are served
// cross-job, but must not move a single shadow probe/miss counter —
// the quantities each job's optimizer measures R from. Answers stay
// the solo run's answers throughout.
func TestBuildShareIsolatedMissRatio(t *testing.T) {
	solo := newEnv(t, 0)
	soloRes, err := solo.rt.Submit(solo.conf("q", core.ModeCache))
	if err != nil {
		t.Fatal(err)
	}

	pooled, pe := runBuildShare(t, 0, ixclient.NewPool(0))
	cold, _ := runBuildShare(t, 0, nil)

	split := func(statuses []JobStatus) (queries, builders []JobStatus) {
		for _, st := range statuses {
			if st.Tenant == "qry" {
				queries = append(queries, st)
			} else {
				builders = append(builders, st)
			}
		}
		return
	}
	pq, pb := split(pooled)
	cq, _ := split(cold)

	// The builders actually built: both jobs committed splits, the
	// registry reached full coverage, and the first query job overlapped
	// the first builder job on fair-share leases.
	var committed int64
	for _, b := range pb {
		committed += b.Result.Counters[core.CtrBuildCommitted]
	}
	if committed == 0 {
		t.Fatal("builder jobs committed no splits; the trace exercises nothing")
	}
	if covered, total := pe.bix.BuildProgress(); covered != total || total == 0 {
		t.Fatalf("coverage %d/%d after both builder jobs", covered, total)
	}
	if pq[0].Admitted >= pb[0].Finished {
		t.Fatalf("first query job (admitted %g) should overlap the first builder job (finished %g)",
			pq[0].Admitted, pb[0].Finished)
	}

	// Shadow isolation: per query job, pooled and unpooled runs measure
	// identical probe/miss counters — R is the isolated value no matter
	// what the pool served meanwhile.
	var pooledLookups, coldLookups int64
	for i := range pq {
		for _, ctr := range []string{
			ixclient.CtrProbes("op-q", "kv"),
			ixclient.CtrMisses("op-q", "kv"),
		} {
			if got, want := pq[i].Result.Counters[ctr], cq[i].Result.Counters[ctr]; got != want {
				t.Fatalf("query %d counter %s = %d pooled vs %d unpooled — shadow R leaked", i, ctr, got, want)
			}
		}
		pooledLookups += pq[i].Result.Counters[ixclient.CtrLookups("op-q", "kv")]
		coldLookups += cq[i].Result.Counters[ixclient.CtrLookups("op-q", "kv")]
		if !reflect.DeepEqual(sortedOutput(pq[i].Result.Output), sortedOutput(soloRes.Output)) {
			t.Fatalf("query %d output diverges from the solo run", i)
		}
	}
	// The pool did real cross-job work while isolation held.
	if pooledLookups >= coldLookups {
		t.Fatalf("shared pool gave no lookup uplift: pooled %d vs cold %d", pooledLookups, coldLookups)
	}
}

// TestBuildShareSerialParallelIdentity: the concurrent build+query
// admission trace is bit-identical between the serial and parallel
// executors — statuses, counters, outputs, and the final registry
// state. Run under -race in CI, this doubles as the soak for the
// build path's concurrency (staging, rollback journals, commit).
func TestBuildShareSerialParallelIdentity(t *testing.T) {
	serial, se := runBuildShare(t, 1, ixclient.NewPool(0))
	parallel, pe := runBuildShare(t, 8, ixclient.NewPool(0))

	if sf, pf := se.reg.Fingerprint(), pe.reg.Fingerprint(); sf != pf {
		t.Fatalf("registry fingerprints diverge:\nserial:   %q\nparallel: %q", sf, pf)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("status counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.State != p.State || s.ID != p.ID {
			t.Fatalf("job %d state/id diverge: %v/%q vs %v/%q", i, s.State, s.ID, p.State, p.ID)
		}
		if s.Admitted != p.Admitted || s.Finished != p.Finished {
			t.Fatalf("job %d (%s) virtual times diverge: [%g,%g] vs [%g,%g]",
				i, s.ID, s.Admitted, s.Finished, p.Admitted, p.Finished)
		}
		if !reflect.DeepEqual(s.Result.Counters, p.Result.Counters) {
			t.Fatalf("job %d (%s) counters diverge between executors:\nserial:   %v\nparallel: %v",
				i, s.ID, s.Result.Counters, p.Result.Counters)
		}
		if !reflect.DeepEqual(sortedOutput(s.Result.Output), sortedOutput(p.Result.Output)) {
			t.Fatalf("job %d (%s) outputs diverge between executors", i, s.ID)
		}
	}
}
