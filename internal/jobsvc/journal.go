package jobsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"
	"sort"

	"efind/internal/adaptix"
	"efind/internal/core"
	"efind/internal/fstore"
	"efind/internal/ixclient"
	"efind/internal/sim"
	"efind/internal/vfs"
	"efind/internal/wal"
)

// Durability configures the service's write-ahead journal and
// checkpointing. With Options.Durable set, the service appends one
// record per scheduling decision — admission, rejection, lease grant,
// phase end, job completion — to a wal.Log under Dir, and at quiescent
// points (no admitted job in flight, no parked phase, no deferred
// admission) folds all decided state into one fstore checkpoint
// snapshot. Recover replays checkpoint + journal tail and resumes.
type Durability struct {
	// Dir holds the journal segments and checkpoint snapshots.
	Dir string
	// FS is the filesystem the journal and checkpoints are written
	// through (nil = the real one). Chaos tests thread a fault-injecting
	// chaos.FaultFS here.
	FS vfs.FS
	// Sync fsyncs every journal append (slower; crash images in tests
	// are byte-constructed, so they do not rely on it).
	Sync bool
	// CheckpointEvery is how many newly decided jobs accumulate before
	// the next quiescent point writes a checkpoint (0 = 1: checkpoint at
	// every eligible quiescent point).
	CheckpointEvery int
	// Registry, when set, has its coverage folded into every checkpoint
	// and restored by Recover — the durable home of adaptive-build
	// commit points. Uncommitted (staged) splits are never persisted,
	// so recovery rolls them back by construction.
	Registry *adaptix.Registry
	// BackoffSalt seeds the per-job retry-jitter ladder: a job whose
	// conf carries Retry.Seed == 0 gets a seed derived from (salt,
	// submission index), journaled at admission. Recover replays the
	// journaled seed even under a different salt, so a recovered run
	// walks the exact backoff ladder of the original.
	BackoffSalt int64
}

func (d *Durability) fsOrOS() vfs.FS {
	if d.FS != nil {
		return d.FS
	}
	return vfs.OS{}
}

func (d *Durability) every() int {
	if d.CheckpointEvery <= 0 {
		return 1
	}
	return d.CheckpointEvery
}

// Journal record kinds.
const (
	recHello  = 1 // service construction: format version + tenant hash
	recTrace  = 2 // Run invocation: submission-trace hash + count
	recAdmit  = 3 // admission: sub index, tenant seq, ID, time, backoff seed
	recReject = 4 // rejection: sub index, reason
	recGrant  = 5 // lease grant: sub index, task kind, want, ready, start
	recEnd    = 6 // phase end: sub index, task kind, start, end
	recDone   = 7 // job completion: the full reduced status
	recCkpt   = 8 // checkpoint: snapshot file name + decided count
)

// journalVersion is the record format version inside recHello.
const journalVersion = 1

// walEnc builds one record payload.
type walEnc struct{ b []byte }

func (e *walEnc) u64(v uint64) {
	var t [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(t[:], v)
	e.b = append(e.b, t[:n]...)
}

func (e *walEnc) i64(v int64)    { e.u64(uint64(v)) }
func (e *walEnc) f64(v float64)  { e.u64(math.Float64bits(v)) }
func (e *walEnc) boolv(v bool)   { e.u64(map[bool]uint64{false: 0, true: 1}[v]) }
func (e *walEnc) str(s string)   { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *walEnc) cmap(m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.i64(m[k])
	}
}

// walDec reads one record payload; the first malformed field poisons it.
type walDec struct {
	b   []byte
	err error
}

func (d *walDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errors.New("jobsvc: journal record truncated")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) i64() int64   { return int64(d.u64()) }
func (d *walDec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *walDec) boolv() bool  { return d.u64() != 0 }
func (d *walDec) str() string {
	l := d.u64()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < l {
		d.err = errors.New("jobsvc: journal string truncated")
		return ""
	}
	s := string(d.b[:l])
	d.b = d.b[l:]
	return s
}

func (d *walDec) cmap() map[string]int64 {
	n := d.u64()
	if d.err != nil || n == 0 {
		return nil
	}
	m := make(map[string]int64, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.str()
		m[k] = d.i64()
	}
	return m
}

// encodeStatus renders a decided JobStatus as the stable byte form used
// both inside recDone records and in checkpoint "sub:" entries. The
// Recovered flag and the Output file are deliberately not encoded:
// recovery synthesizes a Result carrying the scalars, counters, and the
// output fingerprint, and marks the status Recovered itself.
func encodeStatus(st *JobStatus) []byte {
	var e walEnc
	e.u64(uint64(st.State))
	e.str(st.Tenant)
	e.str(st.Name)
	e.str(st.ID)
	e.str(st.Reason)
	e.f64(st.Submitted)
	e.f64(st.Admitted)
	e.f64(st.Finished)
	e.f64(st.ServeSeconds)
	e.u64(st.OutputFP)
	errMsg := ""
	if st.Err != nil {
		errMsg = st.Err.Error()
	}
	e.str(errMsg)
	if r := st.Result; r != nil {
		e.boolv(true)
		e.f64(r.VTime)
		e.u64(uint64(r.JobsRun))
		e.boolv(r.Replanned)
		e.str(r.ReplanPhase)
		e.cmap(r.Counters)
		e.cmap(r.IndexErrors)
	} else {
		e.boolv(false)
	}
	return e.b
}

func decodeStatus(d *walDec) JobStatus {
	var st JobStatus
	st.State = JobState(d.u64())
	st.Tenant = d.str()
	st.Name = d.str()
	st.ID = d.str()
	st.Reason = d.str()
	st.Submitted = d.f64()
	st.Admitted = d.f64()
	st.Finished = d.f64()
	st.ServeSeconds = d.f64()
	st.OutputFP = d.u64()
	if msg := d.str(); msg != "" {
		st.Err = errors.New(msg)
	}
	if d.boolv() {
		r := &core.JobResult{}
		r.VTime = d.f64()
		r.JobsRun = int(d.u64())
		r.Replanned = d.boolv()
		r.ReplanPhase = d.str()
		r.Counters = d.cmap()
		r.IndexErrors = d.cmap()
		st.Result = r
	}
	return st
}

// svcRec is one decoded journal record (a tagged union over the kinds).
type svcRec struct {
	kind     int
	subIdx   int
	seq      int
	id       string
	reason   string
	at       float64
	seed     int64
	taskKind int
	want     int
	start    float64
	end      float64
	hash     uint64
	n        int
	file     string
	st       JobStatus
	regFP    uint64
	payload  []byte
}

// decodeRec parses one journal payload.
func decodeRec(payload []byte) (svcRec, error) {
	d := &walDec{b: payload}
	r := svcRec{payload: payload}
	r.kind = int(d.u64())
	switch r.kind {
	case recHello:
		r.n = int(d.u64()) // format version
		r.hash = d.u64()
	case recTrace:
		r.hash = d.u64()
		r.n = int(d.u64())
	case recAdmit:
		r.subIdx = int(d.u64())
		r.seq = int(d.u64())
		r.id = d.str()
		r.at = d.f64()
		r.seed = d.i64()
	case recReject:
		r.subIdx = int(d.u64())
		r.reason = d.str()
	case recGrant:
		r.subIdx = int(d.u64())
		r.taskKind = int(d.u64())
		r.want = int(d.u64())
		r.at = d.f64()
		r.start = d.f64()
	case recEnd:
		r.subIdx = int(d.u64())
		r.taskKind = int(d.u64())
		r.start = d.f64()
		r.end = d.f64()
	case recDone:
		r.subIdx = int(d.u64())
		r.regFP = d.u64()
		r.st = decodeStatus(d)
	case recCkpt:
		r.file = d.str()
		r.n = int(d.u64())
	default:
		return r, fmt.Errorf("jobsvc: unknown journal record kind %d", r.kind)
	}
	return r, d.err
}

func recKindName(kind int) string {
	switch kind {
	case recHello:
		return "hello"
	case recTrace:
		return "trace"
	case recAdmit:
		return "admit"
	case recReject:
		return "reject"
	case recGrant:
		return "grant"
	case recEnd:
		return "end"
	case recDone:
		return "done"
	case recCkpt:
		return "ckpt"
	}
	return fmt.Sprintf("kind(%d)", kind)
}

// describe renders a decoded record for humans (efind-plan -wal).
func (r svcRec) describe() string {
	switch r.kind {
	case recHello:
		return fmt.Sprintf("hello   v%d tenants=%016x", r.n, r.hash)
	case recTrace:
		return fmt.Sprintf("trace   subs=%d hash=%016x", r.n, r.hash)
	case recAdmit:
		return fmt.Sprintf("admit   sub=%d id=%s at=%.6f seed=%d", r.subIdx, r.id, r.at, r.seed)
	case recReject:
		return fmt.Sprintf("reject  sub=%d reason=%q", r.subIdx, r.reason)
	case recGrant:
		return fmt.Sprintf("grant   sub=%d kind=%d want=%d ready=%.6f start=%.6f", r.subIdx, r.taskKind, r.want, r.at, r.start)
	case recEnd:
		return fmt.Sprintf("end     sub=%d kind=%d start=%.6f end=%.6f", r.subIdx, r.taskKind, r.start, r.end)
	case recDone:
		return fmt.Sprintf("done    sub=%d state=%s finish=%.6f fp=%016x", r.subIdx, r.st.State, r.st.Finished, r.st.OutputFP)
	case recCkpt:
		return fmt.Sprintf("ckpt    file=%s decided=%d", r.file, r.n)
	}
	return recKindName(r.kind)
}

// DescribeJournal renders every record of a journal directory, one line
// per record — the efind-plan -wal inspection surface. A torn tail is
// reported as a final line rather than an error.
func DescribeJournal(dir string) ([]string, error) {
	fs := vfs.OS{}
	recs, torn, err := wal.Replay(fs, dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(recs)+1)
	for i, rec := range recs {
		r, err := decodeRec(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("record %d (%s): %w", i, rec.Segment, err)
		}
		out = append(out, fmt.Sprintf("%4d %s %s", i+1, rec.Segment, r.describe()))
	}
	if torn {
		out = append(out, "torn tail: trailing bytes after the last valid record (crash mid-append)")
	}
	return out, nil
}

// journal is the Service's durability state: the open wal.Log, the
// recovered decisions to verify re-derived ones against, and checkpoint
// bookkeeping. All methods run on the scheduler goroutine.
type journal struct {
	d   *Durability
	fs  vfs.FS
	log *wal.Log
	err error // first durability failure (journaling degrades, the run continues)

	// Recovery state (empty on a fresh service).
	decided map[int]JobStatus // checkpoint-decided statuses by sub index
	seeds   map[int]int64     // journaled backoff seeds by sub index
	expect  map[string][][]byte
	report  *RecoveryReport

	newlyDecided int
	ckptSeq      int
}

func openJournal(d *Durability) (*journal, error) {
	fs := d.fsOrOS()
	log, err := wal.Open(fs, d.Dir, d.Sync)
	if err != nil {
		return nil, err
	}
	return &journal{
		d:       d,
		fs:      fs,
		log:     log,
		decided: make(map[int]JobStatus),
		seeds:   make(map[int]int64),
		expect:  make(map[string][][]byte),
	}, nil
}

func (jl *journal) fail(err error) {
	if jl.err == nil && err != nil {
		jl.err = err
	}
}

// expectKey groups records for replay verification: one FIFO per (kind,
// sub index); hello and trace use index -1.
func expectKey(kind, subIdx int) string { return fmt.Sprintf("%d/%d", kind, subIdx) }

// installExpectations loads replayed records as the verification
// baseline for a recovered run: every decision the resumed service
// re-derives must byte-match the journaled one, in order. Checkpoint
// records are excluded (a resumed run writes its own), as are the
// journaled admit seeds, which are additionally indexed for replay.
func (jl *journal) installExpectations(recs []svcRec) {
	for _, r := range recs {
		switch r.kind {
		case recCkpt:
			continue
		case recAdmit:
			jl.seeds[r.subIdx] = r.seed
		case recHello, recTrace:
			jl.expect[expectKey(r.kind, -1)] = append(jl.expect[expectKey(r.kind, -1)], r.payload)
			continue
		}
		k := expectKey(r.kind, r.subIdx)
		jl.expect[k] = append(jl.expect[k], r.payload)
	}
}

// append journals one record, first verifying it against the replayed
// baseline when one exists. Journaling failures are sticky and reported
// via Service.DurableErr, but never fail the run: the scheduler's
// decisions stand, they just stop being durable.
func (jl *journal) append(kind, subIdx int, payload []byte) {
	k := expectKey(kind, subIdx)
	if q := jl.expect[k]; len(q) > 0 {
		want := q[0]
		jl.expect[k] = q[1:]
		if string(want) != string(payload) && jl.report != nil {
			jl.report.Divergences = append(jl.report.Divergences,
				fmt.Sprintf("%s record for sub %d diverges from the journal (%d vs %d bytes)",
					recKindName(kind), subIdx, len(payload), len(want)))
		}
	}
	if err := jl.log.Append(payload); err != nil {
		jl.fail(err)
	}
}

func (jl *journal) appendHello(tenantHash uint64) {
	var e walEnc
	e.u64(recHello)
	e.u64(journalVersion)
	e.u64(tenantHash)
	jl.append(recHello, -1, e.b)
}

func (jl *journal) appendTrace(subsHash uint64, n int) {
	var e walEnc
	e.u64(recTrace)
	e.u64(subsHash)
	e.u64(uint64(n))
	jl.append(recTrace, -1, e.b)
}

func (jl *journal) appendAdmit(subIdx, seq int, id string, at float64, seed int64) {
	var e walEnc
	e.u64(recAdmit)
	e.u64(uint64(subIdx))
	e.u64(uint64(seq))
	e.str(id)
	e.f64(at)
	e.i64(seed)
	jl.append(recAdmit, subIdx, e.b)
}

func (jl *journal) appendReject(subIdx int, reason string) {
	var e walEnc
	e.u64(recReject)
	e.u64(uint64(subIdx))
	e.str(reason)
	jl.append(recReject, subIdx, e.b)
}

func (jl *journal) appendGrant(subIdx, taskKind, want int, ready, start float64) {
	var e walEnc
	e.u64(recGrant)
	e.u64(uint64(subIdx))
	e.u64(uint64(taskKind))
	e.u64(uint64(want))
	e.f64(ready)
	e.f64(start)
	jl.append(recGrant, subIdx, e.b)
}

func (jl *journal) appendEnd(subIdx, taskKind int, start, end float64) {
	var e walEnc
	e.u64(recEnd)
	e.u64(uint64(subIdx))
	e.u64(uint64(taskKind))
	e.f64(start)
	e.f64(end)
	jl.append(recEnd, subIdx, e.b)
}

func (jl *journal) appendDone(subIdx int, regFP uint64, st *JobStatus) {
	var e walEnc
	e.u64(recDone)
	e.u64(uint64(subIdx))
	e.u64(regFP)
	e.b = append(e.b, encodeStatus(st)...)
	jl.append(recDone, subIdx, e.b)
}

func (jl *journal) appendCkpt(file string, decided int) {
	var e walEnc
	e.u64(recCkpt)
	e.str(file)
	e.u64(uint64(decided))
	jl.append(recCkpt, -1, e.b)
}

func (jl *journal) close() {
	if jl.log != nil {
		if err := jl.log.Close(); err != nil {
			jl.fail(err)
		}
	}
}

// regFingerprint hashes the durable registry's coverage (0 without one).
func (jl *journal) regFingerprint() uint64 {
	if jl.d.Registry == nil {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(jl.d.Registry.Fingerprint()))
	return h.Sum64()
}

// Checkpoint snapshot schema (an fstore file in the journal directory).
const (
	ckptSentinel   = "jobsvc-ckpt"
	ckptVersion    = 1
	ckptSubPrefix  = "sub:"
	ckptTenPrefix  = "tn:"
	ckptPoolPrefix = "pool:"
	ckptRegPrefix  = "reg:"
	ckptLedMap     = "led:m"
	ckptLedReduce  = "led:r"
)

func encodeLedger(l *slotLedger) []byte {
	var e walEnc
	e.u64(uint64(l.perNode))
	e.u64(uint64(len(l.freeAt)))
	for _, t := range l.freeAt {
		e.f64(t)
	}
	return e.b
}

func decodeLedger(b []byte) (perNode int, freeAt []float64, err error) {
	d := &walDec{b: b}
	perNode = int(d.u64())
	n := d.u64()
	freeAt = make([]float64, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		freeAt = append(freeAt, d.f64())
	}
	return perNode, freeAt, d.err
}

func encodePoolEntry(e ixclient.PoolEntry) []byte {
	// Presize: warmed caches at cluster scale make this the hottest
	// encoder in a checkpoint, and append-growing doubled its cost.
	size := len(e.Index) + 48
	for i, k := range e.Keys {
		size += len(k) + 10
		for _, v := range e.Values[i] {
			size += len(v) + 5
		}
	}
	enc := walEnc{b: make([]byte, 0, size)}
	enc.str(e.Index)
	enc.u64(uint64(e.Node))
	enc.i64(e.Hits)
	enc.i64(e.Misses)
	enc.u64(uint64(len(e.Keys)))
	for i, k := range e.Keys {
		enc.str(k)
		enc.u64(uint64(len(e.Values[i])))
		for _, v := range e.Values[i] {
			enc.str(v)
		}
	}
	return enc.b
}

func decodePoolEntry(b []byte) (ixclient.PoolEntry, error) {
	d := &walDec{b: b}
	var e ixclient.PoolEntry
	e.Index = d.str()
	e.Node = sim.NodeID(d.u64())
	e.Hits = d.i64()
	e.Misses = d.i64()
	n := d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		e.Keys = append(e.Keys, d.str())
		vn := d.u64()
		vals := make([]string, 0, vn)
		for j := uint64(0); j < vn && d.err == nil; j++ {
			vals = append(vals, d.str())
		}
		e.Values = append(e.Values, vals)
	}
	return e, d.err
}

// writeCheckpoint folds every decided job, tenant accounting, slot
// ledger, pooled cache, and registry coverage into one atomic fstore
// snapshot and journals its name. Called only at quiescent points, so
// the captured state is exactly the serial-point state a fresh run
// reaches after the same decided prefix.
func (s *Service) writeCheckpoint() {
	jl := s.jl
	b := fstore.NewBuilder()
	b.Add(ckptSentinel, ckptVersion)
	decided := 0
	for _, j := range s.jobs {
		if !j.decided {
			continue
		}
		b.Add(fmt.Sprintf("%s%06d", ckptSubPrefix, j.idx), int64(j.status.State), string(encodeStatus(&j.status)))
		decided++
	}
	for _, t := range s.order {
		var e walEnc
		e.f64(t.spent)
		b.Add(ckptTenPrefix+t.cfg.Name, int64(t.seq), string(e.b))
	}
	b.Add(ckptLedMap, 0, string(encodeLedger(s.mapLedger)))
	b.Add(ckptLedReduce, 0, string(encodeLedger(s.reduceLedger)))
	if p := s.opts.SharedCache; p != nil {
		for _, pe := range p.Dump() {
			b.Add(fmt.Sprintf("%s%s|%08d", ckptPoolPrefix, pe.Index, pe.Node), int64(pe.Node), string(encodePoolEntry(pe)))
		}
	}
	if reg := jl.d.Registry; reg != nil {
		reg.AppendTo(b, ckptRegPrefix)
	}
	name := fmt.Sprintf("ckpt-%06d.fst", jl.ckptSeq+1)
	if err := b.WriteFileFS(jl.fs, filepath.Join(jl.d.Dir, name)); err != nil {
		// The snapshot never became durable; keep journaling against the
		// previous checkpoint and retry at the next quiescent point.
		jl.fail(fmt.Errorf("jobsvc: checkpoint %s: %w", name, err))
		return
	}
	jl.ckptSeq++
	jl.appendCkpt(name, decided)
	jl.newlyDecided = 0
}

// checkpoint is one loaded checkpoint snapshot.
type checkpoint struct {
	path    string
	decided map[int]JobStatus
	tenants map[string]tenantCkpt
	ledgers map[string]struct {
		perNode int
		freeAt  []float64
	}
	pool []ixclient.PoolEntry
}

type tenantCkpt struct {
	seq   int
	spent float64
}

// loadCheckpoint opens and fully decodes a checkpoint snapshot, merging
// registry coverage into reg when given. Any validation or decode
// failure surfaces as an error so Recover can fall back to an earlier
// checkpoint.
func loadCheckpoint(path string, reg *adaptix.Registry) (*checkpoint, error) {
	snap, err := fstore.Open(path, fstore.Options{})
	if err != nil {
		return nil, err
	}
	defer snap.Close()
	if _, ok := snap.Find(ckptSentinel); !ok {
		return nil, fmt.Errorf("jobsvc: %s is not a service checkpoint", path)
	}
	ck := &checkpoint{
		path:    path,
		decided: make(map[int]JobStatus),
		tenants: make(map[string]tenantCkpt),
		ledgers: make(map[string]struct {
			perNode int
			freeAt  []float64
		}),
	}
	for i := 0; i < snap.Len(); i++ {
		key := snap.Key(i)
		vals, err := snap.Values(i)
		if err != nil {
			return nil, err
		}
		one := func() (string, error) {
			if len(vals) != 1 {
				return "", fmt.Errorf("jobsvc: checkpoint %s: key %s has %d values, want 1", path, key, len(vals))
			}
			return vals[0], nil
		}
		switch {
		case key == ckptSentinel:
			if snap.Revision(i) != ckptVersion {
				return nil, fmt.Errorf("jobsvc: checkpoint %s: unsupported version %d", path, snap.Revision(i))
			}
		case key == ckptLedMap || key == ckptLedReduce:
			v, err := one()
			if err != nil {
				return nil, err
			}
			perNode, freeAt, err := decodeLedger([]byte(v))
			if err != nil {
				return nil, err
			}
			ck.ledgers[key] = struct {
				perNode int
				freeAt  []float64
			}{perNode, freeAt}
		case len(key) > len(ckptSubPrefix) && key[:len(ckptSubPrefix)] == ckptSubPrefix:
			v, err := one()
			if err != nil {
				return nil, err
			}
			var idx int
			if _, err := fmt.Sscanf(key[len(ckptSubPrefix):], "%d", &idx); err != nil {
				return nil, fmt.Errorf("jobsvc: checkpoint %s: bad sub key %q", path, key)
			}
			d := &walDec{b: []byte(v)}
			st := decodeStatus(d)
			if d.err != nil {
				return nil, d.err
			}
			ck.decided[idx] = st
		case len(key) > len(ckptTenPrefix) && key[:len(ckptTenPrefix)] == ckptTenPrefix:
			v, err := one()
			if err != nil {
				return nil, err
			}
			d := &walDec{b: []byte(v)}
			spent := d.f64()
			if d.err != nil {
				return nil, d.err
			}
			ck.tenants[key[len(ckptTenPrefix):]] = tenantCkpt{seq: int(snap.Revision(i)), spent: spent}
		case len(key) > len(ckptPoolPrefix) && key[:len(ckptPoolPrefix)] == ckptPoolPrefix:
			v, err := one()
			if err != nil {
				return nil, err
			}
			pe, err := decodePoolEntry([]byte(v))
			if err != nil {
				return nil, err
			}
			ck.pool = append(ck.pool, pe)
		case len(key) > len(ckptRegPrefix) && key[:len(ckptRegPrefix)] == ckptRegPrefix:
			// Handled below via adaptix.LoadFrom (it validates ranges).
		default:
			return nil, fmt.Errorf("jobsvc: checkpoint %s: unknown key %q", path, key)
		}
	}
	if reg != nil {
		if err := reg.LoadFrom(snap, ckptRegPrefix); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

// tenantHash fingerprints the tenant configuration for recHello.
func tenantHash(tenants []TenantConfig) uint64 {
	h := fnv.New64a()
	for _, t := range tenants {
		fmt.Fprintf(h, "%s|%d|%d|%d|%x;", t.Name, t.Weight, t.MaxInFlight, t.QueueCap, math.Float64bits(t.Budget))
	}
	return h.Sum64()
}

// subsHash fingerprints the submission trace for recTrace.
func subsHash(subs []Submission) uint64 {
	h := fnv.New64a()
	for _, s := range subs {
		name := ""
		if s.Conf != nil {
			name = s.Conf.Name
		}
		fmt.Fprintf(h, "%s|%x|%s;", s.Tenant, math.Float64bits(s.At), name)
	}
	return h.Sum64()
}

// outputFingerprint hashes a job's sorted output records — the durable
// stand-in for the output file, which a recovered coordinator cannot
// reproduce for jobs it never re-runs. Sorted so serial and parallel
// executors fingerprint identically.
func outputFingerprint(res *core.JobResult) uint64 {
	if res == nil || res.Output == nil {
		return 0
	}
	var recs []string
	for _, c := range res.Output.Chunks {
		rs, err := c.Records()
		if err != nil {
			return 0
		}
		for _, r := range rs {
			recs = append(recs, r.Key+"\x00"+r.Value)
		}
	}
	sort.Strings(recs)
	h := fnv.New64a()
	for _, r := range recs {
		h.Write([]byte(r))
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}
