package jobsvc

import (
	"math"
	"sort"

	"efind/internal/sim"
)

// slotLedger tracks one task kind's cluster slots by the virtual time
// each becomes free. It answers two questions the scheduler loop asks:
// when could a phase wanting k slots start (grantTime), and which k
// slots does it get (take). Grants pick the earliest-free slots with a
// (freeAt, node, slot) tie-break, so placement is a pure function of the
// virtual timeline — never of wall-clock interleaving.
type slotLedger struct {
	perNode int
	// freeAt[node*perNode+idx] is when that slot is next free; +Inf while
	// a granted phase holds it (only transiently — every phase body runs
	// to completion and releases before the loop selects again).
	freeAt  []float64
	scratch []int
}

func newSlotLedger(nodes, perNode int) *slotLedger {
	return &slotLedger{perNode: perNode, freeAt: make([]float64, nodes*perNode)}
}

// total returns the ledger's slot count.
func (l *slotLedger) total() int { return len(l.freeAt) }

// ordered returns every slot index sorted by (freeAt, index). The slice
// is reused across calls — callers must not retain it.
func (l *slotLedger) ordered() []int {
	if l.scratch == nil {
		l.scratch = make([]int, len(l.freeAt))
	}
	s := l.scratch
	for i := range s {
		s[i] = i
	}
	sort.SliceStable(s, func(a, b int) bool { return l.freeAt[s[a]] < l.freeAt[s[b]] })
	return s
}

// grantTime returns the earliest start >= ready at which `want` slots are
// simultaneously free.
func (l *slotLedger) grantTime(ready float64, want int) float64 {
	if want <= 0 {
		return ready
	}
	s := l.ordered()
	if t := l.freeAt[s[want-1]]; t > ready {
		return t
	}
	return ready
}

// take claims the `want` earliest-free slots as a lease and marks them
// busy until release. A full-cluster take yields a lease whose scheduling
// heap is bit-identical to unleased full-cluster scheduling — the lone
// active job under the service places tasks exactly like the one-shot
// engine path.
func (l *slotLedger) take(want int) *sim.Lease {
	nodes := len(l.freeAt) / l.perNode
	perNode := make([][]int32, nodes)
	s := l.ordered()
	for _, slot := range s[:want] {
		n := slot / l.perNode
		perNode[n] = append(perNode[n], int32(slot%l.perNode))
		l.freeAt[slot] = math.Inf(1)
	}
	for n := range perNode {
		idxs := perNode[n]
		sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	}
	return sim.NewLease(perNode)
}

// release returns a lease's slots at the phase's end time.
func (l *slotLedger) release(lease *sim.Lease, end float64) {
	if lease == nil {
		return
	}
	nodes := len(l.freeAt) / l.perNode
	for n := 0; n < nodes; n++ {
		for _, idx := range lease.NodeSlots(sim.NodeID(n)) {
			l.freeAt[n*l.perNode+int(idx)] = end
		}
	}
}
