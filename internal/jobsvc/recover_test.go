package jobsvc

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"efind/internal/adaptix"
	"efind/internal/chaos"
	"efind/internal/core"
	"efind/internal/index"
	"efind/internal/ixclient"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/vfs"
	"efind/internal/wal"
)

// denv extends env with the durable world: a buildable adaptive index,
// the shared cache pool, and a chaos plan with outages that make the
// retry backoff ladder matter. Two denvs built with the same parameters
// are bit-identical worlds — the property the recovery sweep rests on.
type denv struct {
	*env
	reg  *adaptix.Registry
	bix  *adaptix.Buildable
	pool *ixclient.Pool
	plan *chaos.Plan
}

func newDurableEnv(t *testing.T, parallelism int) *denv {
	t.Helper()
	e := newEnv(t, parallelism)
	reg := adaptix.NewRegistry()
	store := kvstore.NewHash(e.cluster, "bix", 16, 3, 0.0008)
	bix, err := adaptix.New(adaptix.Config{
		Name:   "bix",
		Source: e.input,
		Extract: func(key, value string) []index.BuildEntry {
			fields := strings.Fields(value)
			ik := fields[len(fields)-1]
			return []index.BuildEntry{{Key: ik, Value: "ix(" + ik + ")"}}
		},
		Store:     store,
		Registry:  reg,
		ScanTime:  5e-4,
		BuildTime: 2e-5,
		OfferRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer needs catalog statistics to choose the Build
	// strategy; both the original and every recovered environment collect
	// them identically before the service runs.
	if err := e.rt.CollectStats(e.buildConf("bld-stats", bix, core.ModeBaseline)); err != nil {
		t.Fatal(err)
	}
	plan := chaos.MustNew(chaos.Config{
		Outages: []chaos.Outage{
			{Index: "kv", Partition: -1, From: 0.02, Until: 0.12},
			{Index: "kv", Partition: -1, From: 50.05, Until: 50.15},
		},
	}, 6)
	return &denv{env: e, reg: reg, bix: bix, pool: ixclient.NewPool(0), plan: plan}
}

// buildConf is a head-operator job over the buildable index: runs under
// ModeOptimized piggyback index construction onto their scans.
func (e *env) buildConf(name string, bix *adaptix.Buildable, mode core.Mode) *core.IndexJobConf {
	op := core.NewOperator("op-bld",
		func(in core.Pair) core.PreResult {
			fields := strings.Fields(in.Value)
			return core.PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			joined := "none"
			if len(results) > 0 && len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				joined = strings.Join(results[0][0].Values, ",")
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + " => " + joined})
		})
	op.AddIndex(bix)
	conf := &core.IndexJobConf{
		Name:      name,
		Input:     e.input,
		Mode:      mode,
		NumReduce: 4,
		Mapper:    func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) { emit(in) },
		Reducer:   mapreduce.IdentityReduce,
	}
	conf.AddHeadIndexOperator(op)
	return conf
}

// retryConf is conf plus a retry policy whose jittered backoff ladder
// rides out the chaos outage windows. Seed stays 0: durable runs derive
// it from (BackoffSalt, submission index) and journal it, which is what
// the salt-regression test exercises.
func (e *env) retryConf(name string, mode core.Mode) *core.IndexJobConf {
	conf := e.conf(name, mode)
	conf.Retry = core.RetryPolicy{Max: 6, Backoff: 0.01, Factor: 2, Cap: 0.05, Jitter: 0.5}
	return conf
}

// durableTrace is the crash-sweep admission trace: 2 tenants × 4 jobs in
// two waves. Wave one holds the adaptive build job and an outage-riding
// lookup job; the gap to wave two is a quiescent point, so a checkpoint
// lands mid-trace and the sweep exercises crash points before, at, and
// after it. Every conf uses a distinct operator name: the shared catalog
// is keyed by operator, and a checkpoint-decided job that never re-runs
// must not have been feeding statistics a re-run job would then miss.
func durableTrace(e *denv) ([]TenantConfig, []Submission) {
	tenants := []TenantConfig{
		{Name: "alpha", Weight: 2, MaxInFlight: 2, QueueCap: 4},
		{Name: "beta", Weight: 1, MaxInFlight: 2, QueueCap: 4},
	}
	subs := []Submission{
		{Tenant: "alpha", At: 0, Conf: e.buildConf("bld", e.bix, core.ModeOptimized)},
		{Tenant: "beta", At: 0, Conf: e.retryConf("b1", core.ModeCache)},
		{Tenant: "alpha", At: 50, Conf: e.retryConf("a2", core.ModeCache)},
		{Tenant: "beta", At: 50.2, Conf: e.conf("b2", core.ModeDynamic)},
	}
	return tenants, subs
}

func durability(dir string, e *denv, salt int64) *Durability {
	return &Durability{Dir: dir, Registry: e.reg, CheckpointEvery: 1, BackoffSalt: salt}
}

// runDurableRef runs the reference durable trace into dir and returns
// the statuses plus the registry fingerprint at completion.
func runDurableRef(t *testing.T, parallelism int, dir string, salt int64) ([]JobStatus, string) {
	t.Helper()
	e := newDurableEnv(t, parallelism)
	tenants, subs := durableTrace(e)
	svc, err := New(e.rt, tenants, Options{SharedCache: e.pool, Chaos: e.plan, Durable: durability(dir, e, salt)})
	if err != nil {
		t.Fatal(err)
	}
	statuses := svc.Run(subs)
	if err := svc.DurableErr(); err != nil {
		t.Fatalf("reference run durability error: %v", err)
	}
	for i, st := range statuses {
		if st.State != JobCompleted {
			t.Fatalf("reference job %d (%s) = %v (err %v, reason %q)", i, st.ID, st.State, st.Err, st.Reason)
		}
		if st.OutputFP == 0 {
			t.Fatalf("reference job %d has no output fingerprint", i)
		}
	}
	if cov, total := e.reg.Covered("bix"); cov == 0 || cov >= total {
		t.Fatalf("build job should leave partial coverage, got %d/%d — the trace no longer exercises build recovery", cov, total)
	}
	return statuses, e.reg.Fingerprint()
}

// recoverAndRun rebuilds the deterministic world, recovers from dir, and
// re-runs the trace, returning the statuses, the report, and the final
// registry fingerprint.
func recoverAndRun(t *testing.T, parallelism int, dir string, salt int64) ([]JobStatus, *RecoveryReport, string) {
	t.Helper()
	e := newDurableEnv(t, parallelism)
	tenants, subs := durableTrace(e)
	svc, rep, err := Recover(e.rt, tenants, Options{SharedCache: e.pool, Chaos: e.plan, Durable: durability(dir, e, salt)})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := e.bix.Materialize(); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	statuses := svc.Run(subs)
	if err := svc.DurableErr(); err != nil {
		t.Fatalf("recovered run durability error: %v", err)
	}
	return statuses, rep, e.reg.Fingerprint()
}

// compareRuns asserts a recovered run is bit-identical to the reference:
// every scheduling time, serve charge, counter, and output fingerprint.
func compareRuns(t *testing.T, ref, got []JobStatus, label string) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d statuses, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		r, g := ref[i], got[i]
		if r.State != g.State || r.ID != g.ID || r.Reason != g.Reason {
			t.Fatalf("%s job %d identity diverges: %v/%q/%q vs %v/%q/%q",
				label, i, g.State, g.ID, g.Reason, r.State, r.ID, r.Reason)
		}
		if r.Submitted != g.Submitted || r.Admitted != g.Admitted || r.Finished != g.Finished {
			t.Fatalf("%s job %d times diverge: [%g %g %g] vs [%g %g %g]",
				label, i, g.Submitted, g.Admitted, g.Finished, r.Submitted, r.Admitted, r.Finished)
		}
		if r.ServeSeconds != g.ServeSeconds {
			t.Fatalf("%s job %d serve diverges: %g vs %g", label, i, g.ServeSeconds, r.ServeSeconds)
		}
		if r.OutputFP != g.OutputFP {
			t.Fatalf("%s job %d output fingerprint diverges: %016x vs %016x", label, i, g.OutputFP, r.OutputFP)
		}
		rerr, gerr := "", ""
		if r.Err != nil {
			rerr = r.Err.Error()
		}
		if g.Err != nil {
			gerr = g.Err.Error()
		}
		if rerr != gerr {
			t.Fatalf("%s job %d error diverges: %q vs %q", label, i, gerr, rerr)
		}
		if (r.Result == nil) != (g.Result == nil) {
			t.Fatalf("%s job %d result presence diverges", label, i)
		}
		if r.Result != nil {
			if r.Result.VTime != g.Result.VTime || r.Result.JobsRun != g.Result.JobsRun ||
				r.Result.Replanned != g.Result.Replanned || r.Result.ReplanPhase != g.Result.ReplanPhase {
				t.Fatalf("%s job %d result scalars diverge: %+v vs %+v", label, i, g.Result, r.Result)
			}
			if !reflect.DeepEqual(r.Result.Counters, g.Result.Counters) {
				t.Fatalf("%s job %d counters diverge:\nref: %v\ngot: %v", label, i, r.Result.Counters, g.Result.Counters)
			}
			if !reflect.DeepEqual(r.Result.IndexErrors, g.Result.IndexErrors) {
				t.Fatalf("%s job %d index errors diverge", label, i)
			}
			if !g.Recovered && g.Result.Output == nil {
				t.Fatalf("%s job %d re-ran but has no output file", label, i)
			}
		}
	}
}

// TestRecoverySweepKillAtEverySerialPoint is the durability pin: for
// every journal record k, it builds the byte-accurate crash image of a
// coordinator that died immediately after appending record k (odd k
// additionally get a torn partial frame at the cut), recovers a fresh
// coordinator from the image in a rebuilt deterministic world, re-runs
// the trace, and requires the result to be bit-identical to the
// uninterrupted reference — statuses, virtual times, counters, output
// fingerprints, registry fingerprint — with zero divergences between
// re-derived decisions and the journaled ones. Run under the serial and
// parallel executors.
func TestRecoverySweepKillAtEverySerialPoint(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallel=%d", parallelism), func(t *testing.T) {
			refDir := filepath.Join(t.TempDir(), "wal")
			ref, refRegFP := runDurableRef(t, parallelism, refDir, 7)
			fs := vfs.OS{}
			n, err := wal.CountRecords(fs, refDir)
			if err != nil {
				t.Fatal(err)
			}
			if n < 10 {
				t.Fatalf("reference journal has only %d records — the sweep would prove little", n)
			}
			lines, err := DescribeJournal(refDir)
			if err != nil || len(lines) != n {
				t.Fatalf("DescribeJournal: %d lines, err %v, want %d", len(lines), err, n)
			}
			ckpts := 0
			for _, l := range lines {
				if strings.Contains(l, "ckpt") {
					ckpts++
				}
			}
			if ckpts < 2 {
				t.Fatalf("reference journal holds %d checkpoints, want a mid-trace one plus the final — trace waves broken", ckpts)
			}

			for k := 0; k <= n; k++ {
				var tornExtra []byte
				if k%2 == 1 {
					tornExtra = []byte{0x1f, 0xaa, 0x03} // partial frame at the cut
				}
				crashDir := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%03d", k))
				if err := wal.CrashImage(fs, refDir, crashDir, k, tornExtra); err != nil {
					t.Fatalf("CrashImage(k=%d): %v", k, err)
				}
				got, rep, regFP := recoverAndRun(t, parallelism, crashDir, 7)
				if tornExtra != nil && !rep.TornTail {
					t.Fatalf("k=%d: torn tail not detected", k)
				}
				if len(rep.Divergences) != 0 {
					t.Fatalf("k=%d: recovered run diverged from its journal: %v", k, rep.Divergences)
				}
				compareRuns(t, ref, got, fmt.Sprintf("k=%d", k))
				if regFP != refRegFP {
					t.Fatalf("k=%d: registry fingerprint diverges: %s vs %s", k, regFP, refRegFP)
				}
				if k == n && rep.DecidedJobs != len(ref) {
					t.Fatalf("k=%d (full journal): %d decided jobs restored, want all %d", k, rep.DecidedJobs, len(ref))
				}
			}
		})
	}
}

// TestRecoverUnderDifferentBackoffSaltIsIdentical pins the journaled
// backoff seeds: a coordinator recovered with a different BackoffSalt
// must still replay the original run's jitter ladder (the seeds come
// from the journal's admit records, not the salt), staying bit-identical.
func TestRecoverUnderDifferentBackoffSaltIsIdentical(t *testing.T) {
	refDir := filepath.Join(t.TempDir(), "wal")
	ref, refRegFP := runDurableRef(t, 1, refDir, 7)
	fs := vfs.OS{}
	n, err := wal.CountRecords(fs, refDir)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-trace, past the first wave's admits (their seeds are
	// journaled) but before completion of the second.
	k := n * 3 / 4
	crashDir := filepath.Join(t.TempDir(), "crash")
	if err := wal.CrashImage(fs, refDir, crashDir, k, nil); err != nil {
		t.Fatal(err)
	}
	got, rep, regFP := recoverAndRun(t, 1, crashDir, 9999)
	if len(rep.Divergences) != 0 {
		t.Fatalf("recovered run diverged under a different salt: %v", rep.Divergences)
	}
	compareRuns(t, ref, got, "salt=9999")
	if regFP != refRegFP {
		t.Fatalf("registry fingerprint diverges: %s vs %s", regFP, refRegFP)
	}

	// Control: a fresh (non-recovered) run under the other salt derives
	// different seeds, so at least one backoff-dependent time diverges —
	// proving the identity above came from the journaled seeds.
	otherDir := filepath.Join(t.TempDir(), "other")
	other, _ := runDurableRef(t, 1, otherDir, 9999)
	same := true
	for i := range ref {
		if ref[i].Finished != other[i].Finished || ref[i].ServeSeconds != other[i].ServeSeconds {
			same = false
		}
	}
	if same {
		t.Fatal("different BackoffSalt produced identical runs — jitter ladder not exercised, the salt test is vacuous")
	}
}

// TestRecoverFallsBackPastCorruptCheckpoint damages the newest
// checkpoint in a crash image; Recover must skip it, fall back (to an
// older checkpoint or none), and still reproduce the reference run.
func TestRecoverFallsBackPastCorruptCheckpoint(t *testing.T) {
	refDir := filepath.Join(t.TempDir(), "wal")
	ref, refRegFP := runDurableRef(t, 1, refDir, 7)
	fs := vfs.OS{}
	n, err := wal.CountRecords(fs, refDir)
	if err != nil {
		t.Fatal(err)
	}
	crashDir := filepath.Join(t.TempDir(), "crash")
	if err := wal.CrashImage(fs, refDir, crashDir, n, nil); err != nil {
		t.Fatal(err)
	}
	// Find the newest checkpoint file and bit-flip its middle.
	names, err := fs.ReadDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, name := range names {
		if strings.HasPrefix(name, "ckpt-") {
			newest = name
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint in the crash image")
	}
	path := filepath.Join(crashDir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rep, regFP := recoverAndRun(t, 1, crashDir, 7)
	if len(rep.CheckpointsSkipped) == 0 || !strings.Contains(rep.CheckpointsSkipped[0], newest) {
		t.Fatalf("CheckpointsSkipped = %v, want the damaged %s first", rep.CheckpointsSkipped, newest)
	}
	if rep.Checkpoint == newest {
		t.Fatalf("recovery claims to have used the damaged checkpoint %s", newest)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("divergences after checkpoint fallback: %v", rep.Divergences)
	}
	compareRuns(t, ref, got, "ckpt-fallback")
	if regFP != refRegFP {
		t.Fatalf("registry fingerprint diverges: %s vs %s", regFP, refRegFP)
	}
}

// TestDurabilityFaultsDegradeGracefully injects storage faults into the
// live journal and checkpoint writes: the run must complete with the
// exact same outcomes as a fault-free durable run, reporting the failure
// via DurableErr instead of failing jobs.
func TestDurabilityFaultsDegradeGracefully(t *testing.T) {
	refDir := filepath.Join(t.TempDir(), "wal")
	ref, _ := runDurableRef(t, 1, refDir, 7)

	for _, fault := range []chaos.FileFault{
		{Kind: chaos.TornWrite, Match: ".wal", Nth: 5},
		{Kind: chaos.NoSpace, Match: ".wal", Nth: 3},
		{Kind: chaos.RenameFail, Match: "ckpt-000001.fst"},
	} {
		t.Run(fault.Kind.String(), func(t *testing.T) {
			e := newDurableEnv(t, 1)
			tenants, subs := durableTrace(e)
			ffs := chaos.NewFaultFS(vfs.OS{}, fault)
			d := durability(filepath.Join(t.TempDir(), "wal"), e, 7)
			d.FS = ffs
			svc, err := New(e.rt, tenants, Options{SharedCache: e.pool, Chaos: e.plan, Durable: d})
			if err != nil {
				t.Fatal(err)
			}
			statuses := svc.Run(subs)
			if len(ffs.Injected()) == 0 {
				t.Fatalf("fault %v never fired — schedule no longer matches the write sequence", fault)
			}
			if fault.Kind == chaos.RenameFail {
				// A failed checkpoint is retried at the next quiescent
				// point; journaling itself stays healthy.
				if err := svc.DurableErr(); err == nil {
					t.Fatal("checkpoint failure should be reported via DurableErr")
				}
			} else if err := svc.DurableErr(); err == nil {
				t.Fatal("journal write failure should be reported via DurableErr")
			}
			compareRuns(t, ref, statuses, "faulted")
		})
	}
}

// TestSeededFaultMatrixRecovery is the CI fault-matrix leg: a seeded
// schedule of storage faults hits the reference run's journal writes;
// whatever survived on disk, a recovered coordinator must reproduce the
// reference outcomes exactly.
func TestSeededFaultMatrixRecovery(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("EFIND_FAULT_SEED"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &seed); err != nil {
			t.Fatalf("bad EFIND_FAULT_SEED %q: %v", s, err)
		}
	}
	refDir := filepath.Join(t.TempDir(), "wal")
	ref, refRegFP := runDurableRef(t, 1, refDir, 7)

	// The faulted run: same world, seeded write-path damage.
	e := newDurableEnv(t, 1)
	tenants, subs := durableTrace(e)
	ffs := chaos.NewFaultFS(vfs.OS{}, chaos.SeededFaults(seed, 3, "")...)
	faultDir := filepath.Join(t.TempDir(), "faulted")
	d := durability(faultDir, e, 7)
	d.FS = ffs
	svc, err := New(e.rt, tenants, Options{SharedCache: e.pool, Chaos: e.plan, Durable: d})
	if err != nil {
		t.Fatal(err)
	}
	faulted := svc.Run(subs)
	compareRuns(t, ref, faulted, fmt.Sprintf("faulted seed=%d", seed))
	t.Logf("seed %d injected: %v", seed, ffs.Injected())

	// Recover from whatever the faults left behind. A torn tail is
	// repaired; a truncated journal just means more re-execution.
	got, rep, regFP := recoverAndRun(t, 1, faultDir, 7)
	if len(rep.Divergences) != 0 {
		t.Fatalf("seed %d: divergences: %v", seed, rep.Divergences)
	}
	compareRuns(t, ref, got, fmt.Sprintf("recovered seed=%d", seed))
	if regFP != refRegFP {
		t.Fatalf("seed %d: registry fingerprint diverges", seed)
	}
}
