package sketch

import (
	"fmt"
	"testing"
)

func BenchmarkAdd(b *testing.B) {
	fm := New(64)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Add(keys[i%len(keys)])
	}
}

func BenchmarkEstimate(b *testing.B) {
	fm := New(64)
	for i := 0; i < 100000; i++ {
		fm.Add(fmt.Sprintf("key-%08d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Estimate()
	}
}

func BenchmarkMerge(b *testing.B) {
	a, c := New(64), New(64)
	for i := 0; i < 10000; i++ {
		a.Add(fmt.Sprintf("a-%d", i))
		c.Add(fmt.Sprintf("c-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}
