package sketch

import (
	"fmt"
	"math"
	"testing"
)

func TestEmptyEstimateZero(t *testing.T) {
	f := New(64)
	if got := f.Estimate(); got != 0 {
		t.Fatalf("empty sketch estimate = %g, want 0", got)
	}
}

func TestEstimateWithinFactor(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		f := New(64)
		for i := 0; i < n; i++ {
			f.Add(fmt.Sprintf("key-%d", i))
		}
		got := f.Estimate()
		if got < float64(n)/2 || got > float64(n)*2 {
			t.Fatalf("n=%d: estimate %g outside [n/2, 2n]", n, got)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	f := New(64)
	for i := 0; i < 100; i++ {
		for rep := 0; rep < 50; rep++ {
			f.Add(fmt.Sprintf("key-%d", i))
		}
	}
	g := New(64)
	for i := 0; i < 100; i++ {
		g.Add(fmt.Sprintf("key-%d", i))
	}
	if math.Abs(f.Estimate()-g.Estimate()) > 1e-9 {
		t.Fatalf("duplicates changed the estimate: %g vs %g", f.Estimate(), g.Estimate())
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(32), New(32), New(32)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("a-%d", i)
		a.Add(k)
		u.Add(k)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("b-%d", i)
		b.Add(k)
		u.Add(k)
	}
	a.Merge(b)
	if math.Abs(a.Estimate()-u.Estimate()) > 1e-9 {
		t.Fatalf("merge != union: %g vs %g", a.Estimate(), u.Estimate())
	}
}

func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	New(8).Merge(New(16))
}

func TestCloneIndependent(t *testing.T) {
	a := New(16)
	a.Add("x")
	c := a.Clone()
	c.Add("y")
	c.Add("z")
	if a.Estimate() >= c.Estimate() && a.Estimate() != c.Estimate() {
		t.Fatalf("clone mutated original? a=%g c=%g", a.Estimate(), c.Estimate())
	}
}

func TestVectorsRoundTrip(t *testing.T) {
	a := New(16)
	for i := 0; i < 200; i++ {
		a.Add(fmt.Sprintf("k%d", i))
	}
	b := FromVectors(a.Vectors())
	if a.Estimate() != b.Estimate() {
		t.Fatalf("round trip changed estimate: %g vs %g", a.Estimate(), b.Estimate())
	}
}

func TestNewClampsWidth(t *testing.T) {
	f := New(0)
	f.Add("x")
	if f.Estimate() <= 0 {
		t.Fatal("clamped sketch should still count")
	}
}
