// Package sketch implements the Flajolet–Martin probabilistic distinct
// counter the paper uses (§4.2) to estimate Θ, the average number of
// duplicates per index lookup key: each map/reduce task keeps an FM bit
// vector updated by the lookup keys, the per-task vectors are OR-ed
// together, and the total key count divided by the estimated distinct
// count gives Θ.
package sketch

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// phi is the Flajolet–Martin correction factor (1/0.77351).
const phi = 0.77351

// FM is a Flajolet–Martin distinct-count sketch using m independent bit
// vectors (stochastic averaging over hash-selected vectors) to tighten the
// estimate. The zero value is not usable; call New.
type FM struct {
	vectors []uint64
}

// New returns a sketch with m bit vectors. Typical m is 64; the paper's
// accuracy needs are modest (Θ feeds a coarse cost model). m is clamped to
// at least 1.
func New(m int) *FM {
	if m < 1 {
		m = 1
	}
	return &FM{vectors: make([]uint64, m)}
}

// Add registers one occurrence of key.
func (f *FM) Add(key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	// Low bits select the vector; the remaining bits drive the
	// least-significant-one position, as in the original algorithm.
	idx := int(v % uint64(len(f.vectors)))
	rest := v / uint64(len(f.vectors))
	r := bits.TrailingZeros64(rest)
	if r > 63 {
		r = 63
	}
	f.vectors[idx] |= 1 << uint(r)
}

// Merge ORs another sketch into this one. Both sketches must have been
// created with the same m; Merge panics otherwise because the result would
// silently be wrong.
func (f *FM) Merge(other *FM) {
	if len(f.vectors) != len(other.vectors) {
		panic("sketch: merging FM sketches of different widths")
	}
	for i := range f.vectors {
		f.vectors[i] |= other.vectors[i]
	}
}

// Clone returns an independent copy.
func (f *FM) Clone() *FM {
	c := &FM{vectors: make([]uint64, len(f.vectors))}
	copy(c.vectors, f.vectors)
	return c
}

// Estimate returns the estimated number of distinct keys added.
func (f *FM) Estimate() float64 {
	if len(f.vectors) == 0 {
		return 0
	}
	sum := 0.0
	empty := true
	for _, v := range f.vectors {
		r := firstZero(v)
		sum += float64(r)
		if v != 0 {
			empty = false
		}
	}
	if empty {
		return 0
	}
	m := float64(len(f.vectors))
	mean := sum / m
	return m * math.Pow(2, mean) / phi
}

// Vectors exposes the raw bit vectors so the MapReduce counter layer can
// ship them between tasks as int64 counters.
func (f *FM) Vectors() []uint64 {
	out := make([]uint64, len(f.vectors))
	copy(out, f.vectors)
	return out
}

// FromVectors rebuilds a sketch from raw vectors.
func FromVectors(vs []uint64) *FM {
	f := &FM{vectors: make([]uint64, len(vs))}
	copy(f.vectors, vs)
	return f
}

// firstZero returns the position of the lowest zero bit in v.
func firstZero(v uint64) int {
	return bits.TrailingZeros64(^v)
}
