package tpch

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

type env struct {
	cluster *sim.Cluster
	fs      *dfs.FS
	rt      *core.Runtime
	w       *Workload
}

func setup(t *testing.T, sf float64, dup int) *env {
	t.Helper()
	c := DefaultConfig()
	c.ScaleFactor = sf
	c.DupFactor = dup
	return setupCfg(t, c)
}

func setupCfg(t *testing.T, c Config) *env {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 6
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 2
	cfg.TaskStartup = 0.05
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 16 << 10
	rt := core.NewRuntime(mapreduce.New(cluster, fs))

	w, err := Setup(fs, "lineitem", c)
	if err != nil {
		t.Fatal(err)
	}
	return &env{cluster: cluster, fs: fs, rt: rt, w: w}
}

func TestSetupShapes(t *testing.T) {
	e := setup(t, 1, 1)
	if e.w.NumOrders != 1500 || e.w.NumSuppliers != 10 || e.w.NumParts != 200 {
		t.Fatalf("row counts off: %+v", e.w)
	}
	// Average ~4 lineitems per order.
	if e.w.Input.Records() < 3*e.w.NumOrders || e.w.Input.Records() > 6*e.w.NumOrders {
		t.Fatalf("lineitems = %d for %d orders", e.w.Input.Records(), e.w.NumOrders)
	}
	// Orders index holds every order.
	if e.w.Orders.Len() != 1500 {
		t.Fatalf("orders index = %d", e.w.Orders.Len())
	}
	if e.w.Nation.Len() != 25 {
		t.Fatalf("nations = %d", e.w.Nation.Len())
	}
	// LineItems of one order are consecutive (cache locality driver).
	recs := e.w.Input.All()
	lastOrder, seen := "", map[string]bool{}
	for _, r := range recs {
		li, ok := ParseLineItem(r.Value)
		if !ok {
			t.Fatalf("bad lineitem %q", r.Value)
		}
		if li.OrderKey != lastOrder {
			if seen[li.OrderKey] {
				t.Fatalf("order %s not consecutive", li.OrderKey)
			}
			seen[li.OrderKey] = true
			lastOrder = li.OrderKey
		}
	}
}

func TestDupFactor(t *testing.T) {
	plain := setup(t, 0.5, 1)
	dup := setup(t, 0.5, 10)
	if dup.w.Input.Records() != 10*plain.w.Input.Records() {
		t.Fatalf("DUP10 should have 10x records: %d vs %d", dup.w.Input.Records(), plain.w.Input.Records())
	}
	// All duplicated record keys must be distinct.
	seen := map[string]bool{}
	for _, r := range dup.w.Input.All() {
		if seen[r.Key] {
			t.Fatalf("duplicate key %q", r.Key)
		}
		seen[r.Key] = true
	}
}

func TestTotalLookupsSumsStores(t *testing.T) {
	e := setup(t, 0.5, 1)
	e.w.ResetIndexStats()
	if got := e.w.TotalLookups(); got != 0 {
		t.Fatalf("fresh total = %d", got)
	}
	e.w.Orders.Lookup(orderKey(0))
	e.w.Supplier.Lookup(suppKey(0))
	if got := e.w.TotalLookups(); got != 2 {
		t.Fatalf("total = %d, want 2", got)
	}
}

func TestSetupRejectsBadScale(t *testing.T) {
	fs := dfs.New(sim.NewCluster(sim.DefaultConfig()))
	if _, err := Setup(fs, "x", Config{ScaleFactor: 0}); err == nil {
		t.Fatal("zero scale should fail")
	}
}

func TestParseLineItemRoundTrip(t *testing.T) {
	li, ok := ParseLineItem("O0000001|P000002|S00003|10|5000|5|700")
	if !ok {
		t.Fatal("parse failed")
	}
	if li.OrderKey != "O0000001" || li.Quantity != 10 || li.ShipDate != 700 {
		t.Fatalf("parsed %+v", li)
	}
	if li.Revenue() != 4750 {
		t.Fatalf("revenue = %d, want 4750", li.Revenue())
	}
	if _, ok := ParseLineItem("garbage"); ok {
		t.Fatal("garbage should not parse")
	}
}

// runQ3 runs Q3 under one mode/strategy and returns sorted output lines.
func runQ3(t *testing.T, e *env, label string, mode core.Mode, strat core.Strategy, force bool) ([]string, float64) {
	t.Helper()
	conf := e.w.Q3Conf("q3-"+label, mode)
	if force {
		op, ix := e.w.Q3RepartTarget()
		conf.ForceStrategy(op, ix, strat)
	}
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	var out []string
	for _, r := range res.Output.All() {
		out = append(out, r.Key+" "+r.Value)
	}
	sort.Strings(out)
	return out, res.VTime
}

func TestQ3CorrectAcrossStrategies(t *testing.T) {
	e := setup(t, 1, 1)
	base, _ := runQ3(t, e, "base", core.ModeBaseline, 0, false)
	if len(base) == 0 {
		t.Fatal("Q3 produced no results; filters too strict?")
	}

	// Independent reference: compute Q3 directly over the tables.
	want := map[string]int{}
	for _, r := range e.w.Input.All() {
		li, _ := ParseLineItem(r.Value)
		if li.ShipDate <= Q3DateCutoff {
			continue
		}
		ov, _ := e.w.Orders.Lookup(li.OrderKey)
		f := strings.Split(ov[0], "|")
		date, _ := strconv.Atoi(f[1])
		if date >= Q3DateCutoff {
			continue
		}
		cv, _ := e.w.Customer.Lookup(f[0])
		if strings.SplitN(cv[0], "|", 2)[0] != "BUILDING" {
			continue
		}
		want[li.OrderKey+"|"+f[1]+"|"+f[2]] += li.Revenue()
	}
	if len(want) != len(base) {
		t.Fatalf("Q3 groups = %d, reference = %d", len(base), len(want))
	}
	for _, line := range base {
		parts := strings.SplitN(line, " ", 2)
		if got := strconv.Itoa(want[parts[0]]); got != parts[1] {
			t.Fatalf("group %s: got %s, want %s", parts[0], parts[1], got)
		}
	}

	cache, _ := runQ3(t, e, "cache", core.ModeCache, 0, false)
	repart, _ := runQ3(t, e, "repart", core.ModeCustom, core.Repartition, true)
	idxloc, _ := runQ3(t, e, "idxloc", core.ModeCustom, core.IndexLocality, true)
	for label, got := range map[string][]string{"cache": cache, "repart": repart, "idxloc": idxloc} {
		if len(got) != len(base) {
			t.Fatalf("%s output size %d != %d", label, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s differs at %d: %q vs %q", label, i, got[i], base[i])
			}
		}
	}
}

func TestQ3CacheEffective(t *testing.T) {
	e := setup(t, 2, 1)
	e.w.ResetIndexStats()
	runQ3(t, e, "lbase", core.ModeBaseline, 0, false)
	baseLookups := e.w.Orders.Lookups()

	e.w.ResetIndexStats()
	runQ3(t, e, "lcache", core.ModeCache, 0, false)
	cacheLookups := e.w.Orders.Lookups()

	// LineItems of one order are consecutive: the cache should absorb
	// most repeats (~4 rows/order → ~75% hit rate).
	if float64(cacheLookups) > 0.55*float64(baseLookups) {
		t.Fatalf("cache ineffective on Q3 orders: %d vs %d lookups", cacheLookups, baseLookups)
	}
}

func TestQ9CorrectAndSupplierRedundancy(t *testing.T) {
	e := setup(t, 1, 1)
	conf := e.w.Q9Conf("q9-base", core.ModeBaseline)
	e.w.ResetIndexStats()
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.All()
	if len(out) == 0 {
		t.Fatal("Q9 produced no groups")
	}
	// Group keys look like NATION|year.
	for _, r := range out {
		f := strings.Split(r.Key, "|")
		if len(f) != 2 {
			t.Fatalf("bad group key %q", r.Key)
		}
		year, err := strconv.Atoi(f[1])
		if err != nil || year < 1992 || year > 1999 {
			t.Fatalf("bad year in %q", r.Key)
		}
	}
	// Supplier sees one lookup per lineitem under baseline.
	if e.w.Supplier.Lookups() != int64(e.w.Input.Records()) {
		t.Fatalf("supplier lookups = %d, want %d", e.w.Supplier.Lookups(), e.w.Input.Records())
	}

	// Repart on supplier collapses them to ~distinct suppliers.
	e.w.ResetIndexStats()
	conf2 := e.w.Q9Conf("q9-repart", core.ModeCustom)
	op, ix := e.w.Q9RepartTarget()
	conf2.ForceStrategy(op, ix, core.Repartition)
	res2, err := e.rt.Submit(conf2)
	if err != nil {
		t.Fatal(err)
	}
	// One lookup per distinct supplier plus one per chunk boundary that
	// splits a key run (shards larger than a chunk are split for map
	// parallelism); still a tiny fraction of the baseline's one-per-row.
	if got := e.w.Supplier.Lookups(); got > int64(e.w.Input.Records()/20) {
		t.Fatalf("repart supplier lookups = %d, want ≪ %d", got, e.w.Input.Records())
	}

	// Outputs identical.
	a, b := sortedRecords(res.Output), sortedRecords(res2.Output)
	if len(a) != len(b) {
		t.Fatalf("Q9 outputs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Q9 outputs differ at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func sortedRecords(f *dfs.File) []string {
	var out []string
	for _, r := range f.All() {
		out = append(out, r.Key+" "+r.Value)
	}
	sort.Strings(out)
	return out
}

// TestQ9MatchesReferenceJoin recomputes Q9 directly over the tables and
// compares every group's profit with the EFind job's output.
func TestQ9MatchesReferenceJoin(t *testing.T) {
	e := setup(t, 1, 1)
	res, err := e.rt.Submit(e.w.Q9Conf("q9-ref-run", core.ModeBaseline))
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]int{}
	for _, r := range e.w.Input.All() {
		li, ok := ParseLineItem(r.Value)
		if !ok {
			t.Fatalf("bad lineitem %q", r.Value)
		}
		sup, _ := e.w.Supplier.Lookup(li.SuppKey)
		nationKey := strings.SplitN(sup[0], "|", 2)[0]
		part, _ := e.w.Part.Lookup(li.PartKey)
		name := strings.SplitN(part[0], "|", 2)[0]
		if !strings.Contains(name, "green") {
			continue
		}
		ps, _ := e.w.PartSupp.Lookup(li.PartKey + ":" + li.SuppKey)
		cost, _ := strconv.Atoi(ps[0])
		ord, _ := e.w.Orders.Lookup(li.OrderKey)
		date, _ := strconv.Atoi(strings.Split(ord[0], "|")[1])
		nation, _ := e.w.Nation.Lookup(nationKey)
		group := nation[0] + "|" + strconv.Itoa(1992+date/365)
		want[group] += li.Revenue() - cost*li.Quantity
	}

	got := map[string]int{}
	for _, r := range res.Output.All() {
		n, err := strconv.Atoi(r.Value)
		if err != nil {
			t.Fatalf("bad amount %q", r.Value)
		}
		got[r.Key] = n
	}
	if len(got) != len(want) {
		t.Fatalf("groups: got %d, want %d", len(got), len(want))
	}
	for g, amount := range want {
		if got[g] != amount {
			t.Fatalf("group %s: got %d, want %d", g, got[g], amount)
		}
	}
}

func TestQ9OptimizedPicksShuffleForSupplier(t *testing.T) {
	// Preserve the paper's structural property: distinct suppliers well
	// above the 1024-entry cache, with expensive lookups relative to the
	// shuffle, so the supplier cache is useless and re-partitioning wins.
	c := DefaultConfig()
	c.ScaleFactor = 4
	c.SupplierScale = 75 // 3000 suppliers ≫ 1024-entry cache
	c.ServeTime = 0.001
	e := setupCfg(t, c)
	statsConf := e.w.Q9Conf("q9-stats", core.ModeBaseline)
	if err := e.rt.CollectStats(statsConf); err != nil {
		t.Fatal(err)
	}
	st := e.rt.Catalog.Get("q9-supplier")
	if st == nil {
		t.Fatal("no supplier stats")
	}
	is := st.Index[e.w.Supplier.Name()]
	if is.Theta < 3 {
		t.Fatalf("supplier Θ = %g, expected several lineitems per supplier", is.Theta)
	}
	if is.R < 0.3 {
		t.Fatalf("supplier cache miss ratio R = %g; should be high with 3000 suppliers vs 1024 cache entries", is.R)
	}

	conf := e.w.Q9Conf("q9-opt", core.ModeOptimized)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	var supplierPlan *core.OperatorPlan
	for i := range res.Plan.Head {
		if res.Plan.Head[i].Op.Name() == "q9-supplier" {
			supplierPlan = &res.Plan.Head[i]
		}
	}
	if supplierPlan == nil {
		t.Fatal("supplier plan missing")
	}
	s := supplierPlan.Decisions[0].Strategy
	if s != core.Repartition && s != core.IndexLocality {
		t.Fatalf("optimizer chose %v for supplier; expected a shuffle strategy (plan %v)", s, res.Plan)
	}
}
