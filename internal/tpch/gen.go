// Package tpch generates a TPC-H-shaped data set and composes the paper's
// Q3 and Q9 experiments as EFind index nested-loop joins: the main input
// is the LineItem table, and indices are built on the remaining tables
// (Orders, Customer, Supplier, Part, PartSupp, Nation), following the same
// join orders as MySQL (§5.1).
//
// The structural properties that drive the experiments are preserved:
// LineItem rows of one order are stored consecutively (so Q3's Orders
// lookups have high cache locality), supplier keys are assigned randomly
// (so Q9's Supplier lookups have none), and DupFactor concatenates copies
// of LineItem (TPC-H DUP10's cross-machine redundancy).
package tpch

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"efind/internal/dfs"
	"efind/internal/ixclient"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
)

// Config scales the data set. ScaleFactor 1 corresponds to 1/1000 of
// TPC-H's row counts per SF unit, keeping all inter-table ratios: 1500
// orders, ~6000 lineitems, 150 customers, 10 suppliers, 200 parts, 800
// partsupps, 25 nations.
type Config struct {
	ScaleFactor float64
	// DupFactor concatenates this many copies of LineItem (1 = plain,
	// 10 = the paper's DUP10).
	DupFactor int
	// ServeTime is the per-lookup serve time of the table indices.
	ServeTime float64
	// Partitions and Replicas configure each index store.
	Partitions, Replicas int
	// SupplierScale multiplies the supplier row count (default 1). At
	// full TPC-H SF10 the paper has 100k suppliers — two orders of
	// magnitude above the 1024-entry lookup cache, which is what makes
	// Q9's cache useless. Simulation-scale runs raise this multiplier to
	// keep distinct suppliers above the cache capacity, preserving that
	// structural property rather than the absolute row ratio.
	SupplierScale int
	Seed          int64
}

// DefaultConfig mirrors the paper's SF10 run at simulation scale.
func DefaultConfig() Config {
	return Config{
		ScaleFactor: 10,
		DupFactor:   1,
		ServeTime:   0.001,
		Partitions:  32,
		Replicas:    3,
		Seed:        1234,
	}
}

// Segments and part name words used by the filters.
var (
	segments  = []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}
	colors    = []string{"green", "red", "blue", "ivory", "salmon", "peach", "linen", "navy"}
	nationSet = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
)

// Date encoding: days since 1992-01-01; the data spans 7 years like TPC-H.
const dateRange = 7 * 365

// Q3DateCutoff is the o_orderdate < cutoff / l_shipdate > cutoff filter
// date (mid-range, like TPC-H's 1995-03-15).
const Q3DateCutoff = dateRange / 2

// Workload is a generated data set: the LineItem input file plus index
// stores over the other tables.
type Workload struct {
	Input    *dfs.File
	Orders   *kvstore.Store
	Customer *kvstore.Store
	Supplier *kvstore.Store
	Part     *kvstore.Store
	PartSupp *kvstore.Store
	Nation   *kvstore.Store

	// Counts for tests.
	NumOrders, NumLineItems, NumCustomers, NumSuppliers, NumParts int
}

// Setup generates all tables, loads the index stores, and writes the
// LineItem file (duplicated DupFactor times).
func Setup(fs *dfs.FS, name string, cfg Config) (*Workload, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %g", cfg.ScaleFactor)
	}
	if cfg.DupFactor < 1 {
		cfg.DupFactor = 1
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = 32
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cluster := fs.Cluster()

	if cfg.SupplierScale < 1 {
		cfg.SupplierScale = 1
	}
	nOrders := int(1500 * cfg.ScaleFactor)
	nCustomers := int(150 * cfg.ScaleFactor)
	nSuppliers := int(10*cfg.ScaleFactor) * cfg.SupplierScale
	nParts := int(200 * cfg.ScaleFactor)
	if nCustomers < 1 || nSuppliers < 1 || nParts < 1 || nOrders < 1 {
		return nil, fmt.Errorf("tpch: scale factor %g too small", cfg.ScaleFactor)
	}

	w := &Workload{
		Orders:       kvstore.NewHash(cluster, "orders", cfg.Partitions, cfg.Replicas, cfg.ServeTime),
		Customer:     kvstore.NewHash(cluster, "customer", cfg.Partitions, cfg.Replicas, cfg.ServeTime),
		Supplier:     kvstore.NewHash(cluster, "supplier", cfg.Partitions, cfg.Replicas, cfg.ServeTime),
		Part:         kvstore.NewHash(cluster, "part", cfg.Partitions, cfg.Replicas, cfg.ServeTime),
		PartSupp:     kvstore.NewHash(cluster, "partsupp", cfg.Partitions, cfg.Replicas, cfg.ServeTime),
		Nation:       kvstore.NewHash(cluster, "nation", cfg.Partitions, cfg.Replicas, cfg.ServeTime),
		NumOrders:    nOrders,
		NumCustomers: nCustomers,
		NumSuppliers: nSuppliers,
		NumParts:     nParts,
	}

	// Nation.
	for i, n := range nationSet {
		w.Nation.Put(strconv.Itoa(i), n)
	}
	// Customer: custkey → mktsegment|nationkey.
	for c := 0; c < nCustomers; c++ {
		w.Customer.Put(custKey(c), segments[rng.Intn(len(segments))]+"|"+strconv.Itoa(rng.Intn(len(nationSet))))
	}
	// Supplier: suppkey → nationkey|balance.
	for s := 0; s < nSuppliers; s++ {
		w.Supplier.Put(suppKey(s), fmt.Sprintf("%d|%d", rng.Intn(len(nationSet)), rng.Intn(10000)))
	}
	// Part: partkey → name|retailprice. Name embeds a color word for the
	// Q9 LIKE filter.
	for p := 0; p < nParts; p++ {
		color := colors[rng.Intn(len(colors))]
		w.Part.Put(partKey(p), fmt.Sprintf("%s polished %s %d|%d", color, "steel", p, 900+rng.Intn(1000)))
	}

	// Orders and LineItem. LineItem rows of an order stay consecutive.
	// PartSupp dedup probes go through the index client like any runtime
	// lookup; the generator's throwaway context absorbs the charges, and
	// the store's stats are reset below before any experiment runs.
	psClient := ixclient.New(w.PartSupp, ixclient.Options{Op: "tpch-gen"})
	genCtx := mapreduce.NewTaskContext(cluster, 0, 0, mapreduce.MapTask)
	var lineitems []dfs.Record
	line := 0
	for o := 0; o < nOrders; o++ {
		orderDate := rng.Intn(dateRange)
		cust := rng.Intn(nCustomers)
		prio := rng.Intn(5)
		w.Orders.Put(orderKey(o), fmt.Sprintf("%s|%d|%d", custKey(cust), orderDate, prio))
		nl := 1 + rng.Intn(7) // TPC-H: 1–7 lines per order, avg 4
		for l := 0; l < nl; l++ {
			part := rng.Intn(nParts)
			supp := rng.Intn(nSuppliers)
			// PartSupp: composite key partkey:suppkey → supplycost.
			psk := partSuppKey(part, supp)
			if v := psClient.Access(genCtx, psk); len(v) == 0 {
				w.PartSupp.Put(psk, strconv.Itoa(100+rng.Intn(900)))
			}
			shipDate := orderDate + 1 + rng.Intn(120)
			qty := 1 + rng.Intn(50)
			price := 1000 + rng.Intn(90000)
			disc := rng.Intn(11) // percent
			lineitems = append(lineitems, dfs.Record{
				Key: fmt.Sprintf("%s.%d", orderKey(o), l),
				Value: strings.Join([]string{
					orderKey(o), partKey(part), suppKey(supp),
					strconv.Itoa(qty), strconv.Itoa(price), strconv.Itoa(disc), strconv.Itoa(shipDate),
				}, "|"),
			})
			line++
		}
	}
	w.PartSupp.ResetStats() // the generator probed it; clear before runs
	w.NumLineItems = line * cfg.DupFactor

	// DUPn: concatenate n copies (copy c of a row gets a distinct key so
	// reducers see them all).
	var all []dfs.Record
	for c := 0; c < cfg.DupFactor; c++ {
		for _, r := range lineitems {
			key := r.Key
			if c > 0 {
				key = fmt.Sprintf("%s#%d", r.Key, c)
			}
			all = append(all, dfs.Record{Key: key, Value: r.Value})
		}
	}
	input, err := fs.Create(name, all)
	if err != nil {
		return nil, err
	}
	w.Input = input
	return w, nil
}

// Key formats.
func orderKey(o int) string { return fmt.Sprintf("O%07d", o) }
func custKey(c int) string  { return fmt.Sprintf("C%06d", c) }
func suppKey(s int) string  { return fmt.Sprintf("S%05d", s) }
func partKey(p int) string  { return fmt.Sprintf("P%06d", p) }
func partSuppKey(p, s int) string {
	return partKey(p) + ":" + suppKey(s)
}

// LineItem field accessors over the stored value.
type LineItem struct {
	OrderKey, PartKey, SuppKey      string
	Quantity, Price, Disc, ShipDate int
}

// ParseLineItem decodes a LineItem record value.
func ParseLineItem(v string) (LineItem, bool) {
	f := strings.Split(v, "|")
	if len(f) != 7 {
		return LineItem{}, false
	}
	qty, e1 := strconv.Atoi(f[3])
	price, e2 := strconv.Atoi(f[4])
	disc, e3 := strconv.Atoi(f[5])
	ship, e4 := strconv.Atoi(f[6])
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
		return LineItem{}, false
	}
	return LineItem{
		OrderKey: f[0], PartKey: f[1], SuppKey: f[2],
		Quantity: qty, Price: price, Disc: disc, ShipDate: ship,
	}, true
}

// Revenue is l_extendedprice·(1−l_discount) in integer cents-ish units.
func (l LineItem) Revenue() int { return l.Price * (100 - l.Disc) / 100 }

// ResetIndexStats clears lookup counters on all stores between runs.
func (w *Workload) ResetIndexStats() {
	for _, s := range []*kvstore.Store{w.Orders, w.Customer, w.Supplier, w.Part, w.PartSupp, w.Nation} {
		s.ResetStats()
	}
}

// TotalLookups sums lookups across all index stores.
func (w *Workload) TotalLookups() int64 {
	var total int64
	for _, s := range []*kvstore.Store{w.Orders, w.Customer, w.Supplier, w.Part, w.PartSupp, w.Nation} {
		total += s.Lookups()
	}
	return total
}
