package tpch

import (
	"fmt"
	"strconv"
	"strings"

	"efind/internal/core"
	"efind/internal/mapreduce"
)

// field appends a lookup result field to a record value.
func firstValue(results []core.KeyResult) (string, bool) {
	if len(results) == 0 || len(results[0].Values) == 0 {
		return "", false
	}
	return results[0].Values[0], true
}

// Q3Conf composes TPC-H Q3 as an EFind job: LineItem (main input) joins
// Orders then Customer via index lookups, following MySQL's join order;
// Map emits (l_orderkey, o_orderdate, o_shippriority) → revenue and Reduce
// sums. Filters: l_shipdate > cutoff, o_orderdate < cutoff, c_mktsegment =
// 'BUILDING'.
func (w *Workload) Q3Conf(name string, mode core.Mode) *core.IndexJobConf {
	ordersOp := core.NewOperator("q3-orders",
		func(in core.Pair) core.PreResult {
			li, ok := ParseLineItem(in.Value)
			if !ok || li.ShipDate <= Q3DateCutoff {
				return core.PreResult{Pair: in} // filtered: no lookup
			}
			return core.PreResult{Pair: in, Keys: [][]string{{li.OrderKey}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			li, ok := ParseLineItem(pair.Value)
			if !ok || li.ShipDate <= Q3DateCutoff {
				return
			}
			order, ok := firstValue(results[0])
			if !ok {
				return
			}
			f := strings.Split(order, "|") // custkey|orderdate|prio
			if len(f) != 3 {
				return
			}
			orderDate, err := strconv.Atoi(f[1])
			if err != nil || orderDate >= Q3DateCutoff {
				return
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "|" + f[0] + "|" + f[1] + "|" + f[2]})
		})
	ordersOp.AddIndex(w.Orders)

	customerOp := core.NewOperator("q3-customer",
		func(in core.Pair) core.PreResult {
			f := strings.Split(in.Value, "|")
			if len(f) != 10 {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{f[7]}}} // custkey
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			cust, ok := firstValue(results[0])
			if !ok {
				return
			}
			if seg := strings.SplitN(cust, "|", 2)[0]; seg != "BUILDING" {
				return
			}
			emit(pair)
		})
	customerOp.AddIndex(w.Customer)

	conf := &core.IndexJobConf{
		Name:  name,
		Input: w.Input,
		Mode:  mode,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			f := strings.Split(in.Value, "|")
			if len(f) != 10 {
				return
			}
			li, ok := ParseLineItem(strings.Join(f[:7], "|"))
			if !ok {
				return
			}
			emit(core.Pair{
				Key:   f[0] + "|" + f[8] + "|" + f[9], // orderkey|orderdate|prio
				Value: strconv.Itoa(li.Revenue()),
			})
		},
		Reducer: sumReducer,
	}
	conf.AddHeadIndexOperator(ordersOp)
	conf.AddHeadIndexOperator(customerOp)
	return conf
}

// Q3RepartTarget names the operator/index pair the paper hand-picks for
// Q3's forced re-partitioning runs ("the index with the most benefits":
// Orders).
func (w *Workload) Q3RepartTarget() (op, ix string) { return "q3-orders", w.Orders.Name() }

// Q9Conf composes TPC-H Q9: LineItem joins Supplier, Part (with the
// p_name LIKE '%green%' filter), PartSupp, Orders, and finally Nation, in
// MySQL's join order; Map emits (nation, year) → profit amount and Reduce
// sums.
func (w *Workload) Q9Conf(name string, mode core.Mode) *core.IndexJobConf {
	supplierOp := core.NewOperator("q9-supplier",
		func(in core.Pair) core.PreResult {
			li, ok := ParseLineItem(in.Value)
			if !ok {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{li.SuppKey}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			supp, ok := firstValue(results[0])
			if !ok {
				return
			}
			nation := strings.SplitN(supp, "|", 2)[0]
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "|" + nation})
		})
	supplierOp.AddIndex(w.Supplier)

	partOp := core.NewOperator("q9-part",
		func(in core.Pair) core.PreResult {
			f := strings.Split(in.Value, "|")
			if len(f) != 8 {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{f[1]}}} // partkey
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			part, ok := firstValue(results[0])
			if !ok {
				return
			}
			name := strings.SplitN(part, "|", 2)[0]
			if !strings.Contains(name, "green") {
				return
			}
			emit(pair)
		})
	partOp.AddIndex(w.Part)

	partSuppOp := core.NewOperator("q9-partsupp",
		func(in core.Pair) core.PreResult {
			f := strings.Split(in.Value, "|")
			if len(f) != 8 {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{f[1] + ":" + f[2]}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			cost, ok := firstValue(results[0])
			if !ok {
				return
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "|" + cost})
		})
	partSuppOp.AddIndex(w.PartSupp)

	ordersOp := core.NewOperator("q9-orders",
		func(in core.Pair) core.PreResult {
			f := strings.Split(in.Value, "|")
			if len(f) != 9 {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{f[0]}}} // orderkey
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			order, ok := firstValue(results[0])
			if !ok {
				return
			}
			f := strings.Split(order, "|")
			if len(f) != 3 {
				return
			}
			date, err := strconv.Atoi(f[1])
			if err != nil {
				return
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "|" + strconv.Itoa(1992+date/365)})
		})
	ordersOp.AddIndex(w.Orders)

	nationOp := core.NewOperator("q9-nation",
		func(in core.Pair) core.PreResult {
			f := strings.Split(in.Value, "|")
			if len(f) != 10 {
				return core.PreResult{Pair: in}
			}
			return core.PreResult{Pair: in, Keys: [][]string{{f[7]}}} // nationkey
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			nation, ok := firstValue(results[0])
			if !ok {
				return
			}
			emit(core.Pair{Key: pair.Key, Value: pair.Value + "|" + nation})
		})
	nationOp.AddIndex(w.Nation)

	conf := &core.IndexJobConf{
		Name:  name,
		Input: w.Input,
		Mode:  mode,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			f := strings.Split(in.Value, "|")
			if len(f) != 11 {
				return
			}
			li, ok := ParseLineItem(strings.Join(f[:7], "|"))
			if !ok {
				return
			}
			cost, err := strconv.Atoi(f[8])
			if err != nil {
				return
			}
			amount := li.Revenue() - cost*li.Quantity
			emit(core.Pair{Key: f[10] + "|" + f[9], Value: strconv.Itoa(amount)})
		},
		Reducer: sumReducer,
	}
	conf.AddHeadIndexOperator(supplierOp)
	conf.AddHeadIndexOperator(partOp)
	conf.AddHeadIndexOperator(partSuppOp)
	conf.AddHeadIndexOperator(ordersOp)
	conf.AddHeadIndexOperator(nationOp)
	return conf
}

// Q9RepartTarget names the operator/index pair the paper hand-picks for
// Q9's forced re-partitioning runs (Supplier).
func (w *Workload) Q9RepartTarget() (op, ix string) { return "q9-supplier", w.Supplier.Name() }

// sumReducer sums integer values per group.
func sumReducer(_ *mapreduce.TaskContext, key string, values []string, emit core.Emit) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		total += n
	}
	emit(core.Pair{Key: key, Value: fmt.Sprintf("%d", total)})
}
