package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"efind/internal/chaos"
	"efind/internal/vfs"
	"efind/internal/wal"
)

// payloads the tests append: varied lengths, including empty and binary.
func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		switch i % 4 {
		case 0:
			out[i] = []byte(fmt.Sprintf("record-%04d", i))
		case 1:
			out[i] = nil // empty payload is legal
		case 2:
			out[i] = bytes.Repeat([]byte{byte(i)}, 1+i%97)
		default:
			out[i] = []byte{0, 0xff, byte(i), '\n'}
		}
	}
	return out
}

func appendAll(t *testing.T, fs vfs.FS, dir string, payloads [][]byte, sync bool) {
	t.Helper()
	l, err := wal.Open(fs, dir, sync)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if l.Records() != len(payloads) {
		t.Fatalf("Records() = %d, want %d", l.Records(), len(payloads))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func checkReplay(t *testing.T, fs vfs.FS, dir string, want [][]byte, wantTorn bool) []wal.Record {
	t.Helper()
	recs, torn, err := wal.Replay(fs, dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if torn != wantTorn {
		t.Fatalf("Replay torn = %v, want %v", torn, wantTorn)
	}
	if len(recs) != len(want) {
		t.Fatalf("Replay returned %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d payload = %q, want %q", i, r.Payload, want[i])
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")
	want := testPayloads(25)
	appendAll(t, fs, dir, want, true)
	checkReplay(t, fs, dir, want, false)
}

func TestSegmentRotation(t *testing.T) {
	// Each Open starts a fresh segment; Replay stitches them in order
	// and never appends to a prior segment.
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")
	want := testPayloads(30)
	appendAll(t, fs, dir, want[:10], false)
	appendAll(t, fs, dir, want[10:17], false)
	appendAll(t, fs, dir, want[17:], false)
	checkReplay(t, fs, dir, want, false)

	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("expected 3 segments, found %v", names)
	}
}

func TestTornTailToleratedOnFinalSegment(t *testing.T) {
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")
	want := testPayloads(8)
	appendAll(t, fs, dir, want, false)

	// Tear the last segment mid-frame.
	segs, _ := fs.ReadDir(dir)
	last := filepath.Join(dir, segs[len(segs)-1])
	data, _ := fs.ReadFile(last)
	torn := append(append([]byte{}, data...), 0x7f, 0x01, 0x02) // length byte + partial payload
	if err := os.WriteFile(last, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	checkReplay(t, fs, dir, want, true)

	// Repair truncates exactly the damage, then replay is clean.
	discarded, err := wal.Repair(fs, dir)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if discarded != 3 {
		t.Fatalf("Repair discarded %d bytes, want 3", discarded)
	}
	checkReplay(t, fs, dir, want, false)

	// Repair on a clean journal is a no-op.
	if d, err := wal.Repair(fs, dir); err != nil || d != 0 {
		t.Fatalf("second Repair = (%d, %v), want (0, nil)", d, err)
	}
}

func TestDamageMidStreamIsCorruption(t *testing.T) {
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")
	want := testPayloads(6)
	appendAll(t, fs, dir, want[:3], false)
	appendAll(t, fs, dir, want[3:], false)

	// Damage the FIRST segment: a crash cannot produce that, so replay
	// must refuse rather than silently drop records.
	segs, _ := fs.ReadDir(dir)
	first := filepath.Join(dir, segs[0])
	data, _ := fs.ReadFile(first)
	data[len(data)-1] ^= 0xff // flip a CRC byte
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := wal.Replay(fs, dir)
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Replay error = %v, want ErrCorrupt", err)
	}
}

func TestCrashImageSweep(t *testing.T) {
	// Every prefix of the record stream must be reconstructible as a
	// crash image, with and without a torn partial frame at the cut.
	fs := vfs.OS{}
	root := t.TempDir()
	src := filepath.Join(root, "src")
	want := testPayloads(12)
	appendAll(t, fs, src, want[:5], false)
	appendAll(t, fs, src, want[5:], false)
	// A non-segment file (checkpoint stand-in) must copy verbatim.
	if err := os.WriteFile(filepath.Join(src, "ckpt-000001.fst"), []byte("snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	for k := 0; k <= len(want); k++ {
		for _, tornExtra := range [][]byte{nil, {0x09, 'p', 'a', 'r'}} {
			dst := filepath.Join(root, fmt.Sprintf("crash-%d-%v", k, tornExtra != nil))
			if err := wal.CrashImage(fs, src, dst, k, tornExtra); err != nil {
				t.Fatalf("CrashImage(k=%d): %v", k, err)
			}
			checkReplay(t, fs, dst, want[:k], tornExtra != nil)
			got, err := fs.ReadFile(filepath.Join(dst, "ckpt-000001.fst"))
			if err != nil || string(got) != "snapshot" {
				t.Fatalf("crash image dropped the checkpoint file: %q, %v", got, err)
			}
		}
	}

	// Asking for more records than exist is an explicit error.
	if err := wal.CrashImage(fs, src, filepath.Join(root, "over"), len(want)+1, nil); err == nil {
		t.Fatal("CrashImage beyond the record count should fail")
	}
}

func TestPrune(t *testing.T) {
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")
	want := testPayloads(15)
	appendAll(t, fs, dir, want[:5], false)
	appendAll(t, fs, dir, want[5:10], false)
	appendAll(t, fs, dir, want[10:], false)

	// keepFrom 5: the first segment (records 0-4) is droppable.
	removed, err := wal.Prune(fs, dir, 5)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if len(removed) != 1 {
		t.Fatalf("Prune removed %v, want one segment", removed)
	}
	checkReplay(t, fs, dir, want[5:], false)

	// The final segment is never pruned even when fully below keepFrom.
	removed, err = wal.Prune(fs, dir, 1000)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if len(removed) != 1 {
		t.Fatalf("second Prune removed %v, want exactly the middle segment", removed)
	}
	checkReplay(t, fs, dir, want[10:], false)
}

func TestAppendFaultsAreSticky(t *testing.T) {
	base := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")

	// Third write to a segment file tears; the log must stick the error
	// and the journal must replay its pre-fault prefix (plus torn tail).
	ffs := chaos.NewFaultFS(base, chaos.FileFault{Kind: chaos.TornWrite, Match: ".wal", Nth: 3})
	l, err := wal.Open(ffs, dir, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := testPayloads(6)
	var firstErr error
	appended := 0
	for _, p := range want {
		if err := l.Append(p); err != nil {
			firstErr = err
			break
		}
		appended++
	}
	if firstErr == nil || !errors.Is(firstErr, chaos.ErrIO) {
		t.Fatalf("expected injected ErrIO, got %v after %d appends", firstErr, appended)
	}
	if appended != 2 {
		t.Fatalf("fault fired after %d appends, want 2", appended)
	}
	// Sticky: later appends fail without touching the file.
	if err := l.Append([]byte("after")); !errors.Is(err, chaos.ErrIO) {
		t.Fatalf("append after fault = %v, want sticky ErrIO", err)
	}
	if err := l.Err(); !errors.Is(err, chaos.ErrIO) {
		t.Fatalf("Err() = %v, want sticky ErrIO", err)
	}
	l.Close()

	recs, torn, err := wal.Replay(base, dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !torn {
		t.Fatal("torn write should leave a torn tail")
	}
	if len(recs) != appended {
		t.Fatalf("replayed %d records, want the %d pre-fault ones", len(recs), appended)
	}

	// ENOSPC writes nothing: the journal stays clean.
	dir2 := filepath.Join(t.TempDir(), "wal2")
	ffs2 := chaos.NewFaultFS(base, chaos.FileFault{Kind: chaos.NoSpace, Match: ".wal", Nth: 2})
	l2, err := wal.Open(ffs2, dir2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("doomed")); !errors.Is(err, chaos.ErrNoSpace) {
		t.Fatalf("append = %v, want ErrNoSpace", err)
	}
	l2.Close()
	recs2, torn2, err := wal.Replay(base, dir2)
	if err != nil || torn2 || len(recs2) != 1 {
		t.Fatalf("after ENOSPC: recs=%d torn=%v err=%v, want 1/false/nil", len(recs2), torn2, err)
	}
}

func TestCountRecords(t *testing.T) {
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "wal")
	appendAll(t, fs, dir, testPayloads(7), false)
	n, err := wal.CountRecords(fs, dir)
	if err != nil || n != 7 {
		t.Fatalf("CountRecords = (%d, %v), want (7, nil)", n, err)
	}
}

func TestOpenOnEmptyDirectory(t *testing.T) {
	fs := vfs.OS{}
	dir := filepath.Join(t.TempDir(), "fresh", "nested")
	recs, torn, err := wal.Replay(fs, dir)
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("Replay of missing dir = (%d, %v, %v), want empty", len(recs), torn, err)
	}
	appendAll(t, fs, dir, testPayloads(1), true)
	checkReplay(t, fs, dir, testPayloads(1), false)
}
