// Package wal is an append-only write-ahead journal in the FMC1 spirit:
// uvarint-framed, CRC32-checksummed records in numbered segment files,
// with atomic segment repair via temp+rename. The job service journals
// every scheduling decision through it; recovery replays the segments,
// tolerating exactly the damage a crash can cause (a torn tail on the
// final segment) and rejecting everything else as corruption.
//
// Frame layout (all integers little-endian where fixed-width):
//
//	uvarint  payload length L
//	L bytes  payload (opaque to this package)
//	4 bytes  CRC32 (IEEE) of the payload
//
// Segment files are named seg-000001.wal, seg-000002.wal, ... and are
// strictly append-only: a Log opened over an existing directory starts a
// fresh segment rather than appending to the old ones, so a previously
// torn tail can be repaired (truncated to its valid prefix) without ever
// rewriting bytes a prior process considered durable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"efind/internal/vfs"
)

// ErrCorrupt marks journal damage a crash cannot explain: a bad frame
// in the middle of a segment, or in any segment other than the last.
var ErrCorrupt = errors.New("wal: journal corrupt")

// segPrefix and segSuffix frame the segment file names.
const (
	segPrefix = "seg-"
	segSuffix = ".wal"
)

// maxRecordBytes bounds one record's payload; larger frames are treated
// as corruption rather than allocated.
const maxRecordBytes = 16 << 20

// segName renders the file name of segment n.
func segName(n int) string { return fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix) }

// segNumber parses a segment file name, returning -1 for other files.
func segNumber(name string) int {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return -1
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n := 0
	for i := 0; i < len(mid); i++ {
		if mid[i] < '0' || mid[i] > '9' {
			return -1
		}
		n = n*10 + int(mid[i]-'0')
	}
	if len(mid) == 0 {
		return -1
	}
	return n
}

// segments lists the directory's segment file names in segment order.
func segments(fs vfs.FS, dir string) ([]string, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []string
	for _, n := range names {
		if segNumber(n) >= 0 {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segNumber(segs[i]) < segNumber(segs[j]) })
	return segs, nil
}

// Record is one replayed journal record.
type Record struct {
	// Segment is the segment file the record was read from.
	Segment string
	// Payload is the record body, exactly as appended.
	Payload []byte
}

// AppendFrame appends one framed record to buf and returns the extended
// buffer. Exposed so tests and fuzz corpora can build segment images.
func AppendFrame(buf, payload []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	buf = append(buf, lenBuf[:n]...)
	buf = append(buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

// decodeSegment splits one segment's bytes into record payloads. It
// returns the payloads decoded before the first damaged frame, the byte
// offset where decoding stopped, and whether trailing damage exists
// (torn == true when consumed < len(data)).
func decodeSegment(data []byte) (payloads [][]byte, consumed int, torn bool) {
	off := 0
	for off < len(data) {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 || l > maxRecordBytes {
			return payloads, off, true
		}
		end := off + n + int(l) + 4
		if end > len(data) {
			return payloads, off, true
		}
		payload := data[off+n : off+n+int(l)]
		want := binary.LittleEndian.Uint32(data[off+n+int(l) : end])
		if crc32.ChecksumIEEE(payload) != want {
			return payloads, off, true
		}
		payloads = append(payloads, payload)
		off = end
	}
	return payloads, off, false
}

// Replay reads every record in the journal directory, in order. A torn
// tail — trailing bytes that do not decode as complete, checksummed
// frames — is tolerated only on the final segment (that is the one
// damage profile a crash mid-append can produce) and reported via torn;
// the same damage on an earlier segment returns ErrCorrupt.
func Replay(fs vfs.FS, dir string) (recs []Record, torn bool, err error) {
	segs, err := segments(fs, dir)
	if err != nil {
		return nil, false, err
	}
	for i, name := range segs {
		data, err := fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, false, err
		}
		payloads, consumed, damaged := decodeSegment(data)
		if damaged && i != len(segs)-1 {
			return nil, false, fmt.Errorf("%w: segment %s has %d damaged trailing bytes but is not the final segment",
				ErrCorrupt, name, len(data)-consumed)
		}
		for _, p := range payloads {
			recs = append(recs, Record{Segment: name, Payload: p})
		}
		torn = damaged
	}
	return recs, torn, nil
}

// Repair truncates a torn final segment to its valid frame prefix, via
// temp+rename so the repair itself is crash-atomic. Undamaged journals
// are left untouched. It returns the number of bytes discarded.
func Repair(fs vfs.FS, dir string) (discarded int, err error) {
	segs, err := segments(fs, dir)
	if err != nil || len(segs) == 0 {
		return 0, err
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	data, err := fs.ReadFile(last)
	if err != nil {
		return 0, err
	}
	_, consumed, damaged := decodeSegment(data)
	if !damaged {
		return 0, nil
	}
	if err := vfs.WriteFileAtomic(fs, last, data[:consumed], true); err != nil {
		return 0, err
	}
	return len(data) - consumed, nil
}

// Log is an open journal: one append-only segment file receiving framed
// records. Not safe for concurrent use; the job service appends only
// from its scheduler loop.
type Log struct {
	fs   vfs.FS
	dir  string
	f    vfs.File
	sync bool
	err  error // sticky first append failure
	n    int   // records appended to this Log
}

// Open creates the journal directory if needed and starts a fresh
// segment after any existing ones. Existing segments are never appended
// to — Replay sees old and new segments as one stream.
func Open(fs vfs.FS, dir string, sync bool) (*Log, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	segs, err := segments(fs, dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		next = segNumber(segs[len(segs)-1]) + 1
	}
	f, err := fs.OpenAppend(filepath.Join(dir, segName(next)))
	if err != nil {
		return nil, err
	}
	return &Log{fs: fs, dir: dir, f: f, sync: sync}, nil
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Records returns how many records this Log has appended successfully.
func (l *Log) Records() int { return l.n }

// Err returns the sticky error of the first failed append, or nil.
func (l *Log) Err() error { return l.err }

// Append writes one framed record. The first failure is sticky: later
// appends return it without touching the file, so a journal never holds
// records logically after a hole.
func (l *Log) Append(payload []byte) error {
	if l.err != nil {
		return l.err
	}
	frame := AppendFrame(nil, payload)
	if _, err := l.f.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			return l.err
		}
	}
	l.n++
	return nil
}

// Close flushes and closes the current segment.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Prune removes every segment before the one containing record index
// keepFrom (0-based over the Replay order), plus any file named in
// keepFiles staying untouched. It is opt-in — recovery sweeps rely on
// the full history by default — and never touches the final segment.
func Prune(fs vfs.FS, dir string, keepFrom int) (removed []string, err error) {
	segs, err := segments(fs, dir)
	if err != nil || len(segs) == 0 {
		return nil, err
	}
	seen := 0
	for i, name := range segs[:len(segs)-1] {
		data, err := fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return removed, err
		}
		payloads, _, _ := decodeSegment(data)
		seen += len(payloads)
		if seen > keepFrom {
			break
		}
		// Every record of this segment is below keepFrom and the next
		// segment exists: safe to drop.
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed = append(removed, segs[i])
	}
	return removed, nil
}

// CrashImage copies the journal directory src into dst as it would look
// had the process crashed immediately after appending record number
// keepRecords (counting from 1 over the Replay order): later records
// vanish, and tornExtra bytes — typically a partial frame — are
// appended to the truncation point to model a write torn mid-frame.
// Non-segment files (checkpoints) are copied verbatim: they were
// written atomically, so at any crash point they exist fully or not at
// all, and replay ignores checkpoints the kept records never name.
func CrashImage(fs vfs.FS, src, dst string, keepRecords int, tornExtra []byte) error {
	if err := fs.MkdirAll(dst); err != nil {
		return err
	}
	names, err := fs.ReadDir(src)
	if err != nil {
		return err
	}
	kept := 0
	wroteTorn := false
	for _, name := range names {
		data, err := fs.ReadFile(filepath.Join(src, name))
		if err != nil {
			return err
		}
		if segNumber(name) < 0 {
			if err := vfs.WriteFileAtomic(fs, filepath.Join(dst, name), data, false); err != nil {
				return err
			}
			continue
		}
		if kept >= keepRecords {
			// The whole segment is beyond the crash point. A cut at record
			// zero still tears the very first segment.
			if !wroteTorn {
				if err := vfs.WriteFileAtomic(fs, filepath.Join(dst, name), tornExtra, false); err != nil {
					return err
				}
				wroteTorn = true
			}
			continue
		}
		payloads, _, _ := decodeSegment(data)
		var out []byte
		for _, p := range payloads {
			if kept >= keepRecords {
				break
			}
			out = AppendFrame(out, p)
			kept++
		}
		if kept >= keepRecords && !wroteTorn {
			out = append(out, tornExtra...)
			wroteTorn = true
		}
		if err := vfs.WriteFileAtomic(fs, filepath.Join(dst, name), out, false); err != nil {
			return err
		}
	}
	if kept < keepRecords {
		return fmt.Errorf("wal: crash image wants %d records but %s only holds %d", keepRecords, src, kept)
	}
	return nil
}

// CountRecords returns the journal's total record count (a crash-sweep
// helper).
func CountRecords(fs vfs.FS, dir string) (int, error) {
	recs, _, err := Replay(fs, dir)
	return len(recs), err
}
