package wal_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"efind/internal/vfs"
	"efind/internal/wal"
)

// FuzzWALReplay feeds arbitrary bytes in as the final journal segment.
// Whatever the damage, Replay must not panic and must never report an
// error (a final-segment tail is by definition crash-explainable); the
// records it does return must survive a re-encode/re-decode round trip;
// and after Repair the journal must replay clean with the same records.
func FuzzWALReplay(f *testing.F) {
	var clean []byte
	clean = wal.AppendFrame(clean, []byte("seed-record"))
	clean = wal.AppendFrame(clean, nil)
	f.Add(clean)
	f.Add(clean[:len(clean)-2])                        // torn mid-CRC
	f.Add([]byte{})                                    // empty segment
	f.Add([]byte{0x03, 'a', 'b'})                      // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge length prefix
	f.Add(append(append([]byte{}, clean...), 0x01, 'x', 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.OS{}
		dir := filepath.Join(t.TempDir(), "wal")
		if err := fs.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		// A known-good first segment, then the fuzzed final segment: any
		// tail damage lands where Replay must tolerate it.
		var first []byte
		first = wal.AppendFrame(first, []byte("segment-one"))
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.wal"), first, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-000002.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}

		recs, torn, err := wal.Replay(fs, dir)
		if err != nil {
			t.Fatalf("Replay must tolerate any final-segment bytes, got %v", err)
		}
		if len(recs) < 1 || !bytes.Equal(recs[0].Payload, []byte("segment-one")) {
			t.Fatalf("the intact first segment's record vanished: %v", recs)
		}

		// Re-encode/re-decode idempotence of whatever decoded.
		var re []byte
		for _, r := range recs[1:] {
			re = wal.AppendFrame(re, r.Payload)
		}
		redir := filepath.Join(t.TempDir(), "re")
		if err := fs.MkdirAll(redir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(redir, "seg-000001.wal"), re, 0o644); err != nil {
			t.Fatal(err)
		}
		recs2, torn2, err := wal.Replay(fs, redir)
		if err != nil || torn2 {
			t.Fatalf("re-encoded journal replay = torn=%v err=%v", torn2, err)
		}
		if len(recs2) != len(recs)-1 {
			t.Fatalf("re-encode lost records: %d vs %d", len(recs2), len(recs)-1)
		}
		for i, r := range recs2 {
			if !bytes.Equal(r.Payload, recs[i+1].Payload) {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}

		// Repair must leave a clean journal with the same record stream.
		if _, err := wal.Repair(fs, dir); err != nil {
			t.Fatalf("Repair: %v", err)
		}
		recs3, torn3, err := wal.Replay(fs, dir)
		if err != nil || torn3 {
			t.Fatalf("post-Repair replay = torn=%v err=%v", torn3, err)
		}
		if len(recs3) != len(recs) {
			t.Fatalf("Repair changed the record count: %d vs %d", len(recs3), len(recs))
		}
		_ = torn
	})
}
