package knnj

import (
	"testing"
)

func TestSpatialIndexStats(t *testing.T) {
	cluster, _, _ := knnEnv(t)
	cfg := DefaultSpatialIndexConfig(1000)
	cfg.K = 7
	idx, err := BuildSpatialIndex(cluster, "s", points(200, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.K() != 7 {
		t.Fatalf("K = %d", idx.K())
	}
	if _, err := idx.Lookup("10.0,10.0"); err != nil {
		t.Fatal(err)
	}
	if idx.Lookups() != 1 {
		t.Fatalf("lookups = %d", idx.Lookups())
	}
	idx.ResetStats()
	if idx.Lookups() != 0 {
		t.Fatal("reset failed")
	}
	// Bad keys error but still count.
	if _, err := idx.Lookup("not-a-point"); err == nil {
		t.Fatal("bad spatial key should error")
	}
	// Out-of-range coordinates clamp to boundary cells rather than panic.
	if _, err := idx.Lookup("-50.0,99999.0"); err != nil {
		t.Fatal(err)
	}
}
