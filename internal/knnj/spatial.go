// Package knnj implements both sides of the paper's k-nearest-neighbour
// join experiment (§5.4, Figure 13):
//
//   - an EFind solution: set A is the main MapReduce input and set B is
//     indexed by a grid of R*-trees (4×8 cells with small overlapping
//     regions, each replicated to 3 machines) exposed as an
//     index.Partitioned accessor, so the whole join is an index
//     nested-loop through the ordinary EFind strategies;
//   - the hand-tuned comparator H-zkNNJ (Zhang, Li, Jestes — EDBT 2012):
//     α shifted copies, z-value range partitioning from sampled
//     quantiles, per-partition candidate generation over the z-order, and
//     a final selection job.
package knnj

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"efind/internal/index"
	"efind/internal/rtree"
	"efind/internal/sim"
	"efind/internal/workloads"
)

// SpatialIndex is a distributed grid of R*-trees over point set B,
// answering "k nearest neighbours of (x, y)" lookups. It implements
// index.Partitioned: the partition of a lookup key is the grid cell
// containing the query point, which is exactly what the index-locality
// strategy needs.
type SpatialIndex struct {
	name      string
	k         int
	extent    float64
	gx, gy    int
	overlap   float64
	cells     []*rtree.Tree
	scheme    index.Scheme
	serveTime float64
	lookups   atomic.Int64
}

var _ index.Partitioned = (*SpatialIndex)(nil)

// SpatialIndexConfig configures the grid.
type SpatialIndexConfig struct {
	// GX×GY is the cell grid (the paper uses 4×8 over the US map).
	GX, GY int
	// Extent is the coordinate domain [0, Extent)².
	Extent float64
	// Overlap is the fraction of a cell's width/height included from
	// neighbouring cells ("small overlapping regions"), so border queries
	// stay accurate without cross-cell coordination.
	Overlap float64
	// K is the neighbour count served per lookup.
	K int
	// Replicas is the replication factor per cell (paper: 3).
	Replicas int
	// ServeTime is the index-side time per kNN search.
	ServeTime float64
}

// DefaultSpatialIndexConfig mirrors the paper's setup.
func DefaultSpatialIndexConfig(extent float64) SpatialIndexConfig {
	return SpatialIndexConfig{GX: 4, GY: 8, Extent: extent, Overlap: 0.25, K: 10, Replicas: 3, ServeTime: 0.001}
}

// BuildSpatialIndex loads point set B into the grid.
func BuildSpatialIndex(cluster *sim.Cluster, name string, pts []workloads.SpatialPoint, cfg SpatialIndexConfig) (*SpatialIndex, error) {
	if cfg.GX < 1 || cfg.GY < 1 || cfg.Extent <= 0 || cfg.K < 1 {
		return nil, fmt.Errorf("knnj: bad spatial index config %+v", cfg)
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	s := &SpatialIndex{
		name:      name,
		k:         cfg.K,
		extent:    cfg.Extent,
		gx:        cfg.GX,
		gy:        cfg.GY,
		overlap:   cfg.Overlap,
		cells:     make([]*rtree.Tree, cfg.GX*cfg.GY),
		serveTime: cfg.ServeTime,
	}
	for i := range s.cells {
		s.cells[i] = rtree.New()
	}
	cw := cfg.Extent / float64(cfg.GX)
	ch := cfg.Extent / float64(cfg.GY)
	for _, p := range pts {
		// Insert into every cell whose overlap-expanded bounds contain the
		// point (usually one, up to four near corners).
		for cx := 0; cx < cfg.GX; cx++ {
			for cy := 0; cy < cfg.GY; cy++ {
				minX := float64(cx)*cw - cfg.Overlap*cw
				maxX := float64(cx+1)*cw + cfg.Overlap*cw
				minY := float64(cy)*ch - cfg.Overlap*ch
				maxY := float64(cy+1)*ch + cfg.Overlap*ch
				if p.X >= minX && p.X < maxX && p.Y >= minY && p.Y < maxY {
					s.cells[cy*cfg.GX+cx].Insert(rtree.Point{X: p.X, Y: p.Y, ID: p.ID})
				}
			}
		}
	}
	hosts := make([][]sim.NodeID, len(s.cells))
	for i := range hosts {
		hosts[i] = cluster.PlaceReplicas(cfg.Replicas)
	}
	s.scheme = index.Scheme{
		Partitions: len(s.cells),
		Fn:         s.cellOf,
		Hosts:      hosts,
	}
	return s, nil
}

// cellOf maps a "x,y" lookup key to its grid cell.
func (s *SpatialIndex) cellOf(key string) int {
	x, y, ok := workloads.ParseSpatialValue(key)
	if !ok {
		return 0
	}
	cx := int(x / s.extent * float64(s.gx))
	cy := int(y / s.extent * float64(s.gy))
	if cx < 0 {
		cx = 0
	}
	if cx >= s.gx {
		cx = s.gx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= s.gy {
		cy = s.gy - 1
	}
	return cy*s.gx + cx
}

// Name implements index.Accessor.
func (s *SpatialIndex) Name() string { return s.name }

// Lookup implements index.Accessor: the key is a "x,y" coordinate string;
// the result is the k nearest B-points as "id:distSq" strings in
// ascending distance order (a dynamic index in the paper's sense — any
// coordinate is a valid key).
func (s *SpatialIndex) Lookup(key string) ([]string, error) {
	s.lookups.Add(1)
	x, y, ok := workloads.ParseSpatialValue(key)
	if !ok {
		return nil, fmt.Errorf("knnj: bad spatial key %q", key)
	}
	nbrs := s.cells[s.cellOf(key)].KNN(x, y, s.k)
	out := make([]string, 0, len(nbrs))
	for _, n := range nbrs {
		out = append(out, fmt.Sprintf("%s:%.6f", n.Point.ID, n.DistSq))
	}
	return out, nil
}

// ServeTime implements index.Accessor.
func (s *SpatialIndex) ServeTime() float64 { return s.serveTime }

// HostsFor implements index.Accessor.
func (s *SpatialIndex) HostsFor(key string) []sim.NodeID {
	return s.scheme.Hosts[s.cellOf(key)]
}

// Scheme implements index.Partitioned.
func (s *SpatialIndex) Scheme() *index.Scheme { return &s.scheme }

// Lookups returns the number of kNN searches served.
func (s *SpatialIndex) Lookups() int64 { return s.lookups.Load() }

// ResetStats clears the lookup counter.
func (s *SpatialIndex) ResetStats() { s.lookups.Store(0) }

// K returns the configured neighbour count.
func (s *SpatialIndex) K() int { return s.k }

// Neighbor is a parsed kNN result entry.
type Neighbor struct {
	ID     string
	DistSq float64
}

// ParseNeighbors decodes the "id:distSq" lookup results.
func ParseNeighbors(values []string) []Neighbor {
	out := make([]Neighbor, 0, len(values))
	for _, v := range values {
		i := strings.LastIndexByte(v, ':')
		if i <= 0 {
			continue
		}
		d, err := strconv.ParseFloat(v[i+1:], 64)
		if err != nil {
			continue
		}
		out = append(out, Neighbor{ID: v[:i], DistSq: d})
	}
	return out
}

// BruteForceKNN computes the exact kNN join of a against b (reference for
// recall measurements in tests and the experiment harness).
func BruteForceKNN(a, b []workloads.SpatialPoint, k int) map[string][]Neighbor {
	out := make(map[string][]Neighbor, len(a))
	for _, p := range a {
		nbrs := make([]Neighbor, 0, len(b))
		for _, q := range b {
			d := (p.X-q.X)*(p.X-q.X) + (p.Y-q.Y)*(p.Y-q.Y)
			nbrs = append(nbrs, Neighbor{ID: q.ID, DistSq: d})
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].DistSq < nbrs[j].DistSq })
		if len(nbrs) > k {
			nbrs = nbrs[:k]
		}
		out[p.ID] = nbrs
	}
	return out
}

// Recall measures the fraction of exact neighbours found, averaged over
// all query points.
func Recall(got map[string][]Neighbor, exact map[string][]Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	total, hit := 0, 0
	for id, want := range exact {
		have := map[string]bool{}
		for _, n := range got[id] {
			have[n.ID] = true
		}
		for _, w := range want {
			total++
			if have[w.ID] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
