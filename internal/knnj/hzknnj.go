package knnj

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
	"efind/internal/workloads"
	"efind/internal/zorder"
)

// HZConfig configures the hand-tuned H-zkNNJ comparator. The paper runs
// it with α = 2 and ε = 0.003.
type HZConfig struct {
	// K is the neighbour count.
	K int
	// Alpha is the number of randomly shifted copies (the first shift is
	// always the zero shift).
	Alpha int
	// Epsilon is the sampling rate for the quantile-estimation phase.
	Epsilon float64
	// Bits is the z-order grid resolution per dimension.
	Bits uint
	// Partitions is the number of z-range partitions per shifted copy.
	Partitions int
	Seed       int64
}

// DefaultHZConfig mirrors the paper's parameters.
func DefaultHZConfig(k int) HZConfig {
	return HZConfig{K: k, Alpha: 2, Epsilon: 0.003, Bits: 16, Partitions: 16, Seed: 99}
}

// HZResult is the outcome of a full H-zkNNJ run.
type HZResult struct {
	Join  map[string][]Neighbor
	VTime float64
	Jobs  int
}

// RunHZKNNJ executes the three-phase H-zkNNJ pipeline on the engine:
//
//  1. a sampling job estimates z-value quantiles of each shifted copy,
//     yielding balanced range-partition boundaries;
//  2. one job per shifted copy z-orders both sets, range-partitions them,
//     and generates candidate neighbours from each query point's k
//     z-order predecessors and successors;
//  3. a final job groups candidates by query point and keeps the k
//     closest distinct neighbours.
func RunHZKNNJ(engine *mapreduce.Engine, a, b []workloads.SpatialPoint, extent float64, cfg HZConfig) (*HZResult, error) {
	if cfg.K < 1 || cfg.Alpha < 1 || cfg.Partitions < 1 {
		return nil, fmt.Errorf("knnj: bad H-zkNNJ config %+v", cfg)
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.003
	}
	fs := engine.FS
	res := &HZResult{Join: make(map[string][]Neighbor)}

	// Combined tagged input: R (queries) and S (data) in one file, as the
	// hand-tuned implementation stages it.
	recs := make([]dfs.Record, 0, len(a)+len(b))
	for _, p := range a {
		recs = append(recs, dfs.Record{Key: "A:" + p.ID, Value: p.Value()})
	}
	for _, p := range b {
		recs = append(recs, dfs.Record{Key: "B:" + p.ID, Value: p.Value()})
	}
	input, err := fs.Create(fs.TempName("hz-input"), recs)
	if err != nil {
		return nil, err
	}
	defer fs.Remove(input.Name)

	grid := zorder.NewGrid(0, 0, extent, extent, cfg.Bits)
	rng := rand.New(rand.NewSource(cfg.Seed))
	shifts := make([][2]float64, cfg.Alpha)
	for i := 1; i < cfg.Alpha; i++ {
		shifts[i] = [2]float64{rng.Float64() * extent, rng.Float64() * extent}
	}

	// Phase 1: sampling job. Each map task emits a deterministic ε-sample
	// of z-values per shift; the single reducer sorts them (the group-by
	// delivers them in z order) and quantile boundaries fall out.
	boundaries, vtime, err := sampleBoundaries(engine, input, grid, shifts, cfg)
	if err != nil {
		return nil, err
	}
	res.VTime += vtime
	res.Jobs++

	// Phase 2: per-shift candidate generation.
	var candidateFiles []*dfs.File
	for si := range shifts {
		out, vt, err := candidateJob(engine, input, grid, shifts[si], boundaries[si], si, cfg)
		if err != nil {
			return nil, err
		}
		res.VTime += vt
		res.Jobs++
		candidateFiles = append(candidateFiles, out)
	}

	// Phase 3: merge candidates and select the k closest per query point.
	var all []dfs.Record
	for _, f := range candidateFiles {
		all = append(all, f.All()...)
		if err := fs.Remove(f.Name); err != nil {
			return nil, err
		}
	}
	merged, err := fs.Create(fs.TempName("hz-cand"), all)
	if err != nil {
		return nil, err
	}
	defer fs.Remove(merged.Name)

	selectJob := &mapreduce.Job{
		Name:      "hz-select",
		Input:     merged,
		NumReduce: engine.Cluster.ReduceSlots(),
		Reduce: func(_ *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) {
			nbrs := ParseNeighbors(values)
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].DistSq < nbrs[j].DistSq })
			seen := map[string]bool{}
			kept := make([]string, 0, cfg.K)
			for _, n := range nbrs {
				if seen[n.ID] {
					continue
				}
				seen[n.ID] = true
				kept = append(kept, fmt.Sprintf("%s:%.6f", n.ID, n.DistSq))
				if len(kept) == cfg.K {
					break
				}
			}
			emit(mapreduce.Pair{Key: key, Value: strings.Join(kept, " ")})
		},
	}
	sel, err := engine.Run(selectJob)
	if err != nil {
		return nil, err
	}
	res.VTime += sel.VTime
	res.Jobs++
	for _, r := range sel.Output.All() {
		res.Join[r.Key] = ParseNeighbors(strings.Fields(r.Value))
	}
	if err := fs.Remove(sel.Output.Name); err != nil {
		return nil, err
	}
	return res, nil
}

// sampleBoundaries runs the sampling job and derives per-shift range
// boundaries from the sampled z-values.
func sampleBoundaries(engine *mapreduce.Engine, input *dfs.File, grid zorder.Grid, shifts [][2]float64, cfg HZConfig) ([][]string, float64, error) {
	job := &mapreduce.Job{
		Name:      "hz-sample",
		Input:     input,
		NumReduce: 1,
		Map: func(_ *mapreduce.TaskContext, in mapreduce.Pair, emit mapreduce.Emit) {
			// Deterministic ε-sampling by hashing the record id.
			if !sampled(in.Key, cfg.Epsilon) {
				return
			}
			x, y, ok := workloads.ParseSpatialValue(in.Value)
			if !ok {
				return
			}
			for si, sh := range shifts {
				z := grid.ShiftedZValue(x, y, sh[0], sh[1])
				emit(mapreduce.Pair{Key: fmt.Sprintf("%d:%016x", si, z), Value: "1"})
			}
		},
		Reduce: mapreduce.IdentityReduce,
	}
	r, err := engine.Run(job)
	if err != nil {
		return nil, 0, err
	}
	defer engine.FS.Remove(r.Output.Name)

	perShift := make([][]string, len(shifts))
	for _, rec := range r.Output.All() {
		parts := strings.SplitN(rec.Key, ":", 2)
		si, err := strconv.Atoi(parts[0])
		if err != nil || si < 0 || si >= len(shifts) {
			continue
		}
		perShift[si] = append(perShift[si], parts[1])
	}
	boundaries := make([][]string, len(shifts))
	for si, zs := range perShift {
		sort.Strings(zs)
		var bs []string
		for q := 1; q < cfg.Partitions; q++ {
			if len(zs) == 0 {
				break
			}
			bs = append(bs, zs[q*len(zs)/cfg.Partitions])
		}
		boundaries[si] = bs
	}
	return boundaries, r.VTime, nil
}

// candidateJob runs one shifted copy: z-order both sets, range-partition,
// and emit each query point's candidate neighbours.
func candidateJob(engine *mapreduce.Engine, input *dfs.File, grid zorder.Grid, shift [2]float64, bounds []string, si int, cfg HZConfig) (*dfs.File, float64, error) {
	numParts := len(bounds) + 1
	job := &mapreduce.Job{
		Name:      fmt.Sprintf("hz-shift%d", si),
		Input:     input,
		NumReduce: numParts,
		Map: func(_ *mapreduce.TaskContext, in mapreduce.Pair, emit mapreduce.Emit) {
			x, y, ok := workloads.ParseSpatialValue(in.Value)
			if !ok {
				return
			}
			z := grid.ShiftedZValue(x, y, shift[0], shift[1])
			emit(mapreduce.Pair{
				Key:   fmt.Sprintf("%016x", z),
				Value: in.Key + "|" + in.Value, // tag:id|x,y
			})
		},
		Partition: func(key string, n int) int {
			p := sort.SearchStrings(bounds, key)
			if p >= n {
				p = n - 1
			}
			return p
		},
		Reduce:            mapreduce.IdentityReduce,
		ReduceStagesAfter: []mapreduce.StageFactory{candidateStage(cfg.K)},
	}
	r, err := engine.Run(job)
	if err != nil {
		return nil, 0, err
	}
	return r.Output, r.VTime, nil
}

// taggedPoint is one z-ordered record inside a partition.
type taggedPoint struct {
	query bool
	id    string
	x, y  float64
}

// candidateStage buffers a reduce task's z-sorted records and, at close,
// emits for every query point the real distances to its k z-order
// predecessors and successors from set B (the C_i(a) candidate set of
// H-zkNNJ).
func candidateStage(k int) mapreduce.StageFactory {
	return func(sim.NodeID) mapreduce.Stage {
		var buf []taggedPoint
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in mapreduce.Pair, _ mapreduce.Emit) {
				parts := strings.SplitN(in.Value, "|", 2)
				if len(parts) != 2 {
					return
				}
				x, y, ok := workloads.ParseSpatialValue(parts[1])
				if !ok {
					return
				}
				buf = append(buf, taggedPoint{
					query: strings.HasPrefix(parts[0], "A:"),
					id:    strings.TrimPrefix(strings.TrimPrefix(parts[0], "A:"), "B:"),
					x:     x,
					y:     y,
				})
			},
			OnClose: func(ctx *mapreduce.TaskContext, emit mapreduce.Emit) {
				// Index of B records for fast neighbour scans.
				bIdx := make([]int, 0, len(buf))
				for i, p := range buf {
					if !p.query {
						bIdx = append(bIdx, i)
					}
				}
				for i, p := range buf {
					if !p.query {
						continue
					}
					// Position of the first B record at or after i.
					pos := sort.SearchInts(bIdx, i)
					lo, hi := pos-k, pos+k
					if lo < 0 {
						lo = 0
					}
					if hi > len(bIdx) {
						hi = len(bIdx)
					}
					for _, bi := range bIdx[lo:hi] {
						q := buf[bi]
						d := (p.x-q.x)*(p.x-q.x) + (p.y-q.y)*(p.y-q.y)
						// Charge the distance computation.
						ctx.Charge(2e-8)
						emit(mapreduce.Pair{Key: p.id, Value: fmt.Sprintf("%s:%.6f", q.id, d)})
					}
				}
				buf = nil
			},
		}
	}
}

// sampled deterministically decides whether a record joins the ε-sample.
func sampled(key string, epsilon float64) bool {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return float64(h%100000)/100000.0 < epsilon
}
