package knnj

import (
	"strings"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
)

// EFindConf builds the EFind-based kNN join: set A (the input file) is
// streamed through a head IndexOperator that looks each point up in the
// spatial index over set B. The operator's postProcess emits one record
// per query point carrying its k neighbours. Expressing the join takes a
// dozen lines — the point of Figure 13 is that this effortless version
// matches the hand-tuned H-zkNNJ once EFind picks the right strategy.
func EFindConf(name string, input *dfs.File, idx *SpatialIndex, mode core.Mode) *core.IndexJobConf {
	op := core.NewOperator("knn",
		func(in core.Pair) core.PreResult {
			return core.PreResult{Pair: in, Keys: [][]string{{in.Value}}}
		},
		func(pair core.Pair, results [][]core.KeyResult, emit core.Emit) {
			if len(results[0]) == 0 {
				return
			}
			emit(core.Pair{Key: pair.Key, Value: strings.Join(results[0][0].Values, " ")})
		})
	op.AddIndex(idx)

	conf := &core.IndexJobConf{
		Name:  name,
		Input: input,
		Mode:  mode,
		Mapper: func(_ *mapreduce.TaskContext, in core.Pair, emit core.Emit) {
			emit(in)
		},
	}
	conf.AddHeadIndexOperator(op)
	return conf
}

// CollectJoin parses an EFind kNN join output file into a result map.
func CollectJoin(f *dfs.File) map[string][]Neighbor {
	out := make(map[string][]Neighbor)
	for _, r := range f.All() {
		out[r.Key] = ParseNeighbors(strings.Fields(r.Value))
	}
	return out
}
