package knnj

import (
	"fmt"
	"testing"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
	"efind/internal/workloads"
)

func knnEnv(t *testing.T) (*sim.Cluster, *dfs.FS, *mapreduce.Engine) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 6
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 2
	cfg.TaskStartup = 0.05
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 8 << 10
	return cluster, fs, mapreduce.New(cluster, fs)
}

func points(n int, seed int64) []workloads.SpatialPoint {
	return GenerateTestPoints(n, seed)
}

// GenerateTestPoints wraps the workload generator with a distinct seed
// space for A vs B sets.
func GenerateTestPoints(n int, seed int64) []workloads.SpatialPoint {
	cfg := workloads.SpatialConfig{Points: n, Extent: 1000, Clusters: 10, Seed: seed}
	pts := workloads.GenerateSpatialPoints(cfg)
	for i := range pts {
		pts[i].ID = fmt.Sprintf("s%d-%05d", seed, i)
	}
	return pts
}

func TestSpatialIndexLookupAccuracy(t *testing.T) {
	cluster, _, _ := knnEnv(t)
	b := points(4000, 2)
	cfg := DefaultSpatialIndexConfig(1000)
	cfg.K = 10
	idx, err := BuildSpatialIndex(cluster, "bidx", b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := points(200, 3)
	exact := BruteForceKNN(a, b, 10)
	got := map[string][]Neighbor{}
	for _, p := range a {
		vals, err := idx.Lookup(p.Value())
		if err != nil {
			t.Fatal(err)
		}
		got[p.ID] = ParseNeighbors(vals)
	}
	// The fixed-overlap grid is inherently approximate near cell borders
	// in sparse regions (the paper's design has the same property); the
	// bar is high recall, not exactness.
	r := Recall(got, exact)
	if r < 0.85 {
		t.Fatalf("grid R*-tree recall = %.3f, want ≥0.85", r)
	}
}

func TestSpatialIndexSchemeConsistent(t *testing.T) {
	cluster, _, _ := knnEnv(t)
	idx, err := BuildSpatialIndex(cluster, "bidx", points(500, 4), DefaultSpatialIndexConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	sch := idx.Scheme()
	if sch.Partitions != 32 {
		t.Fatalf("partitions = %d, want 4×8", sch.Partitions)
	}
	for _, p := range points(100, 5) {
		cell := sch.Fn(p.Value())
		if cell < 0 || cell >= 32 {
			t.Fatalf("cell %d out of range", cell)
		}
		hosts := idx.HostsFor(p.Value())
		if len(hosts) != 3 {
			t.Fatalf("hosts = %v", hosts)
		}
		for i := range hosts {
			if hosts[i] != sch.Hosts[cell][i] {
				t.Fatal("HostsFor disagrees with scheme")
			}
		}
	}
}

func TestSpatialIndexBadConfig(t *testing.T) {
	cluster, _, _ := knnEnv(t)
	if _, err := BuildSpatialIndex(cluster, "x", nil, SpatialIndexConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestParseNeighborsRobust(t *testing.T) {
	got := ParseNeighbors([]string{"a:1.5", "bad", "b:2.25", ":3", "c:xyz"})
	if len(got) != 2 || got[0].ID != "a" || got[1].DistSq != 2.25 {
		t.Fatalf("parsed %v", got)
	}
}

func TestRecallMetric(t *testing.T) {
	exact := map[string][]Neighbor{"q": {{ID: "a"}, {ID: "b"}}}
	if r := Recall(map[string][]Neighbor{"q": {{ID: "a"}, {ID: "b"}}}, exact); r != 1 {
		t.Fatalf("perfect recall = %g", r)
	}
	if r := Recall(map[string][]Neighbor{"q": {{ID: "a"}}}, exact); r != 0.5 {
		t.Fatalf("half recall = %g", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty recall = %g", r)
	}
}

func TestEFindKNNJoin(t *testing.T) {
	cluster, fs, engine := knnEnv(t)
	rt := core.NewRuntime(engine)
	b := points(3000, 6)
	a := points(400, 7)
	idxCfg := DefaultSpatialIndexConfig(1000)
	idxCfg.K = 5
	idx, err := BuildSpatialIndex(cluster, "bidx", b, idxCfg)
	if err != nil {
		t.Fatal(err)
	}
	input, err := workloads.WriteSpatial(fs, "a-points", a)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		label string
		mode  core.Mode
		strat core.Strategy
		force bool
	}{
		{"base", core.ModeBaseline, 0, false},
		{"idxloc", core.ModeCustom, core.IndexLocality, true},
	} {
		conf := EFindConf("knn-"+mode.label, input, idx, mode.mode)
		if mode.force {
			conf.ForceStrategy("knn", idx.Name(), mode.strat)
		}
		res, err := rt.Submit(conf)
		if err != nil {
			t.Fatalf("%s: %v", mode.label, err)
		}
		join := CollectJoin(res.Output)
		if len(join) != len(a) {
			t.Fatalf("%s: join covers %d of %d query points", mode.label, len(join), len(a))
		}
		r := Recall(join, BruteForceKNN(a, b, 5))
		if r < 0.9 {
			t.Fatalf("%s: recall %.3f", mode.label, r)
		}
	}
}

func TestHZKNNJ(t *testing.T) {
	_, _, engine := knnEnv(t)
	b := points(3000, 8)
	a := points(300, 9)
	cfg := DefaultHZConfig(5)
	cfg.Epsilon = 0.02 // small sets need a denser sample
	res, err := RunHZKNNJ(engine, a, b, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != cfg.Alpha+2 {
		t.Fatalf("jobs = %d, want sampling + %d shifts + select", res.Jobs, cfg.Alpha)
	}
	if len(res.Join) != len(a) {
		t.Fatalf("join covers %d of %d query points", len(res.Join), len(a))
	}
	for id, nbrs := range res.Join {
		if len(nbrs) > 5 {
			t.Fatalf("%s has %d neighbours, want ≤5", id, len(nbrs))
		}
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i].DistSq < nbrs[i-1].DistSq {
				t.Fatalf("%s neighbours unsorted", id)
			}
		}
	}
	r := Recall(res.Join, BruteForceKNN(a, b, 5))
	if r < 0.75 {
		t.Fatalf("H-zkNNJ recall %.3f too low (approximate, but α=2 shifts should land ≥0.75)", r)
	}
	if res.VTime <= 0 {
		t.Fatal("no virtual time")
	}
}

func TestHZKNNJBadConfig(t *testing.T) {
	_, _, engine := knnEnv(t)
	if _, err := RunHZKNNJ(engine, nil, nil, 1000, HZConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestHZKNNJNoTempLeaks(t *testing.T) {
	_, fs, engine := knnEnv(t)
	before := len(fs.List())
	_, err := RunHZKNNJ(engine, points(200, 10), points(800, 11), 1000, DefaultHZConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if after := len(fs.List()); after != before {
		t.Fatalf("temp files leaked: %v", fs.List())
	}
}
