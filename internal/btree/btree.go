// Package btree implements an in-memory B+tree with string keys, the
// ordered storage engine behind each kvstore partition (the paper's
// indices are "tree-based or hash-based"; the tree form also serves the
// range-partitioned event index). Leaves are chained for ordered
// iteration and range scans.
package btree

import "sort"

// degree is the maximum number of keys per node; nodes split at degree
// and merge/borrow below degree/2. 32 keeps trees shallow for the
// partition sizes the simulation uses.
const degree = 32

// Tree is a B+tree mapping string keys to arbitrary values. The zero
// value is not usable; call New.
type Tree struct {
	root *node
	size int
}

type node struct {
	leaf     bool
	keys     []string
	children []*node       // interior nodes: len(keys)+1 children
	values   []interface{} // leaves: parallel to keys
	next     *node         // leaf chain
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Get returns the value for key and whether it exists.
func (t *Tree) Get(key string) (interface{}, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.values[i], true
	}
	return nil, false
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key string, value interface{}) {
	newChild, splitKey := t.insert(t.root, key, value)
	if newChild != nil {
		t.root = &node{
			keys:     []string{splitKey},
			children: []*node{t.root, newChild},
		}
	}
}

// insert descends to the leaf, inserts, and propagates splits upward.
// It returns a new right sibling and its separator key when the node split.
func (t *Tree) insert(n *node, key string, value interface{}) (*node, string) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.values[i] = value
			return nil, ""
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		t.size++
		if len(n.keys) > degree {
			return n.splitLeaf()
		}
		return nil, ""
	}
	ci := childIndex(n.keys, key)
	newChild, splitKey := t.insert(n.children[ci], key, value)
	if newChild == nil {
		return nil, ""
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.keys) > degree {
		return n.splitInterior()
	}
	return nil, ""
}

func (n *node) splitLeaf() (*node, string) {
	mid := len(n.keys) / 2
	right := &node{
		leaf:   true,
		keys:   append([]string(nil), n.keys[mid:]...),
		values: append([]interface{}(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.values = n.values[:mid:mid]
	n.next = right
	return right, right.keys[0]
}

func (n *node) splitInterior() (*node, string) {
	mid := len(n.keys) / 2
	splitKey := n.keys[mid]
	right := &node{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, splitKey
}

// Delete removes key, reporting whether it was present. Underflowed leaves
// are tolerated (no rebalancing) — the structure stays correct, only
// slightly less dense, which is fine for the read-mostly index workloads
// EFind assumes ("an index lookup with the same key returns the same
// result during a job").
func (t *Tree) Delete(key string) bool {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// childIndex picks the child to descend into for key: the first separator
// strictly greater than key.
func childIndex(keys []string, key string) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// Ascend calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false.
func (t *Tree) Ascend(fn func(key string, value interface{}) bool) {
	t.AscendRange("", "", fn)
}

// AscendRange calls fn for pairs with from <= key < to in ascending order
// ("" for from means from the start; "" for to means to the end),
// stopping early if fn returns false.
func (t *Tree) AscendRange(from, to string, fn func(key string, value interface{}) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, from)]
	}
	start := sort.SearchStrings(n.keys, from)
	for n != nil {
		for i := start; i < len(n.keys); i++ {
			if to != "" && n.keys[i] >= to {
				return
			}
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
		n = n.next
		start = 0
	}
}

// Keys returns all keys in ascending order.
func (t *Tree) Keys() []string {
	out := make([]string, 0, t.size)
	t.Ascend(func(k string, _ interface{}) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Min returns the smallest key, or "" and false when empty.
func (t *Tree) Min() (string, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	// The leftmost leaf can be empty after deletions; follow the chain.
	for n != nil && len(n.keys) == 0 {
		n = n.next
	}
	if n == nil {
		return "", false
	}
	return n.keys[0], true
}

// Max returns the largest key, or "" and false when empty.
func (t *Tree) Max() (string, bool) {
	var last string
	found := false
	t.Ascend(func(k string, _ interface{}) bool {
		last, found = k, true
		return true
	})
	return last, found
}
