package btree

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%09d", rng.Intn(1e9))
	}
	return keys
}

func BenchmarkPut(b *testing.B) {
	keys := benchKeys(b.N)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], i)
	}
}

func BenchmarkGetHit(b *testing.B) {
	keys := benchKeys(100000)
	tr := New()
	for i, k := range keys {
		tr.Put(k, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}

func BenchmarkAscendRange(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Put(fmt.Sprintf("key-%09d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.AscendRange("key-000050000", "key-000050100", func(string, interface{}) bool {
			count++
			return true
		})
		if count != 100 {
			b.Fatalf("range scan returned %d", count)
		}
	}
}
