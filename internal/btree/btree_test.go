package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("empty tree len = %d", tr.Len())
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree should miss")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree should report absent")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree should report absent")
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("key-%04d", i), i)
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(fmt.Sprintf("key-%04d", i))
		if !ok || v.(int) != i {
			t.Fatalf("Get(key-%04d) = %v,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get("missing"); ok {
		t.Fatal("unexpected hit for missing key")
	}
}

func TestPutReplaces(t *testing.T) {
	tr := New()
	tr.Put("a", 1)
	tr.Put("a", 2)
	if tr.Len() != 1 {
		t.Fatalf("replace grew tree: len=%d", tr.Len())
	}
	v, _ := tr.Get("a")
	if v.(int) != 2 {
		t.Fatalf("want replaced value 2, got %v", v)
	}
}

func TestRandomOrderInsertSortedIteration(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	n := 5000
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Put(fmt.Sprintf("k%06d", i), i)
	}
	keys := tr.Keys()
	if len(keys) != n {
		t.Fatalf("got %d keys, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("iteration not sorted")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("%03d", i), i)
	}
	var got []string
	tr.AscendRange("010", "020", func(k string, _ interface{}) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != "010" || got[9] != "019" {
		t.Fatalf("range scan = %v", got)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("%03d", i), i)
	}
	count := 0
	tr.Ascend(func(string, interface{}) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Put(fmt.Sprintf("%04d", i), i)
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(fmt.Sprintf("%04d", i)) {
			t.Fatalf("delete %04d failed", i)
		}
	}
	if tr.Delete("0000") {
		t.Fatal("double delete should report false")
	}
	if tr.Len() != 250 {
		t.Fatalf("len after deletes = %d, want 250", tr.Len())
	}
	for i := 0; i < 500; i++ {
		_, ok := tr.Get(fmt.Sprintf("%04d", i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %04d present=%v, want %v", i, ok, want)
		}
	}
	if !sort.StringsAreSorted(tr.Keys()) {
		t.Fatal("keys unsorted after deletes")
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []string{"m", "a", "z", "q"} {
		tr.Put(k, nil)
	}
	if min, _ := tr.Min(); min != "a" {
		t.Fatalf("min = %q", min)
	}
	if max, _ := tr.Max(); max != "z" {
		t.Fatalf("max = %q", max)
	}
}

func TestMinAfterDeletingLeftmost(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put(fmt.Sprintf("%04d", i), i)
	}
	// Empty out the leftmost leaf entirely.
	for i := 0; i < 40; i++ {
		tr.Delete(fmt.Sprintf("%04d", i))
	}
	min, ok := tr.Min()
	if !ok || min != "0040" {
		t.Fatalf("min after deletes = %q,%v want 0040", min, ok)
	}
}

// Property: the tree agrees with a reference map under a random workload
// of puts and deletes, and iteration is always sorted and duplicate-free.
func TestTreeMatchesReferenceMap(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New()
		ref := map[string]int{}
		for i, op := range ops {
			key := fmt.Sprintf("%03d", op%200)
			if op%3 == 0 {
				tr.Delete(key)
				delete(ref, key)
			} else {
				tr.Put(key, i)
				ref[key] = i
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		keys := tr.Keys()
		if !sort.StringsAreSorted(keys) {
			return false
		}
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[k] {
				return false
			}
			seen[k] = true
			v, ok := tr.Get(k)
			if !ok || v.(int) != ref[k] {
				return false
			}
		}
		return len(keys) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
