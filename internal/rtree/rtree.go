// Package rtree implements an in-memory R*-tree over 2-D points, the
// spatial index the paper builds per map cell for the OSM k-nearest-
// neighbour join experiment (§5.1: "we partition the US map into 4×8
// cells ... then build an R*tree for each cell"). It supports insertion
// with the R* choose-subtree, split, and forced-reinsert heuristics, plus
// best-first kNN and window queries.
package rtree

import (
	"container/heap"
	"math"
	"sort"
)

const (
	maxEntries    = 16
	minEntries    = 6 // ~40% of max, the R* recommendation
	reinsertCount = 5 // ~30% of max entries reinserted on first overflow
)

// Point is a 2-D point with an opaque identifier.
type Point struct {
	X, Y float64
	ID   string
}

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

func pointRect(p Point) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

func (r Rect) area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

func (r Rect) margin() float64 { return (r.MaxX - r.MinX) + (r.MaxY - r.MinY) }

func (r Rect) union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

func (r Rect) intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

func (r Rect) overlap(o Rect) float64 {
	w := math.Min(r.MaxX, o.MaxX) - math.Max(r.MinX, o.MinX)
	h := math.Min(r.MaxY, o.MaxY) - math.Max(r.MinY, o.MinY)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// distSq returns the squared distance from (x, y) to the nearest point of
// the rectangle (0 if inside).
func (r Rect) distSq(x, y float64) float64 {
	dx := math.Max(0, math.Max(r.MinX-x, x-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-y, y-r.MaxY))
	return dx*dx + dy*dy
}

func (r Rect) center() (float64, float64) {
	return (r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2
}

type entry struct {
	rect  Rect
	child *rnode // nil for leaf entries
	point Point  // valid for leaf entries
}

type rnode struct {
	leaf    bool
	entries []entry
	level   int    // 0 for leaves
	parent  *rnode // nil for the root
}

// adopt points every child entry's parent at n (after splits move entries
// between nodes).
func (n *rnode) adopt() {
	if n.leaf {
		return
	}
	for _, e := range n.entries {
		e.child.parent = n
	}
}

func (n *rnode) mbr() Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.union(e.rect)
	}
	return r
}

// Tree is an R*-tree over points. The zero value is not usable; call New.
type Tree struct {
	root *rnode
	size int
	// reinserted tracks levels that already did a forced reinsert during
	// the current insertion, per the R* "first overflow per level" rule.
	reinserted map[int]bool
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &rnode{leaf: true, level: 0}}
}

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.size }

// Insert adds a point.
func (t *Tree) Insert(p Point) {
	t.reinserted = map[int]bool{}
	t.insertEntry(entry{rect: pointRect(p), point: p}, 0)
	t.size++
}

func (t *Tree) insertEntry(e entry, level int) {
	n := t.chooseSubtree(t.root, e.rect, level)
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	t.handleOverflow(n)
}

// chooseSubtree descends to the node at the target level using the R*
// criteria: minimum overlap enlargement when the children are leaves,
// minimum area enlargement otherwise.
func (t *Tree) chooseSubtree(n *rnode, r Rect, level int) *rnode {
	for n.level > level {
		best := -1
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		childrenAreLeaves := n.level == 1
		for i, e := range n.entries {
			u := e.rect.union(r)
			enl := u.area() - e.rect.area()
			var ov float64
			if childrenAreLeaves {
				for j, o := range n.entries {
					if j != i {
						ov += u.overlap(o.rect) - e.rect.overlap(o.rect)
					}
				}
			}
			if childrenAreLeaves {
				if ov < bestOverlap || (ov == bestOverlap && (enl < bestEnl || (enl == bestEnl && e.rect.area() < bestArea))) {
					best, bestOverlap, bestEnl, bestArea = i, ov, enl, e.rect.area()
				}
			} else {
				if enl < bestEnl || (enl == bestEnl && e.rect.area() < bestArea) {
					best, bestEnl, bestArea = i, enl, e.rect.area()
				}
			}
		}
		n.entries[best].rect = n.entries[best].rect.union(r)
		n = n.entries[best].child
	}
	return n
}

// handleOverflow applies forced reinsert on the first overflow of a level
// during an insertion, and splits otherwise, propagating up the tree.
func (t *Tree) handleOverflow(n *rnode) {
	if len(n.entries) <= maxEntries {
		return
	}
	if n != t.root && !t.reinserted[n.level] {
		t.reinserted[n.level] = true
		t.forcedReinsert(n)
		return
	}
	t.split(n)
}

// forcedReinsert removes the reinsertCount entries farthest from the
// node's center and re-inserts them from the top.
func (t *Tree) forcedReinsert(n *rnode) {
	cx, cy := n.mbr().center()
	sort.Slice(n.entries, func(i, j int) bool {
		xi, yi := n.entries[i].rect.center()
		xj, yj := n.entries[j].rect.center()
		di := (xi-cx)*(xi-cx) + (yi-cy)*(yi-cy)
		dj := (xj-cx)*(xj-cx) + (yj-cy)*(yj-cy)
		return di < dj
	})
	cut := len(n.entries) - reinsertCount
	removed := append([]entry(nil), n.entries[cut:]...)
	n.entries = n.entries[:cut]
	t.adjustUp(n)
	for _, e := range removed {
		t.insertEntry(e, n.level)
	}
}

// adjustUp tightens the bounding rectangles on the path from n to the
// root after n shrank (forced reinsert removed entries).
func (t *Tree) adjustUp(n *rnode) {
	for p := n.parent; p != nil; p = p.parent {
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].rect = n.mbr()
				break
			}
		}
		n = p
	}
}

// split performs the R* topological split: choose the axis with minimum
// total margin over candidate distributions, then the distribution with
// minimum overlap (ties by area).
func (t *Tree) split(n *rnode) {
	axisEntries, splitIdx := chooseSplit(n.entries)
	left := &rnode{leaf: n.leaf, level: n.level, entries: append([]entry(nil), axisEntries[:splitIdx]...)}
	right := &rnode{leaf: n.leaf, level: n.level, entries: append([]entry(nil), axisEntries[splitIdx:]...)}

	left.adopt()
	right.adopt()

	if n == t.root {
		t.root = &rnode{
			leaf:  false,
			level: n.level + 1,
			entries: []entry{
				{rect: left.mbr(), child: left},
				{rect: right.mbr(), child: right},
			},
		}
		left.parent = t.root
		right.parent = t.root
		return
	}
	// Replace n with left in its parent and add right.
	parent := n.parent
	left.parent = parent
	right.parent = parent
	for i := range parent.entries {
		if parent.entries[i].child == n {
			parent.entries[i] = entry{rect: left.mbr(), child: left}
			break
		}
	}
	parent.entries = append(parent.entries, entry{rect: right.mbr(), child: right})
	t.handleOverflow(parent)
}

// chooseSplit returns the entries sorted along the chosen axis and the
// split index.
func chooseSplit(entries []entry) ([]entry, int) {
	byX := append([]entry(nil), entries...)
	sort.Slice(byX, func(i, j int) bool {
		if byX[i].rect.MinX != byX[j].rect.MinX {
			return byX[i].rect.MinX < byX[j].rect.MinX
		}
		return byX[i].rect.MaxX < byX[j].rect.MaxX
	})
	byY := append([]entry(nil), entries...)
	sort.Slice(byY, func(i, j int) bool {
		if byY[i].rect.MinY != byY[j].rect.MinY {
			return byY[i].rect.MinY < byY[j].rect.MinY
		}
		return byY[i].rect.MaxY < byY[j].rect.MaxY
	})
	mx := marginSum(byX)
	my := marginSum(byY)
	chosen := byX
	if my < mx {
		chosen = byY
	}
	// Pick the distribution with minimal overlap, ties by total area.
	bestIdx, bestOverlap, bestArea := -1, math.Inf(1), math.Inf(1)
	for k := minEntries; k <= len(chosen)-minEntries; k++ {
		l := mbrOf(chosen[:k])
		r := mbrOf(chosen[k:])
		ov := l.overlap(r)
		ar := l.area() + r.area()
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestIdx, bestOverlap, bestArea = k, ov, ar
		}
	}
	return chosen, bestIdx
}

func marginSum(sorted []entry) float64 {
	sum := 0.0
	for k := minEntries; k <= len(sorted)-minEntries; k++ {
		sum += mbrOf(sorted[:k]).margin() + mbrOf(sorted[k:]).margin()
	}
	return sum
}

func mbrOf(es []entry) Rect {
	r := es[0].rect
	for _, e := range es[1:] {
		r = r.union(e.rect)
	}
	return r
}

// Search returns all points inside the window rectangle.
func (t *Tree) Search(r Rect) []Point {
	var out []Point
	var walk func(n *rnode)
	walk = func(n *rnode) {
		for _, e := range n.entries {
			if !e.rect.intersects(r) {
				continue
			}
			if n.leaf {
				out = append(out, e.point)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out
}

// Neighbor is one kNN result with its squared distance to the query.
type Neighbor struct {
	Point  Point
	DistSq float64
}

// pq is a best-first priority queue over tree entries and points.
type pqItem struct {
	dist  float64
	node  *rnode // interior item
	point Point  // leaf item when node == nil
	leaf  bool
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// KNN returns the k nearest stored points to (x, y) in ascending distance
// order, fewer if the tree holds fewer than k points. It uses best-first
// search, visiting only nodes that can contain a closer point.
func (t *Tree) KNN(x, y float64, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &pq{}
	heap.Push(h, pqItem{dist: 0, node: t.root})
	out := make([]Neighbor, 0, k)
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(pqItem)
		if it.leaf {
			out = append(out, Neighbor{Point: it.point, DistSq: it.dist})
			continue
		}
		for _, e := range it.node.entries {
			d := e.rect.distSq(x, y)
			if it.node.leaf {
				heap.Push(h, pqItem{dist: d, point: e.point, leaf: true})
			} else {
				heap.Push(h, pqItem{dist: d, node: e.child})
			}
		}
	}
	return out
}

// Bounds returns the bounding rectangle of all stored points, or false
// when empty.
func (t *Tree) Bounds() (Rect, bool) {
	if t.size == 0 {
		return Rect{}, false
	}
	return t.root.mbr(), true
}
