package rtree

import (
	"math/rand"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
}

func BenchmarkKNN10(b *testing.B) {
	tr := New()
	for _, p := range randomPoints(50000, 2) {
		tr.Insert(p)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := tr.KNN(rng.Float64()*1000, rng.Float64()*1000, 10)
		if len(got) != 10 {
			b.Fatalf("kNN returned %d", len(got))
		}
	}
}

func BenchmarkWindowSearch(b *testing.B) {
	tr := New()
	for _, p := range randomPoints(50000, 4) {
		tr.Insert(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(Rect{400, 400, 450, 450})
	}
}
