package rtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: fmt.Sprintf("p%d", i)}
	}
	return pts
}

// bruteKNN is the reference implementation used to validate the tree.
func bruteKNN(pts []Point, x, y float64, k int) []Neighbor {
	out := make([]Neighbor, 0, len(pts))
	for _, p := range pts {
		d := (p.X-x)*(p.X-x) + (p.Y-y)*(p.Y-y)
		out = append(out, Neighbor{Point: p, DistSq: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DistSq < out[j].DistSq })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("empty len = %d", tr.Len())
	}
	if got := tr.KNN(0, 0, 5); got != nil {
		t.Fatalf("KNN on empty tree = %v", got)
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("Bounds on empty tree should report absent")
	}
}

func TestInsertAndLen(t *testing.T) {
	tr := New()
	pts := randomPoints(500, 1)
	for _, p := range pts {
		tr.Insert(p)
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d, want 500", tr.Len())
	}
}

func TestWindowSearchMatchesBruteForce(t *testing.T) {
	tr := New()
	pts := randomPoints(2000, 2)
	for _, p := range pts {
		tr.Insert(p)
	}
	windows := []Rect{
		{100, 100, 300, 300},
		{0, 0, 1000, 1000},
		{500, 500, 501, 501},
		{-10, -10, -1, -1},
	}
	for _, w := range windows {
		want := map[string]bool{}
		for _, p := range pts {
			if p.X >= w.MinX && p.X <= w.MaxX && p.Y >= w.MinY && p.Y <= w.MaxY {
				want[p.ID] = true
			}
		}
		got := tr.Search(w)
		if len(got) != len(want) {
			t.Fatalf("window %+v: got %d points, want %d", w, len(got), len(want))
		}
		for _, p := range got {
			if !want[p.ID] {
				t.Fatalf("window %+v returned point %s outside window", w, p.ID)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	tr := New()
	pts := randomPoints(3000, 3)
	for _, p := range pts {
		tr.Insert(p)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 50; q++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		k := 1 + rng.Intn(20)
		got := tr.KNN(x, y, k)
		want := bruteKNN(pts, x, y, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d neighbours, want %d", q, len(got), len(want))
		}
		for i := range got {
			// Distances must match (IDs can differ on exact ties).
			if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
				t.Fatalf("query %d neighbour %d: dist %g, want %g", q, i, got[i].DistSq, want[i].DistSq)
			}
		}
	}
}

func TestKNNSortedAscending(t *testing.T) {
	tr := New()
	for _, p := range randomPoints(1000, 5) {
		tr.Insert(p)
	}
	got := tr.KNN(500, 500, 30)
	for i := 1; i < len(got); i++ {
		if got[i].DistSq < got[i-1].DistSq {
			t.Fatalf("KNN results not sorted at %d", i)
		}
	}
}

func TestKNNMoreThanStored(t *testing.T) {
	tr := New()
	for _, p := range randomPoints(7, 6) {
		tr.Insert(p)
	}
	got := tr.KNN(0, 0, 100)
	if len(got) != 7 {
		t.Fatalf("asked for 100 of 7 points, got %d", len(got))
	}
}

func TestKNNZeroK(t *testing.T) {
	tr := New()
	tr.Insert(Point{X: 1, Y: 1, ID: "a"})
	if got := tr.KNN(0, 0, 0); got != nil {
		t.Fatalf("k=0 should return nil, got %v", got)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Point{X: 5, Y: 5, ID: fmt.Sprintf("d%d", i)})
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d, want 100", tr.Len())
	}
	got := tr.KNN(5, 5, 100)
	if len(got) != 100 {
		t.Fatalf("KNN over duplicates returned %d", len(got))
	}
	for _, n := range got {
		if n.DistSq != 0 {
			t.Fatalf("duplicate point at nonzero distance %g", n.DistSq)
		}
	}
}

func TestBounds(t *testing.T) {
	tr := New()
	tr.Insert(Point{X: -3, Y: 7, ID: "a"})
	tr.Insert(Point{X: 12, Y: -1, ID: "b"})
	b, ok := tr.Bounds()
	if !ok {
		t.Fatal("bounds missing")
	}
	want := Rect{-3, -1, 12, 7}
	if b != want {
		t.Fatalf("bounds = %+v, want %+v", b, want)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if r.distSq(5, 5) != 0 {
		t.Fatal("point inside rect should have zero distance")
	}
	if got := r.distSq(13, 14); math.Abs(got-25) > 1e-12 {
		t.Fatalf("distSq corner = %g, want 25", got)
	}
	if got := r.overlap(Rect{5, 5, 15, 15}); math.Abs(got-25) > 1e-12 {
		t.Fatalf("overlap = %g, want 25", got)
	}
	if r.overlap(Rect{20, 20, 30, 30}) != 0 {
		t.Fatal("disjoint rects should not overlap")
	}
}

// Property: 1-NN returned by the tree is never farther than any stored
// point, for arbitrary inserted sets and query locations.
func TestOneNNIsTrueMinimum(t *testing.T) {
	f := func(coords []float64, qx, qy float64) bool {
		if len(coords) < 2 || len(coords) > 300 {
			return true
		}
		// Clamp everything to a range where squared distances cannot
		// overflow; the tree itself does not guard against ±Inf products.
		bound := func(v float64) (float64, bool) {
			return v, !math.IsNaN(v) && math.Abs(v) < 1e6
		}
		var ok bool
		if qx, ok = bound(qx); !ok {
			return true
		}
		if qy, ok = bound(qy); !ok {
			return true
		}
		tr := New()
		pts := make([]Point, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			x, okx := bound(coords[i])
			y, oky := bound(coords[i+1])
			if !okx || !oky {
				continue
			}
			p := Point{X: x, Y: y, ID: fmt.Sprintf("q%d", i)}
			pts = append(pts, p)
			tr.Insert(p)
		}
		if len(pts) == 0 {
			return true
		}
		got := tr.KNN(qx, qy, 1)
		if len(got) != 1 {
			return false
		}
		best := math.Inf(1)
		for _, p := range pts {
			d := (p.X-qx)*(p.X-qx) + (p.Y-qy)*(p.Y-qy)
			if d < best {
				best = d
			}
		}
		return math.Abs(got[0].DistSq-best) <= 1e-9*math.Max(1, best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
