package adaptix

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"efind/internal/chaos"
	"efind/internal/vfs"
)

// TestSaveFaultsNeverYieldPhantomSplits drives the registry save through
// every injected write fault at a mid-commit moment: coverage has grown
// in memory, the save of the new coverage dies, and the durable file must
// still hold exactly the last successfully saved coverage. A phantom
// split — the registry claiming a split is built when its entries never
// became durable — would silently corrupt every future lookup that
// trusts coverage, so this is the invariant the fault matrix pins.
func TestSaveFaultsNeverYieldPhantomSplits(t *testing.T) {
	for _, kind := range []chaos.FaultKind{chaos.TornWrite, chaos.ShortWrite, chaos.NoSpace, chaos.RenameFail} {
		t.Run(kind.String(), func(t *testing.T) {
			reg := NewRegistry()
			b, _, f := testIndex(t, reg, 200, 10)
			total := len(f.Chunks)
			if total < 3 {
				t.Fatalf("need ≥3 chunks, got %d", total)
			}

			// Commit split 0 and save: the last durable coverage.
			scanAndStage(t, b, f, 1, 0)
			b.Commit()
			path := filepath.Join(t.TempDir(), "registry.fmc1")
			if err := reg.Save(path); err != nil {
				t.Fatal(err)
			}

			// Coverage grows in memory, then the save of it dies.
			scanAndStage(t, b, f, 2, 1)
			scanAndStage(t, b, f, 2, 2)
			b.Commit()
			match := ".fstore-"
			if kind == chaos.RenameFail {
				match = "registry.fmc1"
			}
			ffs := chaos.NewFaultFS(vfs.OS{}, chaos.FileFault{Kind: kind, Match: match})
			if err := reg.SaveFS(ffs, path); err == nil {
				t.Fatalf("%v during save must surface as an error", kind)
			}

			// A recovering process loads the file: exactly split 0, no
			// phantom coverage from the failed save.
			fresh := NewRegistry()
			if err := fresh.Load(path); err != nil {
				t.Fatalf("last durable registry unreadable after %v: %v", kind, err)
			}
			if got := fresh.CoveredSplits("bix"); !reflect.DeepEqual(got, []int{0}) {
				t.Fatalf("recovered coverage = %v, want [0] — %v leaked phantom splits", got, kind)
			}
			if _, tot := fresh.Covered("bix"); tot != total {
				t.Fatalf("recovered total = %d, want %d", tot, total)
			}

			// The retry (fault was one-shot) persists the full coverage.
			if err := reg.SaveFS(ffs, path); err != nil {
				t.Fatalf("retry save: %v", err)
			}
			fresh2 := NewRegistry()
			if err := fresh2.Load(path); err != nil {
				t.Fatal(err)
			}
			if got := fresh2.CoveredSplits("bix"); !reflect.DeepEqual(got, []int{0, 1, 2}) {
				t.Fatalf("post-retry coverage = %v, want [0 1 2]", got)
			}
		})
	}
}

// TestMaterializeReproducesCommittedEntries models the recovery path: the
// registry's coverage survives a crash (via checkpoint or Save) but the
// in-memory kvstore's entries do not. Materialize on a fresh Buildable
// must re-extract the covered splits so every lookup answers exactly as
// the pre-crash index did.
func TestMaterializeReproducesCommittedEntries(t *testing.T) {
	reg := NewRegistry()
	b, _, f := testIndex(t, reg, 300, 12)
	scanAndStage(t, b, f, 1, 0)
	scanAndStage(t, b, f, 3, 2)
	b.Commit()

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	want := make(map[string][]string)
	for _, k := range keys {
		vs, err := b.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = vs
	}
	wantFP := reg.Fingerprint()

	// Crash: registry persisted, store contents gone.
	path := filepath.Join(t.TempDir(), "registry.fmc1")
	if err := reg.Save(path); err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	if err := reg2.Load(path); err != nil {
		t.Fatal(err)
	}
	if reg2.Fingerprint() != wantFP {
		t.Fatalf("registry fingerprint changed across save/load: %s vs %s", reg2.Fingerprint(), wantFP)
	}
	b2, _, _ := testIndex(t, reg2, 300, 12)
	if cov, _ := reg2.Covered("bix"); cov != 2 {
		t.Fatalf("recovered coverage = %d, want 2", cov)
	}

	// Before Materialize the store is empty: covered splits would serve
	// nothing. After, every lookup matches the pre-crash index exactly.
	if err := b2.Materialize(); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	for _, k := range keys {
		vs, err := b2.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vs, want[k]) {
			t.Fatalf("lookup %q after Materialize = %v, want %v", k, vs, want[k])
		}
	}

	// Materialize is idempotent: a second pass must not duplicate values.
	if err := b2.Materialize(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		vs, err := b2.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vs, want[k]) {
			t.Fatalf("second Materialize changed lookup %q: %v, want %v", k, vs, want[k])
		}
	}
}
