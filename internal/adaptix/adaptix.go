// Package adaptix implements adaptive index creation: indices built
// incrementally as a side-effect of running MapReduce jobs, in the image
// of HAIL/LIAH (Dittrich et al.). EFind itself assumes every index
// pre-exists; adaptix closes that gap with a fifth strategy family — a
// job whose map phase scans the input anyway extracts index entries for
// a configurable fraction of its splits (the offer rate), stages them
// per task attempt, and commits them between jobs, so repeated jobs
// converge from scan-cost plans to indexed plans.
//
// The package has two halves. Registry tracks per-index build progress
// (which input splits are covered) and persists it as an fstore
// snapshot. Buildable wraps a kvstore.Store plus its source file into an
// index.Buildable accessor that is usable at any coverage: lookups serve
// covered splits from the store and fall back to scanning the uncovered
// remainder, so results are always exact and only the serve time shrinks
// as coverage grows.
package adaptix

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// progress is one index's build state: how many build units (input
// splits) exist and which are committed.
type progress struct {
	total   int
	covered map[int]bool
}

// Registry tracks per-index build progress. It is shared across jobs —
// jobsvc hands all tenants the same registry so one tenant's builds
// benefit every tenant's planner — and is safe for concurrent use. All
// mutation happens at serial points (Buildable.Commit between jobs), so
// a running job observes frozen coverage.
type Registry struct {
	mu      sync.Mutex
	indices map[string]*progress
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{indices: make(map[string]*progress)}
}

// Register declares an index with the given number of build units. It is
// idempotent: re-registering keeps existing coverage, so a registry
// loaded from disk survives accessor reconstruction. Growing the total
// (the source file gained chunks) is accepted; shrinking is ignored.
func (r *Registry) Register(name string, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.indices[name]
	if !ok {
		r.indices[name] = &progress{total: total, covered: make(map[int]bool)}
		return
	}
	if total > p.total {
		p.total = total
	}
}

// Covered returns how many of the index's build units are committed.
// Unknown indices report (0, 0).
func (r *Registry) Covered(name string) (covered, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.indices[name]
	if !ok {
		return 0, 0
	}
	return len(p.covered), p.total
}

// IsCovered reports whether one build unit is committed.
func (r *Registry) IsCovered(name string, split int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.indices[name]
	return ok && p.covered[split]
}

// Completeness returns the covered fraction in [0,1]. An unknown or
// empty index reports 0.
func (r *Registry) Completeness(name string) float64 {
	c, t := r.Covered(name)
	if t == 0 {
		return 0
	}
	return float64(c) / float64(t)
}

// MarkBuilt commits one build unit, reporting whether it was newly
// covered (idempotent: duplicate marks return false). Splits outside
// [0, total) are rejected — a corrupted persisted registry must not
// inflate completeness.
func (r *Registry) MarkBuilt(name string, split int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.indices[name]
	if !ok || split < 0 || split >= p.total || p.covered[split] {
		return false
	}
	p.covered[split] = true
	return true
}

// CoveredSplits returns the committed build units in ascending order.
func (r *Registry) CoveredSplits(name string) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.indices[name]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(p.covered))
	for s := range p.covered {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Names returns the registered index names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.indices))
	for n := range r.indices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fingerprint renders the whole registry as one deterministic string —
// the bit-identity tests compare it across serial and parallel
// executors, so it iterates everything in sorted order.
func (r *Registry) Fingerprint() string {
	var b strings.Builder
	for _, name := range r.Names() {
		covered := r.CoveredSplits(name)
		_, total := r.Covered(name)
		fmt.Fprintf(&b, "%s total=%d covered=%v\n", name, total, covered)
	}
	return b.String()
}
