package adaptix

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/index"
	"efind/internal/kvstore"
	"efind/internal/sim"
)

func testCluster() *sim.Cluster { return sim.NewCluster(sim.DefaultConfig()) }

// testIndex builds a Buildable over a small synthetic file: records
// "r<i>" with value "k<i%%keys> payload", indexed on the first token —
// the same shape the synthetic workload uses.
func testIndex(t *testing.T, reg *Registry, records, keys int) (*Buildable, *kvstore.Store, *dfs.File) {
	t.Helper()
	cl := testCluster()
	fs := dfs.New(cl)
	fs.ChunkTarget = 256 // force several chunks
	recs := make([]dfs.Record, records)
	for i := range recs {
		recs[i] = dfs.Record{
			Key:   fmt.Sprintf("r%04d", i),
			Value: fmt.Sprintf("k%03d payload", i%keys),
		}
	}
	file, err := fs.Create("src", recs)
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.NewHash(cl, "bix", 8, 2, 1e-5)
	b, err := New(Config{
		Name:   "bix",
		Source: file,
		Extract: func(key, value string) []index.BuildEntry {
			ik := value[:strings.IndexByte(value, ' ')]
			return []index.BuildEntry{{Key: ik, Value: key}}
		},
		Store:     store,
		Registry:  reg,
		ScanTime:  1e-4,
		BuildTime: 1e-6,
		OfferRate: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, store, file
}

// scanAndStage simulates the piggyback build stage for one split on one
// node: extract every record's entries and stage them.
func scanAndStage(t *testing.T, b *Buildable, f *dfs.File, node sim.NodeID, split int) {
	t.Helper()
	recs, err := f.Chunks[split].Records()
	if err != nil {
		t.Fatal(err)
	}
	var entries []index.BuildEntry
	for _, r := range recs {
		entries = append(entries, b.Extract(r.Key, r.Value)...)
	}
	b.Stage(node, split, entries)
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Register("a", 4)
	if c, tot := r.Covered("a"); c != 0 || tot != 4 {
		t.Fatalf("Covered = %d/%d, want 0/4", c, tot)
	}
	if !r.MarkBuilt("a", 1) {
		t.Fatal("MarkBuilt(1) = false on fresh split")
	}
	if r.MarkBuilt("a", 1) {
		t.Fatal("MarkBuilt(1) idempotence violated")
	}
	if r.MarkBuilt("a", 9) || r.MarkBuilt("a", -1) || r.MarkBuilt("zz", 0) {
		t.Fatal("out-of-range or unknown-index MarkBuilt accepted")
	}
	r.Register("a", 4) // idempotent re-register keeps coverage
	if got := r.CoveredSplits("a"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("CoveredSplits = %v, want [1]", got)
	}
	if f := r.Completeness("a"); f != 0.25 {
		t.Fatalf("Completeness = %v, want 0.25", f)
	}
	if f := r.Completeness("missing"); f != 0 {
		t.Fatalf("Completeness(missing) = %v, want 0", f)
	}
}

func TestBuildableLookupExactAtAnyCoverage(t *testing.T) {
	reg := NewRegistry()
	b, _, f := testIndex(t, reg, 60, 7)
	if len(f.Chunks) < 3 {
		t.Fatalf("want several chunks, got %d", len(f.Chunks))
	}

	// Ground truth from a full scan.
	want := map[string][]string{}
	for _, rec := range f.All() {
		ik := strings.Fields(rec.Value)[0]
		want[ik] = append(want[ik], rec.Key)
	}

	check := func(stage string) {
		t.Helper()
		for ik, vals := range want {
			got, err := b.Lookup(ik)
			if err != nil {
				t.Fatalf("%s: Lookup(%s): %v", stage, ik, err)
			}
			g, w := append([]string(nil), got...), append([]string(nil), vals...)
			sort.Strings(g)
			sort.Strings(w)
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("%s: Lookup(%s) = %v, want %v", stage, ik, got, w)
			}
		}
		if got, err := b.Lookup("nope"); err != nil || len(got) != 0 {
			t.Fatalf("%s: Lookup(miss) = %v, %v", stage, got, err)
		}
	}

	check("coverage 0")
	base := b.ServeTime()

	// Build the first offered batch through the stage/commit protocol.
	offered := b.OfferSplits()
	if len(offered) == 0 {
		t.Fatal("no splits offered")
	}
	for _, s := range offered {
		scanAndStage(t, b, f, 0, s)
	}
	if got := b.Commit(); got != len(offered) {
		t.Fatalf("Commit = %d, want %d", got, len(offered))
	}
	check("partial coverage")
	if st := b.ServeTime(); st >= base {
		t.Fatalf("ServeTime did not shrink with coverage: %v -> %v", base, st)
	}
	if b.HostsFor("k001") != nil {
		t.Fatal("HostsFor should be unknown under partial coverage")
	}

	// Offered splits advance past committed coverage.
	next := b.OfferSplits()
	for _, s := range next {
		for _, o := range offered {
			if s == o {
				t.Fatalf("split %d re-offered after commit", s)
			}
		}
	}

	// Finish the build.
	for {
		off := b.OfferSplits()
		if len(off) == 0 {
			break
		}
		for _, s := range off {
			scanAndStage(t, b, f, 1, s)
		}
		b.Commit()
	}
	c, tot := b.BuildProgress()
	if c != tot || tot != len(f.Chunks) {
		t.Fatalf("BuildProgress = %d/%d, want full %d", c, tot, len(f.Chunks))
	}
	check("full coverage")
	if st, want := b.ServeTime(), b.Store().ServeTime(); st != want {
		t.Fatalf("full-coverage ServeTime = %v, want store's %v", st, want)
	}
	if b.HostsFor("k001") == nil {
		t.Fatal("full coverage should expose store placement")
	}
}

func TestStageRollbackAndRefcount(t *testing.T) {
	reg := NewRegistry()
	b, _, f := testIndex(t, reg, 60, 5)
	if len(f.Chunks) < 5 {
		t.Fatalf("want >= 5 chunks, got %d", len(f.Chunks))
	}

	// Attempt on node 0 stages split 0, then fails: rollback.
	undo := b.SnapshotBuild(0)
	scanAndStage(t, b, f, 0, 0)
	if b.Staged() != 1 {
		t.Fatalf("Staged = %d, want 1", b.Staged())
	}
	undo()
	if b.Staged() != 0 {
		t.Fatalf("Staged after rollback = %d, want 0", b.Staged())
	}

	// Speculative duplicate: winner on node 0, backup on node 1; backup's
	// rollback must not discard the winner's entries.
	scanAndStage(t, b, f, 0, 1)
	undoBackup := b.SnapshotBuild(1)
	scanAndStage(t, b, f, 1, 1)
	undoBackup()
	if b.Staged() != 1 {
		t.Fatalf("Staged after losing backup rollback = %d, want 1", b.Staged())
	}
	if got := b.Commit(); got != 1 {
		t.Fatalf("Commit = %d, want 1", got)
	}
	if !reg.IsCovered("bix", 1) {
		t.Fatal("split 1 not covered after commit")
	}

	// Node crash: ResetBuild discards everything the node staged.
	scanAndStage(t, b, f, 2, 2)
	scanAndStage(t, b, f, 2, 3)
	scanAndStage(t, b, f, 3, 4)
	b.ResetBuild(2)
	if b.Staged() != 1 {
		t.Fatalf("Staged after crash reset = %d, want 1 (node 3's)", b.Staged())
	}
	// Abandon drops the rest.
	b.Abandon()
	if b.Staged() != 0 {
		t.Fatalf("Staged after Abandon = %d, want 0", b.Staged())
	}
	if c, _ := b.BuildProgress(); c != 1 {
		t.Fatalf("coverage changed by rollback paths: %d, want 1", c)
	}
}

func TestCommitIsIdempotentAcrossDuplicateSplits(t *testing.T) {
	reg := NewRegistry()
	b, store, f := testIndex(t, reg, 40, 5)
	scanAndStage(t, b, f, 0, 0)
	b.Commit()
	keys := store.Len()
	// A later job re-stages the now-covered split (it was offered before
	// the first commit landed); commit must skip it.
	scanAndStage(t, b, f, 1, 0)
	if got := b.Commit(); got != 0 {
		t.Fatalf("re-commit of covered split = %d, want 0", got)
	}
	if store.Len() != keys {
		t.Fatalf("store grew on duplicate commit: %d -> %d", keys, store.Len())
	}
}

func TestRegistryPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.fmc")

	r := NewRegistry()
	r.Register("alpha", 8)
	r.Register("beta", 3)
	for _, s := range []int{0, 2, 5} {
		r.MarkBuilt("alpha", s)
	}
	r.MarkBuilt("beta", 1)
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry()
	if err := r2.Load(path); err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint() != r2.Fingerprint() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", r.Fingerprint(), r2.Fingerprint())
	}

	// Loading merges with in-memory progress.
	r2.MarkBuilt("beta", 2)
	if err := r2.Load(path); err != nil {
		t.Fatal(err)
	}
	if got := r2.CoveredSplits("beta"); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("merge = %v, want [1 2]", got)
	}

	// An arbitrary non-registry snapshot is rejected.
	if err := r2.Load(filepath.Join(dir, "missing.fmc")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestPersistEmptyRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.fmc")
	r := NewRegistry()
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.Load(path); err != nil {
		t.Fatal(err)
	}
	if len(r2.Names()) != 0 {
		t.Fatalf("empty round trip yielded %v", r2.Names())
	}
}

// TestFreezeMidBuildRebuildsSnapshot is the kvstore.Freeze interaction
// satellite: a store frozen to disk mid-build must serve post-commit
// lookups from a rebuilt snapshot, never the stale pre-commit one.
func TestFreezeMidBuildRebuildsSnapshot(t *testing.T) {
	reg := NewRegistry()
	b, store, f := testIndex(t, reg, 60, 7)

	// Build and commit the first batch, then freeze: the snapshot now
	// holds exactly the first batch's entries.
	for _, s := range b.OfferSplits() {
		scanAndStage(t, b, f, 0, s)
	}
	b.Commit()
	if err := store.Freeze(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Lookup("k001"); err != nil {
		t.Fatal(err)
	}
	if store.Rebuilds() != 0 {
		t.Fatalf("Rebuilds before second commit = %d, want 0", store.Rebuilds())
	}

	// Second build batch commits while frozen: Puts mark partitions
	// stale, and the next lookups rebuild them instead of serving the
	// mid-build snapshot.
	for _, s := range b.OfferSplits() {
		scanAndStage(t, b, f, 0, s)
	}
	if got := b.Commit(); got == 0 {
		t.Fatal("second commit built nothing")
	}

	want := map[string][]string{}
	for _, rec := range f.All() {
		ik := strings.Fields(rec.Value)[0]
		want[ik] = append(want[ik], rec.Key)
	}
	for ik, vals := range want {
		got, err := b.Lookup(ik)
		if err != nil {
			t.Fatalf("Lookup(%s) after freeze+commit: %v", ik, err)
		}
		g, w := append([]string(nil), got...), append([]string(nil), vals...)
		sort.Strings(g)
		sort.Strings(w)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("stale snapshot served: Lookup(%s) = %v, want %v", ik, got, w)
		}
	}
	if store.Rebuilds() == 0 {
		t.Fatal("expected snapshot rebuilds after mid-build freeze + commit")
	}
}

func TestBuildAllMatchesIncrementalBuild(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	a, _, fa := testIndex(t, regA, 50, 6)
	c, _, _ := testIndex(t, regB, 50, 6)
	for {
		off := a.OfferSplits()
		if len(off) == 0 {
			break
		}
		for _, s := range off {
			scanAndStage(t, a, fa, 0, s)
		}
		a.Commit()
	}
	if err := c.BuildAll(); err != nil {
		t.Fatal(err)
	}
	for _, ik := range []string{"k000", "k003", "k005"} {
		va, _ := a.Lookup(ik)
		vb, _ := c.Lookup(ik)
		sort.Strings(va)
		sort.Strings(vb)
		if !reflect.DeepEqual(va, vb) {
			t.Fatalf("incremental vs BuildAll diverge on %s: %v vs %v", ik, va, vb)
		}
	}
	if regA.Fingerprint() != regB.Fingerprint() {
		t.Fatalf("registry fingerprints diverge:\n%s\nvs\n%s", regA.Fingerprint(), regB.Fingerprint())
	}
}
