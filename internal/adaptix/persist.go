package adaptix

import (
	"fmt"
	"strconv"
	"strings"

	"efind/internal/fstore"
)

// The registry persists as one fstore snapshot: a version sentinel entry
// plus one entry per index (key "ix:<name>", revision = total build
// units, values = the covered splits as decimal strings). fstore's
// atomic temp+rename write and eager corruption validation apply, so a
// torn or bit-flipped registry file surfaces as an error at Load rather
// than as silently inflated completeness.
const (
	persistSentinel = "adaptix-registry"
	persistVersion  = 1
	persistPrefix   = "ix:"
)

// Save writes the registry's state to path as an fstore snapshot.
func (r *Registry) Save(path string) error {
	b := fstore.NewBuilder()
	b.Add(persistSentinel, persistVersion)
	for _, name := range r.Names() {
		_, total := r.Covered(name)
		covered := r.CoveredSplits(name)
		vals := make([]string, len(covered))
		for i, s := range covered {
			vals[i] = strconv.Itoa(s)
		}
		b.Add(persistPrefix+name, int64(total), vals...)
	}
	return b.WriteFile(path)
}

// Load merges a saved registry into r: indices are registered and their
// persisted coverage marked built. Coverage already present in r is
// kept (MarkBuilt is idempotent), so loading after partial in-memory
// progress unions the two.
func (r *Registry) Load(path string) error {
	snap, err := fstore.Open(path, fstore.Options{})
	if err != nil {
		return err
	}
	defer snap.Close()
	if _, ok := snap.Find(persistSentinel); !ok {
		return fmt.Errorf("adaptix: %s is not a registry snapshot", path)
	}
	for i := 0; i < snap.Len(); i++ {
		key := snap.Key(i)
		if !strings.HasPrefix(key, persistPrefix) {
			continue
		}
		name := strings.TrimPrefix(key, persistPrefix)
		total := int(snap.Revision(i))
		r.Register(name, total)
		vals, err := snap.Values(i)
		if err != nil {
			return err
		}
		for _, v := range vals {
			s, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("adaptix: registry %s: bad split %q for %s: %v", path, v, name, err)
			}
			if s < 0 || s >= total {
				return fmt.Errorf("adaptix: registry %s: split %d for %s outside [0,%d)", path, s, name, total)
			}
			r.MarkBuilt(name, s)
		}
	}
	return nil
}
