package adaptix

import (
	"fmt"
	"strconv"
	"strings"

	"efind/internal/fstore"
	"efind/internal/vfs"
)

// The registry persists as one fstore snapshot: a version sentinel entry
// plus one entry per index (key "ix:<name>", revision = total build
// units, values = the covered splits as decimal strings). fstore's
// atomic temp+rename write, write-verification, and eager corruption
// validation apply, so a torn or bit-flipped registry file surfaces as
// an error at Load (or is refused before the rename replaces the last
// durable file) rather than as silently inflated completeness.
const (
	persistSentinel = "adaptix-registry"
	persistVersion  = 1
	persistPrefix   = "ix:"
)

// AppendTo adds the registry's state to an fstore builder under the
// given key prefix — the encoding Save uses, exposed so the job
// service's checkpoint writer can fold registry coverage into its own
// snapshot instead of managing a second file.
func (r *Registry) AppendTo(b *fstore.Builder, prefix string) {
	for _, name := range r.Names() {
		_, total := r.Covered(name)
		covered := r.CoveredSplits(name)
		vals := make([]string, len(covered))
		for i, s := range covered {
			vals[i] = strconv.Itoa(s)
		}
		b.Add(prefix+name, int64(total), vals...)
	}
}

// LoadFrom merges registry state stored under prefix in an open snapshot
// into r: indices are registered and their persisted coverage marked
// built. Coverage already present in r is kept (MarkBuilt is
// idempotent), so loading after partial in-memory progress unions the
// two.
func (r *Registry) LoadFrom(snap *fstore.Snapshot, prefix string) error {
	for i := 0; i < snap.Len(); i++ {
		key := snap.Key(i)
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		name := strings.TrimPrefix(key, prefix)
		total := int(snap.Revision(i))
		r.Register(name, total)
		vals, err := snap.Values(i)
		if err != nil {
			return err
		}
		for _, v := range vals {
			s, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("adaptix: registry %s: bad split %q for %s: %v", snap.Path(), v, name, err)
			}
			if s < 0 || s >= total {
				return fmt.Errorf("adaptix: registry %s: split %d for %s outside [0,%d)", snap.Path(), s, name, total)
			}
			r.MarkBuilt(name, s)
		}
	}
	return nil
}

// Save writes the registry's state to path as an fstore snapshot.
func (r *Registry) Save(path string) error {
	return r.SaveFS(vfs.OS{}, path)
}

// SaveFS is Save through an explicit filesystem — the fault-injection
// seam. The write is atomic and read-back-verified, so an injected torn
// or short write leaves the previous durable registry file untouched.
func (r *Registry) SaveFS(fs vfs.FS, path string) error {
	b := fstore.NewBuilder()
	b.Add(persistSentinel, persistVersion)
	r.AppendTo(b, persistPrefix)
	return b.WriteFileFS(fs, path)
}

// Load merges a saved registry into r (see LoadFrom).
func (r *Registry) Load(path string) error {
	snap, err := fstore.Open(path, fstore.Options{})
	if err != nil {
		return err
	}
	defer snap.Close()
	if _, ok := snap.Find(persistSentinel); !ok {
		return fmt.Errorf("adaptix: %s is not a registry snapshot", path)
	}
	return r.LoadFrom(snap, persistPrefix)
}
