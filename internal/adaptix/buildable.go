package adaptix

import (
	"fmt"
	"sort"
	"sync"

	"efind/internal/dfs"
	"efind/internal/index"
	"efind/internal/kvstore"
	"efind/internal/sim"
)

// Config describes one buildable index: a kvstore that accumulates the
// built entries, the source file whose splits are the build units, and
// the extraction function that derives index entries from scanned
// records.
type Config struct {
	// Name identifies the index in plans, counters, and the registry.
	Name string
	// Source is the file whose chunks are the build units; a lookup's
	// scan fallback reads its uncovered chunks.
	Source *dfs.File
	// Extract derives the index entries of one source record (e.g.
	// "index the join attribute inside Value under the record's key").
	Extract func(key, value string) []index.BuildEntry
	// Store holds committed entries and serves the covered share of
	// every lookup; its ServeTime is the fully-built T_j.
	Store *kvstore.Store
	// Registry tracks which splits are committed, shared across jobs.
	Registry *Registry
	// ScanTime is the per-lookup serve-time penalty of each uncovered
	// split (the scan fallback's share of T_j); at coverage c the
	// accessor's serve time is Store.ServeTime() + (total-c)*ScanTime.
	ScanTime float64
	// BuildTime is the virtual time the piggyback build stage charges
	// per scanned record of an offered split.
	BuildTime float64
	// OfferRate is the fraction of total splits one run offers to build
	// (LIAH's offer rate rho). 0.25 covers the input in four runs; 0
	// disables building, leaving the accessor a pure scan-fallback index.
	OfferRate float64
}

// stagedSplit is one split's extracted entries awaiting commit. count
// refcounts concurrent stagings of the same split (speculative backup
// attempts): a loser's rollback decrements without discarding the
// winner's entries.
type stagedSplit struct {
	count   int
	entries []index.BuildEntry
}

// Buildable is an index.Buildable accessor over a kvstore plus a scan
// fallback. It is usable at any build coverage; lookups are exact
// regardless of how much has been built. Safe for concurrent use by
// parallel tasks; Commit and Abandon must only be called at serial
// points (between jobs), which the core runtime guarantees.
type Buildable struct {
	cfg   Config
	total int

	mu      sync.Mutex
	staged  map[int]*stagedSplit
	journal map[sim.NodeID][]int
	// resident tracks splits whose entries this process has put into the
	// store (via Commit, BuildAll, or Materialize), so Materialize never
	// double-inserts what is already being served.
	resident map[int]bool
	// scans memoizes the per-split scan fallback: split → extracted
	// key → values in record order. Entries are dropped once a split
	// commits (the store serves it from then on).
	scans map[int]map[string][]string
}

var _ index.Buildable = (*Buildable)(nil)

// New wraps cfg into a Buildable, registering the index with the
// registry (idempotently, so a registry loaded from disk keeps its
// coverage).
func New(cfg Config) (*Buildable, error) {
	switch {
	case cfg.Name == "":
		return nil, fmt.Errorf("adaptix: Config.Name required")
	case cfg.Source == nil:
		return nil, fmt.Errorf("adaptix: Config.Source required")
	case cfg.Extract == nil:
		return nil, fmt.Errorf("adaptix: Config.Extract required")
	case cfg.Store == nil:
		return nil, fmt.Errorf("adaptix: Config.Store required")
	case cfg.Registry == nil:
		return nil, fmt.Errorf("adaptix: Config.Registry required")
	}
	b := &Buildable{
		cfg:      cfg,
		total:    len(cfg.Source.Chunks),
		staged:   make(map[int]*stagedSplit),
		journal:  make(map[sim.NodeID][]int),
		scans:    make(map[int]map[string][]string),
		resident: make(map[int]bool),
	}
	cfg.Registry.Register(cfg.Name, b.total)
	return b, nil
}

// Name implements index.Accessor.
func (b *Buildable) Name() string { return b.cfg.Name }

// Store returns the underlying kvstore (the experiment inspects its
// lookup counters).
func (b *Buildable) Store() *kvstore.Store { return b.cfg.Store }

// Source returns the file whose splits are the build units. The plan
// compiler checks it against the job input before piggybacking a build
// stage — entries extracted from a different file's records would index
// the wrong data.
func (b *Buildable) Source() *dfs.File { return b.cfg.Source }

// Lookup implements index.Accessor: the covered share of the key's
// values comes from the store, the uncovered remainder from a memoized
// scan of the source chunks. Value order is store commit order followed
// by uncovered splits in ascending split order — deterministic, though
// not necessarily global record order when coverage grew non-prefix
// (a mid-job plan change building only the splits it still had to read).
func (b *Buildable) Lookup(key string) ([]string, error) {
	vals, err := b.cfg.Store.Lookup(key)
	if err != nil {
		return nil, err
	}
	for _, s := range b.uncovered() {
		m, err := b.scanOf(s)
		if err != nil {
			return nil, err
		}
		vals = append(vals, m[key]...)
	}
	return vals, nil
}

// ServeTime implements index.Accessor: the store's fully-built T_j plus
// the scan penalty of every still-uncovered split. Coverage only changes
// at serial points, so the value is stable for the duration of a job —
// the cost model's BuildModel.TjAt mirrors this formula.
func (b *Buildable) ServeTime() float64 {
	covered, total := b.BuildProgress()
	return b.cfg.Store.ServeTime() + float64(total-covered)*b.cfg.ScanTime
}

// HostsFor implements index.Accessor. Until the build completes a lookup
// has to touch the scan fallback, which no single node can serve
// locally, so placement is unknown; at full coverage the store's
// placement applies.
func (b *Buildable) HostsFor(key string) []sim.NodeID {
	if covered, total := b.BuildProgress(); covered < total {
		return nil
	}
	return b.cfg.Store.HostsFor(key)
}

// BuildProgress implements index.Buildable.
func (b *Buildable) BuildProgress() (covered, total int) {
	c, t := b.cfg.Registry.Covered(b.cfg.Name)
	if t < b.total {
		t = b.total
	}
	return c, t
}

// IsBuilt implements index.Buildable.
func (b *Buildable) IsBuilt(split int) bool {
	return b.cfg.Registry.IsCovered(b.cfg.Name, split)
}

// ScanServeTime implements index.Buildable.
func (b *Buildable) ScanServeTime() float64 { return b.cfg.ScanTime }

// BuildCharge implements index.Buildable.
func (b *Buildable) BuildCharge() float64 { return b.cfg.BuildTime }

// OfferSplits implements index.Buildable: the ceil(rate*total) lowest
// uncovered splits, ascending. The lowest-first policy keeps coverage a
// prefix when whole-input jobs build, which keeps lookup value order
// aligned with record order.
func (b *Buildable) OfferSplits() []int {
	if b.cfg.OfferRate <= 0 {
		return nil
	}
	n := int(float64(b.total)*b.cfg.OfferRate + 0.999999)
	if n < 1 {
		n = 1
	}
	unc := b.uncovered()
	if len(unc) > n {
		unc = unc[:n]
	}
	return unc
}

// Extract implements index.Buildable.
func (b *Buildable) Extract(key, value string) []index.BuildEntry {
	return b.cfg.Extract(key, value)
}

// Stage implements index.Buildable: records one fully scanned split's
// entries pre-commit. A split staged twice (speculative duplicate
// attempts scan identical records) keeps the first copy and bumps the
// refcount, so whichever attempt loses can roll back without discarding
// the winner's entries.
func (b *Buildable) Stage(node sim.NodeID, split int, entries []index.BuildEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st, ok := b.staged[split]; ok {
		st.count++
	} else {
		b.staged[split] = &stagedSplit{count: 1, entries: entries}
	}
	b.journal[node] = append(b.journal[node], split)
}

// SnapshotBuild implements index.Buildable: marks the node's staging
// journal ahead of a task attempt; the returned rollback unwinds splits
// staged by this node since the mark (the AttemptGuard discipline every
// stateful stage follows, so a failed or losing-speculative attempt
// leaves no trace).
func (b *Buildable) SnapshotBuild(node sim.NodeID) func() {
	b.mu.Lock()
	mark := len(b.journal[node])
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		j := b.journal[node]
		if mark > len(j) {
			mark = len(j)
		}
		for _, split := range j[mark:] {
			b.unstageLocked(split)
		}
		b.journal[node] = j[:mark]
	}
}

// ResetBuild implements index.Buildable: discards everything the node
// has staged (node crash — the splits re-stage when the recovery wave
// re-runs the dead node's tasks).
func (b *Buildable) ResetBuild(node sim.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, split := range b.journal[node] {
		b.unstageLocked(split)
	}
	delete(b.journal, node)
}

func (b *Buildable) unstageLocked(split int) {
	st, ok := b.staged[split]
	if !ok {
		return
	}
	st.count--
	if st.count <= 0 {
		delete(b.staged, split)
	}
}

// Commit implements index.Buildable: installs the staged splits into the
// store and registry in ascending split order, returning how many became
// newly covered. Runs at a serial point between jobs, so concurrent
// lookups never observe a half-committed split.
func (b *Buildable) Commit() int {
	b.mu.Lock()
	splits := make([]int, 0, len(b.staged))
	for s := range b.staged {
		splits = append(splits, s)
	}
	sort.Ints(splits)
	staged := b.staged
	b.staged = make(map[int]*stagedSplit)
	b.journal = make(map[sim.NodeID][]int)
	b.mu.Unlock()

	built := 0
	for _, s := range splits {
		if b.cfg.Registry.IsCovered(b.cfg.Name, s) {
			continue
		}
		for _, e := range staged[s].entries {
			b.cfg.Store.Put(e.Key, e.Value)
		}
		if b.cfg.Registry.MarkBuilt(b.cfg.Name, s) {
			built++
		}
		b.mu.Lock()
		b.resident[s] = true
		delete(b.scans, s)
		b.mu.Unlock()
	}
	return built
}

// Abandon implements index.Buildable: discards all staged state without
// committing (the job failed; its scans may be incomplete).
func (b *Buildable) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.staged = make(map[int]*stagedSplit)
	b.journal = make(map[sim.NodeID][]int)
}

// Staged returns how many splits are currently staged (tests).
func (b *Buildable) Staged() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.staged)
}

// Materialize re-extracts every registry-covered split into the store.
// A recovered coordinator restores registry coverage from its durable
// checkpoint, but the store behind the index is rebuilt fresh; replaying
// the deterministic Extract over exactly the covered splits reproduces
// the entries the pre-crash commits installed, bit for bit. Splits this
// process already put into the store (a prior Materialize or Commit) are
// skipped, so the call is idempotent.
func (b *Buildable) Materialize() error {
	for _, s := range b.cfg.Registry.CoveredSplits(b.cfg.Name) {
		b.mu.Lock()
		done := b.resident[s]
		b.mu.Unlock()
		if done {
			continue
		}
		recs, err := b.cfg.Source.Chunks[s].Records()
		if err != nil {
			return err
		}
		for _, rec := range recs {
			for _, e := range b.cfg.Extract(rec.Key, rec.Value) {
				b.cfg.Store.Put(e.Key, e.Value)
			}
		}
		b.mu.Lock()
		b.resident[s] = true
		b.mu.Unlock()
	}
	return nil
}

// BuildAll scans and commits every uncovered split immediately — the
// offline bulk build an experiment's pre-built leg uses as the
// convergence target.
func (b *Buildable) BuildAll() error {
	for _, s := range b.uncovered() {
		recs, err := b.cfg.Source.Chunks[s].Records()
		if err != nil {
			return err
		}
		for _, rec := range recs {
			for _, e := range b.cfg.Extract(rec.Key, rec.Value) {
				b.cfg.Store.Put(e.Key, e.Value)
			}
		}
		b.cfg.Registry.MarkBuilt(b.cfg.Name, s)
		b.mu.Lock()
		b.resident[s] = true
		b.mu.Unlock()
	}
	return nil
}

// uncovered returns the uncovered splits ascending.
func (b *Buildable) uncovered() []int {
	out := make([]int, 0, b.total)
	for s := 0; s < b.total; s++ {
		if !b.cfg.Registry.IsCovered(b.cfg.Name, s) {
			out = append(out, s)
		}
	}
	return out
}

// scanOf returns split s's memoized scan map, computing it on first use.
// Computation holds the mutex: parallel lookups of a cold split
// serialize, which costs wall time only (virtual time is charged by the
// cost model, not measured) and keeps the memo deterministic.
func (b *Buildable) scanOf(s int) (map[string][]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.scans[s]; ok {
		return m, nil
	}
	recs, err := b.cfg.Source.Chunks[s].Records()
	if err != nil {
		return nil, err
	}
	m := make(map[string][]string)
	for _, rec := range recs {
		for _, e := range b.cfg.Extract(rec.Key, rec.Value) {
			m[e.Key] = append(m[e.Key], e.Value)
		}
	}
	b.scans[s] = m
	return m, nil
}
