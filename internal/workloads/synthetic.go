package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"efind/internal/dfs"
	"efind/internal/kvstore"
)

// SyntheticConfig shapes the synthetic data set of §5.1: Records records
// with integer keys drawn uniformly from [0, KeyDomain), each with a
// ValueSize-byte payload, joined against an index mapping every distinct
// key to an IndexValueSize-byte value (the paper's l parameter, swept from
// 10B to 30KB).
type SyntheticConfig struct {
	Records        int
	KeyDomain      int
	ValueSize      int
	IndexValueSize int
	Partitions     int
	Replicas       int
	ServeTime      float64
	Seed           int64
}

// DefaultSyntheticConfig scales the paper's 10M×1KB setup down for the
// simulation (the record:domain ratio of 2, the source of Θ=2, is kept).
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Records:        50000,
		KeyDomain:      25000,
		ValueSize:      1024,
		IndexValueSize: 1024,
		Partitions:     32,
		Replicas:       3,
		ServeTime:      0.001,
		Seed:           7,
	}
}

// GenerateSynthetic writes the data set and builds the matching index.
// Only keys that actually occur are loaded into the index (the paper maps
// "each distinct key" to a value of size l).
func GenerateSynthetic(fs *dfs.FS, name string, cfg SyntheticConfig) (*dfs.File, *kvstore.Store, error) {
	if cfg.Records <= 0 || cfg.KeyDomain <= 0 {
		return nil, nil, fmt.Errorf("workloads: synthetic config needs records and key domain > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	recs := make([]dfs.Record, cfg.Records)
	seen := make(map[int]bool)
	payload := strings.Repeat("x", cfg.ValueSize)
	for i := range recs {
		k := rng.Intn(cfg.KeyDomain)
		seen[k] = true
		recs[i] = dfs.Record{
			Key:   fmt.Sprintf("s%08d", i),
			Value: fmt.Sprintf("%08d %s", k, payload),
		}
	}
	file, err := fs.Create(name, recs)
	if err != nil {
		return nil, nil, err
	}
	store := kvstore.NewHash(fs.Cluster(), name+"-index", cfg.Partitions, cfg.Replicas, cfg.ServeTime)
	ival := strings.Repeat("v", cfg.IndexValueSize)
	for k := range seen {
		store.Put(fmt.Sprintf("%08d", k), ival)
	}
	return file, store, nil
}

// SyntheticKey extracts the join key from a synthetic record value.
func SyntheticKey(value string) string {
	if i := strings.IndexByte(value, ' '); i > 0 {
		return value[:i]
	}
	return value
}

// SpatialConfig shapes the OSM-like location data set: Points records with
// IDs and 2-D coordinates in [0, Extent)² clustered around city-like hot
// spots, as real geographic data is.
type SpatialConfig struct {
	Points   int
	Extent   float64
	Clusters int
	Seed     int64
}

// DefaultSpatialConfig scales the paper's 40M-point OSM subsets down.
func DefaultSpatialConfig() SpatialConfig {
	return SpatialConfig{Points: 20000, Extent: 1000, Clusters: 24, Seed: 11}
}

// SpatialPoint is one location record.
type SpatialPoint struct {
	ID   string
	X, Y float64
}

// Value renders the point as a stored record value.
func (p SpatialPoint) Value() string { return fmt.Sprintf("%.4f,%.4f", p.X, p.Y) }

// ParseSpatialValue parses a stored point value.
func ParseSpatialValue(v string) (x, y float64, ok bool) {
	if _, err := fmt.Sscanf(v, "%f,%f", &x, &y); err != nil {
		return 0, 0, false
	}
	return x, y, true
}

// GenerateSpatialPoints generates the point set (without writing it): a
// mix of cluster-gaussians and uniform background, like road-network data.
func GenerateSpatialPoints(cfg SpatialConfig) []SpatialPoint {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Clusters < 1 {
		cfg.Clusters = 1
	}
	type cluster struct{ cx, cy, sd float64 }
	clusters := make([]cluster, cfg.Clusters)
	for i := range clusters {
		clusters[i] = cluster{
			cx: rng.Float64() * cfg.Extent,
			cy: rng.Float64() * cfg.Extent,
			sd: cfg.Extent * (0.01 + rng.Float64()*0.04),
		}
	}
	clampCoord := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= cfg.Extent {
			return cfg.Extent - 1e-9
		}
		return v
	}
	pts := make([]SpatialPoint, cfg.Points)
	for i := range pts {
		var x, y float64
		if rng.Float64() < 0.8 {
			c := clusters[rng.Intn(len(clusters))]
			x = clampCoord(c.cx + rng.NormFloat64()*c.sd)
			y = clampCoord(c.cy + rng.NormFloat64()*c.sd)
		} else {
			x = rng.Float64() * cfg.Extent
			y = rng.Float64() * cfg.Extent
		}
		pts[i] = SpatialPoint{ID: fmt.Sprintf("p%07d", i), X: x, Y: y}
	}
	return pts
}

// WriteSpatial stores points as a DFS file.
func WriteSpatial(fs *dfs.FS, name string, pts []SpatialPoint) (*dfs.File, error) {
	recs := make([]dfs.Record, len(pts))
	for i, p := range pts {
		recs[i] = dfs.Record{Key: p.ID, Value: p.Value()}
	}
	return fs.Create(name, recs)
}
