package workloads

import (
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/sim"
)

func newFS() *dfs.FS {
	fs := dfs.New(sim.NewCluster(sim.DefaultConfig()))
	fs.ChunkTarget = 32 << 10
	return fs
}

func TestGenerateLogShape(t *testing.T) {
	fs := newFS()
	cfg := DefaultLogConfig()
	cfg.Events = 5000
	f, err := GenerateLog(fs, "log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != 5000 {
		t.Fatalf("events = %d", f.Records())
	}
	// Every record parses; IPs repeat (sessions) and appear in multiple
	// chunks (server interleaving).
	ipCount := map[string]int{}
	ipChunks := map[string]map[int]bool{}
	for ci, ch := range f.Chunks {
		recs, err := ch.Records()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			ip, url, ts, ok := ParseLogValue(r.Value)
			if !ok {
				t.Fatalf("unparseable record %q", r.Value)
			}
			if ip == "" || url == "" || ts == 0 {
				t.Fatalf("empty fields in %q", r.Value)
			}
			ipCount[ip]++
			if ipChunks[ip] == nil {
				ipChunks[ip] = map[int]bool{}
			}
			ipChunks[ip][ci] = true
		}
	}
	repeated, crossChunk := 0, 0
	for ip, n := range ipCount {
		if n > 1 {
			repeated++
		}
		if len(ipChunks[ip]) > 1 {
			crossChunk++
		}
	}
	if repeated < len(ipCount)/2 {
		t.Fatalf("too few repeated IPs: %d of %d", repeated, len(ipCount))
	}
	if len(f.Chunks) > 1 && crossChunk == 0 {
		t.Fatal("no IP spans chunks: cross-machine redundancy missing")
	}
}

func TestGenerateLogDeterministic(t *testing.T) {
	cfg := DefaultLogConfig()
	cfg.Events = 1000
	a, err := GenerateLog(newFS(), "log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLog(newFS(), "log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.All(), b.All()
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic event count")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("nondeterministic record %d", i)
		}
	}
}

func TestGenerateLogRejectsEmpty(t *testing.T) {
	if _, err := GenerateLog(newFS(), "log", LogConfig{}); err == nil {
		t.Fatal("empty config should fail")
	}
}

func TestGenerateSynthetic(t *testing.T) {
	fs := newFS()
	cfg := DefaultSyntheticConfig()
	cfg.Records = 2000
	cfg.KeyDomain = 1000
	cfg.ValueSize = 64
	cfg.IndexValueSize = 128
	f, store, err := GenerateSynthetic(fs, "syn", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != 2000 {
		t.Fatalf("records = %d", f.Records())
	}
	// Every record's key resolves in the index with an l-sized value.
	for _, r := range f.All()[:100] {
		k := SyntheticKey(r.Value)
		vals, err := store.Lookup(k)
		if err != nil || len(vals) != 1 {
			t.Fatalf("key %q lookup = %v, %v", k, vals, err)
		}
		if len(vals[0]) != 128 {
			t.Fatalf("index value size = %d, want 128", len(vals[0]))
		}
	}
	if store.Len() > 1000 || store.Len() < 800 {
		t.Fatalf("distinct keys in index = %d, want ≈(1-1/e)·1000", store.Len())
	}
}

func TestSyntheticKeyParsing(t *testing.T) {
	if got := SyntheticKey("00001234 " + strings.Repeat("x", 10)); got != "00001234" {
		t.Fatalf("key = %q", got)
	}
	if got := SyntheticKey("nospacehere"); got != "nospacehere" {
		t.Fatalf("degenerate key = %q", got)
	}
}

func TestGenerateSpatialPoints(t *testing.T) {
	cfg := DefaultSpatialConfig()
	cfg.Points = 3000
	pts := GenerateSpatialPoints(cfg)
	if len(pts) != 3000 {
		t.Fatalf("points = %d", len(pts))
	}
	ids := map[string]bool{}
	for _, p := range pts {
		if p.X < 0 || p.X >= cfg.Extent || p.Y < 0 || p.Y >= cfg.Extent {
			t.Fatalf("point %v outside extent", p)
		}
		if ids[p.ID] {
			t.Fatalf("duplicate id %s", p.ID)
		}
		ids[p.ID] = true
		x, y, ok := ParseSpatialValue(p.Value())
		if !ok {
			t.Fatalf("unparseable value %q", p.Value())
		}
		if ax, ay := x-p.X, y-p.Y; ax > 0.001 || ax < -0.001 || ay > 0.001 || ay < -0.001 {
			t.Fatalf("round trip drift: %v vs (%g,%g)", p, x, y)
		}
	}
}

func TestSpatialClustering(t *testing.T) {
	// Clustered generation should be visibly non-uniform: the densest 10%
	// of a coarse grid should hold far more than 10% of points.
	cfg := DefaultSpatialConfig()
	cfg.Points = 10000
	pts := GenerateSpatialPoints(cfg)
	const g = 10
	var cells [g][g]int
	for _, p := range pts {
		cx := int(p.X / cfg.Extent * g)
		cy := int(p.Y / cfg.Extent * g)
		cells[cx][cy]++
	}
	counts := make([]int, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			counts = append(counts, cells[i][j])
		}
	}
	maxCell := 0
	for _, c := range counts {
		if c > maxCell {
			maxCell = c
		}
	}
	if maxCell < len(pts)/20 {
		t.Fatalf("densest cell has %d of %d points; expected clustering", maxCell, len(pts))
	}
}

func TestWriteSpatial(t *testing.T) {
	fs := newFS()
	pts := GenerateSpatialPoints(SpatialConfig{Points: 500, Extent: 100, Clusters: 4, Seed: 3})
	f, err := WriteSpatial(fs, "pts", pts)
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != 500 {
		t.Fatalf("records = %d", f.Records())
	}
}
