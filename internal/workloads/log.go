// Package workloads generates the paper's evaluation data sets, scaled to
// simulation size while preserving the structural properties the
// experiments depend on:
//
//   - LOG: web log events whose source IPs exhibit both local redundancy
//     (an IP visits several URLs in a short window, landing in the same
//     log file) and cross-machine redundancy (the visits are served by
//     two or more web servers, so they appear in different log files);
//   - Synthetic: uniform integer keys from a configurable domain joined
//     against an index with configurable value size l;
//   - Spatial: OSM-shaped 2-D location records for the kNN join.
package workloads

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"efind/internal/dfs"
)

// LogConfig shapes the LOG data set (paper: 15M events, 7GB, from a
// popular web site).
type LogConfig struct {
	// Events is the number of log events.
	Events int
	// IPs is the number of distinct source IPs.
	IPs int
	// URLs is the number of distinct URLs.
	URLs int
	// VisitsPerSession is how many URLs an IP visits in one short window
	// (the source of redundancy in geo lookups).
	VisitsPerSession int
	// Servers is the number of web servers whose log files interleave a
	// session's events (the source of cross-machine redundancy).
	Servers int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultLogConfig is the scaled-down default used by tests and benches.
func DefaultLogConfig() LogConfig {
	return LogConfig{
		Events:           60000,
		IPs:              1500,
		URLs:             500,
		VisitsPerSession: 8,
		Servers:          4,
		Seed:             42,
	}
}

// LogEvent is one parsed web log record.
type LogEvent struct {
	EventID   string
	Timestamp int64
	SourceIP  string
	URL       string
	Extra     string
}

// Value renders the event as the stored record value (tab-separated, like
// the paper's multi-field event records).
func (e LogEvent) Value() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", e.EventID, e.Timestamp, e.SourceIP, e.URL, e.Extra)
}

// ParseLogValue splits a stored value back into fields. It returns ok =
// false for malformed records.
func ParseLogValue(v string) (ip, url string, ts int64, ok bool) {
	fields := strings.Split(v, "\t")
	if len(fields) < 4 {
		return "", "", 0, false
	}
	t, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", "", 0, false
	}
	return fields[2], fields[3], t, true
}

// GenerateLog writes the LOG data set into the file system under name.
// Events are generated session by session: an IP visits VisitsPerSession
// URLs within a short time window, and each visit is appended to a
// round-robin chosen server's log stream; the streams are concatenated so
// one session's events land in different regions of the file (hence
// different splits).
func GenerateLog(fs *dfs.FS, name string, cfg LogConfig) (*dfs.File, error) {
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("workloads: log config needs events > 0")
	}
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.VisitsPerSession < 1 {
		cfg.VisitsPerSession = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	streams := make([][]LogEvent, cfg.Servers)
	ts := int64(1_300_000_000)
	event := 0
	for event < cfg.Events {
		ip := fmt.Sprintf("10.%d.%d.%d", rng.Intn(64), rng.Intn(256), rng.Intn(256))
		for v := 0; v < cfg.VisitsPerSession && event < cfg.Events; v++ {
			e := LogEvent{
				EventID:   fmt.Sprintf("e%08d", event),
				Timestamp: ts,
				SourceIP:  ip,
				URL:       fmt.Sprintf("/page/%04d", rng.Intn(cfg.URLs)),
				Extra:     fmt.Sprintf("f5=%d|f6=%d|f7=%d", rng.Intn(100), rng.Intn(100), rng.Intn(100)),
			}
			streams[(event+v)%cfg.Servers] = append(streams[(event+v)%cfg.Servers], e)
			ts += int64(rng.Intn(5) + 1)
			event++
		}
	}

	var recs []dfs.Record
	for _, stream := range streams {
		for _, e := range stream {
			recs = append(recs, dfs.Record{Key: e.EventID, Value: e.Value()})
		}
	}
	return fs.Create(name, recs)
}
