package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour), viewable in chrome://tracing and Perfetto. Timestamps
// are microseconds; ours carry VIRTUAL microseconds, so the UI's time
// axis reads as simulated time.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   *int              `json:"id,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usPerSecond = 1e6

// WriteChrome serializes the trace as a Chrome trace-event JSON file:
// one process per simulated node, one thread per execution slot, "X"
// complete events for spans, "b"/"e" async pairs for queued→scheduled
// waits, and global "i" instants for adaptive events. Event order — and
// therefore the output bytes — is deterministic for a deterministic
// trace: spans sort by (start, node, slot, name), which the virtual-time
// scheduler fully determines.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	queued := make([]queuedSpan, len(t.queued))
	copy(queued, t.queued)
	instants := make([]Instant, len(t.instants))
	copy(instants, t.instants)
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		// Equal starts on one slot: the longer (enclosing) span first, so
		// the viewer nests children inside parents.
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.Name < b.Name
	})

	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Name the lanes: one process per node, one thread per slot.
	lanes := map[[2]int]bool{}
	for _, s := range spans {
		lanes[[2]int{s.Node, s.Slot}] = true
	}
	laneKeys := make([][2]int, 0, len(lanes))
	for k := range lanes {
		laneKeys = append(laneKeys, k)
	}
	sort.Slice(laneKeys, func(i, j int) bool {
		if laneKeys[i][0] != laneKeys[j][0] {
			return laneKeys[i][0] < laneKeys[j][0]
		}
		return laneKeys[i][1] < laneKeys[j][1]
	})
	for _, k := range laneKeys {
		file.TraceEvents = append(file.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: k[0], Tid: k[1],
				Args: map[string]string{"name": fmt.Sprintf("node %d", k[0])}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: k[0], Tid: k[1],
				Args: map[string]string{"name": fmt.Sprintf("slot %d", k[1])}})
	}

	for _, s := range spans {
		dur := s.Dur * usPerSecond
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: s.Start * usPerSecond, Dur: &dur,
			Pid: s.Node, Tid: s.Slot,
		})
	}
	for _, q := range queued {
		id := q.ID
		file.TraceEvents = append(file.TraceEvents,
			chromeEvent{Name: q.Name, Cat: "queued", Ph: "b", Ts: q.Start * usPerSecond, Pid: q.Node, ID: &id},
			chromeEvent{Name: q.Name, Cat: "queued", Ph: "e", Ts: q.End * usPerSecond, Pid: q.Node, ID: &id})
	}
	for _, in := range instants {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i", Ts: in.Time * usPerSecond, S: "g",
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&file)
}
