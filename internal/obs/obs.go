// Package obs is the virtual-time observability layer of the EFind
// runtime. It records spans (intervals of virtual time on the lanes of
// the simulated cluster: one process per node, one track per slot),
// instants (point events such as adaptive re-optimizations), per-phase
// stage profiles, and a unified metrics registry that absorbs the loose
// counters previously scattered across the engine, the index client, and
// the adaptive runtime.
//
// Everything in this package is denominated in VIRTUAL seconds — the
// deterministic simulated clock of internal/sim — never wall time. That
// is what makes the exported artifacts reproducible: serial and parallel
// executions of the same seed produce bit-identical trace and profile
// files, so the CI benchmark-regression gate can diff them byte for byte.
//
// With tracing off (a nil *Trace on the engine) the hot path does no
// work and allocates nothing; see TestSpanHotPathAllocs.
package obs

import (
	"sort"
	"sync"
)

// Span is one interval of virtual time attributed to a lane of the
// simulated cluster. Inside a running task, spans are recorded relative
// to the task's own virtual clock; the engine rebases them to absolute
// phase time when the task's placement (node, slot, start) is known.
type Span struct {
	// Name labels the span ("wc-j0/map[3]", "read", "lookup geo/kv", …).
	Name string
	// Cat is the span category ("map", "reduce", "io", "pipeline",
	// "cpu", "lookup"); it becomes the Chrome trace event category.
	Cat string
	// Node is the simulated machine (Chrome trace pid).
	Node int
	// Slot is the execution slot on the node (Chrome trace tid).
	Slot int
	// Start is the span start in virtual seconds (absolute once rebased).
	Start float64
	// Dur is the span length in virtual seconds.
	Dur float64
}

// Instant is a point event on the global timeline (a re-optimization
// decision, a plan change, a warm start).
type Instant struct {
	Name string
	Cat  string
	Time float64
}

// queuedSpan is a queued→scheduled wait, exported as a Chrome async event
// so overlapping waits of one node render on separate tracks.
type queuedSpan struct {
	Name       string
	Node       int
	ID         int
	Start, End float64
}

// StageProfile is the per-phase summary the benchmark-regression gate
// compares: the virtual makespan of one named stage plus its scheduling
// shape. Stages with equal names (e.g. an adaptive job's first-wave and
// remainder map phases) merge by summing.
type StageProfile struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	VTime      float64 `json:"vtime"`
	Tasks      int     `json:"tasks"`
	LocalTasks int     `json:"local_tasks"`
	Waves      int     `json:"waves"`
}

// IndexProfile compares, for one (operator, index) pair of one run, the
// cost model's modeled charge against what the accounting middleware
// actually charged.
type IndexProfile struct {
	// Key identifies the run and pair, e.g. "11f/l=10/base syn/kv".
	Key string `json:"key"`
	// Strategy is the plan decision that produced the charges.
	Strategy string `json:"strategy"`
	// ModeledCost is the optimizer's per-machine cost estimate in virtual
	// seconds (0 when the plan was built without statistics).
	ModeledCost float64 `json:"modeled_cost"`
	// ObservedServe is the serve time actually charged, in virtual seconds.
	ObservedServe float64 `json:"observed_serve"`
	// Lookups, CacheProbes, CacheMisses, Errors, Retries, Timeouts, and
	// NetRoundTrips are the observed per-index counters.
	Lookups       int64 `json:"lookups"`
	CacheProbes   int64 `json:"cache_probes"`
	CacheMisses   int64 `json:"cache_misses"`
	Errors        int64 `json:"errors"`
	Retries       int64 `json:"retries"`
	Timeouts      int64 `json:"timeouts"`
	NetRoundTrips int64 `json:"net_roundtrips"`
}

// Metric is one named counter value in a snapshot.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Gauge is one named float reading in a snapshot (adaptive statistics,
// FM-sketch estimates, figure measurements).
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Registry is the unified metrics registry: a typed, concurrency-safe
// home for the counters and gauges that used to live in ad-hoc
// map[string]int64 fields. Snapshots are sorted by name, so two runs
// that observed the same values serialize identically.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64), gauges: make(map[string]float64)}
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// AddAll folds a loose counter map into the registry.
func (r *Registry) AddAll(m map[string]int64) {
	r.mu.Lock()
	for k, v := range m {
		r.counters[k] += v
	}
	r.mu.Unlock()
}

// AddAllPrefix folds a loose counter map into the registry with every
// name prefixed — the job service namespaces each job's counters by
// "tenant/job#n/" so interleaved jobs stay separable in one registry.
func (r *Registry) AddAllPrefix(prefix string, m map[string]int64) {
	r.mu.Lock()
	for k, v := range m {
		r.counters[prefix+k] += v
	}
	r.mu.Unlock()
}

// Counter returns the current value of the named counter.
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge records the latest reading of the named gauge.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge returns the latest reading of the named gauge.
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Counters returns a deterministic snapshot: every counter, sorted by
// name.
func (r *Registry) Counters() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters))
	for k, v := range r.counters {
		out = append(out, Metric{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gauges returns a deterministic snapshot: every gauge, sorted by name.
func (r *Registry) Gauges() []Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Gauge, 0, len(r.gauges))
	for k, v := range r.gauges {
		out = append(out, Gauge{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SortedCounters renders any loose counter map as a sorted snapshot —
// the one way counter maps may be turned into report output (map
// iteration order would make run-to-run diffs flaky).
func SortedCounters(m map[string]int64) []Metric {
	out := make([]Metric, 0, len(m))
	for k, v := range m {
		out = append(out, Metric{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Trace accumulates one run's observability record: the virtual clock,
// spans, instants, stage profiles, index profiles, and the metrics
// registry. The engine is the only writer on the hot path (it appends
// between phases, never inside task bodies); the mutex exists so
// auxiliary writers (experiment harness sections, adaptive instants)
// stay safe if they ever race.
type Trace struct {
	// Metrics is the run's unified registry.
	Metrics *Registry

	mu       sync.Mutex
	clock    float64
	section  string
	spans    []Span
	queued   []queuedSpan
	instants []Instant
	stages   []*StageProfile
	stageIdx map[string]*StageProfile
	indexes  []IndexProfile
	nextID   int
}

// NewTrace returns an empty trace with a fresh registry.
func NewTrace() *Trace {
	return &Trace{Metrics: NewRegistry(), stageIdx: make(map[string]*StageProfile)}
}

// Clock returns the current absolute virtual time (the sum of all
// advanced phase makespans).
func (t *Trace) Clock() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

// Advance moves the virtual clock past a completed phase.
func (t *Trace) Advance(d float64) {
	t.mu.Lock()
	t.clock += d
	t.mu.Unlock()
}

// SetSection labels subsequent stages and instants with a run context
// (e.g. "11f/l=10/base") so stage names stay unique across the sweeps of
// one benchmark invocation.
func (t *Trace) SetSection(s string) {
	t.mu.Lock()
	t.section = s
	t.mu.Unlock()
}

// Qualify prefixes a name with the active section.
func (t *Trace) Qualify(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.section == "" {
		return name
	}
	return t.section + " " + name
}

// AddSpan appends one absolute-time span.
func (t *Trace) AddSpan(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// AddQueued records a queued→scheduled wait for one task.
func (t *Trace) AddQueued(name string, node int, start, end float64) {
	t.mu.Lock()
	t.queued = append(t.queued, queuedSpan{Name: name, Node: node, ID: t.nextID, Start: start, End: end})
	t.nextID++
	t.mu.Unlock()
}

// AddInstant records a point event at the current clock, qualified by
// the active section.
func (t *Trace) AddInstant(name, cat string) {
	t.mu.Lock()
	if t.section != "" {
		name = t.section + " " + name
	}
	t.instants = append(t.instants, Instant{Name: name, Cat: cat, Time: t.clock})
	t.mu.Unlock()
}

// AddInstantAt records a point event at an explicit absolute virtual
// time, qualified by the active section. Service-mode job runs use it:
// their events carry the service timeline's absolute times rather than
// the trace's sequential clock.
func (t *Trace) AddInstantAt(name, cat string, at float64) {
	t.mu.Lock()
	if t.section != "" {
		name = t.section + " " + name
	}
	t.instants = append(t.instants, Instant{Name: name, Cat: cat, Time: at})
	t.mu.Unlock()
}

// AddStage folds one phase summary into the trace, merging stages of
// equal name by summing (an adaptive job's split map phases report as
// one stage).
func (t *Trace) AddStage(s StageProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.stageIdx[s.Name]; ok {
		prev.VTime += s.VTime
		prev.Tasks += s.Tasks
		prev.LocalTasks += s.LocalTasks
		prev.Waves += s.Waves
		return
	}
	cp := s
	t.stages = append(t.stages, &cp)
	t.stageIdx[s.Name] = &cp
}

// AddIndexProfile appends one per-index modeled-vs-observed row.
func (t *Trace) AddIndexProfile(ip IndexProfile) {
	t.mu.Lock()
	t.indexes = append(t.indexes, ip)
	t.mu.Unlock()
}

// Stages returns the stage profiles sorted by name.
func (t *Trace) Stages() []StageProfile {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageProfile, 0, len(t.stages))
	for _, s := range t.stages {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IndexProfiles returns the per-index rows sorted by key.
func (t *Trace) IndexProfiles() []IndexProfile {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]IndexProfile, len(t.indexes))
	copy(out, t.indexes)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
