package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Profile is the machine-readable job profile (BENCH_<label>.json): the
// per-stage virtual times the CI regression gate compares, the per-index
// modeled-vs-observed cost rows, and the full sorted counter and gauge
// snapshot of the run. Everything is virtual time, so serial and
// parallel runs of the same seed produce bit-identical files.
type Profile struct {
	Label      string         `json:"label"`
	TotalVTime float64        `json:"total_vtime"`
	Stages     []StageProfile `json:"stages"`
	Indexes    []IndexProfile `json:"indexes,omitempty"`
	Counters   []Metric       `json:"counters"`
	Gauges     []Gauge        `json:"gauges,omitempty"`
}

// Profile snapshots the trace into an exportable profile.
func (t *Trace) Profile(label string) *Profile {
	return &Profile{
		Label:      label,
		TotalVTime: t.Clock(),
		Stages:     t.Stages(),
		Indexes:    t.IndexProfiles(),
		Counters:   t.Metrics.Counters(),
		Gauges:     t.Metrics.Gauges(),
	}
}

// Write serializes the profile as indented JSON.
func (p *Profile) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// WriteFile writes the profile to path.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadProfile loads a profile written by Write.
func ReadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("obs: %s is not a profile: %w", path, err)
	}
	return &p, nil
}

// CompareProfiles is the benchmark-regression gate: it returns one
// message per stage (or per latency gauge) of base whose virtual time
// regressed by more than tol in cur (tol 0.10 = fail above +10%), and
// per base stage that disappeared. Stages only cur has are additions,
// not regressions. Speedups never fail the gate.
func CompareProfiles(base, cur *Profile, tol float64) []string {
	var regressions []string
	curStages := make(map[string]StageProfile, len(cur.Stages))
	for _, s := range cur.Stages {
		curStages[s.Name] = s
	}
	for _, b := range base.Stages {
		c, ok := curStages[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("stage %q: present in baseline, missing from current profile", b.Name))
			continue
		}
		if b.VTime <= 0 {
			continue
		}
		if ratio := c.VTime / b.VTime; ratio > 1+tol {
			regressions = append(regressions, fmt.Sprintf(
				"stage %q: virtual time %.4fs → %.4fs (%+.1f%%, budget %+.0f%%)",
				b.Name, b.VTime, c.VTime, (ratio-1)*100, tol*100))
		}
	}
	curGauges := make(map[string]float64, len(cur.Gauges))
	for _, g := range cur.Gauges {
		curGauges[g.Name] = g.Value
	}
	for _, b := range base.Gauges {
		dir := gaugeDirection(b.Name)
		if dir == gaugeUngated || b.Value <= 0 {
			continue
		}
		c, ok := curGauges[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("gauge %q: present in baseline, missing from current profile", b.Name))
			continue
		}
		ratio := c / b.Value
		if dir == gaugeHigherBetter {
			// Throughput: fail when current falls more than tol below base.
			if ratio < 1/(1+tol) {
				regressions = append(regressions, fmt.Sprintf(
					"gauge %q: %.6f → %.6f (%+.1f%%, budget -%.0f%%)",
					b.Name, b.Value, c, (ratio-1)*100, tol*100))
			}
			continue
		}
		if ratio > 1+tol {
			regressions = append(regressions, fmt.Sprintf(
				"gauge %q: %.6f → %.6f (%+.1f%%, budget %+.0f%%)",
				b.Name, b.Value, c, (ratio-1)*100, tol*100))
		}
	}
	return regressions
}

// Gauge gating directions. Which way a gauge may drift is encoded in its
// name suffix, so experiments opt metrics into the gate just by naming
// them: ".vms" virtual-time latencies and ".allocs" allocation counts
// must not rise, ".tps" real-time throughputs must not fall, and
// everything else (Θ or R readings, sizes) is descriptive and ungated.
type gaugeGateDir int

const (
	gaugeUngated gaugeGateDir = iota
	gaugeLowerBetter
	gaugeHigherBetter
)

func gaugeDirection(name string) gaugeGateDir {
	switch {
	case hasSuffix(name, ".vms"), hasSuffix(name, ".allocs"):
		return gaugeLowerBetter
	case hasSuffix(name, ".tps"):
		return gaugeHigherBetter
	default:
		return gaugeUngated
	}
}

func hasSuffix(name, suffix string) bool {
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
