package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRegistrySnapshotsSorted(t *testing.T) {
	r := NewRegistry()
	r.Add("zeta", 3)
	r.Add("alpha", 1)
	r.Add("mid", 2)
	r.Add("alpha", 4)
	r.SetGauge("z.g", 1.5)
	r.SetGauge("a.g", 0.5)

	cs := r.Counters()
	if len(cs) != 3 {
		t.Fatalf("got %d counters, want 3", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name >= cs[i].Name {
			t.Fatalf("counters not sorted: %q before %q", cs[i-1].Name, cs[i].Name)
		}
	}
	if cs[0].Name != "alpha" || cs[0].Value != 5 {
		t.Fatalf("alpha = %+v, want value 5", cs[0])
	}
	gs := r.Gauges()
	if gs[0].Name != "a.g" || gs[1].Name != "z.g" {
		t.Fatalf("gauges not sorted: %+v", gs)
	}
	if got := r.Counter("mid"); got != 2 {
		t.Fatalf("Counter(mid) = %d, want 2", got)
	}
	if got := r.Gauge("z.g"); got != 1.5 {
		t.Fatalf("Gauge(z.g) = %g, want 1.5", got)
	}
}

func TestAddAllFoldsLooseCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 1)
	r.AddAll(map[string]int64{"x": 2, "y": 7})
	if r.Counter("x") != 3 || r.Counter("y") != 7 {
		t.Fatalf("fold wrong: x=%d y=%d", r.Counter("x"), r.Counter("y"))
	}
}

func TestSortedCounters(t *testing.T) {
	out := SortedCounters(map[string]int64{"b": 2, "a": 1, "c": 3})
	if len(out) != 3 || out[0].Name != "a" || out[1].Name != "b" || out[2].Name != "c" {
		t.Fatalf("not sorted: %+v", out)
	}
}

func TestStageMergeByName(t *testing.T) {
	tr := NewTrace()
	tr.AddStage(StageProfile{Name: "j/map", Kind: "map", VTime: 1, Tasks: 4, LocalTasks: 2, Waves: 1})
	tr.AddStage(StageProfile{Name: "j/map", Kind: "map", VTime: 2, Tasks: 6, LocalTasks: 3, Waves: 2})
	tr.AddStage(StageProfile{Name: "j/reduce", Kind: "reduce", VTime: 5, Tasks: 2, Waves: 1})

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2 (merged)", len(stages))
	}
	m := stages[0] // sorted: "j/map" < "j/reduce"
	if m.Name != "j/map" || m.VTime != 3 || m.Tasks != 10 || m.LocalTasks != 5 || m.Waves != 3 {
		t.Fatalf("merged stage wrong: %+v", m)
	}
}

func TestQualifyAndSection(t *testing.T) {
	tr := NewTrace()
	if got := tr.Qualify("map"); got != "map" {
		t.Fatalf("unqualified = %q", got)
	}
	tr.SetSection("11f/l=10/base")
	if got := tr.Qualify("map"); got != "11f/l=10/base map" {
		t.Fatalf("qualified = %q", got)
	}
	tr.AddInstant("replanned", "adaptive")
	tr.mu.Lock()
	name := tr.instants[0].Name
	tr.mu.Unlock()
	if name != "11f/l=10/base replanned" {
		t.Fatalf("instant name = %q", name)
	}
}

func TestClockAdvances(t *testing.T) {
	tr := NewTrace()
	tr.Advance(1.5)
	tr.Advance(0.5)
	if tr.Clock() != 2 {
		t.Fatalf("clock = %g, want 2", tr.Clock())
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := NewTrace()
	tr.AddSpan(Span{Name: "t0", Cat: "map", Node: 0, Slot: 1, Start: 0, Dur: 0.5})
	tr.AddSpan(Span{Name: "t1", Cat: "map", Node: 1, Slot: 0, Start: 0.2, Dur: 0.3})
	tr.AddQueued("t1", 1, 0, 0.2)
	tr.Advance(0.5)
	tr.AddInstant("replanned", "adaptive")

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range file.TraceEvents {
		phases[e["ph"].(string)]++
	}
	// 2 complete spans, 1 async begin/end pair (queued wait), 1 instant,
	// and metadata lane-naming events for 2 nodes and 2 used slots.
	if phases["X"] != 2 || phases["b"] != 1 || phases["e"] != 1 || phases["i"] != 1 {
		t.Fatalf("phase counts wrong: %v", phases)
	}
	if phases["M"] == 0 {
		t.Fatalf("no metadata lane-naming events: %v", phases)
	}
	if !strings.Contains(buf.String(), "\"node 0\"") {
		t.Fatalf("missing node lane name in:\n%s", buf.String())
	}
}

func TestProfileRoundTripAndCompare(t *testing.T) {
	base := &Profile{
		Label:      "baseline",
		TotalVTime: 10,
		Stages: []StageProfile{
			{Name: "a/map", Kind: "map", VTime: 1.0},
			{Name: "a/reduce", Kind: "reduce", VTime: 2.0},
			{Name: "gone/map", Kind: "map", VTime: 1.0},
		},
		Gauges: []Gauge{
			{Name: "fig12.local.10B.vms", Value: 0.2},
			{Name: "stats.theta", Value: 3.0}, // descriptive, never gated
		},
	}
	cur := &Profile{
		Label:      "current",
		TotalVTime: 11,
		Stages: []StageProfile{
			{Name: "a/map", Kind: "map", VTime: 1.05},      // +5%: inside budget
			{Name: "a/reduce", Kind: "reduce", VTime: 2.5}, // +25%: regression
			{Name: "new/map", Kind: "map", VTime: 9.9},     // addition: ignored
		},
		Gauges: []Gauge{
			{Name: "fig12.local.10B.vms", Value: 0.5}, // +150%: regression
			{Name: "stats.theta", Value: 99},
		},
	}
	regs := CompareProfiles(base, cur, 0.10)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3 (stage, missing stage, gauge):\n%s", len(regs), strings.Join(regs, "\n"))
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"a/reduce", "gone/map", "fig12.local.10B.vms"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("regressions missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "theta") || strings.Contains(joined, "new/map") || strings.Contains(joined, "a/map\"") {
		t.Fatalf("false positive in:\n%s", joined)
	}

	// Identical profiles pass the gate.
	if regs := CompareProfiles(base, base, 0.10); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}

	// Round-trip through the file format.
	path := t.TempDir() + "/BENCH_test.json"
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != base.Label || got.TotalVTime != base.TotalVTime || len(got.Stages) != len(base.Stages) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestCompareProfilesGaugeDirections pins the suffix conventions the
// gate understands: ".vms" and ".allocs" must not rise, ".tps" must not
// fall, anything else is descriptive and ungated.
func TestCompareProfilesGaugeDirections(t *testing.T) {
	base := &Profile{
		Label: "baseline",
		Gauges: []Gauge{
			{Name: "sweep.n10000.sched.tps", Value: 500_000},
			{Name: "sweep.n10000.engine.tps", Value: 90_000},
			{Name: "sweep.n10000.sched.allocs", Value: 4.0},
			{Name: "sweep.n10000.makespan.vms", Value: 120},
			{Name: "sweep.n10000.tasks", Value: 100_000}, // descriptive
		},
	}
	cur := &Profile{
		Label: "current",
		Gauges: []Gauge{
			{Name: "sweep.n10000.sched.tps", Value: 300_000}, // -40%: regression
			{Name: "sweep.n10000.engine.tps", Value: 87_000}, // -3.3%: inside budget
			{Name: "sweep.n10000.sched.allocs", Value: 9.0},  // +125%: regression
			{Name: "sweep.n10000.makespan.vms", Value: 121},  // +0.8%: inside budget
			{Name: "sweep.n10000.tasks", Value: 50_000},      // halved, but ungated
		},
	}
	regs := CompareProfiles(base, cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (tps drop, allocs rise):\n%s", len(regs), strings.Join(regs, "\n"))
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"sched.tps", "sched.allocs"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("regressions missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "engine.tps") || strings.Contains(joined, "makespan.vms") || strings.Contains(joined, "tasks\"") {
		t.Fatalf("false positive in:\n%s", joined)
	}

	// Throughput gains and alloc drops never fail the gate.
	if regs := CompareProfiles(cur, base, 0.10); len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %v", regs)
	}

	// A throughput gauge that disappears is a regression, not a pass.
	missing := &Profile{Label: "missing", Gauges: []Gauge{{Name: "sweep.n10000.tasks", Value: 1}}}
	if regs := CompareProfiles(base, missing, 0.10); len(regs) != 4 {
		t.Fatalf("got %d regressions for missing gated gauges, want 4: %v", len(regs), regs)
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/garbage.json"
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(path); err == nil {
		t.Fatal("want error for garbage profile")
	}
}

func TestIndexProfilesSortedByKey(t *testing.T) {
	tr := NewTrace()
	tr.AddIndexProfile(IndexProfile{Key: "z/ix"})
	tr.AddIndexProfile(IndexProfile{Key: "a/ix"})
	ips := tr.IndexProfiles()
	if len(ips) != 2 || ips[0].Key != "a/ix" || ips[1].Key != "z/ix" {
		t.Fatalf("index profiles not sorted: %+v", ips)
	}
}
