package sim

import (
	"math"
	"reflect"
	"testing"
)

// buildVariedTasks makes a task bag whose durations depend on both the
// task and its placement, with mixed locality preferences, so schedules
// are sensitive to any divergence in placement policy.
func buildVariedTasks(n, nodes int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		var pref []NodeID
		switch i % 3 {
		case 0:
			pref = []NodeID{NodeID(i % nodes), NodeID((i + 1) % nodes)}
		case 1:
			pref = []NodeID{NodeID((i * 7) % nodes)}
		}
		tasks[i] = Task{
			Preferred: pref,
			Run: func(node NodeID, _ float64) float64 {
				// Irregular but pure in (task, node).
				return 0.5 + math.Mod(float64(i)*1.37+float64(node)*0.61, 2.0)
			},
		}
	}
	return tasks
}

// runPhase executes the task bag under the given parallelism.
func runPhase(t *testing.T, parallelism, n, slotsPerNode int) PhaseResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 5
	cfg.Parallelism = parallelism
	cfg.NodeSpeed = []float64{1, 1, 0.5, 1, 2}
	c := NewCluster(cfg)
	return c.SchedulePhase(buildVariedTasks(n, cfg.Nodes), slotsPerNode)
}

// TestParallelScheduleMatchesSerial: the parallel executor must produce a
// bit-identical PhaseResult (makespan, waves, locality counts, and every
// assignment) for task bags of several shapes.
func TestParallelScheduleMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, slots int }{
		{1, 1}, {3, 2}, {10, 2}, {37, 3}, {100, 4}, {256, 2},
	} {
		serial := runPhase(t, 1, tc.n, tc.slots)
		for _, workers := range []int{2, 3, 8, 32} {
			par := runPhase(t, workers, tc.n, tc.slots)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("n=%d slots=%d workers=%d: parallel schedule diverged\nserial:   %+v\nparallel: %+v",
					tc.n, tc.slots, workers, serial, par)
			}
		}
	}
}

// TestParallelPerNodeExecutionOrder: tasks placed on the same node must
// execute in the serial executor's order even under the parallel
// executor, because node-shared stage state (lookup caches) depends on
// the access sequence.
func TestParallelPerNodeExecutionOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	const n = 64

	order := func(parallelism int) [][]int {
		cfg.Parallelism = parallelism
		c := NewCluster(cfg)
		perNode := make([][]int, cfg.Nodes)
		tasks := buildVariedTasks(n, cfg.Nodes)
		for i := range tasks {
			i, inner := i, tasks[i].Run
			tasks[i].Run = func(node NodeID, start float64) float64 {
				// Only this node's executor goroutine appends here, and
				// SchedulePhase's return orders it before our reads.
				perNode[node] = append(perNode[node], i)
				return inner(node, start)
			}
		}
		c.SchedulePhase(tasks, 3)
		return perNode
	}

	serial := order(1)
	parallel := order(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("per-node execution order diverged\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestParallelRunsEachTaskOnce guards the dispatch bookkeeping.
func TestParallelRunsEachTaskOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 6
	cfg.Parallelism = 8
	c := NewCluster(cfg)
	const n = 200
	runs := make([]int, n)
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{Run: func(NodeID, float64) float64 {
			runs[i]++ // distinct index per task; ordered before the phase returns
			return 1
		}}
	}
	res := c.SchedulePhase(tasks, 2)
	if len(res.Assignments) != n {
		t.Fatalf("assignments = %d, want %d", len(res.Assignments), n)
	}
	for i, r := range runs {
		if r != 1 {
			t.Fatalf("task %d ran %d times", i, r)
		}
	}
}

// TestValidateRejectsNegativeParallelism pins the config check.
func TestValidateRejectsNegativeParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
}
