package sim

import (
	"container/heap"
	"math"
)

// The parallel executor runs task bodies on real goroutines while
// reproducing the serial executor's virtual-time schedule exactly. The
// coordinator below replays the same greedy policy (taskPicker over a
// slot heap); the one thing it must get right is the ORDER of placement
// decisions, because each decision consumes picker state.
//
// The serial executor pops the slot with the minimum (free, node) at
// every step. A slot's free time is known once its previous task reports
// a duration, so the coordinator may safely place a task on an idle slot
// only when no in-flight task could possibly free its slot earlier: every
// in-flight task on node n ends no earlier than start + TaskStartup /
// SpeedOf(n). Whenever the earliest idle slot beats that bound strictly,
// its placement is the one the serial executor would make next; otherwise
// the coordinator waits for a completion and re-evaluates. With the
// default nonzero TaskStartup this dispatches whole waves at once.
//
// Determinism of the task bodies themselves comes from per-node ordering:
// each node has a FIFO queue served by one goroutine, so tasks sharing
// that node's state (the per-machine lookup caches of §3.2) observe the
// same access sequence as under the serial executor. State shared across
// nodes must be synchronized and order-independent (atomic counters,
// OR-able sketches); see the concurrency model note in DESIGN.md.
type parWork struct {
	seq   int // dispatch sequence, identifies the in-flight entry
	task  int
	slot  int
	start float64
	local bool
}

type parDone struct {
	node NodeID
	work parWork
	dur  float64
}

// schedulePhaseParallel executes task bodies on up to `workers` goroutines
// (one semaphore slot per running body), keeping results bit-identical to
// schedulePhaseSerial.
func (c *Cluster) schedulePhaseParallel(tasks []Task, slotsPerNode, workers int, down func(NodeID) bool) PhaseResult {
	res := PhaseResult{}
	if len(tasks) == 0 {
		return res
	}
	picker := newTaskPicker(tasks)
	h := c.newSlotHeap(slotsPerNode, down)
	totalSlots := len(h)
	res.Waves = (len(tasks) + totalSlots - 1) / totalSlots
	res.Assignments = make([]Assignment, 0, len(tasks))

	sem := make(chan struct{}, workers)
	// Each in-flight slot holds at most one task, so a totalSlots buffer
	// guarantees node goroutines never block reporting completions.
	done := make(chan parDone, totalSlots)
	queues := make(map[NodeID]chan parWork, c.cfg.Nodes)
	defer func() {
		for _, q := range queues {
			close(q)
		}
	}()
	queueFor := func(node NodeID) chan parWork {
		q, ok := queues[node]
		if !ok {
			q = make(chan parWork, len(tasks))
			queues[node] = q
			go func() {
				for w := range q {
					sem <- struct{}{}
					dur := (c.cfg.TaskStartup + tasks[w.task].Run(node, w.start)) / c.cfg.SpeedOf(node)
					<-sem
					done <- parDone{node: node, work: w, dur: dur}
				}
			}()
		}
		return q
	}

	// inflight maps dispatch sequence → earliest possible virtual end of
	// that task (its slot's free time plus the minimum task duration).
	inflight := make(map[int]float64, totalSlots)
	earliestInflight := func() float64 {
		min := math.Inf(1)
		for _, lb := range inflight {
			if lb < min {
				min = lb
			}
		}
		return min
	}

	seq, scheduled, completed := 0, 0, 0
	for completed < len(tasks) {
		// Dispatch every placement the virtual clock has already decided:
		// the earliest idle slot strictly precedes any possible in-flight
		// completion, so it is exactly the slot the serial executor pops
		// next.
		for scheduled < len(tasks) && h.Len() > 0 && h[0].free < earliestInflight() {
			s := heap.Pop(&h).(slot)
			ti, local := picker.pick(s.node)
			if ti < 0 {
				break
			}
			w := parWork{seq: seq, task: ti, slot: s.idx, start: s.free, local: local}
			inflight[seq] = s.free + c.cfg.TaskStartup/c.cfg.SpeedOf(s.node)
			seq++
			queueFor(s.node) <- w
			scheduled++
		}
		d := <-done
		completed++
		delete(inflight, d.work.seq)
		res.record(Assignment{Task: d.work.task, Node: d.node, Slot: d.work.slot, Start: d.work.start, Duration: d.dur, Local: d.work.local})
		heap.Push(&h, slot{node: d.node, idx: d.work.slot, free: d.work.start + d.dur})
	}
	res.sortAssignments()
	return res
}
