package sim

import (
	"math"
)

// The parallel executor runs task bodies on real goroutines while
// reproducing the serial executor's virtual-time schedule exactly. The
// coordinator below replays the same greedy policy (taskPicker over a
// slot heap); the one thing it must get right is the ORDER of placement
// decisions, because each decision consumes picker state.
//
// The serial executor pops the slot with the minimum (free, node) at
// every step. A slot's free time is known once its previous task reports
// a duration, so the coordinator may safely place a task on an idle slot
// only when no in-flight task could possibly free its slot earlier: every
// in-flight task on node n ends no earlier than start + TaskStartup /
// SpeedOf(n). Whenever the earliest idle slot beats that bound strictly,
// its placement is the one the serial executor would make next; otherwise
// the coordinator waits for a completion and re-evaluates. With the
// default nonzero TaskStartup this dispatches whole waves at once.
//
// Determinism of the task bodies themselves comes from per-node ordering:
// each node has a FIFO queue served by one goroutine, so tasks sharing
// that node's state (the per-machine lookup caches of §3.2) observe the
// same access sequence as under the serial executor. State shared across
// nodes must be synchronized and order-independent (atomic counters,
// OR-able sketches); see the concurrency model note in DESIGN.md.
type parWork struct {
	start float64
	seq   int32 // dispatch sequence, identifies the in-flight entry
	task  int32
	slot  int32
	local bool
}

type parDone struct {
	work parWork
	dur  float64
	node NodeID
}

// lbEntry is one in-flight task's earliest possible virtual end time.
type lbEntry struct {
	lb  float64
	seq int32
}

// lbHeap tracks the minimum lower bound over all in-flight tasks as a
// typed min-heap with lazy deletion: completions mark their sequence
// number retired, and stale tops are popped on the next min query. The
// dispatch loop consults the minimum once per placement, so this keeps
// coordination O(log inflight) instead of the previous full-map scan per
// dispatch — the scan went quadratic at 10k nodes × 8 slots.
type lbHeap struct {
	h       []lbEntry
	retired []bool // indexed by seq; seq < len(tasks) always
}

func (l *lbHeap) push(e lbEntry) {
	l.h = append(l.h, e)
	i := len(l.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if l.h[parent].lb <= l.h[i].lb {
			break
		}
		l.h[i], l.h[parent] = l.h[parent], l.h[i]
		i = parent
	}
}

func (l *lbHeap) popTop() {
	n := len(l.h) - 1
	l.h[0] = l.h[n]
	l.h = l.h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && l.h[r].lb < l.h[c].lb {
			c = r
		}
		if l.h[i].lb <= l.h[c].lb {
			break
		}
		l.h[i], l.h[c] = l.h[c], l.h[i]
		i = c
	}
}

// retire marks an in-flight entry complete; its heap entry is dropped
// lazily by the next min query.
func (l *lbHeap) retire(seq int32) { l.retired[seq] = true }

// min returns the earliest possible end time of any in-flight task, or
// +Inf when none are in flight.
func (l *lbHeap) min() float64 {
	for len(l.h) > 0 && l.retired[l.h[0].seq] {
		l.popTop()
	}
	if len(l.h) == 0 {
		return math.Inf(1)
	}
	return l.h[0].lb
}

// schedulePhaseParallel executes task bodies on up to `workers` goroutines
// (one semaphore slot per running body), keeping results bit-identical to
// schedulePhaseSerial.
func (c *Cluster) schedulePhaseParallel(tasks []Task, slotsPerNode, workers int, h slotHeap) PhaseResult {
	res := PhaseResult{}
	if len(tasks) == 0 {
		return res
	}
	picker := newTaskPicker(tasks, c.cfg.Nodes)
	totalSlots := len(h)
	res.Waves = (len(tasks) + totalSlots - 1) / totalSlots
	res.Assignments = make([]Assignment, 0, len(tasks))

	sem := make(chan struct{}, workers)
	// Each in-flight slot holds at most one task, so a buffer of
	// min(totalSlots, tasks) guarantees node goroutines never block
	// reporting completions.
	doneCap := totalSlots
	if len(tasks) < doneCap {
		doneCap = len(tasks)
	}
	done := make(chan parDone, doneCap)
	// A node can hold at most slotsPerNode dispatched-but-unfinished
	// tasks (one per slot; a slot re-enters the heap only on completion),
	// so per-node queues are tiny regardless of phase size — a 1M-task
	// phase no longer allocates 1M-entry channel buffers per node.
	queues := make([]chan parWork, c.cfg.Nodes)
	defer func() {
		for _, q := range queues {
			if q != nil {
				close(q)
			}
		}
	}()
	queueFor := func(node NodeID) chan parWork {
		q := queues[node]
		if q == nil {
			q = make(chan parWork, slotsPerNode)
			queues[node] = q
			go func() {
				for w := range q {
					sem <- struct{}{}
					dur := (c.cfg.TaskStartup + tasks[w.task].Run(node, w.start)) / c.cfg.SpeedOf(node)
					<-sem
					done <- parDone{node: node, work: w, dur: dur}
				}
			}()
		}
		return q
	}

	infl := lbHeap{retired: make([]bool, len(tasks))}
	seq, scheduled, completed := int32(0), 0, 0
	for completed < len(tasks) {
		// Dispatch every placement the virtual clock has already decided:
		// the earliest idle slot strictly precedes any possible in-flight
		// completion, so it is exactly the slot the serial executor pops
		// next.
		for scheduled < len(tasks) && h.Len() > 0 && h[0].free < infl.min() {
			s := h.pop()
			ti, local := picker.pick(NodeID(s.node))
			if ti < 0 {
				break
			}
			w := parWork{seq: seq, task: int32(ti), slot: s.idx, start: s.free, local: local}
			infl.push(lbEntry{lb: s.free + c.cfg.TaskStartup/c.cfg.SpeedOf(NodeID(s.node)), seq: seq})
			seq++
			queueFor(NodeID(s.node)) <- w
			scheduled++
		}
		d := <-done
		completed++
		infl.retire(d.work.seq)
		res.record(Assignment{Task: int(d.work.task), Node: d.node, Slot: d.work.slot, Start: d.work.start, Duration: d.dur, Local: d.work.local})
		h.push(slot{node: int32(d.node), idx: d.work.slot, free: d.work.start + d.dur})
	}
	res.sortAssignments()
	return res
}
