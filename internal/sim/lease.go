package sim

// Lease is a job-scoped subset of the cluster's execution slots: for each
// node, the slot indices (in [0, slotsPerNode)) the holder may run tasks
// on during one phase. The multi-tenant job service carves the cluster
// into leases so several jobs' phases interleave on one virtual timeline;
// a phase scheduled under a lease touches no slot outside it.
//
// A lease covering every slot of every node is bit-identical to
// unrestricted scheduling: the slot heap is built in the same node-major,
// index-ascending order either way, so the greedy picker makes the same
// sequence of placement decisions.
type Lease struct {
	// slots[n] lists the leased slot indices on node n, ascending. A nil
	// entry means no slots on that node. len(slots) may be shorter than
	// the cluster's node count.
	slots [][]int32
	total int
}

// NewLease builds a lease from per-node slot index lists. Each list must
// be ascending; the lease keeps a reference (no copy).
func NewLease(slots [][]int32) *Lease {
	l := &Lease{slots: slots}
	for _, s := range slots {
		l.total += len(s)
	}
	return l
}

// Total returns the number of leased slots.
func (l *Lease) Total() int { return l.total }

// NodeSlots returns the leased slot indices on node n, ascending.
func (l *Lease) NodeSlots(n NodeID) []int32 {
	if int(n) >= len(l.slots) {
		return nil
	}
	return l.slots[n]
}

// newSlotHeapLease builds the initial slot heap for a phase: the leased
// slots when lease is non-nil, otherwise every slot of every available
// node. Slots are appended node-ascending, index-ascending — the exact
// order newSlotHeap uses — so a full lease yields a bit-identical heap.
func (c *Cluster) newSlotHeapLease(slotsPerNode int, lease *Lease, down func(NodeID) bool) slotHeap {
	if lease == nil {
		return c.newSlotHeap(slotsPerNode, down)
	}
	h := make(slotHeap, 0, lease.total)
	for n := range lease.slots {
		if down != nil && down(NodeID(n)) {
			continue
		}
		for _, idx := range lease.slots[n] {
			h = append(h, slot{node: int32(n), idx: idx, free: 0})
		}
	}
	if len(h) == 0 {
		panic("sim: no leased slots available to schedule on (all down)")
	}
	h.init()
	return h
}

// SchedulePhaseLease is SchedulePhaseAvail restricted to a slot lease:
// when lease is non-nil, only the leased slots run tasks, so concurrent
// jobs granted disjoint leases never contend for the same lane. A nil
// lease admits the whole cluster.
func (c *Cluster) SchedulePhaseLease(tasks []Task, slotsPerNode int, lease *Lease, down func(NodeID) bool) PhaseResult {
	if slotsPerNode <= 0 {
		slotsPerNode = 1
	}
	if len(tasks) == 0 {
		return PhaseResult{}
	}
	h := c.newSlotHeapLease(slotsPerNode, lease, down)
	if w := c.Workers(); w > 1 && len(tasks) > 1 {
		return c.schedulePhaseParallel(tasks, slotsPerNode, w, h)
	}
	return c.schedulePhaseSerial(tasks, h)
}
