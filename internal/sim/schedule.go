package sim

import (
	"container/heap"
	"sort"
)

// Task is one schedulable unit of work (a map or reduce task). The
// scheduler picks a node; the Run callback then executes the task "on"
// that node and reports its virtual duration, which may depend on the
// placement (local vs remote input, local vs remote index partitions).
type Task struct {
	// Preferred lists nodes where this task would run with locality (input
	// chunk replicas for data locality, index partition hosts for the
	// index-locality strategy). Empty means no preference.
	Preferred []NodeID
	// Run executes the task on the chosen node and returns its virtual
	// duration in seconds. Run is called exactly once.
	Run func(node NodeID) float64
}

// Assignment records where and when a task ran.
type Assignment struct {
	Task     int // index into the scheduled task slice
	Node     NodeID
	Start    float64
	Duration float64
	Local    bool // whether the task ran on one of its preferred nodes
}

// PhaseResult summarizes one scheduled phase (a map wave set or a reduce
// wave set).
type PhaseResult struct {
	Makespan    float64
	Assignments []Assignment
	// Waves is the number of scheduling waves: ceil(tasks/slots) under
	// uniform durations; reported for the adaptive optimizer, which
	// collects statistics after the first wave.
	Waves int
	// LocalTasks counts tasks that ran with locality.
	LocalTasks int
}

// slot is one execution slot on a node, ordered by the time it frees up.
type slot struct {
	node NodeID
	free float64
}

type slotHeap []slot

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].node < h[j].node
}
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(slot)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// SchedulePhase runs all tasks on the cluster using slotsPerNode slots per
// node. It emulates Hadoop's locality-preferring greedy scheduler: whenever
// a slot frees on node n, it first looks for a pending task that prefers n,
// and otherwise takes the oldest pending task (a remote/"rack-off"
// assignment). Tasks execute (for real) inside the event loop, so their
// measured virtual durations reflect the placement the scheduler chose.
func (c *Cluster) SchedulePhase(tasks []Task, slotsPerNode int) PhaseResult {
	res := PhaseResult{}
	if len(tasks) == 0 {
		return res
	}
	if slotsPerNode <= 0 {
		slotsPerNode = 1
	}

	// Pending tasks indexed by preferred node for O(1) locality matching.
	pending := make(map[int]bool, len(tasks))
	byNode := make(map[NodeID][]int)
	order := make([]int, len(tasks))
	for i, t := range tasks {
		pending[i] = true
		order[i] = i
		for _, n := range t.Preferred {
			byNode[n] = append(byNode[n], i)
		}
	}
	next := 0 // cursor into order for non-local pickup

	h := make(slotHeap, 0, c.cfg.Nodes*slotsPerNode)
	for n := 0; n < c.cfg.Nodes; n++ {
		for s := 0; s < slotsPerNode; s++ {
			h = append(h, slot{node: NodeID(n), free: 0})
		}
	}
	heap.Init(&h)

	totalSlots := c.cfg.Nodes * slotsPerNode
	res.Waves = (len(tasks) + totalSlots - 1) / totalSlots
	res.Assignments = make([]Assignment, 0, len(tasks))

	scheduled := 0
	for scheduled < len(tasks) {
		s := heap.Pop(&h).(slot)

		// Locality first: a pending task that prefers this slot's node.
		ti := -1
		local := false
		queue := byNode[s.node]
		for len(queue) > 0 {
			cand := queue[0]
			queue = queue[1:]
			if pending[cand] {
				ti = cand
				local = true
				break
			}
		}
		byNode[s.node] = queue
		if ti < 0 {
			for next < len(order) && !pending[order[next]] {
				next++
			}
			if next >= len(order) {
				// All remaining tasks are already taken: shouldn't happen
				// because pending count drives the loop.
				break
			}
			ti = order[next]
			local = ContainsNode(tasks[ti].Preferred, s.node)
		}

		pending[ti] = false
		dur := (c.cfg.TaskStartup + tasks[ti].Run(s.node)) / c.cfg.SpeedOf(s.node)
		a := Assignment{Task: ti, Node: s.node, Start: s.free, Duration: dur, Local: local}
		res.Assignments = append(res.Assignments, a)
		if local {
			res.LocalTasks++
		}
		end := s.free + dur
		if end > res.Makespan {
			res.Makespan = end
		}
		heap.Push(&h, slot{node: s.node, free: end})
		scheduled++
	}

	sort.Slice(res.Assignments, func(i, j int) bool {
		if res.Assignments[i].Start != res.Assignments[j].Start {
			return res.Assignments[i].Start < res.Assignments[j].Start
		}
		return res.Assignments[i].Task < res.Assignments[j].Task
	})
	return res
}

// FirstWave returns the task indices that belong to the first scheduling
// wave (the first min(len(tasks), slots) assignments by start time). The
// adaptive optimizer uses it to decide which tasks' statistics are
// available at re-optimization time.
func (r PhaseResult) FirstWave(slots int) []int {
	n := slots
	if n > len(r.Assignments) {
		n = len(r.Assignments)
	}
	out := make([]int, 0, n)
	for _, a := range r.Assignments[:n] {
		out = append(out, a.Task)
	}
	return out
}
