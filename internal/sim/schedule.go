package sim

import (
	"container/heap"
	"sort"
)

// Task is one schedulable unit of work (a map or reduce task). The
// scheduler picks a node; the Run callback then executes the task "on"
// that node and reports its virtual duration, which may depend on the
// placement (local vs remote input, local vs remote index partitions).
type Task struct {
	// Preferred lists nodes where this task would run with locality (input
	// chunk replicas for data locality, index partition hosts for the
	// index-locality strategy). Empty means no preference.
	Preferred []NodeID
	// Run executes the task on the chosen node and returns its virtual
	// duration in seconds. start is the task's virtual start time within
	// the phase, known at placement; task bodies use it to locate
	// themselves on the job's virtual clock (index outage windows open
	// and close against that clock). Run is called exactly once. Under
	// the parallel executor, Run bodies for different nodes execute
	// concurrently; bodies for the same node always execute one at a
	// time, in the order the scheduler placed them, so per-node shared
	// state (the paper's per-machine lookup caches) sees the same access
	// sequence as the serial executor.
	Run func(node NodeID, start float64) float64
}

// Assignment records where and when a task ran.
type Assignment struct {
	Task     int // index into the scheduled task slice
	Node     NodeID
	Slot     int // execution slot on the node, in [0, slotsPerNode)
	Start    float64
	Duration float64
	Local    bool // whether the task ran on one of its preferred nodes
}

// PhaseResult summarizes one scheduled phase (a map wave set or a reduce
// wave set).
type PhaseResult struct {
	Makespan    float64
	Assignments []Assignment
	// Waves is the number of scheduling waves: ceil(tasks/slots) under
	// uniform durations; reported for the adaptive optimizer, which
	// collects statistics after the first wave.
	Waves int
	// LocalTasks counts tasks that ran with locality.
	LocalTasks int
}

// slot is one execution slot on a node, ordered by the time it frees up.
// The within-node index identifies the lane a task ran on for trace
// export; the ordering is total (free, node, idx), so the pop sequence is
// a pure function of the heap's contents — the parallel executor pushes
// completions back in arrival order, and a total order keeps its picks
// bit-identical to the serial executor's.
type slot struct {
	node NodeID
	idx  int
	free float64
}

type slotHeap []slot

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	if h[i].node != h[j].node {
		return h[i].node < h[j].node
	}
	return h[i].idx < h[j].idx
}
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(slot)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// taskPicker implements the deterministic locality-preferring greedy
// policy shared by the serial and parallel executors: whenever a slot
// frees on node n, it first looks for a pending task that prefers n, and
// otherwise takes the oldest pending task (a remote/"rack-off"
// assignment). Both executors make the identical sequence of picks, so
// placements — and therefore durations and makespans — are bit-identical.
type taskPicker struct {
	tasks   []Task
	pending []bool
	byNode  map[NodeID][]int
	next    int // cursor for non-local pickup, in task order
	left    int
}

func newTaskPicker(tasks []Task) *taskPicker {
	p := &taskPicker{
		tasks:   tasks,
		pending: make([]bool, len(tasks)),
		byNode:  make(map[NodeID][]int),
		left:    len(tasks),
	}
	for i, t := range tasks {
		p.pending[i] = true
		for _, n := range t.Preferred {
			p.byNode[n] = append(p.byNode[n], i)
		}
	}
	return p
}

// pick takes the next task for a freed slot on node, or -1 when no tasks
// remain.
func (p *taskPicker) pick(node NodeID) (ti int, local bool) {
	if p.left == 0 {
		return -1, false
	}
	ti = -1
	queue := p.byNode[node]
	for len(queue) > 0 {
		cand := queue[0]
		queue = queue[1:]
		if p.pending[cand] {
			ti = cand
			local = true
			break
		}
	}
	p.byNode[node] = queue
	if ti < 0 {
		for p.next < len(p.tasks) && !p.pending[p.next] {
			p.next++
		}
		if p.next >= len(p.tasks) {
			return -1, false
		}
		ti = p.next
		local = ContainsNode(p.tasks[ti].Preferred, node)
	}
	p.pending[ti] = false
	p.left--
	return ti, local
}

// SchedulePhase runs all tasks on the cluster using slotsPerNode slots per
// node, emulating Hadoop's locality-preferring greedy scheduler. Tasks
// execute for real, so their measured virtual durations reflect the
// placement the scheduler chose.
//
// When the cluster allows more than one worker (Config.Parallelism, or
// GOMAXPROCS by default), task bodies run concurrently on real goroutines
// while the virtual-time schedule stays bit-identical to the serial
// executor: placements are decided by the same greedy policy in the same
// order, tasks placed on the same node run one at a time in placement
// order, and results are merged deterministically by task index.
func (c *Cluster) SchedulePhase(tasks []Task, slotsPerNode int) PhaseResult {
	return c.SchedulePhaseAvail(tasks, slotsPerNode, nil)
}

// SchedulePhaseAvail is SchedulePhase restricted to available nodes: any
// node for which down returns true contributes no slots, so the greedy
// picker routes its would-be-local tasks elsewhere. The failure-domain
// chaos engine uses it to replan placement around crashed nodes. A nil
// down admits every node; a down that rejects all nodes panics, because
// a cluster with zero slots can never finish a phase.
func (c *Cluster) SchedulePhaseAvail(tasks []Task, slotsPerNode int, down func(NodeID) bool) PhaseResult {
	if slotsPerNode <= 0 {
		slotsPerNode = 1
	}
	if w := c.Workers(); w > 1 && len(tasks) > 1 {
		return c.schedulePhaseParallel(tasks, slotsPerNode, w, down)
	}
	return c.schedulePhaseSerial(tasks, slotsPerNode, down)
}

// newSlotHeap builds the initial heap with every available node's slots
// free at time 0.
func (c *Cluster) newSlotHeap(slotsPerNode int, down func(NodeID) bool) slotHeap {
	h := make(slotHeap, 0, c.cfg.Nodes*slotsPerNode)
	for n := 0; n < c.cfg.Nodes; n++ {
		if down != nil && down(NodeID(n)) {
			continue
		}
		for s := 0; s < slotsPerNode; s++ {
			h = append(h, slot{node: NodeID(n), idx: s, free: 0})
		}
	}
	if len(h) == 0 {
		panic("sim: no nodes available to schedule on (all down)")
	}
	heap.Init(&h)
	return h
}

func (r *PhaseResult) record(a Assignment) {
	r.Assignments = append(r.Assignments, a)
	if a.Local {
		r.LocalTasks++
	}
	if end := a.Start + a.Duration; end > r.Makespan {
		r.Makespan = end
	}
}

func (r *PhaseResult) sortAssignments() {
	sort.Slice(r.Assignments, func(i, j int) bool {
		if r.Assignments[i].Start != r.Assignments[j].Start {
			return r.Assignments[i].Start < r.Assignments[j].Start
		}
		return r.Assignments[i].Task < r.Assignments[j].Task
	})
}

// schedulePhaseSerial executes every task body inline in the event loop.
func (c *Cluster) schedulePhaseSerial(tasks []Task, slotsPerNode int, down func(NodeID) bool) PhaseResult {
	res := PhaseResult{}
	if len(tasks) == 0 {
		return res
	}
	picker := newTaskPicker(tasks)
	h := c.newSlotHeap(slotsPerNode, down)
	totalSlots := len(h)
	res.Waves = (len(tasks) + totalSlots - 1) / totalSlots
	res.Assignments = make([]Assignment, 0, len(tasks))

	for scheduled := 0; scheduled < len(tasks); scheduled++ {
		s := heap.Pop(&h).(slot)
		ti, local := picker.pick(s.node)
		if ti < 0 {
			// All remaining tasks are already taken: shouldn't happen
			// because the pending count drives the loop.
			break
		}
		dur := (c.cfg.TaskStartup + tasks[ti].Run(s.node, s.free)) / c.cfg.SpeedOf(s.node)
		res.record(Assignment{Task: ti, Node: s.node, Slot: s.idx, Start: s.free, Duration: dur, Local: local})
		heap.Push(&h, slot{node: s.node, idx: s.idx, free: s.free + dur})
	}
	res.sortAssignments()
	return res
}

// FirstWave returns the task indices that belong to the first scheduling
// wave (the first min(len(tasks), slots) assignments by start time). The
// adaptive optimizer uses it to decide which tasks' statistics are
// available at re-optimization time.
func (r PhaseResult) FirstWave(slots int) []int {
	n := slots
	if n > len(r.Assignments) {
		n = len(r.Assignments)
	}
	out := make([]int, 0, n)
	for _, a := range r.Assignments[:n] {
		out = append(out, a.Task)
	}
	return out
}
