package sim

import (
	"sort"
)

// Task is one schedulable unit of work (a map or reduce task). The
// scheduler picks a node; the Run callback then executes the task "on"
// that node and reports its virtual duration, which may depend on the
// placement (local vs remote input, local vs remote index partitions).
type Task struct {
	// Preferred lists nodes where this task would run with locality (input
	// chunk replicas for data locality, index partition hosts for the
	// index-locality strategy). Empty means no preference.
	Preferred []NodeID
	// Run executes the task on the chosen node and returns its virtual
	// duration in seconds. start is the task's virtual start time within
	// the phase, known at placement; task bodies use it to locate
	// themselves on the job's virtual clock (index outage windows open
	// and close against that clock). Run is called exactly once. Under
	// the parallel executor, Run bodies for different nodes execute
	// concurrently; bodies for the same node always execute one at a
	// time, in the order the scheduler placed them, so per-node shared
	// state (the paper's per-machine lookup caches) sees the same access
	// sequence as the serial executor.
	Run func(node NodeID, start float64) float64
}

// Assignment records where and when a task ran. Fields are ordered and
// sized to keep the record at 40 bytes: phases at cluster scale hold one
// per task (a 10k-node sweep schedules millions), and chaos splicing
// copies them wholesale.
type Assignment struct {
	Start    float64
	Duration float64
	Task     int // index into the scheduled task slice
	Node     NodeID
	Slot     int32 // execution slot on the node, in [0, slotsPerNode)
	Local    bool  // whether the task ran on one of its preferred nodes
}

// PhaseResult summarizes one scheduled phase (a map wave set or a reduce
// wave set).
type PhaseResult struct {
	Makespan    float64
	Assignments []Assignment
	// Waves is the number of scheduling waves: ceil(tasks/slots) under
	// uniform durations; reported for the adaptive optimizer, which
	// collects statistics after the first wave. Chaos recovery waves add
	// their own wave counts on top.
	Waves int
	// LocalTasks counts tasks that ran with locality.
	LocalTasks int
}

// slot is one execution slot on a node, ordered by the time it frees up.
// The within-node index identifies the lane a task ran on for trace
// export; the ordering is total (free, node, idx), so the pop sequence is
// a pure function of the heap's contents — the parallel executor pushes
// completions back in arrival order, and a total order keeps its picks
// bit-identical to the serial executor's. node and idx are int32 so the
// entry packs into 16 bytes; a 10k-node cluster holds 80k of them.
type slot struct {
	free float64
	node int32
	idx  int32
}

// slotHeap is a typed binary min-heap of slots. It replaces the previous
// container/heap implementation: push and pop move concrete values, so
// dispatch no longer boxes a slot into an interface{} (one allocation per
// push and one per pop) on the scheduler's hottest loop.
type slotHeap []slot

func slotLess(a, b slot) bool {
	if a.free != b.free {
		return a.free < b.free
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.idx < b.idx
}

func (h slotHeap) Len() int { return len(h) }

func (h *slotHeap) push(s slot) {
	*h = append(*h, s)
	q := *h
	// Sift up.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !slotLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *slotHeap) pop() slot {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && slotLess(q[r], q[l]) {
			min = r
		}
		if !slotLess(q[min], q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// init establishes the heap invariant over arbitrary contents.
func (h slotHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		// Sift down from i.
		j := i
		for {
			l := 2*j + 1
			if l >= n {
				break
			}
			min := l
			if r := l + 1; r < n && slotLess(h[r], h[l]) {
				min = r
			}
			if !slotLess(h[min], h[j]) {
				break
			}
			h[j], h[min] = h[min], h[j]
			j = min
		}
	}
}

// taskPicker implements the deterministic locality-preferring greedy
// policy shared by the serial and parallel executors: whenever a slot
// frees on node n, it first looks for a pending task that prefers n, and
// otherwise takes the oldest pending task (a remote/"rack-off"
// assignment). Both executors make the identical sequence of picks, so
// placements — and therefore durations and makespans — are bit-identical.
//
// Per-node preference queues are dense slices indexed by node (node IDs
// are dense in [0, Nodes)) with a consumed-prefix cursor per queue. A
// task picked via one node's queue leaves dead entries in the queues of
// its other preferred nodes; those are skipped on scan and the consumed
// prefix is compacted away once it dominates the queue, so replicated
// preferences at 10k nodes neither pin memory nor degrade pick into a
// dead-entry crawl.
type taskPicker struct {
	tasks   []Task
	pending []bool
	byNode  [][]int32 // per-node FIFO of preferring task indices
	head    []int     // consumed prefix of each node's queue
	next    int       // cursor for non-local pickup, in task order
	left    int
}

func newTaskPicker(tasks []Task, nodes int) *taskPicker {
	p := &taskPicker{
		tasks:   tasks,
		pending: make([]bool, len(tasks)),
		byNode:  make([][]int32, nodes),
		head:    make([]int, nodes),
		left:    len(tasks),
	}
	for i, t := range tasks {
		p.pending[i] = true
		for _, n := range t.Preferred {
			if n >= 0 && int(n) < nodes {
				p.byNode[n] = append(p.byNode[n], int32(i))
			}
		}
	}
	return p
}

// compactThreshold is the consumed-prefix length beyond which a queue is
// shifted down; below it the cursor advance alone is cheaper.
const compactThreshold = 64

// pick takes the next task for a freed slot on node, or -1 when no tasks
// remain.
func (p *taskPicker) pick(node NodeID) (ti int, local bool) {
	if p.left == 0 {
		return -1, false
	}
	ti = -1
	q := p.byNode[node]
	h := p.head[node]
	for h < len(q) {
		cand := int(q[h])
		h++
		if p.pending[cand] {
			ti = cand
			local = true
			break
		}
	}
	// Skip-compact: drop the consumed prefix once it dominates the queue
	// so dead entries are released instead of rescanned via a long head
	// offset on a retained backing array.
	switch {
	case h >= len(q):
		p.byNode[node] = q[:0]
		p.head[node] = 0
	case h >= compactThreshold && h*2 >= len(q):
		n := copy(q, q[h:])
		p.byNode[node] = q[:n]
		p.head[node] = 0
	default:
		p.head[node] = h
	}
	if ti < 0 {
		for p.next < len(p.tasks) && !p.pending[p.next] {
			p.next++
		}
		if p.next >= len(p.tasks) {
			return -1, false
		}
		ti = p.next
		local = ContainsNode(p.tasks[ti].Preferred, node)
	}
	p.pending[ti] = false
	p.left--
	return ti, local
}

// SchedulePhase runs all tasks on the cluster using slotsPerNode slots per
// node, emulating Hadoop's locality-preferring greedy scheduler. Tasks
// execute for real, so their measured virtual durations reflect the
// placement the scheduler chose.
//
// When the cluster allows more than one worker (Config.Parallelism, or
// GOMAXPROCS by default), task bodies run concurrently on real goroutines
// while the virtual-time schedule stays bit-identical to the serial
// executor: placements are decided by the same greedy policy in the same
// order, tasks placed on the same node run one at a time in placement
// order, and results are merged deterministically by task index.
func (c *Cluster) SchedulePhase(tasks []Task, slotsPerNode int) PhaseResult {
	return c.SchedulePhaseAvail(tasks, slotsPerNode, nil)
}

// SchedulePhaseAvail is SchedulePhase restricted to available nodes: any
// node for which down returns true contributes no slots, so the greedy
// picker routes its would-be-local tasks elsewhere. The failure-domain
// chaos engine uses it to replan placement around crashed nodes. A nil
// down admits every node; a down that rejects all nodes panics, because
// a cluster with zero slots can never finish a phase.
func (c *Cluster) SchedulePhaseAvail(tasks []Task, slotsPerNode int, down func(NodeID) bool) PhaseResult {
	return c.SchedulePhaseLease(tasks, slotsPerNode, nil, down)
}

// newSlotHeap builds the initial heap with every available node's slots
// free at time 0.
func (c *Cluster) newSlotHeap(slotsPerNode int, down func(NodeID) bool) slotHeap {
	h := make(slotHeap, 0, c.cfg.Nodes*slotsPerNode)
	for n := 0; n < c.cfg.Nodes; n++ {
		if down != nil && down(NodeID(n)) {
			continue
		}
		for s := 0; s < slotsPerNode; s++ {
			h = append(h, slot{node: int32(n), idx: int32(s), free: 0})
		}
	}
	if len(h) == 0 {
		panic("sim: no nodes available to schedule on (all down)")
	}
	h.init()
	return h
}

func (r *PhaseResult) record(a Assignment) {
	r.Assignments = append(r.Assignments, a)
	if a.Local {
		r.LocalTasks++
	}
	if end := a.Start + a.Duration; end > r.Makespan {
		r.Makespan = end
	}
}

func (r *PhaseResult) sortAssignments() {
	sort.Slice(r.Assignments, func(i, j int) bool {
		if r.Assignments[i].Start != r.Assignments[j].Start {
			return r.Assignments[i].Start < r.Assignments[j].Start
		}
		return r.Assignments[i].Task < r.Assignments[j].Task
	})
}

// schedulePhaseSerial executes every task body inline in the event loop.
// h is the initial slot heap (full cluster or a job's lease).
func (c *Cluster) schedulePhaseSerial(tasks []Task, h slotHeap) PhaseResult {
	res := PhaseResult{}
	if len(tasks) == 0 {
		return res
	}
	picker := newTaskPicker(tasks, c.cfg.Nodes)
	totalSlots := len(h)
	res.Waves = (len(tasks) + totalSlots - 1) / totalSlots
	res.Assignments = make([]Assignment, 0, len(tasks))

	for scheduled := 0; scheduled < len(tasks); scheduled++ {
		s := h.pop()
		ti, local := picker.pick(NodeID(s.node))
		if ti < 0 {
			// All remaining tasks are already taken: shouldn't happen
			// because the pending count drives the loop.
			break
		}
		dur := (c.cfg.TaskStartup + tasks[ti].Run(NodeID(s.node), s.free)) / c.cfg.SpeedOf(NodeID(s.node))
		res.record(Assignment{Task: ti, Node: NodeID(s.node), Slot: s.idx, Start: s.free, Duration: dur, Local: local})
		h.push(slot{node: s.node, idx: s.idx, free: s.free + dur})
	}
	res.sortAssignments()
	return res
}

// FirstWave returns the task indices that belong to the first scheduling
// wave (the first min(len(tasks), slots) assignments by start time). The
// adaptive optimizer uses it to decide which tasks' statistics are
// available at re-optimization time.
func (r PhaseResult) FirstWave(slots int) []int {
	n := slots
	if n > len(r.Assignments) {
		n = len(r.Assignments)
	}
	out := make([]int, 0, n)
	for _, a := range r.Assignments[:n] {
		out = append(out, a.Task)
	}
	return out
}
