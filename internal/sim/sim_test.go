package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"negative nodes", func(c *Config) { c.Nodes = -3 }},
		{"zero map slots", func(c *Config) { c.MapSlotsPerNode = 0 }},
		{"zero reduce slots", func(c *Config) { c.ReduceSlotsPerNode = 0 }},
		{"zero bandwidth", func(c *Config) { c.NetBandwidth = 0 }},
		{"zero disk", func(c *Config) { c.DiskRate = 0 }},
		{"negative dfs cost", func(c *Config) { c.DFSWriteCost = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("expected validation error for %s", tc.name)
			}
		})
	}
}

func TestTransferTimeLocalIsFree(t *testing.T) {
	c := NewCluster(DefaultConfig())
	if got := c.TransferTime(1e9, 3, 3); got != 0 {
		t.Fatalf("local transfer should be free, got %g", got)
	}
	want := 1e9 / DefaultConfig().NetBandwidth
	if got := c.TransferTime(1e9, 3, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("remote transfer = %g, want %g", got, want)
	}
}

func TestCostHelpers(t *testing.T) {
	cfg := DefaultConfig()
	c := NewCluster(cfg)
	if got, want := c.DiskTime(cfg.DiskRate), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("DiskTime = %g, want %g", got, want)
	}
	if got, want := c.NetTime(cfg.NetBandwidth), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("NetTime = %g, want %g", got, want)
	}
	if got, want := c.DFSTime(2), 2*cfg.DFSWriteCost; math.Abs(got-want) > 1e-18 {
		t.Fatalf("DFSTime = %g, want %g", got, want)
	}
	if got, want := c.CPUTime(10, 100), 10*cfg.CPUPerRecord+100*cfg.CPUPerByte; math.Abs(got-want) > 1e-15 {
		t.Fatalf("CPUTime = %g, want %g", got, want)
	}
}

func TestPlaceReplicasDistinctAndInRange(t *testing.T) {
	c := NewCluster(DefaultConfig())
	for i := 0; i < 100; i++ {
		reps := c.PlaceReplicas(3)
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %d", len(reps))
		}
		seen := map[NodeID]bool{}
		for _, r := range reps {
			if r < 0 || int(r) >= c.Nodes() {
				t.Fatalf("replica node %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("duplicate replica node %d in %v", r, reps)
			}
			seen[r] = true
		}
	}
}

func TestPlaceReplicasClampedToClusterSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c := NewCluster(cfg)
	if got := c.PlaceReplicas(5); len(got) != 2 {
		t.Fatalf("want clamp to 2 replicas, got %d", len(got))
	}
}

func TestSchedulePhaseSingleWave(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.TaskStartup = 0
	c := NewCluster(cfg)

	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Run: func(NodeID, float64) float64 { return 10 }}
	}
	res := c.SchedulePhase(tasks, cfg.MapSlotsPerNode)
	if res.Waves != 1 {
		t.Fatalf("want 1 wave, got %d", res.Waves)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("8 equal tasks on 8 slots should take one task time, got %g", res.Makespan)
	}
}

func TestSchedulePhaseTwoWaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MapSlotsPerNode = 2
	cfg.TaskStartup = 0
	c := NewCluster(cfg)

	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Run: func(NodeID, float64) float64 { return 5 }}
	}
	res := c.SchedulePhase(tasks, cfg.MapSlotsPerNode)
	if res.Waves != 2 {
		t.Fatalf("want 2 waves, got %d", res.Waves)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("8 tasks on 4 slots at 5s = 10s makespan, got %g", res.Makespan)
	}
}

func TestSchedulePhasePrefersLocality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 1
	cfg.TaskStartup = 0
	c := NewCluster(cfg)

	// One task per node, each preferring a distinct node: all should land
	// on their preferred node.
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{
			Preferred: []NodeID{NodeID(i)},
			Run:       func(NodeID, float64) float64 { return 1 },
		}
	}
	res := c.SchedulePhase(tasks, 1)
	if res.LocalTasks != 4 {
		t.Fatalf("want all 4 tasks local, got %d", res.LocalTasks)
	}
	for _, a := range res.Assignments {
		if !ContainsNode(tasks[a.Task].Preferred, a.Node) {
			t.Fatalf("task %d ran on %d, preferred %v", a.Task, a.Node, tasks[a.Task].Preferred)
		}
	}
}

func TestSchedulePhasePlacementPassedToRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	cfg.TaskStartup = 0
	c := NewCluster(cfg)

	got := make([]NodeID, 0, 3)
	tasks := []Task{
		{Run: func(n NodeID, _ float64) float64 { got = append(got, n); return 1 }},
		{Run: func(n NodeID, _ float64) float64 { got = append(got, n); return 1 }},
		{Run: func(n NodeID, _ float64) float64 { got = append(got, n); return 1 }},
	}
	res := c.SchedulePhase(tasks, 1)
	if len(res.Assignments) != 3 || len(got) != 3 {
		t.Fatalf("want 3 assignments and 3 Run calls, got %d/%d", len(res.Assignments), len(got))
	}
}

func TestSchedulePhaseEmpty(t *testing.T) {
	c := NewCluster(DefaultConfig())
	res := c.SchedulePhase(nil, 2)
	if res.Makespan != 0 || len(res.Assignments) != 0 {
		t.Fatalf("empty phase should be free, got %+v", res)
	}
}

func TestSchedulePhaseStartupCharged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.MapSlotsPerNode = 1
	cfg.TaskStartup = 2.5
	c := NewCluster(cfg)
	res := c.SchedulePhase([]Task{{Run: func(NodeID, float64) float64 { return 1 }}}, 1)
	if math.Abs(res.Makespan-3.5) > 1e-9 {
		t.Fatalf("startup not charged: makespan %g, want 3.5", res.Makespan)
	}
}

func TestNodeSpeedValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	cfg.NodeSpeed = []float64{1, 1} // wrong length
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched NodeSpeed length should fail validation")
	}
	cfg.NodeSpeed = []float64{1, 0, 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero speed should fail validation")
	}
	cfg.NodeSpeed = []float64{1, 0.5, 2}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid speeds rejected: %v", err)
	}
	if got := cfg.SpeedOf(1); got != 0.5 {
		t.Fatalf("SpeedOf(1) = %g", got)
	}
	if got := (Config{}).SpeedOf(5); got != 1 {
		t.Fatalf("unconfigured speed = %g, want 1", got)
	}
}

func TestStragglerStretchesMakespan(t *testing.T) {
	base := DefaultConfig()
	base.Nodes = 4
	base.MapSlotsPerNode = 1
	base.TaskStartup = 0

	run := func(speeds []float64) float64 {
		cfg := base
		cfg.NodeSpeed = speeds
		c := NewCluster(cfg)
		tasks := make([]Task, 4)
		for i := range tasks {
			tasks[i] = Task{Run: func(NodeID, float64) float64 { return 10 }}
		}
		return c.SchedulePhase(tasks, 1).Makespan
	}
	uniform := run(nil)
	straggler := run([]float64{1, 1, 1, 0.25})
	if uniform != 10 {
		t.Fatalf("uniform makespan = %g", uniform)
	}
	// One quarter-speed node stretches its task to 40s, dominating the
	// wave.
	if math.Abs(straggler-40) > 1e-9 {
		t.Fatalf("straggler makespan = %g, want 40", straggler)
	}
}

func TestFirstWave(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MapSlotsPerNode = 1
	cfg.TaskStartup = 0
	c := NewCluster(cfg)
	tasks := make([]Task, 5)
	for i := range tasks {
		tasks[i] = Task{Run: func(NodeID, float64) float64 { return 1 }}
	}
	res := c.SchedulePhase(tasks, 1)
	fw := res.FirstWave(2)
	if len(fw) != 2 {
		t.Fatalf("first wave on 2 slots should have 2 tasks, got %d", len(fw))
	}
}

// Property: makespan is always at least the longest single task and at most
// the serial sum, and every task is assigned exactly once.
func TestSchedulePhaseProperties(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TaskStartup = 0
	f := func(durs []uint16, nodes uint8, slots uint8) bool {
		if len(durs) == 0 || len(durs) > 200 {
			return true
		}
		cfg.Nodes = int(nodes%8) + 1
		cfg.MapSlotsPerNode = int(slots%4) + 1
		c := NewCluster(cfg)
		tasks := make([]Task, len(durs))
		var maxDur, sum float64
		for i, d := range durs {
			dur := float64(d%1000) + 1
			if dur > maxDur {
				maxDur = dur
			}
			sum += dur
			tasks[i] = Task{Run: func(NodeID, float64) float64 { return dur }}
		}
		res := c.SchedulePhase(tasks, cfg.MapSlotsPerNode)
		if len(res.Assignments) != len(tasks) {
			return false
		}
		seen := map[int]bool{}
		for _, a := range res.Assignments {
			if seen[a.Task] {
				return false
			}
			seen[a.Task] = true
		}
		return res.Makespan >= maxDur-1e-9 && res.Makespan <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePhaseAvailExcludesDownNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 1
	cfg.TaskStartup = 0
	c := NewCluster(cfg)

	tasks := make([]Task, 4)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Preferred: []NodeID{NodeID(i)},
			Run:       func(NodeID, float64) float64 { return 10 },
		}
	}
	down := func(n NodeID) bool { return n == 2 }
	res := c.SchedulePhaseAvail(tasks, 1, down)
	if len(res.Assignments) != 4 {
		t.Fatalf("want 4 assignments, got %d", len(res.Assignments))
	}
	for _, a := range res.Assignments {
		if a.Node == 2 {
			t.Fatalf("task %d placed on down node 2", a.Task)
		}
	}
	// 4 tasks on 3 surviving single-slot nodes: two waves.
	if res.Waves != 2 {
		t.Fatalf("want 2 waves on 3 surviving slots, got %d", res.Waves)
	}
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Fatalf("makespan = %g, want 20", res.Makespan)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("scheduling with every node down must panic")
		}
	}()
	c.SchedulePhaseAvail(tasks, 1, func(NodeID) bool { return true })
}
