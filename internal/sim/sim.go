// Package sim models the execution environment of the paper's 12-node
// Hadoop + Cassandra cluster: nodes with map/reduce slots, a switched
// network with per-pair bandwidth, local disks, and a distributed file
// system cost per byte.
//
// Nothing in this package runs on wall-clock time. Tasks report virtual
// durations (seconds of simulated time), and the wave scheduler in
// schedule.go turns a bag of tasks into a phase makespan the same way a
// Hadoop TaskTracker pool would: slots free up, locality-preferring tasks
// are placed, stragglers extend the wave.
package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// NodeID identifies a machine in the simulated cluster. Node IDs are dense
// integers in [0, Nodes).
type NodeID int

// Config holds the physical parameters of the simulated cluster. The zero
// value is not useful; start from DefaultConfig.
type Config struct {
	// Nodes is the number of worker machines.
	Nodes int
	// MapSlotsPerNode is the number of concurrent map tasks per node.
	MapSlotsPerNode int
	// ReduceSlotsPerNode is the number of concurrent reduce tasks per node.
	ReduceSlotsPerNode int
	// NetBandwidth is the point-to-point network bandwidth in bytes/second
	// (the paper's BW term).
	NetBandwidth float64
	// DiskRate is the sequential local disk read rate in bytes/second.
	DiskRate float64
	// DFSWriteCost is the paper's f term: average cost in seconds of
	// storing (3-way replicated) and later retrieving one byte through the
	// distributed file system, charged when a job materializes output.
	DFSWriteCost float64
	// CPUPerRecord is the fixed CPU cost in seconds of pushing one record
	// through a user function.
	CPUPerRecord float64
	// CPUPerByte is the marginal CPU cost in seconds of processing one
	// byte of record payload.
	CPUPerByte float64
	// CacheProbeTime is the paper's Tcache term: seconds per probe of the
	// lookup cache.
	CacheProbeTime float64
	// TaskStartup is the fixed scheduling/JVM-reuse overhead in seconds
	// charged once per task.
	TaskStartup float64
	// NodeSpeed optionally assigns per-node speed factors (1 = nominal,
	// 0.5 = a straggler running at half speed). Task durations on node n
	// are divided by NodeSpeed[n]. Nil means all nodes nominal. Models
	// the heterogeneity of "a dynamic cloud environment" the paper cites
	// when arguing against pinning reducers to index hosts (footnote 3).
	NodeSpeed []float64
	// Parallelism bounds how many task bodies execute concurrently on
	// real goroutines: 0 picks runtime.GOMAXPROCS(0) (the default), 1
	// forces the in-loop serial executor, and n > 1 runs up to n bodies
	// at once. Either executor produces bit-identical schedules, stats,
	// and outputs; see SchedulePhase.
	Parallelism int
}

// DefaultConfig mirrors the paper's testbed: 12 blade servers, 8 map and
// 4 reduce slots per TaskTracker, 1 Gbps Ethernet, SAS disks.
func DefaultConfig() Config {
	return Config{
		Nodes:              12,
		MapSlotsPerNode:    8,
		ReduceSlotsPerNode: 4,
		NetBandwidth:       125e6, // 1 Gbps
		DiskRate:           150e6, // 7200rpm SAS sequential read
		DFSWriteCost:       2.5e-8,
		CPUPerRecord:       1e-6,
		CPUPerByte:         4e-9,
		CacheProbeTime:     1e-6,
		TaskStartup:        0.1,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("sim: config needs at least one node, got %d", c.Nodes)
	case c.MapSlotsPerNode <= 0:
		return fmt.Errorf("sim: config needs at least one map slot per node, got %d", c.MapSlotsPerNode)
	case c.ReduceSlotsPerNode <= 0:
		return fmt.Errorf("sim: config needs at least one reduce slot per node, got %d", c.ReduceSlotsPerNode)
	case c.NetBandwidth <= 0:
		return fmt.Errorf("sim: network bandwidth must be positive, got %g", c.NetBandwidth)
	case c.DiskRate <= 0:
		return fmt.Errorf("sim: disk rate must be positive, got %g", c.DiskRate)
	case c.DFSWriteCost < 0:
		return fmt.Errorf("sim: DFS write cost must be non-negative, got %g", c.DFSWriteCost)
	case c.Parallelism < 0:
		return fmt.Errorf("sim: parallelism must be non-negative, got %d", c.Parallelism)
	}
	if c.NodeSpeed != nil {
		if len(c.NodeSpeed) != c.Nodes {
			return fmt.Errorf("sim: NodeSpeed has %d entries for %d nodes", len(c.NodeSpeed), c.Nodes)
		}
		for i, s := range c.NodeSpeed {
			if s <= 0 {
				return fmt.Errorf("sim: NodeSpeed[%d] must be positive, got %g", i, s)
			}
		}
	}
	return nil
}

// SpeedOf returns the speed factor of a node (1 when unconfigured).
func (c Config) SpeedOf(n NodeID) float64 {
	if c.NodeSpeed == nil || int(n) >= len(c.NodeSpeed) {
		return 1
	}
	return c.NodeSpeed[n]
}

// Cluster is the shared simulated environment: configuration plus a
// deterministic placement sequence for replica assignment.
type Cluster struct {
	cfg Config

	placeMu   sync.Mutex
	placeNext int
}

// NewCluster builds a cluster from cfg, panicking on invalid configuration
// (construction happens during setup, where failing fast is appropriate).
func NewCluster(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cluster{cfg: cfg}
}

// Config returns the cluster's physical parameters.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the number of machines in the cluster.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// MapSlots returns the total number of map slots across the cluster.
func (c *Cluster) MapSlots() int { return c.cfg.Nodes * c.cfg.MapSlotsPerNode }

// ReduceSlots returns the total number of reduce slots across the cluster.
func (c *Cluster) ReduceSlots() int { return c.cfg.Nodes * c.cfg.ReduceSlotsPerNode }

// Workers returns the number of goroutines the parallel executor may run
// task bodies on: Config.Parallelism, defaulting to runtime.GOMAXPROCS(0)
// when unset.
func (c *Cluster) Workers() int {
	if c.cfg.Parallelism > 0 {
		return c.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// TransferTime returns the virtual seconds needed to move n bytes between
// two distinct machines. Transfers within one machine are free.
func (c *Cluster) TransferTime(bytes float64, from, to NodeID) float64 {
	if from == to {
		return 0
	}
	return bytes / c.cfg.NetBandwidth
}

// NetTime returns the virtual seconds to move n bytes across the network
// unconditionally (used when the peer is known to be remote).
func (c *Cluster) NetTime(bytes float64) float64 { return bytes / c.cfg.NetBandwidth }

// DiskTime returns the virtual seconds to read n bytes from a local disk.
func (c *Cluster) DiskTime(bytes float64) float64 { return bytes / c.cfg.DiskRate }

// CPUTime returns the virtual seconds of user-function CPU for a batch of
// records totalling the given payload size.
func (c *Cluster) CPUTime(records int, bytes float64) float64 {
	return float64(records)*c.cfg.CPUPerRecord + bytes*c.cfg.CPUPerByte
}

// DFSTime returns the paper's f·bytes term for materializing job output.
func (c *Cluster) DFSTime(bytes float64) float64 { return bytes * c.cfg.DFSWriteCost }

// PlaceReplicas returns n distinct nodes for a new chunk or partition
// replica set, advancing a deterministic round-robin cursor so placement is
// spread but reproducible run to run.
func (c *Cluster) PlaceReplicas(n int) []NodeID {
	c.placeMu.Lock()
	defer c.placeMu.Unlock()
	if n > c.cfg.Nodes {
		n = c.cfg.Nodes
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID((c.placeNext + i) % c.cfg.Nodes)
	}
	// Advance by a stride coprime with small clusters to avoid all replica
	// sets stacking on the same neighbourhoods.
	c.placeNext = (c.placeNext + 1) % c.cfg.Nodes
	return out
}

// ContainsNode reports whether node appears in the replica list.
func ContainsNode(replicas []NodeID, node NodeID) bool {
	for _, r := range replicas {
		if r == node {
			return true
		}
	}
	return false
}
