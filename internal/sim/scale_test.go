package sim

import (
	"reflect"
	"testing"
	"time"
)

// scaleCluster builds a cluster with mixed node speeds at the given size.
func scaleCluster(nodes, parallelism int) *Cluster {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Parallelism = parallelism
	speeds := make([]float64, nodes)
	for i := range speeds {
		speeds[i] = []float64{1, 1, 0.5, 2}[i%4]
	}
	cfg.NodeSpeed = speeds
	return NewCluster(cfg)
}

// TestScaleSerialParallelBitIdentical extends the determinism suite to
// cluster scale: a 10k-node / 100k-task phase must finish inside a CI
// wall-clock budget — in short mode too; this is exactly the regression
// the scale-up guards — and the parallel executor's schedule must stay
// bit-identical to the serial one.
func TestScaleSerialParallelBitIdentical(t *testing.T) {
	const (
		nodes  = 10_000
		nTasks = 100_000
		slots  = 2
		budget = 60 * time.Second // generous for slow shared CI runners
	)
	start := time.Now()
	serial := scaleCluster(nodes, 1).SchedulePhase(buildVariedTasks(nTasks, nodes), slots)
	par := scaleCluster(nodes, 8).SchedulePhase(buildVariedTasks(nTasks, nodes), slots)
	elapsed := time.Since(start)

	if len(serial.Assignments) != nTasks {
		t.Fatalf("serial scheduled %d assignments, want %d", len(serial.Assignments), nTasks)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("10k-node schedule diverged: serial makespan %g waves %d locals %d vs parallel makespan %g waves %d locals %d",
			serial.Makespan, serial.Waves, serial.LocalTasks, par.Makespan, par.Waves, par.LocalTasks)
	}
	if elapsed > budget {
		t.Fatalf("10k-node/100k-task serial+parallel phases took %v, budget %v", elapsed, budget)
	}
	t.Logf("10k nodes / 100k tasks ×2 executors in %v (%.0f tasks/sec combined)", elapsed, float64(2*nTasks)/elapsed.Seconds())
}

// buildReplicatedTasks is the taskPicker's worst case: every task lists
// the same few nodes as preferred (heavily replicated hot chunks), so a
// task picked via one hot node's queue leaves dead entries in the other
// hot queues. Without skip-compaction each pick on a hot node re-crawls
// an ever-longer dead prefix, turning the phase quadratic.
func buildReplicatedTasks(n, nodes int) []Task {
	hot := []NodeID{0, 1, 2}
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Preferred: hot,
			Run:       func(NodeID, float64) float64 { return 1 },
		}
	}
	_ = nodes
	return tasks
}

// TestPickerCompactsDeadEntries pins the skip-compaction: after a phase
// where every task preferred the same nodes, the hot queues must not
// retain dead prefixes proportional to the task count.
func TestPickerCompactsDeadEntries(t *testing.T) {
	const n, nodes = 10_000, 100
	p := newTaskPicker(buildReplicatedTasks(n, nodes), nodes)
	// Drain round-robin across all nodes, like slots freeing cluster-wide;
	// the hot queues go stale as other nodes steal their tasks.
	for left := n; left > 0; {
		for node := 0; node < nodes && left > 0; node++ {
			if ti, _ := p.pick(NodeID(node)); ti >= 0 {
				left--
			}
		}
	}
	for _, node := range []NodeID{0, 1, 2} {
		if retained := len(p.byNode[node]) - p.head[node]; retained > 2*compactThreshold {
			t.Fatalf("node %d queue retains %d entries after drain (head %d, len %d); compaction is not kicking in",
				node, retained, p.head[node], len(p.byNode[node]))
		}
	}
}

// BenchmarkPickerReplicatedWorstCase schedules a phase whose every task
// prefers the same three nodes — the dead-entry crawl that motivated
// skip-compaction. ns/op here is the whole phase.
func BenchmarkPickerReplicatedWorstCase(b *testing.B) {
	const nTasks, nodes = 50_000, 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := scaleCluster(nodes, 1)
		c.SchedulePhase(buildReplicatedTasks(nTasks, nodes), 2)
	}
}

// BenchmarkSchedulePhaseSerial10k is the headline scheduler-throughput
// benchmark at cluster scale: 10k nodes, 100k varied tasks, serial
// executor. tasks/sec ≈ 100k / (ns_per_op × 1e-9).
func BenchmarkSchedulePhaseSerial10k(b *testing.B) {
	const nTasks, nodes = 100_000, 10_000
	tasks := buildVariedTasks(nTasks, nodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := scaleCluster(nodes, 1)
		c.SchedulePhase(tasks, 2)
	}
}

// BenchmarkSchedulePhaseParallel10k is the same phase under the parallel
// executor, measuring coordination overhead at scale.
func BenchmarkSchedulePhaseParallel10k(b *testing.B) {
	const nTasks, nodes = 100_000, 10_000
	tasks := buildVariedTasks(nTasks, nodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := scaleCluster(nodes, 8)
		c.SchedulePhase(tasks, 2)
	}
}
