// Package cloudsvc simulates the paper's "data sources behind cloud
// services": single-node services reached over the network, charged per
// lookup, whose answers may be dynamically computed (the knowledge-base
// service runs machine-learning classifiers — the number of valid keys is
// infinite, so no traditional join can replace the access). Each service
// is deterministic per key, satisfying EFind's idempotence assumption.
package cloudsvc

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"efind/internal/index"
	"efind/internal/sim"
)

// Service is a dynamic index served from one node with a fixed per-lookup
// delay. Compute is the dynamic function (classifier, geo resolver, ...);
// it must be safe for concurrent calls, since the parallel engine issues
// lookups from concurrently executing tasks.
type Service struct {
	name    string
	host    sim.NodeID
	hostSet []sim.NodeID
	delay   float64
	compute func(key string) []string
	calls   atomic.Int64
}

var _ index.Accessor = (*Service)(nil)

// New creates a service on the given host with the per-lookup delay T and
// the dynamic computation fn.
func New(name string, host sim.NodeID, delay float64, fn func(key string) []string) *Service {
	return &Service{name: name, host: host, hostSet: []sim.NodeID{host}, delay: delay, compute: fn}
}

// Name implements index.Accessor.
func (s *Service) Name() string { return s.name }

// Lookup implements index.Accessor: it invokes the dynamic computation.
func (s *Service) Lookup(key string) ([]string, error) {
	s.calls.Add(1)
	return s.compute(key), nil
}

// ServeTime implements index.Accessor.
func (s *Service) ServeTime() float64 { return s.delay }

// SetServeTime adjusts the per-lookup delay (the LOG experiment sweeps an
// extra 0–5 ms on top of the base 0.8 ms).
func (s *Service) SetServeTime(d float64) { s.delay = d }

// HostsFor implements index.Accessor: the single service host.
func (s *Service) HostsFor(string) []sim.NodeID { return s.hostSet }

// Calls returns the number of lookups served (the pay-per-use meter the
// paper wants minimized).
func (s *Service) Calls() int64 { return s.calls.Load() }

// ResetStats clears the call counter.
func (s *Service) ResetStats() { s.calls.Store(0) }

// NewGeoService builds the LOG experiment's cloud service: IP address →
// geographical region, deterministically derived from the IP so results
// are stable and verifiable. regions controls the domain size.
func NewGeoService(host sim.NodeID, delay float64, regions int) *Service {
	if regions < 1 {
		regions = 1
	}
	return New("geo-service", host, delay, func(ip string) []string {
		return []string{fmt.Sprintf("region-%02d", hashOf(ip)%uint32(regions))}
	})
}

// NewTopicService builds Example 2.1's knowledge-base service: keywords →
// topic, "computed by machine-learning classifiers" — simulated by a
// deterministic hash-based classifier over the keyword set, which
// preserves the property that any input is a valid key.
func NewTopicService(host sim.NodeID, delay float64, topics int) *Service {
	if topics < 1 {
		topics = 1
	}
	return New("topic-service", host, delay, func(keywords string) []string {
		return []string{fmt.Sprintf("topic-%03d", hashOf(keywords)%uint32(topics))}
	})
}

func hashOf(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}
