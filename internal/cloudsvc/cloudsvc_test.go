package cloudsvc

import (
	"fmt"
	"testing"
)

func TestLookupDeterministic(t *testing.T) {
	s := New("svc", 3, 0.001, func(k string) []string { return []string{"echo:" + k} })
	a, err := s.Lookup("x")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Lookup("x")
	if len(a) != 1 || a[0] != "echo:x" || b[0] != a[0] {
		t.Fatalf("lookup not deterministic: %v vs %v", a, b)
	}
}

func TestCallMeter(t *testing.T) {
	s := New("svc", 0, 0, func(string) []string { return nil })
	for i := 0; i < 7; i++ {
		s.Lookup("k")
	}
	if s.Calls() != 7 {
		t.Fatalf("calls = %d, want 7", s.Calls())
	}
	s.ResetStats()
	if s.Calls() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHostsSingleNode(t *testing.T) {
	s := New("svc", 5, 0, func(string) []string { return nil })
	h := s.HostsFor("anything")
	if len(h) != 1 || h[0] != 5 {
		t.Fatalf("hosts = %v, want [5]", h)
	}
}

func TestSetServeTime(t *testing.T) {
	s := New("svc", 0, 0.0008, func(string) []string { return nil })
	if s.ServeTime() != 0.0008 {
		t.Fatalf("serve time = %g", s.ServeTime())
	}
	s.SetServeTime(0.0058)
	if s.ServeTime() != 0.0058 {
		t.Fatalf("serve time after set = %g", s.ServeTime())
	}
}

func TestGeoServiceShape(t *testing.T) {
	s := NewGeoService(0, 0.0008, 50)
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		ip := fmt.Sprintf("10.0.%d.%d", i/256, i%256)
		got, err := s.Lookup(ip)
		if err != nil || len(got) != 1 {
			t.Fatalf("geo lookup %q = %v, %v", ip, got, err)
		}
		seen[got[0]] = true
		// Idempotent.
		again, _ := s.Lookup(ip)
		if again[0] != got[0] {
			t.Fatalf("geo service not idempotent for %q", ip)
		}
	}
	if len(seen) < 30 {
		t.Fatalf("geo service uses only %d of 50 regions over 2000 IPs", len(seen))
	}
}

func TestTopicServiceDynamicDomain(t *testing.T) {
	s := NewTopicService(1, 0.002, 100)
	// Any input is a valid key — even strings never seen before.
	for _, k := range []string{"", "a b c", "完全novel input", "x"} {
		got, err := s.Lookup(k)
		if err != nil || len(got) != 1 {
			t.Fatalf("topic lookup %q failed: %v %v", k, got, err)
		}
	}
}

func TestDomainClamp(t *testing.T) {
	if s := NewGeoService(0, 0, 0); s == nil {
		t.Fatal("nil service")
	}
	if s := NewTopicService(0, 0, -5); s == nil {
		t.Fatal("nil service")
	}
}
