package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"efind/internal/dfs"
)

// sumCombine pre-aggregates counts (associative + commutative, valid as a
// combiner for the count reduce).
func sumCombine(_ *TaskContext, key string, values []string, emit Emit) {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(v)
		total += n
	}
	emit(Pair{Key: key, Value: strconv.Itoa(total)})
}

func wordCountJob(in *dfs.File, name string, combine bool) *Job {
	job := &Job{
		Name:  name,
		Input: in,
		Map: func(_ *TaskContext, p Pair, emit Emit) {
			for _, w := range strings.Fields(p.Value) {
				emit(Pair{Key: w, Value: "1"})
			}
		},
		NumReduce: 4,
		Reduce:    sumCombine, // counting reduce = same aggregation
	}
	if combine {
		job.Combine = sumCombine
	}
	return job
}

func TestCombinerPreservesResults(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 900)

	collect := func(combine bool) map[string]int {
		job := wordCountJob(in, fmt.Sprintf("wc-%v", combine), combine)
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, r := range res.Output.All() {
			n, err := strconv.Atoi(r.Value)
			if err != nil {
				t.Fatal(err)
			}
			out[r.Key] += n
		}
		return out
	}
	plain := collect(false)
	combined := collect(true)
	if len(plain) != len(combined) {
		t.Fatalf("key counts differ: %d vs %d", len(plain), len(combined))
	}
	for k, v := range plain {
		if combined[k] != v {
			t.Fatalf("count[%s] = %d with combiner, %d without", k, combined[k], v)
		}
	}
}

func TestCombinerReducesShuffleBytes(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 900)

	run := func(combine bool) (*Result, int64) {
		job := wordCountJob(in, fmt.Sprintf("wcb-%v", combine), combine)
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		var mapOutBytes int64
		for _, st := range res.MapStats {
			mapOutBytes += st.Counters[CounterOutputBytes]
		}
		return res, mapOutBytes
	}
	plainRes, plainBytes := run(false)
	combRes, combBytes := run(true)
	if combBytes >= plainBytes {
		t.Fatalf("combiner did not reduce map output bytes: %d vs %d", combBytes, plainBytes)
	}
	if combRes.Counters[CounterCombineInRecords] == 0 {
		t.Fatal("combine counters missing")
	}
	if combRes.Counters[CounterCombineOutRecords] >= combRes.Counters[CounterCombineInRecords] {
		t.Fatal("combiner did not collapse records")
	}
	// Smaller shuffle = faster job in the cost model.
	if combRes.VTime >= plainRes.VTime {
		t.Fatalf("combiner should cut virtual time: %g vs %g", combRes.VTime, plainRes.VTime)
	}
}

func TestCombinerIgnoredOnMapOnlyJobs(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 50)
	job := &Job{
		Name:    "maponly-combine",
		Input:   in,
		Combine: sumCombine, // no Reduce: combiner must be a no-op
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 50 {
		t.Fatalf("map-only job with dangling combiner lost records: %d", res.Output.Records())
	}
	if res.Counters[CounterCombineInRecords] != 0 {
		t.Fatal("combiner must not run without a reducer")
	}
}
