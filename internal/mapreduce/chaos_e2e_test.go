package mapreduce

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"efind/internal/chaos"
	"efind/internal/dfs"
	"efind/internal/obs"
	"efind/internal/sim"
)

// chaosEnv is testEnv with a configurable executor parallelism and a
// task startup cost small enough that a chaos-slowed task really runs
// past the speculation threshold (with testEnv's 0.01 startup the
// constant term drowns the slowdown of the actual work).
func chaosEnv(t *testing.T, parallelism int) (*dfs.FS, *Engine) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.0001
	cfg.Parallelism = parallelism
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 1 << 10
	return fs, New(cluster, fs)
}

// rawOutput returns the output records in shard order, un-sorted: the
// chaos tests assert BIT-identical output, not merely equal multisets.
func rawOutput(r *Result) []string {
	var out []string
	for _, rec := range r.Output.All() {
		out = append(out, rec.Key+"\x00"+rec.Value)
	}
	return out
}

func sameRaw(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: output sizes differ: %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: outputs differ at %d:\n  want %q\n  got  %q", label, i, want[i], got[i])
		}
	}
}

// nonChaosCounters strips the counters the chaos machinery itself emits,
// leaving the cost-model-relevant ones that must match a fault-free run.
func nonChaosCounters(c map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(c))
	for k, v := range c {
		if strings.HasPrefix(k, "chaos.") || strings.HasPrefix(k, "task.speculative.") {
			continue
		}
		out[k] = v
	}
	return out
}

// TestChaosCrashRecoveryBitIdenticalOutput crashes one node mid-map and
// demands the lost tasks re-run on survivors with output and cost
// counters bit-identical to the fault-free run.
func TestChaosCrashRecoveryBitIdenticalOutput(t *testing.T) {
	fs, e := chaosEnv(t, 1)
	in := makeInput(t, fs, "in", 900)
	clean, err := e.Run(wordCountJob(in, "wc-clean", false))
	if err != nil {
		t.Fatal(err)
	}

	// Crash the node holding the first assignment, halfway through the
	// (identically scheduled) map phase, with no recovery until long
	// after the job: the recovery wave must avoid the dead node.
	victim := clean.MapPhase.Assignments[0].Node
	at := 0.5 * clean.MapPhase.Makespan
	fs2, e2 := chaosEnv(t, 1)
	in2 := makeInput(t, fs2, "in", 900)
	job := wordCountJob(in2, "wc-crash", false)
	job.Chaos = chaos.MustNew(chaos.Config{
		Seed:    1,
		Crashes: []chaos.Crash{{Node: victim, At: at, Recover: at + 1000}},
	}, 4)
	crashed, err := e2.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	if got := crashed.Counters[chaos.CtrNodeCrashes]; got != 1 {
		t.Fatalf("node crashes = %d, want 1", got)
	}
	if crashed.Counters[chaos.CtrTasksLost] == 0 {
		t.Fatal("crash discarded no tasks; the victim held assignments")
	}
	for _, a := range crashed.MapPhase.Assignments {
		if a.Node == victim {
			t.Fatalf("map task %d still placed on crashed node %d", a.Task, victim)
		}
	}
	if crashed.VTime <= clean.VTime {
		t.Fatalf("re-executing lost tasks should cost virtual time: %g vs clean %g", crashed.VTime, clean.VTime)
	}
	sameRaw(t, "crash-recovery", rawOutput(clean), rawOutput(crashed))
	if want, got := nonChaosCounters(clean.Counters), nonChaosCounters(crashed.Counters); !reflect.DeepEqual(want, got) {
		t.Fatalf("crash recovery skewed cost counters:\n want %v\n got  %v", want, got)
	}
}

// TestChaosSpeculationNeverDoubleCharges injects stragglers with
// speculative backups across several seeds: whatever the race outcomes,
// the output must stay bit-identical and the losing attempts' work must
// never leak into the cost-model counters.
func TestChaosSpeculationNeverDoubleCharges(t *testing.T) {
	fs, e := chaosEnv(t, 1)
	in := makeInput(t, fs, "in", 900)
	clean, err := e.Run(wordCountJob(in, "wc-clean", false))
	if err != nil {
		t.Fatal(err)
	}
	cleanRaw := rawOutput(clean)
	cleanCtr := nonChaosCounters(clean.Counters)

	for _, seed := range []int64{7, 21, 99} {
		fs2, e2 := chaosEnv(t, 1)
		in2 := makeInput(t, fs2, "in", 900)
		job := wordCountJob(in2, fmt.Sprintf("wc-spec-%d", seed), false)
		job.Chaos = chaos.MustNew(chaos.Config{
			Seed:            seed,
			Spec:            chaos.Speculation{Enabled: true},
			StragglerRate:   0.25,
			StragglerFactor: 6,
		}, 4)
		res, err := e2.Run(job)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		launched := res.Counters[chaos.CtrSpecLaunched]
		if launched == 0 {
			t.Fatalf("seed %d: no speculative backups launched", seed)
		}
		if won, lost := res.Counters[chaos.CtrSpecWon], res.Counters[chaos.CtrSpecLost]; won+lost != launched {
			t.Fatalf("seed %d: speculation races unaccounted: launched %d, won %d, lost %d", seed, launched, won, lost)
		}
		sameRaw(t, fmt.Sprintf("speculation-seed-%d", seed), cleanRaw, rawOutput(res))
		if got := nonChaosCounters(res.Counters); !reflect.DeepEqual(cleanCtr, got) {
			t.Fatalf("seed %d: speculative duplicates double-charged counters:\n want %v\n got  %v", seed, cleanCtr, got)
		}
	}
}

// chaosRunTraced runs one full chaos job (crash + stragglers + backups)
// on a fresh environment with the given executor parallelism, returning
// the result and the exported Chrome trace bytes.
func chaosRunTraced(t *testing.T, parallelism int, crashAt float64) (*Result, []byte) {
	t.Helper()
	fs, e := chaosEnv(t, parallelism)
	e.Trace = obs.NewTrace()
	in := makeInput(t, fs, "in", 900)
	job := wordCountJob(in, "wc-chaos", false)
	job.Chaos = chaos.MustNew(chaos.Config{
		Seed:            42,
		Crashes:         []chaos.Crash{{Node: 1, At: crashAt, Recover: crashAt + 1000}},
		Spec:            chaos.Speculation{Enabled: true},
		StragglerRate:   0.3,
		StragglerFactor: 5,
	}, 4)
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestChaosSameSeedSerialParallelIdentical: one seed, serial and
// parallel executors — output, every counter, the virtual makespan, and
// the exported trace must be bit-identical.
func TestChaosSameSeedSerialParallelIdentical(t *testing.T) {
	fs, e := chaosEnv(t, 1)
	in := makeInput(t, fs, "in", 900)
	clean, err := e.Run(wordCountJob(in, "wc-clean", false))
	if err != nil {
		t.Fatal(err)
	}
	crashAt := 0.4 * clean.MapPhase.Makespan

	serial, serialTrace := chaosRunTraced(t, 1, crashAt)
	parallel, parallelTrace := chaosRunTraced(t, 8, crashAt)

	if serial.VTime != parallel.VTime {
		t.Fatalf("chaos makespan diverged: serial %g vs parallel %g", serial.VTime, parallel.VTime)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		t.Fatalf("chaos counters diverged:\n serial   %v\n parallel %v", serial.Counters, parallel.Counters)
	}
	sameRaw(t, "serial-vs-parallel", rawOutput(serial), rawOutput(parallel))
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Fatalf("chaos trace bytes diverged: serial %d bytes vs parallel %d bytes", len(serialTrace), len(parallelTrace))
	}
	if serial.Counters[chaos.CtrNodeCrashes] == 0 {
		t.Fatal("chaos run applied no crash; the determinism check is vacuous")
	}
}

// TestChaosDifferentSeedsSameOutput: the fault schedule changes with the
// seed, the answer never does.
func TestChaosDifferentSeedsSameOutput(t *testing.T) {
	fs, e := chaosEnv(t, 1)
	in := makeInput(t, fs, "in", 900)
	clean, err := e.Run(wordCountJob(in, "wc-clean", false))
	if err != nil {
		t.Fatal(err)
	}
	window := clean.MapPhase.Makespan

	for _, seed := range []int64{1, 2, 3} {
		fs2, e2 := chaosEnv(t, 1)
		in2 := makeInput(t, fs2, "in", 900)
		job := wordCountJob(in2, fmt.Sprintf("wc-seed-%d", seed), false)
		job.Chaos = chaos.MustNew(chaos.Config{
			Seed:            seed,
			CrashCount:      1,
			CrashFrom:       0.1 * window,
			CrashUntil:      0.9 * window,
			CrashRecovery:   1000,
			Spec:            chaos.Speculation{Enabled: true},
			StragglerRate:   0.3,
			StragglerFactor: 5,
		}, 4)
		res, err := e2.Run(job)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sameRaw(t, fmt.Sprintf("seed-%d", seed), rawOutput(clean), rawOutput(res))
	}
}

// TestEngineRunTwiceWithChaosIdentical runs the same absolutely-timed
// chaos job twice through ONE engine. Engine.Run hands each call a fresh
// JobRun, so the virtual clock restarts at zero and the crash window
// lands identically both times. (Before per-job run state, the engine's
// clock carried over: the second run started past the crash time and the
// fault silently never fired.)
func TestEngineRunTwiceWithChaosIdentical(t *testing.T) {
	fs, e := chaosEnv(t, 1)
	in := makeInput(t, fs, "in", 900)

	probe, err := e.Run(wordCountJob(in, "wc-probe", false))
	if err != nil {
		t.Fatal(err)
	}
	victim := probe.MapPhase.Assignments[0].Node
	at := 0.5 * probe.MapPhase.Makespan

	run := func(name string) *Result {
		job := wordCountJob(in, name, false)
		job.Chaos = chaos.MustNew(chaos.Config{
			Seed:    7,
			Crashes: []chaos.Crash{{Node: victim, At: at, Recover: at + 1000}},
		}, 4)
		res, err := e.Run(job)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res
	}
	first := run("wc-twice-a")
	second := run("wc-twice-b")

	for i, res := range []*Result{first, second} {
		if got := res.Counters[chaos.CtrNodeCrashes]; got != 1 {
			t.Fatalf("run %d: node crashes = %d, want 1 — the crash window must fire on every run", i+1, got)
		}
	}
	if first.VTime != second.VTime {
		t.Fatalf("virtual time leaked across runs: %g vs %g", first.VTime, second.VTime)
	}
	sameRaw(t, "run-twice", rawOutput(first), rawOutput(second))
	if !reflect.DeepEqual(first.Counters, second.Counters) {
		t.Fatalf("counters diverged across identical runs:\n want %v\n got  %v", first.Counters, second.Counters)
	}
}
