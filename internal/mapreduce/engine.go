package mapreduce

import (
	"fmt"
	"sort"

	"efind/internal/dfs"
	"efind/internal/obs"
	"efind/internal/sim"
)

// Engine executes jobs on a simulated cluster. Records really flow through
// the user functions; durations are virtual times from the sim cost model.
// Task bodies may execute concurrently (sim.Config.Parallelism); the
// engine merges per-task outputs, stats, and counters by task index, so
// results are identical to a serial run.
//
// Fault injection and chaos schedules are per-Job configuration (see
// Job.FaultInjector and Job.Chaos), and all per-job mutable state — the
// virtual clock, phase sequence, slot lease — lives on the JobRun handle
// (see run.go). The Engine itself is immutable after construction, so any
// number of runs, sequential or interleaved by the job service, share one
// Engine without leaking state into each other.
type Engine struct {
	Cluster *sim.Cluster
	FS      *dfs.FS
	// Trace, when set, records virtual-time spans for every task (and its
	// read/pipeline/cpu/write sub-phases), per-phase stage profiles, and
	// folds all task counters into the trace's metrics registry. Nil (the
	// default) keeps the hot path untouched: task contexts skip span
	// recording entirely and allocate nothing for it.
	Trace *obs.Trace
}

// CounterTaskRetries counts failed task attempts that were re-executed.
const CounterTaskRetries = "task.retries"

// maxAttempts caps re-execution (Hadoop's mapred.map.max.attempts = 4).
// A task failing this many attempts fails its job.
const maxAttempts = 4

// New returns an engine bound to the cluster and file system.
func New(cluster *sim.Cluster, fs *dfs.FS) *Engine {
	return &Engine{Cluster: cluster, FS: fs}
}

// Close releases resources the engine's file system holds outside the Go
// heap — the mmap'd snapshots of file-backed chunks. It is the shutdown
// point for a simulation: after Close no file-backed payload is readable.
// Engines over an all-in-memory FS close as a no-op.
func (e *Engine) Close() error {
	return e.FS.Close()
}

// MapOutput is the materialized output of one map task, partitioned into
// reducer buckets. The EFind runtime keeps these around so a mid-job plan
// change can reuse completed map tasks (Figure 10(a)).
type MapOutput struct {
	Split   int
	Node    sim.NodeID
	Buckets [][]Pair
	Bytes   int
}

// MapPhaseResult is the outcome of running (a subset of) a job's map phase.
type MapPhaseResult struct {
	Outputs  []*MapOutput
	Stats    []TaskStats
	Phase    sim.PhaseResult
	Counters map[string]int64
	// VTime is the phase makespan in virtual seconds.
	VTime float64
}

// Result is the outcome of a complete job.
type Result struct {
	Output      *dfs.File
	VTime       float64
	Counters    map[string]int64
	MapStats    []TaskStats
	ReduceStats []TaskStats
	MapPhase    sim.PhaseResult
	ReducePhase sim.PhaseResult
	MapOutputs  []*MapOutput
}

// Run executes the whole job on a fresh per-job handle and returns its
// result. Each call gets its own virtual clock starting at zero — two
// sequential Runs on one engine are fully independent.
func (e *Engine) Run(job *Job) (*Result, error) {
	return e.NewRun().Run(job)
}

// Run executes the whole job and returns its result. Splits limits the map
// phase to the given split indices when non-nil (used by the adaptive
// runtime to process first-wave splits under one plan and the rest under
// another).
func (e *JobRun) Run(job *Job) (*Result, error) {
	if err := job.validate(e.Engine); err != nil {
		return nil, err
	}
	mp, err := e.RunMapPhase(job, nil)
	if err != nil {
		return nil, err
	}
	if job.Reduce == nil {
		return e.FinishMapOnly(job, mp)
	}
	return e.RunReducePhase(job, mp)
}

// RunMapPhase executes the map side of the job over the given split
// indices (nil means all splits). Chained MapStagesBefore, Map, and
// MapStagesAfter run per record; outputs are partitioned for NumReduce
// reducers (or kept whole for map-only jobs).
//
// On a task failure the returned error is non-nil AND the result carries
// whatever completed: Outputs[i] is non-nil exactly for the tasks that
// succeeded. The EFind runtime reuses those completed splits when a
// failure-triggered plan change re-runs only the missing work
// (Figure 10(a) applied to faults).
func (e *JobRun) RunMapPhase(job *Job, splits []int) (*MapPhaseResult, error) {
	if err := job.validate(e.Engine); err != nil {
		return nil, err
	}
	if splits == nil {
		splits = job.Splits
	}
	if splits == nil {
		splits = make([]int, len(job.Input.Chunks))
		for i := range splits {
			splits[i] = i
		}
	}
	for _, s := range splits {
		if s < 0 || s >= len(job.Input.Chunks) {
			return nil, fmt.Errorf("mapreduce: job %q split %d out of range [0,%d)", job.Name, s, len(job.Input.Chunks))
		}
	}

	ready, seq := e.beginPhase()
	base, lease := e.grantPhase(MapTask, len(splits), ready)
	res := &MapPhaseResult{
		Outputs:  make([]*MapOutput, len(splits)),
		Stats:    make([]TaskStats, len(splits)),
		Counters: make(map[string]int64),
	}
	taskErrs := make([]error, len(splits))
	tasks := make([]sim.Task, len(splits))
	for i, s := range splits {
		i, s := i, s
		chunk := job.Input.Chunks[s]
		// The scheduler only reads Preferred, so the replica list is shared
		// rather than copied — a 1M-split phase would otherwise allocate a
		// slice per task before scheduling even starts.
		preferred := chunk.Replicas
		if job.MapPlacement != nil {
			preferred = job.MapPlacement(s, chunk)
		}
		tasks[i] = sim.Task{
			Preferred: preferred,
			Run:       e.mapTaskRun(job, base, seq, i, s, chunk, res, taskErrs),
		}
	}
	res.Phase = e.Cluster.SchedulePhaseLease(tasks, e.Cluster.Config().MapSlotsPerNode, lease, job.downAt(base))
	e.applyMapChaos(job, base, res, splits, taskErrs)
	e.advance(res.Phase.Makespan)
	e.endPhase(MapTask, lease, base, base+res.Phase.Makespan)
	if err := firstError(taskErrs); err != nil {
		if job.Chaos != nil {
			e.emitPhase(job.Name+"/map", "map", base, res.Phase, res.Stats)
		}
		return res, err
	}
	res.VTime = res.Phase.Makespan
	for _, st := range res.Stats {
		mergeCounters(res.Counters, st.Counters)
	}
	e.emitPhase(job.Name+"/map", "map", base, res.Phase, res.Stats)
	return res, nil
}

// mapTaskRun builds the scheduler callback for one map task: the
// Hadoop-style retry loop around mapAttempt, with chaos straggler
// slowdown applied to the task's virtual duration (never to its work —
// records, counters, and cache traffic are those of a normal run).
func (e *Engine) mapTaskRun(job *Job, base float64, seq, i, s int, chunk *dfs.Chunk, res *MapPhaseResult, taskErrs []error) func(sim.NodeID, float64) float64 {
	slow := job.chaosSlow(seq, i)
	return func(node sim.NodeID, start float64) float64 {
		total := 0.0
		for attempt := 1; attempt <= maxAttempts; attempt++ {
			rollback := e.guardAttempt(job, node)
			out, stats, err := e.mapAttempt(job, i, s, chunk, node, base+start+total)
			if err != nil {
				taskErrs[i] = err
				return total
			}
			total += stats.Duration * slow
			if job.failAttempt(MapTask, i, attempt) {
				if rollback != nil {
					rollback()
				}
				continue // attempt wasted; re-execute
			}
			stats.Duration = total
			stats.Counters[CounterTaskRetries] = int64(attempt - 1)
			res.Outputs[i] = out
			res.Stats[i] = stats
			return total
		}
		taskErrs[i] = fmt.Errorf("mapreduce: job %q map task %d (split %d) failed %d attempts", job.Name, i, s, maxAttempts)
		return total
	}
}

// mapAttempt runs one map task attempt, converting a TaskContext.Abort
// into an error. Aborts are permanent logical failures (an index error
// under ErrorFailJob, not a crashed machine), so the caller fails the job
// instead of re-executing the attempt.
func (e *Engine) mapAttempt(job *Job, task, split int, chunk *dfs.Chunk, node sim.NodeID, absStart float64) (out *MapOutput, st TaskStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(taskAbort)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("mapreduce: job %q map task %d (split %d) aborted: %w", job.Name, task, split, ab.err)
		}
	}()
	out, st = e.runMapTask(job, task, split, chunk, node, absStart)
	return out, st, nil
}

// reduceAttempt is mapAttempt's reduce-side twin.
func (e *Engine) reduceAttempt(job *Job, r int, node sim.NodeID, outputs []*MapOutput, absStart float64) (shard []dfs.Record, st TaskStats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ab, ok := rec.(taskAbort)
			if !ok {
				panic(rec)
			}
			err = fmt.Errorf("mapreduce: job %q reduce task %d aborted: %w", job.Name, r, ab.err)
		}
	}()
	shard, st = e.runReduceTask(job, r, node, outputs, absStart)
	return shard, st, nil
}

// guardAttempt snapshots node-shared stage state ahead of a task attempt
// that might fail, returning the rollback to invoke on failure. It is a
// no-op (nil) when no faults can be injected, so normal runs skip the
// snapshot cost entirely.
func (e *Engine) guardAttempt(job *Job, node sim.NodeID) func() {
	if (job.FaultInjector == nil && job.Chaos == nil) || job.AttemptGuard == nil {
		return nil
	}
	return job.AttemptGuard(node)
}

// firstError returns the lowest-indexed task error, making the job-level
// error deterministic regardless of task completion order.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runMapTask executes one map task on the given node. absStart anchors
// the task's context clock at its absolute virtual start time, so stages
// can ask "what time is it?" (index outage windows).
func (e *Engine) runMapTask(job *Job, taskID, split int, chunk *dfs.Chunk, node sim.NodeID, absStart float64) (*MapOutput, TaskStats) {
	ctx := NewTaskContext(e.Cluster, node, taskID, MapTask)
	ctx.Split = split
	ctx.base = absStart
	if e.Trace != nil {
		ctx.EnableSpans()
	}

	// Input read: local disk when a replica lives here, network otherwise.
	// File-backed chunks decode their payload here; a snapshot that fails
	// its integrity checks aborts the attempt rather than feeding the map
	// function wrong records.
	sp := ctx.StartSpan("read", "io")
	records, err := chunk.Records()
	if err != nil {
		ctx.Abort(fmt.Errorf("reading split %d: %w", split, err))
	}
	if sim.ContainsNode(chunk.Replicas, node) {
		ctx.Charge(e.Cluster.DiskTime(float64(chunk.Bytes)))
	} else {
		ctx.ChargeNet(float64(chunk.Bytes))
	}
	sp.End()

	numBuckets := 1
	if job.Reduce != nil {
		numBuckets = job.NumReduce
	}
	out := &MapOutput{Split: split, Node: node, Buckets: make([][]Pair, numBuckets)}
	if numBuckets == 1 {
		// Map-only jobs (and single-reducer jobs) funnel every record into
		// one bucket; size it once instead of growing through the append
		// doubling ladder on each task.
		out.Buckets[0] = make([]Pair, 0, len(records))
	}
	outRecords := 0
	sink := func(p Pair) {
		b := 0
		if job.Reduce != nil {
			b = job.Partition(p.Key, job.NumReduce)
		}
		out.Buckets[b] = append(out.Buckets[b], p)
		out.Bytes += p.Size()
		outRecords++
	}

	mapStage := &FuncStage{OnProcess: job.Map}
	if job.Map == nil {
		mapStage = &FuncStage{OnProcess: identityMap}
	}
	sp = ctx.StartSpan("map-pipeline", "pipeline")
	pipe := newPipeline(ctx, node, job.MapStagesBefore, mapStage, job.MapStagesAfter, sink)
	pipe.open()
	for _, r := range records {
		pipe.process(Pair{Key: r.Key, Value: r.Value})
	}
	pipe.close()
	sp.End()

	if job.Combine != nil && job.Reduce != nil {
		sp = ctx.StartSpan("combine", "pipeline")
		e.combineBuckets(ctx, job, out)
		sp.End()
		outRecords = 0
		for _, b := range out.Buckets {
			outRecords += len(b)
		}
	}

	ctx.Inc(CounterInputRecords, int64(len(records)))
	ctx.Inc(CounterInputBytes, int64(chunk.Bytes))
	ctx.Inc(CounterOutputRecords, int64(outRecords))
	ctx.Inc(CounterOutputBytes, int64(out.Bytes))
	sp = ctx.StartSpan("cpu", "cpu")
	ctx.Charge(e.Cluster.CPUTime(len(records)+outRecords, float64(chunk.Bytes+out.Bytes)))
	sp.End()
	if job.Reduce == nil {
		// Map-only jobs materialize their output to the DFS directly.
		sp = ctx.StartSpan("dfs-write", "io")
		ctx.Charge(e.Cluster.DFSTime(float64(out.Bytes)))
		sp.End()
	}
	return out, e.taskStats(ctx)
}

// combineBuckets applies the job's combiner to each reducer bucket of one
// map task's output: values of equal keys are grouped (sort within the
// bucket) and fed through Combine, and the bucket is replaced with the
// combined records. The spill sort and combine CPU are charged.
func (e *Engine) combineBuckets(ctx *TaskContext, job *Job, out *MapOutput) {
	inRecords, inBytes := 0, 0
	out.Bytes = 0
	for bi, bucket := range out.Buckets {
		if len(bucket) == 0 {
			continue
		}
		inRecords += len(bucket)
		for _, p := range bucket {
			inBytes += p.Size()
		}
		sort.SliceStable(bucket, func(i, j int) bool { return bucket[i].Key < bucket[j].Key })
		var combined []Pair
		emit := func(p Pair) {
			combined = append(combined, p)
			out.Bytes += p.Size()
		}
		for i := 0; i < len(bucket); {
			j := i
			for j < len(bucket) && bucket[j].Key == bucket[i].Key {
				j++
			}
			values := make([]string, 0, j-i)
			for _, p := range bucket[i:j] {
				values = append(values, p.Value)
			}
			job.Combine(ctx, bucket[i].Key, values, emit)
			i = j
		}
		out.Buckets[bi] = combined
	}
	ctx.Inc(CounterCombineInRecords, int64(inRecords))
	ctx.Inc(CounterCombineOutRecords, int64(totalRecords(out.Buckets)))
	ctx.Charge(e.Cluster.CPUTime(inRecords, float64(inBytes)))
}

func totalRecords(buckets [][]Pair) int {
	n := 0
	for _, b := range buckets {
		n += len(b)
	}
	return n
}

// RunReducePhase shuffles the given map outputs, runs the reduce side, and
// writes the job output. The map outputs may come from several map phases
// (plan changes merge old-plan and new-plan map results, Figure 10(a)).
func (e *JobRun) RunReducePhase(job *Job, mp *MapPhaseResult, extra ...*MapPhaseResult) (*Result, error) {
	if err := job.validate(e.Engine); err != nil {
		return nil, err
	}
	if job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no reduce function", job.Name)
	}
	outputs := append([]*MapOutput(nil), mp.Outputs...)
	stats := append([]TaskStats(nil), mp.Stats...)
	vtime := mp.VTime
	for _, m := range extra {
		outputs = append(outputs, m.Outputs...)
		stats = append(stats, m.Stats...)
		vtime += m.VTime
	}
	for _, o := range outputs {
		if len(o.Buckets) != job.NumReduce {
			return nil, fmt.Errorf("mapreduce: job %q map output has %d buckets, want %d", job.Name, len(o.Buckets), job.NumReduce)
		}
	}

	res := &Result{
		Counters:   make(map[string]int64),
		MapStats:   stats,
		MapOutputs: outputs,
		MapPhase:   mp.Phase,
	}
	sub, err := e.RunReduceSubset(job, outputs, nil)
	if err != nil {
		return nil, err
	}
	res.ReduceStats = sub.Stats
	res.ReducePhase = sub.Phase
	res.VTime = vtime + sub.VTime

	name := job.OutputName
	if name == "" {
		name = e.FS.TempName(job.Name + "-out")
	}
	out, err := e.FS.CreateSharded(name, sub.Shards, sub.Homes)
	if err != nil {
		return nil, err
	}
	res.Output = out
	mergeCounters(res.Counters, mp.Counters)
	for _, m := range extra {
		mergeCounters(res.Counters, m.Counters)
	}
	mergeCounters(res.Counters, sub.Counters)
	return res, nil
}

// ReduceSubsetResult is the outcome of running a subset of a job's reduce
// tasks without materializing a file. Shards and Homes are indexed by
// position in the requested reducer list.
type ReduceSubsetResult struct {
	Reducers []int
	Shards   [][]dfs.Record
	Homes    []sim.NodeID
	Stats    []TaskStats
	Phase    sim.PhaseResult
	Counters map[string]int64
	VTime    float64
}

// RunReduceSubset shuffles the map outputs into the requested reducers
// (nil = all) and executes only those reduce tasks. The EFind runtime uses
// it for mid-reduce plan changes (Figure 10(b)): first-wave reducers run
// under the old plan, the rest under the new one, and the caller merges
// the shards.
func (e *JobRun) RunReduceSubset(job *Job, outputs []*MapOutput, reducers []int) (*ReduceSubsetResult, error) {
	if err := job.validate(e.Engine); err != nil {
		return nil, err
	}
	if job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no reduce function", job.Name)
	}
	if reducers == nil {
		reducers = make([]int, job.NumReduce)
		for i := range reducers {
			reducers[i] = i
		}
	}
	for _, r := range reducers {
		if r < 0 || r >= job.NumReduce {
			return nil, fmt.Errorf("mapreduce: job %q reducer %d out of range [0,%d)", job.Name, r, job.NumReduce)
		}
	}
	sub := &ReduceSubsetResult{
		Reducers: reducers,
		Shards:   make([][]dfs.Record, len(reducers)),
		Homes:    make([]sim.NodeID, len(reducers)),
		Stats:    make([]TaskStats, len(reducers)),
		Counters: make(map[string]int64),
	}
	ready, seq := e.beginPhase()
	base, lease := e.grantPhase(ReduceTask, len(reducers), ready)
	taskErrs := make([]error, len(reducers))
	tasks := make([]sim.Task, len(reducers))
	for i, r := range reducers {
		tasks[i] = sim.Task{
			Run: e.reduceTaskRun(job, base, seq, i, r, outputs, sub, taskErrs),
		}
	}
	sub.Phase = e.Cluster.SchedulePhaseLease(tasks, e.Cluster.Config().ReduceSlotsPerNode, lease, job.downAt(base))
	e.applyReduceChaos(job, base, sub, outputs, taskErrs)
	e.advance(sub.Phase.Makespan)
	e.endPhase(ReduceTask, lease, base, base+sub.Phase.Makespan)
	if err := firstError(taskErrs); err != nil {
		return nil, err
	}
	sub.VTime = sub.Phase.Makespan
	for _, st := range sub.Stats {
		mergeCounters(sub.Counters, st.Counters)
	}
	e.emitPhase(job.Name+"/reduce", "reduce", base, sub.Phase, sub.Stats)
	return sub, nil
}

// reduceTaskRun builds the scheduler callback for one reduce task,
// mirroring mapTaskRun.
func (e *Engine) reduceTaskRun(job *Job, base float64, seq, i, r int, outputs []*MapOutput, sub *ReduceSubsetResult, taskErrs []error) func(sim.NodeID, float64) float64 {
	slow := job.chaosSlow(seq, i)
	return func(node sim.NodeID, start float64) float64 {
		total := 0.0
		for attempt := 1; attempt <= maxAttempts; attempt++ {
			rollback := e.guardAttempt(job, node)
			shard, st, err := e.reduceAttempt(job, r, node, outputs, base+start+total)
			if err != nil {
				taskErrs[i] = err
				return total
			}
			total += st.Duration * slow
			if job.failAttempt(ReduceTask, r, attempt) {
				if rollback != nil {
					rollback()
				}
				continue
			}
			st.Duration = total
			st.Counters[CounterTaskRetries] = int64(attempt - 1)
			sub.Shards[i] = shard
			sub.Homes[i] = node
			sub.Stats[i] = st
			return total
		}
		taskErrs[i] = fmt.Errorf("mapreduce: job %q reduce task %d failed %d attempts", job.Name, r, maxAttempts)
		return total
	}
}

// emitPhase exports one completed phase to the attached trace: a task
// span per assignment (on the node/slot lane the scheduler placed it),
// the task's rebased sub-phase spans, a queued→scheduled wait for tasks
// that did not start at phase begin, the per-task counters (folded into
// the unified registry), and a stage profile carrying the makespan the
// CI regression gate budgets. Assignments arrive sorted by (start,
// task), so emission order — and the exported file — is deterministic
// and identical for serial and parallel executions.
//
// One-shot runs place phases back to back on the trace's sequential
// clock, as before. Service runs instead emit at phaseBase — the phase's
// absolute start on the service timeline — so spans of interleaved jobs
// land where they actually ran, and counters are folded in under the
// run's (tenant, job) namespace.
func (e *JobRun) emitPhase(name, kind string, phaseBase float64, phase sim.PhaseResult, stats []TaskStats) {
	t := e.Trace
	if t == nil {
		return
	}
	name = e.qual(name)
	base := phaseBase
	if !e.svc {
		base = t.Clock()
	}
	cfg := e.Cluster.Config()
	for _, a := range phase.Assignments {
		st := stats[a.Task]
		speed := cfg.SpeedOf(a.Node)
		taskName := fmt.Sprintf("%s[%d]", name, st.ID)
		if n := st.Counters[CounterTaskRetries]; n > 0 {
			taskName = fmt.Sprintf("%s (retries=%d)", taskName, n)
		}
		if a.Start > 0 {
			t.AddQueued(taskName, int(a.Node), base, base+a.Start)
		}
		t.AddSpan(obs.Span{
			Name: taskName, Cat: kind,
			Node: int(a.Node), Slot: int(a.Slot),
			Start: base + a.Start, Dur: a.Duration,
		})
		// The final successful attempt occupies the tail of the
		// assignment; its relative sub-phase clock rebases from there,
		// scaled by the node's speed like every other duration.
		bodyStart := a.Start + a.Duration - st.BodyTime/speed
		for _, s := range st.Spans {
			t.AddSpan(obs.Span{
				Name: s.Name, Cat: s.Cat,
				Node: int(a.Node), Slot: int(a.Slot),
				Start: base + bodyStart + s.Start/speed, Dur: s.Dur / speed,
			})
		}
		e.addCountersToTrace(t, st.Counters)
	}
	t.AddStage(obs.StageProfile{
		Name: t.Qualify(name), Kind: kind, VTime: phase.Makespan,
		Tasks: len(stats), LocalTasks: phase.LocalTasks, Waves: phase.Waves,
	})
	if !e.svc {
		t.Advance(phase.Makespan)
	}
}

// runReduceTask executes one reduce task: shuffle in, sort, group, reduce,
// chained tail stages, and output collection.
func (e *Engine) runReduceTask(job *Job, r int, node sim.NodeID, outputs []*MapOutput, absStart float64) ([]dfs.Record, TaskStats) {
	ctx := NewTaskContext(e.Cluster, node, r, ReduceTask)
	ctx.base = absStart
	if e.Trace != nil {
		ctx.EnableSpans()
	}

	var input []Pair
	inBytes := 0
	sp := ctx.StartSpan("shuffle", "io")
	for _, mo := range outputs {
		bucket := mo.Buckets[r]
		if len(bucket) == 0 {
			continue
		}
		bytes := 0
		for _, p := range bucket {
			bytes += p.Size()
		}
		inBytes += bytes
		if mo.Node != node {
			ctx.ChargeNet(float64(bytes))
		} else {
			ctx.Charge(e.Cluster.DiskTime(float64(bytes)))
		}
		input = append(input, bucket...)
	}
	sp.End()
	// Merge sort by key, stable so values stay in map-output order.
	sort.SliceStable(input, func(i, j int) bool { return input[i].Key < input[j].Key })

	var shard []dfs.Record
	outBytes := 0
	outRecords := 0
	sink := func(p Pair) {
		shard = append(shard, dfs.Record{Key: p.Key, Value: p.Value})
		outBytes += p.Size()
		outRecords++
	}
	sp = ctx.StartSpan("reduce-pipeline", "pipeline")
	pipe := newPipeline(ctx, node, nil, nil, job.ReduceStagesAfter, sink)
	pipe.open()
	for i := 0; i < len(input); {
		j := i
		for j < len(input) && input[j].Key == input[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for _, p := range input[i:j] {
			values = append(values, p.Value)
		}
		job.Reduce(ctx, input[i].Key, values, pipe.process)
		i = j
	}
	pipe.close()
	sp.End()

	ctx.Inc(CounterInputRecords, int64(len(input)))
	ctx.Inc(CounterInputBytes, int64(inBytes))
	ctx.Inc(CounterOutputRecords, int64(outRecords))
	ctx.Inc(CounterOutputBytes, int64(outBytes))
	sp = ctx.StartSpan("cpu", "cpu")
	ctx.Charge(e.Cluster.CPUTime(len(input)+outRecords, float64(inBytes+outBytes)))
	sp.End()
	sp = ctx.StartSpan("dfs-write", "io")
	ctx.Charge(e.Cluster.DFSTime(float64(outBytes)))
	sp.End()
	return shard, e.taskStats(ctx)
}

// FinishMapOnly materializes a map-only job's output (one shard per map
// task, first replica on the task's node, as Hadoop's zero-reducer jobs).
func (e *Engine) FinishMapOnly(job *Job, mp *MapPhaseResult) (*Result, error) {
	name := job.OutputName
	if name == "" {
		name = e.FS.TempName(job.Name + "-out")
	}
	shards := make([][]dfs.Record, len(mp.Outputs))
	homes := make([]sim.NodeID, len(mp.Outputs))
	for i, mo := range mp.Outputs {
		homes[i] = mo.Node
		for _, b := range mo.Buckets {
			for _, p := range b {
				shards[i] = append(shards[i], dfs.Record{Key: p.Key, Value: p.Value})
			}
		}
	}
	out, err := e.FS.CreateSharded(name, shards, homes)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Output:     out,
		VTime:      mp.VTime,
		Counters:   make(map[string]int64),
		MapStats:   mp.Stats,
		MapPhase:   mp.Phase,
		MapOutputs: mp.Outputs,
	}
	mergeCounters(res.Counters, mp.Counters)
	return res, nil
}

// taskStats snapshots a finished task's context.
func (e *Engine) taskStats(ctx *TaskContext) TaskStats {
	st := TaskStats{
		ID:       ctx.TaskID,
		Kind:     ctx.Kind,
		Node:     ctx.Node,
		Counters: make(map[string]int64, len(ctx.counters)),
		Duration: ctx.extra,
		BodyTime: ctx.extra,
		Spans:    ctx.spans,
	}
	for k, v := range ctx.counters {
		st.Counters[k] = v
	}
	if len(ctx.sketches) > 0 {
		st.Sketches = make(map[string][]uint64, len(ctx.sketches))
		for k, s := range ctx.sketches {
			st.Sketches[k] = s.Vectors()
		}
	}
	return st
}

func mergeCounters(dst map[string]int64, src map[string]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// pipeline chains stages (before → core → after) into a single
// record-at-a-time flow ending in sink.
type pipeline struct {
	ctx    *TaskContext
	stages []Stage
	sink   Emit
	emits  []Emit // emits[i] feeds stage i; emits[len] is the sink
}

// newPipeline builds the chained-function pipeline for a task. core may be
// nil (reduce-side pipelines run the reduce function group-wise outside
// the pipeline and feed only the after-stages).
func newPipeline(ctx *TaskContext, node sim.NodeID, before []StageFactory, core Stage, after []StageFactory, sink Emit) *pipeline {
	p := &pipeline{ctx: ctx, sink: sink}
	for _, f := range before {
		p.stages = append(p.stages, f(node))
	}
	if core != nil {
		p.stages = append(p.stages, core)
	}
	for _, f := range after {
		p.stages = append(p.stages, f(node))
	}
	// Build emit chain back to front.
	p.emits = make([]Emit, len(p.stages)+1)
	p.emits[len(p.stages)] = sink
	for i := len(p.stages) - 1; i >= 0; i-- {
		stage := p.stages[i]
		next := p.emits[i+1]
		p.emits[i] = func(pr Pair) { stage.Process(ctx, pr, next) }
	}
	return p
}

func (p *pipeline) open() {
	for _, s := range p.stages {
		s.Open(p.ctx)
	}
}

// process pushes one record into the front of the chain.
func (p *pipeline) process(pr Pair) { p.emits[0](pr) }

// close closes stages front to back so trailing emissions flow downstream.
func (p *pipeline) close() {
	for i, s := range p.stages {
		s.Close(p.ctx, p.emits[i+1])
	}
}
