package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/sim"
)

// BenchmarkWordCountJob measures a full wordcount job (map, shuffle, sort,
// reduce, output) on the simulated cluster.
func BenchmarkWordCountJob(b *testing.B) {
	cfg := sim.DefaultConfig()
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 8 << 10
	e := New(cluster, fs)

	recs := make([]dfs.Record, 5000)
	for i := range recs {
		recs[i] = dfs.Record{Key: fmt.Sprintf("k%05d", i), Value: fmt.Sprintf("alpha beta gamma-%d delta", i%97)}
	}
	in, err := fs.Create("bench-in", recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := &Job{
			Name:  fmt.Sprintf("wc-%d", i),
			Input: in,
			Map: func(_ *TaskContext, p Pair, emit Emit) {
				for _, w := range strings.Fields(p.Value) {
					emit(Pair{Key: w, Value: "1"})
				}
			},
			NumReduce: 16,
			Reduce: func(_ *TaskContext, key string, values []string, emit Emit) {
				emit(Pair{Key: key, Value: strconv.Itoa(len(values))})
			},
		}
		res, err := e.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if err := fs.Remove(res.Output.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShufflePartitioning isolates the hash partitioner.
func BenchmarkShufflePartitioning(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i*2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashPartition(keys[i%len(keys)], 48)
	}
}
