package mapreduce

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"efind/internal/dfs"
	"efind/internal/sim"
)

// parEnv is testEnv with an explicit executor parallelism.
func parEnv(t *testing.T, parallelism int) (*dfs.FS, *Engine) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.01
	cfg.Parallelism = parallelism
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 1 << 10
	return fs, New(cluster, fs)
}

// TestJobDeterministicUnderParallelism: the same job run under the serial
// and the parallel executor must agree on virtual time, merged counters,
// per-task stats, phase schedules, and output records.
func TestJobDeterministicUnderParallelism(t *testing.T) {
	run := func(parallelism int) *Result {
		fs, e := parEnv(t, parallelism)
		in := makeInput(t, fs, "in", 600)
		res, err := e.Run(wordCountJob(in, "wc", false))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(1)
	parallel := run(8)

	if serial.VTime != parallel.VTime {
		t.Fatalf("virtual makespan diverged: serial %g vs parallel %g", serial.VTime, parallel.VTime)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		t.Fatalf("counters diverged:\nserial:   %v\nparallel: %v", serial.Counters, parallel.Counters)
	}
	if !reflect.DeepEqual(serial.MapStats, parallel.MapStats) {
		t.Fatalf("map stats diverged:\nserial:   %+v\nparallel: %+v", serial.MapStats, parallel.MapStats)
	}
	if !reflect.DeepEqual(serial.ReduceStats, parallel.ReduceStats) {
		t.Fatalf("reduce stats diverged")
	}
	if !reflect.DeepEqual(serial.MapPhase, parallel.MapPhase) {
		t.Fatalf("map phase schedule diverged:\nserial:   %+v\nparallel: %+v", serial.MapPhase, parallel.MapPhase)
	}
	if !reflect.DeepEqual(serial.ReducePhase, parallel.ReducePhase) {
		t.Fatalf("reduce phase schedule diverged")
	}
	a, b := collect(serial), collect(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("output diverged: %d vs %d records", len(a), len(b))
	}
}

// TestJobDeterministicWithFaultsUnderParallelism layers retries on top:
// fault handling (attempt accounting, retry counters, job-level errors)
// must also be executor-independent.
func TestJobDeterministicWithFaultsUnderParallelism(t *testing.T) {
	run := func(parallelism int) *Result {
		fs, e := parEnv(t, parallelism)
		in := makeInput(t, fs, "in", 400)
		j := wordCountJob(in, "wc-fault", false)
		j.FaultInjector = func(kind TaskKind, task, attempt int) bool {
			return kind == MapTask && task%4 == 1 && attempt == 1
		}
		res, err := e.Run(j)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.VTime != parallel.VTime {
		t.Fatalf("faulty makespan diverged: %g vs %g", serial.VTime, parallel.VTime)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		t.Fatalf("faulty counters diverged:\nserial:   %v\nparallel: %v", serial.Counters, parallel.Counters)
	}
	if serial.Counters[CounterTaskRetries] == 0 {
		t.Fatal("fault injector did not fire")
	}
	if !reflect.DeepEqual(collect(serial), collect(parallel)) {
		t.Fatal("faulty output diverged")
	}
}

// spinMapJob burns real CPU per record so wall-clock time is dominated by
// task bodies rather than scheduler bookkeeping.
func spinMapJob(in *dfs.File, spin int) *Job {
	return &Job{
		Name:      "spin",
		Input:     in,
		NumReduce: 2,
		Map: func(_ *TaskContext, p Pair, emit Emit) {
			h := uint64(1469598103934665603)
			for i := 0; i < spin; i++ {
				for j := 0; j < len(p.Value); j++ {
					h = (h ^ uint64(p.Value[j])) * 1099511628211
				}
			}
			emit(Pair{Key: p.Key, Value: fmt.Sprintf("%x", h)})
		},
		Reduce: IdentityReduce,
	}
}

// TestParallelWallClockSpeedup checks that the parallel executor actually
// buys wall-clock time on a CPU-bound job. Needs real cores to mean
// anything, so it skips on small machines and in -short mode.
func TestParallelWallClockSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock measurement in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs for a meaningful speedup measurement, have %d", runtime.NumCPU())
	}

	elapsed := func(parallelism int) time.Duration {
		fs, e := parEnv(t, parallelism)
		in := makeInput(t, fs, "in", 2000)
		job := spinMapJob(in, 3000)
		start := time.Now()
		if _, err := e.Run(job); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Warm up once to stabilize allocator state, then measure.
	elapsed(1)
	serial := elapsed(1)
	parallel := elapsed(0) // 0 = GOMAXPROCS workers

	t.Logf("serial %v, parallel %v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
	if float64(serial) < 2*float64(parallel) {
		t.Fatalf("expected >=2x speedup on %d CPUs: serial %v vs parallel %v",
			runtime.NumCPU(), serial, parallel)
	}
}

// BenchmarkSpinJobSerial / BenchmarkSpinJobParallel compare the executors
// on the same CPU-bound job; run with -cpu to vary worker counts.
func benchmarkSpinJob(b *testing.B, parallelism int) {
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.TaskStartup = 0.01
	cfg.Parallelism = parallelism
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 1 << 10
	e := New(cluster, fs)
	recs := make([]dfs.Record, 500)
	for i := range recs {
		recs[i] = dfs.Record{Key: fmt.Sprintf("k%04d", i), Value: fmt.Sprintf("word%d payload-%04d", i%7, i)}
	}
	in, err := fs.Create("bench", recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(spinMapJob(in, 2000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpinJobSerial(b *testing.B)   { benchmarkSpinJob(b, 1) }
func BenchmarkSpinJobParallel(b *testing.B) { benchmarkSpinJob(b, 0) }
