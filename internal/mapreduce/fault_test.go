package mapreduce

import (
	"sort"
	"strings"
	"testing"
)

// TestFaultInjectionMapRetries: a failed map attempt re-executes, costs
// extra virtual time, and the output is unchanged.
func TestFaultInjectionMapRetries(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 300)
	job := func(name string) *Job {
		return &Job{Name: name, Input: in, NumReduce: 4, Reduce: IdentityReduce}
	}

	clean, err := e.Run(job("clean"))
	if err != nil {
		t.Fatal(err)
	}

	// Fail the first attempt of every third map task.
	fj := job("faulty")
	fj.FaultInjector = func(kind TaskKind, task, attempt int) bool {
		return kind == MapTask && task%3 == 0 && attempt == 1
	}
	faulty, err := e.Run(fj)
	if err != nil {
		t.Fatal(err)
	}

	a, b := collect(clean), collect(faulty)
	if len(a) != len(b) {
		t.Fatalf("fault run changed output size: %d vs %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault run changed output at %d: %q vs %q", i, b[i], a[i])
		}
	}
	if faulty.Counters[CounterTaskRetries] == 0 {
		t.Fatal("retries not counted")
	}
	// Re-execution burns task time (the cluster absorbs it in slack, so
	// compare summed task durations rather than the makespan).
	sum := func(stats []TaskStats) float64 {
		total := 0.0
		for _, st := range stats {
			total += st.Duration
		}
		return total
	}
	if sum(faulty.MapStats) <= sum(clean.MapStats) {
		t.Fatalf("re-execution should burn task time: %g vs %g", sum(faulty.MapStats), sum(clean.MapStats))
	}
}

// TestFaultInjectionReduceRetries exercises the reduce-side retry path.
func TestFaultInjectionReduceRetries(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 200)
	res, err := e.Run(&Job{
		Name: "rfault", Input: in, NumReduce: 3, Reduce: IdentityReduce,
		FaultInjector: func(kind TaskKind, task, attempt int) bool {
			return kind == ReduceTask && attempt == 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 200 {
		t.Fatalf("records = %d", res.Output.Records())
	}
	var retries int64
	for _, st := range res.ReduceStats {
		retries += st.Counters[CounterTaskRetries]
	}
	if retries != 3 {
		t.Fatalf("reduce retries = %d, want one per reducer", retries)
	}
}

// TestFaultInjectionLastAttemptSucceeds: a task that fails its first
// maxAttempts-1 attempts still completes on the final allowed attempt,
// with every retry counted.
func TestFaultInjectionLastAttemptSucceeds(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 50)
	res, err := e.Run(&Job{
		Name: "flaky", Input: in, NumReduce: 2, Reduce: IdentityReduce,
		FaultInjector: func(_ TaskKind, _, attempt int) bool { return attempt < maxAttempts },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 50 {
		t.Fatalf("records = %d", res.Output.Records())
	}
	for _, st := range res.MapStats {
		if st.Counters[CounterTaskRetries] != maxAttempts-1 {
			t.Fatalf("map retries = %d, want %d", st.Counters[CounterTaskRetries], maxAttempts-1)
		}
	}
}

// TestFaultInjectionPermanentMapFailure: a task whose every attempt fails
// must fail the job after maxAttempts, like Hadoop once a task exhausts
// mapred.map.max.attempts — it must NOT silently succeed on the capped
// attempt.
func TestFaultInjectionPermanentMapFailure(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 50)
	_, err := e.Run(&Job{
		Name: "doomed", Input: in, NumReduce: 2, Reduce: IdentityReduce,
		FaultInjector: func(kind TaskKind, task, _ int) bool { return kind == MapTask && task == 0 },
	})
	if err == nil {
		t.Fatal("permanently failing map task must fail the job")
	}
	if !strings.Contains(err.Error(), "failed 4 attempts") {
		t.Fatalf("error should report exhausted attempts, got %v", err)
	}
}

// TestFaultInjectionPermanentReduceFailure covers the reduce-side job
// failure path.
func TestFaultInjectionPermanentReduceFailure(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 50)
	_, err := e.Run(&Job{
		Name: "rdoomed", Input: in, NumReduce: 3, Reduce: IdentityReduce,
		FaultInjector: func(kind TaskKind, task, _ int) bool { return kind == ReduceTask && task == 1 },
	})
	if err == nil {
		t.Fatal("permanently failing reduce task must fail the job")
	}
	if !strings.Contains(err.Error(), "reduce task 1 failed 4 attempts") {
		t.Fatalf("error should name the reduce task, got %v", err)
	}
}

func collect(r *Result) []string {
	var out []string
	for _, rec := range r.Output.All() {
		out = append(out, rec.Key+"\x00"+rec.Value)
	}
	sort.Strings(out)
	return out
}
