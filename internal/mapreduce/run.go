package mapreduce

import (
	"efind/internal/obs"
	"efind/internal/sim"
)

// JobRun is the per-job execution handle: it owns every piece of mutable
// state one job's execution needs — the virtual clock, the phase sequence
// counter chaos draws key off, the slot lease of the phase in flight, and
// the trace namespace — while the Engine it wraps stays stateless and
// shared. Two sequential (or, under the job service, interleaved) runs on
// one Engine therefore never leak clock or sequence state into each
// other; that leak was the old Engine-level clock's failure mode.
//
// A JobRun executes one phase at a time: the phase-level methods
// (RunMapPhase, RunReduceSubset, ...) are not safe for concurrent use on
// one run. Parallel task bodies never touch the run — they carry the
// phase base captured at schedule time.
type JobRun struct {
	*Engine

	// vclock is the job's virtual clock: the end of its last completed
	// phase, including any wait the arbiter imposed before granting a
	// phase's slots. Chaos windows (crashes, index outages) are absolute
	// times on this clock.
	vclock   float64
	phaseSeq int

	// arbiter, when set, is consulted before every phase: the job asks
	// for slots at its ready time and runs the phase on the granted lease
	// at the granted start. Nil (the one-shot path) schedules every phase
	// immediately on the full cluster.
	arbiter PhaseArbiter
	// lease is the slot lease of the phase currently executing; chaos
	// recovery waves reschedule lost tasks inside it.
	lease *sim.Lease
	// ns is the (tenant, job) namespace prefixed onto span, stage, and
	// counter names so interleaved jobs stay separable in one trace.
	ns string
	// svc marks a service-mode run: trace spans are emitted at absolute
	// virtual times (the run's own clock) instead of advancing the
	// trace's global sequential clock.
	svc bool
}

// PhaseGrant is the arbiter's answer to a phase request: run on Lease
// starting at Start (>= the requested ready time; the difference is queue
// wait under contention).
type PhaseGrant struct {
	Lease *sim.Lease
	Start float64
}

// PhaseArbiter arbitrates cluster slots among concurrently running jobs.
// BeginPhase blocks until the scheduler grants slots; EndPhase returns
// them at the phase's end time. The job service implements this with a
// weighted-fair slot ledger; the contract that keeps results reproducible
// is that grants depend only on virtual times, never on wall-clock
// interleaving.
type PhaseArbiter interface {
	BeginPhase(kind TaskKind, tasks int, ready float64) PhaseGrant
	EndPhase(kind TaskKind, lease *sim.Lease, start, end float64)
}

// NewRun returns a fresh per-job handle: clock at zero, full-cluster
// scheduling, no namespace. Engine.Run allocates one per call.
func (e *Engine) NewRun() *JobRun {
	return &JobRun{Engine: e}
}

// RunConfig configures a service-mode JobRun.
type RunConfig struct {
	// Start is the job's admission time on the service's virtual clock.
	Start float64
	// Arbiter grants slot leases per phase (required for fair sharing;
	// nil schedules on the full cluster with no waits).
	Arbiter PhaseArbiter
	// Namespace prefixes trace spans, stages, and counters, conventionally
	// "tenant/job#n".
	Namespace string
}

// NewServiceRun returns a job handle for service execution: the clock
// starts at the admission time, phases go through the arbiter, and trace
// output is namespaced and emitted at absolute virtual times.
func (e *Engine) NewServiceRun(cfg RunConfig) *JobRun {
	return &JobRun{Engine: e, vclock: cfg.Start, arbiter: cfg.Arbiter, ns: cfg.Namespace, svc: true}
}

// Now returns the run's virtual clock: admission time plus waits and
// makespans of the phases completed so far.
func (r *JobRun) Now() float64 { return r.vclock }

// beginPhase reads the clock and claims the next phase sequence number
// (the deterministic key for per-phase chaos draws).
func (r *JobRun) beginPhase() (base float64, seq int) {
	seq = r.phaseSeq
	r.phaseSeq++
	return r.vclock, seq
}

// advance moves the virtual clock past a completed phase.
func (r *JobRun) advance(d float64) { r.vclock += d }

// waitUntil jumps the clock forward to an arbiter-granted start time.
func (r *JobRun) waitUntil(t float64) {
	if t > r.vclock {
		r.vclock = t
	}
}

// grantPhase asks the arbiter (if any) for this phase's slots: it returns
// the possibly-delayed phase base and the lease to schedule on, and
// records the lease for chaos recovery. Without an arbiter the phase
// starts at ready on the full cluster.
func (r *JobRun) grantPhase(kind TaskKind, tasks int, ready float64) (base float64, lease *sim.Lease) {
	base, lease = ready, nil
	if r.arbiter != nil {
		g := r.arbiter.BeginPhase(kind, tasks, ready)
		base, lease = g.Start, g.Lease
		r.waitUntil(base)
	}
	r.lease = lease
	return base, lease
}

// endPhase returns the phase's slots to the arbiter.
func (r *JobRun) endPhase(kind TaskKind, lease *sim.Lease, start, end float64) {
	if r.arbiter != nil {
		r.arbiter.EndPhase(kind, lease, start, end)
	}
}

// qual prefixes a span/stage name with the run's namespace.
func (r *JobRun) qual(name string) string {
	if r.ns == "" {
		return name
	}
	return r.ns + "/" + name
}

// instant emits a trace instant, at the given absolute virtual time in
// service mode and at the trace's sequential clock otherwise.
func (r *JobRun) instant(name, cat string, at float64) {
	if r.Trace == nil {
		return
	}
	if r.svc {
		r.Trace.AddInstantAt(r.qual(name), cat, at)
		return
	}
	r.Trace.AddInstant(r.qual(name), cat)
}

// addCountersToTrace folds one task's counters into the trace registry,
// under the run's namespace when set.
func (r *JobRun) addCountersToTrace(t *obs.Trace, counters map[string]int64) {
	if r.ns != "" {
		t.Metrics.AddAllPrefix(r.ns+"/", counters)
		return
	}
	t.Metrics.AddAll(counters)
}
