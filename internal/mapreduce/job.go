package mapreduce

import (
	"fmt"

	"efind/internal/chaos"
	"efind/internal/dfs"
	"efind/internal/sim"
)

// Job describes one MapReduce job. The zero value of optional fields picks
// Hadoop-like defaults: identity map, hash partitioner, data-locality
// placement. A nil Reduce makes the job map-only (map output goes straight
// to the output file, one shard per map task, as Hadoop does with zero
// reducers).
type Job struct {
	// Name labels the job in outputs and temp file names.
	Name string
	// Input is the file to read. Each chunk becomes one input split.
	Input *dfs.File

	// MapStagesBefore are chained functions executed before Map (the
	// paper's head IndexOperators compile into these).
	MapStagesBefore []StageFactory
	// Map is the user map function; nil means identity.
	Map MapFunc
	// MapStagesAfter are chained functions executed after Map as part of
	// the map computation (body IndexOperators, Figure 6(b)).
	MapStagesAfter []StageFactory

	// Combine, when set on a job with a Reduce function, runs on each map
	// task's output per reducer bucket before the shuffle (Hadoop's
	// combiner): values of equal keys are pre-aggregated locally, cutting
	// shuffle bytes. It must be algebraically compatible with Reduce
	// (associative and commutative aggregation).
	Combine ReduceFunc

	// NumReduce is the reducer count; zero with a Reduce function set
	// picks DefaultNumReduce: every reduce slot on small clusters,
	// capped near the input's map-side parallelism on large ones.
	NumReduce int
	// Partition routes a map-output key to a reducer; nil = HashPartition.
	Partition func(key string, numReduce int) int
	// Reduce is the user reduce function; nil makes the job map-only.
	Reduce ReduceFunc
	// ReduceStagesAfter are chained functions executed after Reduce (tail
	// IndexOperators, Figure 6(c)).
	ReduceStagesAfter []StageFactory

	// OutputName names the output file; empty picks a fresh temp name.
	OutputName string
	// Splits restricts the map phase to the given split indices (nil =
	// all). The adaptive EFind runtime uses it to process first-wave
	// splits under one plan and the remainder under another.
	Splits []int
	// MapPlacement overrides the preferred nodes of the map task for a
	// split (the index-locality strategy schedules map tasks on index
	// partition hosts instead of input chunk replicas). Nil = data
	// locality (chunk replicas).
	MapPlacement func(split int, chunk *dfs.Chunk) []sim.NodeID
	// AttemptGuard, when set, is called before each task attempt that can
	// still be retried, with the node the attempt runs on; the returned
	// rollback is invoked iff that attempt fails, rewinding node-shared
	// stage state (per-machine lookup caches) the failed attempt polluted.
	// The engine only consults it while this job injects faults or chaos,
	// so fault-free runs pay nothing. The EFind runtime wires this to
	// cache snapshot/restore so retries do not skew the measured miss
	// ratio R. Speculative execution uses the same hook to roll back a
	// backup attempt's cache pollution.
	AttemptGuard func(node sim.NodeID) (rollback func())

	// FaultInjector, when set, is consulted after each task attempt of
	// THIS job: returning true fails that attempt after it has consumed
	// its full duration, and the task is re-executed (MapReduce's
	// re-execution fault tolerance). Attempts are 1-based; an attempt
	// that is not failed succeeds. A task whose first maxAttempts
	// attempts all fail fails the whole job, as Hadoop does once a task
	// exhausts mapred.map.max.attempts. The injector must be safe for
	// concurrent calls: the parallel executor consults it from several
	// goroutines. Being per-job (not per-engine) means concurrent jobs on
	// one engine cannot race on or leak each other's injectors.
	FaultInjector func(kind TaskKind, task, attempt int) bool

	// Chaos, when set, subjects this job to the failure-domain schedule:
	// seeded node crash/recovery windows, injected stragglers with
	// speculative backup attempts, and virtual-time straggler slowdowns.
	// (Index partition outages from the same plan are enforced by the
	// ixclient availability middleware, not the engine.) All chaos is
	// deterministic in the plan's seed.
	Chaos *chaos.Plan

	// OnNodeCrash, when set, is invoked once per applied crash event with
	// the crashed node, after the node's task attempts have been
	// discarded and before their re-execution is scheduled. The EFind
	// runtime wires it to drop the node's per-machine lookup caches: a
	// rebooted TaskTracker restarts cold.
	OnNodeCrash func(node sim.NodeID)
}

// failAttempt consults the job's fault injector. The retry loops bound
// attempts at maxAttempts and fail the job when every attempt failed.
func (j *Job) failAttempt(kind TaskKind, task, attempt int) bool {
	return j.FaultInjector != nil && j.FaultInjector(kind, task, attempt)
}

// chaosSlow returns the chaos-injected duration multiplier for a task.
func (j *Job) chaosSlow(phaseSeq, task int) float64 {
	if j.Chaos == nil {
		return 1
	}
	return j.Chaos.SlowFactor(phaseSeq, task)
}

// downAt returns the node-availability predicate for a phase starting at
// the given virtual time, or nil when the job has no chaos schedule (the
// scheduler then admits every node with zero overhead).
func (j *Job) downAt(t float64) func(sim.NodeID) bool {
	if j.Chaos == nil {
		return nil
	}
	return func(n sim.NodeID) bool { return j.Chaos.NodeDown(n, t) }
}

// validate fills defaults and rejects unusable configurations.
func (j *Job) validate(e *Engine) error {
	if j.Input == nil {
		return fmt.Errorf("mapreduce: job %q has no input", j.Name)
	}
	if j.Name == "" {
		j.Name = "job"
	}
	if j.Partition == nil {
		j.Partition = HashPartition
	}
	if j.Reduce != nil && j.NumReduce <= 0 {
		j.NumReduce = DefaultNumReduce(e.Cluster, len(j.Input.Chunks))
	}
	return nil
}

// minDefaultReduce is the reducer count below which DefaultNumReduce
// never caps: clusters this small always use every reduce slot, which
// keeps the default bit-identical to the historical all-slots rule for
// every cluster up to 128 nodes × 2 slots.
const minDefaultReduce = 256

// DefaultNumReduce sizes a job's reducer count when the user leaves it
// unset. Small clusters use every reduce slot (Hadoop's classic ~1×
// slots rule of thumb); large clusters cap the default near the
// input's map-side parallelism, because reducers far in excess of map
// tasks are pure overhead — every map task allocates one shuffle
// bucket per reducer and every reducer becomes a scheduled task, so an
// uncapped default on a 10k-node cluster sprays a 240-chunk input over
// 20k mostly-empty reduce tasks. A job that wants wider reduce
// parallelism sets NumReduce explicitly.
func DefaultNumReduce(c *sim.Cluster, mapTasks int) int {
	slots := c.ReduceSlots()
	limit := mapTasks
	if limit < minDefaultReduce {
		limit = minDefaultReduce
	}
	if slots > limit {
		return limit
	}
	return slots
}

// identityMap is used when Job.Map is nil.
func identityMap(_ *TaskContext, in Pair, emit Emit) { emit(in) }

// IdentityReduce emits every value of the group unchanged under the group
// key. It is the reduce function of the paper's "shuffling jobs", whose
// only purpose is the group-by between Map and Reduce.
func IdentityReduce(_ *TaskContext, key string, values []string, emit Emit) {
	for _, v := range values {
		emit(Pair{Key: key, Value: v})
	}
}
