package mapreduce

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"efind/internal/chaos"
	"efind/internal/sim"
)

// TestMedianDurationEmptyPhase: the straggler yardstick must not panic
// when a crash has discarded every assignment before the speculation
// scan (regression: medianDuration indexed durs[len/2] unconditionally).
func TestMedianDurationEmptyPhase(t *testing.T) {
	if got := medianDuration(nil); got != 0 {
		t.Fatalf("medianDuration(nil) = %g, want 0", got)
	}
	if got := medianDuration([]sim.Assignment{}); got != 0 {
		t.Fatalf("medianDuration(empty) = %g, want 0", got)
	}
}

// TestMedianDurationMatchesSortedIndex pins the quickselect yardstick to
// the sort-based definition it replaced: sorted durations indexed at
// len/2, for odd and even sizes and heavy duplicates.
func TestMedianDurationMatchesSortedIndex(t *testing.T) {
	patterns := map[string]func(i, n int) float64{
		"ascending":  func(i, n int) float64 { return float64(i) },
		"descending": func(i, n int) float64 { return float64(n - i) },
		"sawtooth":   func(i, n int) float64 { return float64(i % 7) },
		"constant":   func(i, n int) float64 { return 3.5 },
		"two-level":  func(i, n int) float64 { return float64(1 + i&1) },
		"lcg": func(i, n int) float64 {
			x := uint32(i)*1664525 + 1013904223
			return float64(x%1000) / 10
		},
	}
	for name, gen := range patterns {
		for _, n := range []int{1, 2, 3, 4, 5, 11, 12, 13, 64, 100, 257} {
			assigns := make([]sim.Assignment, n)
			durs := make([]float64, n)
			for i := range assigns {
				d := gen(i, n)
				assigns[i].Duration = d
				durs[i] = d
			}
			sort.Float64s(durs)
			want := durs[n/2]
			if got := medianDuration(assigns); got != want {
				t.Fatalf("%s n=%d: medianDuration = %g, want sorted[n/2] = %g", name, n, got, want)
			}
		}
	}
}

// TestQuickselectAllRanks checks every rank, not just the median, so the
// partition logic has no untested branch.
func TestQuickselectAllRanks(t *testing.T) {
	for _, n := range []int{1, 2, 7, 12, 13, 40, 97} {
		base := make([]float64, n)
		for i := range base {
			x := uint32(i)*22695477 + 1
			base[i] = float64(x % 50)
		}
		sorted := append([]float64(nil), base...)
		sort.Float64s(sorted)
		for k := 0; k < n; k++ {
			work := append([]float64(nil), base...)
			if got := quickselect(work, k); got != sorted[k] {
				t.Fatalf("n=%d k=%d: quickselect = %g, want %g", n, k, got, sorted[k])
			}
		}
	}
}

// refreshPhaseNaive is the pre-scale reference implementation: full
// aggregate recompute plus a full re-sort, with recovery waves added.
func refreshPhaseNaive(p *sim.PhaseResult, waves int) {
	p.Waves += waves
	p.Makespan = 0
	p.LocalTasks = 0
	for _, a := range p.Assignments {
		if end := a.Start + a.Duration; end > p.Makespan {
			p.Makespan = end
		}
		if a.Local {
			p.LocalTasks++
		}
	}
	sort.Slice(p.Assignments, func(i, j int) bool {
		if p.Assignments[i].Start != p.Assignments[j].Start {
			return p.Assignments[i].Start < p.Assignments[j].Start
		}
		return p.Assignments[i].Task < p.Assignments[j].Task
	})
}

// buildSortedPhase builds a deterministic phase already in (start, task)
// order, as the scheduler emits it.
func buildSortedPhase(n int) sim.PhaseResult {
	p := sim.PhaseResult{Waves: 3}
	for i := 0; i < n; i++ {
		x := uint32(i)*1103515245 + 12345
		a := sim.Assignment{
			Task:     i,
			Node:     sim.NodeID(x % 16),
			Slot:     int32(x % 4),
			Start:    float64(x % 97),
			Duration: 1 + float64(x%13),
			Local:    x%3 == 0,
		}
		p.Assignments = append(p.Assignments, a)
	}
	sort.Slice(p.Assignments, func(i, j int) bool {
		if p.Assignments[i].Start != p.Assignments[j].Start {
			return p.Assignments[i].Start < p.Assignments[j].Start
		}
		return p.Assignments[i].Task < p.Assignments[j].Task
	})
	for _, a := range p.Assignments {
		if end := a.Start + a.Duration; end > p.Makespan {
			p.Makespan = end
		}
		if a.Local {
			p.LocalTasks++
		}
	}
	return p
}

// TestRefreshPhaseMatchesNaive rewrites scattered subsets of a phase the
// way chaos splicing does, then demands the incremental merge-based
// refreshPhase agree exactly with the reference full recompute — for no
// rewrites, sparse rewrites, and everything-rewritten.
func TestRefreshPhaseMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 17, 100} {
		for _, stride := range []int{0, 1, 3, 7} { // 0 = rewrite nothing
			got := buildSortedPhase(n)
			want := buildSortedPhase(n)
			patch := newPhasePatch(n)
			waves := 0
			if stride > 0 {
				waves = 2
				for i := 0; i < n; i += stride {
					// Rewrite like a recovery splice: new placement, late start.
					x := uint32(i)*2654435761 + 7
					got.Assignments[i] = sim.Assignment{
						Task:     got.Assignments[i].Task,
						Node:     sim.NodeID(x % 16),
						Slot:     int32(x % 4),
						Start:    50 + float64(x%60),
						Duration: 1 + float64(x%5),
						Local:    x%2 == 0,
					}
					want.Assignments[i] = got.Assignments[i]
					patch.mark(i)
				}
			}
			patch.waves = waves
			refreshPhase(&got, patch)
			refreshPhaseNaive(&want, waves)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d stride=%d: incremental refreshPhase diverged from naive:\n got  %+v\n want %+v", n, stride, got, want)
			}
		}
	}
}

// TestRefreshPhaseUntouchedIsNoop: a chaos pass that rewrote nothing must
// leave the phase bit-identical (no spurious re-sort, no aggregate
// drift), only folding in any recovery wave count.
func TestRefreshPhaseUntouchedIsNoop(t *testing.T) {
	p := buildSortedPhase(50)
	want := buildSortedPhase(50)
	refreshPhase(&p, newPhasePatch(50))
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("refreshPhase with empty patch mutated the phase:\n got  %+v\n want %+v", p, want)
	}
}

// TestCrashRecoveryRefreshesPhaseAggregates pins satellite fix 2 end to
// end: after a crash splices a recovery wave into the map phase, Waves
// must include the recovery wave's scheduling waves and LocalTasks and
// Makespan must describe the post-splice schedule — not the pre-crash
// one (regression: refreshPhase recomputed only Makespan, and nothing
// added recovery waves).
func TestCrashRecoveryRefreshesPhaseAggregates(t *testing.T) {
	fs, e := chaosEnv(t, 1)
	in := makeInput(t, fs, "in", 900)
	clean, err := e.Run(wordCountJob(in, "wc-clean", false))
	if err != nil {
		t.Fatal(err)
	}

	victim := clean.MapPhase.Assignments[0].Node
	at := 0.5 * clean.MapPhase.Makespan
	fs2, e2 := chaosEnv(t, 1)
	in2 := makeInput(t, fs2, "in", 900)
	job := wordCountJob(in2, "wc-crash", false)
	job.Chaos = chaos.MustNew(chaos.Config{
		Seed:    1,
		Crashes: []chaos.Crash{{Node: victim, At: at, Recover: at + 1000}},
	}, 4)
	crashed, err := e2.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Counters[chaos.CtrTasksLost] == 0 {
		t.Fatal("crash discarded no tasks; aggregates check is vacuous")
	}

	if crashed.MapPhase.Waves <= clean.MapPhase.Waves {
		t.Fatalf("recovery wave not reflected in Waves: crashed %d, clean %d", crashed.MapPhase.Waves, clean.MapPhase.Waves)
	}
	locals, makespan := 0, 0.0
	for _, a := range crashed.MapPhase.Assignments {
		if a.Local {
			locals++
		}
		if end := a.Start + a.Duration; end > makespan {
			makespan = end
		}
	}
	if crashed.MapPhase.LocalTasks != locals {
		t.Fatalf("LocalTasks stale after splice: field %d, recount %d", crashed.MapPhase.LocalTasks, locals)
	}
	if math.Abs(crashed.MapPhase.Makespan-makespan) > 1e-12 {
		t.Fatalf("Makespan stale after splice: field %g, recount %g", crashed.MapPhase.Makespan, makespan)
	}
}
