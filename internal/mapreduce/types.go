// Package mapreduce is a miniature MapReduce runtime in the image of
// Hadoop 1.x, providing exactly the extension points the EFind paper
// builds on: chained functions around Map and Reduce, counters that are
// globally visible after each task, wave-based task scheduling with data
// locality, and custom partitioners. Jobs execute for real (records flow
// through user functions), while task durations are virtual times from the
// sim cost model so the paper's experiments are deterministic and fast.
package mapreduce

import (
	"efind/internal/obs"
	"efind/internal/sim"
	"efind/internal/sketch"
)

// Pair is the key/value record flowing through a job, following the
// MapReduce convention of (k1, v1) inputs and (k2, v2) outputs.
type Pair struct {
	Key   string
	Value string
}

// Size returns the payload size in bytes of the pair, including framing,
// matching dfs.Record sizing so cost terms line up across layers.
func (p Pair) Size() int { return len(p.Key) + len(p.Value) + 8 }

// Emit passes one record downstream.
type Emit func(Pair)

// MapFunc is a user Map function.
type MapFunc func(ctx *TaskContext, in Pair, emit Emit)

// ReduceFunc is a user Reduce function, called once per key group with the
// values in map-output order.
type ReduceFunc func(ctx *TaskContext, key string, values []string, emit Emit)

// Stage is one chained function in a task pipeline (the paper implements
// preProcess, lookup and postProcess as chained functions, Figure 6).
// Open runs once before the task's records, Close once after; Close may
// emit trailing records.
type Stage interface {
	Open(ctx *TaskContext)
	Process(ctx *TaskContext, in Pair, emit Emit)
	Close(ctx *TaskContext, emit Emit)
}

// StageFactory builds the Stage instance for a task running on the given
// node. Factories that want node-level shared state (e.g. a per-machine
// lookup cache) can key it by node; the executor serializes the tasks of
// each node, so per-node state sees one task at a time, but the factory
// itself — and any structure shared across nodes — must be safe for
// concurrent use because tasks of different nodes run on real goroutines
// (sim.Config.Parallelism).
type StageFactory func(node sim.NodeID) Stage

// FuncStage adapts plain functions into a Stage. Nil fields are no-ops.
type FuncStage struct {
	OnOpen    func(ctx *TaskContext)
	OnProcess func(ctx *TaskContext, in Pair, emit Emit)
	OnClose   func(ctx *TaskContext, emit Emit)
}

// Open implements Stage.
func (s *FuncStage) Open(ctx *TaskContext) {
	if s.OnOpen != nil {
		s.OnOpen(ctx)
	}
}

// Process implements Stage.
func (s *FuncStage) Process(ctx *TaskContext, in Pair, emit Emit) {
	if s.OnProcess != nil {
		s.OnProcess(ctx, in, emit)
	} else {
		emit(in)
	}
}

// Close implements Stage.
func (s *FuncStage) Close(ctx *TaskContext, emit Emit) {
	if s.OnClose != nil {
		s.OnClose(ctx, emit)
	}
}

// TaskKind distinguishes map from reduce tasks in statistics.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskContext is handed to every user function and stage. It identifies
// the executing task and node and accumulates the task's counters,
// sketches, and virtual-time charges.
type TaskContext struct {
	// Node is the machine this task was scheduled on.
	Node sim.NodeID
	// TaskID is the task's index within its phase.
	TaskID int
	// Split is the input split a map task reads. It differs from TaskID
	// when a phase runs a subset of splits (Job.Splits, adaptive
	// plan-change phases): TaskID is then the position within the subset
	// while Split stays the global split number. Stages that key state by
	// input split — the piggyback index builder — must use Split. For
	// reduce tasks it equals TaskID (the reducer index).
	Split int
	// Kind is MapTask or ReduceTask.
	Kind TaskKind

	cluster  *sim.Cluster
	counters map[string]int64
	sketches map[string]*sketch.FM
	base     float64
	extra    float64
	traced   bool
	spans    []obs.Span
}

// NewTaskContext builds a context; exported for tests of stages outside
// the engine.
func NewTaskContext(cluster *sim.Cluster, node sim.NodeID, id int, kind TaskKind) *TaskContext {
	return &TaskContext{
		Node:     node,
		TaskID:   id,
		Split:    id,
		Kind:     kind,
		cluster:  cluster,
		counters: make(map[string]int64),
		sketches: make(map[string]*sketch.FM),
	}
}

// Cluster returns the simulated cluster the task runs in.
func (c *TaskContext) Cluster() *sim.Cluster { return c.cluster }

// Inc adds delta to the named counter (the paper's globally visible
// MapReduce counters, §4.2).
func (c *TaskContext) Inc(name string, delta int64) { c.counters[name] += delta }

// Counter returns the current task-local value of the named counter.
func (c *TaskContext) Counter(name string) int64 { return c.counters[name] }

// Sketch returns the task's named FM sketch, creating it on first use with
// the given width.
func (c *TaskContext) Sketch(name string, width int) *sketch.FM {
	s, ok := c.sketches[name]
	if !ok {
		s = sketch.New(width)
		c.sketches[name] = s
	}
	return s
}

// Charge adds virtual seconds to the task's duration (index serve time,
// cache probes, anything beyond the engine's own I/O and CPU charges).
func (c *TaskContext) Charge(seconds float64) { c.extra += seconds }

// ChargeNet adds the virtual time of a network transfer of the given size.
func (c *TaskContext) ChargeNet(bytes float64) { c.extra += c.cluster.NetTime(bytes) }

// taskAbort carries an Abort error through the stage pipeline to the
// engine's task runner, which converts it into a job failure.
type taskAbort struct{ err error }

// Abort terminates the running task immediately with err. Unlike an
// injected fault, an abort is a permanent logical failure (e.g. an index
// error under ErrorFailJob): the engine does not re-execute the task, it
// fails the whole job with the error. Must only be called from within a
// running task (a stage, map, or reduce function).
func (c *TaskContext) Abort(err error) { panic(taskAbort{err}) }

// Extra returns the accumulated Charge/ChargeNet time.
func (c *TaskContext) Extra() float64 { return c.extra }

// Now returns the task's current position on the job's virtual clock:
// the task's absolute start time (engine clock at phase begin plus the
// scheduler's start offset) plus the virtual time the task has charged so
// far. Stages use it to evaluate time-windowed conditions — most notably
// whether an index partition outage is in effect — and each Charge of
// backoff time advances it, so an outage can end mid-retry.
func (c *TaskContext) Now() float64 { return c.base + c.extra }

// SetBase anchors the context clock at an absolute virtual start time.
// The engine sets it from the scheduler's placement; exported for tests
// that drive stages outside the engine.
func (c *TaskContext) SetBase(t float64) { c.base = t }

// EnableSpans turns on span recording for this task. The engine enables
// it when a trace is attached; with it off, StartSpan is a no-op that
// performs no allocation, so tracing has zero cost on the hot path.
func (c *TaskContext) EnableSpans() { c.traced = true }

// Traced reports whether span recording is on.
func (c *TaskContext) Traced() bool { return c.traced }

// StartSpan opens a sub-phase span on the task's own virtual clock (the
// accumulated Charge time). Call End on the returned region when the
// sub-phase's charges are complete. Span times are relative to the task
// body; the engine rebases them to absolute phase time once the task's
// placement is known.
func (c *TaskContext) StartSpan(name, cat string) SpanRegion {
	if !c.traced {
		return SpanRegion{}
	}
	return SpanRegion{ctx: c, name: name, cat: cat, start: c.extra}
}

// SpanRegion is an open sub-phase span. The zero value (tracing off) is
// valid and End on it does nothing.
type SpanRegion struct {
	ctx       *TaskContext
	name, cat string
	start     float64
}

// End closes the region, recording [start, now) of the task's virtual
// clock. Zero-length spans are dropped: a sub-phase that charged nothing
// occupies no virtual time and would only clutter the trace.
func (r SpanRegion) End() {
	if r.ctx == nil {
		return
	}
	d := r.ctx.extra - r.start
	if d <= 0 {
		return
	}
	r.ctx.spans = append(r.ctx.spans, obs.Span{
		Name: r.name, Cat: r.cat, Node: int(r.ctx.Node), Start: r.start, Dur: d,
	})
}

// TaskStats is the per-task statistics record the adaptive optimizer
// consumes: one sample per completed task (§4.2 treats each task's
// statistics as a random sample for the variance test).
type TaskStats struct {
	ID       int
	Kind     TaskKind
	Node     sim.NodeID
	Counters map[string]int64
	Sketches map[string][]uint64
	Duration float64
	// BodyTime is the virtual time of the final successful attempt's body
	// (Duration additionally includes failed attempts). The trace
	// exporter uses it to rebase the attempt's relative sub-phase spans.
	BodyTime float64
	// Spans are the task body's sub-phase spans, relative to the body's
	// own virtual clock; nil when tracing is off.
	Spans []obs.Span
}

// FNV-1a parameters, per hash/fnv.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// HashPartition is the default partitioner (FNV-1a modulo reducers),
// mirroring Hadoop's HashPartitioner. The FNV-1a loop is inlined over
// the string: hash/fnv would cost a hasher allocation plus a []byte(key)
// copy per record, and the partitioner runs once per map-output record.
// Values are identical to fnv.New32a over the same bytes (pinned by a
// golden test).
func HashPartition(key string, numReduce int) int {
	if numReduce <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(numReduce))
}

// Built-in counter names maintained by the engine itself.
const (
	CounterInputRecords      = "task.input.records"
	CounterInputBytes        = "task.input.bytes"
	CounterOutputRecords     = "task.output.records"
	CounterOutputBytes       = "task.output.bytes"
	CounterCombineInRecords  = "task.combine.in.records"
	CounterCombineOutRecords = "task.combine.out.records"
)
