package mapreduce

import (
	"fmt"
	"sort"

	"efind/internal/chaos"
	"efind/internal/sim"
)

// This file applies a job's chaos schedule to a completed phase. Both
// fault kinds are resolved AFTER the scheduler returns, at a serial
// point, so the rewriting below is deterministic under the parallel
// executor too:
//
//   - Speculative execution replays Hadoop's backup-task policy against
//     the known schedule: any task that ran past Threshold× the phase's
//     median duration gets a backup attempt on the least-loaded
//     surviving node, launched the moment the task became officially
//     late. The first finisher wins the assignment; the loser's side
//     effects are rolled back (backup cache pollution via AttemptGuard)
//     or never committed (task-local counters are dropped with the
//     losing attempt). Cost accounting keeps the ORIGINAL attempt's
//     counters either way — chaos only slowed that attempt down, so its
//     counters are exactly the fault-free run's, which is what keeps
//     accounting bit-identical.
//
//   - Node crashes discard every assignment the crashed node held —
//     in-flight and completed-but-unfetched map outputs alike, as a
//     dead TaskTracker does — and re-run them on the surviving nodes
//     via a recovery wave scheduled at the crash instant. Recovery
//     attempts are not themselves crashed or speculated (single pass);
//     a crash during the reduce phase only re-runs reduce tasks,
//     because the model treats map outputs as fetched when the reduce
//     phase starts (an "eager shuffle" — see DESIGN.md for the
//     deviation from Hadoop's pull shuffle).
//
// At cluster scale the rewriting itself must stay cheap: the straggler
// yardstick is a quickselect median (O(n), not a full sort), backup
// placement reuses incrementally maintained per-node drain times instead
// of rescanning the phase per straggler, and refreshPhase repairs the
// (start, task) ordering by merging only the rewritten assignments back
// into the still-sorted remainder — O(n + k log k) for k rewrites, and
// a no-op when the schedule came through chaos untouched.

// phasePatch tracks which assignment positions chaos rewrote, plus the
// scheduling waves recovery added, so refreshPhase can repair aggregates
// and ordering incrementally.
type phasePatch struct {
	dirty []bool
	n     int
	waves int
}

func newPhasePatch(assignments int) *phasePatch {
	return &phasePatch{dirty: make([]bool, assignments)}
}

func (p *phasePatch) mark(i int) {
	if !p.dirty[i] {
		p.dirty[i] = true
		p.n++
	}
}

// applyMapChaos rewrites a finished map phase per the job's chaos plan.
func (e *JobRun) applyMapChaos(job *Job, base float64, res *MapPhaseResult, splits []int, taskErrs []error) {
	if job.Chaos == nil || firstError(taskErrs) != nil {
		return
	}
	patch := newPhasePatch(len(res.Phase.Assignments))
	e.speculateMap(job, base, res, splits, patch)
	e.crashMap(job, base, res, splits, taskErrs, patch)
	refreshPhase(&res.Phase, patch)
}

// applyReduceChaos is applyMapChaos's reduce-side twin.
func (e *JobRun) applyReduceChaos(job *Job, base float64, sub *ReduceSubsetResult, outputs []*MapOutput, taskErrs []error) {
	if job.Chaos == nil || firstError(taskErrs) != nil {
		return
	}
	patch := newPhasePatch(len(sub.Phase.Assignments))
	e.speculateReduce(job, base, sub, outputs, patch)
	e.crashReduce(job, base, sub, outputs, taskErrs, patch)
	refreshPhase(&sub.Phase, patch)
}

// medianDuration returns the median assignment duration of a phase — the
// progress yardstick speculation measures stragglers against — or 0 for
// an empty phase (reachable when a crash discarded every assignment
// before the speculation scan; callers treat a non-positive median as
// "nothing to speculate against").
func medianDuration(assigns []sim.Assignment) float64 {
	if len(assigns) == 0 {
		return 0
	}
	durs := make([]float64, len(assigns))
	for i, a := range assigns {
		durs[i] = a.Duration
	}
	return quickselect(durs, len(durs)/2)
}

// quickselect returns the k-th smallest element (0-based) of durs in
// expected O(n), mutating durs. The pivot is a deterministic
// median-of-three, so equal inputs always take equal paths — no seeded
// randomness that could diverge between runs.
func quickselect(durs []float64, k int) float64 {
	lo, hi := 0, len(durs)-1
	for lo < hi {
		// Insertion sort finishes small ranges faster than partitioning.
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && durs[j] < durs[j-1]; j-- {
					durs[j], durs[j-1] = durs[j-1], durs[j]
				}
			}
			return durs[k]
		}
		mid := lo + (hi-lo)/2
		// Median-of-three into durs[mid], the pivot.
		if durs[mid] < durs[lo] {
			durs[mid], durs[lo] = durs[lo], durs[mid]
		}
		if durs[hi] < durs[mid] {
			durs[hi], durs[mid] = durs[mid], durs[hi]
			if durs[mid] < durs[lo] {
				durs[mid], durs[lo] = durs[lo], durs[mid]
			}
		}
		pivot := durs[mid]
		i, j := lo, hi
		for i <= j {
			for durs[i] < pivot {
				i++
			}
			for durs[j] > pivot {
				j--
			}
			if i <= j {
				durs[i], durs[j] = durs[j], durs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return durs[k]
		}
	}
	return durs[k]
}

// backupPlanner picks the surviving nodes speculation launches backups
// on. It maintains each node's drain time (the end of its busiest lane)
// incrementally: built once in O(assignments), updated per committed
// backup, so a phase with many stragglers no longer rescans the whole
// assignment list per candidate.
type backupPlanner struct {
	nodes int
	free  []float64
}

func newBackupPlanner(nodes int, assigns []sim.Assignment) *backupPlanner {
	bp := &backupPlanner{nodes: nodes, free: make([]float64, nodes)}
	for _, a := range assigns {
		if end := a.Start + a.Duration; end > bp.free[a.Node] {
			bp.free[a.Node] = end
		}
	}
	return bp
}

// pick returns the node (other than the straggler's own, and not down at
// absAt) whose busiest lane drains first, ties broken by node ID, or -1
// when no node qualifies. The returned free time is phase-relative, like
// assignment starts.
func (bp *backupPlanner) pick(exclude sim.NodeID, job *Job, absAt float64) (sim.NodeID, float64) {
	best := sim.NodeID(-1)
	bestFree := 0.0
	for n := 0; n < bp.nodes; n++ {
		id := sim.NodeID(n)
		if id == exclude || job.Chaos.NodeDown(id, absAt) {
			continue
		}
		if best < 0 || bp.free[n] < bestFree {
			best, bestFree = id, bp.free[n]
		}
	}
	return best, bestFree
}

// commit folds a won backup into the drain times: the backup's end
// extends its node, and the straggler's old node is recomputed because
// the discarded attempt may have been its busiest lane. assigns already
// reflects the rewritten placement.
func (bp *backupPlanner) commit(oldNode sim.NodeID, assigns []sim.Assignment, node sim.NodeID, end float64) {
	if end > bp.free[node] {
		bp.free[node] = end
	}
	drain := 0.0
	for _, a := range assigns {
		if a.Node != oldNode {
			continue
		}
		if e := a.Start + a.Duration; e > drain {
			drain = e
		}
	}
	bp.free[oldNode] = drain
}

// commitBackup resolves one speculation race. The winner keeps the
// assignment's placement and timing; the loser's attempt is discarded.
// Accounting counters and sketches always stay with the original attempt
// (see the file comment), and the race outcome is recorded on the task's
// own counters so it flows through job results, trace metrics, and
// profiles like any other counter.
func commitBackup(a *sim.Assignment, st *TaskStats, backupNode sim.NodeID, backupStart, backupDur float64, backupStats TaskStats, local bool) bool {
	st.Counters[chaos.CtrSpecLaunched]++
	if backupStart+backupDur >= a.Start+a.Duration {
		st.Counters[chaos.CtrSpecLost]++
		return false
	}
	st.Counters[chaos.CtrSpecWon]++
	backupStats.Counters = st.Counters
	backupStats.Sketches = st.Sketches
	*st = backupStats
	a.Node = backupNode
	a.Slot = 0
	a.Start = backupStart
	a.Duration = backupDur
	a.Local = local
	return true
}

// specInstant emits the race outcome as a trace instant, anchored at the
// backup's absolute launch time for service runs.
func (e *JobRun) specInstant(name string, task int, won bool, at float64) {
	verdict := "lost"
	if won {
		verdict = "won"
	}
	e.instant(fmt.Sprintf("speculate:%s[%d] %s", name, task, verdict), "chaos", at)
}

// speculateMap launches backup attempts for map stragglers.
func (e *JobRun) speculateMap(job *Job, base float64, res *MapPhaseResult, splits []int, patch *phasePatch) {
	spec := job.Chaos.Spec()
	if !spec.Enabled || len(res.Phase.Assignments) < 2 {
		return
	}
	med := medianDuration(res.Phase.Assignments)
	if med <= 0 {
		return
	}
	launched := 0
	cfg := e.Cluster.Config()
	bp := newBackupPlanner(e.Cluster.Nodes(), res.Phase.Assignments)
	for ai := range res.Phase.Assignments {
		a := &res.Phase.Assignments[ai]
		if a.Duration <= spec.Threshold*med {
			continue
		}
		if spec.MaxPerPhase > 0 && launched >= spec.MaxPerPhase {
			break
		}
		launched++
		i := a.Task
		s := splits[i]
		chunk := job.Input.Chunks[s]
		detect := a.Start + spec.Threshold*med
		node, freeAt := bp.pick(a.Node, job, base+detect)
		if node < 0 {
			continue
		}
		start := detect
		if freeAt > start {
			start = freeAt
		}
		var rollback func()
		if job.AttemptGuard != nil {
			rollback = job.AttemptGuard(node)
		}
		out, st, err := e.mapAttempt(job, i, s, chunk, node, base+start)
		if rollback != nil {
			rollback() // a backup's cache pollution never commits, win or lose
		}
		if err != nil {
			// The backup aborted (e.g. it straddled an outage window the
			// original missed). Hadoop kills failed backups without
			// failing the task; the original attempt stands.
			res.Stats[i].Counters[chaos.CtrSpecLaunched]++
			res.Stats[i].Counters[chaos.CtrSpecLost]++
			e.specInstant(job.Name+"/map", i, false, base+start)
			continue
		}
		dur := (cfg.TaskStartup + st.Duration) / cfg.SpeedOf(node)
		preferred := chunk.Replicas
		if job.MapPlacement != nil {
			preferred = job.MapPlacement(s, chunk)
		}
		oldNode := a.Node
		won := commitBackup(a, &res.Stats[i], node, start, dur, st, sim.ContainsNode(preferred, node))
		if won {
			res.Outputs[i] = out // identical records; Node now names the winner
			bp.commit(oldNode, res.Phase.Assignments, node, start+dur)
			patch.mark(ai)
		}
		e.specInstant(job.Name+"/map", i, won, base+start)
	}
}

// speculateReduce launches backup attempts for reduce stragglers.
func (e *JobRun) speculateReduce(job *Job, base float64, sub *ReduceSubsetResult, outputs []*MapOutput, patch *phasePatch) {
	spec := job.Chaos.Spec()
	if !spec.Enabled || len(sub.Phase.Assignments) < 2 {
		return
	}
	med := medianDuration(sub.Phase.Assignments)
	if med <= 0 {
		return
	}
	launched := 0
	cfg := e.Cluster.Config()
	bp := newBackupPlanner(e.Cluster.Nodes(), sub.Phase.Assignments)
	for ai := range sub.Phase.Assignments {
		a := &sub.Phase.Assignments[ai]
		if a.Duration <= spec.Threshold*med {
			continue
		}
		if spec.MaxPerPhase > 0 && launched >= spec.MaxPerPhase {
			break
		}
		launched++
		i := a.Task
		r := sub.Reducers[i]
		detect := a.Start + spec.Threshold*med
		node, freeAt := bp.pick(a.Node, job, base+detect)
		if node < 0 {
			continue
		}
		start := detect
		if freeAt > start {
			start = freeAt
		}
		var rollback func()
		if job.AttemptGuard != nil {
			rollback = job.AttemptGuard(node)
		}
		shard, st, err := e.reduceAttempt(job, r, node, outputs, base+start)
		if rollback != nil {
			rollback()
		}
		if err != nil {
			sub.Stats[i].Counters[chaos.CtrSpecLaunched]++
			sub.Stats[i].Counters[chaos.CtrSpecLost]++
			e.specInstant(job.Name+"/reduce", r, false, base+start)
			continue
		}
		dur := (cfg.TaskStartup + st.Duration) / cfg.SpeedOf(node)
		oldNode := a.Node
		won := commitBackup(a, &sub.Stats[i], node, start, dur, st, false)
		if won {
			sub.Shards[i] = shard
			sub.Homes[i] = node
			bp.commit(oldNode, sub.Phase.Assignments, node, start+dur)
			patch.mark(ai)
		}
		e.specInstant(job.Name+"/reduce", r, won, base+start)
	}
}

// crashMap absorbs the crash events falling inside the map phase's
// window: for each crash, every assignment the dead node holds is
// discarded and re-executed as a recovery wave on the surviving nodes,
// starting at the crash instant.
func (e *JobRun) crashMap(job *Job, base float64, res *MapPhaseResult, splits []int, taskErrs []error, patch *phasePatch) {
	for _, cr := range job.Chaos.CrashesIn(base, base+res.Phase.Makespan) {
		res.Counters[chaos.CtrNodeCrashes]++
		e.instant(fmt.Sprintf("crash:node%d", cr.Node), "chaos", cr.At)
		if e.Trace != nil {
			e.Trace.Metrics.Add(chaos.CtrNodeCrashes, 1)
		}
		if job.OnNodeCrash != nil {
			job.OnNodeCrash(cr.Node)
		}
		lost := assignmentsOn(res.Phase.Assignments, cr.Node)
		if len(lost) == 0 {
			continue
		}
		_, seq := e.beginPhase() // fresh deterministic key for recovery draws
		recTasks := make([]sim.Task, len(lost))
		origTask := make([]int, len(lost))
		for j, ai := range lost {
			i := res.Phase.Assignments[ai].Task
			origTask[j] = i
			s := splits[i]
			chunk := job.Input.Chunks[s]
			preferred := chunk.Replicas
			if job.MapPlacement != nil {
				preferred = job.MapPlacement(s, chunk)
			}
			recTasks[j] = sim.Task{
				Preferred: preferred,
				Run:       e.mapTaskRun(job, cr.At, seq, i, s, chunk, res, taskErrs),
			}
		}
		// Recovery waves stay inside the job's slot lease: under the job
		// service a crashed tenant's re-runs must not spill onto slots
		// leased to other jobs.
		rec := e.Cluster.SchedulePhaseLease(recTasks, e.Cluster.Config().MapSlotsPerNode, e.lease, func(n sim.NodeID) bool {
			return job.Chaos.NodeDown(n, cr.At)
		})
		spliceRecovery(res.Phase.Assignments, lost, origTask, rec.Assignments, cr.At-base, patch)
		patch.waves += rec.Waves
		for _, i := range origTask {
			if res.Stats[i].Counters != nil {
				res.Stats[i].Counters[chaos.CtrTasksLost]++
			}
		}
	}
}

// crashReduce is crashMap's reduce-side twin. Map outputs survive
// (eager shuffle); only the dead node's reduce tasks re-run.
func (e *JobRun) crashReduce(job *Job, base float64, sub *ReduceSubsetResult, outputs []*MapOutput, taskErrs []error, patch *phasePatch) {
	for _, cr := range job.Chaos.CrashesIn(base, base+sub.Phase.Makespan) {
		sub.Counters[chaos.CtrNodeCrashes]++
		e.instant(fmt.Sprintf("crash:node%d", cr.Node), "chaos", cr.At)
		if e.Trace != nil {
			e.Trace.Metrics.Add(chaos.CtrNodeCrashes, 1)
		}
		if job.OnNodeCrash != nil {
			job.OnNodeCrash(cr.Node)
		}
		lost := assignmentsOn(sub.Phase.Assignments, cr.Node)
		if len(lost) == 0 {
			continue
		}
		_, seq := e.beginPhase()
		recTasks := make([]sim.Task, len(lost))
		origTask := make([]int, len(lost))
		for j, ai := range lost {
			i := sub.Phase.Assignments[ai].Task
			origTask[j] = i
			recTasks[j] = sim.Task{
				Run: e.reduceTaskRun(job, cr.At, seq, i, sub.Reducers[i], outputs, sub, taskErrs),
			}
		}
		rec := e.Cluster.SchedulePhaseLease(recTasks, e.Cluster.Config().ReduceSlotsPerNode, e.lease, func(n sim.NodeID) bool {
			return job.Chaos.NodeDown(n, cr.At)
		})
		spliceRecovery(sub.Phase.Assignments, lost, origTask, rec.Assignments, cr.At-base, patch)
		patch.waves += rec.Waves
		for _, i := range origTask {
			if sub.Stats[i].Counters != nil {
				sub.Stats[i].Counters[chaos.CtrTasksLost]++
			}
		}
	}
}

// assignmentsOn returns the positions of every assignment currently
// placed on the given node.
func assignmentsOn(assigns []sim.Assignment, node sim.NodeID) []int {
	var out []int
	for ai, a := range assigns {
		if a.Node == node {
			out = append(out, ai)
		}
	}
	return out
}

// spliceRecovery replaces the lost assignments with their recovery
// placements, shifting recovery starts by the crash offset so all starts
// stay phase-relative, and marks the rewritten positions dirty.
func spliceRecovery(assigns []sim.Assignment, lost, origTask []int, rec []sim.Assignment, offset float64, patch *phasePatch) {
	for _, ra := range rec {
		ai := lost[ra.Task]
		assigns[ai] = sim.Assignment{
			Task:     origTask[ra.Task],
			Node:     ra.Node,
			Slot:     ra.Slot,
			Start:    offset + ra.Start,
			Duration: ra.Duration,
			Local:    ra.Local,
		}
		patch.mark(ai)
	}
}

// refreshPhase repairs a phase's aggregates and ordering after chaos
// rewrote some of its assignments. All three aggregates are recomputed —
// Makespan, LocalTasks, and Waves (the scheduler's waves plus the
// recovery waves chaos spliced in) — so the adaptive optimizer and job
// profiles never see pre-crash wave/locality statistics. Ordering is
// restored incrementally: the untouched assignments are still in
// (start, task) order, so only the k rewritten ones are sorted and
// merged back — O(n + k log k) instead of a full re-sort, and a pure
// no-op when chaos left the schedule untouched.
func refreshPhase(p *sim.PhaseResult, patch *phasePatch) {
	p.Waves += patch.waves
	if patch.n == 0 {
		return
	}
	p.Makespan = 0
	p.LocalTasks = 0
	for _, a := range p.Assignments {
		if end := a.Start + a.Duration; end > p.Makespan {
			p.Makespan = end
		}
		if a.Local {
			p.LocalTasks++
		}
	}

	// Partition into the still-sorted clean subsequence and the rewritten
	// entries, sort the rewritten ones, and merge.
	clean := make([]sim.Assignment, 0, len(p.Assignments)-patch.n)
	dirty := make([]sim.Assignment, 0, patch.n)
	for ai, a := range p.Assignments {
		if patch.dirty[ai] {
			dirty = append(dirty, a)
		} else {
			clean = append(clean, a)
		}
	}
	less := func(a, b sim.Assignment) bool {
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Task < b.Task
	}
	sort.Slice(dirty, func(i, j int) bool { return less(dirty[i], dirty[j]) })
	ci, di := 0, 0
	for out := 0; out < len(p.Assignments); out++ {
		switch {
		case ci >= len(clean):
			p.Assignments[out] = dirty[di]
			di++
		case di >= len(dirty) || less(clean[ci], dirty[di]):
			p.Assignments[out] = clean[ci]
			ci++
		default:
			p.Assignments[out] = dirty[di]
			di++
		}
	}
}
