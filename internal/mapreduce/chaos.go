package mapreduce

import (
	"fmt"
	"sort"

	"efind/internal/chaos"
	"efind/internal/sim"
)

// This file applies a job's chaos schedule to a completed phase. Both
// fault kinds are resolved AFTER the scheduler returns, at a serial
// point, so the rewriting below is deterministic under the parallel
// executor too:
//
//   - Speculative execution replays Hadoop's backup-task policy against
//     the known schedule: any task that ran past Threshold× the phase's
//     median duration gets a backup attempt on the least-loaded
//     surviving node, launched the moment the task became officially
//     late. The first finisher wins the assignment; the loser's side
//     effects are rolled back (backup cache pollution via AttemptGuard)
//     or never committed (task-local counters are dropped with the
//     losing attempt). Cost accounting keeps the ORIGINAL attempt's
//     counters either way — chaos only slowed that attempt down, so its
//     counters are exactly the fault-free run's, which is what keeps
//     accounting bit-identical.
//
//   - Node crashes discard every assignment the crashed node held —
//     in-flight and completed-but-unfetched map outputs alike, as a
//     dead TaskTracker does — and re-run them on the surviving nodes
//     via a recovery wave scheduled at the crash instant. Recovery
//     attempts are not themselves crashed or speculated (single pass);
//     a crash during the reduce phase only re-runs reduce tasks,
//     because the model treats map outputs as fetched when the reduce
//     phase starts (an "eager shuffle" — see DESIGN.md for the
//     deviation from Hadoop's pull shuffle).

// applyMapChaos rewrites a finished map phase per the job's chaos plan.
func (e *Engine) applyMapChaos(job *Job, base float64, res *MapPhaseResult, splits []int, taskErrs []error) {
	if job.Chaos == nil || firstError(taskErrs) != nil {
		return
	}
	e.speculateMap(job, base, res, splits)
	e.crashMap(job, base, res, splits, taskErrs)
	refreshPhase(&res.Phase)
}

// applyReduceChaos is applyMapChaos's reduce-side twin.
func (e *Engine) applyReduceChaos(job *Job, base float64, sub *ReduceSubsetResult, outputs []*MapOutput, taskErrs []error) {
	if job.Chaos == nil || firstError(taskErrs) != nil {
		return
	}
	e.speculateReduce(job, base, sub, outputs)
	e.crashReduce(job, base, sub, outputs, taskErrs)
	refreshPhase(&sub.Phase)
}

// medianDuration returns the median assignment duration of a phase — the
// progress yardstick speculation measures stragglers against.
func medianDuration(assigns []sim.Assignment) float64 {
	durs := make([]float64, len(assigns))
	for i, a := range assigns {
		durs[i] = a.Duration
	}
	sort.Float64s(durs)
	return durs[len(durs)/2]
}

// backupNode picks the surviving node a backup attempt launches on: the
// node (other than the straggler's own, and not down at absAt) whose
// busiest lane drains first, ties broken by node ID. Returns -1 when no
// node qualifies. The returned free time is phase-relative, like
// assignment starts.
func (e *Engine) backupNode(assigns []sim.Assignment, exclude sim.NodeID, job *Job, absAt float64) (sim.NodeID, float64) {
	free := make([]float64, e.Cluster.Nodes())
	for _, a := range assigns {
		if end := a.Start + a.Duration; end > free[a.Node] {
			free[a.Node] = end
		}
	}
	best := sim.NodeID(-1)
	bestFree := 0.0
	for n := 0; n < e.Cluster.Nodes(); n++ {
		id := sim.NodeID(n)
		if id == exclude || job.Chaos.NodeDown(id, absAt) {
			continue
		}
		if best < 0 || free[n] < bestFree {
			best, bestFree = id, free[n]
		}
	}
	return best, bestFree
}

// commitBackup resolves one speculation race. The winner keeps the
// assignment's placement and timing; the loser's attempt is discarded.
// Accounting counters and sketches always stay with the original attempt
// (see the file comment), and the race outcome is recorded on the task's
// own counters so it flows through job results, trace metrics, and
// profiles like any other counter.
func commitBackup(a *sim.Assignment, st *TaskStats, backupNode sim.NodeID, backupStart, backupDur float64, backupStats TaskStats, local bool) bool {
	st.Counters[chaos.CtrSpecLaunched]++
	if backupStart+backupDur >= a.Start+a.Duration {
		st.Counters[chaos.CtrSpecLost]++
		return false
	}
	st.Counters[chaos.CtrSpecWon]++
	backupStats.Counters = st.Counters
	backupStats.Sketches = st.Sketches
	*st = backupStats
	a.Node = backupNode
	a.Slot = 0
	a.Start = backupStart
	a.Duration = backupDur
	a.Local = local
	return true
}

// specInstant emits the race outcome as a trace instant.
func (e *Engine) specInstant(name string, task int, won bool) {
	if e.Trace == nil {
		return
	}
	verdict := "lost"
	if won {
		verdict = "won"
	}
	e.Trace.AddInstant(fmt.Sprintf("speculate:%s[%d] %s", name, task, verdict), "chaos")
}

// speculateMap launches backup attempts for map stragglers.
func (e *Engine) speculateMap(job *Job, base float64, res *MapPhaseResult, splits []int) {
	spec := job.Chaos.Spec()
	if !spec.Enabled || len(res.Phase.Assignments) < 2 {
		return
	}
	med := medianDuration(res.Phase.Assignments)
	if med <= 0 {
		return
	}
	launched := 0
	cfg := e.Cluster.Config()
	for ai := range res.Phase.Assignments {
		a := &res.Phase.Assignments[ai]
		if a.Duration <= spec.Threshold*med {
			continue
		}
		if spec.MaxPerPhase > 0 && launched >= spec.MaxPerPhase {
			break
		}
		launched++
		i := a.Task
		s := splits[i]
		chunk := job.Input.Chunks[s]
		detect := a.Start + spec.Threshold*med
		node, freeAt := e.backupNode(res.Phase.Assignments, a.Node, job, base+detect)
		if node < 0 {
			continue
		}
		start := detect
		if freeAt > start {
			start = freeAt
		}
		var rollback func()
		if job.AttemptGuard != nil {
			rollback = job.AttemptGuard(node)
		}
		out, st, err := e.mapAttempt(job, i, s, chunk, node, base+start)
		if rollback != nil {
			rollback() // a backup's cache pollution never commits, win or lose
		}
		if err != nil {
			// The backup aborted (e.g. it straddled an outage window the
			// original missed). Hadoop kills failed backups without
			// failing the task; the original attempt stands.
			res.Stats[i].Counters[chaos.CtrSpecLaunched]++
			res.Stats[i].Counters[chaos.CtrSpecLost]++
			e.specInstant(job.Name+"/map", i, false)
			continue
		}
		dur := (cfg.TaskStartup + st.Duration) / cfg.SpeedOf(node)
		preferred := chunk.Replicas
		if job.MapPlacement != nil {
			preferred = job.MapPlacement(s, chunk)
		}
		won := commitBackup(a, &res.Stats[i], node, start, dur, st, sim.ContainsNode(preferred, node))
		if won {
			res.Outputs[i] = out // identical records; Node now names the winner
		}
		e.specInstant(job.Name+"/map", i, won)
	}
}

// speculateReduce launches backup attempts for reduce stragglers.
func (e *Engine) speculateReduce(job *Job, base float64, sub *ReduceSubsetResult, outputs []*MapOutput) {
	spec := job.Chaos.Spec()
	if !spec.Enabled || len(sub.Phase.Assignments) < 2 {
		return
	}
	med := medianDuration(sub.Phase.Assignments)
	if med <= 0 {
		return
	}
	launched := 0
	cfg := e.Cluster.Config()
	for ai := range sub.Phase.Assignments {
		a := &sub.Phase.Assignments[ai]
		if a.Duration <= spec.Threshold*med {
			continue
		}
		if spec.MaxPerPhase > 0 && launched >= spec.MaxPerPhase {
			break
		}
		launched++
		i := a.Task
		r := sub.Reducers[i]
		detect := a.Start + spec.Threshold*med
		node, freeAt := e.backupNode(sub.Phase.Assignments, a.Node, job, base+detect)
		if node < 0 {
			continue
		}
		start := detect
		if freeAt > start {
			start = freeAt
		}
		var rollback func()
		if job.AttemptGuard != nil {
			rollback = job.AttemptGuard(node)
		}
		shard, st, err := e.reduceAttempt(job, r, node, outputs, base+start)
		if rollback != nil {
			rollback()
		}
		if err != nil {
			sub.Stats[i].Counters[chaos.CtrSpecLaunched]++
			sub.Stats[i].Counters[chaos.CtrSpecLost]++
			e.specInstant(job.Name+"/reduce", r, false)
			continue
		}
		dur := (cfg.TaskStartup + st.Duration) / cfg.SpeedOf(node)
		won := commitBackup(a, &sub.Stats[i], node, start, dur, st, false)
		if won {
			sub.Shards[i] = shard
			sub.Homes[i] = node
		}
		e.specInstant(job.Name+"/reduce", r, won)
	}
}

// crashMap absorbs the crash events falling inside the map phase's
// window: for each crash, every assignment the dead node holds is
// discarded and re-executed as a recovery wave on the surviving nodes,
// starting at the crash instant.
func (e *Engine) crashMap(job *Job, base float64, res *MapPhaseResult, splits []int, taskErrs []error) {
	for _, cr := range job.Chaos.CrashesIn(base, base+res.Phase.Makespan) {
		res.Counters[chaos.CtrNodeCrashes]++
		if e.Trace != nil {
			e.Trace.AddInstant(fmt.Sprintf("crash:node%d", cr.Node), "chaos")
			e.Trace.Metrics.Add(chaos.CtrNodeCrashes, 1)
		}
		if job.OnNodeCrash != nil {
			job.OnNodeCrash(cr.Node)
		}
		lost := assignmentsOn(res.Phase.Assignments, cr.Node)
		if len(lost) == 0 {
			continue
		}
		_, seq := e.beginPhase() // fresh deterministic key for recovery draws
		recTasks := make([]sim.Task, len(lost))
		origTask := make([]int, len(lost))
		for j, ai := range lost {
			i := res.Phase.Assignments[ai].Task
			origTask[j] = i
			s := splits[i]
			chunk := job.Input.Chunks[s]
			preferred := append([]sim.NodeID(nil), chunk.Replicas...)
			if job.MapPlacement != nil {
				preferred = job.MapPlacement(s, chunk)
			}
			recTasks[j] = sim.Task{
				Preferred: preferred,
				Run:       e.mapTaskRun(job, cr.At, seq, i, s, chunk, res, taskErrs),
			}
		}
		rec := e.Cluster.SchedulePhaseAvail(recTasks, e.Cluster.Config().MapSlotsPerNode, func(n sim.NodeID) bool {
			return job.Chaos.NodeDown(n, cr.At)
		})
		spliceRecovery(res.Phase.Assignments, lost, origTask, rec.Assignments, cr.At-base)
		for _, i := range origTask {
			if res.Stats[i].Counters != nil {
				res.Stats[i].Counters[chaos.CtrTasksLost]++
			}
		}
	}
}

// crashReduce is crashMap's reduce-side twin. Map outputs survive
// (eager shuffle); only the dead node's reduce tasks re-run.
func (e *Engine) crashReduce(job *Job, base float64, sub *ReduceSubsetResult, outputs []*MapOutput, taskErrs []error) {
	for _, cr := range job.Chaos.CrashesIn(base, base+sub.Phase.Makespan) {
		sub.Counters[chaos.CtrNodeCrashes]++
		if e.Trace != nil {
			e.Trace.AddInstant(fmt.Sprintf("crash:node%d", cr.Node), "chaos")
			e.Trace.Metrics.Add(chaos.CtrNodeCrashes, 1)
		}
		if job.OnNodeCrash != nil {
			job.OnNodeCrash(cr.Node)
		}
		lost := assignmentsOn(sub.Phase.Assignments, cr.Node)
		if len(lost) == 0 {
			continue
		}
		_, seq := e.beginPhase()
		recTasks := make([]sim.Task, len(lost))
		origTask := make([]int, len(lost))
		for j, ai := range lost {
			i := sub.Phase.Assignments[ai].Task
			origTask[j] = i
			recTasks[j] = sim.Task{
				Run: e.reduceTaskRun(job, cr.At, seq, i, sub.Reducers[i], outputs, sub, taskErrs),
			}
		}
		rec := e.Cluster.SchedulePhaseAvail(recTasks, e.Cluster.Config().ReduceSlotsPerNode, func(n sim.NodeID) bool {
			return job.Chaos.NodeDown(n, cr.At)
		})
		spliceRecovery(sub.Phase.Assignments, lost, origTask, rec.Assignments, cr.At-base)
		for _, i := range origTask {
			if sub.Stats[i].Counters != nil {
				sub.Stats[i].Counters[chaos.CtrTasksLost]++
			}
		}
	}
}

// assignmentsOn returns the positions of every assignment currently
// placed on the given node.
func assignmentsOn(assigns []sim.Assignment, node sim.NodeID) []int {
	var out []int
	for ai, a := range assigns {
		if a.Node == node {
			out = append(out, ai)
		}
	}
	return out
}

// spliceRecovery replaces the lost assignments with their recovery
// placements, shifting recovery starts by the crash offset so all starts
// stay phase-relative.
func spliceRecovery(assigns []sim.Assignment, lost, origTask []int, rec []sim.Assignment, offset float64) {
	for _, ra := range rec {
		ai := lost[ra.Task]
		assigns[ai] = sim.Assignment{
			Task:     origTask[ra.Task],
			Node:     ra.Node,
			Slot:     ra.Slot,
			Start:    offset + ra.Start,
			Duration: ra.Duration,
			Local:    ra.Local,
		}
	}
}

// refreshPhase recomputes a phase's aggregates after chaos rewrote its
// assignments, and restores the (start, task) ordering the trace
// exporter relies on.
func refreshPhase(p *sim.PhaseResult) {
	p.Makespan = 0
	p.LocalTasks = 0
	for _, a := range p.Assignments {
		if end := a.Start + a.Duration; end > p.Makespan {
			p.Makespan = end
		}
		if a.Local {
			p.LocalTasks++
		}
	}
	sort.Slice(p.Assignments, func(i, j int) bool {
		if p.Assignments[i].Start != p.Assignments[j].Start {
			return p.Assignments[i].Start < p.Assignments[j].Start
		}
		return p.Assignments[i].Task < p.Assignments[j].Task
	})
}
