package mapreduce

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/fstore"
	"efind/internal/sim"
)

func fbWordCountJob(in *dfs.File) *Job {
	return &Job{
		Name:  "wc",
		Input: in,
		Map: func(_ *TaskContext, p Pair, emit Emit) {
			for _, w := range strings.Fields(p.Value) {
				emit(Pair{Key: w, Value: "1"})
			}
		},
		NumReduce: 4,
		Reduce: func(_ *TaskContext, key string, values []string, emit Emit) {
			emit(Pair{Key: key, Value: strconv.Itoa(len(values))})
		},
	}
}

// runWordCount executes the job in a fresh environment, optionally
// file-backed, and returns a canonical rendering of the result plus its
// virtual time and counters.
func runWordCount(t *testing.T, fileBacked bool) (string, float64, map[string]int64) {
	t.Helper()
	base := fstore.OpenHandles()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.01
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 1 << 10
	if fileBacked {
		if err := fs.SetBacking(t.TempDir()); err != nil {
			t.Fatal(err)
		}
	}
	e := New(cluster, fs)
	in := makeInput(t, fs, "in", 700)
	res, err := e.Run(fbWordCountJob(in))
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, res.Output.Records())
	for _, r := range res.Output.All() {
		lines = append(lines, r.Key+"\t"+r.Value)
	}
	sort.Strings(lines)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if leaked := fstore.OpenHandles() - base; leaked != 0 {
		t.Fatalf("%d snapshot handle(s) leaked after Engine.Close", leaked)
	}
	return strings.Join(lines, "\n"), res.VTime, res.Counters
}

// TestFileBackedJobBitIdentical is the acceptance pin: a job whose input
// and intermediate files live in fstore snapshots must produce the same
// output, the same virtual time, and the same counters as the in-memory
// run — file-backing moves bytes, not semantics.
func TestFileBackedJobBitIdentical(t *testing.T) {
	memOut, memVT, memCtr := runWordCount(t, false)
	fileOut, fileVT, fileCtr := runWordCount(t, true)
	if memOut != fileOut {
		t.Fatal("output records diverge between in-memory and file-backed runs")
	}
	if memVT != fileVT {
		t.Fatalf("virtual time diverges: mem %.9f vs file %.9f", memVT, fileVT)
	}
	if len(memCtr) != len(fileCtr) {
		t.Fatalf("counter sets diverge: %d vs %d", len(memCtr), len(fileCtr))
	}
	for name, v := range memCtr {
		if fileCtr[name] != v {
			t.Fatalf("counter %q diverges: mem %d vs file %d", name, v, fileCtr[name])
		}
	}
}

// TestCorruptInputFailsJob corrupts the file-backed input under the
// engine and asserts the job fails with a detection error instead of
// producing output from garbage records.
func TestCorruptInputFailsJob(t *testing.T) {
	cluster, fs, e := testEnv(t)
	_ = cluster
	dir := t.TempDir()
	if err := fs.SetBacking(dir); err != nil {
		t.Fatal(err)
	}
	in := makeInput(t, fs, "in", 200)
	names, err := filepath.Glob(filepath.Join(dir, "*.fmc1"))
	if err != nil || len(names) != 1 {
		t.Fatalf("snapshot files: %v (%v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 48; i < len(data); i++ {
		data[i] = 0xff
	}
	w, err := os.OpenFile(names[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(fbWordCountJob(in))
	if err == nil {
		t.Fatal("job over corrupt input must fail")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error does not name corruption: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
