package mapreduce

import (
	"hash/fnv"
	"testing"
)

// partitionGolden pins HashPartition outputs to fixed values computed
// with hash/fnv before the loop was inlined; any change to the hash
// function shows up here as a changed reducer assignment.
var partitionGolden = []struct {
	key       string
	numReduce int
	want      int
}{
	{"", 4, 1},
	{"a", 4, 0},
	{"the", 4, 0},
	{"wordcount", 4, 0},
	{"efind", 8, 3},
	{"index-access", 8, 4},
	{"☃ unicode", 8, 7},
	{"k\x00with\x00nuls", 16, 14},
	{"a-rather-longer-key-as-emitted-by-a-real-map-function", 16, 14},
	{"singleton", 1, 0},
	{"degenerate", 0, 0},
	{"negative", -3, 0},
}

func TestHashPartitionGolden(t *testing.T) {
	for _, g := range partitionGolden {
		if got := HashPartition(g.key, g.numReduce); got != g.want {
			t.Errorf("HashPartition(%q, %d) = %d, want %d", g.key, g.numReduce, got, g.want)
		}
	}
}

// TestHashPartitionMatchesFnv cross-checks the inlined FNV-1a loop
// against hash/fnv over a spread of generated keys: identical hash
// values, hence identical partitions, for every reducer count.
func TestHashPartitionMatchesFnv(t *testing.T) {
	keys := []string{"", "x"}
	for i := 0; i < 200; i++ {
		x := uint32(i)*2654435761 + 97
		b := make([]byte, i%23)
		for j := range b {
			b[j] = byte(x >> (uint(j) % 24))
		}
		keys = append(keys, string(b))
	}
	for _, key := range keys {
		h := fnv.New32a()
		h.Write([]byte(key))
		ref := h.Sum32()
		for _, nr := range []int{2, 3, 7, 32, 1000} {
			want := int(ref % uint32(nr))
			if got := HashPartition(key, nr); got != want {
				t.Fatalf("HashPartition(%q, %d) = %d, want %d (fnv %d)", key, nr, got, want, ref)
			}
		}
	}
}

// BenchmarkHashPartition pins the partitioner's allocation behavior: the
// inlined loop must not allocate (the hash/fnv version allocated a
// hasher and a []byte copy per record).
func BenchmarkHashPartition(b *testing.B) {
	keys := []string{"the", "quick", "brown", "fox", "jumps", "over", "a-rather-longer-key-as-emitted-by-a-real-map-function"}
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += HashPartition(keys[i%len(keys)], 64)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}
