package mapreduce

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"efind/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// traceRun executes the word-count job with a trace attached under the
// given executor parallelism and returns the serialized trace and
// profile bytes.
func traceRun(t *testing.T, parallelism int) ([]byte, []byte) {
	t.Helper()
	fs, e := parEnv(t, parallelism)
	e.Trace = obs.NewTrace()
	in := makeInput(t, fs, "in", 600)
	if _, err := e.Run(wordCountJob(in, "wc", false)); err != nil {
		t.Fatal(err)
	}
	var chrome bytes.Buffer
	if err := e.Trace.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var prof bytes.Buffer
	if err := e.Trace.Profile("test").Write(&prof); err != nil {
		t.Fatal(err)
	}
	return chrome.Bytes(), prof.Bytes()
}

// TestTraceBitIdenticalAcrossParallelism pins the core determinism
// promise of the observability layer: the exported trace and profile
// files are byte-for-byte identical whether task bodies ran serially or
// on 8 goroutines, because everything is denominated in virtual time and
// the parallel executor replays the serial schedule.
func TestTraceBitIdenticalAcrossParallelism(t *testing.T) {
	serialChrome, serialProf := traceRun(t, 1)
	parChrome, parProf := traceRun(t, 8)
	if !bytes.Equal(serialChrome, parChrome) {
		t.Fatalf("chrome trace diverged between serial and parallel runs (%d vs %d bytes)", len(serialChrome), len(parChrome))
	}
	if !bytes.Equal(serialProf, parProf) {
		t.Fatalf("profile diverged between serial and parallel runs:\nserial:\n%s\nparallel:\n%s", serialProf, parProf)
	}
}

// TestTraceRecordsPhases sanity-checks the shape of an engine-emitted
// trace: one merged stage per phase, task spans attributed to every
// scheduled task, and counters absorbed into the registry.
func TestTraceRecordsPhases(t *testing.T) {
	fs, e := parEnv(t, 1)
	e.Trace = obs.NewTrace()
	in := makeInput(t, fs, "in", 400)
	res, err := e.Run(wordCountJob(in, "wc", false))
	if err != nil {
		t.Fatal(err)
	}
	stages := e.Trace.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want map+reduce: %+v", len(stages), stages)
	}
	var total float64
	for _, s := range stages {
		if s.VTime <= 0 || s.Tasks <= 0 || s.Waves <= 0 {
			t.Fatalf("degenerate stage: %+v", s)
		}
		total += s.VTime
	}
	if total != res.VTime {
		t.Fatalf("stage vtimes sum to %g, job vtime %g", total, res.VTime)
	}
	if e.Trace.Clock() != res.VTime {
		t.Fatalf("trace clock %g, job vtime %g", e.Trace.Clock(), res.VTime)
	}
	// Map tasks read 400 input records; reduce tasks count their own
	// inputs on top, so the registry total must exceed 400.
	if got := e.Trace.Metrics.Counter(CounterInputRecords); got <= 400 {
		t.Fatalf("registry input records = %d, want > 400", got)
	}
}

// TestSpanHotPathAllocs pins the zero-overhead promise: with tracing off
// (no EnableSpans), StartSpan/End must not allocate.
func TestSpanHotPathAllocs(t *testing.T) {
	ctx := NewTaskContext(nil, 0, 0, MapTask)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := ctx.StartSpan("read", "io")
		ctx.extra += 0.001
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

// TestChromeTraceGolden pins the exact Chrome trace-event serialization
// of a tiny deterministic job. Regenerate with -update-golden after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	fs, e := parEnv(t, 1)
	e.Trace = obs.NewTrace()
	in := makeInput(t, fs, "in", 24)
	job := wordCountJob(in, "tiny", false)
	job.NumReduce = 2
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace deviates from %s (rerun with -update-golden if intentional)\ngot %d bytes, want %d", golden, buf.Len(), len(want))
	}
}
