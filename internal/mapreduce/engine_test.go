package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"efind/internal/dfs"
	"efind/internal/sim"
)

// testEnv builds a small deterministic cluster + fs + engine.
func testEnv(t *testing.T) (*sim.Cluster, *dfs.FS, *Engine) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.01
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 1 << 10
	return cluster, fs, New(cluster, fs)
}

func makeInput(t *testing.T, fs *dfs.FS, name string, n int) *dfs.File {
	t.Helper()
	recs := make([]dfs.Record, n)
	for i := range recs {
		recs[i] = dfs.Record{Key: fmt.Sprintf("k%04d", i), Value: fmt.Sprintf("word%d payload-%04d", i%7, i)}
	}
	f, err := fs.Create(name, recs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWordCount(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 700)

	job := &Job{
		Name:  "wordcount",
		Input: in,
		Map: func(_ *TaskContext, p Pair, emit Emit) {
			for _, w := range strings.Fields(p.Value) {
				emit(Pair{Key: w, Value: "1"})
			}
		},
		NumReduce: 4,
		Reduce: func(_ *TaskContext, key string, values []string, emit Emit) {
			emit(Pair{Key: key, Value: strconv.Itoa(len(values))})
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range res.Output.All() {
		n, err := strconv.Atoi(r.Value)
		if err != nil {
			t.Fatal(err)
		}
		counts[r.Key] += n
	}
	// 700 records, word index i%7: each of word0..word6 appears 100 times.
	for i := 0; i < 7; i++ {
		w := fmt.Sprintf("word%d", i)
		if counts[w] != 100 {
			t.Fatalf("count[%s] = %d, want 100", w, counts[w])
		}
	}
	// Every payload token is unique.
	if counts["payload-0000"] != 1 {
		t.Fatalf("unique token count = %d, want 1", counts["payload-0000"])
	}
	if res.VTime <= 0 {
		t.Fatal("job should consume virtual time")
	}
}

func TestMapOnlyJob(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 100)
	job := &Job{
		Name:  "maponly",
		Input: in,
		Map: func(_ *TaskContext, p Pair, emit Emit) {
			emit(Pair{Key: p.Key, Value: strings.ToUpper(p.Value)})
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 100 {
		t.Fatalf("map-only output has %d records, want 100", res.Output.Records())
	}
	for _, r := range res.Output.All() {
		if r.Value != strings.ToUpper(r.Value) {
			t.Fatalf("map not applied to %q", r.Value)
		}
	}
}

func TestIdentityDefaults(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 50)
	res, err := e.Run(&Job{Name: "id", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 50 {
		t.Fatalf("identity job lost records: %d", res.Output.Records())
	}
}

func TestReduceGroupsAndSorts(t *testing.T) {
	_, fs, e := testEnv(t)
	recs := []dfs.Record{
		{Key: "x", Value: "b"}, {Key: "y", Value: "1"},
		{Key: "x", Value: "a"}, {Key: "y", Value: "2"},
		{Key: "z", Value: "only"},
	}
	f, err := fs.Create("grp", recs)
	if err != nil {
		t.Fatal(err)
	}
	var groups []string
	job := &Job{
		Name:      "group",
		Input:     f,
		NumReduce: 1,
		Reduce: func(_ *TaskContext, key string, values []string, emit Emit) {
			groups = append(groups, fmt.Sprintf("%s=%s", key, strings.Join(values, ",")))
			emit(Pair{Key: key, Value: strings.Join(values, ",")})
		},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	want := []string{"x=b,a", "y=1,2", "z=only"}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
	for i := range want {
		if groups[i] != want[i] {
			t.Fatalf("groups[%d] = %q, want %q (values must keep map order, keys sorted)", i, groups[i], want[i])
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 120)
	job := &Job{
		Name:      "part",
		Input:     in,
		NumReduce: 3,
		Partition: func(key string, n int) int {
			// route by last digit mod n
			return int(key[len(key)-1]-'0') % n
		},
		Reduce: IdentityReduce,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 120 {
		t.Fatalf("records = %d", res.Output.Records())
	}
	// Chunks carry their producing shard; shard r must contain only keys
	// with lastDigit%3 == r.
	for _, chunk := range res.Output.Chunks {
		if chunk.Shard < 0 || chunk.Shard >= 3 {
			t.Fatalf("output chunk shard %d out of range", chunk.Shard)
		}
		recs, err := chunk.Records()
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if int(rec.Key[len(rec.Key)-1]-'0')%3 != chunk.Shard {
				t.Fatalf("key %q landed in shard %d", rec.Key, chunk.Shard)
			}
		}
	}
}

func TestChainedStagesOrderAndClose(t *testing.T) {
	_, fs, e := testEnv(t)
	recs := []dfs.Record{{Key: "a", Value: "1"}}
	f, err := fs.Create("chain", recs)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag string) StageFactory {
		return func(sim.NodeID) Stage {
			return &FuncStage{
				OnProcess: func(_ *TaskContext, p Pair, emit Emit) {
					emit(Pair{Key: p.Key, Value: p.Value + tag})
				},
				OnClose: func(_ *TaskContext, emit Emit) {
					emit(Pair{Key: "close", Value: tag})
				},
			}
		}
	}
	job := &Job{
		Name:            "chain",
		Input:           f,
		MapStagesBefore: []StageFactory{mk(">pre1"), mk(">pre2")},
		Map: func(_ *TaskContext, p Pair, emit Emit) {
			emit(Pair{Key: p.Key, Value: p.Value + ">map"})
		},
		MapStagesAfter: []StageFactory{mk(">post")},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]string{}
	for _, r := range res.Output.All() {
		byKey[r.Key] = append(byKey[r.Key], r.Value)
	}
	if got := byKey["a"]; len(got) != 1 || got[0] != "1>pre1>pre2>map>post" {
		t.Fatalf("chained value = %v, want 1>pre1>pre2>map>post", got)
	}
	// Close of pre1 flows through pre2, map, post; close of post emits raw.
	found := map[string]bool{}
	for _, v := range byKey["close"] {
		found[v] = true
	}
	if !found[">pre1>pre2>map>post"] {
		t.Fatalf("pre1 close output missing, got %v", byKey["close"])
	}
	if !found[">post"] {
		t.Fatalf("post close output missing, got %v", byKey["close"])
	}
}

func TestCountersAggregated(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 200)
	job := &Job{
		Name:  "count",
		Input: in,
		Map: func(ctx *TaskContext, p Pair, emit Emit) {
			ctx.Inc("custom.seen", 1)
			emit(p)
		},
		NumReduce: 2,
		Reduce:    IdentityReduce,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["custom.seen"] != 200 {
		t.Fatalf("custom counter = %d, want 200", res.Counters["custom.seen"])
	}
	if res.Counters[CounterInputRecords] < 200 {
		t.Fatalf("input records counter = %d", res.Counters[CounterInputRecords])
	}
	// Per-task stats are retained for variance computation.
	if len(res.MapStats) != len(in.Chunks) {
		t.Fatalf("map stats = %d, want one per split (%d)", len(res.MapStats), len(in.Chunks))
	}
	var sum int64
	for _, st := range res.MapStats {
		sum += st.Counters["custom.seen"]
	}
	if sum != 200 {
		t.Fatalf("per-task counters sum to %d, want 200", sum)
	}
}

func TestRunMapPhaseSubsetAndReuse(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 400)
	if len(in.Chunks) < 3 {
		t.Fatalf("need >=3 chunks for this test, got %d", len(in.Chunks))
	}
	job := &Job{
		Name:      "partial",
		Input:     in,
		NumReduce: 2,
		Reduce:    IdentityReduce,
	}
	r := e.NewRun()
	first, err := r.RunMapPhase(job, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rest := make([]int, 0, len(in.Chunks)-1)
	for i := 1; i < len(in.Chunks); i++ {
		rest = append(rest, i)
	}
	second, err := r.RunMapPhase(job, rest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunReducePhase(job, first, second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 400 {
		t.Fatalf("merged phases lost records: %d", res.Output.Records())
	}
	if res.VTime < first.VTime+second.VTime {
		t.Fatalf("vtime %g should include both map phases (%g + %g)", res.VTime, first.VTime, second.VTime)
	}
}

func TestRunMapPhaseBadSplit(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 10)
	if _, err := e.NewRun().RunMapPhase(&Job{Name: "bad", Input: in}, []int{99}); err == nil {
		t.Fatal("expected out-of-range split error")
	}
}

func TestRunReduceSubsetValidation(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 60)
	job := &Job{Name: "sub", Input: in, NumReduce: 3, Reduce: IdentityReduce}
	r := e.NewRun()
	mp, err := r.RunMapPhase(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunReduceSubset(job, mp.Outputs, []int{5}); err == nil {
		t.Fatal("out-of-range reducer should fail")
	}
	if _, err := r.RunReduceSubset(&Job{Name: "nored", Input: in}, mp.Outputs, nil); err == nil {
		t.Fatal("reduce subset without reduce function should fail")
	}
	sub, err := r.RunReduceSubset(job, mp.Outputs, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Shards) != 2 || len(sub.Reducers) != 2 {
		t.Fatalf("subset shape wrong: %d shards", len(sub.Shards))
	}
	// Requested order is preserved: Shards[0] belongs to reducer 2.
	if sub.Reducers[0] != 2 || sub.Reducers[1] != 0 {
		t.Fatalf("reducer order = %v", sub.Reducers)
	}
}

func TestFinishMapOnlyNamedOutput(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 40)
	job := &Job{Name: "named", Input: in, OutputName: "my-output"}
	mp, err := e.NewRun().RunMapPhase(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.FinishMapOnly(job, mp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Name != "my-output" {
		t.Fatalf("output name = %q", res.Output.Name)
	}
	if _, err := fs.Open("my-output"); err != nil {
		t.Fatal("named output not in the file system")
	}
}

func TestJobWithoutInputFails(t *testing.T) {
	_, _, e := testEnv(t)
	if _, err := e.Run(&Job{Name: "noinput"}); err == nil {
		t.Fatal("expected error for job without input")
	}
}

func TestReducePhaseOnMapOnlyJobFails(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 10)
	job := &Job{Name: "maponly", Input: in}
	r := e.NewRun()
	mp, err := r.RunMapPhase(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunReducePhase(job, mp); err == nil {
		t.Fatal("expected error reducing a map-only job")
	}
}

func TestMapPlacementHintHonored(t *testing.T) {
	cluster, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 300)
	target := sim.NodeID(cluster.Nodes() - 1)
	var nodes []sim.NodeID
	job := &Job{
		Name:  "placed",
		Input: in,
		Map: func(ctx *TaskContext, p Pair, emit Emit) {
			emit(p)
		},
		MapPlacement: func(int, *dfs.Chunk) []sim.NodeID { return []sim.NodeID{target} },
	}
	mp, err := e.NewRun().RunMapPhase(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range mp.Stats {
		nodes = append(nodes, st.Node)
	}
	// With few tasks and 2 slots on the target, at least the first tasks
	// must land on the hinted node; all preferred assignments count.
	if mp.Phase.LocalTasks == 0 {
		t.Fatalf("no task honored the placement hint; nodes=%v", nodes)
	}
}

func TestVTimeGrowsWithRemoteLookupCharges(t *testing.T) {
	_, fs, e := testEnv(t)
	in := makeInput(t, fs, "in", 100)
	mk := func(extra float64) *Job {
		return &Job{
			Name:  fmt.Sprintf("charge-%g", extra),
			Input: in,
			Map: func(ctx *TaskContext, p Pair, emit Emit) {
				ctx.Charge(extra)
				emit(p)
			},
		}
	}
	cheap, err := e.Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	costly, err := e.Run(mk(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if costly.VTime <= cheap.VTime {
		t.Fatalf("charged job should be slower: %g vs %g", costly.VTime, cheap.VTime)
	}
}

func TestHashPartitionInRange(t *testing.T) {
	f := func(key string, n uint8) bool {
		nr := int(n%32) + 1
		p := HashPartition(key, nr)
		return p >= 0 && p < nr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if HashPartition("anything", 1) != 0 {
		t.Fatal("single reducer must always get partition 0")
	}
	if HashPartition("anything", 0) != 0 {
		t.Fatal("degenerate reducer count must clamp to 0")
	}
}

// Property: identity job (map identity, identity reduce, any reducer
// count) preserves the multiset of records.
func TestIdentityJobPreservesRecords(t *testing.T) {
	f := func(vals []string, reducers uint8) bool {
		if len(vals) == 0 || len(vals) > 200 {
			return true
		}
		cfg := sim.DefaultConfig()
		cfg.Nodes = 3
		cluster := sim.NewCluster(cfg)
		fs := dfs.New(cluster)
		fs.ChunkTarget = 256
		e := New(cluster, fs)
		recs := make([]dfs.Record, len(vals))
		in := make([]string, len(vals))
		for i, v := range vals {
			if len(v) > 50 {
				v = v[:50]
			}
			recs[i] = dfs.Record{Key: fmt.Sprintf("k%03d", i%10), Value: v}
			in[i] = recs[i].Key + "\x00" + v
		}
		file, err := fs.Create("f", recs)
		if err != nil {
			return false
		}
		res, err := e.Run(&Job{
			Name:      "id",
			Input:     file,
			NumReduce: int(reducers%5) + 1,
			Reduce:    IdentityReduce,
		})
		if err != nil {
			return false
		}
		out := make([]string, 0, len(vals))
		for _, r := range res.Output.All() {
			out = append(out, r.Key+"\x00"+r.Value)
		}
		sort.Strings(in)
		sort.Strings(out)
		if len(in) != len(out) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
