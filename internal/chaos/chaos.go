// Package chaos is the failure model of the simulated cluster: a seeded,
// fully deterministic schedule of node crashes, injected stragglers
// (candidates for speculative execution), and index partition outages,
// all expressed in VIRTUAL time. Nothing here touches the wall clock;
// the same seed always produces the same fault schedule, and the engine
// applies it in a fixed order, so chaos runs are as reproducible as
// fault-free ones — serial and parallel executions of one seed yield
// bit-identical outputs, counters, and traces.
//
// The package is deliberately passive: it answers questions ("is node 3
// down at t=1.2?", "is partition 7 of index kv reachable now?", "how
// long should attempt 4 back off?") and owns the counter names; the
// mapreduce engine, the ixclient availability middleware, and the core
// runtime's failure-triggered re-optimization do the acting.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"efind/internal/index"
	"efind/internal/sim"
)

// Typed counter names emitted by the chaos machinery. They ride on the
// ordinary task-counter pipeline, so they show up in JobResult.Counters,
// the obs metrics registry, and exported profiles like any other counter.
const (
	// CtrNodeCrashes counts node crash events applied to a job's phases.
	CtrNodeCrashes = "chaos.node.crashes"
	// CtrTasksLost counts task attempts lost to node crashes and
	// re-executed on surviving nodes.
	CtrTasksLost = "chaos.tasks.lost"
	// CtrSpecLaunched counts speculative backup attempts launched.
	CtrSpecLaunched = "task.speculative.launched"
	// CtrSpecWon counts speculative backups that finished before the
	// original attempt (the backup's placement and timing are committed).
	CtrSpecWon = "task.speculative.won"
	// CtrSpecLost counts speculative backups that lost the race (the
	// backup's side effects are rolled back and its attempt discarded).
	CtrSpecLost = "task.speculative.lost"
	// CtrUnavailable counts index accesses that found their partition
	// down (each failed attempt, before backoff and retry).
	CtrUnavailable = "ix.partition.unavailable"
	// CtrReoptFailure counts failure-triggered re-optimizations: plan
	// changes forced by an exhausted index outage rather than by cost.
	CtrReoptFailure = "plan.reopt.failure_triggered"
)

// ErrUnavailable marks an index access that failed because every replica
// of the key's partition is inside an outage window. It wraps
// index.ErrTransient so the retry middleware backs off and re-attempts
// (the outage may end within the backoff budget); when retries are
// exhausted it surfaces to the core runtime, which degrades the
// operator's strategy before giving up.
var ErrUnavailable = fmt.Errorf("index partition unavailable: %w", index.ErrTransient)

// Crash is one node failure event in virtual time: the node goes down at
// At (losing its in-flight tasks and its completed-but-unfetched map
// outputs, as a Hadoop TaskTracker death does) and rejoins the cluster
// at Recover. A crashed node also loses node-local soft state — the
// per-machine lookup caches restart cold.
type Crash struct {
	Node    sim.NodeID
	At      float64
	Recover float64
}

// Outage is one index partition outage window: partition Partition of
// the index named Index cannot serve lookups during [From, Until).
// Partition -1 takes the whole index down. Until = +Inf makes the
// outage permanent (the degradation ladder then exhausts and the job
// fails).
type Outage struct {
	Index     string
	Partition int
	From      float64
	Until     float64
}

// Speculation configures Hadoop-style speculative execution: once a
// phase's median task duration is known, any task still running past
// Threshold× the median gets a backup attempt on the earliest-free
// surviving node; the first finisher wins, and the loser's side effects
// are rolled back so output and cost accounting stay bit-identical to a
// fault-free run.
type Speculation struct {
	// Enabled turns speculative execution on.
	Enabled bool
	// Threshold is the straggler multiple of the median task duration
	// (0 = 2.0, mirroring Hadoop's conservative default).
	Threshold float64
	// MaxPerPhase bounds backups per phase (0 = unlimited).
	MaxPerPhase int
}

// Config describes a chaos schedule. Explicit events (Crashes, Outages,
// Stragglers) are always honoured; the Seed additionally drives the
// randomized generators (CrashCount random crashes, OutageCount random
// outages, StragglerRate random slowdowns) so a bench can ask for "some
// chaos, seed 7" without hand-writing a schedule.
type Config struct {
	// Seed drives every randomized choice. Two Plans built from equal
	// Configs are identical.
	Seed int64

	// Crashes are explicit node crash events.
	Crashes []Crash
	// CrashCount generates this many random crashes across [CrashFrom,
	// CrashUntil), each recovering after CrashRecovery virtual seconds.
	CrashCount    int
	CrashFrom     float64
	CrashUntil    float64
	CrashRecovery float64

	// Spec configures speculative execution.
	Spec Speculation
	// StragglerRate injects slowdowns: each task of each phase is slowed
	// by StragglerFactor with this probability (seeded per phase/task,
	// independent of execution order). These are the stragglers
	// speculation races against.
	StragglerRate   float64
	StragglerFactor float64

	// Outages are explicit index partition outages.
	Outages []Outage
}

// Validate rejects schedules the engine cannot apply deterministically.
func (c Config) Validate() error {
	for _, cr := range c.Crashes {
		if cr.Recover < cr.At {
			return fmt.Errorf("chaos: crash of node %d recovers at %g before it happens at %g", cr.Node, cr.Recover, cr.At)
		}
	}
	for _, o := range c.Outages {
		if o.Until < o.From {
			return fmt.Errorf("chaos: outage of %s[%d] ends at %g before it starts at %g", o.Index, o.Partition, o.Until, o.From)
		}
	}
	if c.StragglerRate < 0 || c.StragglerRate > 1 {
		return fmt.Errorf("chaos: straggler rate %g outside [0,1]", c.StragglerRate)
	}
	if c.CrashCount > 0 && c.CrashUntil <= c.CrashFrom {
		return fmt.Errorf("chaos: %d random crashes requested but window [%g,%g) is empty", c.CrashCount, c.CrashFrom, c.CrashUntil)
	}
	return nil
}

// Plan is a resolved, immutable fault schedule. It is safe for
// concurrent use: all state is computed at construction.
type Plan struct {
	cfg     Config
	crashes []Crash // sorted by At
	outages []Outage
}

// New resolves a Config against a cluster of the given node count,
// expanding the seeded random generators into concrete events.
func New(cfg Config, nodes int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("chaos: plan needs a positive node count, got %d", nodes)
	}
	p := &Plan{cfg: cfg}
	p.crashes = append(p.crashes, cfg.Crashes...)
	if cfg.CrashCount > 0 {
		rng := rand.New(rand.NewSource(mix(cfg.Seed, 0x6372736800000001))) // "crsh"
		span := cfg.CrashUntil - cfg.CrashFrom
		for i := 0; i < cfg.CrashCount; i++ {
			at := cfg.CrashFrom + rng.Float64()*span
			rec := cfg.CrashRecovery
			if rec <= 0 {
				rec = span // default: out for the rest of the window
			}
			p.crashes = append(p.crashes, Crash{
				Node:    sim.NodeID(rng.Intn(nodes)),
				At:      at,
				Recover: at + rec,
			})
		}
	}
	sort.Slice(p.crashes, func(i, j int) bool {
		if p.crashes[i].At != p.crashes[j].At {
			return p.crashes[i].At < p.crashes[j].At
		}
		return p.crashes[i].Node < p.crashes[j].Node
	})
	p.outages = append(p.outages, cfg.Outages...)
	return p, nil
}

// MustNew is New for static schedules known to be valid (tests, benches).
func MustNew(cfg Config, nodes int) *Plan {
	p, err := New(cfg, nodes)
	if err != nil {
		panic(err)
	}
	return p
}

// Seed returns the schedule's seed (labels trace sections and tables).
func (p *Plan) Seed() int64 { return p.cfg.Seed }

// Spec returns the speculative-execution settings with defaults filled.
func (p *Plan) Spec() Speculation {
	s := p.cfg.Spec
	if s.Threshold <= 0 {
		s.Threshold = 2.0
	}
	return s
}

// NodeDown reports whether the node is inside a crash window at virtual
// time t.
func (p *Plan) NodeDown(n sim.NodeID, t float64) bool {
	for _, c := range p.crashes {
		if c.Node == n && t >= c.At && t < c.Recover {
			return true
		}
	}
	return false
}

// CrashesIn returns the crash events with At inside [t0, t1), in
// deterministic (At, Node) order. The engine calls it once per phase to
// find the crashes that phase must absorb.
func (p *Plan) CrashesIn(t0, t1 float64) []Crash {
	var out []Crash
	for _, c := range p.crashes {
		if c.At >= t0 && c.At < t1 {
			out = append(out, c)
		}
	}
	return out
}

// HasOutages reports whether any partition outage is scheduled, letting
// the index client skip the availability stage entirely on chaos-free
// plans.
func (p *Plan) HasOutages() bool { return len(p.outages) > 0 }

// PartitionDown reports whether the named index's partition is inside an
// outage window at virtual time t.
func (p *Plan) PartitionDown(ix string, partition int, t float64) bool {
	for _, o := range p.outages {
		if o.Index != ix {
			continue
		}
		if o.Partition >= 0 && o.Partition != partition {
			continue
		}
		if t >= o.From && t < o.Until {
			return true
		}
	}
	return false
}

// SlowFactor returns the duration multiplier chaos injects for one task
// of one phase (1 = untouched). The draw is a pure function of (seed,
// phase sequence number, task index), so it does not depend on execution
// order — serial and parallel runs slow the same tasks.
func (p *Plan) SlowFactor(phaseSeq, task int) float64 {
	if p.cfg.StragglerRate <= 0 {
		return 1
	}
	h := mix(p.cfg.Seed, int64(phaseSeq)<<32|int64(uint32(task)))
	u := float64(uint64(h)>>11) / float64(1<<53) // uniform [0,1)
	if u >= p.cfg.StragglerRate {
		return 1
	}
	f := p.cfg.StragglerFactor
	if f <= 1 {
		f = 4
	}
	return f
}

// Backoff is the deterministic capped-exponential backoff policy shared
// by the ixclient retry middleware: attempt k (0-based) waits
// min(Base·Factor^k, Cap) scaled by a seeded jitter in [1-Jitter,
// 1+Jitter]. The jitter is a pure function of (seed, token, attempt), so
// two tasks backing off against the same recovering partition desynchronize
// — no retry storm — yet every run of the same schedule waits identical
// times.
type Backoff struct {
	Base   float64
	Factor float64
	Cap    float64
	Jitter float64
	Seed   int64
}

// Wait returns the virtual seconds to back off before re-attempt number
// attempt (0-based), desynchronized by token (typically the lookup key).
func (b Backoff) Wait(token string, attempt int) float64 {
	base, factor := b.Base, b.Factor
	if base <= 0 {
		return 0
	}
	if factor <= 0 {
		factor = 2
	}
	d := base * math.Pow(factor, float64(attempt))
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if b.Jitter > 0 {
		h := fnv.New64a()
		h.Write([]byte(token))
		u := float64(uint64(mix(b.Seed, int64(h.Sum64())^int64(attempt)))>>11) / float64(1<<53)
		d *= 1 + b.Jitter*(2*u-1)
	}
	return d
}

// Mix derives an independent deterministic stream from seed and salt —
// the exported form of mix, for callers (like the job service's backoff
// seeding) that need the same derivation outside this package.
func Mix(seed, salt int64) int64 {
	return mix(seed, salt)
}

// mix is SplitMix64 over the xor of the two operands — a cheap, well
// distributed way to derive independent deterministic streams from one
// seed.
func mix(seed, salt int64) int64 {
	z := uint64(seed) ^ (uint64(salt) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
