package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"efind/internal/vfs"
)

func writeVia(t *testing.T, fs vfs.FS, path string, chunks ...[]byte) error {
	t.Helper()
	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	for _, c := range chunks {
		if n, err := f.Write(c); err != nil {
			f.Close()
			return err
		} else if n != len(c) {
			f.Close()
			return errors.New("short write reported honestly")
		}
	}
	return f.Close()
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(vfs.OS{}, FileFault{Kind: TornWrite, Match: "victim"})
	path := filepath.Join(dir, "victim.dat")
	err := writeVia(t, ffs, path, []byte("0123456789"))
	if !errors.Is(err, ErrIO) {
		t.Fatalf("torn write error = %v, want ErrIO", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "01234" {
		t.Fatalf("torn write left %q on disk, want the half prefix", got)
	}
	if inj := ffs.Injected(); len(inj) != 1 {
		t.Fatalf("Injected() = %v, want one entry", inj)
	}
}

func TestFaultFSShortWriteLies(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(vfs.OS{}, FileFault{Kind: ShortWrite, Match: "victim"})
	path := filepath.Join(dir, "victim.dat")
	if err := writeVia(t, ffs, path, []byte("0123456789")); err != nil {
		t.Fatalf("a lying short write must report success, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "01234" {
		t.Fatalf("short write left %q on disk, want the half prefix", got)
	}
}

func TestFaultFSNoSpace(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(vfs.OS{}, FileFault{Kind: NoSpace, Match: ""})
	path := filepath.Join(dir, "any.dat")
	err := writeVia(t, ffs, path, []byte("data"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("error = %v, want ErrNoSpace", err)
	}
	got, _ := os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("ENOSPC wrote %q, want nothing", got)
	}
}

func TestFaultFSRenameFailAndNth(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(vfs.OS{},
		FileFault{Kind: RenameFail, Match: "target", Nth: 2})
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// First matching rename passes, second fails, third passes (one-shot).
	if err := ffs.Rename(mk("a"), filepath.Join(dir, "target-1")); err != nil {
		t.Fatalf("rename 1: %v", err)
	}
	if err := ffs.Rename(mk("b"), filepath.Join(dir, "target-2")); !errors.Is(err, ErrIO) {
		t.Fatalf("rename 2 = %v, want ErrIO", err)
	}
	if err := ffs.Rename(mk("c"), filepath.Join(dir, "target-3")); err != nil {
		t.Fatalf("rename 3: %v", err)
	}
	// Non-matching destinations are never touched.
	if err := ffs.Rename(mk("d"), filepath.Join(dir, "other")); err != nil {
		t.Fatalf("non-matching rename: %v", err)
	}
}

func TestFaultFSWriteFaultsCountPerMatch(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(vfs.OS{},
		FileFault{Kind: TornWrite, Match: "wal", Nth: 3})
	// Writes to non-matching files do not advance the counter.
	if err := writeVia(t, ffs, filepath.Join(dir, "other.dat"), []byte("aa"), []byte("bb"), []byte("cc")); err != nil {
		t.Fatalf("non-matching writes: %v", err)
	}
	err := writeVia(t, ffs, filepath.Join(dir, "seg.wal"), []byte("11"), []byte("22"), []byte("33"))
	if !errors.Is(err, ErrIO) {
		t.Fatalf("third matching write = %v, want ErrIO", err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "seg.wal"))
	if string(got) != "11223" {
		t.Fatalf("disk holds %q, want the first two writes plus the torn half", got)
	}
}

func TestSeededFaultsDeterministic(t *testing.T) {
	a := SeededFaults(42, 5, ".wal")
	b := SeededFaults(42, 5, ".wal")
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("want 5 faults, got %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across same-seed derivations: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Nth < 1 {
			t.Fatalf("fault %d has Nth %d < 1", i, a[i].Nth)
		}
	}
	c := SeededFaults(43, 5, ".wal")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
