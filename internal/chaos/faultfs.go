package chaos

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"efind/internal/vfs"
)

// Storage fault injection: a vfs.FS wrapper that applies a deterministic
// schedule of write-path faults, so the durability layer (internal/wal
// appends, fstore atomic snapshot writes) can be driven through every
// failure mode a real disk exhibits — without touching the wall clock or
// the real filesystem's error behaviour. Like the rest of the package it
// is passive and reproducible: the same schedule against the same write
// sequence injects the same faults.

// FaultKind is one storage failure mode.
type FaultKind int

// Storage fault kinds.
const (
	// TornWrite writes a prefix of the buffer, then fails: the classic
	// crash-mid-write profile a journal tail or temp file absorbs.
	TornWrite FaultKind = iota
	// ShortWrite writes a prefix of the buffer but LIES, reporting full
	// success — the firmware-eats-your-data profile only read-back
	// verification catches.
	ShortWrite
	// NoSpace fails the write outright with ErrNoSpace, writing nothing.
	NoSpace
	// RenameFail fails the atomic-commit rename with ErrIO.
	RenameFail
)

func (k FaultKind) String() string {
	switch k {
	case TornWrite:
		return "torn-write"
	case ShortWrite:
		return "short-write"
	case NoSpace:
		return "enospc"
	case RenameFail:
		return "rename-fail"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Injected storage errors.
var (
	// ErrNoSpace is the injected out-of-space write failure.
	ErrNoSpace = errors.New("chaos: no space left on device (injected)")
	// ErrIO is the injected generic I/O failure (torn writes, renames).
	ErrIO = errors.New("chaos: input/output error (injected)")
)

// FileFault schedules one storage fault: the Nth (1-based) matching
// operation fails with Kind. Write-kind faults count Write calls on
// files whose name contains Match; RenameFail counts Rename calls whose
// destination contains Match. An empty Match matches everything.
type FileFault struct {
	Kind  FaultKind
	Match string
	// Nth selects which matching operation fails (0 = 1 = the first).
	Nth int
}

func (f FileFault) nth() int {
	if f.Nth <= 0 {
		return 1
	}
	return f.Nth
}

// FaultFS wraps a vfs.FS with a deterministic fault schedule. Safe for
// concurrent use; each scheduled fault fires exactly once.
type FaultFS struct {
	inner  vfs.FS
	mu     sync.Mutex
	faults []faultState
	log    []string
}

type faultState struct {
	f     FileFault
	seen  int
	fired bool
}

// NewFaultFS wraps inner with the given schedule.
func NewFaultFS(inner vfs.FS, faults ...FileFault) *FaultFS {
	fs := &FaultFS{inner: inner}
	for _, f := range faults {
		fs.faults = append(fs.faults, faultState{f: f})
	}
	return fs
}

// SeededFaults derives a deterministic n-fault schedule from a seed: the
// kinds cycle through the failure modes in a seed-dependent rotation and
// each fault arms against a distinct ordinal write. It gives fuzz and
// matrix tests varied-but-reproducible damage without hand-written
// schedules.
func SeededFaults(seed int64, n int, match string) []FileFault {
	kinds := []FaultKind{TornWrite, ShortWrite, NoSpace, RenameFail}
	out := make([]FileFault, 0, n)
	for i := 0; i < n; i++ {
		h := uint64(mix(seed, int64(i)+1))
		out = append(out, FileFault{
			Kind:  kinds[h%uint64(len(kinds))],
			Match: match,
			Nth:   int(h>>32%4) + 1 + i,
		})
	}
	return out
}

// Injected returns a description of every fault that has fired, in
// firing order.
func (c *FaultFS) Injected() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.log))
	copy(out, c.log)
	return out
}

// arm checks whether an operation on name should fail with one of the
// given kinds, consuming the scheduled fault if so.
func (c *FaultFS) arm(name string, kinds ...FaultKind) (FaultKind, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.faults {
		st := &c.faults[i]
		if st.fired {
			continue
		}
		match := false
		for _, k := range kinds {
			if st.f.Kind == k {
				match = true
			}
		}
		if !match || !strings.Contains(name, st.f.Match) {
			continue
		}
		st.seen++
		if st.seen == st.f.nth() {
			st.fired = true
			c.log = append(c.log, fmt.Sprintf("%s on %s (op %d)", st.f.Kind, name, st.seen))
			return st.f.Kind, true
		}
	}
	return 0, false
}

// MkdirAll implements vfs.FS.
func (c *FaultFS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

// CreateTemp implements vfs.FS.
func (c *FaultFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	f, err := c.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: c, f: f}, nil
}

// OpenAppend implements vfs.FS.
func (c *FaultFS) OpenAppend(path string) (vfs.File, error) {
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: c, f: f}, nil
}

// Rename implements vfs.FS.
func (c *FaultFS) Rename(oldpath, newpath string) error {
	if _, hit := c.arm(newpath, RenameFail); hit {
		return fmt.Errorf("rename %s: %w", newpath, ErrIO)
	}
	return c.inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS.
func (c *FaultFS) Remove(path string) error { return c.inner.Remove(path) }

// ReadFile implements vfs.FS.
func (c *FaultFS) ReadFile(path string) ([]byte, error) { return c.inner.ReadFile(path) }

// ReadDir implements vfs.FS.
func (c *FaultFS) ReadDir(dir string) ([]string, error) { return c.inner.ReadDir(dir) }

// faultFile interposes the write-path faults on one file handle.
type faultFile struct {
	fs *FaultFS
	f  vfs.File
}

func (w *faultFile) Write(p []byte) (int, error) {
	kind, hit := w.fs.arm(w.f.Name(), TornWrite, ShortWrite, NoSpace)
	if !hit {
		return w.f.Write(p)
	}
	switch kind {
	case TornWrite:
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("write %s: %w", w.f.Name(), ErrIO)
	case ShortWrite:
		if _, err := w.f.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil // the lie: half the bytes, full success
	default: // NoSpace
		return 0, fmt.Errorf("write %s: %w", w.f.Name(), ErrNoSpace)
	}
}

func (w *faultFile) Sync() error  { return w.f.Sync() }
func (w *faultFile) Close() error { return w.f.Close() }
func (w *faultFile) Name() string { return w.f.Name() }
