package chaos

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"efind/internal/index"
	"efind/internal/sim"
)

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []Config{
		{Crashes: []Crash{{Node: 1, At: 5, Recover: 3}}},
		{Outages: []Outage{{Index: "kv", From: 2, Until: 1}}},
		{StragglerRate: 1.5},
		{StragglerRate: -0.1},
		{CrashCount: 2, CrashFrom: 3, CrashUntil: 3},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, 4); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
	if _, err := New(Config{}, 0); err == nil {
		t.Errorf("zero nodes accepted, want error")
	}
}

func TestRandomCrashesDeterministicInSeed(t *testing.T) {
	cfg := Config{Seed: 7, CrashCount: 3, CrashFrom: 1, CrashUntil: 9, CrashRecovery: 2}
	a := MustNew(cfg, 8)
	b := MustNew(cfg, 8)
	if !reflect.DeepEqual(a.crashes, b.crashes) {
		t.Fatalf("same seed, different crash schedules:\n%v\n%v", a.crashes, b.crashes)
	}
	c := MustNew(Config{Seed: 8, CrashCount: 3, CrashFrom: 1, CrashUntil: 9, CrashRecovery: 2}, 8)
	if reflect.DeepEqual(a.crashes, c.crashes) {
		t.Fatalf("different seeds produced identical crash schedules: %v", a.crashes)
	}
	for _, cr := range a.crashes {
		if cr.At < 1 || cr.At >= 9 {
			t.Errorf("crash at %g outside window [1,9)", cr.At)
		}
		if cr.Recover != cr.At+2 {
			t.Errorf("crash at %g recovers at %g, want At+2", cr.At, cr.Recover)
		}
	}
}

func TestNodeDownAndCrashesIn(t *testing.T) {
	p := MustNew(Config{Crashes: []Crash{
		{Node: 2, At: 5, Recover: 8},
		{Node: 0, At: 12, Recover: 20},
	}}, 4)
	if p.NodeDown(2, 4.9) || !p.NodeDown(2, 5) || !p.NodeDown(2, 7.9) || p.NodeDown(2, 8) {
		t.Fatalf("crash window [5,8) of node 2 misevaluated")
	}
	if p.NodeDown(1, 6) {
		t.Fatalf("node 1 never crashes")
	}
	got := p.CrashesIn(0, 10)
	if len(got) != 1 || got[0].Node != 2 {
		t.Fatalf("CrashesIn(0,10) = %v, want the node-2 crash only", got)
	}
	if got := p.CrashesIn(5, 5); len(got) != 0 {
		t.Fatalf("empty window returned crashes: %v", got)
	}
}

func TestPartitionDownScoping(t *testing.T) {
	p := MustNew(Config{Outages: []Outage{
		{Index: "kv", Partition: 3, From: 1, Until: 4},
		{Index: "geo", Partition: -1, From: 2, Until: math.Inf(1)},
	}}, 4)
	if !p.HasOutages() {
		t.Fatalf("HasOutages = false with two outages")
	}
	if !p.PartitionDown("kv", 3, 1) || p.PartitionDown("kv", 3, 4) {
		t.Fatalf("kv[3] window [1,4) misevaluated")
	}
	if p.PartitionDown("kv", 2, 2) {
		t.Fatalf("kv[2] reported down; outage scoped to partition 3")
	}
	// Partition -1 takes every partition of the index down, forever.
	if !p.PartitionDown("geo", 0, 2) || !p.PartitionDown("geo", 9, 1e12) {
		t.Fatalf("whole-index outage of geo misevaluated")
	}
	if p.PartitionDown("other", 0, 2) {
		t.Fatalf("outage leaked to an unrelated index")
	}
}

func TestSlowFactorPureAndRateGated(t *testing.T) {
	p := MustNew(Config{Seed: 3, StragglerRate: 0.3, StragglerFactor: 5}, 4)
	slowed := 0
	for task := 0; task < 1000; task++ {
		f := p.SlowFactor(1, task)
		if f != p.SlowFactor(1, task) {
			t.Fatalf("SlowFactor not pure for task %d", task)
		}
		switch f {
		case 1:
		case 5:
			slowed++
		default:
			t.Fatalf("SlowFactor(1,%d) = %g, want 1 or 5", task, f)
		}
	}
	// ~30% of 1000 draws; a wide band keeps the test seed-robust.
	if slowed < 200 || slowed > 400 {
		t.Fatalf("slowed %d of 1000 tasks, want ≈300", slowed)
	}
	none := MustNew(Config{Seed: 3}, 4)
	if f := none.SlowFactor(1, 7); f != 1 {
		t.Fatalf("zero rate slowed a task: %g", f)
	}
}

func TestSpecDefaults(t *testing.T) {
	p := MustNew(Config{Spec: Speculation{Enabled: true}}, 4)
	if s := p.Spec(); !s.Enabled || s.Threshold != 2.0 {
		t.Fatalf("Spec() = %+v, want Enabled with Threshold 2.0", s)
	}
}

func TestBackoffCapJitterDeterminism(t *testing.T) {
	plain := Backoff{Base: 0.1, Factor: 2}
	for k, want := range []float64{0.1, 0.2, 0.4, 0.8} {
		if got := plain.Wait("key", k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("plain Wait(%d) = %g, want %g", k, got, want)
		}
	}
	capped := Backoff{Base: 0.1, Factor: 2, Cap: 0.25}
	if got := capped.Wait("key", 5); got != 0.25 {
		t.Fatalf("capped Wait(5) = %g, want 0.25", got)
	}
	j := Backoff{Base: 0.1, Factor: 2, Cap: 0.25, Jitter: 0.5, Seed: 11}
	if a, b := j.Wait("key", 2), j.Wait("key", 2); a != b {
		t.Fatalf("jittered Wait not deterministic: %g vs %g", a, b)
	}
	if a, b := j.Wait("key", 2), j.Wait("other", 2); a == b {
		t.Fatalf("jitter did not desynchronize distinct tokens: both %g", a)
	}
	lo, hi := 0.25*0.5, 0.25*1.5
	for _, tok := range []string{"a", "b", "c", "d"} {
		if w := j.Wait(tok, 5); w < lo || w > hi {
			t.Fatalf("jittered Wait(%q) = %g outside [%g,%g]", tok, w, lo, hi)
		}
	}
	if w := (Backoff{}).Wait("key", 3); w != 0 {
		t.Fatalf("zero Backoff waited %g, want 0", w)
	}
}

func TestErrUnavailableIsTransient(t *testing.T) {
	// The retry middleware only re-attempts transient errors; an outage
	// must be one so the backoff ladder can poll for the window's end.
	if !errors.Is(ErrUnavailable, index.ErrTransient) {
		t.Fatalf("ErrUnavailable must wrap index.ErrTransient")
	}
}

func TestPlanSafeForConcurrentReads(t *testing.T) {
	p := MustNew(Config{Seed: 5, CrashCount: 4, CrashFrom: 0, CrashUntil: 10, CrashRecovery: 3,
		StragglerRate: 0.5, Outages: []Outage{{Index: "kv", Partition: 1, From: 2, Until: 6}}}, 6)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				p.NodeDown(sim.NodeID(i%6), float64(i)/50)
				p.PartitionDown("kv", i%4, float64(i)/50)
				p.SlowFactor(g, i)
				p.CrashesIn(0, float64(i))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
