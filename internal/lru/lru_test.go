package lru

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestGetMissThenHit(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("a", []string{"1"})
	v, ok := c.Get("a")
	if !ok || len(v) != 1 || v[0] != "1" {
		t.Fatalf("want hit with [1], got %v %v", v, ok)
	}
}

func TestEvictsLRU(t *testing.T) {
	c := New(2)
	c.Put("a", nil)
	c.Put("b", nil)
	c.Get("a") // promote a; b is now LRU
	c.Put("c", nil)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(2)
	c.Put("a", []string{"old"})
	c.Put("a", []string{"new"})
	if c.Len() != 1 {
		t.Fatalf("re-put should not grow cache, len=%d", c.Len())
	}
	v, _ := c.Get("a")
	if v[0] != "new" {
		t.Fatalf("want refreshed value, got %v", v)
	}
}

func TestLenNeverExceedsCapacity(t *testing.T) {
	c := New(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), nil)
		if c.Len() > 8 {
			t.Fatalf("len %d exceeds capacity 8", c.Len())
		}
	}
}

func TestMissRatio(t *testing.T) {
	c := New(4)
	if got := c.MissRatio(); got != 1 {
		t.Fatalf("unprobed cache should report pessimistic ratio 1, got %g", got)
	}
	c.Get("a") // miss
	c.Put("a", nil)
	c.Get("a") // hit
	c.Get("a") // hit
	c.Get("b") // miss
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", hits, misses)
	}
	if got := c.MissRatio(); got != 0.5 {
		t.Fatalf("miss ratio = %g, want 0.5", got)
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.Put("a", nil)
	c.Get("a")
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset should empty the cache")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("reset should clear stats")
	}
}

func TestCapacityClamped(t *testing.T) {
	c := New(0)
	c.Put("a", nil)
	if c.Capacity() != 1 || c.Len() != 1 {
		t.Fatalf("capacity clamp failed: cap=%d len=%d", c.Capacity(), c.Len())
	}
}

// Property: after any Put sequence, the most recently put key is always
// retrievable and Len <= Capacity.
func TestRecentKeyAlwaysPresent(t *testing.T) {
	f := func(keys []string, capRaw uint8) bool {
		if len(keys) == 0 {
			return true
		}
		c := New(int(capRaw%16) + 1)
		for _, k := range keys {
			c.Put(k, []string{k})
			if _, ok := c.Get(k); !ok {
				return false
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
