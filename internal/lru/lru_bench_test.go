package lru

import (
	"fmt"
	"testing"
)

// BenchmarkGetPutMixed mimics the lookup-cache access pattern: probe, and
// fill on miss, with a working set 4x the capacity.
func BenchmarkGetPutMixed(b *testing.B) {
	c := New(1024)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("ik-%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[(i*2654435761)%len(keys)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, []string{"v"})
		}
	}
}

func BenchmarkGetHot(b *testing.B) {
	c := New(1024)
	c.Put("hot", []string{"v"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get("hot")
	}
}
