// Package lru provides the fixed-capacity, LRU-evicting lookup cache used
// by EFind's lookup-cache strategy (§3.2). The paper fixes the capacity at
// 1024 index key/value entries; capacity sweeps are exposed as an ablation.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a string-keyed LRU cache. It is safe for concurrent use: the
// EFind runtime shares one cache per machine across all of that machine's
// tasks, and the parallel executor runs tasks of different machines on
// different goroutines. (Tasks of the same machine are serialized by the
// executor, so the lock is uncontended in practice; it exists so that the
// structure is safe no matter how callers schedule around it.)
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	hits   int64
	misses int64

	// journal, when non-nil, records inverse operations for the open
	// Undo (see journal.go). Nil on the untouched hot path.
	journal *Undo
}

type entry struct {
	key    string
	values []string
}

// New returns a cache holding up to capacity entries. Capacity is clamped
// to at least 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached lookup result for key and whether it was present,
// promoting the entry to most-recently-used on a hit.
func (c *Cache) Get(key string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		if j := c.journal; j != nil {
			op := undoOp{kind: opGetHit, key: key}
			recordMove(&op, el)
			j.ops = append(j.ops, op)
		}
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).values, true
	}
	// A miss touches only the counters, which Rollback restores from the
	// Begin-time snapshot — nothing to journal.
	c.misses++
	return nil, false
}

// Put stores the lookup result for key, evicting the least-recently-used
// entry if the cache is full. Re-putting an existing key refreshes it.
func (c *Cache) Put(key string, values []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		if j := c.journal; j != nil {
			op := undoOp{kind: opPutUpdate, key: key, values: el.Value.(*entry).values}
			recordMove(&op, el)
			j.ops = append(j.ops, op)
		}
		c.ll.MoveToFront(el)
		el.Value.(*entry).values = values
		return
	}
	el := c.ll.PushFront(&entry{key: key, values: values})
	c.items[key] = el
	op := undoOp{kind: opPutNew, key: key}
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			victim := oldest.Value.(*entry)
			op.evict, op.evictedKey, op.values = true, victim.key, victim.values
			c.ll.Remove(oldest)
			delete(c.items, victim.key)
		}
	}
	if j := c.journal; j != nil {
		j.ops = append(j.ops, op)
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the configured maximum entry count.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns the hit and miss counts since creation or the last Reset.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// MissRatio returns misses/(hits+misses), the paper's R term, or 1 if the
// cache has never been probed (a pessimistic prior).
func (c *Cache) MissRatio() float64 {
	hits, misses := c.Stats()
	total := hits + misses
	if total == 0 {
		return 1
	}
	return float64(misses) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
}

func (c *Cache) reset() {
	c.ll = list.New()
	c.items = make(map[string]*list.Element, c.capacity)
	c.hits, c.misses = 0, 0
	// A wholesale rewind invalidates any open journal: rolling back
	// operations recorded against the discarded list would corrupt state.
	if c.journal != nil {
		c.journal.active = false
		c.journal = nil
	}
}

// Snapshot is a point-in-time copy of a cache's entries and statistics,
// used by the MapReduce engine's fault tolerance: a failed task attempt
// pollutes its node's shared caches, and restoring the pre-attempt
// snapshot keeps the measured miss ratio R honest for the re-execution.
type Snapshot struct {
	keys   []string // oldest → newest
	values [][]string
	hits   int64
	misses int64
}

// Snapshot captures the cache's current entries (in recency order) and
// hit/miss statistics. Entry values are shared, not deep-copied: the cache
// never mutates stored value slices in place.
func (c *Cache) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Snapshot{
		keys:   make([]string, 0, c.ll.Len()),
		values: make([][]string, 0, c.ll.Len()),
		hits:   c.hits,
		misses: c.misses,
	}
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		s.keys = append(s.keys, e.key)
		s.values = append(s.values, e.values)
	}
	return s
}

// Dump returns the cache's entries in recency order (oldest → newest)
// plus its hit/miss statistics — the serializable form of a Snapshot,
// used by the job service's checkpoint writer. Values are shared, not
// deep-copied, like Snapshot.
func (c *Cache) Dump() (keys []string, values [][]string, hits, misses int64) {
	s := c.Snapshot()
	return s.keys, s.values, s.hits, s.misses
}

// Load replaces the cache's contents and statistics with a previously
// dumped state: keys oldest → newest, so recency order round-trips.
func (c *Cache) Load(keys []string, values [][]string, hits, misses int64) {
	c.Restore(&Snapshot{keys: keys, values: values, hits: hits, misses: misses})
}

// Restore rewinds the cache to a snapshot taken from it (or from a cache
// of the same capacity).
func (c *Cache) Restore(s *Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
	for i, k := range s.keys {
		el := c.ll.PushFront(&entry{key: k, values: s.values[i]})
		c.items[k] = el
	}
	c.hits, c.misses = s.hits, s.misses
}
