// Package lru provides the fixed-capacity, LRU-evicting lookup cache used
// by EFind's lookup-cache strategy (§3.2). The paper fixes the capacity at
// 1024 index key/value entries; capacity sweeps are exposed as an ablation.
package lru

import "container/list"

// Cache is a string-keyed LRU cache. It is not safe for concurrent use;
// callers that share a cache across tasks must synchronize (the EFind
// runtime does).
type Cache struct {
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	hits   int64
	misses int64
}

type entry struct {
	key    string
	values []string
}

// New returns a cache holding up to capacity entries. Capacity is clamped
// to at least 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached lookup result for key and whether it was present,
// promoting the entry to most-recently-used on a hit.
func (c *Cache) Get(key string) ([]string, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).values, true
	}
	c.misses++
	return nil, false
}

// Put stores the lookup result for key, evicting the least-recently-used
// entry if the cache is full. Re-putting an existing key refreshes it.
func (c *Cache) Put(key string, values []string) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).values = values
		return
	}
	el := c.ll.PushFront(&entry{key: key, values: values})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry).key)
		}
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int { return c.ll.Len() }

// Capacity returns the configured maximum entry count.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns the hit and miss counts since creation or the last Reset.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// MissRatio returns misses/(hits+misses), the paper's R term, or 1 if the
// cache has never been probed (a pessimistic prior).
func (c *Cache) MissRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 1
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.ll = list.New()
	c.items = make(map[string]*list.Element, c.capacity)
	c.hits, c.misses = 0, 0
}
