package lru

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// dump returns the cache's full observable state: entries oldest→newest
// with their values, plus hit/miss counters. Comparing dumps compares
// recency order, contents, and statistics at once.
func dump(c *Cache) []string {
	var out []string
	hits, misses := c.Stats()
	out = append(out, fmt.Sprintf("hits=%d misses=%d", hits, misses))
	s := c.Snapshot()
	for i, k := range s.keys {
		out = append(out, fmt.Sprintf("%s=%v", k, s.values[i]))
	}
	return out
}

// applyRandom performs n random Get/Put operations drawn from rng.
func applyRandom(c *Cache, rng *rand.Rand, n, keyDomain int) {
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(keyDomain))
		if rng.Intn(2) == 0 {
			c.Get(key)
		} else {
			c.Put(key, []string{fmt.Sprintf("v%d", rng.Intn(100))})
		}
	}
}

// TestJournalRollbackMatchesSnapshot is the property test: for random
// operation streams, Begin + ops + Rollback restores exactly the state an
// eager Snapshot captured at Begin — entries, recency order, and
// statistics — across many seeds and capacities (including ones small
// enough to force evictions through the journal's reinsert path).
func TestJournalRollbackMatchesSnapshot(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, capacity := range []int{1, 3, 8, 64} {
			rng := rand.New(rand.NewSource(seed))
			c := New(capacity)
			applyRandom(c, rng, 200, 16)
			want := dump(c)

			u := c.Begin()
			applyRandom(c, rng, 200, 16)
			u.Rollback()

			if got := dump(c); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d cap %d: rollback diverged from snapshot\n got %v\nwant %v", seed, capacity, got, want)
			}
		}
	}
}

// TestJournalCommitKeepsState verifies Commit releases the journal
// without rewinding, and that a later Rollback on the committed handle is
// inert.
func TestJournalCommitKeepsState(t *testing.T) {
	c := New(4)
	c.Put("a", []string{"1"})
	u := c.Begin()
	c.Put("b", []string{"2"})
	u.Commit()
	want := dump(c)
	u.Rollback() // must be a no-op
	if got := dump(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("rollback after commit mutated state: %v vs %v", got, want)
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("committed entry lost")
	}
}

// TestJournalSupersededByNewBegin: the engine takes one guard per attempt
// and never resolves two on the same cache concurrently; a fresh Begin
// voids any stale journal so its late Rollback cannot corrupt state.
func TestJournalSupersededByNewBegin(t *testing.T) {
	c := New(4)
	c.Put("a", []string{"1"})
	stale := c.Begin()
	c.Put("b", []string{"2"})
	fresh := c.Begin() // supersedes stale
	c.Put("c", []string{"3"})
	stale.Rollback() // inert: must not touch anything
	if _, ok := c.Get("c"); !ok {
		t.Fatal("inert rollback removed a fresh entry")
	}
	fresh.Rollback()
	if _, ok := c.Get("c"); ok {
		t.Fatal("live rollback kept the fresh entry")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("rollback of the fresh journal rewound past its Begin")
	}
}

// TestJournalResetVoidsJournal: Reset (node crash semantics) invalidates
// an open journal instead of letting a later rollback resurrect entries.
func TestJournalResetVoidsJournal(t *testing.T) {
	c := New(4)
	c.Put("a", []string{"1"})
	u := c.Begin()
	c.Put("b", []string{"2"})
	c.Reset()
	u.Rollback() // inert
	if c.Len() != 0 {
		t.Fatalf("rollback across Reset resurrected %d entries", c.Len())
	}
}

// TestJournalCrossJobIsolation is the cross-job property: job B's entries
// written before job A's guard survive A's rollback untouched — value
// identity and recency order included — while A's writes disappear.
func TestJournalCrossJobIsolation(t *testing.T) {
	c := New(128)
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("jobB/%d", i), []string{fmt.Sprintf("b%d", i)})
	}
	want := dump(c)

	u := c.Begin()
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("jobA/%d", i), []string{"a"})
		c.Get(fmt.Sprintf("jobB/%d", i%7)) // A probing shared entries
	}
	u.Rollback()

	if got := dump(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("job A's rollback disturbed job B's entries\n got %v\nwant %v", got, want)
	}
}

// TestJournalConcurrentPerNodeGuards models the parallel executor: one
// cache per node, each node's goroutine running guard/ops/rollback-or-
// commit cycles concurrently with the others. Run under -race this proves
// the journal adds no unsynchronized state; the per-node assertions prove
// no cross-cache interference.
func TestJournalConcurrentPerNodeGuards(t *testing.T) {
	const nodes = 16
	caches := make([]*Cache, nodes)
	for i := range caches {
		caches[i] = New(32)
	}
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(n)))
			c := caches[n]
			applyRandom(c, rng, 100, 12)
			for attempt := 0; attempt < 20; attempt++ {
				before := dump(c)
				u := c.Begin()
				applyRandom(c, rng, 50, 12)
				if attempt%3 == 0 {
					u.Commit()
					continue
				}
				u.Rollback()
				if got := dump(c); !reflect.DeepEqual(got, before) {
					errs <- fmt.Errorf("node %d attempt %d: rollback diverged", n, attempt)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
