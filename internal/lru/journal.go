package lru

import "container/list"

// Journal-based undo: Begin starts recording inverse operations, and the
// returned Undo rewinds them LIFO on Rollback. This replaces the eager
// Snapshot/Restore pair on the engine's fault-tolerance path: a task
// attempt guard is O(1) at Begin plus O(ops during the attempt) at
// Rollback, instead of O(cache entries) per guard — the difference
// between guarding 1024-entry caches across 10k nodes and not being able
// to afford it (see BenchmarkSnapshotVsJournal).
//
// A cache records into at most one journal. A new Begin supersedes any
// journal still open — the superseded Undo becomes inert (its Rollback
// and Commit are no-ops) — matching the engine's attempt discipline: a
// node runs one attempt at a time, and each attempt's guard is taken
// before the next attempt starts. Reset and Restore also void an open
// journal, since a rollback across a wholesale rewind is meaningless.

const (
	opGetHit uint8 = iota
	opPutNew
	opPutUpdate
)

// undoOp is one recorded inverse operation. Element positions are stored
// as predecessor keys, not *list.Element pointers: an eviction undo
// reinserts a fresh element, so pointers recorded earlier would go stale,
// while keys always resolve through the items map at rollback time.
type undoOp struct {
	kind       uint8
	front      bool // the moved element had no predecessor (was front)
	evict      bool // opPutNew: the insert evicted the LRU entry
	key        string
	prevKey    string   // predecessor of key before a move (when !front)
	evictedKey string   // opPutNew+evict: the evicted key
	values     []string // opPutUpdate: prior values; opPutNew+evict: evicted values
}

// Undo rewinds a cache to its state at the matching Begin.
type Undo struct {
	c      *Cache
	ops    []undoOp
	hits   int64
	misses int64
	active bool
}

// Begin starts journaling and returns the handle that rewinds (Rollback)
// or releases (Commit) everything recorded after this point. Any journal
// still open on the cache is superseded and becomes inert.
func (c *Cache) Begin() *Undo {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		c.journal.active = false
	}
	u := &Undo{c: c, hits: c.hits, misses: c.misses, active: true}
	c.journal = u
	return u
}

// Rollback rewinds the cache — entries, recency order, and hit/miss
// statistics — to its state at Begin, and stops journaling. No-op if this
// journal was superseded, committed, or already rolled back.
func (u *Undo) Rollback() {
	c := u.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !u.active {
		return
	}
	u.active = false
	c.journal = nil
	for i := len(u.ops) - 1; i >= 0; i-- {
		op := &u.ops[i]
		switch op.kind {
		case opGetHit:
			if !op.front {
				c.ll.MoveAfter(c.items[op.key], c.items[op.prevKey])
			}
		case opPutUpdate:
			el := c.items[op.key]
			el.Value.(*entry).values = op.values
			if !op.front {
				c.ll.MoveAfter(el, c.items[op.prevKey])
			}
		case opPutNew:
			el := c.items[op.key]
			c.ll.Remove(el)
			delete(c.items, op.key)
			if op.evict {
				c.items[op.evictedKey] = c.ll.PushBack(&entry{key: op.evictedKey, values: op.values})
			}
		}
	}
	c.hits, c.misses = u.hits, u.misses
}

// Commit releases the journal without rewinding: the recorded operations
// stand, and the cache stops journaling. No-op if superseded or resolved.
func (u *Undo) Commit() {
	c := u.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !u.active {
		return
	}
	u.active = false
	c.journal = nil
	u.ops = nil
}

// recordMove captures the pre-move position of el (by predecessor key)
// into op. Caller holds c.mu.
func recordMove(op *undoOp, el *list.Element) {
	if p := el.Prev(); p != nil {
		op.prevKey = p.Value.(*entry).key
	} else {
		op.front = true
	}
}
