// Package dfs is an in-memory stand-in for HDFS: files are sequences of
// replicated chunks with locality metadata. MapReduce input splits map
// one-to-one onto chunks, and the scheduler uses chunk replica locations
// for data-locality placement, exactly the information the paper's cost
// model consumes (split locality and the f-per-byte materialization cost).
package dfs

import (
	"fmt"
	"sort"
	"sync"

	"efind/internal/sim"
)

// Record is one key/value record stored in a file. The MapReduce layer
// reads chunks record by record.
type Record struct {
	Key   string
	Value string
}

// Size returns the payload size in bytes of the record (key + value plus a
// small framing overhead, mirroring SequenceFile framing).
func (r Record) Size() int { return len(r.Key) + len(r.Value) + 8 }

// Chunk is one replicated block of a file.
type Chunk struct {
	Records  []Record
	Bytes    int
	Replicas []sim.NodeID
	// Shard is the producing reducer/shard index for files written with
	// CreateSharded, or -1 for directly created files. Large shards are
	// split into several chunks that all carry the same Shard, so
	// downstream jobs regain full map parallelism while shard-affine
	// placement (index locality) still works.
	Shard int
}

// File is an immutable, chunked, replicated file.
type File struct {
	Name   string
	Chunks []*Chunk
}

// Bytes returns the total payload size of the file.
func (f *File) Bytes() int {
	total := 0
	for _, c := range f.Chunks {
		total += c.Bytes
	}
	return total
}

// Records returns the total record count of the file.
func (f *File) Records() int {
	total := 0
	for _, c := range f.Chunks {
		total += len(c.Records)
	}
	return total
}

// All returns every record of the file in chunk order. Intended for tests
// and result collection, not for the data path.
func (f *File) All() []Record {
	out := make([]Record, 0, f.Records())
	for _, c := range f.Chunks {
		out = append(out, c.Records...)
	}
	return out
}

// FS is the namespace: a set of named files plus the cluster whose nodes
// hold replicas.
type FS struct {
	mu      sync.Mutex
	cluster *sim.Cluster
	files   map[string]*File
	// ChunkTarget is the split size in bytes (HDFS default 64 MB; tests and
	// experiments usually shrink it so jobs have multiple waves).
	ChunkTarget int
	// Replication is the replica count per chunk (HDFS default 3).
	Replication int
}

// New creates an empty file system on the cluster with the paper's
// defaults: 64 MB chunks, 3 replicas.
func New(cluster *sim.Cluster) *FS {
	return &FS{
		cluster:     cluster,
		files:       make(map[string]*File),
		ChunkTarget: 64 << 20,
		Replication: 3,
	}
}

// Cluster returns the cluster this file system is placed on.
func (fs *FS) Cluster() *sim.Cluster { return fs.cluster }

// Create writes a new file from records, splitting into chunks of about
// ChunkTarget bytes and placing Replication replicas per chunk. It returns
// an error if the name already exists.
func (fs *FS) Create(name string, records []Record) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	f := &File{Name: name}
	cur := &Chunk{Shard: -1}
	flush := func() {
		if len(cur.Records) == 0 {
			return
		}
		cur.Replicas = fs.cluster.PlaceReplicas(fs.Replication)
		f.Chunks = append(f.Chunks, cur)
		cur = &Chunk{Shard: -1}
	}
	for _, r := range records {
		cur.Records = append(cur.Records, r)
		cur.Bytes += r.Size()
		if cur.Bytes >= fs.ChunkTarget {
			flush()
		}
	}
	flush()
	if len(f.Chunks) == 0 {
		// An empty file still has one (empty) chunk so jobs over it run a
		// well-defined zero-record map task.
		f.Chunks = []*Chunk{{Shard: -1, Replicas: fs.cluster.PlaceReplicas(fs.Replication)}}
	}
	fs.files[name] = f
	return f, nil
}

// CreateSharded writes a file whose chunks are exactly the given shards
// (one chunk per shard), used by reducers that each materialize their own
// output partition on the node where they ran.
func (fs *FS) CreateSharded(name string, shards [][]Record, homes []sim.NodeID) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if len(homes) != len(shards) {
		return nil, fmt.Errorf("dfs: %d shards but %d home nodes", len(shards), len(homes))
	}
	f := &File{Name: name}
	for i, recs := range shards {
		if len(recs) == 0 {
			continue
		}
		// First replica on the writer's node (HDFS write pipeline), the
		// rest placed by the cluster. Oversized shards split into several
		// chunks so following jobs keep full map-side parallelism, as
		// HDFS splits any file larger than a block.
		replicas := append([]sim.NodeID{homes[i]}, otherNodes(fs.cluster, homes[i], fs.Replication-1)...)
		cur := &Chunk{Shard: i, Replicas: replicas}
		for _, r := range recs {
			cur.Records = append(cur.Records, r)
			cur.Bytes += r.Size()
			if cur.Bytes >= fs.ChunkTarget {
				f.Chunks = append(f.Chunks, cur)
				cur = &Chunk{Shard: i, Replicas: replicas}
			}
		}
		if len(cur.Records) > 0 {
			f.Chunks = append(f.Chunks, cur)
		}
	}
	if len(f.Chunks) == 0 {
		f.Chunks = []*Chunk{{Shard: -1, Replicas: fs.cluster.PlaceReplicas(fs.Replication)}}
	}
	fs.files[name] = f
	return f, nil
}

func otherNodes(c *sim.Cluster, home sim.NodeID, n int) []sim.NodeID {
	out := make([]sim.NodeID, 0, n)
	for i := 1; len(out) < n && i < c.Nodes(); i++ {
		cand := sim.NodeID((int(home) + i) % c.Nodes())
		out = append(out, cand)
	}
	return out
}

// Open returns the named file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	return f, nil
}

// Remove deletes the named file; removing a missing file is an error.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("dfs: file %q does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// List returns the file names in the namespace, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TempName returns a fresh name under the given prefix that does not
// collide with existing files.
func (fs *FS) TempName(prefix string) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%04d", prefix, i)
		if _, ok := fs.files[name]; !ok {
			return name
		}
	}
}
