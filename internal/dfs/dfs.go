// Package dfs is an in-memory stand-in for HDFS: files are sequences of
// replicated chunks with locality metadata. MapReduce input splits map
// one-to-one onto chunks, and the scheduler uses chunk replica locations
// for data-locality placement, exactly the information the paper's cost
// model consumes (split locality and the f-per-byte materialization cost).
package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"efind/internal/fstore"
	"efind/internal/sim"
)

// Record is one key/value record stored in a file. The MapReduce layer
// reads chunks record by record.
type Record struct {
	Key   string
	Value string
}

// Size returns the payload size in bytes of the record (key + value plus a
// small framing overhead, mirroring SequenceFile framing).
func (r Record) Size() int { return len(r.Key) + len(r.Value) + 8 }

// Chunk is one replicated block of a file. Record payloads live either
// in memory (the default) or in the file's fstore snapshot when the
// namespace has a backing directory; metadata (size, placement, shard)
// is always resident.
type Chunk struct {
	recs []Record // resident payload; nil when file-backed
	n    int      // record count, valid under both backings
	snap *fstore.Snapshot
	slot int // this chunk's slot in snap

	Bytes    int
	Replicas []sim.NodeID
	// Shard is the producing reducer/shard index for files written with
	// CreateSharded, or -1 for directly created files. Large shards are
	// split into several chunks that all carry the same Shard, so
	// downstream jobs regain full map parallelism while shard-affine
	// placement (index locality) still works.
	Shard int
}

// NumRecords returns the chunk's record count without touching payload
// bytes (file-backed, this is slot-section metadata only).
func (c *Chunk) NumRecords() int { return c.n }

// Records returns the chunk's records. In-memory chunks return the
// resident slice; file-backed chunks decode it from the snapshot's data
// section, and a snapshot that fails its decode checks surfaces an error
// (wrapping fstore.ErrCorrupt) rather than ever yielding wrong records —
// unlike an index snapshot there is no resident copy to rebuild from.
func (c *Chunk) Records() ([]Record, error) {
	if c.snap == nil {
		return c.recs, nil
	}
	flat, err := c.snap.Values(c.slot)
	if err != nil {
		return nil, err
	}
	if len(flat) != 2*c.n {
		return nil, fmt.Errorf("%w: chunk holds %d strings, want %d for %d records",
			fstore.ErrCorrupt, len(flat), 2*c.n, c.n)
	}
	out := make([]Record, c.n)
	for i := range out {
		out[i] = Record{Key: flat[2*i], Value: flat[2*i+1]}
	}
	return out, nil
}

// File is an immutable, chunked, replicated file.
type File struct {
	Name   string
	Chunks []*Chunk

	snap *fstore.Snapshot // non-nil when the payload is file-backed
	path string           // snapshot file, for Remove cleanup
}

// FileBacked reports whether the file's record payloads live in an
// fstore snapshot rather than in memory.
func (f *File) FileBacked() bool { return f.snap != nil }

// Bytes returns the total payload size of the file.
func (f *File) Bytes() int {
	total := 0
	for _, c := range f.Chunks {
		total += c.Bytes
	}
	return total
}

// Records returns the total record count of the file.
func (f *File) Records() int {
	total := 0
	for _, c := range f.Chunks {
		total += c.n
	}
	return total
}

// All returns every record of the file in chunk order. Intended for tests
// and result collection, not for the data path; a file-backed chunk that
// fails its decode checks panics here (the data path reads through
// Chunk.Records and gets the error instead).
func (f *File) All() []Record {
	out := make([]Record, 0, f.Records())
	for _, c := range f.Chunks {
		recs, err := c.Records()
		if err != nil {
			panic(fmt.Sprintf("dfs: reading %s: %v", f.Name, err))
		}
		out = append(out, recs...)
	}
	return out
}

// FS is the namespace: a set of named files plus the cluster whose nodes
// hold replicas.
type FS struct {
	mu      sync.Mutex
	cluster *sim.Cluster
	files   map[string]*File
	// ChunkTarget is the split size in bytes (HDFS default 64 MB; tests and
	// experiments usually shrink it so jobs have multiple waves).
	ChunkTarget int
	// Replication is the replica count per chunk (HDFS default 3).
	Replication int

	// backing, when set, makes newly created files persist their record
	// payloads into fstore snapshots under that directory (see SetBacking).
	backing string
	opts    fstore.Options
	seq     int
}

// New creates an empty file system on the cluster with the paper's
// defaults: 64 MB chunks, 3 replicas.
func New(cluster *sim.Cluster) *FS {
	return &FS{
		cluster:     cluster,
		files:       make(map[string]*File),
		ChunkTarget: 64 << 20,
		Replication: 3,
	}
}

// Cluster returns the cluster this file system is placed on.
func (fs *FS) Cluster() *sim.Cluster { return fs.cluster }

// SetBacking switches the namespace to file-backed mode: every file
// created from here on stores its record payloads in one fstore snapshot
// per file under dir, and chunks decode records from the mapped data
// section on demand. Files created earlier stay in memory. The chunking,
// placement, and metadata are identical either way, so jobs behave
// bit-identically modulo wall-clock time.
func (fs *FS) SetBacking(dir string) error {
	return fs.SetBackingOpts(dir, fstore.Options{})
}

// SetBackingOpts is SetBacking with explicit snapshot open options
// (tests force the NoMmap fallback through it).
func (fs *FS) SetBackingOpts(dir string, opts fstore.Options) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fs.backing, fs.opts = dir, opts
	return nil
}

// Backed reports whether newly created files are file-backed.
func (fs *FS) Backed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.backing != ""
}

// Close releases every file-backed snapshot mapping. The namespace is
// done after Close: file-backed payloads are no longer readable. Closing
// an all-in-memory namespace is a no-op.
func (fs *FS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var firstErr error
	for _, f := range fs.files {
		if f.snap == nil {
			continue
		}
		if err := f.snap.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.snap = nil
		for _, c := range f.Chunks {
			c.snap = nil
		}
	}
	return firstErr
}

// persist renders f's chunk payloads into one snapshot file and rebinds
// every chunk to it, dropping the resident slices. Caller holds the lock
// and has not yet registered f in the namespace.
func (fs *FS) persist(f *File) error {
	b := fstore.NewBuilder()
	for i, c := range f.Chunks {
		flat := make([]string, 0, 2*len(c.recs))
		for _, r := range c.recs {
			flat = append(flat, r.Key, r.Value)
		}
		b.Add(chunkKey(i), int64(c.Shard), flat...)
	}
	fs.seq++
	path := filepath.Join(fs.backing, fmt.Sprintf("%s-%06d.fmc1", sanitizeName(f.Name), fs.seq))
	if err := b.WriteFile(path); err != nil {
		return err
	}
	snap, err := fstore.Open(path, fs.opts)
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("dfs: reopening just-written %q: %w", f.Name, err)
	}
	for i, c := range f.Chunks {
		slot, ok := snap.Find(chunkKey(i))
		if !ok {
			snap.Close()
			os.Remove(path)
			return fmt.Errorf("dfs: chunk %d of %q missing from its snapshot", i, f.Name)
		}
		c.snap, c.slot, c.recs = snap, slot, nil
	}
	f.snap, f.path = snap, path
	return nil
}

// chunkKey names chunk i inside its file's snapshot; zero-padding keeps
// slot order equal to chunk order.
func chunkKey(i int) string { return fmt.Sprintf("c%08d", i) }

// sanitizeName makes a DFS file name safe as a filesystem name component.
func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Create writes a new file from records, splitting into chunks of about
// ChunkTarget bytes and placing Replication replicas per chunk. It returns
// an error if the name already exists.
func (fs *FS) Create(name string, records []Record) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	f := &File{Name: name}
	cur := &Chunk{Shard: -1}
	flush := func() {
		if len(cur.recs) == 0 {
			return
		}
		cur.Replicas = fs.cluster.PlaceReplicas(fs.Replication)
		f.Chunks = append(f.Chunks, cur)
		cur = &Chunk{Shard: -1}
	}
	for _, r := range records {
		cur.recs = append(cur.recs, r)
		cur.n++
		cur.Bytes += r.Size()
		if cur.Bytes >= fs.ChunkTarget {
			flush()
		}
	}
	flush()
	if len(f.Chunks) == 0 {
		// An empty file still has one (empty) chunk so jobs over it run a
		// well-defined zero-record map task.
		f.Chunks = []*Chunk{{Shard: -1, Replicas: fs.cluster.PlaceReplicas(fs.Replication)}}
	}
	if fs.backing != "" {
		if err := fs.persist(f); err != nil {
			return nil, err
		}
	}
	fs.files[name] = f
	return f, nil
}

// CreateSharded writes a file whose chunks are exactly the given shards
// (one chunk per shard), used by reducers that each materialize their own
// output partition on the node where they ran.
func (fs *FS) CreateSharded(name string, shards [][]Record, homes []sim.NodeID) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if len(homes) != len(shards) {
		return nil, fmt.Errorf("dfs: %d shards but %d home nodes", len(shards), len(homes))
	}
	f := &File{Name: name}
	for i, recs := range shards {
		if len(recs) == 0 {
			continue
		}
		// First replica on the writer's node (HDFS write pipeline), the
		// rest placed by the cluster. Oversized shards split into several
		// chunks so following jobs keep full map-side parallelism, as
		// HDFS splits any file larger than a block.
		replicas := append([]sim.NodeID{homes[i]}, otherNodes(fs.cluster, homes[i], fs.Replication-1)...)
		cur := &Chunk{Shard: i, Replicas: replicas}
		for _, r := range recs {
			cur.recs = append(cur.recs, r)
			cur.n++
			cur.Bytes += r.Size()
			if cur.Bytes >= fs.ChunkTarget {
				f.Chunks = append(f.Chunks, cur)
				cur = &Chunk{Shard: i, Replicas: replicas}
			}
		}
		if len(cur.recs) > 0 {
			f.Chunks = append(f.Chunks, cur)
		}
	}
	if len(f.Chunks) == 0 {
		f.Chunks = []*Chunk{{Shard: -1, Replicas: fs.cluster.PlaceReplicas(fs.Replication)}}
	}
	if fs.backing != "" {
		if err := fs.persist(f); err != nil {
			return nil, err
		}
	}
	fs.files[name] = f
	return f, nil
}

func otherNodes(c *sim.Cluster, home sim.NodeID, n int) []sim.NodeID {
	out := make([]sim.NodeID, 0, n)
	for i := 1; len(out) < n && i < c.Nodes(); i++ {
		cand := sim.NodeID((int(home) + i) % c.Nodes())
		out = append(out, cand)
	}
	return out
}

// Open returns the named file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	return f, nil
}

// Remove deletes the named file; removing a missing file is an error. A
// file-backed file's snapshot mapping is released and its on-disk file
// deleted, so intermediate files cleaned up between jobs do not leak
// mappings or disk space.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("dfs: file %q does not exist", name)
	}
	delete(fs.files, name)
	if f.snap != nil {
		err := f.snap.Close()
		f.snap = nil
		for _, c := range f.Chunks {
			c.snap = nil
		}
		if rerr := os.Remove(f.path); err == nil {
			err = rerr
		}
		return err
	}
	return nil
}

// List returns the file names in the namespace, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TempName returns a fresh name under the given prefix that does not
// collide with existing files.
func (fs *FS) TempName(prefix string) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%04d", prefix, i)
		if _, ok := fs.files[name]; !ok {
			return name
		}
	}
}
