package dfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"efind/internal/fstore"
	"efind/internal/sim"
)

func makeRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: fmt.Sprintf("k%05d", i), Value: fmt.Sprintf("value-%d", i)}
	}
	return recs
}

func newBackedFS(t *testing.T, opts fstore.Options) *FS {
	t.Helper()
	fs := New(sim.NewCluster(sim.DefaultConfig()))
	fs.ChunkTarget = 512
	if err := fs.SetBackingOpts(t.TempDir(), opts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

// TestFileBackedMatchesInMemory creates the same file in a plain and a
// file-backed namespace and asserts chunking, metadata, and every record
// agree exactly.
func TestFileBackedMatchesInMemory(t *testing.T) {
	for _, opts := range []fstore.Options{{}, {NoMmap: true}} {
		recs := makeRecords(100)
		mem := New(sim.NewCluster(sim.DefaultConfig()))
		mem.ChunkTarget = 512
		mf, err := mem.Create("f", recs)
		if err != nil {
			t.Fatal(err)
		}
		fb := newBackedFS(t, opts)
		ff, err := fb.Create("f", recs)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.FileBacked() || mf.FileBacked() {
			t.Fatalf("backing flags wrong: mem=%v file=%v", mf.FileBacked(), ff.FileBacked())
		}
		if len(ff.Chunks) != len(mf.Chunks) || ff.Bytes() != mf.Bytes() || ff.Records() != mf.Records() {
			t.Fatalf("shape differs: %d/%d chunks, %d/%d bytes, %d/%d records",
				len(ff.Chunks), len(mf.Chunks), ff.Bytes(), mf.Bytes(), ff.Records(), mf.Records())
		}
		for i := range ff.Chunks {
			fc, mc := ff.Chunks[i], mf.Chunks[i]
			if fc.Bytes != mc.Bytes || fc.Shard != mc.Shard || fc.NumRecords() != mc.NumRecords() {
				t.Fatalf("chunk %d metadata differs", i)
			}
		}
		got, want := ff.All(), mf.All()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

func TestFileBackedSharded(t *testing.T) {
	fb := newBackedFS(t, fstore.Options{})
	shards := [][]Record{makeRecords(5), nil, makeRecords(3)}
	homes := []sim.NodeID{1, 2, 3}
	f, err := fb.CreateSharded("s", shards, homes)
	if err != nil {
		t.Fatal(err)
	}
	if !f.FileBacked() {
		t.Fatal("sharded file should be file-backed")
	}
	if f.Records() != 8 {
		t.Fatalf("records = %d", f.Records())
	}
	for _, c := range f.Chunks {
		recs, err := c.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != c.NumRecords() {
			t.Fatalf("chunk decode length %d != %d", len(recs), c.NumRecords())
		}
	}
}

func TestFileBackedEmptyFile(t *testing.T) {
	fb := newBackedFS(t, fstore.Options{})
	f, err := fb.Create("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != 0 || len(f.All()) != 0 {
		t.Fatalf("empty file: %d records", f.Records())
	}
}

func TestRemoveDeletesSnapshotAndMapping(t *testing.T) {
	base := fstore.OpenHandles()
	fb := newBackedFS(t, fstore.Options{})
	if _, err := fb.Create("gone", makeRecords(10)); err != nil {
		t.Fatal(err)
	}
	if fstore.OpenHandles() != base+1 {
		t.Fatalf("handles = %d, want %d", fstore.OpenHandles(), base+1)
	}
	if err := fb.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if fstore.OpenHandles() != base {
		t.Fatalf("handle leaked after Remove: %d vs %d", fstore.OpenHandles(), base)
	}
	names, err := filepath.Glob(filepath.Join(fb.backing, "*.fmc1"))
	if err != nil || len(names) != 0 {
		t.Fatalf("snapshot files left behind: %v (%v)", names, err)
	}
}

func TestFSCloseReleasesEveryMapping(t *testing.T) {
	base := fstore.OpenHandles()
	fb := newBackedFS(t, fstore.Options{})
	for i := 0; i < 3; i++ {
		if _, err := fb.Create(fmt.Sprintf("f%d", i), makeRecords(20)); err != nil {
			t.Fatal(err)
		}
	}
	if fstore.OpenHandles() != base+3 {
		t.Fatalf("handles = %d, want %d", fstore.OpenHandles(), base+3)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if fstore.OpenHandles() != base {
		t.Fatalf("handles leaked after Close: %d vs %d", fstore.OpenHandles(), base)
	}
	if err := fb.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}

// TestCorruptChunkSurfacesError overwrites a live snapshot's sections
// with garbage (the mapping is MAP_SHARED, so the pages change under the
// reader) and asserts record reads fail with ErrCorrupt — a DFS chunk
// has no in-memory source of truth, so detection, not silent garbage, is
// the contract.
func TestCorruptChunkSurfacesError(t *testing.T) {
	fb := newBackedFS(t, fstore.Options{})
	f, err := fb.Create("c", makeRecords(30))
	if err != nil {
		t.Fatal(err)
	}
	path := f.path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the 48-byte header, trash slots and data: slot offsets become
	// 0xFFFFFFFF, far outside the data section. Write in place (no
	// truncation) so the live mapping never shrinks mid-test.
	for i := 48; i < len(data); i++ {
		data[i] = 0xff
	}
	w, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for _, c := range f.Chunks {
		if _, err := c.Records(); err != nil {
			if !errors.Is(err, fstore.ErrCorrupt) {
				t.Fatalf("corruption error does not wrap ErrCorrupt: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no chunk reported corruption")
	}
}
