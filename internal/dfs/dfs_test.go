package dfs

import (
	"strings"
	"testing"
	"testing/quick"

	"efind/internal/sim"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(sim.NewCluster(sim.DefaultConfig()))
}

func recs(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Key: strings.Repeat("k", 4), Value: strings.Repeat("v", 16)}
	}
	return out
}

func TestCreateAndOpen(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("a", recs(10))
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != 10 {
		t.Fatalf("want 10 records, got %d", f.Records())
	}
	got, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatal("Open returned a different file")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create("a", recs(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a", recs(1)); err == nil {
		t.Fatal("expected duplicate-create error")
	}
}

func TestOpenMissingFails(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Open("nope"); err == nil {
		t.Fatal("expected error opening missing file")
	}
}

func TestRemove(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create("a", recs(1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a"); err == nil {
		t.Fatal("file should be gone")
	}
	if err := fs.Remove("a"); err == nil {
		t.Fatal("removing missing file should error")
	}
}

func TestChunkSplitting(t *testing.T) {
	fs := newFS(t)
	fs.ChunkTarget = 100               // tiny chunks
	f, err := fs.Create("a", recs(50)) // each record is 28 bytes
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(f.Chunks))
	}
	total := 0
	for _, c := range f.Chunks {
		if len(c.Replicas) != fs.Replication {
			t.Fatalf("chunk has %d replicas, want %d", len(c.Replicas), fs.Replication)
		}
		total += c.NumRecords()
	}
	if total != 50 {
		t.Fatalf("records lost in chunking: %d != 50", total)
	}
}

func TestEmptyFileHasOneChunk(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) != 1 || f.Records() != 0 {
		t.Fatalf("empty file should have one empty chunk, got %d chunks %d records", len(f.Chunks), f.Records())
	}
}

func TestCreateSharded(t *testing.T) {
	fs := newFS(t)
	shards := [][]Record{recs(3), recs(5)}
	homes := []sim.NodeID{2, 7}
	f, err := fs.CreateSharded("out", shards, homes)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) != 2 {
		t.Fatalf("want 2 chunks, got %d", len(f.Chunks))
	}
	for i, c := range f.Chunks {
		if c.Replicas[0] != homes[i] {
			t.Fatalf("chunk %d first replica = %d, want writer node %d", i, c.Replicas[0], homes[i])
		}
		if len(c.Replicas) != fs.Replication {
			t.Fatalf("chunk %d has %d replicas, want %d", i, len(c.Replicas), fs.Replication)
		}
	}
}

func TestCreateShardedMismatch(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.CreateSharded("out", [][]Record{recs(1)}, nil); err == nil {
		t.Fatal("expected shard/home mismatch error")
	}
}

func TestListSorted(t *testing.T) {
	fs := newFS(t)
	for _, n := range []string{"b", "a", "c"} {
		if _, err := fs.Create(n, recs(1)); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestTempNameUnique(t *testing.T) {
	fs := newFS(t)
	n1 := fs.TempName("tmp")
	if _, err := fs.Create(n1, recs(1)); err != nil {
		t.Fatal(err)
	}
	n2 := fs.TempName("tmp")
	if n1 == n2 {
		t.Fatalf("TempName returned a colliding name %q", n1)
	}
}

func TestRecordSizePositive(t *testing.T) {
	f := func(k, v string) bool {
		if len(k) > 1000 || len(v) > 1000 {
			return true
		}
		r := Record{Key: k, Value: v}
		return r.Size() >= len(k)+len(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sharded creation preserves per-shard record sequences even
// when shards split into several chunks, and every chunk carries its
// shard index.
func TestShardedChunkingPreservesShards(t *testing.T) {
	f := func(sizes []uint8, target uint16) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		fs := New(sim.NewCluster(sim.DefaultConfig()))
		fs.ChunkTarget = int(target%256) + 16
		shards := make([][]Record, len(sizes))
		homes := make([]sim.NodeID, len(sizes))
		want := map[int][]string{}
		for s, n := range sizes {
			homes[s] = sim.NodeID(s % 12)
			for i := 0; i < int(n%50); i++ {
				v := strings.Repeat("x", i%30)
				shards[s] = append(shards[s], Record{Key: "k", Value: v})
				want[s] = append(want[s], v)
			}
		}
		file, err := fs.CreateSharded("f", shards, homes)
		if err != nil {
			return false
		}
		got := map[int][]string{}
		for _, c := range file.Chunks {
			if c.Shard < -1 || c.Shard >= len(sizes) {
				return false
			}
			if c.Shard >= 0 && c.NumRecords() > 0 && c.Replicas[0] != homes[c.Shard] {
				return false
			}
			recs, err := c.Records()
			if err != nil {
				return false
			}
			for _, r := range recs {
				got[c.Shard] = append(got[c.Shard], r.Value)
			}
		}
		for s, vs := range want {
			if len(got[s]) != len(vs) {
				return false
			}
			for i := range vs {
				if got[s][i] != vs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunking never loses, duplicates, or reorders records.
func TestChunkingPreservesRecords(t *testing.T) {
	f := func(vals []string, target uint16) bool {
		if len(vals) > 300 {
			return true
		}
		fs := New(sim.NewCluster(sim.DefaultConfig()))
		fs.ChunkTarget = int(target%512) + 16
		in := make([]Record, len(vals))
		for i, v := range vals {
			if len(v) > 100 {
				v = v[:100]
			}
			in[i] = Record{Key: "k", Value: v}
		}
		file, err := fs.Create("f", in)
		if err != nil {
			return false
		}
		out := file.All()
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
