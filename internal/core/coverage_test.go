package core

import (
	"fmt"
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// TestDynamicMapOnlyNoReplan: an adaptive map-only job (no Reducer) that
// keeps its plan still merges first-wave and remaining map outputs into a
// complete output file.
func TestDynamicMapOnlyNoReplan(t *testing.T) {
	e := newAdaptiveE2E(t, 3000, 30)
	op := e.lookupOp("mo-stay")
	conf := &IndexJobConf{Name: "maponly-stay", Input: e.input, Mode: ModeDynamic, MaxPlanChanges: -1}
	conf.AddHeadIndexOperator(op)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("replanning was disabled")
	}
	if res.Output.Records() != 3000 {
		t.Fatalf("map-only dynamic output = %d records", res.Output.Records())
	}
}

// TestDynamicMapOnlyWithReplan: the same job with replanning allowed and
// strong redundancy changes plan mid-map and still produces every record.
func TestDynamicMapOnlyWithReplan(t *testing.T) {
	e := newAdaptiveE2E(t, 4000, 20) // Θ=200, Tj=2ms: very repart/cache-friendly
	op := e.lookupOp("mo-replan")
	conf := &IndexJobConf{Name: "maponly-replan", Input: e.input, Mode: ModeDynamic}
	conf.AddHeadIndexOperator(op)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned || res.ReplanPhase != "map" {
		t.Fatalf("expected a map-phase replan, got %+v (plan %v)", res.Replanned, res.Plan)
	}
	if res.Output.Records() != 4000 {
		t.Fatalf("map-only replan output = %d records", res.Output.Records())
	}
	// Compare with baseline content.
	opB := e.lookupOp("mo-base")
	confB := &IndexJobConf{Name: "maponly-base", Input: e.input, Mode: ModeBaseline}
	confB.AddHeadIndexOperator(opB)
	base, err := e.rt.Submit(confB)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "map-only-replan", sortedOutput(base.Output), sortedOutput(res.Output))
}

// TestReducePhaseReplanForced builds a job that must replan in the reduce
// phase: no pre-reduce operators, a tail operator with huge redundancy and
// expensive lookups, several reduce waves, and a permissive variance gate.
func TestReducePhaseReplanForced(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1 // 4 reduce slots
	cfg.TaskStartup = 0.001
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 2 << 10
	rt := NewRuntime(mapreduce.New(cluster, fs))

	store := kvstore.NewHash(cluster, "kv", 16, 3, 0.005)
	for i := 0; i < 6; i++ {
		store.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("value-%04d", i))
	}
	recs := make([]dfs.Record, 4000)
	for i := range recs {
		recs[i] = dfs.Record{Key: fmt.Sprintf("r%05d", i), Value: "payload " + fmt.Sprintf("ik%04d", i%6)}
	}
	input, err := fs.Create("input", recs)
	if err != nil {
		t.Fatal(err)
	}

	op := NewOperator("tail-heavy",
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			return PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		}, nil)
	op.AddIndex(store)
	conf := &IndexJobConf{
		Name:              "force-reduce-replan",
		Input:             input,
		Mode:              ModeDynamic,
		NumReduce:         12, // 3 reduce waves on 4 slots
		Reducer:           mapreduce.IdentityReduce,
		VarianceThreshold: 0.9,
	}
	conf.AddTailIndexOperator(op)

	res, err := rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned || res.ReplanPhase != "reduce" {
		t.Fatalf("expected a reduce-phase replan, got replanned=%v phase=%q plan=%v",
			res.Replanned, res.ReplanPhase, res.Plan)
	}
	if res.Output.Records() != 4000 {
		t.Fatalf("output = %d records, want 4000", res.Output.Records())
	}
	// Verify content against the baseline.
	opB := NewOperator("tail-heavy-b", op.pre, op.post)
	opB.AddIndex(store)
	confB := &IndexJobConf{Name: "base-reduce", Input: input, Mode: ModeBaseline,
		NumReduce: 12, Reducer: mapreduce.IdentityReduce}
	confB.AddTailIndexOperator(opB)
	base, err := rt.Submit(confB)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "reduce-replan", sortedOutput(base.Output), sortedOutput(res.Output))
}

// TestCombinerThroughEFind: the Combiner field of IndexJobConf reaches
// the compiled main job and keeps results identical.
func TestCombinerThroughEFind(t *testing.T) {
	run := func(withCombiner bool) []string {
		e := newE2E(t, 600, 12)
		op := e.lookupOp(fmt.Sprintf("cmb-%v", withCombiner))
		conf := &IndexJobConf{
			Name:      fmt.Sprintf("job-cmb-%v", withCombiner),
			Input:     e.input,
			Mode:      ModeBaseline,
			NumReduce: 4,
			Mapper: func(_ *mapreduce.TaskContext, in Pair, emit Emit) {
				// Count records per looked-up value.
				fields := strings.Fields(in.Value)
				emit(Pair{Key: fields[len(fields)-1], Value: "1"})
			},
			Reducer: func(_ *mapreduce.TaskContext, key string, values []string, emit Emit) {
				total := 0
				for _, v := range values {
					n := 0
					fmt.Sscanf(v, "%d", &n)
					total += n
				}
				emit(Pair{Key: key, Value: fmt.Sprintf("%d", total)})
			},
		}
		if withCombiner {
			conf.Combiner = func(_ *mapreduce.TaskContext, key string, values []string, emit Emit) {
				total := 0
				for _, v := range values {
					n := 0
					fmt.Sscanf(v, "%d", &n)
					total += n
				}
				emit(Pair{Key: key, Value: fmt.Sprintf("%d", total)})
			}
		}
		conf.AddHeadIndexOperator(op)
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		return sortedOutput(res.Output)
	}
	plain := run(false)
	combined := run(true)
	sameOutput(t, "efind-combiner", plain, combined)
}

// TestEFindSurvivesTaskFailures injects task failures under every mode
// and demands identical output: re-execution, plan changes, and shuffle
// jobs must all compose with MapReduce's fault tolerance.
func TestEFindSurvivesTaskFailures(t *testing.T) {
	var want []string
	for _, mode := range []Mode{ModeBaseline, ModeCache, ModeDynamic} {
		e := newE2E(t, 800, 25)
		op := e.lookupOp(fmt.Sprintf("ft-%v", mode))
		conf := e.conf(fmt.Sprintf("job-ft-%v", mode), mode, op, headPlace)
		conf.FaultInjector = func(kind mapreduce.TaskKind, task, attempt int) bool {
			return task%4 == 1 && attempt == 1 // first attempt of every 4th task fails
		}
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Counters[mapreduce.CounterTaskRetries] == 0 {
			t.Fatalf("%v: no retries recorded", mode)
		}
		got := sortedOutput(res.Output)
		if want == nil {
			want = got
			if len(want) != 800 {
				t.Fatalf("%v: %d records", mode, len(want))
			}
			continue
		}
		sameOutput(t, mode.String(), want, got)
	}
}

func TestExplainCostsListsAllStrategies(t *testing.T) {
	env := testEnv12()
	is := IndexStats{Nik: 1, Sik: 20, Siv: 1024, Tj: 0.0008, Theta: 4, R: 0.8}
	st := opStats(1e4, is)
	lines := ExplainCosts(st, is, env, BodyOp)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"baseline", "cache", "repart/pre", "repart/idx", "repart/late", "idxloc"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("ExplainCosts missing %q:\n%s", want, joined)
		}
	}
}

// TestCustomPlanOrdersShufflesFirst: ModeCustom with mixed forced
// strategies must place shuffle-strategy indices first (Property 4),
// regardless of AddIndex order.
func TestCustomPlanOrdersShufflesFirst(t *testing.T) {
	e := newE2E(t, 10, 5)
	store2 := kvstore.NewHash(e.cluster, "kv2", 8, 3, 0)
	store2.Put("ik0000", "x")
	op := NewOperator("mixed",
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			ik := fields[len(fields)-1]
			return PreResult{Pair: in, Keys: [][]string{{ik}, {ik}}}
		}, nil)
	op.AddIndex(e.store) // index 0: forced cache
	op.AddIndex(store2)  // index 1: forced repart
	conf := e.conf("job-mixed", ModeCustom, op, headPlace)
	conf.ForceStrategy("mixed", e.store.Name(), LookupCache)
	conf.ForceStrategy("mixed", "kv2", Repartition)

	plan, err := e.rt.planFor(conf)
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Head[0].Decisions
	if len(d) != 2 || d[0].Strategy != Repartition || d[1].Strategy != LookupCache {
		t.Fatalf("custom plan order wrong: %v", plan.Head[0])
	}
	if d[0].Index != 1 || d[1].Index != 0 {
		t.Fatalf("decision indices wrong: %+v", d)
	}
	// The plan also renders readably.
	s := plan.String()
	if !strings.Contains(s, "kv2[repart") || !strings.Contains(s, "kv[cache]") {
		t.Fatalf("plan string = %q", s)
	}
	// And executes correctly.
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 10 {
		t.Fatalf("records = %d", res.Output.Records())
	}
}

func TestCatalogIntrospection(t *testing.T) {
	c := NewCatalog()
	if got := c.Operators(); len(got) != 0 {
		t.Fatalf("fresh catalog operators = %v", got)
	}
	c.put("b-op", &OperatorStats{})
	c.put("a-op", &OperatorStats{})
	got := c.Operators()
	if len(got) != 2 || got[0] != "a-op" || got[1] != "b-op" {
		t.Fatalf("operators = %v, want sorted [a-op b-op]", got)
	}
	if s := c.String(); !strings.Contains(s, "2") {
		t.Fatalf("catalog string = %q", s)
	}
}

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{
		ModeBaseline:  "baseline",
		ModeCache:     "cache",
		ModeCustom:    "custom",
		ModeOptimized: "optimized",
		ModeDynamic:   "dynamic",
		Mode(99):      "mode(99)",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Strategy(42).String() == "" || Boundary(42).String() == "" {
		t.Fatal("unknown enum strings should not be empty")
	}
}
