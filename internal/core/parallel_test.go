package core

import (
	"reflect"
	"testing"

	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// parE2E builds the standard e2e environment with an explicit executor
// parallelism. Construction order matches newE2E exactly so replica
// placement sequences are identical across instances.
func parE2E(tb testing.TB, parallelism, records, distinctKeys int) *e2eEnv {
	tb.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 6
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 2
	cfg.TaskStartup = 0.01
	cfg.Parallelism = parallelism
	return newE2EWith(tb, cfg, records, distinctKeys)
}

// TestMultiOperatorJobDeterministicUnderParallelism runs the same
// multi-operator index job (one head operator under LookupCache, one tail
// operator under Repartition) with the serial and the parallel executor.
// The virtual makespan, every merged counter — including cache probe and
// miss counts, which depend on per-node access order — and the sorted
// output must be identical.
func TestMultiOperatorJobDeterministicUnderParallelism(t *testing.T) {
	run := func(parallelism int) *JobResult {
		e := parE2E(t, parallelism, 800, 40)
		opA := e.lookupOp("det-a")
		opB := e.lookupOp("det-b")
		conf := e.conf("det-job", ModeCustom, opA, headPlace)
		conf.AddTailIndexOperator(opB)
		conf.ForceStrategy(opA.Name(), e.store.Name(), LookupCache)
		conf.ForceStrategy(opB.Name(), e.store.Name(), Repartition)
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(1)
	parallel := run(8)

	if serial.VTime != parallel.VTime {
		t.Fatalf("virtual makespan diverged: serial %g vs parallel %g", serial.VTime, parallel.VTime)
	}
	if serial.JobsRun != parallel.JobsRun {
		t.Fatalf("jobs run diverged: %d vs %d", serial.JobsRun, parallel.JobsRun)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		for k, v := range serial.Counters {
			if parallel.Counters[k] != v {
				t.Errorf("counter %q: serial %d vs parallel %d", k, v, parallel.Counters[k])
			}
		}
		for k, v := range parallel.Counters {
			if _, ok := serial.Counters[k]; !ok {
				t.Errorf("counter %q only in parallel run (= %d)", k, v)
			}
		}
		t.Fatal("merged counters diverged")
	}
	sameOutput(t, "serial-vs-parallel", sortedOutput(serial.Output), sortedOutput(parallel.Output))
}

// TestDynamicJobDeterministicUnderParallelism covers the adaptive path:
// plan switching is driven by first-wave statistics, which must be
// executor-independent too.
func TestDynamicJobDeterministicUnderParallelism(t *testing.T) {
	run := func(parallelism int) *JobResult {
		e := parE2E(t, parallelism, 800, 25)
		op := e.lookupOp("dyn")
		conf := e.conf("dyn-job", ModeDynamic, op, headPlace)
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.VTime != parallel.VTime {
		t.Fatalf("dynamic makespan diverged: %g vs %g", serial.VTime, parallel.VTime)
	}
	if serial.Replanned != parallel.Replanned || serial.ReplanPhase != parallel.ReplanPhase {
		t.Fatalf("replan decision diverged: serial (%v, %q) vs parallel (%v, %q)",
			serial.Replanned, serial.ReplanPhase, parallel.Replanned, parallel.ReplanPhase)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		t.Fatal("dynamic counters diverged")
	}
	sameOutput(t, "dynamic", sortedOutput(serial.Output), sortedOutput(parallel.Output))
}

// TestRetriesDoNotSkewCacheStats: a retried map attempt runs against the
// same node-shared lookup caches as its failed predecessor, so without
// per-attempt snapshots the retry would find the cache pre-warmed and
// under-count misses, skewing the measured miss ratio R that feeds the
// cost model. A faulty run must report exactly the clean run's cache
// probe and miss counters.
func TestRetriesDoNotSkewCacheStats(t *testing.T) {
	run := func(inject bool) *JobResult {
		e := newE2E(t, 800, 25)
		op := e.lookupOp("rollback")
		conf := e.conf("rollback-job", ModeCache, op, headPlace)
		if inject {
			conf.FaultInjector = func(kind mapreduce.TaskKind, task, attempt int) bool {
				return kind == mapreduce.MapTask && task%3 == 0 && attempt == 1
			}
		}
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(false)
	faulty := run(true)

	if faulty.Counters[mapreduce.CounterTaskRetries] == 0 {
		t.Fatal("fault injector did not fire")
	}
	probes, misses := ctrProbes("rollback", "kv"), ctrMisses("rollback", "kv")
	if clean.Counters[probes] == 0 {
		t.Fatal("cache strategy recorded no probes; test is vacuous")
	}
	if got, want := faulty.Counters[probes], clean.Counters[probes]; got != want {
		t.Fatalf("retries skewed cache probes: faulty %d vs clean %d", got, want)
	}
	if got, want := faulty.Counters[misses], clean.Counters[misses]; got != want {
		t.Fatalf("retries skewed cache misses: faulty %d vs clean %d", got, want)
	}
	sameOutput(t, "rollback", sortedOutput(clean.Output), sortedOutput(faulty.Output))
}
