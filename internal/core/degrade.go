package core

// Failure-triggered re-optimization: the degradation ladder for index
// partition outages. An access whose partition is inside an outage window
// fails with chaos.ErrUnavailable; the ixclient retry middleware backs off
// and polls, and only when the ladder is exhausted does the error climb
// here (under ErrorFailJob). Instead of failing the job, the runtime
// demotes the affected index to the always-applicable baseline strategy —
// re-using the §4 plan-change machinery with a failure trigger instead of
// a cost trigger — and re-runs. Completed map tasks of single-job inline
// plans are reused (Figure 10(a) applied to faults); multi-job plans
// restart from the original input. Each (operator, index) pair degrades at
// most once, so a permanent outage that survives even the baseline
// strategy fails the job with the original error.

import (
	"errors"
	"fmt"
	"sort"

	"efind/internal/chaos"
	"efind/internal/ixclient"
	"efind/internal/mapreduce"
)

// mapPhaseFailure wraps a map-phase error together with the partial phase
// result, so a failure-triggered plan change can re-run only the splits
// that never completed. resumable marks single-job plans, whose per-split
// outputs are final records and thus valid under any inline plan.
type mapPhaseFailure struct {
	jobName   string
	mp        *mapreduce.MapPhaseResult
	resumable bool
	err       error
}

func (e *mapPhaseFailure) Error() string {
	return fmt.Sprintf("efind: job %q: %v", e.jobName, e.err)
}

func (e *mapPhaseFailure) Unwrap() error { return e.err }

// runJob executes one compiled job like Engine.Run, but keeps the partial
// map-phase result on failure so the degrade ladder can reuse completed
// splits. resumable marks jobs whose map output is plan-independent (the
// only job of a single-job plan).
func (rt *Runtime) runJob(job *mapreduce.Job, resumable bool) (*mapreduce.Result, error) {
	mp, err := rt.run.RunMapPhase(job, nil)
	if err != nil {
		return nil, &mapPhaseFailure{jobName: job.Name, mp: mp, resumable: resumable, err: err}
	}
	if job.Reduce == nil {
		return rt.run.FinishMapOnly(job, mp)
	}
	return rt.run.RunReducePhase(job, mp)
}

// submitDegradable runs the job, degrading index strategies on exhausted
// outages until the job completes or no fallback remains.
func (rt *Runtime) submitDegradable(conf *IndexJobConf) (*JobResult, error) {
	res, err := rt.submitOnce(conf)
	var reopts int64
	for err != nil {
		op, ix, ok := degradeTarget(err)
		if !ok || conf.DisableDegrade || !conf.degrade(op, ix) {
			return nil, err
		}
		reopts++
		if t := rt.Engine.Trace; t != nil {
			t.AddInstant(fmt.Sprintf("reopt:failure %s/%s -> baseline", op, ix), "chaos")
			t.Metrics.Add(chaos.CtrReoptFailure, 1)
		}
		var mf *mapPhaseFailure
		if errors.As(err, &mf) && mf.resumable && conf.Mode != ModeDynamic {
			res, err = rt.resumeDegraded(conf, mf.mp)
		} else {
			res, err = rt.submitOnce(conf)
		}
	}
	if reopts > 0 {
		res.Counters[chaos.CtrReoptFailure] += reopts
	}
	return res, nil
}

// degradeTarget extracts the (operator, index) pair whose outage exhausted
// the retry ladder; ok is false for every other kind of failure.
func degradeTarget(err error) (op, ix string, ok bool) {
	var ie *ixclient.IndexError
	if !errors.As(err, &ie) || !errors.Is(err, chaos.ErrUnavailable) {
		return "", "", false
	}
	return ie.Op, ie.Index, true
}

// degrade marks one (operator, index) pair as demoted to the baseline
// strategy. It returns false when the pair is already degraded — the
// ladder is exhausted and the failure is final.
func (c *IndexJobConf) degrade(op, ix string) bool {
	if c.degraded[op][ix] {
		return false
	}
	if c.degraded == nil {
		c.degraded = make(map[string]map[string]bool)
	}
	if c.degraded[op] == nil {
		c.degraded[op] = make(map[string]bool)
	}
	c.degraded[op][ix] = true
	return true
}

// applyDegrades rewrites an operator plan so every demoted index runs the
// baseline strategy, regardless of what the optimizer chose. Demoting a
// shuffle decision can break Property 4's "shuffles first" ordering, so
// the decisions are stably re-partitioned around it; the relative order
// within each class is preserved, and per-index results are keyed by
// index position, so output is unaffected.
func (c *IndexJobConf) applyDegrades(p *OperatorPlan) {
	m := c.degraded[p.Op.Name()]
	if len(m) == 0 {
		return
	}
	changed := false
	for i, d := range p.Decisions {
		if m[p.Op.Indices()[d.Index].Name()] && d.Strategy != Baseline {
			p.Decisions[i] = Decision{Index: d.Index, Strategy: Baseline}
			changed = true
		}
	}
	if !changed {
		return
	}
	sort.SliceStable(p.Decisions, func(i, j int) bool {
		return isShuffle(p.Decisions[i].Strategy) && !isShuffle(p.Decisions[j].Strategy)
	})
}

func isShuffle(s Strategy) bool { return s == Repartition || s == IndexLocality }

// resumeDegraded finishes a job whose single-job plan failed mid-map: the
// (now degraded) plan is rebuilt, the splits that never completed are
// re-run under it, and the completed splits' outputs — final records,
// identical under every inline plan — are merged back in split order, so
// the job's output is bit-identical to an unfailed run. Falls back to a
// full re-run when the degraded plan is not a single inline job.
func (rt *Runtime) resumeDegraded(conf *IndexJobConf, partial *mapreduce.MapPhaseResult) (*JobResult, error) {
	plan, err := rt.planFor(conf)
	if err != nil {
		return nil, err
	}
	co, err := compilePlan(rt, conf, plan)
	if err != nil {
		return nil, err
	}
	if len(co.jobs) != 1 {
		return rt.runPlan(conf, plan)
	}
	job := co.engineJob(conf, 0, conf.Input)

	var missing []int
	for i := range partial.Outputs {
		if partial.Outputs[i] == nil {
			missing = append(missing, i)
		}
	}
	// Completed splits are reused, so only the re-run ones can build.
	co.restrictBuilds(missing)
	rest, err := rt.run.RunMapPhase(job, missing)
	if err != nil {
		return nil, &mapPhaseFailure{jobName: job.Name, mp: rest, err: err}
	}

	// Merge by split position so reduce input order — and with it the
	// output — matches an unfailed run exactly.
	merged := &mapreduce.MapPhaseResult{
		Outputs:  append([]*mapreduce.MapOutput(nil), partial.Outputs...),
		Stats:    append([]mapreduce.TaskStats(nil), partial.Stats...),
		Counters: make(map[string]int64),
		VTime:    partial.Phase.Makespan + rest.VTime,
	}
	for j, i := range missing {
		merged.Outputs[i] = rest.Outputs[j]
		merged.Stats[i] = rest.Stats[j]
	}
	// The failed phase never folded its completed tasks' counters; the
	// resumed phase's are already merged into rest.Counters.
	addCounters(merged.Counters, partial.Counters)
	addCounters(merged.Counters, rest.Counters)
	for i, st := range partial.Stats {
		if partial.Outputs[i] != nil {
			addCounters(merged.Counters, st.Counters)
		}
	}

	res := &JobResult{Plan: plan, Counters: make(map[string]int64), JobsRun: 1}
	var r *mapreduce.Result
	if job.Reduce == nil {
		r, err = rt.run.FinishMapOnly(job, merged)
	} else {
		r, err = rt.run.RunReducePhase(job, merged)
	}
	if err != nil {
		return nil, fmt.Errorf("efind: job %q: %w", job.Name, err)
	}
	res.raw = append(res.raw, r)
	res.VTime = r.VTime
	addCounters(res.Counters, r.Counters)
	res.Output = r.Output
	return res, nil
}

// addCounters folds one counter map into another.
func addCounters(dst map[string]int64, src map[string]int64) {
	for k, v := range src {
		dst[k] += v
	}
}
