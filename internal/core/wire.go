package core

import (
	"fmt"
	"strconv"
	"strings"
)

// carrier is the record in flight through a re-partitioning shuffle: the
// (possibly pre-processed) pair, the pending per-index key lists, and the
// lookup results attached so far. Carriers are serialized into the shuffle
// value with a length-prefixed encoding that is safe for arbitrary bytes.
type carrier struct {
	Pair    Pair
	Keys    [][]string
	Results [][]KeyResult
}

// size returns the carrier's encoded payload size in bytes without
// building the encoding — the statistics layer uses it to measure the
// paper's Spre and Sidx terms.
func (c *carrier) size() int {
	n := len(c.Pair.Key) + len(c.Pair.Value) + 8
	for _, ks := range c.Keys {
		for _, k := range ks {
			n += len(k) + 4
		}
	}
	for _, rs := range c.Results {
		for _, kr := range rs {
			n += len(kr.Key) + 4
			for _, v := range kr.Values {
				n += len(v) + 4
			}
		}
	}
	return n
}

// encodeCarrier serializes a carrier.
func encodeCarrier(c *carrier) string {
	var b strings.Builder
	b.Grow(c.size() + 32)
	writeStr(&b, c.Pair.Key)
	writeStr(&b, c.Pair.Value)
	writeInt(&b, len(c.Keys))
	for _, ks := range c.Keys {
		writeInt(&b, len(ks))
		for _, k := range ks {
			writeStr(&b, k)
		}
	}
	writeInt(&b, len(c.Results))
	for _, rs := range c.Results {
		writeInt(&b, len(rs))
		for _, kr := range rs {
			writeStr(&b, kr.Key)
			writeInt(&b, len(kr.Values))
			for _, v := range kr.Values {
				writeStr(&b, v)
			}
		}
	}
	return b.String()
}

// maxListLen bounds every list count in a decoded carrier — the outer
// key/result list counts and the per-list element counts alike — so a
// corrupt or hostile length prefix cannot drive huge decode loops.
const maxListLen = 1 << 20

// decodeCarrier parses a serialized carrier.
func decodeCarrier(s string) (*carrier, error) {
	d := &decoder{s: s}
	c := &carrier{}
	c.Pair.Key = d.str()
	c.Pair.Value = d.str()
	nk := d.num()
	if d.err == nil && (nk < 0 || nk > maxListLen) {
		return nil, fmt.Errorf("efind: corrupt carrier: %d key lists", nk)
	}
	c.Keys = make([][]string, 0, max(nk, 0))
	for i := 0; i < nk && d.err == nil; i++ {
		n := d.num()
		if d.err == nil && (n < 0 || n > maxListLen) {
			return nil, fmt.Errorf("efind: corrupt carrier: %d keys in list %d", n, i)
		}
		var ks []string
		for j := 0; j < n && d.err == nil; j++ {
			ks = append(ks, d.str())
		}
		c.Keys = append(c.Keys, ks)
	}
	nr := d.num()
	if d.err == nil && (nr < 0 || nr > maxListLen) {
		return nil, fmt.Errorf("efind: corrupt carrier: %d result lists", nr)
	}
	c.Results = make([][]KeyResult, 0, max(nr, 0))
	for i := 0; i < nr && d.err == nil; i++ {
		n := d.num()
		if d.err == nil && (n < 0 || n > maxListLen) {
			return nil, fmt.Errorf("efind: corrupt carrier: %d results in list %d", n, i)
		}
		var rs []KeyResult
		for j := 0; j < n && d.err == nil; j++ {
			kr := KeyResult{Key: d.str()}
			nv := d.num()
			if d.err == nil && (nv < 0 || nv > maxListLen) {
				return nil, fmt.Errorf("efind: corrupt carrier: %d values for key %q", nv, kr.Key)
			}
			for v := 0; v < nv && d.err == nil; v++ {
				kr.Values = append(kr.Values, d.str())
			}
			rs = append(rs, kr)
		}
		c.Results = append(c.Results, rs)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.s) {
		return nil, fmt.Errorf("efind: corrupt carrier: %d trailing bytes", len(d.s)-d.pos)
	}
	return c, nil
}

func writeStr(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func writeInt(b *strings.Builder, n int) {
	b.WriteString(strconv.Itoa(n))
	b.WriteByte(';')
}

type decoder struct {
	s   string
	pos int
	err error
}

func (d *decoder) readLen(term byte) int {
	if d.err != nil {
		return 0
	}
	start := d.pos
	for d.pos < len(d.s) && d.s[d.pos] != term {
		d.pos++
	}
	if d.pos >= len(d.s) {
		d.err = fmt.Errorf("efind: corrupt carrier: missing %q at %d", term, start)
		return 0
	}
	n, err := strconv.Atoi(d.s[start:d.pos])
	if err != nil || n < 0 {
		d.err = fmt.Errorf("efind: corrupt carrier: bad length at %d", start)
		return 0
	}
	d.pos++ // skip terminator
	return n
}

func (d *decoder) str() string {
	n := d.readLen(':')
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.s) {
		d.err = fmt.Errorf("efind: corrupt carrier: string overruns input at %d", d.pos)
		return ""
	}
	s := d.s[d.pos : d.pos+n]
	d.pos += n
	return s
}

func (d *decoder) num() int { return d.readLen(';') }

// passKeyPrefix marks shuffle records that carry no lookup key for the
// re-partitioned index (preProcess extracted zero keys): they flow through
// the shuffle untouched. Real index keys must not start with this byte.
const passKeyPrefix = "\x00p"

// isPassKey reports whether a shuffle key marks a pass-through record.
func isPassKey(k string) bool { return strings.HasPrefix(k, passKeyPrefix) }
