package core

import (
	"fmt"
)

// ValidateOperator dry-runs an operator against sample records and checks
// the contracts EFind depends on, returning the first violation:
//
//   - preProcess must be deterministic (EFind may run it again in a
//     shuffling job after a plan change);
//   - preProcess must not produce more key lists than attached indices;
//   - postProcess must not panic on empty lookup results (indices may
//     miss, and pass-through shuffle records arrive without results);
//   - postProcess must be deterministic given the same inputs.
//
// Use it in application tests before deploying an operator; the runtime
// itself tolerates most violations but they silently break plan
// equivalence (different strategies would produce different outputs).
func ValidateOperator(op *Operator, samples []Pair) error {
	if err := op.validate(); err != nil {
		return err
	}
	for i, s := range samples {
		a := op.runPre(s)
		b := op.runPre(s)
		if err := samePre(a, b); err != nil {
			return fmt.Errorf("efind: operator %q preProcess is not deterministic on sample %d: %w", op.Name(), i, err)
		}
		if len(a.Keys) > op.NumIndices() {
			return fmt.Errorf("efind: operator %q preProcess emitted %d key lists for %d indices (sample %d)",
				op.Name(), len(a.Keys), op.NumIndices(), i)
		}

		// postProcess with empty results must not panic and must be
		// deterministic.
		empty := make([][]KeyResult, op.NumIndices())
		out1, err := capturePost(op, a.Pair, empty)
		if err != nil {
			return fmt.Errorf("efind: operator %q postProcess failed on empty results (sample %d): %w", op.Name(), i, err)
		}
		out2, _ := capturePost(op, a.Pair, empty)
		if err := samePairs(out1, out2); err != nil {
			return fmt.Errorf("efind: operator %q postProcess is not deterministic (sample %d): %w", op.Name(), i, err)
		}

		// And with synthetic results for every extracted key.
		filled := make([][]KeyResult, op.NumIndices())
		for j := range filled {
			if j < len(a.Keys) {
				for _, ik := range a.Keys[j] {
					filled[j] = append(filled[j], KeyResult{Key: ik, Values: []string{"probe-value"}})
				}
			}
		}
		if _, err := capturePost(op, a.Pair, filled); err != nil {
			return fmt.Errorf("efind: operator %q postProcess failed on synthetic results (sample %d): %w", op.Name(), i, err)
		}
	}
	return nil
}

// samePre compares two PreResults structurally.
func samePre(a, b PreResult) error {
	if a.Pair != b.Pair {
		return fmt.Errorf("pair %v vs %v", a.Pair, b.Pair)
	}
	if len(a.Keys) != len(b.Keys) {
		return fmt.Errorf("%d vs %d key lists", len(a.Keys), len(b.Keys))
	}
	for j := range a.Keys {
		if len(a.Keys[j]) != len(b.Keys[j]) {
			return fmt.Errorf("index %d: %d vs %d keys", j, len(a.Keys[j]), len(b.Keys[j]))
		}
		for k := range a.Keys[j] {
			if a.Keys[j][k] != b.Keys[j][k] {
				return fmt.Errorf("index %d key %d: %q vs %q", j, k, a.Keys[j][k], b.Keys[j][k])
			}
		}
	}
	return nil
}

func samePairs(a, b []Pair) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d emissions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("emission %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// capturePost runs postProcess, converting panics into errors.
func capturePost(op *Operator, pair Pair, results [][]KeyResult) (out []Pair, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	op.runPost(pair, results, func(p Pair) { out = append(out, p) })
	return out, nil
}
