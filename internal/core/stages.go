package core

import (
	"sync"

	"efind/internal/index"
	"efind/internal/lru"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// opExec is the runtime state of one operator under one plan: node-shared
// lookup caches (real and shadow) plus the stage builders that compile the
// plan into chained MapReduce functions. Tasks of different nodes execute
// concurrently under the parallel engine, so the lazily-built nested cache
// maps are guarded by mu; the caches themselves are per-node and each
// node's tasks are serialized by the executor.
type opExec struct {
	op       *Operator
	plan     OperatorPlan
	cacheCap int

	mu      sync.Mutex
	caches  map[int]map[sim.NodeID]*lru.Cache // decision position → node → cache
	shadows map[int]map[sim.NodeID]*lru.Cache
}

func newOpExec(op *Operator, plan OperatorPlan, cacheCap int) *opExec {
	if cacheCap <= 0 {
		cacheCap = DefaultCacheCapacity
	}
	return &opExec{
		op:       op,
		plan:     plan,
		cacheCap: cacheCap,
		caches:   make(map[int]map[sim.NodeID]*lru.Cache),
		shadows:  make(map[int]map[sim.NodeID]*lru.Cache),
	}
}

// cacheFor returns the node's lookup cache for the decision at pos,
// creating it lazily. The cache is shared by all tasks on the node,
// matching the paper's per-machine lookup cache.
func (x *opExec) cacheFor(pos int, node sim.NodeID, shadow bool) *lru.Cache {
	x.mu.Lock()
	defer x.mu.Unlock()
	m := x.caches
	if shadow {
		m = x.shadows
	}
	byNode, ok := m[pos]
	if !ok {
		byNode = make(map[sim.NodeID]*lru.Cache)
		m[pos] = byNode
	}
	c, ok := byNode[node]
	if !ok {
		c = lru.New(x.cacheCap)
		byNode[node] = c
	}
	return c
}

// nodeCaches collects the operator's existing caches (real and shadow)
// for one node.
func (x *opExec) nodeCaches(node sim.NodeID) []*lru.Cache {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []*lru.Cache
	for _, m := range []map[int]map[sim.NodeID]*lru.Cache{x.caches, x.shadows} {
		for _, byNode := range m {
			if c, ok := byNode[node]; ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// snapshotNode captures the state of the operator's caches on one node and
// returns a rollback that rewinds them, resetting any cache the node
// created after the snapshot. The engine's fault tolerance uses it so a
// failed task attempt does not leave the node's shared caches warmed —
// which would skew the measured miss ratio R the cost model consumes.
func (x *opExec) snapshotNode(node sim.NodeID) func() {
	caches := x.nodeCaches(node)
	snaps := make([]*lru.Snapshot, len(caches))
	for i, c := range caches {
		snaps[i] = c.Snapshot()
	}
	return func() {
		known := make(map[*lru.Cache]bool, len(caches))
		for i, c := range caches {
			c.Restore(snaps[i])
			known[c] = true
		}
		for _, c := range x.nodeCaches(node) {
			if !known[c] {
				c.Reset()
			}
		}
	}
}

// valueBytes sizes a lookup result the way the wire format would.
func valueBytes(values []string) int {
	n := 0
	for _, v := range values {
		n += len(v) + 4
	}
	return n
}

// realLookup performs one actual index access from the given node,
// charging the serve time T_j plus network transfer when no replica of the
// key's partition lives on the node.
func (x *opExec) realLookup(ctx *mapreduce.TaskContext, a index.Accessor, ik string) []string {
	opName := x.op.Name()
	values, err := a.Lookup(ik)
	if err != nil {
		// Index errors surface as a counter and an empty result; EFind
		// treats indices as black boxes and cannot retry more sensibly.
		ctx.Inc("efind."+opName+".ix."+a.Name()+".errors", 1)
		values = nil
	}
	serve := a.ServeTime()
	ctx.Charge(serve)
	ctx.Inc(ctrServeNS(opName, a.Name()), int64(serve*1e9))
	ctx.Inc(ctrLookups(opName, a.Name()), 1)
	hosts := a.HostsFor(ik)
	if hosts == nil || !sim.ContainsNode(hosts, ctx.Node) {
		ctx.ChargeNet(float64(len(ik) + 4 + valueBytes(values)))
	}
	return values
}

// countKey records the per-key statistics (Nik, Sik, the FM sketch) for
// one extracted lookup key.
func (x *opExec) countKey(ctx *mapreduce.TaskContext, pos int, ik string) {
	a := x.op.Indices()[x.plan.Decisions[pos].Index]
	op := x.op.Name()
	ctx.Inc(ctrKeys(op, a.Name()), 1)
	ctx.Inc(ctrKeyBytes(op, a.Name()), int64(len(ik)))
	ctx.Sketch(skKeys(op, a.Name()), fmWidth).Add(ik)
}

// countValues records Siv for one key occurrence once its values are
// known (from the index, the cache, or a shuffle-attached result).
func (x *opExec) countValues(ctx *mapreduce.TaskContext, pos int, values []string) {
	a := x.op.Indices()[x.plan.Decisions[pos].Index]
	ctx.Inc(ctrValBytes(x.op.Name(), a.Name()), int64(valueBytes(values)))
}

// lookupInline resolves one key under the decision at pos using the
// Baseline or LookupCache strategy. Baseline additionally probes a
// key-only shadow cache so the miss ratio R is measured without the cache
// being active (§4.2's "simple version of the lookup cache").
func (x *opExec) lookupInline(ctx *mapreduce.TaskContext, pos int, ik string) []string {
	d := x.plan.Decisions[pos]
	a := x.op.Indices()[d.Index]
	opName := x.op.Name()
	x.countKey(ctx, pos, ik)

	var values []string
	switch d.Strategy {
	case LookupCache:
		ctx.Charge(ctx.Cluster().Config().CacheProbeTime)
		ctx.Inc(ctrProbes(opName, a.Name()), 1)
		cache := x.cacheFor(pos, ctx.Node, false)
		if hit, ok := cache.Get(ik); ok {
			values = hit
		} else {
			ctx.Inc(ctrMisses(opName, a.Name()), 1)
			values = x.realLookup(ctx, a, ik)
			cache.Put(ik, values)
		}
	default: // Baseline (shuffle strategies never reach inline lookup)
		shadow := x.cacheFor(pos, ctx.Node, true)
		ctx.Inc(ctrProbes(opName, a.Name()), 1)
		if _, ok := shadow.Get(ik); !ok {
			ctx.Inc(ctrMisses(opName, a.Name()), 1)
			shadow.Put(ik, nil)
		}
		values = x.realLookup(ctx, a, ik)
	}
	x.countValues(ctx, pos, values)
	return values
}

// runPreInstrumented runs preProcess with the N1/S1/Spre counters and
// flags records with more than one key for any index (re-partitioning
// feasibility).
func (x *opExec) runPreInstrumented(ctx *mapreduce.TaskContext, in Pair) *carrier {
	op := x.op.Name()
	ctx.Inc(ctrPreIn(op), 1)
	ctx.Inc(ctrPreInBytes(op), int64(in.Size()))
	pr := x.op.runPre(in)
	c := &carrier{
		Pair:    pr.Pair,
		Keys:    pr.Keys,
		Results: make([][]KeyResult, x.op.NumIndices()),
	}
	ctx.Inc(ctrPreOutBytes(op), int64(c.size()))
	for j, ks := range pr.Keys {
		if len(ks) > 1 && j < x.op.NumIndices() {
			ctx.Inc(ctrMulti(op, x.op.Indices()[j].Name()), 1)
		}
	}
	return c
}

// finishCarrier performs the inline lookups for decisions[startPos:] and
// runs postProcess, emitting (k2, v2) pairs. Decisions before startPos
// must already have results attached (by shuffle jobs).
func (x *opExec) finishCarrier(ctx *mapreduce.TaskContext, c *carrier, startPos int, emit Emit) {
	op := x.op.Name()
	for pos := startPos; pos < len(x.plan.Decisions); pos++ {
		d := x.plan.Decisions[pos]
		if d.Index >= len(c.Keys) {
			continue
		}
		keys := c.Keys[d.Index]
		results := make([]KeyResult, 0, len(keys))
		for _, ik := range keys {
			results = append(results, KeyResult{Key: ik, Values: x.lookupInline(ctx, pos, ik)})
		}
		c.Results[d.Index] = results
	}
	ctx.Inc(ctrIdxBytes(op), int64(c.size()))
	x.op.runPost(c.Pair, c.Results, func(p Pair) {
		ctx.Inc(ctrPostRecords(op), 1)
		ctx.Inc(ctrPostBytes(op), int64(p.Size()))
		emit(p)
	})
}

// inlineStage builds the fully chained stage for an operator whose plan
// has no shuffle strategies: preProcess → lookups → postProcess, all
// within the enclosing task (Figure 6's baseline layout; the lookup-cache
// strategy only changes how lookups resolve).
func (x *opExec) inlineStage() mapreduce.StageFactory {
	return func(node sim.NodeID) mapreduce.Stage {
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				c := x.runPreInstrumented(ctx, in)
				x.finishCarrier(ctx, c, 0, emit)
			},
		}
	}
}

// resumeStage builds the map-side stage of the job following a shuffle:
// it decodes carriers and finishes the operator. When memoFirst is true
// (BoundaryPre), the lookup for decisions[pos] runs here with run-length
// memoization — the shuffle sorted equal keys together, so one real index
// access serves all Θ duplicates in the run.
func (x *opExec) resumeStage(pos int, memoFirst bool) mapreduce.StageFactory {
	return func(node sim.NodeID) mapreduce.Stage {
		var memoKey string
		var memoVals []string
		var memoValid bool
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				c, err := decodeCarrier(in.Value)
				if err != nil {
					ctx.Inc("efind."+x.op.Name()+".carrier.errors", 1)
					return
				}
				next := pos
				if memoFirst {
					d := x.plan.Decisions[pos]
					if d.Index < len(c.Keys) && len(c.Keys[d.Index]) > 0 {
						ik := c.Keys[d.Index][0]
						x.countKey(ctx, pos, ik)
						if !memoValid || memoKey != ik {
							a := x.op.Indices()[d.Index]
							memoVals = x.realLookup(ctx, a, ik)
							memoKey, memoValid = ik, true
						}
						x.countValues(ctx, pos, memoVals)
						c.Results[d.Index] = []KeyResult{{Key: ik, Values: memoVals}}
					}
					next = pos + 1
				}
				x.finishCarrier(ctx, c, next, emit)
			},
		}
	}
}

// shuffleEmitStage builds the map-side stage that starts a shuffle for the
// decision at pos: it runs preProcess (when the operator's records arrive
// as plain pairs) or decodes carriers (when chained after an earlier
// shuffle), then emits (ik, carrier) keyed by the index key so the
// group-by collapses duplicates.
func (x *opExec) shuffleEmitStage(pos int, carrierIn bool) mapreduce.StageFactory {
	return func(node sim.NodeID) mapreduce.Stage {
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				var c *carrier
				if carrierIn {
					var err error
					c, err = decodeCarrier(in.Value)
					if err != nil {
						ctx.Inc("efind."+x.op.Name()+".carrier.errors", 1)
						return
					}
				} else {
					c = x.runPreInstrumented(ctx, in)
				}
				d := x.plan.Decisions[pos]
				ixIdx := -1
				if d.Index < len(c.Keys) {
					ixIdx = d.Index
				}
				key, _ := shuffleKeyFor(c, ixIdx)
				emit(Pair{Key: key, Value: encodeCarrier(c)})
			},
		}
	}
}

// shuffleKeyFor returns the routing key for index position ixIdx of the
// carrier (-1 or an absent key list yields a pass-through key).
func shuffleKeyFor(c *carrier, ixIdx int) (string, bool) {
	if ixIdx >= 0 && ixIdx < len(c.Keys) && len(c.Keys[ixIdx]) > 0 {
		return c.Keys[ixIdx][0], true
	}
	return passKeyPrefix + c.Pair.Key, false
}

// groupReduce builds the reduce function of a shuffle job for the decision
// at pos. The group key is the index key; one real lookup serves the whole
// group (the Θ deduplication of §3.3). Behaviour then depends on the
// boundary:
//
//   - BoundaryPre: no lookup here; grouped carriers are re-emitted so the
//     next job's map can do memoized lookups (possibly with index
//     locality placement).
//   - BoundaryIdx: lookup once, attach the result to every carrier, emit
//     carriers.
//   - BoundaryLate: lookup once, attach, and run the continuation stages
//     (the rest of the pipeline up to the next job boundary) inside this
//     reduce, materializing their final output.
//
// When emitNextKey ≥ 0 the operator has another shuffle index after this
// one: carriers are re-keyed by that index for the next shuffle job.
func (x *opExec) groupReduce(pos int, boundary Boundary, emitNextPos int, continuation []mapreduce.StageFactory) mapreduce.ReduceFunc {
	return func(ctx *mapreduce.TaskContext, key string, values []string, emit Emit) {
		d := x.plan.Decisions[pos]
		pass := isPassKey(key)

		var lookedUp []string
		doLookup := boundary != BoundaryPre && !pass
		if doLookup {
			a := x.op.Indices()[d.Index]
			lookedUp = x.realLookup(ctx, a, key)
		}

		var contPipe *reducePipe
		if boundary == BoundaryLate {
			contPipe = newReducePipe(ctx, continuation, emit)
			defer contPipe.close()
		}

		for _, v := range values {
			c, err := decodeCarrier(v)
			if err != nil {
				ctx.Inc("efind."+x.op.Name()+".carrier.errors", 1)
				continue
			}
			if doLookup && d.Index < len(c.Results) {
				x.countKey(ctx, pos, key)
				x.countValues(ctx, pos, lookedUp)
				c.Results[d.Index] = []KeyResult{{Key: key, Values: lookedUp}}
			}
			switch {
			case boundary == BoundaryLate:
				contPipe.process(Pair{Key: key, Value: encodeCarrier(c)})
			case emitNextPos >= 0:
				nd := x.plan.Decisions[emitNextPos]
				nk, _ := shuffleKeyFor(c, nd.Index)
				emit(Pair{Key: nk, Value: encodeCarrier(c)})
			default:
				emit(Pair{Key: key, Value: encodeCarrier(c)})
			}
		}
	}
}

// reducePipe runs a stage pipeline inside a reduce function (the
// BoundaryLate continuation). Stages are instantiated once per group; the
// stage factories' node-level state (caches) still dedups across groups.
type reducePipe struct {
	ctx    *mapreduce.TaskContext
	stages []mapreduce.Stage
	emits  []Emit
}

func newReducePipe(ctx *mapreduce.TaskContext, factories []mapreduce.StageFactory, sink Emit) *reducePipe {
	p := &reducePipe{ctx: ctx}
	for _, f := range factories {
		p.stages = append(p.stages, f(ctx.Node))
	}
	p.emits = make([]Emit, len(p.stages)+1)
	p.emits[len(p.stages)] = sink
	for i := len(p.stages) - 1; i >= 0; i-- {
		st, next := p.stages[i], p.emits[i+1]
		p.emits[i] = func(pr Pair) { st.Process(ctx, pr, next) }
	}
	for _, s := range p.stages {
		s.Open(ctx)
	}
	return p
}

func (p *reducePipe) process(pr Pair) { p.emits[0](pr) }

func (p *reducePipe) close() {
	for i, s := range p.stages {
		s.Close(p.ctx, p.emits[i+1])
	}
}

// mapperStage wraps the user's original Map function, measuring its
// output size (the paper's Smap term).
func mapperStage(m mapreduce.MapFunc) mapreduce.StageFactory {
	return func(sim.NodeID) mapreduce.Stage {
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				m(ctx, in, func(p Pair) {
					ctx.Inc(ctrMapOutBytes, int64(p.Size()))
					ctx.Inc(ctrMapOutRecords, 1)
					emit(p)
				})
			},
		}
	}
}
