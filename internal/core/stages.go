package core

import (
	"efind/internal/index"
	"efind/internal/ixclient"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// opExec is the runtime state of one operator under one plan: one index
// client per plan decision, plus the stage builders that compile the plan
// into chained MapReduce functions. All caching, retry, error-policy, and
// cost-accounting behaviour lives inside the clients (internal/ixclient);
// this file only contains strategy logic — which key is resolved where,
// and how results travel between jobs.
type opExec struct {
	op        *Operator
	plan      OperatorPlan
	batchSize int

	// clients is indexed by decision position. Decisions with an inline
	// strategy get a caching client (real for LookupCache, shadow for
	// Baseline); shuffle decisions get a cache-less client, because their
	// group lookups are already deduplicated by the shuffle.
	clients []*ixclient.Client
}

func newOpExec(op *Operator, plan OperatorPlan, conf *IndexJobConf) *opExec {
	x := &opExec{
		op:      op,
		plan:    plan,
		clients: make([]*ixclient.Client, len(plan.Decisions)),
	}
	if conf.Batch {
		x.batchSize = conf.BatchSize
	}
	for pos, d := range plan.Decisions {
		mode := ixclient.CacheOff
		switch d.Strategy {
		case LookupCache, Build:
			// The build strategy's lookups are cache-fronted like the
			// lookup-cache strategy (costBuild prices them that way); the
			// piggyback building itself is a separate map stage.
			mode = ixclient.CacheReal
		case Baseline:
			mode = ixclient.CacheShadow
		}
		x.clients[pos] = ixclient.New(op.Indices()[d.Index], ixclient.Options{
			Op:            op.Name(),
			CacheMode:     mode,
			CacheCapacity: conf.CacheCapacity,
			ErrorPolicy:   conf.ErrorPolicy,
			Retry:         conf.Retry,
			Batch:         conf.Batch,
			Chaos:         conf.Chaos,
			SharedCache:   conf.SharedCache,
		})
	}
	return x
}

// snapshotNode captures the state of the operator's clients' caches on one
// node and returns a rollback that rewinds them (see Client.SnapshotNode).
func (x *opExec) snapshotNode(node sim.NodeID) func() {
	rollbacks := make([]func(), len(x.clients))
	for i, c := range x.clients {
		rollbacks[i] = c.SnapshotNode(node)
	}
	return func() {
		for _, rb := range rollbacks {
			rb()
		}
	}
}

// resetNode drops the operator clients' caches on one node (node crash:
// per-machine soft state restarts cold).
func (x *opExec) resetNode(node sim.NodeID) {
	for _, c := range x.clients {
		c.ResetNode(node)
	}
}

// lookupInline resolves one key under the decision at pos using the
// Baseline or LookupCache strategy, via the decision's client (which owns
// the real or shadow cache, §3.2/§4.2), recording the key and result
// statistics.
func (x *opExec) lookupInline(ctx *mapreduce.TaskContext, pos int, ik string) []string {
	cl := x.clients[pos]
	cl.CountKey(ctx, ik)
	values := cl.Lookup(ctx, ik)
	cl.CountValues(ctx, values)
	return values
}

// runPreInstrumented runs preProcess with the N1/S1/Spre counters and
// flags records with more than one key for any index (re-partitioning
// feasibility).
func (x *opExec) runPreInstrumented(ctx *mapreduce.TaskContext, in Pair) *carrier {
	op := x.op.Name()
	ctx.Inc(ctrPreIn(op), 1)
	ctx.Inc(ctrPreInBytes(op), int64(in.Size()))
	pr := x.op.runPre(in)
	c := &carrier{
		Pair:    pr.Pair,
		Keys:    pr.Keys,
		Results: make([][]KeyResult, x.op.NumIndices()),
	}
	ctx.Inc(ctrPreOutBytes(op), int64(c.size()))
	for j, ks := range pr.Keys {
		if len(ks) > 1 && j < x.op.NumIndices() {
			ctx.Inc(ctrMulti(op, x.op.Indices()[j].Name()), 1)
		}
	}
	return c
}

// finishCarrier performs the inline lookups for decisions[startPos:] and
// runs postProcess, emitting (k2, v2) pairs. Decisions before startPos
// must already have results attached (by shuffle jobs).
func (x *opExec) finishCarrier(ctx *mapreduce.TaskContext, c *carrier, startPos int, emit Emit) {
	for pos := startPos; pos < len(x.plan.Decisions); pos++ {
		d := x.plan.Decisions[pos]
		if d.Index >= len(c.Keys) {
			continue
		}
		keys := c.Keys[d.Index]
		results := make([]KeyResult, 0, len(keys))
		for _, ik := range keys {
			results = append(results, KeyResult{Key: ik, Values: x.lookupInline(ctx, pos, ik)})
		}
		c.Results[d.Index] = results
	}
	x.emitPost(ctx, c, emit)
}

// emitPost charges the carrier's post-lookup size and runs postProcess.
func (x *opExec) emitPost(ctx *mapreduce.TaskContext, c *carrier, emit Emit) {
	op := x.op.Name()
	ctx.Inc(ctrIdxBytes(op), int64(c.size()))
	x.op.runPost(c.Pair, c.Results, func(p Pair) {
		ctx.Inc(ctrPostRecords(op), 1)
		ctx.Inc(ctrPostBytes(op), int64(p.Size()))
		emit(p)
	})
}

// inlineStage builds the fully chained stage for an operator whose plan
// has no shuffle strategies: preProcess → lookups → postProcess, all
// within the enclosing task (Figure 6's baseline layout; the lookup-cache
// strategy only changes how lookups resolve).
func (x *opExec) inlineStage() mapreduce.StageFactory {
	if x.batchSize > 0 {
		return x.batchedInlineStage()
	}
	return func(node sim.NodeID) mapreduce.Stage {
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				c := x.runPreInstrumented(ctx, in)
				x.finishCarrier(ctx, c, 0, emit)
			},
		}
	}
}

// batchedInlineStage is inlineStage with record batching: carriers are
// buffered (per task) up to the configured batch size, and each flush
// resolves all buffered keys of each decision through one LookupBatch
// call, which lets BatchAccessor indices answer with one multi-get per
// partition. The output records are identical to the unbatched stage, in
// the same order; only the charged access cost differs (DESIGN.md,
// "Index client pipeline").
func (x *opExec) batchedInlineStage() mapreduce.StageFactory {
	return func(node sim.NodeID) mapreduce.Stage {
		var buf []*carrier
		flush := func(ctx *mapreduce.TaskContext, emit Emit) {
			if len(buf) == 0 {
				return
			}
			for pos := range x.plan.Decisions {
				d := x.plan.Decisions[pos]
				cl := x.clients[pos]
				var keys []string
				for _, c := range buf {
					if d.Index >= len(c.Keys) {
						continue
					}
					for _, ik := range c.Keys[d.Index] {
						cl.CountKey(ctx, ik)
						keys = append(keys, ik)
					}
				}
				vals := cl.LookupBatch(ctx, keys)
				i := 0
				for _, c := range buf {
					if d.Index >= len(c.Keys) {
						continue
					}
					ks := c.Keys[d.Index]
					results := make([]KeyResult, 0, len(ks))
					for _, ik := range ks {
						cl.CountValues(ctx, vals[i])
						results = append(results, KeyResult{Key: ik, Values: vals[i]})
						i++
					}
					c.Results[d.Index] = results
				}
			}
			for _, c := range buf {
				x.emitPost(ctx, c, emit)
			}
			buf = buf[:0]
		}
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				buf = append(buf, x.runPreInstrumented(ctx, in))
				if len(buf) >= x.batchSize {
					flush(ctx, emit)
				}
			},
			OnClose: flush,
		}
	}
}

// resumeStage builds the map-side stage of the job following a shuffle:
// it decodes carriers and finishes the operator. When memoFirst is true
// (BoundaryPre), the lookup for decisions[pos] runs here with run-length
// memoization — the shuffle sorted equal keys together, so one real index
// access serves all Θ duplicates in the run.
func (x *opExec) resumeStage(pos int, memoFirst bool) mapreduce.StageFactory {
	return func(node sim.NodeID) mapreduce.Stage {
		var memoKey string
		var memoVals []string
		var memoValid bool
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				c, err := decodeCarrier(in.Value)
				if err != nil {
					ctx.Inc("efind."+x.op.Name()+".carrier.errors", 1)
					return
				}
				next := pos
				if memoFirst {
					d := x.plan.Decisions[pos]
					if d.Index < len(c.Keys) && len(c.Keys[d.Index]) > 0 {
						ik := c.Keys[d.Index][0]
						cl := x.clients[pos]
						cl.CountKey(ctx, ik)
						if !memoValid || memoKey != ik {
							memoVals = cl.Access(ctx, ik)
							memoKey, memoValid = ik, true
						}
						cl.CountValues(ctx, memoVals)
						c.Results[d.Index] = []KeyResult{{Key: ik, Values: memoVals}}
					}
					next = pos + 1
				}
				x.finishCarrier(ctx, c, next, emit)
			},
		}
	}
}

// shuffleEmitStage builds the map-side stage that starts a shuffle for the
// decision at pos: it runs preProcess (when the operator's records arrive
// as plain pairs) or decodes carriers (when chained after an earlier
// shuffle), then emits (ik, carrier) keyed by the index key so the
// group-by collapses duplicates.
func (x *opExec) shuffleEmitStage(pos int, carrierIn bool) mapreduce.StageFactory {
	return func(node sim.NodeID) mapreduce.Stage {
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				var c *carrier
				if carrierIn {
					var err error
					c, err = decodeCarrier(in.Value)
					if err != nil {
						ctx.Inc("efind."+x.op.Name()+".carrier.errors", 1)
						return
					}
				} else {
					c = x.runPreInstrumented(ctx, in)
				}
				d := x.plan.Decisions[pos]
				ixIdx := -1
				if d.Index < len(c.Keys) {
					ixIdx = d.Index
				}
				key, _ := shuffleKeyFor(c, ixIdx)
				emit(Pair{Key: key, Value: encodeCarrier(c)})
			},
		}
	}
}

// shuffleKeyFor returns the routing key for index position ixIdx of the
// carrier (-1 or an absent key list yields a pass-through key).
func shuffleKeyFor(c *carrier, ixIdx int) (string, bool) {
	if ixIdx >= 0 && ixIdx < len(c.Keys) && len(c.Keys[ixIdx]) > 0 {
		return c.Keys[ixIdx][0], true
	}
	return passKeyPrefix + c.Pair.Key, false
}

// groupReduce builds the reduce function of a shuffle job for the decision
// at pos. The group key is the index key; one real lookup serves the whole
// group (the Θ deduplication of §3.3). Behaviour then depends on the
// boundary:
//
//   - BoundaryPre: no lookup here; grouped carriers are re-emitted so the
//     next job's map can do memoized lookups (possibly with index
//     locality placement).
//   - BoundaryIdx: lookup once, attach the result to every carrier, emit
//     carriers.
//   - BoundaryLate: lookup once, attach, and run the continuation stages
//     (the rest of the pipeline up to the next job boundary) inside this
//     reduce, materializing their final output.
//
// When emitNextKey ≥ 0 the operator has another shuffle index after this
// one: carriers are re-keyed by that index for the next shuffle job.
func (x *opExec) groupReduce(pos int, boundary Boundary, emitNextPos int, continuation []mapreduce.StageFactory) mapreduce.ReduceFunc {
	return func(ctx *mapreduce.TaskContext, key string, values []string, emit Emit) {
		d := x.plan.Decisions[pos]
		pass := isPassKey(key)

		var lookedUp []string
		doLookup := boundary != BoundaryPre && !pass
		if doLookup {
			lookedUp = x.clients[pos].Access(ctx, key)
		}

		var contPipe *reducePipe
		if boundary == BoundaryLate {
			contPipe = newReducePipe(ctx, continuation, emit)
			defer contPipe.close()
		}

		for _, v := range values {
			c, err := decodeCarrier(v)
			if err != nil {
				ctx.Inc("efind."+x.op.Name()+".carrier.errors", 1)
				continue
			}
			if doLookup && d.Index < len(c.Results) {
				cl := x.clients[pos]
				cl.CountKey(ctx, key)
				cl.CountValues(ctx, lookedUp)
				c.Results[d.Index] = []KeyResult{{Key: key, Values: lookedUp}}
			}
			switch {
			case boundary == BoundaryLate:
				contPipe.process(Pair{Key: key, Value: encodeCarrier(c)})
			case emitNextPos >= 0:
				nd := x.plan.Decisions[emitNextPos]
				nk, _ := shuffleKeyFor(c, nd.Index)
				emit(Pair{Key: nk, Value: encodeCarrier(c)})
			default:
				emit(Pair{Key: key, Value: encodeCarrier(c)})
			}
		}
	}
}

// reducePipe runs a stage pipeline inside a reduce function (the
// BoundaryLate continuation). Stages are instantiated once per group; the
// stage factories' node-level state (caches) still dedups across groups.
type reducePipe struct {
	ctx    *mapreduce.TaskContext
	stages []mapreduce.Stage
	emits  []Emit
}

func newReducePipe(ctx *mapreduce.TaskContext, factories []mapreduce.StageFactory, sink Emit) *reducePipe {
	p := &reducePipe{ctx: ctx}
	for _, f := range factories {
		p.stages = append(p.stages, f(ctx.Node))
	}
	p.emits = make([]Emit, len(p.stages)+1)
	p.emits[len(p.stages)] = sink
	for i := len(p.stages) - 1; i >= 0; i-- {
		st, next := p.stages[i], p.emits[i+1]
		p.emits[i] = func(pr Pair) { st.Process(ctx, pr, next) }
	}
	for _, s := range p.stages {
		s.Open(ctx)
	}
	return p
}

func (p *reducePipe) process(pr Pair) { p.emits[0](pr) }

func (p *reducePipe) close() {
	for i, s := range p.stages {
		s.Close(p.ctx, p.emits[i+1])
	}
}

// buildStage is the piggyback index builder: a pass-through stage on the
// main job's map scan that, for offered splits, extracts index entries
// from the records the task reads anyway and stages them for the
// post-job commit. The offer set lives on the buildTarget so the
// adaptive runtime can re-freeze it for subset phases; it is immutable
// while a job runs, so tasks read it without synchronization. Charges
// BuildCharge per extracted record — the cost model's BuildCost term —
// and counts records, staged splits, and charged nanoseconds.
func buildStage(bt *buildTarget) mapreduce.StageFactory {
	op, ix := bt.op, bt.b.Name()
	return func(node sim.NodeID) mapreduce.Stage {
		var entries []index.BuildEntry
		active := false
		return &mapreduce.FuncStage{
			OnOpen: func(ctx *mapreduce.TaskContext) {
				// Split, not TaskID: adaptive plan-change phases run a
				// subset of splits and the builder must key staging by
				// the global split number.
				active = ctx.Kind == mapreduce.MapTask && bt.offer[ctx.Split]
				entries = nil
			},
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				if active {
					entries = append(entries, bt.b.Extract(in.Key, in.Value)...)
					charge := bt.b.BuildCharge()
					ctx.Charge(charge)
					ctx.Inc(ctrBuildRecords(op, ix), 1)
					ctx.Inc(ctrBuildNS(op, ix), int64(charge*1e9))
				}
				emit(in)
			},
			OnClose: func(ctx *mapreduce.TaskContext, emit Emit) {
				if active {
					bt.b.Stage(ctx.Node, ctx.Split, entries)
					ctx.Inc(ctrBuildSplits(op, ix), 1)
				}
			},
		}
	}
}

// mapperStage wraps the user's original Map function, measuring its
// output size (the paper's Smap term).
func mapperStage(m mapreduce.MapFunc) mapreduce.StageFactory {
	return func(sim.NodeID) mapreduce.Stage {
		return &mapreduce.FuncStage{
			OnProcess: func(ctx *mapreduce.TaskContext, in Pair, emit Emit) {
				m(ctx, in, func(p Pair) {
					ctx.Inc(ctrMapOutBytes, int64(p.Size()))
					ctx.Inc(ctrMapOutRecords, 1)
					emit(p)
				})
			},
		}
	}
}
