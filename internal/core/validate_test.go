package core

import (
	"math/rand"
	"strings"
	"testing"
)

func validateSamples() []Pair {
	return []Pair{
		{Key: "r1", Value: "payload ik0001"},
		{Key: "r2", Value: "payload ik0002"},
		{Key: "r3", Value: ""},
	}
}

func TestValidateOperatorAcceptsGoodOperator(t *testing.T) {
	op := NewOperator("good",
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			if len(fields) == 0 {
				return PreResult{Pair: in}
			}
			return PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair Pair, results [][]KeyResult, emit Emit) {
			v := "none"
			if len(results) > 0 && len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				v = results[0][0].Values[0]
			}
			emit(Pair{Key: pair.Key, Value: v})
		})
	op.AddIndex(fakeAccessor{name: "ix"})
	if err := ValidateOperator(op, validateSamples()); err != nil {
		t.Fatalf("good operator rejected: %v", err)
	}
}

func TestValidateOperatorCatchesNondeterministicPre(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	op := NewOperator("flaky-pre",
		func(in Pair) PreResult {
			return PreResult{Pair: in, Keys: [][]string{{strings.Repeat("k", 1+rng.Intn(8))}}}
		}, nil)
	op.AddIndex(fakeAccessor{name: "ix"})
	if err := ValidateOperator(op, validateSamples()); err == nil {
		t.Fatal("nondeterministic preProcess should be rejected")
	}
}

func TestValidateOperatorCatchesPanicOnEmptyResults(t *testing.T) {
	op := NewOperator("panicky",
		nil,
		func(pair Pair, results [][]KeyResult, emit Emit) {
			// Classic bug: assuming every lookup succeeded.
			emit(Pair{Key: results[0][0].Values[0], Value: pair.Key})
		})
	op.AddIndex(fakeAccessor{name: "ix"})
	err := ValidateOperator(op, validateSamples())
	if err == nil {
		t.Fatal("postProcess indexing into empty results should be rejected")
	}
	if !strings.Contains(err.Error(), "empty results") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestValidateOperatorCatchesTooManyKeyLists(t *testing.T) {
	op := NewOperator("overwide",
		func(in Pair) PreResult {
			return PreResult{Pair: in, Keys: [][]string{{"a"}, {"b"}, {"c"}}}
		}, nil)
	op.AddIndex(fakeAccessor{name: "ix"}) // one index, three key lists
	if err := ValidateOperator(op, validateSamples()); err == nil {
		t.Fatal("too many key lists should be rejected")
	}
}

func TestValidateOperatorRejectsNoIndices(t *testing.T) {
	if err := ValidateOperator(NewOperator("empty", nil, nil), validateSamples()); err == nil {
		t.Fatal("operator without indices should be rejected")
	}
}
