package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"efind/internal/index"
	"efind/internal/ixclient"
)

// flakyAccessor fails every failEvery-th lookup with a transient error.
// Safe for the parallel executor's concurrent lookups.
type flakyAccessor struct {
	fakeAccessor
	failEvery int64
	calls     atomic.Int64
}

func (f *flakyAccessor) Lookup(k string) ([]string, error) {
	if n := f.calls.Add(1); f.failEvery > 0 && n%f.failEvery == 0 {
		return nil, fmt.Errorf("flaky: %w", index.ErrTransient)
	}
	return f.fakeAccessor.Lookup(k)
}

// TestErrorFailJobReportsIndexAndKey: under ErrorFailJob an index error
// must fail the whole job — no silent empty results — and the error must
// name the failing index and the lookup key.
func TestErrorFailJobReportsIndexAndKey(t *testing.T) {
	e := newE2E(t, 100, 10)
	op := NewOperator("err-op", nil, nil).AddIndex(failingAccessor{fakeAccessor{name: "down"}})
	conf := e.conf("job-failpolicy", ModeBaseline, op, headPlace)
	conf.ErrorPolicy = ErrorFailJob
	_, err := e.rt.Submit(conf)
	if err == nil {
		t.Fatal("job with a failing index under ErrorFailJob must fail")
	}
	var ie *ixclient.IndexError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not unwrap to an IndexError", err)
	}
	if ie.Index != "down" || ie.Op != "err-op" {
		t.Fatalf("IndexError names %s/%s, want err-op/down", ie.Op, ie.Index)
	}
	if ie.Key == "" || !strings.Contains(err.Error(), ie.Key) {
		t.Fatalf("error %q does not report the lookup key", err)
	}
}

// TestJobResultReportsIndexErrorTotals: every submission reports per-index
// error totals, zero entries included.
func TestJobResultReportsIndexErrorTotals(t *testing.T) {
	e := newE2E(t, 100, 10)

	op := NewOperator("err-op", nil, nil).AddIndex(failingAccessor{fakeAccessor{name: "down"}})
	res, err := e.rt.Submit(e.conf("job-errtotals", ModeBaseline, op, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IndexErrors["err-op/down"]; got != 100 {
		t.Fatalf("IndexErrors[err-op/down] = %d, want 100", got)
	}

	ok := e.lookupOp("ok-op")
	res, err = e.rt.Submit(e.conf("job-noerr", ModeBaseline, ok, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	got, present := res.IndexErrors["ok-op/"+e.store.Name()]
	if !present {
		t.Fatal("IndexErrors must contain a zero entry for a healthy index")
	}
	if got != 0 {
		t.Fatalf("IndexErrors for healthy index = %d, want 0", got)
	}
}

// TestBatchedRunMatchesUnbatched: enabling the multi-get fast path must
// not change the job's output, and must reduce the charged network round
// trips (one per remote partition group instead of one per remote key).
func TestBatchedRunMatchesUnbatched(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeCache} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(batch bool) ([]string, *JobResult) {
				e := newE2E(t, 500, 30)
				conf := e.conf("job-batch-"+mode.String(), mode, e.lookupOp("bop"), headPlace)
				conf.Batch = batch
				res, err := e.rt.Submit(conf)
				if err != nil {
					t.Fatal(err)
				}
				return sortedOutput(res.Output), res
			}
			offOut, offRes := run(false)
			onOut, onRes := run(true)
			sameOutput(t, "batched-vs-unbatched", offOut, onOut)

			ctr := ixclient.CtrNetRoundTrips("bop", "kv")
			rtOff, rtOn := offRes.Counters[ctr], onRes.Counters[ctr]
			if rtOn >= rtOff {
				t.Fatalf("batching should reduce round trips: off=%d on=%d", rtOff, rtOn)
			}
			if onRes.VTime >= offRes.VTime {
				t.Fatalf("batching should reduce virtual time: off=%g on=%g", offRes.VTime, onRes.VTime)
			}
		})
	}
}

// TestBatchOffIsBitIdentical: with Batch left off, the refactored client
// pipeline must charge exactly what the pre-pipeline executor charged —
// same virtual time, same counters (the new net.roundtrips counter aside,
// which is additive).
func TestBatchOffIsBitIdentical(t *testing.T) {
	run := func(name string) *JobResult {
		e := newE2E(t, 400, 25)
		res, err := e.rt.Submit(e.conf(name, ModeCache, e.lookupOp("iop"), headPlace))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run("job-ident-a"), run("job-ident-b")
	if a.VTime != b.VTime {
		t.Fatalf("vtime not deterministic: %g vs %g", a.VTime, b.VTime)
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			t.Fatalf("counter %s differs: %d vs %d", k, v, b.Counters[k])
		}
	}
}

// TestRetryPolicySurvivesJobRun: a transiently flaky index with retries
// configured completes the job with full output and counted retries.
func TestRetryPolicySurvivesJobRun(t *testing.T) {
	e := newE2E(t, 100, 10)
	flaky := &flakyAccessor{fakeAccessor: fakeAccessor{name: "flaky"}, failEvery: 7}
	op := NewOperator("r-op", nil, nil).AddIndex(flaky)
	conf := e.conf("job-retry", ModeBaseline, op, headPlace)
	conf.Retry = RetryPolicy{Max: 2, Backoff: 0.0001}
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 100 {
		t.Fatalf("records should still flow: %d", res.Output.Records())
	}
	if r := res.Counters[ixclient.CtrRetries("r-op", "flaky")]; r == 0 {
		t.Fatal("flaky index should have counted retries")
	}
	if n := res.IndexErrors["r-op/flaky"]; n != 0 {
		t.Fatalf("retried lookups should not surface errors, got %d", n)
	}
}
