package core

import (
	"fmt"
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// newAdaptiveE2E builds an environment whose input is large enough for
// several map waves, with uniform per-chunk statistics (low variance) and
// heavy global key redundancy so re-optimization fires.
func newAdaptiveE2E(t *testing.T, records, distinctKeys int) *e2eEnv {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2 // 8 map slots → waves of 8 splits
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.01
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 2 << 10
	engine := mapreduce.New(cluster, fs)
	rt := NewRuntime(engine)

	store := kvstore.NewHash(cluster, "kv", 16, 3, 0.002)
	for i := 0; i < distinctKeys; i++ {
		store.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("value-for-%04d", i))
	}
	recs := make([]dfs.Record, records)
	for i := range recs {
		// Interleave keys so every chunk sees the same key distribution
		// (low variance across tasks) while duplicates spread globally.
		ik := fmt.Sprintf("ik%04d", i%distinctKeys)
		recs[i] = dfs.Record{Key: fmt.Sprintf("r%05d", i), Value: "payload " + ik}
	}
	input, err := fs.Create("input", recs)
	if err != nil {
		t.Fatal(err)
	}
	waves := (len(input.Chunks) + cluster.MapSlots() - 1) / cluster.MapSlots()
	if waves < 2 {
		t.Fatalf("adaptive test needs ≥2 map waves, got %d (%d chunks)", waves, len(input.Chunks))
	}
	return &e2eEnv{cluster: cluster, fs: fs, rt: rt, store: store, input: input}
}

func TestDynamicReplansAtMapPhase(t *testing.T) {
	e := newAdaptiveE2E(t, 4000, 40) // Θ = 100, slow index → repart-worthy
	op := e.lookupOp("op-dyn")
	conf := e.conf("job-dyn", ModeDynamic, op, headPlace)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned {
		t.Fatalf("dynamic job should have replanned (plan %v)", res.Plan)
	}
	if res.ReplanPhase != "map" {
		t.Fatalf("replan phase = %q, want map", res.ReplanPhase)
	}
	d := res.Plan.Head[0].Decisions[0]
	if d.Strategy == Baseline {
		t.Fatalf("new plan still baseline: %v", res.Plan)
	}
	if res.Output.Records() != 4000 {
		t.Fatalf("dynamic output has %d records, want 4000", res.Output.Records())
	}
}

func TestDynamicOutputMatchesBaseline(t *testing.T) {
	e := newAdaptiveE2E(t, 3000, 30)
	opB := e.lookupOp("op-cmp-base")
	base, err := e.rt.Submit(e.conf("job-cmp-base", ModeBaseline, opB, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	opD := e.lookupOp("op-cmp-dyn")
	dyn, err := e.rt.Submit(e.conf("job-cmp-dyn", ModeDynamic, opD, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "dynamic-vs-baseline", sortedOutput(base.Output), sortedOutput(dyn.Output))
}

func TestDynamicBeatsBaselineUnderRedundancy(t *testing.T) {
	e := newAdaptiveE2E(t, 6000, 40)
	opB := e.lookupOp("op-t-base")
	base, err := e.rt.Submit(e.conf("job-t-base", ModeBaseline, opB, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	opD := e.lookupOp("op-t-dyn")
	dyn, err := e.rt.Submit(e.conf("job-t-dyn", ModeDynamic, opD, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Replanned {
		t.Fatal("expected a replan")
	}
	if dyn.VTime >= base.VTime {
		t.Fatalf("dynamic (%g) should beat baseline (%g) under heavy redundancy", dyn.VTime, base.VTime)
	}
}

func TestDynamicSticksWithBaselineWhenOptimal(t *testing.T) {
	// All keys distinct, tiny results, fast index: baseline IS the optimal
	// plan, so no replan should happen.
	e := newAdaptiveE2E(t, 3000, 3000)
	// Make lookups cheap so no alternative wins.
	store := kvstore.NewHash(e.cluster, "kv-fast", 16, 3, 1e-7)
	for i := 0; i < 3000; i++ {
		store.Put(fmt.Sprintf("ik%04d", i), "x")
	}
	op := NewOperator("op-stay",
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			return PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		}, nil)
	op.AddIndex(store)
	conf := e.conf("job-stay", ModeDynamic, op, headPlace)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatalf("no replan expected for a baseline-optimal job, got %v", res.Plan)
	}
	if res.Output.Records() != 3000 {
		t.Fatalf("records = %d", res.Output.Records())
	}
}

func TestDynamicReplanDisabledByAblationKnob(t *testing.T) {
	e := newAdaptiveE2E(t, 4000, 40)
	op := e.lookupOp("op-noreplan")
	conf := e.conf("job-noreplan", ModeDynamic, op, headPlace)
	conf.MaxPlanChanges = -1
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("MaxPlanChanges=-1 must disable replanning")
	}
	if res.Output.Records() != 4000 {
		t.Fatalf("records = %d", res.Output.Records())
	}
}

func TestDynamicHighVarianceBlocksReplan(t *testing.T) {
	// Skewed input: some chunks have all-duplicate keys, others all
	// distinct → per-task statistics vary wildly → Algorithm 1 refuses.
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.01
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 2 << 10
	rt := NewRuntime(mapreduce.New(cluster, fs))
	store := kvstore.NewHash(cluster, "kv", 16, 3, 0.002)
	for i := 0; i < 500; i++ {
		store.Put(fmt.Sprintf("ik%04d", i), strings.Repeat("v", 1+(i%200)*10))
	}
	recs := make([]dfs.Record, 4000)
	for i := range recs {
		var ik string
		if (i/64)%2 == 0 {
			ik = "ik0000" // hot chunk: one key
		} else {
			ik = fmt.Sprintf("ik%04d", i%500)
		}
		// Values of wildly varying sizes amplify per-task size variance.
		recs[i] = dfs.Record{Key: fmt.Sprintf("r%05d", i), Value: strings.Repeat("x", 1+(i%40)*20) + " " + ik}
	}
	input, err := fs.Create("input", recs)
	if err != nil {
		t.Fatal(err)
	}
	e := &e2eEnv{cluster: cluster, fs: fs, rt: rt, store: store, input: input}
	op := e.lookupOp("op-skew")
	conf := e.conf("job-skew", ModeDynamic, op, headPlace)
	conf.VarianceThreshold = 0.0001 // effectively require perfect stability
	res, err := rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("high variance must block re-optimization")
	}
}

func TestDynamicReplansAtReducePhase(t *testing.T) {
	// Tail operator with heavy redundancy: map phase has no operators, so
	// the change can only happen in the reduce phase.
	e := newAdaptiveE2E(t, 4000, 8)
	op := e.lookupOp("op-tail-dyn")
	conf := e.conf("job-tail-dyn", ModeDynamic, op, tailPlace)
	conf.NumReduce = 12 // 4 reduce slots → 3 reduce waves
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 4000 {
		t.Fatalf("records = %d, want 4000", res.Output.Records())
	}
	if res.Replanned && res.ReplanPhase != "reduce" {
		t.Fatalf("tail-only job replanned at %q", res.ReplanPhase)
	}
	// Output must match the baseline run regardless of whether the plan
	// changed.
	opB := e.lookupOp("op-tail-base")
	confB := e.conf("job-tail-base", ModeBaseline, opB, tailPlace)
	confB.NumReduce = 12
	base, err := e.rt.Submit(confB)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "tail-dynamic", sortedOutput(base.Output), sortedOutput(res.Output))
}

func TestCollectStatsMeasuresTable1Terms(t *testing.T) {
	e := newAdaptiveE2E(t, 3000, 50)
	op := e.lookupOp("op-terms")
	conf := e.conf("job-terms", ModeBaseline, op, headPlace)
	if err := e.rt.CollectStats(conf); err != nil {
		t.Fatal(err)
	}
	st := e.rt.Catalog.Get("op-terms")
	if st == nil {
		t.Fatal("no stats collected")
	}
	if st.Records != 3000 {
		t.Fatalf("records = %d", st.Records)
	}
	if st.N1 != 3000.0/8 {
		t.Fatalf("N1 = %g, want 375 (per lookup lane: 4 nodes × 2 map slots)", st.N1)
	}
	if st.S1 <= 0 || st.Spre <= 0 || st.Sidx <= st.Spre || st.Spost <= 0 {
		t.Fatalf("size terms implausible: S1=%g Spre=%g Sidx=%g Spost=%g", st.S1, st.Spre, st.Sidx, st.Spost)
	}
	is := st.Index[e.store.Name()]
	if is.Nik != 1 {
		t.Fatalf("Nik = %g, want 1", is.Nik)
	}
	if is.Sik != 6 { // "ikNNNN"
		t.Fatalf("Sik = %g, want 6", is.Sik)
	}
	if is.Tj < 0.0019 || is.Tj > 0.0021 {
		t.Fatalf("Tj = %g, want ≈0.002", is.Tj)
	}
	// FM sketches are coarse at small cardinalities (50 distinct keys over
	// 64 stochastic-averaging vectors); the cost model only needs Θ≫1 vs
	// Θ≈1, so accept a wide band around the true 60.
	if is.Theta < 10 || is.Theta > 240 {
		t.Fatalf("Θ = %g, want within a small factor of 60 (3000/50)", is.Theta)
	}
	if is.R <= 0 || is.R > 1 {
		t.Fatalf("R = %g out of range", is.R)
	}
	if is.MultiKey {
		t.Fatal("single-key workload flagged multi-key")
	}
}
