package core

import (
	"fmt"
	"sort"

	"efind/internal/chaos"
	"efind/internal/dfs"
	"efind/internal/index"
	"efind/internal/ixclient"
	"efind/internal/mapreduce"
	"efind/internal/obs"
	"efind/internal/sim"
)

// DefaultCacheCapacity is the paper's lookup cache size (1024 index
// key-value entries).
const DefaultCacheCapacity = ixclient.DefaultCacheCapacity

// ErrorPolicy and RetryPolicy configure the index client pipeline; they
// are re-exported here so job configurations don't import ixclient.
type (
	// ErrorPolicy decides what an index error does to the running job.
	ErrorPolicy = ixclient.ErrorPolicy
	// RetryPolicy configures transient-error retries and the client-side
	// lookup deadline.
	RetryPolicy = ixclient.RetryPolicy
)

// Error policies.
const (
	// ErrorCount counts index errors and continues with empty results
	// (the paper's behaviour, and the default).
	ErrorCount = ixclient.ErrorCount
	// ErrorFailJob fails the job on the first index error, reporting the
	// index name and the lookup key.
	ErrorFailJob = ixclient.ErrorFailJob
)

// DefaultBatchSize is the number of records buffered per task before the
// batched inline stage flushes their lookups as multi-gets.
const DefaultBatchSize = 64

// Mode selects how the runtime chooses index access strategies.
type Mode int

// Execution modes.
const (
	// ModeBaseline runs every index with the baseline strategy.
	ModeBaseline Mode = iota
	// ModeCache runs every index with the lookup-cache strategy.
	ModeCache
	// ModeCustom uses per-index forced strategies (ForceStrategy), with
	// the lookup cache as the default for unforced indices — the paper's
	// hand-picked Repart/Idxloc experiment configurations.
	ModeCustom
	// ModeOptimized plans from catalog statistics (the paper's
	// "optimized": static optimization with sufficient statistics).
	ModeOptimized
	// ModeDynamic starts with the baseline plan, collects statistics
	// during the first wave, and re-optimizes the running job at most
	// once (§4, Algorithm 1).
	ModeDynamic
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeCache:
		return "cache"
	case ModeCustom:
		return "custom"
	case ModeOptimized:
		return "optimized"
	case ModeDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// IndexJobConf is the paper's extension of a MapReduce job configuration
// with index operators: head operators run before Map, body operators
// between Map and Reduce, tail operators after Reduce.
type IndexJobConf struct {
	// Name labels the job.
	Name string
	// Input is the main MapReduce input.
	Input *dfs.File
	// Mapper is the original Map function (nil = identity).
	Mapper mapreduce.MapFunc
	// Reducer is the original Reduce function (nil = map-only job; body
	// and tail operators then cannot be used).
	Reducer mapreduce.ReduceFunc
	// Combiner optionally pre-aggregates the main job's map output per
	// reducer bucket before the shuffle (Hadoop's combiner); it must be
	// algebraically compatible with Reducer.
	Combiner mapreduce.ReduceFunc
	// NumReduce is the reducer count of the main job (0 =
	// mapreduce.DefaultNumReduce: all reduce slots on small clusters,
	// capped near the input's map parallelism on large ones).
	NumReduce int
	// OutputName names the final output file ("" = generated).
	OutputName string

	// Mode picks the strategy selection policy.
	Mode Mode
	// CacheCapacity bounds the per-machine lookup cache (0 = the paper's
	// 1024 entries).
	CacheCapacity int
	// VarianceThreshold gates re-optimization: the largest stddev/mean of
	// collected statistics must be below it (0 = 0.05, §4.2).
	VarianceThreshold float64
	// PlanChangeCost is the modeled overhead of switching plans mid-job;
	// a new plan must win by more than this (0 = a small default).
	PlanChangeCost float64
	// Planner tunes plan enumeration.
	Planner PlannerOptions
	// MaxPlanChanges bounds how many times a dynamic job may switch plans
	// (0 = the paper's "at most once"; exposed for the ablation bench).
	MaxPlanChanges int

	// ErrorPolicy decides what an index error does to the job: count and
	// continue with an empty result (default, paper-faithful) or fail the
	// job naming the index and key.
	ErrorPolicy ErrorPolicy
	// Retry configures transient-error retries and the client-side lookup
	// deadline (zero value: no retries, no deadline — bit-identical to
	// the pre-pipeline executor).
	Retry RetryPolicy
	// Batch enables record batching on inline lookups: carriers are
	// buffered per task and their keys resolved via multi-gets, charged
	// one network round trip per index partition instead of one per key.
	// Off by default because it deviates from the paper's per-key cost
	// model (DESIGN.md, "Index client pipeline").
	Batch bool
	// BatchSize is the per-task record buffer for Batch (0 = 64).
	BatchSize int

	// Chaos subjects the job to a deterministic failure schedule: node
	// crash/recovery windows and injected stragglers are enforced by the
	// MapReduce engine, index partition outages by the index clients'
	// availability middleware. Nil (the default) runs fault-free.
	Chaos *chaos.Plan
	// FaultInjector forwards to mapreduce.Job.FaultInjector on every job
	// the plan compiles into: returning true fails that task attempt and
	// re-executes it (classic MapReduce fault tolerance, per-attempt).
	FaultInjector func(kind mapreduce.TaskKind, task, attempt int) bool
	// DisableDegrade turns off failure-triggered re-optimization: an index
	// whose outage survives the retry ladder then fails the job instead of
	// being demoted to the baseline strategy (only meaningful with Chaos
	// outages and ErrorFailJob).
	DisableDegrade bool
	// SharedCache attaches every LookupCache-strategy client of this job
	// to a cross-job cache pool (the job service's persistent per-machine
	// soft state). Nil keeps caches private to the submission.
	SharedCache *ixclient.Pool

	head, body, tail []*Operator
	forced           map[string]map[string]Strategy
	forcedBoundary   map[string]map[string]Boundary
	degraded         map[string]map[string]bool
}

// AddHeadIndexOperator places an operator before Map.
func (c *IndexJobConf) AddHeadIndexOperator(op *Operator) { c.head = append(c.head, op) }

// AddBodyIndexOperator places an operator between Map and Reduce.
func (c *IndexJobConf) AddBodyIndexOperator(op *Operator) { c.body = append(c.body, op) }

// AddTailIndexOperator places an operator after Reduce.
func (c *IndexJobConf) AddTailIndexOperator(op *Operator) { c.tail = append(c.tail, op) }

// Operators returns all operators in data-flow order with positions.
func (c *IndexJobConf) Operators() ([]*Operator, []OpPosition) {
	var ops []*Operator
	var pos []OpPosition
	for _, o := range c.head {
		ops, pos = append(ops, o), append(pos, HeadOp)
	}
	for _, o := range c.body {
		ops, pos = append(ops, o), append(pos, BodyOp)
	}
	for _, o := range c.tail {
		ops, pos = append(ops, o), append(pos, TailOp)
	}
	return ops, pos
}

// ForceStrategy pins a strategy for one index of one operator (ModeCustom).
func (c *IndexJobConf) ForceStrategy(op, ix string, s Strategy) {
	if c.forced == nil {
		c.forced = make(map[string]map[string]Strategy)
	}
	if c.forced[op] == nil {
		c.forced[op] = make(map[string]Strategy)
	}
	c.forced[op][ix] = s
}

// ForceBoundary pins the re-partitioning boundary for one index
// (ModeCustom; default BoundaryPre).
func (c *IndexJobConf) ForceBoundary(op, ix string, b Boundary) {
	if c.forcedBoundary == nil {
		c.forcedBoundary = make(map[string]map[string]Boundary)
	}
	if c.forcedBoundary[op] == nil {
		c.forcedBoundary[op] = make(map[string]Boundary)
	}
	c.forcedBoundary[op][ix] = b
}

// validate checks the configuration and fills defaults.
func (c *IndexJobConf) validate(rt *Runtime) error {
	if c.Input == nil {
		return fmt.Errorf("efind: job %q has no input", c.Name)
	}
	if c.Name == "" {
		c.Name = "efind-job"
	}
	if c.Reducer == nil && (len(c.body) > 0 || len(c.tail) > 0) {
		return fmt.Errorf("efind: job %q has body/tail operators but no Reducer", c.Name)
	}
	if c.Reducer != nil && c.NumReduce <= 0 {
		c.NumReduce = mapreduce.DefaultNumReduce(rt.Engine.Cluster, len(c.Input.Chunks))
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = DefaultCacheCapacity
	}
	if c.Batch && c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.VarianceThreshold <= 0 {
		c.VarianceThreshold = 0.05
	}
	if c.PlanChangeCost <= 0 {
		c.PlanChangeCost = 2 * rt.Engine.Cluster.Config().TaskStartup
	}
	ops, _ := c.Operators()
	seen := map[string]bool{}
	for _, o := range ops {
		if err := o.validate(); err != nil {
			return err
		}
		if seen[o.Name()] {
			return fmt.Errorf("efind: job %q uses operator name %q twice", c.Name, o.Name())
		}
		seen[o.Name()] = true
	}
	return nil
}

// JobResult reports an EFind job's outcome.
type JobResult struct {
	// Output is the final output file.
	Output *dfs.File
	// VTime is the total virtual running time across all MapReduce jobs
	// the plan compiled into.
	VTime float64
	// Plan is the plan that produced the final output (post-change for
	// dynamic jobs).
	Plan *JobPlan
	// Replanned reports whether a dynamic job switched plans.
	Replanned bool
	// ReplanPhase is "map" or "reduce" when Replanned.
	ReplanPhase string
	// JobsRun counts the MapReduce jobs executed.
	JobsRun int
	// Counters aggregates all task counters.
	Counters map[string]int64
	// IndexErrors reports, for every (operator, index) pair of the plan,
	// how many index accesses failed, keyed "operator/index". It is always
	// populated — zero entries included — so callers can tell "no errors"
	// from "errors silently swallowed".
	IndexErrors map[string]int64

	raw []*mapreduce.Result
}

// SortedCounters returns the result's counters as a sorted snapshot —
// the one way they should reach report output (map iteration order is
// randomized and would make run-to-run diffs flaky).
func (r *JobResult) SortedCounters() []obs.Metric { return obs.SortedCounters(r.Counters) }

// Runtime executes EFind jobs: it owns the plan optimizer, the statistics
// catalog, and the plan implementer (Figure 8).
type Runtime struct {
	Engine  *mapreduce.Engine
	Catalog *Catalog
	Env     Env

	// run is the per-submission job handle all phase execution goes
	// through. Submit threads a fresh handle per call (so two sequential
	// submissions never share clock state); the job service threads a
	// service-mode handle via SubmitOn. Nil only on a Runtime that has
	// not entered a submission yet.
	run *mapreduce.JobRun
}

// NewRuntime builds a runtime on the engine with a fresh catalog.
func NewRuntime(e *mapreduce.Engine) *Runtime {
	return &Runtime{Engine: e, Catalog: NewCatalog(), Env: EnvFromCluster(e.Cluster)}
}

// Submit runs the job under its configured mode and returns the result.
// Index outages that exhaust the retry ladder trigger failure-driven
// re-optimization (see degrade.go) before the job is allowed to fail.
// Each submission runs on a fresh per-job clock.
func (rt *Runtime) Submit(conf *IndexJobConf) (*JobResult, error) {
	return rt.SubmitOn(rt.Engine.NewRun(), conf)
}

// SubmitOn is Submit on an explicit job handle: the multi-tenant job
// service uses it to execute each admitted job on a service-mode run
// (admission-time clock, slot-lease arbitration, namespaced tracing).
// The receiver is copied shallowly — Engine, Catalog, and Env are shared
// with the parent runtime, while the handle stays private to this
// submission, so one tenant's runtime can serve concurrent submissions.
func (rt *Runtime) SubmitOn(run *mapreduce.JobRun, conf *IndexJobConf) (*JobResult, error) {
	sub := *rt
	sub.run = run
	rt = &sub
	if err := conf.validate(rt); err != nil {
		return nil, err
	}
	res, err := rt.submitDegradable(conf)
	if err != nil {
		// A failed job's scans may be incomplete: abandon anything its
		// build stages staged rather than committing half-built splits.
		for _, b := range confBuildables(conf) {
			b.Abandon()
		}
		return nil, err
	}
	// The serial point between jobs: commit the splits the piggyback
	// build stages staged. SubmitOn returns before the job service
	// unparks the next job goroutine, so cross-job commit order is the
	// deterministic job completion order.
	committed := 0
	for _, b := range confBuildables(conf) {
		committed += b.Commit()
	}
	if committed > 0 {
		res.Counters[CtrBuildCommitted] += int64(committed)
		rt.traceInstant(fmt.Sprintf("adaptive: committed %d built split(s)", committed))
	}
	fillIndexErrors(conf, res)
	if t := rt.Engine.Trace; t != nil {
		for _, ip := range IndexProfiles(res) {
			ip.Key = t.Qualify(ip.Key)
			t.AddIndexProfile(ip)
		}
	}
	return res, nil
}

// submitOnce runs the job under its configured mode, one attempt.
func (rt *Runtime) submitOnce(conf *IndexJobConf) (*JobResult, error) {
	if conf.Mode == ModeDynamic {
		return rt.runDynamic(conf)
	}
	plan, err := rt.planFor(conf)
	if err != nil {
		return nil, err
	}
	return rt.runPlan(conf, plan)
}

// confBuildables returns the distinct buildable accessors among the
// job's operators (regardless of which plan ran — a dynamic job may have
// executed two plans, and commit/abandon must cover both).
func confBuildables(conf *IndexJobConf) []index.Buildable {
	ops, _ := conf.Operators()
	var out []index.Buildable
	seen := map[string]bool{}
	for _, o := range ops {
		for _, a := range o.Indices() {
			if b, ok := a.(index.Buildable); ok && !seen[b.Name()] {
				seen[b.Name()] = true
				out = append(out, b)
			}
		}
	}
	return out
}

// fillIndexErrors reports the per-index error totals on the result, one
// entry per (operator, index) pair of the job — zero entries included, so
// "no errors" is visible rather than silently absent.
func fillIndexErrors(conf *IndexJobConf, res *JobResult) {
	res.IndexErrors = make(map[string]int64)
	ops, _ := conf.Operators()
	for _, o := range ops {
		for _, a := range o.Indices() {
			res.IndexErrors[o.Name()+"/"+a.Name()] = res.Counters[ixclient.CtrErrors(o.Name(), a.Name())]
		}
	}
}

// CollectStats runs the job once under the baseline plan purely to
// populate the catalog (the "sufficient statistics" precondition of the
// paper's optimized mode), discarding the output.
func (rt *Runtime) CollectStats(conf *IndexJobConf) error {
	sub := *rt
	sub.run = rt.Engine.NewRun()
	rt = &sub
	if err := conf.validate(rt); err != nil {
		return err
	}
	probe := *conf
	probe.Mode = ModeBaseline
	probe.OutputName = rt.Engine.FS.TempName(conf.Name + "-stats")
	plan, err := rt.planFor(&probe)
	if err != nil {
		return err
	}
	res, err := rt.runPlan(&probe, plan)
	if err != nil {
		return err
	}
	rt.harvestStats(&probe, res)
	return rt.Engine.FS.Remove(res.Output.Name)
}

// harvestStats folds a finished baseline run's task statistics into the
// catalog: head/body operators from map tasks, tail operators from reduce
// tasks.
func (rt *Runtime) harvestStats(conf *IndexJobConf, res *JobResult) {
	if len(res.raw) == 0 {
		return
	}
	first := res.raw[0]
	last := res.raw[len(res.raw)-1]
	for _, o := range conf.head {
		collectStats(rt.Catalog, o, first.MapStats, rt.Env)
	}
	for _, o := range conf.body {
		collectStats(rt.Catalog, o, first.MapStats, rt.Env)
	}
	for _, o := range conf.tail {
		collectStats(rt.Catalog, o, last.ReduceStats, rt.Env)
	}
}

// planFor builds the job plan for the non-dynamic modes.
func (rt *Runtime) planFor(conf *IndexJobConf) (*JobPlan, error) {
	plan := &JobPlan{}
	ops, positions := conf.Operators()
	for i, o := range ops {
		pos := positions[i]
		var p OperatorPlan
		switch conf.Mode {
		case ModeBaseline:
			p = baselinePlan(o, pos)
		case ModeCache:
			p = uniformPlan(o, pos, LookupCache)
		case ModeCustom:
			var err error
			p, err = rt.customPlan(conf, o, pos)
			if err != nil {
				return nil, err
			}
		case ModeOptimized:
			p = OptimizeOperator(o, pos, rt.Catalog.Get(o.Name()), rt.Env, conf.Planner)
		default:
			return nil, fmt.Errorf("efind: unsupported mode %v", conf.Mode)
		}
		conf.applyDegrades(&p)
		switch pos {
		case HeadOp:
			plan.Head = append(plan.Head, p)
		case BodyOp:
			plan.Body = append(plan.Body, p)
		default:
			plan.Tail = append(plan.Tail, p)
		}
		plan.Cost += p.Cost
	}
	return plan, nil
}

// customPlan applies forced strategies: shuffle-strategy indices first
// (Property 4), lookup cache by default for the rest.
func (rt *Runtime) customPlan(conf *IndexJobConf, o *Operator, pos OpPosition) (OperatorPlan, error) {
	p := OperatorPlan{Op: o, Pos: pos}
	var shuffles, others []Decision
	for i, a := range o.Indices() {
		s, ok := conf.forced[o.Name()][a.Name()]
		if !ok {
			s = LookupCache
		}
		d := Decision{Index: i, Strategy: s, Boundary: BoundaryPre}
		if b, ok := conf.forcedBoundary[o.Name()][a.Name()]; ok {
			d.Boundary = b
		}
		switch s {
		case Repartition, IndexLocality:
			if s == IndexLocality {
				if _, ok := a.(index.Partitioned); !ok {
					return p, fmt.Errorf("efind: index %q of operator %q does not expose a partition scheme; index locality is not applicable", a.Name(), o.Name())
				}
				d.Boundary = BoundaryPre
			}
			shuffles = append(shuffles, d)
		default:
			others = append(others, d)
		}
	}
	p.Decisions = append(shuffles, others...)
	return p, nil
}

// cjob is one compiled MapReduce job of an EFind plan.
type cjob struct {
	name         string
	mapStages    []mapreduce.StageFactory
	partition    func(string, int) int
	numReduce    int
	shuffle      *shuffleSpec
	userReduce   bool
	reduceStages []mapreduce.StageFactory
	mapPlacement func(int, *dfs.Chunk) []sim.NodeID
	// stagesRanUpstream marks jobs whose map stages already executed
	// inside the previous job's BoundaryLate reduce.
	stagesRanUpstream bool
}

// shuffleSpec describes a shuffle job's group-lookup reduce.
type shuffleSpec struct {
	x           *opExec
	pos         int
	boundary    Boundary
	emitNextPos int
}

// buildTarget is one buildable index the compiled plan piggybacks a
// build stage for: the accessor plus the frozen offer set — which splits
// this run builds. The set is frozen at compile time (and re-frozen by
// restrictBuilds for subset phases) so every task of a job agrees on it
// regardless of executor parallelism.
type buildTarget struct {
	b     index.Buildable
	op    string
	quota int
	offer map[int]bool
}

// restrict re-freezes the target's offer set to the lowest-numbered
// still-uncovered splits among those the job will actually scan, keeping
// the original per-run quota. The adaptive runtime calls it before
// running a plan-change phase over a split subset — the LIAH rule of
// building only what the job reads anyway.
func (bt *buildTarget) restrict(splits []int) {
	sorted := append([]int(nil), splits...)
	sort.Ints(sorted)
	_, total := bt.b.BuildProgress()
	offer := make(map[int]bool, bt.quota)
	for _, s := range sorted {
		if len(offer) >= bt.quota {
			break
		}
		if s >= 0 && s < total && !bt.b.IsBuilt(s) {
			offer[s] = true
		}
	}
	bt.offer = offer
}

// compiled is a full plan lowered to a job sequence.
type compiled struct {
	jobs  []*cjob
	execs map[string]*opExec
	// builds are the plan's piggyback build targets (Build-strategy
	// decisions of head operators whose accessor is buildable).
	builds []*buildTarget
	// pool is the job's cross-job shared cache, if attached. Guarded and
	// crash-reset at this level — once per node — because pooled caches
	// are shared across every client of every operator, and journaling
	// one cache twice would supersede the first guard.
	pool *ixclient.Pool
}

// restrictBuilds re-freezes every build target's offer set to the given
// split subset (see buildTarget.restrict).
func (co *compiled) restrictBuilds(splits []int) {
	for _, bt := range co.builds {
		bt.restrict(splits)
	}
}

// resetNode drops every operator client's caches on a crashed node: a
// rebooted TaskTracker restarts with cold per-machine lookup caches
// (wired to mapreduce.Job.OnNodeCrash when a chaos plan is attached).
// Pooled caches on the node go cold with it.
func (co *compiled) resetNode(node sim.NodeID) {
	for _, x := range co.execs {
		x.resetNode(node)
	}
	for _, bt := range co.builds {
		// A crashed node's staged build splits are discarded; the
		// recovery wave re-runs its tasks and re-stages them.
		bt.b.ResetBuild(node)
	}
	if co.pool != nil {
		co.pool.ResetNode(node)
	}
}

// attemptGuard snapshots every operator's node-shared caches ahead of a
// task attempt; the returned rollback rewinds them if the attempt fails,
// so a re-executed task re-measures its cache misses from the same state
// and the miss ratio R feeding the cost model stays unskewed.
func (co *compiled) attemptGuard(node sim.NodeID) func() {
	rollbacks := make([]func(), 0, len(co.execs)+len(co.builds)+1)
	for _, x := range co.execs {
		rollbacks = append(rollbacks, x.snapshotNode(node))
	}
	for _, bt := range co.builds {
		// Build staging follows the same discipline as the caches: a
		// failed or losing-speculative attempt's staged splits are
		// rolled back so the commit sees each split exactly once.
		rollbacks = append(rollbacks, bt.b.SnapshotBuild(node))
	}
	if co.pool != nil {
		rollbacks = append(rollbacks, co.pool.SnapshotNode(node))
	}
	return func() {
		for _, rb := range rollbacks {
			rb()
		}
	}
}

// compilePlan lowers a job plan into the MapReduce job chain the plan
// implementer will run (Figure 7's layouts generalized to whole jobs).
func compilePlan(rt *Runtime, conf *IndexJobConf, plan *JobPlan) (*compiled, error) {
	co := &compiled{execs: make(map[string]*opExec), pool: conf.SharedCache}
	for _, p := range plan.All() {
		co.execs[p.Op.Name()] = newOpExec(p.Op, p, conf)
	}

	cur := &cjob{name: fmt.Sprintf("%s-j0", conf.Name)}
	co.jobs = append(co.jobs, cur)
	reduceSide := false

	appendStage := func(f mapreduce.StageFactory) {
		if reduceSide {
			cur.reduceStages = append(cur.reduceStages, f)
		} else {
			cur.mapStages = append(cur.mapStages, f)
		}
	}
	newJob := func() *cjob {
		j := &cjob{name: fmt.Sprintf("%s-j%d", conf.Name, len(co.jobs))}
		co.jobs = append(co.jobs, j)
		return j
	}

	compileOp := func(p OperatorPlan) error {
		x := co.execs[p.Op.Name()]
		s := p.shuffleCount()
		if s == 0 {
			appendStage(x.inlineStage())
			return nil
		}
		for i := 0; i < s; i++ {
			if st := p.Decisions[i].Strategy; st != Repartition && st != IndexLocality {
				return fmt.Errorf("efind: operator %q plan has shuffle strategies after inline ones (violates Property 4)", p.Op.Name())
			}
		}
		appendStage(x.shuffleEmitStage(0, false))
		for i := 0; i < s; i++ {
			d := p.Decisions[i]
			spec := &shuffleSpec{x: x, pos: i, emitNextPos: -1}
			if i < s-1 {
				spec.boundary = BoundaryIdx
				spec.emitNextPos = i + 1
			} else {
				spec.boundary = d.Boundary
				if d.Strategy == IndexLocality {
					spec.boundary = BoundaryPre
				}
			}
			if cur.userReduce || cur.shuffle != nil {
				// The current job's reduce slot is taken (the user reduce
				// of a tail-operator flow): host this group-by in a fresh
				// job whose map is the identity over (ik, carrier) pairs.
				cur = newJob()
				reduceSide = false
			}
			cur.shuffle = spec
			// Partitioning of the shuffle job: co-partition with the index
			// for locality, hash otherwise.
			if d.Strategy == IndexLocality {
				sch := p.Op.Indices()[d.Index].(index.Partitioned).Scheme()
				cur.partition = func(key string, _ int) int { return sch.Fn(key) }
				cur.numReduce = sch.Partitions
			} else {
				cur.partition = nil
				// The shuffle job re-groups the main input's records, so
				// its parallelism is bounded by the same map-side width.
				cur.numReduce = mapreduce.DefaultNumReduce(rt.Engine.Cluster, len(conf.Input.Chunks))
			}

			next := newJob()
			if i == s-1 {
				switch spec.boundary {
				case BoundaryPre:
					next.mapStages = append(next.mapStages, x.resumeStage(i, true))
					if d.Strategy == IndexLocality {
						sch := p.Op.Indices()[d.Index].(index.Partitioned).Scheme()
						next.mapPlacement = func(_ int, ch *dfs.Chunk) []sim.NodeID {
							// The shuffling job co-partitioned the keys
							// with the index: chunk shard = partition.
							if ch != nil && ch.Shard >= 0 && ch.Shard < len(sch.Hosts) {
								return sch.Hosts[ch.Shard]
							}
							return nil
						}
					}
				case BoundaryIdx, BoundaryLate:
					next.mapStages = append(next.mapStages, x.resumeStage(i+1, false))
					if spec.boundary == BoundaryLate {
						next.stagesRanUpstream = true
					}
				}
			}
			cur = next
			reduceSide = false
		}
		return nil
	}

	for _, p := range plan.Head {
		if err := compileOp(p); err != nil {
			return nil, err
		}
	}
	if conf.Mapper != nil {
		appendStage(mapperStage(conf.Mapper))
	}
	for _, p := range plan.Body {
		if err := compileOp(p); err != nil {
			return nil, err
		}
	}
	if conf.Reducer != nil {
		cur.userReduce = true
		cur.numReduce = conf.NumReduce
		reduceSide = true
		for _, p := range plan.Tail {
			if err := compileOp(p); err != nil {
				return nil, err
			}
		}
	}
	co.attachBuildStages(conf, plan)
	return co, nil
}

// buildSourced is implemented by buildable accessors that can name the
// file their build units are splits of (adaptix.Buildable does); the
// compiler uses it to refuse piggybacking onto a job that scans a
// different file, where extracted entries would index the wrong records.
type buildSourced interface {
	Source() *dfs.File
}

// attachBuildStages prepends the piggyback build stage of every
// Build-strategy decision to the first job's map pipeline — ahead of all
// operator stages, so the builder sees the raw input records the map
// task scans. Only head operators qualify (their records are the job
// input), and an accessor that declares its source file must match the
// job input. The offer set is frozen here, once per compiled plan, so
// every task — serial or parallel executor — agrees on which splits
// build.
func (co *compiled) attachBuildStages(conf *IndexJobConf, plan *JobPlan) {
	var stages []mapreduce.StageFactory
	for _, p := range plan.Head {
		for _, d := range p.Decisions {
			if d.Strategy != Build {
				continue
			}
			a := p.Op.Indices()[d.Index]
			b, ok := a.(index.Buildable)
			if !ok {
				continue
			}
			if src, ok := a.(buildSourced); ok && src.Source() != conf.Input {
				continue
			}
			offered := b.OfferSplits()
			offer := make(map[int]bool, len(offered))
			for _, s := range offered {
				offer[s] = true
			}
			bt := &buildTarget{b: b, op: p.Op.Name(), quota: len(offered), offer: offer}
			co.builds = append(co.builds, bt)
			stages = append(stages, buildStage(bt))
		}
	}
	if len(stages) > 0 {
		co.jobs[0].mapStages = append(stages, co.jobs[0].mapStages...)
	}
}

// engineJob materializes a compiled job into a runnable mapreduce.Job.
// lateCont supplies the continuation stages for BoundaryLate shuffles
// (the next job's map stages).
func (co *compiled) engineJob(conf *IndexJobConf, k int, input *dfs.File) *mapreduce.Job {
	cj := co.jobs[k]
	job := &mapreduce.Job{
		Name:          cj.name,
		Input:         input,
		Partition:     cj.partition,
		NumReduce:     cj.numReduce,
		MapPlacement:  cj.mapPlacement,
		AttemptGuard:  co.attemptGuard,
		FaultInjector: conf.FaultInjector,
		Chaos:         conf.Chaos,
	}
	if conf.Chaos != nil {
		job.OnNodeCrash = co.resetNode
	}
	if !cj.stagesRanUpstream {
		job.MapStagesBefore = cj.mapStages
	}
	switch {
	case cj.shuffle != nil:
		var cont []mapreduce.StageFactory
		if cj.shuffle.boundary == BoundaryLate && k+1 < len(co.jobs) {
			cont = co.jobs[k+1].mapStages
		}
		job.Reduce = cj.shuffle.x.groupReduce(cj.shuffle.pos, cj.shuffle.boundary, cj.shuffle.emitNextPos, cont)
	case cj.userReduce:
		job.Reduce = conf.Reducer
		job.Combine = conf.Combiner
		job.ReduceStagesAfter = cj.reduceStages
	}
	if k == len(co.jobs)-1 {
		job.OutputName = conf.OutputName
	}
	return job
}

// runPlan compiles and executes a plan, chaining intermediate outputs and
// cleaning up temporaries.
func (rt *Runtime) runPlan(conf *IndexJobConf, plan *JobPlan) (*JobResult, error) {
	co, err := compilePlan(rt, conf, plan)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Plan: plan, Counters: make(map[string]int64)}
	input := conf.Input
	for k := range co.jobs {
		job := co.engineJob(conf, k, input)
		r, err := rt.runJob(job, k == 0 && len(co.jobs) == 1)
		if err != nil {
			return nil, err
		}
		res.raw = append(res.raw, r)
		res.VTime += r.VTime
		res.JobsRun++
		for name, v := range r.Counters {
			res.Counters[name] += v
		}
		if input != conf.Input {
			if err := rt.Engine.FS.Remove(input.Name); err != nil {
				return nil, err
			}
		}
		input = r.Output
	}
	res.Output = input
	return res, nil
}
