package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"efind/internal/adaptix"
	"efind/internal/chaos"
	"efind/internal/index"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/obs"
	"efind/internal/sim"
)

// fakeBuildable is a planning-only buildable accessor: coverage is a
// plain prefix counter and the build hooks are no-ops, so optimizer
// tests can dial in any coverage without running jobs.
type fakeBuildable struct {
	fakeAccessor
	covered, total             int
	scanTime, buildTime, tjIdx float64
	offer                      int
}

func (f *fakeBuildable) ServeTime() float64 {
	return f.tjIdx + float64(f.total-f.covered)*f.scanTime
}
func (f *fakeBuildable) BuildProgress() (int, int) { return f.covered, f.total }
func (f *fakeBuildable) IsBuilt(s int) bool        { return s < f.covered }
func (f *fakeBuildable) ScanServeTime() float64    { return f.scanTime }
func (f *fakeBuildable) BuildCharge() float64      { return f.buildTime }
func (f *fakeBuildable) OfferSplits() []int {
	var out []int
	for s := f.covered; s < f.total && len(out) < f.offer; s++ {
		out = append(out, s)
	}
	return out
}
func (f *fakeBuildable) Extract(string, string) []index.BuildEntry { return nil }
func (f *fakeBuildable) Stage(sim.NodeID, int, []index.BuildEntry) {}
func (f *fakeBuildable) SnapshotBuild(sim.NodeID) func()           { return func() {} }
func (f *fakeBuildable) ResetBuild(sim.NodeID)                     {}
func (f *fakeBuildable) Commit() int                               { return 0 }
func (f *fakeBuildable) Abandon()                                  {}

// buildStats is the optimizer-test fixture: strong redundancy, a scan
// fallback that dominates the serve time, and a cheap build charge —
// the regime the fifth strategy exists for.
func buildStats() (*OperatorStats, *fakeBuildable) {
	fb := &fakeBuildable{
		fakeAccessor: fakeAccessor{name: "ix"},
		total:        8, scanTime: 0.0005, buildTime: 1e-6, tjIdx: 0.0002, offer: 2,
	}
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.123, Theta: 4, R: 0.3}
	return opStats(1e5, is), fb
}

func TestOptimizeOperatorPicksBuild(t *testing.T) {
	st, fb := buildStats()
	op := NewOperator("o", nil, nil).AddIndex(fb)
	p := OptimizeOperator(op, HeadOp, st, testEnv12(), DefaultPlannerOptions())
	if p.Decisions[0].Strategy != Build {
		t.Fatalf("uncovered buildable under heavy redundancy should build, got %v", p)
	}
	// The recorded cost must be the honest per-run cost, not the
	// amortized rank: cache-fronted lookups at the blended T_j plus the
	// BuildCost term.
	env := testEnv12()
	is, bm, ok := effectiveIndexStats(fb, st.Index["ix"])
	if !ok {
		t.Fatal("fakeBuildable not recognized as buildable")
	}
	if want := costBuild(st, is, env, bm); p.Decisions[0].Cost != want {
		t.Fatalf("decision cost %g, want honest build cost %g", p.Decisions[0].Cost, want)
	}
	if want := fb.ServeTime(); is.Tj != want {
		t.Fatalf("effective Tj %g should equal the accessor's modeled serve time %g (stale catalog Tj overridden)", is.Tj, want)
	}
}

func TestOptimizeOperatorBuildOnlyAtHead(t *testing.T) {
	st, fb := buildStats()
	op := NewOperator("o", nil, nil).AddIndex(fb)
	for _, pos := range []OpPosition{BodyOp, TailOp} {
		p := OptimizeOperator(op, pos, st, testEnv12(), DefaultPlannerOptions())
		if p.Decisions[0].Strategy == Build {
			t.Fatalf("build strategy must be head-only, chosen at %v", pos)
		}
	}
}

func TestOptimizeOperatorStopsBuildingWhenCovered(t *testing.T) {
	st, fb := buildStats()
	fb.covered = fb.total
	op := NewOperator("o", nil, nil).AddIndex(fb)
	p := OptimizeOperator(op, HeadOp, st, testEnv12(), DefaultPlannerOptions())
	if p.Decisions[0].Strategy == Build {
		t.Fatalf("fully covered index must not keep the build strategy, got %v", p)
	}
}

func TestNegativeHorizonDisablesBuild(t *testing.T) {
	st, fb := buildStats()
	op := NewOperator("o", nil, nil).AddIndex(fb)
	p := OptimizeOperator(op, HeadOp, st, testEnv12(), PlannerOptions{BuildHorizon: -1})
	if p.Decisions[0].Strategy == Build {
		t.Fatalf("negative BuildHorizon must disable building, got %v", p)
	}
}

func TestPredictBuildRuns(t *testing.T) {
	st, fb := buildStats()
	env := testEnv12()
	is, bm, _ := effectiveIndexStats(fb, st.Index["ix"])

	// Alternative more expensive than even the first (priciest) build
	// run: breaks even immediately.
	if n := PredictBuildRuns(st, is, env, bm, costBuild(st, is, env, bm)+1, 100); n != 1 {
		t.Fatalf("alt above first-run build cost should break even at run 1, got %d", n)
	}
	// Alternative cheaper than the fully-built cache plan: never.
	isFull := is
	isFull.Tj = bm.TjAt(bm.Total)
	if n := PredictBuildRuns(st, is, env, bm, 0.9*costCache(st, isFull, env), 100); n != -1 {
		t.Fatalf("alt below the converged cost must never break even, got %d", n)
	}
	// Alternative equal to the coverage-0 cache cost: later runs win it
	// back within the build-out.
	n := PredictBuildRuns(st, is, env, bm, costCache(st, is, env), 100)
	if n < 2 || n > bm.Total {
		t.Fatalf("break-even against the coverage-0 cache cost should land in [2,%d], got %d", bm.Total, n)
	}
}

func TestExplainBuildRendersTerms(t *testing.T) {
	st, fb := buildStats()
	env := testEnv12()
	is, bm, _ := effectiveIndexStats(fb, st.Index["ix"])
	lines := ExplainBuild(st, is, env, bm, DefaultBuildHorizon, costCache(st, is, env))
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"0/8 splits covered", "BuildCost", "rank = cost − horizon·savings", "break-even"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("ExplainBuild output missing %q:\n%s", want, joined)
		}
	}
}

// adxEnv extends the e2e environment with an adaptively-built index
// over the job input: a kvstore that starts empty and fills as runs
// commit splits, with a scan fallback keeping lookups exact meanwhile.
type adxEnv struct {
	*e2eEnv
	reg *adaptix.Registry
	bix *adaptix.Buildable
}

// newAdxEnv builds the environment; parallelism 0 keeps the cluster
// default. The extraction maps each record to its index key with a
// value that depends only on the key, so lookup results — and with
// them job outputs — are identical at every build coverage.
func newAdxEnv(tb testing.TB, parallelism, records, distinctKeys int, offerRate float64) *adxEnv {
	tb.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 6
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 2
	cfg.TaskStartup = 0.01
	if parallelism > 0 {
		cfg.Parallelism = parallelism
	}
	e := newE2EWith(tb, cfg, records, distinctKeys)
	reg := adaptix.NewRegistry()
	store := kvstore.NewHash(e.cluster, "adx", 8, 3, 0.0002)
	bix, err := adaptix.New(adaptix.Config{
		Name:   "adx",
		Source: e.input,
		Extract: func(key, value string) []index.BuildEntry {
			f := strings.Fields(value)
			ik := f[len(f)-1]
			return []index.BuildEntry{{Key: ik, Value: "v(" + ik + ")"}}
		},
		Store:     store,
		Registry:  reg,
		ScanTime:  0.002,
		BuildTime: 1e-5,
		OfferRate: offerRate,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return &adxEnv{e2eEnv: e, reg: reg, bix: bix}
}

// adxOp mirrors lookupOp over the buildable index.
func (a *adxEnv) adxOp(name string) *Operator {
	op := NewOperator(name,
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			return PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair Pair, results [][]KeyResult, emit Emit) {
			vals := "none"
			if len(results) > 0 && len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				vals = strings.Join(results[0][0].Values, ",")
			}
			emit(Pair{Key: pair.Key, Value: pair.Value + " => " + vals})
		})
	op.AddIndex(a.bix)
	return op
}

// buildConf is a job forced onto the build strategy (the mechanics
// tests pin the strategy so they exercise the runtime, not the
// planner's taste).
func (a *adxEnv) buildConf(name string) *IndexJobConf {
	op := a.adxOp(name + "-op")
	conf := a.conf(name, ModeCustom, op, headPlace)
	conf.ForceStrategy(op.Name(), a.bix.Name(), Build)
	return conf
}

// TestForcedBuildConvergesAcrossRuns submits the same job repeatedly:
// each run commits its offered splits, coverage grows by the offer
// until the input is covered, per-run makespan decreases monotonically
// to the converged (fully built) plan's, and the output is identical at
// every coverage.
func TestForcedBuildConvergesAcrossRuns(t *testing.T) {
	a := newAdxEnv(t, 0, 800, 25, 0.3)
	total := len(a.input.Chunks)
	offer := (total*3 + 9) / 10 // ceil(0.3·total), matches OfferRate

	var vtimes []float64
	var outputs [][]string
	covered := 0
	const runs = 6
	for k := 0; k < runs; k++ {
		res, err := a.rt.Submit(a.buildConf(fmt.Sprintf("conv-run%d", k)))
		if err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
		wantCommit := offer
		if covered+wantCommit > total {
			wantCommit = total - covered
		}
		if got := res.Counters[CtrBuildCommitted]; got != int64(wantCommit) {
			t.Fatalf("run %d committed %d splits, want %d", k, got, wantCommit)
		}
		covered += wantCommit
		if gotCov, gotTotal := a.reg.Covered("adx"); gotCov != covered || gotTotal != total {
			t.Fatalf("run %d registry coverage %d/%d, want %d/%d", k, gotCov, gotTotal, covered, total)
		}
		// The accessor's serve time and the cost model's blended T_j must
		// agree by construction at every coverage.
		if bm, ok := buildModelOf(a.bix); !ok || bm.TjAt(bm.Covered) != a.bix.ServeTime() {
			t.Fatalf("run %d: modeled TjAt(%d) diverged from accessor serve time", k, covered)
		}
		vtimes = append(vtimes, res.VTime)
		outputs = append(outputs, sortedOutput(res.Output))
	}

	for k := 1; k < runs; k++ {
		if vtimes[k] > vtimes[k-1] {
			t.Fatalf("makespan not monotone: run %d %g > run %d %g (all: %v)", k, vtimes[k], k-1, vtimes[k-1], vtimes)
		}
		sameOutput(t, fmt.Sprintf("conv-run%d", k), outputs[0], outputs[k])
	}
	if covered != total {
		t.Fatalf("input not fully covered after %d runs: %d/%d", runs, covered, total)
	}
	if vtimes[runs-1] >= 0.7*vtimes[0] {
		t.Fatalf("converged makespan %g should be well below the scan-heavy first run %g", vtimes[runs-1], vtimes[0])
	}
	// Fully covered: the plan is served entirely from the store, so two
	// more runs are bit-identical.
	if vtimes[runs-1] != vtimes[runs-2] {
		t.Fatalf("post-convergence runs should be identical: %g vs %g", vtimes[runs-2], vtimes[runs-1])
	}
}

// TestBuildSerialParallelBitIdentical runs the same three-run build
// sequence on the serial and the parallel executor: per-run makespans,
// merged counters (including the build and commit counters), outputs,
// and the registry fingerprint after every run must match exactly.
func TestBuildSerialParallelBitIdentical(t *testing.T) {
	type runState struct {
		vtime    float64
		counters map[string]int64
		output   []string
		fp       string
	}
	runSeq := func(parallelism int) []runState {
		a := newAdxEnv(t, parallelism, 800, 25, 0.3)
		var states []runState
		for k := 0; k < 3; k++ {
			res, err := a.rt.Submit(a.buildConf(fmt.Sprintf("bi-run%d", k)))
			if err != nil {
				t.Fatalf("parallelism %d run %d: %v", parallelism, k, err)
			}
			states = append(states, runState{
				vtime:    res.VTime,
				counters: res.Counters,
				output:   sortedOutput(res.Output),
				fp:       a.reg.Fingerprint(),
			})
		}
		return states
	}

	serial := runSeq(1)
	parallel := runSeq(8)
	for k := range serial {
		if serial[k].vtime != parallel[k].vtime {
			t.Fatalf("run %d makespan diverged: serial %g vs parallel %g", k, serial[k].vtime, parallel[k].vtime)
		}
		if serial[k].fp != parallel[k].fp {
			t.Fatalf("run %d registry fingerprint diverged:\nserial:\n%s\nparallel:\n%s", k, serial[k].fp, parallel[k].fp)
		}
		if !reflect.DeepEqual(serial[k].counters, parallel[k].counters) {
			for name, v := range serial[k].counters {
				if parallel[k].counters[name] != v {
					t.Errorf("run %d counter %q: serial %d vs parallel %d", k, name, v, parallel[k].counters[name])
				}
			}
			t.Fatalf("run %d merged counters diverged", k)
		}
		sameOutput(t, fmt.Sprintf("bi-run%d", k), serial[k].output, parallel[k].output)
	}
	if serial[2].fp == serial[0].fp {
		t.Fatal("coverage did not grow across runs; bit-identity test is vacuous")
	}
}

// TestBuildRetryRollbackKeepsCommitExact: failed map attempts re-stage
// their splits; without the SnapshotBuild rollback in the attempt guard
// the commit would double-count them (or commit a half-scanned split).
// A faulty run must commit exactly the clean run's splits and report
// identical build counters and output.
func TestBuildRetryRollbackKeepsCommitExact(t *testing.T) {
	run := func(inject bool) (*JobResult, string) {
		a := newAdxEnv(t, 0, 800, 25, 0.3)
		conf := a.buildConf("bf")
		if inject {
			conf.FaultInjector = func(kind mapreduce.TaskKind, task, attempt int) bool {
				return kind == mapreduce.MapTask && task%3 == 0 && attempt == 1
			}
		}
		res, err := a.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		return res, a.reg.Fingerprint()
	}

	clean, cleanFP := run(false)
	faulty, faultyFP := run(true)

	if faulty.Counters[mapreduce.CounterTaskRetries] == 0 {
		t.Fatal("fault injector did not fire")
	}
	if cleanFP != faultyFP {
		t.Fatalf("retries changed the committed registry state:\nclean:\n%s\nfaulty:\n%s", cleanFP, faultyFP)
	}
	if got, want := faulty.Counters[CtrBuildCommitted], clean.Counters[CtrBuildCommitted]; got != want {
		t.Fatalf("retries skewed the commit count: faulty %d vs clean %d", got, want)
	}
	splits := ctrBuildSplits("bf-op", "adx")
	if clean.Counters[splits] == 0 {
		t.Fatal("build stage staged no splits; test is vacuous")
	}
	if got, want := faulty.Counters[splits], clean.Counters[splits]; got != want {
		t.Fatalf("retries skewed staged-split count: faulty %d vs clean %d", got, want)
	}
	sameOutput(t, "build-retry", sortedOutput(clean.Output), sortedOutput(faulty.Output))
}

// TestBuildNodeCrashRollsBackStagedSplits is the chaos leg: a node
// crash mid-map kills in-flight builder tasks; their staged splits are
// discarded (ResetBuild) and re-staged by the recovery wave, so the
// committed registry state and the output match a fault-free run —
// pinned bit-identical across the serial and parallel executors.
func TestBuildNodeCrashRollsBackStagedSplits(t *testing.T) {
	clean, cleanFP := func() (*JobResult, string) {
		a := newAdxEnv(t, 0, 800, 25, 0.3)
		res, err := a.rt.Submit(a.buildConf("crash"))
		if err != nil {
			t.Fatal(err)
		}
		return res, a.reg.Fingerprint()
	}()
	mapSpan := clean.raw[0].MapPhase.Makespan

	crashRun := func(parallelism int) (*JobResult, string) {
		a := newAdxEnv(t, parallelism, 800, 25, 0.3)
		conf := a.buildConf("crash")
		conf.Chaos = chaos.MustNew(chaos.Config{
			Crashes: []chaos.Crash{{Node: 2, At: 0.3 * mapSpan, Recover: 0.4 * mapSpan}},
		}, 6)
		res, err := a.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		return res, a.reg.Fingerprint()
	}

	serial, serialFP := crashRun(1)
	parallel, parallelFP := crashRun(8)

	if serialFP != cleanFP {
		t.Fatalf("crash changed committed registry state:\nclean:\n%s\ncrashed:\n%s", cleanFP, serialFP)
	}
	if got, want := serial.Counters[CtrBuildCommitted], clean.Counters[CtrBuildCommitted]; got != want {
		t.Fatalf("crash skewed the commit count: %d vs clean %d", got, want)
	}
	sameOutput(t, "crash-vs-clean", sortedOutput(clean.Output), sortedOutput(serial.Output))

	if serialFP != parallelFP {
		t.Fatalf("crash recovery fingerprint diverged across executors:\nserial:\n%s\nparallel:\n%s", serialFP, parallelFP)
	}
	if serial.VTime != parallel.VTime {
		t.Fatalf("crash-run makespan diverged across executors: %g vs %g", serial.VTime, parallel.VTime)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		for name, v := range serial.Counters {
			if parallel.Counters[name] != v {
				t.Errorf("counter %q: serial %d vs parallel %d", name, v, parallel.Counters[name])
			}
		}
		t.Fatal("crash-run counters diverged across executors")
	}
	sameOutput(t, "crash-serial-vs-parallel", sortedOutput(serial.Output), sortedOutput(parallel.Output))
}

// TestDynamicJobStartsBuildMidJob: a cold dynamic job measures its
// first wave under the baseline plan, the re-optimizer discovers the
// scan-dominated buildable index and switches to the build strategy
// mid-map, and the piggyback stage builds only from the splits the
// job still had to read (LIAH). The output stays correct and the
// registry gains exactly the restricted offer.
func TestDynamicJobStartsBuildMidJob(t *testing.T) {
	a := newAdxEnv(t, 0, 1600, 400, 0.25)
	a.rt.Engine.Trace = obs.NewTrace()
	n := len(a.input.Chunks)
	wave := a.cluster.MapSlots()
	if wave >= n {
		t.Fatalf("input too small for a mid-map replan: %d chunks <= %d map slots", n, wave)
	}

	op := a.adxOp("dynbuild-op")
	conf := a.conf("dynbuild", ModeDynamic, op, headPlace)
	res, err := a.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned || res.ReplanPhase != "map" {
		t.Fatalf("expected a mid-map plan change, got replanned=%v phase=%q", res.Replanned, res.ReplanPhase)
	}
	if !planHasBuild(res.Plan) {
		t.Fatalf("re-optimized plan should adopt the build strategy, got %s", res.Plan)
	}

	offer := (n + 3) / 4 // ceil(0.25·n), matches OfferRate
	if remaining := n - wave; offer > remaining {
		offer = remaining
	}
	if got := res.Counters[CtrBuildCommitted]; got != int64(offer) {
		t.Fatalf("mid-job build committed %d splits, want %d", got, offer)
	}
	for _, s := range a.reg.CoveredSplits("adx") {
		if s < wave {
			t.Fatalf("split %d was built but only splits >= %d were re-read under the new plan", s, wave)
		}
	}

	var buf bytes.Buffer
	if err := a.rt.Engine.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "piggyback index build started mid-job") {
		t.Fatal("trace missing the mid-job build-start instant")
	}

	// Reference: the same input through a never-building environment.
	ref := newAdxEnv(t, 0, 1600, 400, 0)
	refRes, err := ref.rt.Submit(ref.conf("dynbuild-ref", ModeBaseline, ref.adxOp("dynbuild-op"), headPlace))
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "dynamic-build", sortedOutput(refRes.Output), sortedOutput(res.Output))
}
