package core

import (
	"fmt"
	"strings"

	"efind/internal/index"
)

// Decision fixes the strategy (and, for re-partitioning, the job boundary)
// of one index within an operator plan.
type Decision struct {
	// Index is the accessor's position in the operator's AddIndex order.
	Index int
	// Strategy is the chosen access strategy.
	Strategy Strategy
	// Boundary is the materialization point for Repartition plans
	// (IndexLocality always uses BoundaryPre).
	Boundary Boundary
	// Cost is the modeled per-machine cost of this decision, 0 when no
	// statistics were available.
	Cost float64
}

// OperatorPlan orders an operator's indices and assigns each a strategy.
// Per Property 4, indices with Repartition or IndexLocality strategies
// appear before Baseline/LookupCache ones.
type OperatorPlan struct {
	Op        *Operator
	Pos       OpPosition
	Decisions []Decision
	// Cost is the modeled total per-machine cost (0 without statistics).
	Cost float64
}

// String renders the plan compactly, e.g. "geo[repart/pre] events[cache]".
func (p OperatorPlan) String() string {
	parts := make([]string, 0, len(p.Decisions))
	for _, d := range p.Decisions {
		name := p.Op.Indices()[d.Index].Name()
		if d.Strategy == Repartition {
			parts = append(parts, fmt.Sprintf("%s[%s/%s]", name, d.Strategy, d.Boundary))
		} else {
			parts = append(parts, fmt.Sprintf("%s[%s]", name, d.Strategy))
		}
	}
	return strings.Join(parts, " ")
}

// shuffleCount returns how many shuffle jobs this operator plan inserts.
func (p OperatorPlan) shuffleCount() int {
	n := 0
	for _, d := range p.Decisions {
		if d.Strategy == Repartition || d.Strategy == IndexLocality {
			n++
		}
	}
	return n
}

// JobPlan assigns a plan to every operator of an EFind job.
type JobPlan struct {
	Head, Body, Tail []OperatorPlan
	// Cost is the modeled total per-machine index-access cost.
	Cost float64
}

// String renders the whole plan.
func (p *JobPlan) String() string {
	var b strings.Builder
	write := func(pos string, plans []OperatorPlan) {
		for _, op := range plans {
			fmt.Fprintf(&b, "%s/%s{%s} ", pos, op.Op.Name(), op.String())
		}
	}
	write("head", p.Head)
	write("body", p.Body)
	write("tail", p.Tail)
	return strings.TrimSpace(b.String())
}

// All returns every operator plan in data-flow order.
func (p *JobPlan) All() []OperatorPlan {
	out := make([]OperatorPlan, 0, len(p.Head)+len(p.Body)+len(p.Tail))
	out = append(out, p.Head...)
	out = append(out, p.Body...)
	out = append(out, p.Tail...)
	return out
}

// PlannerOptions tunes plan enumeration.
type PlannerOptions struct {
	// FullEnumerateLimit is the largest index count m for which all m!
	// orders are enumerated; larger operators fall back to k-Repart
	// (§3.5: "when m is very large, FullEnumerate may be too expensive").
	FullEnumerateLimit int
	// KRepart is the k of the fallback Algorithm k-Repart.
	KRepart int
	// BuildHorizon is how many future runs of the same job the planner
	// credits the build strategy for: the strategy is ranked by
	// cost − BuildHorizon·savings, where savings is the per-future-run
	// serve-time payoff of this run's committed splits. 0 picks the
	// default (4); negative disables the build strategy entirely. The
	// Decision's recorded Cost stays the honest per-run cost — only the
	// ranking is amortized.
	BuildHorizon float64
}

// DefaultBuildHorizon is the default amortization window of the build
// strategy (a LIAH-style assumption that a query family recurs at least
// a handful of times; the adaptive-build experiment validates the
// resulting break-even prediction).
const DefaultBuildHorizon = 4

// buildHorizon resolves the configured horizon.
func (o PlannerOptions) buildHorizon() float64 {
	if o.BuildHorizon == 0 {
		return DefaultBuildHorizon
	}
	if o.BuildHorizon < 0 {
		return 0
	}
	return o.BuildHorizon
}

// DefaultPlannerOptions mirrors the paper's guidance (m ≤ 5 is cheap to
// enumerate; 1-Repart or 2-Repart otherwise).
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{FullEnumerateLimit: 5, KRepart: 2}
}

// baselinePlan is the no-statistics default: natural order, all Baseline.
func baselinePlan(op *Operator, pos OpPosition) OperatorPlan {
	p := OperatorPlan{Op: op, Pos: pos}
	for i := range op.Indices() {
		p.Decisions = append(p.Decisions, Decision{Index: i, Strategy: Baseline})
	}
	return p
}

// uniformPlan assigns one strategy to every index (forced Base/Cache
// experiment modes).
func uniformPlan(op *Operator, pos OpPosition, s Strategy) OperatorPlan {
	p := OperatorPlan{Op: op, Pos: pos}
	for i := range op.Indices() {
		p.Decisions = append(p.Decisions, Decision{Index: i, Strategy: s})
	}
	return p
}

// repartFeasible reports whether a shuffle-based strategy can be applied
// to the index: re-partitioning needs at most one lookup key per record
// (carriers are routed by their single key).
func repartFeasible(is IndexStats) bool {
	return !is.MultiKey && is.Nik > 0
}

// idxLocFeasible additionally requires the index to expose its partition
// scheme with known hosts.
func idxLocFeasible(a index.Accessor, is IndexStats) bool {
	if !repartFeasible(is) {
		return false
	}
	p, ok := a.(index.Partitioned)
	if !ok {
		return false
	}
	sch := p.Scheme()
	return sch != nil && sch.Partitions > 0 && len(sch.Hosts) == sch.Partitions
}

// OptimizeOperator computes the best plan for one operator from its
// statistics using FullEnumerate when m is small and k-Repart otherwise.
// A nil st yields the baseline plan.
func OptimizeOperator(op *Operator, pos OpPosition, st *OperatorStats, env Env, opts PlannerOptions) OperatorPlan {
	if st == nil {
		return baselinePlan(op, pos)
	}
	m := op.NumIndices()
	if opts.FullEnumerateLimit <= 0 {
		opts.FullEnumerateLimit = 5
	}
	if opts.KRepart <= 0 {
		opts.KRepart = 2
	}
	var orders [][]int
	if m <= opts.FullEnumerateLimit {
		orders = permutations(m)
	} else {
		orders = kPermutations(m, opts.KRepart)
	}
	best := OperatorPlan{Cost: -1}
	for _, order := range orders {
		p := planForOrder(op, pos, st, env, order, opts)
		if best.Cost < 0 || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// planForOrder applies Property 3 (fixed order ⇒ per-index strategy
// choices independent) and Property 4 (repartitioned indices first) to
// compute the cheapest plan for one access order. Candidates are ranked
// by per-run cost, except the build strategy, which is ranked with its
// modeled future savings credited over the planner's BuildHorizon —
// "pay a little now, win on the next runs" (the Decision still records
// the honest per-run cost).
func planForOrder(op *Operator, pos OpPosition, st *OperatorStats, env Env, order []int, opts PlannerOptions) OperatorPlan {
	p := OperatorPlan{Op: op, Pos: pos}
	spreEff := st.Spre
	allowShuffle := true
	for _, idx := range order {
		a := op.Indices()[idx]
		is, bm, buildable := effectiveIndexStats(a, st.Index[a.Name()])
		d := Decision{Index: idx, Strategy: Baseline, Cost: costBaseline(st, is, env)}
		rank := d.Cost
		if c := costCache(st, is, env); c < rank {
			d = Decision{Index: idx, Strategy: LookupCache, Cost: c}
			rank = c
		}
		if allowShuffle && repartFeasible(is) {
			sidxEff := spreEff + is.Nik*(is.Sik+is.Siv)
			b, c := bestRepartBoundary(pos, st, is, env, spreEff, sidxEff)
			if c < rank {
				d = Decision{Index: idx, Strategy: Repartition, Boundary: b, Cost: c}
				rank = c
			}
			if idxLocFeasible(a, is) {
				if c := costIdxLoc(st, is, env, spreEff); c < rank {
					d = Decision{Index: idx, Strategy: IndexLocality, Boundary: BoundaryPre, Cost: c}
					rank = c
				}
			}
		}
		// The build strategy rides the map scan of the job input, so
		// only head operators qualify; there must be something left to
		// build and an offer to build it with.
		if buildable && pos == HeadOp && bm.Covered < bm.Total && bm.Offer > 0 && opts.buildHorizon() > 0 {
			c := costBuild(st, is, env, bm)
			if r := c - opts.buildHorizon()*buildSavings(st, is, env, bm); r < rank {
				d = Decision{Index: idx, Strategy: Build, Cost: c}
				rank = r
			}
		}
		if !isShuffle(d.Strategy) {
			// Property 4: once a non-shuffle strategy is chosen, the
			// remaining indices only consider non-shuffle ones.
			allowShuffle = false
		}
		// Later shuffles carry this index's attached results.
		spreEff += is.Nik * (is.Sik + is.Siv)
		p.Decisions = append(p.Decisions, d)
		p.Cost += d.Cost
	}
	return p
}

// permutations returns all orders of [0, m).
func permutations(m int) [][]int {
	cur := make([]int, 0, m)
	used := make([]bool, m)
	var out [][]int
	var rec func()
	rec = func() {
		if len(cur) == m {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// kPermutations returns the orders of Algorithm k-Repart: each
// k-permutation of [0, m) followed by the remaining indices in natural
// order (only the first k are candidates for shuffle strategies; cost
// evaluation of the rest is order-independent by Property 1).
func kPermutations(m, k int) [][]int {
	if k >= m {
		return permutations(m)
	}
	var out [][]int
	cur := make([]int, 0, k)
	used := make([]bool, m)
	var rec func()
	rec = func() {
		if len(cur) == k {
			order := append([]int(nil), cur...)
			for i := 0; i < m; i++ {
				if !used[i] {
					order = append(order, i)
				}
			}
			out = append(out, order)
			return
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// PlanCost re-evaluates an operator plan's cost under (possibly newer)
// statistics; used by Algorithm 1 to compare the current plan against a
// re-optimized one.
func PlanCost(p OperatorPlan, st *OperatorStats, env Env) float64 {
	if st == nil {
		return 0
	}
	total := 0.0
	spreEff := st.Spre
	for _, d := range p.Decisions {
		a := p.Op.Indices()[d.Index]
		is, bm, _ := effectiveIndexStats(a, st.Index[a.Name()])
		switch d.Strategy {
		case Baseline:
			total += costBaseline(st, is, env)
		case LookupCache:
			total += costCache(st, is, env)
		case Repartition:
			sidxEff := spreEff + is.Nik*(is.Sik+is.Siv)
			smin := boundarySizes(p.Pos, st, spreEff, sidxEff)[d.Boundary]
			total += costRepartAt(d.Boundary, st, is, env, spreEff, smin)
		case IndexLocality:
			total += costIdxLoc(st, is, env, spreEff)
		case Build:
			total += costBuild(st, is, env, bm)
		}
		spreEff += is.Nik * (is.Sik + is.Siv)
	}
	return total
}

// planBuildCredit is the amortized future payoff of an operator plan's
// build decisions: BuildHorizon × the per-future-run savings of the
// splits this run would commit. The mid-job re-optimization comparison
// subtracts it from both sides so a build plan competes on the same
// amortized ranking the planner used to select it — otherwise "pay a
// little now, win later" could never be accepted mid-job, since its
// honest per-run cost always exceeds the cache strategy's.
func planBuildCredit(p OperatorPlan, st *OperatorStats, env Env, opts PlannerOptions) float64 {
	h := opts.buildHorizon()
	if h <= 0 || st == nil {
		return 0
	}
	credit := 0.0
	for _, d := range p.Decisions {
		if d.Strategy != Build {
			continue
		}
		a := p.Op.Indices()[d.Index]
		is, bm, ok := effectiveIndexStats(a, st.Index[a.Name()])
		if !ok {
			continue
		}
		credit += h * buildSavings(st, is, env, bm)
	}
	return credit
}

// planHasBuild reports whether any decision of the plan uses the build
// strategy (trace instrumentation of the adaptive runtime).
func planHasBuild(p *JobPlan) bool {
	for _, op := range p.All() {
		for _, d := range op.Decisions {
			if d.Strategy == Build {
				return true
			}
		}
	}
	return false
}
