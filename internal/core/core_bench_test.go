package core

import (
	"fmt"
	"testing"
)

func BenchmarkCarrierEncodeDecode(b *testing.B) {
	c := &carrier{
		Pair: Pair{Key: "record-0001234", Value: "a moderately sized payload value for the record"},
		Keys: [][]string{{"ik-000042"}},
		Results: [][]KeyResult{{{
			Key:    "ik-000042",
			Values: []string{"first lookup result value", "second lookup result value"},
		}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := encodeCarrier(c)
		if _, err := decodeCarrier(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeFullEnumerate measures planning time for m=5 indices
// (the paper argues m! enumeration is feasible for m ≤ 5).
func BenchmarkOptimizeFullEnumerate(b *testing.B) {
	env := Env{BW: 125e6, F: 2.5e-8, Tcache: 1e-6, Nodes: 96, JobOverhead: 0.02, LaneFactor: 2}
	op := NewOperator("bench", nil, nil)
	st := &OperatorStats{
		N1: 1e5, Records: 12e5, S1: 120, Spre: 80, Sidx: 400, Spost: 150, Smap: 150,
		Index: map[string]IndexStats{},
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("ix%d", i)
		op.AddIndex(fakeAccessor{name: name})
		st.Index[name] = IndexStats{
			Nik: 1, Sik: 16, Siv: float64(50 * (i + 1)),
			Tj: 0.0002 * float64(i+1), Theta: float64(1 + i*i), R: 0.9,
		}
	}
	opts := PlannerOptions{FullEnumerateLimit: 5, KRepart: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimizeOperator(op, BodyOp, st, env, opts)
	}
}

// BenchmarkOptimizeKRepart measures the fallback planner at m=8.
func BenchmarkOptimizeKRepart(b *testing.B) {
	env := Env{BW: 125e6, F: 2.5e-8, Tcache: 1e-6, Nodes: 96, JobOverhead: 0.02, LaneFactor: 2}
	op := NewOperator("bench", nil, nil)
	st := &OperatorStats{
		N1: 1e5, Records: 12e5, S1: 120, Spre: 80, Sidx: 400, Spost: 150,
		Index: map[string]IndexStats{},
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("ix%d", i)
		op.AddIndex(fakeAccessor{name: name})
		st.Index[name] = IndexStats{Nik: 1, Sik: 16, Siv: 100, Tj: 0.0005, Theta: 4, R: 0.8}
	}
	opts := PlannerOptions{FullEnumerateLimit: 5, KRepart: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimizeOperator(op, BodyOp, st, env, opts)
	}
}

// BenchmarkEFindJobBaseline measures a small end-to-end EFind job.
func BenchmarkEFindJobBaseline(b *testing.B) {
	benchJob(b, ModeBaseline)
}

// BenchmarkEFindJobDynamic measures the same job with the adaptive
// runtime (statistics collection + possible replanning included).
func BenchmarkEFindJobDynamic(b *testing.B) {
	benchJob(b, ModeDynamic)
}

func benchJob(b *testing.B, mode Mode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newE2E(b, 2000, 50)
		op := e.lookupOp(fmt.Sprintf("bench-op-%d", i))
		conf := e.conf(fmt.Sprintf("bench-job-%d", i), mode, op, headPlace)
		b.StartTimer()
		if _, err := e.rt.Submit(conf); err != nil {
			b.Fatal(err)
		}
	}
}
